module Layout = Udma_mmu.Layout
module Page_table = Udma_mmu.Page_table
module Pte = Udma_mmu.Pte
module Sm = Udma.State_machine
module Udma_engine = Udma.Udma_engine
module Dma_engine = Udma_dma.Dma_engine
module M = Udma_os.Machine
module Proc = Udma_os.Proc

type violation = { invariant : M.invariant; detail : string }

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "%a violated: %s" M.pp_invariant v.invariant v.detail

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Format.asprintf "Oracle.%a" pp_violation v)
    | _ -> None)

let violation invariant fmt =
  Format.kasprintf (fun detail -> Some { invariant; detail }) fmt

(* First Some wins; later thunks are not evaluated. *)
let rec first_of = function
  | [] -> None
  | f :: rest -> ( match f () with Some _ as v -> v | None -> first_of rest)

let proxy_range (m : M.t) =
  let first = M.proxy_vpn m 0 in
  let dev_base =
    Layout.page_of_addr m.M.layout (Layout.dev_proxy_base m.M.layout)
  in
  (first, dev_base)

(* Iterate every present memory-proxy PTE of every process. *)
let fold_proxy_ptes (m : M.t) f =
  let first, dev_base = proxy_range m in
  List.fold_left
    (fun acc proc ->
      if acc <> None then acc
      else
        List.fold_left
          (fun acc (vpn, (pte : Pte.t)) ->
            if acc <> None then acc
            else if pte.Pte.present && vpn >= first && vpn < dev_base then
              f proc ~real_vpn:(vpn - first) pte
            else acc)
          acc
          (Page_table.entries proc.Proc.page_table))
    None m.M.procs

let pte_of m ~pid ~vpn =
  match M.find_proc m ~pid with
  | None -> None
  | Some p -> Page_table.find p.Proc.page_table vpn

(* The paging code's notion of dirty under the machine's I3 policy. *)
let effective_dirty (m : M.t) proc ~vpn (pte : Pte.t) =
  pte.Pte.dirty
  ||
  match m.M.i3_policy with
  | M.Write_upgrade -> false
  | M.Proxy_dirty_union -> (
      match Page_table.find proc.Proc.page_table (M.proxy_vpn m vpn) with
      | Some p -> p.Pte.dirty
      | None -> false)

(* ---------- I1: atomicity across context switches ---------- *)

let post_switch (m : M.t) =
  match m.M.udma with
  | None -> None
  | Some u -> (
      match Udma_engine.state u with
      | Sm.Dest_loaded d ->
          violation `I1
            "latched DESTINATION %a:%#x (%d bytes) survived a context \
             switch%s — the switch did not store an Inval"
            Sm.pp_space d.Sm.dest_space d.Sm.dest_proxy d.Sm.nbytes
            (match m.M.current with
            | Some p -> Printf.sprintf " to pid %d" p.Proc.pid
            | None -> "")
      | Sm.Idle | Sm.Transferring _ -> None)

(* ---------- I2: proxy mappings mirror real mappings ---------- *)

let check_i2 (m : M.t) =
  fold_proxy_ptes m (fun proc ~real_vpn pte ->
      match Page_table.find proc.Proc.page_table real_vpn with
      | Some real when real.Pte.present ->
          if pte.Pte.ppage <> M.proxy_ppage m real.Pte.ppage then
            violation `I2
              "pid %d vpn %d: proxy mapping points at physical page %d but \
               the real page is in frame %d (proxy of frame is %d)"
              proc.Proc.pid real_vpn pte.Pte.ppage real.Pte.ppage
              (M.proxy_ppage m real.Pte.ppage)
          else None
      | Some _ ->
          violation `I2
            "pid %d vpn %d: proxy mapping outlived its real mapping (real \
             page is swapped out)"
            proc.Proc.pid real_vpn
      | None ->
          violation `I2
            "pid %d vpn %d: proxy mapping outlived its real mapping \
             (real page is unmapped)"
            proc.Proc.pid real_vpn)

(* ---------- I3: content consistency ---------- *)

(* (a) write-upgrade policy: a writable proxy page implies a dirty real
   page (otherwise the pageout daemon could clean the page and lose the
   data a transfer is about to deposit). *)
let check_i3_static (m : M.t) =
  match m.M.i3_policy with
  | M.Proxy_dirty_union -> None
  | M.Write_upgrade ->
      fold_proxy_ptes m (fun proc ~real_vpn pte ->
          if not pte.Pte.writable then None
          else
            match Page_table.find proc.Proc.page_table real_vpn with
            | Some real when real.Pte.present && not real.Pte.dirty ->
                violation `I3
                  "pid %d vpn %d: proxy page is writable but the real page \
                   is clean — incoming data could land on a page the pager \
                   believes unchanged"
                  proc.Proc.pid real_vpn
            | Some _ | None -> None)

(* (b) every user-initiated transfer destined for a mapped user page
   finds the page dirty before any data lands. *)
let check_i3_inflight (m : M.t) =
  match m.M.udma with
  | None -> None
  | Some u ->
      let page_size = Layout.page_size m.M.layout in
      (* every element of a shaped request is its own destination *)
      first_of
        (List.concat_map
           (fun (v : Udma_engine.req_view) ->
             List.map
               (fun (e : Udma_engine.elem_view) () ->
                 match (v.Udma_engine.v_priority, e.Udma_engine.ev_dst) with
                 | Udma_engine.System, _ | _, Dma_engine.Dev _ -> None
                 | Udma_engine.User, Dma_engine.Mem a -> (
                     let frame = a / page_size in
                     match Hashtbl.find_opt m.M.frame_owner frame with
                     | None -> None (* replacement is I4's domain *)
                     | Some (pid, vpn) -> (
                         match (M.find_proc m ~pid, pte_of m ~pid ~vpn) with
                         | Some proc, Some pte
                           when pte.Pte.present
                                && not (effective_dirty m proc ~vpn pte) ->
                             violation `I3
                               "pid %d vpn %d (frame %d): UDMA destination \
                                of an outstanding transfer but the page is \
                                not marked dirty"
                               pid vpn frame
                         | _ -> None)))
               v.Udma_engine.v_elements)
           (Udma_engine.outstanding_views u))

let check_i3 (m : M.t) = first_of [ (fun () -> check_i3_static m);
                            (fun () -> check_i3_inflight m) ]

(* ---------- I4: no frame named by the engine is ever replaced ---------- *)

let frame_still_backs m frame =
  match Hashtbl.find_opt m.M.frame_owner frame with
  | None ->
      violation `I4
        "frame %d is referenced by the UDMA engine but no longer backs any \
         user page — it was replaced mid-transfer"
        frame
  | Some (pid, vpn) -> (
      match pte_of m ~pid ~vpn with
      | Some pte when pte.Pte.present && pte.Pte.ppage = frame -> None
      | Some _ | None ->
          violation `I4
            "frame %d is referenced by the UDMA engine but pid %d vpn %d no \
             longer maps it"
            frame pid vpn)

let check_i4 (m : M.t) =
  match m.M.udma with
  | None -> None
  | Some u ->
      let outstanding = Udma_engine.outstanding_frames u in
      let counts = Hashtbl.create 8 in
      List.iter
        (fun f ->
          Hashtbl.replace counts f
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts f)))
        outstanding;
      let expected =
        List.sort compare
          (Hashtbl.fold (fun f c acc -> (f, c) :: acc) counts [])
      in
      let actual = Udma_engine.refcounts_snapshot u in
      if expected <> actual then
        violation `I4
          "per-frame reference counters disagree with outstanding requests \
           (counters: %s; requests reference: %s)"
          (String.concat ","
             (List.map (fun (f, c) -> Printf.sprintf "%d:%d" f c) actual))
          (String.concat ","
             (List.map (fun (f, c) -> Printf.sprintf "%d:%d" f c) expected))
      else
        let referenced =
          (* frames of outstanding requests, plus a latched mem DESTINATION *)
          List.sort_uniq compare
            (List.map fst expected
            @
            match Udma_engine.state u with
            | Sm.Dest_loaded { dest_proxy; dest_space = Sm.Mem_space; _ } ->
                [ Layout.page_of_addr m.M.layout
                    (Layout.unproxy m.M.layout dest_proxy) ]
            | Sm.Dest_loaded _ | Sm.Idle | Sm.Transferring _ -> [])
        in
        first_of
          (List.map (fun f () -> frame_still_backs m f) referenced)

(* ---------- combined ---------- *)

let check_now (m : M.t) =
  first_of
    [ (fun () -> check_i2 m); (fun () -> check_i3 m);
      (fun () -> check_i4 m) ]

(* ---------- network invariants (router flow control) ---------- *)

let check_n1 router =
  match Udma_shrimp.Router.check_credits router with
  | None -> None
  | Some detail -> Some { invariant = `N1; detail }

let check_n2 router =
  match Udma_shrimp.Router.check_arbitration router with
  | None -> None
  | Some detail -> Some { invariant = `N2; detail }

let check_f1 router =
  match Udma_shrimp.Router.check_flits router with
  | None -> None
  | Some detail -> Some { invariant = `F1; detail }

let check_router router =
  first_of
    [ (fun () -> check_n1 router); (fun () -> check_n2 router);
      (fun () -> check_f1 router) ]

(* ---------- protection (cross-tenant isolation) ---------- *)

let check_i5 backend =
  match Udma_protect.Backend.check backend with
  | None -> None
  | Some detail -> Some { invariant = `I5; detail }
