(** Machine-checkable oracles for the paper's OS invariants I1–I4.

    Each oracle is a pure predicate over the live [Machine.t] (page
    tables, frame ownership, UDMA registers, queues and reference
    counters). The chaos driver evaluates {!check_now} after every
    simulation step and {!post_switch} at every context switch; any
    counterexample is reported as a {!violation} naming the invariant
    it breaks.

    The invariants, as decided here:

    - {b I1} (atomicity): immediately after a context switch the UDMA
      initiation machine is never in [DestLoaded] — a partially
      initiated STORE/LOAD pair cannot survive into another process.
      Only checkable at switch time, hence {!post_switch}.
    - {b I2} (mapping consistency): every present memory-proxy mapping
      [PROXY(vpn) → p] has a present real mapping [vpn → frame] with
      [p = PROXY(frame)].
    - {b I3} (content consistency, write-upgrade policy): a writable
      memory-proxy page implies a dirty real page, and every
      user-initiated UDMA transfer destined for a mapped user page
      finds that page (effectively) dirty {e before} data lands.
    - {b I4} (register consistency): the engine's per-frame reference
      counters account exactly for the frames of outstanding requests,
      and every frame named by the engine's registers, queues or
      latched DESTINATION still backs the user mapping it backed at
      initiation — i.e. it was not replaced mid-transfer. *)

type violation = {
  invariant : Udma_os.Machine.invariant;
  detail : string;
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

val post_switch : Udma_os.Machine.t -> violation option
(** The I1 oracle; sound only when evaluated right after a context
    switch (install it via [Machine.on_switch]). *)

val check_i2 : Udma_os.Machine.t -> violation option
val check_i3 : Udma_os.Machine.t -> violation option
val check_i4 : Udma_os.Machine.t -> violation option

val check_now : Udma_os.Machine.t -> violation option
(** I2, I3 and I4 in that order; first counterexample wins. Safe to
    call between any two simulation events. *)

val check_n1 : Udma_shrimp.Router.t -> violation option
(** N1, credit conservation: per (link, VC) deposit pool,
    [held + in_flight + free = capacity] at every cycle
    ({!Udma_shrimp.Router.check_credits}). *)

val check_n2 : Udma_shrimp.Router.t -> violation option
(** N2, arbitration fairness: no ready VC skipped [vc_count] or more
    consecutive rounds ({!Udma_shrimp.Router.check_arbitration}). *)

val check_f1 : Udma_shrimp.Router.t -> violation option
(** F1, flit conservation ({!Udma_shrimp.Router.check_flits}):
    injected = delivered + in-network flits, and every finite
    (link, VC) input FIFO keeps [credits + occupancy = capacity].
    Trivially [None] when the router runs the analytic crossing. Both
    planted flit bugs (the [`F1] leak and the [`F2] double-grant)
    surface here. *)

val check_router : Udma_shrimp.Router.t -> violation option
(** N1, N2 then F1; first counterexample wins. Safe between any two
    simulation events, like {!check_now}. *)

val check_i5 : Udma_protect.Backend.t -> violation option
(** I5, cross-tenant isolation ({!Udma_protect.Backend.check}): every
    datapath-visible decode entry (NIPT / IOTLB / capability) is
    backed by a live grant, and no journalled authorization paired a
    tenant with a page it does not own or whose grant was already
    revoked. Catches the planted [`P1] (owner check skipped) and
    [`P2] (stale entry survives teardown) bugs. *)
