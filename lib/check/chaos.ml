module Engine = Udma_sim.Engine
module Rng = Udma_sim.Rng
module Trace = Udma_sim.Trace
module Layout = Udma_mmu.Layout
module Device = Udma_dma.Device
module Udma_engine = Udma.Udma_engine
module Initiator = Udma.Initiator
module M = Udma_os.Machine
module Proc = Udma_os.Proc
module Kernel = Udma_os.Kernel
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Vm = Udma_os.Vm
module Frame_allocator = Udma_memory.Frame_allocator
module Disk = Udma_devices.Disk

type dir = Out | In

type action =
  | Xfer of { proc : int; page : int; dev_page : int; nbytes : int;
              dir : dir; queued : bool }
  | Raw_pair of { proc : int; page : int; dev_page : int; nbytes : int;
                  dir : dir }
  | Half_pair of { proc : int; page : int; dev_page : int; nbytes : int;
                   dir : dir }
  | Probe of { proc : int; dev_page : int }
  | Wrong_space of { proc : int; page : int; nbytes : int }
  | Unaligned of { proc : int; page : int }
  | Inval_store of { proc : int }
  | Burst of { proc : int; page : int; dev_page : int; count : int;
               nbytes : int }
  | Sys_enqueue of { proc : int; page : int; dev_page : int; nbytes : int }
  | Touch of { proc : int; page : int; write : bool }
  | Clean of { proc : int; page : int }
  | Evict
  | Grow of { proc : int }
  | Flaky of bool
  | Preempt_rate of { pct : int }
  | Run_cycles of { cycles : int }
  | Drain
  | Disk_dma of { proc : int; page : int; nbytes : int; dir : dir;
                  bounce : bool }

type setup = {
  seed : int;
  mem_pages : int;
  depth : int option;
  write_upgrade : bool;
  nprocs : int;
  pages_per_proc : int;
}

type plan = { setup : setup; actions : action list }

type failure = { plan : plan; step : int; violation : Oracle.violation }

type outcome = Pass | Fail of failure

(* ---------- pretty-printing ---------- *)

let pp_dir ppf = function
  | Out -> Format.pp_print_string ppf "out"
  | In -> Format.pp_print_string ppf "in"

let pp_action ppf = function
  | Xfer x ->
      Format.fprintf ppf "xfer%s proc=%d page=%d dev=%d nbytes=%d %a"
        (if x.queued then "-queued" else "") x.proc x.page x.dev_page
        x.nbytes pp_dir x.dir
  | Raw_pair x ->
      Format.fprintf ppf "raw-pair proc=%d page=%d dev=%d nbytes=%d %a"
        x.proc x.page x.dev_page x.nbytes pp_dir x.dir
  | Half_pair x ->
      Format.fprintf ppf "half-pair proc=%d page=%d dev=%d nbytes=%d %a"
        x.proc x.page x.dev_page x.nbytes pp_dir x.dir
  | Probe x -> Format.fprintf ppf "probe proc=%d dev=%d" x.proc x.dev_page
  | Wrong_space x ->
      Format.fprintf ppf "wrong-space proc=%d page=%d nbytes=%d" x.proc
        x.page x.nbytes
  | Unaligned x -> Format.fprintf ppf "unaligned proc=%d page=%d" x.proc x.page
  | Inval_store x -> Format.fprintf ppf "inval-store proc=%d" x.proc
  | Burst x ->
      Format.fprintf ppf "burst proc=%d page=%d dev=%d count=%d nbytes=%d"
        x.proc x.page x.dev_page x.count x.nbytes
  | Sys_enqueue x ->
      Format.fprintf ppf "sys-enqueue proc=%d page=%d dev=%d nbytes=%d"
        x.proc x.page x.dev_page x.nbytes
  | Touch x ->
      Format.fprintf ppf "touch-%s proc=%d page=%d"
        (if x.write then "write" else "read") x.proc x.page
  | Clean x -> Format.fprintf ppf "clean proc=%d page=%d" x.proc x.page
  | Evict -> Format.pp_print_string ppf "evict"
  | Grow x -> Format.fprintf ppf "grow proc=%d" x.proc
  | Flaky b -> Format.fprintf ppf "flaky-device %b" b
  | Preempt_rate x -> Format.fprintf ppf "preempt-rate %d%%" x.pct
  | Run_cycles x -> Format.fprintf ppf "run %d cycles" x.cycles
  | Drain -> Format.pp_print_string ppf "drain"
  | Disk_dma x ->
      Format.fprintf ppf "disk-dma proc=%d page=%d nbytes=%d %a %s" x.proc
        x.page x.nbytes pp_dir x.dir
        (if x.bounce then "bounce" else "pinned")

let pp_setup ppf s =
  Format.fprintf ppf
    "seed=%d mem_pages=%d mode=%s i3=%s nprocs=%d pages/proc=%d" s.seed
    s.mem_pages
    (match s.depth with
    | None -> "basic"
    | Some d -> Printf.sprintf "queued(depth=%d)" d)
    (if s.write_upgrade then "write-upgrade" else "proxy-dirty-union")
    s.nprocs s.pages_per_proc

(* ---------- plan generation ---------- *)

let gen_nbytes rng =
  match Rng.int rng 5 with
  | 0 -> 4 * (1 + Rng.int rng 16)
  | 1 | 2 -> 4 * (1 + Rng.int rng 256)
  | 3 -> 4 * (1 + Rng.int rng 1024)
  | _ -> 4096 + 4 * (1 + Rng.int rng 1024)

let gen_action rng =
  let proc () = Rng.int rng 8 in
  let page () = Rng.int rng 16 in
  let dev () = Rng.int rng 8 in
  let dir () = if Rng.bool rng then Out else In in
  match Rng.int rng 100 with
  | n when n < 14 ->
      Xfer { proc = proc (); page = page (); dev_page = dev ();
             nbytes = gen_nbytes rng; dir = dir (); queued = Rng.bool rng }
  | n when n < 26 ->
      Raw_pair { proc = proc (); page = page (); dev_page = dev ();
                 nbytes = 4 * (1 + Rng.int rng 1024); dir = dir () }
  | n when n < 34 ->
      Half_pair { proc = proc (); page = page (); dev_page = dev ();
                  nbytes = 4 * (1 + Rng.int rng 1024); dir = dir () }
  | n when n < 38 -> Probe { proc = proc (); dev_page = dev () }
  | n when n < 41 ->
      Wrong_space { proc = proc (); page = page ();
                    nbytes = 4 * (1 + Rng.int rng 64) }
  | n when n < 43 -> Unaligned { proc = proc (); page = page () }
  | n when n < 45 -> Inval_store { proc = proc () }
  | n when n < 52 ->
      Burst { proc = proc (); page = page (); dev_page = dev ();
              count = 2 + Rng.int rng 6; nbytes = 4 * (1 + Rng.int rng 512) }
  | n when n < 57 ->
      Sys_enqueue { proc = proc (); page = page (); dev_page = dev ();
                    nbytes = 4 * (1 + Rng.int rng 512) }
  | n when n < 67 ->
      Touch { proc = proc (); page = page (); write = Rng.bool rng }
  | n when n < 71 -> Clean { proc = proc (); page = page () }
  | n when n < 76 -> Evict
  | n when n < 80 -> Grow { proc = proc () }
  | n when n < 82 -> Flaky (Rng.bool rng)
  | n when n < 86 -> Preempt_rate { pct = 5 + Rng.int rng 36 }
  | n when n < 92 -> Run_cycles { cycles = 100 + Rng.int rng 20_000 }
  | n when n < 95 -> Drain
  | _ ->
      Disk_dma { proc = proc (); page = page ();
                 nbytes = 4 * (1 + Rng.int rng 1024); dir = dir ();
                 bounce = Rng.bool rng }

let plan_of_seed ?(steps = 40) seed =
  let rng = Rng.create seed in
  let setup =
    { seed;
      mem_pages = 16 + Rng.int rng 16;
      depth = (if Rng.bool rng then None else Some (1 + Rng.int rng 3));
      write_upgrade = Rng.bool rng;
      nprocs = 2 + Rng.int rng 2;
      pages_per_proc = 3 + Rng.int rng 3;
    }
  in
  { setup; actions = List.init steps (fun _ -> gen_action rng) }

(* ---------- execution ---------- *)

type ctx = {
  m : M.t;
  procs : Proc.t array;
  bufs : int array ref array;  (* per-process buffer vaddrs, growable *)
  disk : Disk.t;
  flaky : bool ref;
  preempt_pct : int ref;
  mutable benign : int;        (* faults/errors absorbed as expected *)
}

let dev_slots = 8
let max_pages_per_proc = 12

let build ?skip_invariant ~trace setup =
  let config =
    { M.default_config with
      M.mem_pages = setup.mem_pages;
      virt_pages = 256;
      tlb_entries = 8;
      udma_mode =
        Some
          (match setup.depth with
          | None -> Udma_engine.Basic
          | Some depth -> Udma_engine.Queued { depth });
      i3_policy =
        (if setup.write_upgrade then M.Write_upgrade else M.Proxy_dirty_union);
      trace_enabled = trace;
    }
  in
  let m = M.create ~config ?skip_invariant () in
  let udma = Option.get m.M.udma in
  let flaky = ref false in
  let port, _store = Device.buffer "chaos-dev" ~size:(dev_slots * 4096) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:dev_slots ~port
    ~validate:(fun ~dev_addr:_ ~nbytes:_ -> if !flaky then 1 else 0)
    ();
  let disk =
    Disk.create
      ~geometry:
        { Disk.blocks = 16; block_size = 4096; seek_base_cycles = 500;
          seek_per_block_cycles = 10; transfer_cycles_per_block = 200 }
      ()
  in
  let procs =
    Array.init setup.nprocs (fun i ->
        Scheduler.spawn m ~name:(Printf.sprintf "p%d" i))
  in
  Array.iter
    (fun p ->
      for i = 0 to dev_slots - 1 do
        match
          Syscall.map_device_proxy m p ~vdev_index:i ~pdev_index:i
            ~writable:true
        with
        | Ok () -> ()
        | Error _ -> assert false
      done)
    procs;
  let bufs =
    Array.map
      (fun p ->
        ref
          (Array.init setup.pages_per_proc (fun _ ->
               Kernel.alloc_buffer m p ~bytes:4096)))
      procs
  in
  let preempt_pct = ref 0 in
  let exec_rng = Rng.create (setup.seed lxor 0x5eed) in
  Scheduler.set_preempt_hook m
    (Some (fun _ -> !preempt_pct > 0 && Rng.int exec_rng 100 < !preempt_pct));
  m.M.on_switch <-
    Some
      (fun m ->
        match Oracle.post_switch m with
        | Some v -> raise (Oracle.Violation v)
        | None -> ());
  { m; procs; bufs; disk; flaky; preempt_pct; benign = 0 }

let proc_of ctx i = ctx.procs.(i mod Array.length ctx.procs)

let vaddr_of ctx ~proc ~page =
  let arr = !(ctx.bufs.(proc mod Array.length ctx.procs)) in
  arr.(page mod Array.length arr)

let dev_vaddr ctx i = Kernel.vdev_addr ctx.m ~index:(i mod dev_slots) ~offset:0

let endpoints ctx ~proc ~page ~dev_page = function
  | Out ->
      ( Initiator.Memory (vaddr_of ctx ~proc ~page),
        Initiator.Device (dev_vaddr ctx dev_page) )
  | In ->
      ( Initiator.Device (dev_vaddr ctx dev_page),
        Initiator.Memory (vaddr_of ctx ~proc ~page) )

(* Raw STORE/LOAD addresses: the count is stored to the DESTINATION
   proxy, the initiating LOAD reads the SOURCE proxy. *)
let raw_pair_addrs ctx ~proc ~page ~dev_page dir =
  let mem_proxy =
    Layout.proxy_of ctx.m.M.layout (vaddr_of ctx ~proc ~page)
  in
  let dev = dev_vaddr ctx dev_page in
  match dir with
  | Out -> (dev, mem_proxy) (* store to device dest, load memory src *)
  | In -> (mem_proxy, dev)

let apply ctx action =
  let m = ctx.m in
  match action with
  | Xfer { proc; page; dev_page; nbytes; dir; queued } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      let src, dst = endpoints ctx ~proc ~page ~dev_page dir in
      let xfer = if queued then Initiator.transfer_queued
                 else Initiator.transfer in
      ignore (xfer cpu ~layout:m.M.layout ~src ~dst ~nbytes ())
  | Raw_pair { proc; page; dev_page; nbytes; dir } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      let store_to, load_from = raw_pair_addrs ctx ~proc ~page ~dev_page dir in
      cpu.Initiator.store ~vaddr:store_to (Int32.of_int nbytes);
      ignore (cpu.Initiator.load ~vaddr:load_from)
  | Half_pair { proc; page; dev_page; nbytes; dir } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      let store_to, _ = raw_pair_addrs ctx ~proc ~page ~dev_page dir in
      cpu.Initiator.store ~vaddr:store_to (Int32.of_int nbytes)
  | Probe { proc; dev_page } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      ignore (cpu.Initiator.load ~vaddr:(dev_vaddr ctx dev_page))
  | Wrong_space { proc; page; nbytes } ->
      (* memory-to-memory: the hardware must refuse with BadLoad *)
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      let proxy = Layout.proxy_of m.M.layout (vaddr_of ctx ~proc ~page) in
      cpu.Initiator.store ~vaddr:proxy (Int32.of_int nbytes);
      ignore (cpu.Initiator.load ~vaddr:proxy)
  | Unaligned { proc; page } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      let proxy = Layout.proxy_of m.M.layout (vaddr_of ctx ~proc ~page) in
      cpu.Initiator.store ~vaddr:(proxy + 2) 64l
  | Inval_store { proc } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      let proxy = Layout.proxy_of m.M.layout (vaddr_of ctx ~proc ~page:0) in
      cpu.Initiator.store ~vaddr:proxy (-1l)
  | Burst { proc; page; dev_page; count; nbytes } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      for i = 0 to count - 1 do
        let store_to, load_from =
          raw_pair_addrs ctx ~proc ~page:(page + i) ~dev_page:(dev_page + i)
            Out
        in
        cpu.Initiator.store ~vaddr:store_to (Int32.of_int nbytes);
        ignore (cpu.Initiator.load ~vaddr:load_from)
      done
  | Sys_enqueue { proc; page; dev_page; nbytes } -> (
      let p = proc_of ctx proc in
      let vaddr = vaddr_of ctx ~proc ~page in
      let vpn = Layout.page_of_addr m.M.layout vaddr in
      match Vm.frame_of_vpn m p ~vpn with
      | None -> ctx.benign <- ctx.benign + 1 (* not resident; skip *)
      | Some frame ->
          let src_proxy = Layout.proxy_of m.M.layout (frame * 4096) in
          let dest_proxy =
            Layout.dev_proxy_addr m.M.layout ~page:(dev_page mod dev_slots)
              ~offset:0
          in
          ignore (Syscall.udma_enqueue_system m ~src_proxy ~dest_proxy ~nbytes))
  | Touch { proc; page; write } ->
      let p = proc_of ctx proc in
      let cpu = Kernel.user_cpu m p in
      let vaddr = vaddr_of ctx ~proc ~page in
      if write then cpu.Initiator.store ~vaddr 0xC0DEl
      else ignore (cpu.Initiator.load ~vaddr)
  | Clean { proc; page } ->
      let p = proc_of ctx proc in
      let vpn = Layout.page_of_addr m.M.layout (vaddr_of ctx ~proc ~page) in
      ignore (Vm.clean_page m p ~vpn)
  | Evict ->
      let frame = Vm.evict_one m in
      Frame_allocator.free m.M.alloc frame
  | Grow { proc } ->
      let i = proc mod Array.length ctx.procs in
      let arr = ctx.bufs.(i) in
      if Array.length !arr < max_pages_per_proc then
        let vaddr = Kernel.alloc_buffer m ctx.procs.(i) ~bytes:4096 in
        arr := Array.append !arr [| vaddr |]
  | Flaky b -> ctx.flaky := b
  | Preempt_rate { pct } -> ctx.preempt_pct := pct
  | Run_cycles { cycles } -> Engine.advance m.M.engine cycles
  | Drain -> Engine.run_until_idle m.M.engine
  | Disk_dma { proc; page; nbytes; dir; bounce } ->
      let p = proc_of ctx proc in
      let vaddr = vaddr_of ctx ~proc ~page in
      let dir =
        match dir with Out -> Syscall.To_device | In -> Syscall.From_device
      in
      let strategy =
        if bounce then Syscall.Copy_through_buffer else Syscall.Pin_user_pages
      in
      ignore
        (Syscall.dma_transfer m p ~dir ~vaddr ~nbytes ~port:(Disk.port ctx.disk)
           ~dev_addr:((page mod 8) * 4096) ~strategy)

(* Exceptions the chaos workload is expected to provoke: illegal
   accesses, allocation failure under pressure, unaligned references,
   kernel refusals (Failure). Oracle.Violation is never one of them. *)
let benign_exn = function
  | Vm.Segfault _ | Vm.Out_of_memory | Invalid_argument _ | Failure _ -> true
  | _ -> false

let execute ?skip_invariant ?(trace = false) plan =
  let ctx = build ?skip_invariant ~trace plan.setup in
  let check () =
    match Oracle.check_now ctx.m with
    | Some v -> raise (Oracle.Violation v)
    | None -> ()
  in
  let rec go i = function
    | [] -> (
        (* final drain: leftover transfers must complete cleanly *)
        match
          (try Engine.run_until_idle ctx.m.M.engine; check (); None with
          | Oracle.Violation v -> Some v)
        with
        | Some v -> (Error (i, v), ctx)
        | None -> (Ok (), ctx))
    | a :: rest -> (
        match
          (try apply ctx a; check (); None with
          | Oracle.Violation v -> Some v
          | e when benign_exn e ->
              ctx.benign <- ctx.benign + 1;
              (match (try check (); None with Oracle.Violation v -> Some v)
               with
              | Some v -> Some v
              | None -> None))
        with
        | Some v -> (Error (i, v), ctx)
        | None -> go (i + 1) rest)
  in
  go 0 plan.actions

let run_plan ?skip_invariant ?trace plan =
  match fst (execute ?skip_invariant ?trace plan) with
  | Ok () -> Pass
  | Error (step, violation) -> Fail { plan; step; violation }

let run_seed ?skip_invariant ?steps seed =
  run_plan ?skip_invariant (plan_of_seed ?steps seed)

let sweep ?skip_invariant ?steps ?(start = 0) ~seeds () =
  List.filter_map
    (fun seed ->
      match run_seed ?skip_invariant ?steps seed with
      | Pass -> None
      | Fail f -> Some f)
    (List.init seeds (fun i -> start + i))

let first_failure ?skip_invariant ?steps ?(start = 0) ~seeds () =
  let rec go seed =
    if seed >= start + seeds then None
    else
      match run_seed ?skip_invariant ?steps seed with
      | Pass -> go (seed + 1)
      | Fail f -> Some f
  in
  go start

(* ---------- shrinking ---------- *)

let prefix n l = List.filteri (fun i _ -> i < n) l

let shrink ?skip_invariant (f : failure) =
  let inv = f.violation.Oracle.invariant in
  let fails actions =
    match
      fst (execute ?skip_invariant { f.plan with actions })
    with
    | Error (k, v) when v.Oracle.invariant = inv -> Some (k, v)
    | Ok () | Error _ -> None
  in
  (* the failing prefix is a deterministic replay of the failure *)
  let best = ref (prefix (f.step + 1) f.plan.actions) in
  let bestv = ref f.violation in
  (* greedy single-action deletion; on success keep only the (possibly
     shorter) failing prefix of the candidate and rescan from the start *)
  let rec del i =
    let acts = !best in
    let n = List.length acts in
    if i < n - 1 then (
      let candidate = List.filteri (fun j _ -> j <> i) acts in
      match fails candidate with
      | Some (k, v) ->
          best := prefix (min (k + 1) (List.length candidate)) candidate;
          bestv := v;
          del i
      | None -> del (i + 1))
  in
  del 0;
  let actions = !best in
  { plan = { f.plan with actions };
    step = List.length actions - 1;
    violation = !bestv }

(* ---------- replay + report ---------- *)

let replay_trace ?skip_invariant plan =
  let _, ctx = execute ?skip_invariant ~trace:true plan in
  (* Keep the invariant-relevant subsystems: UDMA engine activity, VM
     faults and context switches; drop bus noise like queue traffic. *)
  Trace.matching ctx.m.M.trace (fun ev ->
      match ev.Trace.Event.subsystem with
      | Trace.Event.Udma | Trace.Event.Vm | Trace.Event.Sched -> true
      | Trace.Event.Dma | Trace.Event.Ni | Trace.Event.Dev
      | Trace.Event.Kernel | Trace.Event.Sim -> false)

let last n l =
  let len = List.length l in
  if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

(* ---------- mesh traffic scenario ---------- *)

module System = Udma_shrimp.System
module Router = Udma_shrimp.Router
module Messaging = Udma_shrimp.Messaging
module Ni = Udma_shrimp.Network_interface
module Backend = Udma_protect.Backend

(* A tenant id no spawned process can hold: the malicious-tenant
   actor presents it to every protection backend. *)
let rogue_pid = 9999

type mesh_action =
  | M_send of { src : int; dst : int; nbytes : int; pipelined : bool }
  | M_shaped_send of { src : int; dst : int }
  | M_burst of { src : int; dst : int; count : int; nbytes : int }
  | M_touch of { node : int; page : int; write : bool }
  | M_clean of { node : int; page : int }
  | M_evict of { node : int }
  | M_preempt of { node : int; pct : int }
  | M_link_fault of { from_node : int; to_node : int; fault : Router.fault }
  | M_credit_squeeze of { credits : int option }
  | M_rogue_tenant of { node : int; page : int }
  | M_revoke of { node : int; page : int }
  | M_backend_send of { node : int; page : int }
  | M_run of { cycles : int }
  | M_drain

type mesh_setup = {
  mesh_seed : int;
  mesh_nodes : int;
  contention : bool;
  adaptive : bool;
  mesh_pages : int;
  mesh_vcs : int;
  mesh_credits : int option;
  mesh_crossing : Router.crossing;
  mesh_flit_words : int;
}

type mesh_plan = { mesh_setup : mesh_setup; mesh_actions : mesh_action list }

type mesh_failure = {
  mesh_plan : mesh_plan;
  mesh_step : int;
  mesh_violation : Oracle.violation;  (* detail names the node *)
}

type mesh_outcome = Mesh_pass | Mesh_fail of mesh_failure

let pp_mesh_action ppf = function
  | M_send x ->
      Format.fprintf ppf "send%s %d->%d nbytes=%d"
        (if x.pipelined then "-pipelined" else "") x.src x.dst x.nbytes
  | M_shaped_send x -> Format.fprintf ppf "shaped-send %d->%d" x.src x.dst
  | M_burst x ->
      Format.fprintf ppf "burst %d->%d count=%d nbytes=%d" x.src x.dst
        x.count x.nbytes
  | M_touch x ->
      Format.fprintf ppf "touch-%s node=%d page=%d"
        (if x.write then "write" else "read") x.node x.page
  | M_clean x -> Format.fprintf ppf "clean node=%d page=%d" x.node x.page
  | M_evict x -> Format.fprintf ppf "evict node=%d" x.node
  | M_preempt x -> Format.fprintf ppf "preempt node=%d %d%%" x.node x.pct
  | M_link_fault x ->
      Format.fprintf ppf "link-%s %d->%d"
        (match x.fault with
        | Router.Link_dead -> "dead"
        | Router.Link_slow k -> Printf.sprintf "slow(x%d)" k
        | Router.Link_ok -> "heal")
        x.from_node x.to_node
  | M_credit_squeeze x ->
      Format.fprintf ppf "credit-squeeze rx=%s"
        (match x.credits with
        | None -> "unlimited"
        | Some n -> string_of_int n)
  | M_rogue_tenant x ->
      Format.fprintf ppf "rogue-tenant node=%d page=%d" x.node x.page
  | M_revoke x -> Format.fprintf ppf "revoke node=%d page=%d" x.node x.page
  | M_backend_send x ->
      Format.fprintf ppf "backend-send node=%d page=%d" x.node x.page
  | M_run x -> Format.fprintf ppf "run %d cycles" x.cycles
  | M_drain -> Format.pp_print_string ppf "drain"

let pp_mesh_setup ppf s =
  Format.fprintf ppf
    "seed=%d nodes=%d contention=%b routing=%s pages/node=%d vcs=%d rx=%s \
     crossing=%s"
    s.mesh_seed s.mesh_nodes s.contention
    (if s.adaptive then "adaptive" else "dimension-order")
    s.mesh_pages s.mesh_vcs
    (match s.mesh_credits with
    | None -> "unlimited"
    | Some n -> string_of_int n)
    (match s.mesh_crossing with
    | `Analytic -> "analytic"
    | `Flit -> Printf.sprintf "flit(%dw)" s.mesh_flit_words)

(* A random directed mesh link: a node and one of its in-mesh
   neighbours (the node counts below all tile complete rectangles, so
   every neighbour id is real). *)
let gen_mesh_link rng ~nodes =
  let w = Router.mesh_width nodes in
  let height = nodes / w in
  let a = Rng.int rng nodes in
  let x = a mod w and y = a / w in
  let neighbours =
    List.filter_map Fun.id
      [
        (if x > 0 then Some (a - 1) else None);
        (if x < w - 1 then Some (a + 1) else None);
        (if y > 0 then Some (a - w) else None);
        (if y < height - 1 then Some (a + w) else None);
      ]
  in
  (a, List.nth neighbours (Rng.int rng (List.length neighbours)))

let gen_mesh_action rng ~nodes ~credits0 =
  let node () = Rng.int rng nodes in
  let pair () =
    let s = node () in
    (s, (s + 1 + Rng.int rng (nodes - 1)) mod nodes)
  in
  (* the all-pairs channels occupy import slots 0..nodes-2 per node *)
  let slot () = Rng.int rng (nodes - 1) in
  match Rng.int rng 100 with
  | n when n < 24 ->
      let src, dst = pair () in
      M_send { src; dst; nbytes = 4 * (1 + Rng.int rng 256);
               pipelined = Rng.bool rng }
  | n when n < 38 ->
      let src, dst = pair () in
      M_burst { src; dst; count = 1 + Rng.int rng 4;
                nbytes = 4 * (1 + Rng.int rng 128) }
  | n when n < 48 ->
      M_touch { node = node (); page = Rng.int rng 4; write = Rng.bool rng }
  | n when n < 54 -> M_clean { node = node (); page = Rng.int rng 4 }
  | n when n < 60 -> M_evict { node = node () }
  | n when n < 66 -> M_preempt { node = node (); pct = 5 + Rng.int rng 30 }
  | n when n < 74 ->
      let from_node, to_node = gen_mesh_link rng ~nodes in
      let fault =
        match Rng.int rng 5 with
        | 0 | 1 -> Router.Link_dead
        | 2 | 3 -> Router.Link_slow (2 + Rng.int rng 7)
        | _ -> Router.Link_ok
      in
      M_link_fault { from_node; to_node; fault }
  | n when n < 79 -> M_rogue_tenant { node = node (); page = slot () }
  | n when n < 83 -> M_revoke { node = node (); page = slot () }
  | n when n < 86 -> M_backend_send { node = node (); page = slot () }
  | n when n < 89 ->
      let src, dst = pair () in
      M_shaped_send { src; dst }
  | n when n < 92 -> M_run { cycles = 100 + Rng.int rng 10_000 }
  | n when n < 96 ->
      (* shrink the deposit FIFOs under load 3 of 5 draws, restore the
         setup's capacity otherwise *)
      let credits =
        if Rng.int rng 5 < 3 then Some (1 + Rng.int rng 3) else credits0
      in
      M_credit_squeeze { credits }
  | _ -> M_drain

(* Node counts must tile complete mesh rows (Router.valid_nodes): a
   2x2, 3x2 or 3x3 mesh, all with real adaptive path choice. *)
let mesh_node_choices = [| 4; 6; 9 |]

let mesh_plan_of_seed ?(steps = 40) seed =
  let rng = Rng.create (seed lxor 0x6e57) in
  (* the flit-crossing draws come from a second stream so that adding
     them did not perturb the main stream — every pre-flit seed still
     produces the same nodes/contention/.../action sequence, keeping
     the committed N1/N2/P1/P2/D1 64-seed catch guarantees intact *)
  let frng = Rng.create (seed lxor 0xf117) in
  let mesh_setup =
    { mesh_seed = seed;
      mesh_nodes = mesh_node_choices.(Rng.int rng 3);
      (* contention on for 3 of 4 seeds: the point of the scenario *)
      contention = Rng.int rng 4 > 0;
      (* adaptive for 3 of 4 seeds: link faults are routed around;
         the rest cross dead links on the recovery path *)
      adaptive = Rng.int rng 4 > 0;
      mesh_pages = 2 + Rng.int rng 2;
      (* several VCs for 3 of 4 seeds, finite credits for 3 of 4:
         the flow-control surface the N1/N2 oracles watch *)
      mesh_vcs = 1 + Rng.int rng 4;
      mesh_credits =
        (if Rng.int rng 4 = 0 then None else Some (2 + Rng.int rng 6));
      (* flit-level crossing for 1 of 3 seeds — the F1 oracle's
         surface (mesh_build forces the combinations flit mode
         supports) *)
      mesh_crossing = (if Rng.int frng 3 = 0 then `Flit else `Analytic);
      mesh_flit_words = [| 1; 2; 4 |].(Rng.int frng 3);
    }
  in
  { mesh_setup;
    mesh_actions =
      List.init steps (fun _ ->
          gen_mesh_action rng ~nodes:mesh_setup.mesh_nodes
            ~credits0:mesh_setup.mesh_credits) }

type mesh_ctx = {
  sys : System.t;
  mesh_procs : Proc.t array;
  mesh_chans : Messaging.channel option array array;
  mesh_bufs : int array array; (* per node: mesh_pages buffer vaddrs *)
  mesh_shadows : (Backend.t * Backend.t) array;
      (* per node: IOMMU and capability backends mirroring the NI's
         grants, so the rogue tenant attacks all three designs *)
  preempt : int array;
  mesh_rng : Rng.t;
  mutable mesh_benign : int;
  mesh_flit : bool;
      (* flit seeds cap message sizes: a 4 KB worm is ~1000 flit
         crossings per hop, which would dominate the sweep's runtime
         without exercising anything new *)
}

(* Every protection backend a node exposes: the NI's production proxy
   backend plus the two shadows. *)
let node_backends ctx i =
  let iommu, cap = ctx.mesh_shadows.(i) in
  [ Ni.backend (System.node ctx.sys i).System.ni; iommu; cap ]

let at_node violation i =
  { violation with
    Oracle.detail =
      Printf.sprintf "node %d: %s" i violation.Oracle.detail }

let mesh_build ?skip_invariant setup =
  let flit = setup.mesh_crossing = `Flit in
  let config =
    { System.default_config with
      System.router =
        { Router.default_config with
          Router.link_contention = setup.contention;
          Router.routing =
            (* flit mode is dimension-order only *)
            (if setup.adaptive && not flit then `Minimal_adaptive
             else `Dimension_order);
          Router.vc_count = setup.mesh_vcs;
          Router.rx_credits =
            (* flit seeds always exercise finite input FIFOs: that is
               the credit half of the F1 conservation identity *)
            (if flit && setup.mesh_credits = None then Some 4
             else setup.mesh_credits);
          Router.crossing = setup.mesh_crossing;
          Router.flit_words = setup.mesh_flit_words } }
  in
  let sys = System.create ~config ?skip_invariant ~nodes:setup.mesh_nodes () in
  let nodes = setup.mesh_nodes in
  let mesh_procs =
    Array.init nodes (fun i ->
        Scheduler.spawn (System.node sys i).System.machine
          ~name:(Printf.sprintf "mesh%d" i))
  in
  (* all-pairs channels, sequential import slots per sender *)
  let mesh_chans = Array.make_matrix nodes nodes None in
  for src = 0 to nodes - 1 do
    let idx = ref 0 in
    for dst = 0 to nodes - 1 do
      if dst <> src then begin
        mesh_chans.(src).(dst) <-
          Some
            (Messaging.connect sys ~sender:(src, mesh_procs.(src))
               ~receiver:(dst, mesh_procs.(dst)) ~first_index:!idx ~pages:1 ());
        incr idx
      end
    done
  done;
  let mesh_bufs =
    Array.init nodes (fun i ->
        let m = (System.node sys i).System.machine in
        Array.init setup.mesh_pages (fun _ ->
            Kernel.alloc_buffer m mesh_procs.(i) ~bytes:4096))
  in
  (* Shadow IOMMU/capability backends mirror the proxy grants the
     channel setup just installed, under the same planted bug (if
     any), so every design faces the same rogue probes. *)
  let backend_mutation =
    match skip_invariant with
    | Some `P1 -> Some (Backend.Owner_skip 0)
    | Some `P2 -> Some Backend.Stale_revoke
    | Some (`I1 | `I2 | `I3 | `I4 | `I5 | `N1 | `N2 | `F1 | `F2 | `D1)
    | None ->
        None
  in
  let mesh_shadows =
    Array.init nodes (fun i ->
        let ni_backend = Ni.backend (System.node sys i).System.ni in
        let entries = Backend.capacity ni_backend in
        let mirror kind =
          let b = Backend.create kind ~entries () in
          for index = 0 to entries - 1 do
            match Backend.decode ni_backend ~index with
            | Some { Backend.owner; dst_node; dst_frame } ->
                ignore (Backend.grant b ~owner ~index ~dst_node ~dst_frame)
            | None -> ()
          done;
          Backend.set_mutation b backend_mutation;
          b
        in
        (mirror Backend.Iommu, mirror Backend.Capability))
  in
  let preempt = Array.make nodes 0 in
  let mesh_rng = Rng.create (setup.mesh_seed lxor 0x5eed) in
  Array.iteri
    (fun i _ ->
      let m = (System.node sys i).System.machine in
      Scheduler.set_preempt_hook m
        (Some (fun _ -> preempt.(i) > 0 && Rng.int mesh_rng 100 < preempt.(i)));
      m.M.on_switch <-
        Some
          (fun m ->
            match Oracle.post_switch m with
            | Some v -> raise (Oracle.Violation (at_node v i))
            | None -> ()))
    mesh_procs;
  { sys; mesh_procs; mesh_chans; mesh_bufs; mesh_shadows; preempt;
    mesh_rng; mesh_benign = 0; mesh_flit = flit }

let mesh_apply ctx action =
  let machine i = (System.node ctx.sys i).System.machine in
  let chan src dst = Option.get ctx.mesh_chans.(src).(dst) in
  match action with
  | M_send { src; dst; nbytes; pipelined } -> (
      let m = machine src in
      let cpu = Kernel.user_cpu m ctx.mesh_procs.(src) in
      let buf = ctx.mesh_bufs.(src).(0) in
      let ch = chan src dst in
      let cap =
        if ctx.mesh_flit then min 512 (Messaging.capacity ch)
        else Messaging.capacity ch
      in
      let nbytes = min nbytes cap in
      match Messaging.send_nowait ch cpu ~src_vaddr:buf ~nbytes ~pipelined ()
      with
      | Ok () -> ()
      | Error _ -> ctx.mesh_benign <- ctx.mesh_benign + 1)
  | M_shaped_send { src; dst } -> (
      (* A strided gather starting 256 bytes before the end of the
         node's last (highest-frame) buffer: elements 2..4 stride past
         the source page. Fire-and-forget so the post-action check
         observes the request while it is outstanding — that is the
         window in which D1's unauthorized frame references exist. *)
      let m = machine src in
      let cpu = Kernel.user_cpu m ctx.mesh_procs.(src) in
      let bufs = ctx.mesh_bufs.(src) in
      let buf = bufs.(Array.length bufs - 1) in
      let page = Layout.page_size m.M.layout in
      let ch = chan src dst in
      match
        Initiator.start_shaped cpu ~layout:m.M.layout
          ~src:(Initiator.Memory (buf + page - 256))
          ~dst:(Initiator.Device (Messaging.dev_vaddr ch ~offset:0))
          ~shape:(Initiator.Strided_shape { stride = 512; chunk = 256 })
          ~nbytes:1024 ()
      with
      | Ok _ -> ()
      | Error _ -> ctx.mesh_benign <- ctx.mesh_benign + 1)
  | M_burst { src; dst; count; nbytes } ->
      let ch = chan src dst in
      let cap =
        if ctx.mesh_flit then min 512 (Messaging.capacity ch)
        else Messaging.capacity ch
      in
      let payload = Bytes.make (min nbytes cap) '\xAB' in
      for _ = 1 to count do
        Messaging.inject ch payload
      done
  | M_touch { node; page; write } ->
      let m = machine node in
      let cpu = Kernel.user_cpu m ctx.mesh_procs.(node) in
      let bufs = ctx.mesh_bufs.(node) in
      let vaddr = bufs.(page mod Array.length bufs) in
      if write then cpu.Initiator.store ~vaddr 0xC0DEl
      else ignore (cpu.Initiator.load ~vaddr)
  | M_clean { node; page } ->
      let m = machine node in
      let bufs = ctx.mesh_bufs.(node) in
      let vpn =
        Layout.page_of_addr m.M.layout bufs.(page mod Array.length bufs)
      in
      ignore (Vm.clean_page m ctx.mesh_procs.(node) ~vpn)
  | M_evict { node } ->
      (* a storm, not one reclaim: the first passes only clear
         second-chance referenced bits on the node's few user pages *)
      let m = machine node in
      for _ = 1 to 4 do
        let frame = Vm.evict_one m in
        Frame_allocator.free m.M.alloc frame
      done
  | M_preempt { node; pct } -> ctx.preempt.(node) <- pct
  | M_link_fault { from_node; to_node; fault } ->
      Router.set_link_fault (System.router ctx.sys) ~from_node ~to_node fault
  | M_credit_squeeze { credits } ->
      Router.set_rx_credits (System.router ctx.sys) credits
  | M_rogue_tenant { node; page } ->
      (* A malicious tenant probes another tenant's import slot, the
         hottest slot and an unconfigured index on every backend. Each
         probe must be denied; an acceptance is journalled and the I5
         oracle flags it at the post-action check. *)
      List.iter
        (fun b ->
          let cap = Backend.capacity b in
          List.iter
            (fun index ->
              ignore (Backend.authorize b ~tenant:rogue_pid ~index))
            [ page mod cap; 0; cap ])
        (node_backends ctx node)
  | M_revoke { node; page } ->
      (* Tear the import slot down on every backend; later sends on
         the channel fail benignly, and any datapath state that
         survives is I5's stale-invalidation counterexample. *)
      List.iter
        (fun b -> ignore (Backend.revoke b ~index:page))
        (node_backends ctx node)
  | M_backend_send { node; page } ->
      (* The slot's legitimate owner initiates through every backend
         (exercising IOTLB fills and capability checks); a denial on a
         live slot is benign, an acceptance is journalled for I5. *)
      let tenant = ctx.mesh_procs.(node).Proc.pid in
      List.iter
        (fun b ->
          match Backend.authorize b ~tenant ~index:page with
          | Ok _ -> ()
          | Error _ -> ctx.mesh_benign <- ctx.mesh_benign + 1)
        (node_backends ctx node)
  | M_run { cycles } -> Engine.advance (System.engine ctx.sys) cycles
  | M_drain -> System.run_until_idle ctx.sys

let mesh_execute ?skip_invariant plan =
  let ctx = mesh_build ?skip_invariant plan.mesh_setup in
  let check () =
    for i = 0 to System.node_count ctx.sys - 1 do
      (match Oracle.check_now (System.node ctx.sys i).System.machine with
      | Some v -> raise (Oracle.Violation (at_node v i))
      | None -> ());
      (* cross-tenant isolation, on the NI backend and both shadows *)
      List.iter
        (fun b ->
          match Oracle.check_i5 b with
          | Some v -> raise (Oracle.Violation (at_node v i))
          | None -> ())
        (node_backends ctx i)
    done;
    (* the network invariants live on the shared router, not a node *)
    match Oracle.check_router (System.router ctx.sys) with
    | Some v -> raise (Oracle.Violation v)
    | None -> ()
  in
  let rec go i = function
    | [] -> (
        match
          (try System.run_until_idle ctx.sys; check (); None with
          | Oracle.Violation v -> Some v)
        with
        | Some v -> (Error (i, v), ctx)
        | None -> (Ok (), ctx))
    | a :: rest -> (
        match
          (try mesh_apply ctx a; check (); None with
          | Oracle.Violation v -> Some v
          | e when benign_exn e ->
              ctx.mesh_benign <- ctx.mesh_benign + 1;
              (try check (); None with Oracle.Violation v -> Some v))
        with
        | Some v -> (Error (i, v), ctx)
        | None -> go (i + 1) rest)
  in
  go 0 plan.mesh_actions

let run_mesh_plan ?skip_invariant plan =
  match fst (mesh_execute ?skip_invariant plan) with
  | Ok () -> Mesh_pass
  | Error (step, violation) ->
      Mesh_fail { mesh_plan = plan; mesh_step = step;
                  mesh_violation = violation }

let run_mesh_seed ?skip_invariant ?steps seed =
  run_mesh_plan ?skip_invariant (mesh_plan_of_seed ?steps seed)

let mesh_sweep ?skip_invariant ?steps ?(start = 0) ~seeds () =
  List.filter_map
    (fun seed ->
      match run_mesh_seed ?skip_invariant ?steps seed with
      | Mesh_pass -> None
      | Mesh_fail f -> Some f)
    (List.init seeds (fun i -> start + i))

let mesh_report (f : mesh_failure) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "mesh chaos failure: seed %d, %d-step schedule@."
    f.mesh_plan.mesh_setup.mesh_seed
    (List.length f.mesh_plan.mesh_actions);
  Format.fprintf ppf "  %a@." Oracle.pp_violation f.mesh_violation;
  Format.fprintf ppf "  setup: %a@." pp_mesh_setup f.mesh_plan.mesh_setup;
  Format.fprintf ppf "  schedule (deterministic replay):@.";
  List.iteri
    (fun i a ->
      Format.fprintf ppf "    %2d. %a%s@." i pp_mesh_action a
        (if i = f.mesh_step then "   <- violation detected here" else ""))
    f.mesh_plan.mesh_actions;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let report ?skip_invariant (f : failure) =
  let buf = Buffer.create 1024 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "chaos failure: seed %d, %d-step schedule@."
    f.plan.setup.seed
    (List.length f.plan.actions);
  Format.fprintf ppf "  %a@." Oracle.pp_violation f.violation;
  Format.fprintf ppf "  setup: %a@." pp_setup f.plan.setup;
  Format.fprintf ppf "  schedule (deterministic replay):@.";
  List.iteri
    (fun i a ->
      Format.fprintf ppf "    %2d. %a%s@." i pp_action a
        (if i = f.step then "   <- violation detected here" else ""))
    f.plan.actions;
  let tail = last 12 (replay_trace ?skip_invariant f.plan) in
  if tail <> [] then begin
    Format.fprintf ppf "  trace tail of the replay:@.";
    List.iter
      (fun ev ->
        Format.fprintf ppf "    %8d  %s@." ev.Trace.Event.time
          (Trace.Event.render ev))
      tail
  end;
  Format.pp_print_flush ppf ();
  Buffer.contents buf
