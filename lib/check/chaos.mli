(** Seeded chaos explorer for the UDMA/OS invariants.

    One {e seed} deterministically derives a whole experiment: a
    machine configuration (engine mode, installed memory, I3 policy),
    a small multi-process population with mapped device proxies, and a
    schedule of randomized actions — overlapping user transfers, raw
    STORE/LOAD misuse (wrong-space pairs, unaligned references,
    half-finished initiations), hardware-queue pressure, system-queue
    enqueues, traditional disk DMA, paging pressure and forced
    evictions — interleaved with injected faults (random preemption
    between any two user references, device [validate] failures,
    swap-outs mid-transfer).

    After every action the {!Oracle} predicates for I2–I4 are
    evaluated against the machine, and the I1 oracle runs inside every
    context switch. Any violation stops the run and is reported with
    the seed, the executed schedule prefix and the invariant broken.
    Because everything derives from the seed, a failure replays
    exactly; {!shrink} then greedily deletes actions to a minimal
    still-failing schedule and {!report} formats the whole repro
    recipe (with a traced replay) for humans. *)

type dir = Out  (** memory → device *) | In  (** device → memory *)

type action =
  | Xfer of { proc : int; page : int; dev_page : int; nbytes : int;
              dir : dir; queued : bool }
      (** complete user-library transfer (drains before returning) *)
  | Raw_pair of { proc : int; page : int; dev_page : int; nbytes : int;
                  dir : dir }
      (** raw STORE+LOAD pair; the transfer is left in flight *)
  | Half_pair of { proc : int; page : int; dev_page : int; nbytes : int;
                   dir : dir }
      (** STORE only: a partial initiation for I1 to clean up *)
  | Probe of { proc : int; dev_page : int }  (** status LOAD *)
  | Wrong_space of { proc : int; page : int; nbytes : int }
      (** memory-to-memory pair: must be refused as BadLoad *)
  | Unaligned of { proc : int; page : int }  (** unaligned proxy STORE *)
  | Inval_store of { proc : int }  (** deliberate negative-count STORE *)
  | Burst of { proc : int; page : int; dev_page : int; count : int;
               nbytes : int }
      (** back-to-back raw pairs: queue-full pressure in [Queued] mode *)
  | Sys_enqueue of { proc : int; page : int; dev_page : int; nbytes : int }
      (** kernel system-queue transfer from a resident user frame *)
  | Touch of { proc : int; page : int; write : bool }
  | Clean of { proc : int; page : int }  (** pageout-daemon clean *)
  | Evict  (** forced replacement (swap-out), possibly mid-transfer *)
  | Grow of { proc : int }  (** map another page: memory pressure *)
  | Flaky of bool  (** toggle device [validate] failures *)
  | Preempt_rate of { pct : int }
      (** preemption probability per user memory reference *)
  | Run_cycles of { cycles : int }  (** advance simulated time only *)
  | Drain  (** run the event queue dry *)
  | Disk_dma of { proc : int; page : int; nbytes : int; dir : dir;
                  bounce : bool }
      (** traditional syscall DMA to the disk, pinned or bounce-buffer *)

type setup = {
  seed : int;
  mem_pages : int;            (** installed physical frames *)
  depth : int option;         (** [None] = basic engine, else queued *)
  write_upgrade : bool;       (** I3 policy *)
  nprocs : int;
  pages_per_proc : int;
}

type plan = { setup : setup; actions : action list }

type failure = {
  plan : plan;        (** full generated plan *)
  step : int;         (** index of the failing action *)
  violation : Oracle.violation;
}

type outcome = Pass | Fail of failure

val plan_of_seed : ?steps:int -> int -> plan
(** [plan_of_seed seed] derives the full experiment ([steps] actions,
    default 40) from one integer. *)

val run_plan :
  ?skip_invariant:Udma_os.Machine.invariant -> ?trace:bool -> plan -> outcome
(** Execute a plan from scratch. Deterministic: the same plan (and
    [skip_invariant]) always produces the same outcome. [trace]
    (default false) builds the machine with tracing enabled. *)

val run_seed :
  ?skip_invariant:Udma_os.Machine.invariant -> ?steps:int -> int -> outcome

val sweep :
  ?skip_invariant:Udma_os.Machine.invariant ->
  ?steps:int -> ?start:int -> seeds:int -> unit -> failure list
(** Run seeds [start .. start+seeds-1] (default [start = 0]); collect
    every failure. *)

val first_failure :
  ?skip_invariant:Udma_os.Machine.invariant ->
  ?steps:int -> ?start:int -> seeds:int -> unit -> failure option
(** Like {!sweep} but stops at the first failing seed. *)

val shrink :
  ?skip_invariant:Udma_os.Machine.invariant -> failure -> failure
(** Truncate the schedule to the failing prefix, then greedily delete
    earlier actions while the plan still fails with the {e same}
    invariant. The result's plan is the minimized schedule. *)

val replay_trace :
  ?skip_invariant:Udma_os.Machine.invariant ->
  plan ->
  Udma_obs.Event.t list
(** Re-run with the hardware/kernel trace enabled and return its typed
    events (empty if the plan passes — trace of the full run). *)

val report :
  ?skip_invariant:Udma_os.Machine.invariant -> failure -> string
(** Human-readable repro recipe: seed, violated invariant, machine
    setup, the (ideally shrunk) schedule, and the tail of a traced
    replay. *)

val pp_action : Format.formatter -> action -> unit
val pp_setup : Format.formatter -> setup -> unit

(** {1 Mesh traffic scenario}

    The single-node schedules above never exercise the network. The
    mesh scenario derives a whole SHRIMP {!Udma_shrimp.System} from
    the seed — a 2x2, 3x2 or 3x3 mesh with all-pairs messaging
    channels, the router's link-contention model and minimal-adaptive
    routing each usually enabled — and interleaves user-level sends
    and hardware-level injection bursts with the same paging pressure,
    forced evictions and random preemption as the single-node plans,
    plus link faults: killing, slowing or healing a directed mesh link
    under traffic (the adaptive router routes around a dead link; the
    dimension-order router crosses it on the slow recovery path).
    Setups usually enable several virtual channels and finite
    deposit-FIFO credits, and the schedule can squeeze or restore the
    credit pools under load ([M_credit_squeeze]).

    Each node also carries shadow IOMMU and capability backends
    mirroring its NI's proxy grants, and the schedule attacks all
    three protection designs at once: a malicious tenant probes other
    tenants' import slots and unconfigured indices
    ([M_rogue_tenant]), slots are torn down under traffic
    ([M_revoke]) and legitimate owners initiate through every backend
    ([M_backend_send]) — every rogue probe must fault, never corrupt.

    After every action the I2–I4 oracles run on {e every} node's
    machine, each machine checks I1 at its context switches (the
    violation detail names the failing node), the I5 isolation oracle
    runs on every node's three backends, and the shared router is
    checked against the network invariants N1 (credit conservation)
    and N2 (arbitration fairness). *)

type mesh_action =
  | M_send of { src : int; dst : int; nbytes : int; pipelined : bool }
      (** user-level [send_nowait] on the (src,dst) channel *)
  | M_shaped_send of { src : int; dst : int }
      (** fire-and-forget strided initiation on the (src,dst) channel
          whose tail elements stride past the source page: legal
          hardware clamps each element to its own page, so only the
          in-page head transfers; under the planted [`D1] bug the
          overflow elements reference frames the proxy never named,
          which the I4 oracle flags while the transfer is in flight *)
  | M_burst of { src : int; dst : int; count : int; nbytes : int }
      (** hardware-level {!Udma_shrimp.Messaging.inject} burst *)
  | M_touch of { node : int; page : int; write : bool }
  | M_clean of { node : int; page : int }
  | M_evict of { node : int }
      (** forced-replacement storm (several reclaims) on one node *)
  | M_preempt of { node : int; pct : int }
  | M_link_fault of
      { from_node : int; to_node : int; fault : Udma_shrimp.Router.fault }
      (** kill ([Link_dead]), slow ([Link_slow]) or heal ([Link_ok])
          one directed mesh link *)
  | M_credit_squeeze of { credits : int option }
      (** {!Udma_shrimp.Router.set_rx_credits}: shrink the deposit
          FIFOs under load, or restore the setup's capacity *)
  | M_rogue_tenant of { node : int; page : int }
      (** malicious tenant: {!Udma_protect.Backend.authorize} with a
          foreign tenant id against [page], slot 0 and an unmapped
          index, on the node's proxy, IOMMU and capability backends *)
  | M_revoke of { node : int; page : int }
      (** tear down one import slot on all three backends; the
          datapath entry must not survive (I5) *)
  | M_backend_send of { node : int; page : int }
      (** the slot owner's initiation through all three backends
          (IOTLB fill / capability check exercise) *)
  | M_run of { cycles : int }
  | M_drain

type mesh_setup = {
  mesh_seed : int;
  mesh_nodes : int;   (** 4, 6 or 9 (complete mesh rows) *)
  contention : bool;  (** router per-link FIFO model *)
  adaptive : bool;    (** minimal-adaptive routing (else dimension-order) *)
  mesh_pages : int;   (** extra user buffers per node *)
  mesh_vcs : int;     (** virtual channels per link, 1..4 *)
  mesh_credits : int option;  (** deposit slots per (link, VC), or [None] *)
  mesh_crossing : Udma_shrimp.Router.crossing;
      (** wire model; flit seeds (1 of 3) force dimension-order and
          finite credits at build time and cap message sizes *)
  mesh_flit_words : int;      (** flit size for [`Flit] seeds *)
}

type mesh_plan = { mesh_setup : mesh_setup; mesh_actions : mesh_action list }

type mesh_failure = {
  mesh_plan : mesh_plan;
  mesh_step : int;
  mesh_violation : Oracle.violation;  (** detail names the node *)
}

type mesh_outcome = Mesh_pass | Mesh_fail of mesh_failure

val mesh_plan_of_seed : ?steps:int -> int -> mesh_plan

val run_mesh_plan :
  ?skip_invariant:Udma_os.Machine.invariant -> mesh_plan -> mesh_outcome
(** Deterministic, like {!run_plan}. *)

val run_mesh_seed :
  ?skip_invariant:Udma_os.Machine.invariant -> ?steps:int -> int ->
  mesh_outcome

val mesh_sweep :
  ?skip_invariant:Udma_os.Machine.invariant ->
  ?steps:int -> ?start:int -> seeds:int -> unit -> mesh_failure list

val mesh_report : mesh_failure -> string
(** Seed, violated invariant (with the node), setup and schedule. *)

val pp_mesh_action : Format.formatter -> mesh_action -> unit
val pp_mesh_setup : Format.formatter -> mesh_setup -> unit
