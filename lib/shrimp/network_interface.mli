(** The SHRIMP network interface (paper §8, Figures 6–7).

    A UDMA device whose device-proxy pages name entries of its
    protection backend's destination table (the NIPT, for the
    production {!Udma_protect.Backend.kind.Proxy} backend this always
    instantiates). A deliberate-update send is a UDMA transfer from
    user memory to the interface: at initiation the interface
    validates the access (4-byte alignment, a configured NIPT entry —
    the device-specific error bits of §5); when the DMA delivers the
    data it packetizes (header = NIPT entry + offset) and launches the
    packet through the router, serialising on the outgoing link. On
    the receiving side the packet lands in the incoming FIFO and the
    EISA DMA logic writes the payload straight to physical memory,
    marking the frame's page dirty. *)

type config = {
  packetize_cycles : int;   (** header construction per transfer *)
  out_fifo_bytes : int;
  in_fifo_bytes : int;
  link_word_cycles : int;   (** outgoing-link occupancy per word *)
}

val default_config : config
(** 15-cycle packetize, 64 KB FIFOs, 1 cycle/word link (DESIGN.md §5
    calibration). *)

type t

val create :
  id:int -> machine:Udma_os.Machine.t -> ?config:config -> unit -> t

val id : t -> int

val backend : t -> Udma_protect.Backend.t
(** The interface's protection backend (always
    {!Udma_protect.Backend.kind.Proxy} — its table is the NIPT). The
    kernel configures destinations through
    {!Udma_protect.Backend.grant} / [revoke]. *)

val set_router : t -> Router.t -> unit
(** Must be called before the first send. *)

val port : t -> Udma_dma.Device.port
(** Send-only DMA port ([readable] is always false: SHRIMP uses UDMA
    only for memory-to-device transfers, §8). *)

val validate : t -> dev_addr:int -> nbytes:int -> int
(** Device-specific validation for the UDMA engine: bit 0 set on a
    misaligned address or count, bit 1 set on an unconfigured NIPT
    entry. *)

val send_raw : t -> dst_node:int -> dst_paddr:int -> bytes -> unit
(** Launch a packet straight through the outgoing path, bypassing the
    NIPT — used by the automatic-update snooper ({!Auto_update}),
    whose bindings resolve destinations directly. *)

val receive : t -> Packet.t -> unit
(** Router sink: accept a packet into the incoming FIFO and schedule
    its EISA DMA into memory. *)

val attach : t -> unit
(** Bind the interface to its machine's UDMA engine over the whole
    device-proxy region. Raises [Failure] if the machine has no UDMA
    engine. *)

(** {1 Counters} *)

val packets_sent : t -> int
val bytes_sent : t -> int
val packets_received : t -> int
val bytes_received : t -> int

val send_drops : t -> int
(** Packets lost to outgoing FIFO overflow. *)

val receive_drops : t -> int
(** Packets lost to incoming FIFO overflow. *)

val delivery_errors : t -> int
(** Packets naming physical memory out of range. *)
