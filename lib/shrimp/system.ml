module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module M = Udma_os.Machine
module Vm = Udma_os.Vm
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model
module Backend = Udma_protect.Backend

type node = { id : int; machine : M.t; ni : Network_interface.t; auto : Auto_update.t }

type config = {
  machine : M.config;
  router : Router.config;
  ni : Network_interface.config;
}

let default_config =
  {
    machine = M.default_config;
    router = Router.default_config;
    ni = Network_interface.default_config;
  }

type t = {
  engine : Engine.t;
  router : Router.t;
  nodes : node array;
}

let create ?(config = default_config) ?skip_invariant ~nodes () =
  if nodes <= 0 then invalid_arg "System.create: nodes must be positive";
  (match config.machine.M.udma_mode with
  | None -> invalid_arg "System.create: nodes need a UDMA engine"
  | Some _ -> ());
  let engine =
    Engine.create ~mhz:config.machine.M.costs.Cost_model.mhz ()
  in
  let router = Router.create ~engine ~nodes ~config:config.router () in
  (* the network invariants' deliberate bugs live in the router, not
     the machines; [`N1]/[`N2] here mirror what [~skip_invariant] does
     for the kernel's I1-I4 maintenance actions *)
  (match skip_invariant with
  | Some `N1 -> Router.set_mutation router (Some Router.Credit_leak)
  | Some `N2 -> Router.set_mutation router (Some Router.Arb_stuck)
  | Some `F1 -> Router.set_mutation router (Some Router.Flit_leak)
  | Some `F2 -> Router.set_mutation router (Some Router.Double_grant)
  | Some (`I1 | `I2 | `I3 | `I4 | `I5 | `P1 | `P2 | `D1) | None -> ());
  (* ... and the protection bugs live in each node's backend. P1 skips
     the owner check on dev page 0 (the hottest import slot); P2 makes
     teardown leave the datapath entry alive. *)
  let backend_mutation =
    match skip_invariant with
    | Some `P1 -> Some (Backend.Owner_skip 0)
    | Some `P2 -> Some Backend.Stale_revoke
    | Some (`I1 | `I2 | `I3 | `I4 | `I5 | `N1 | `N2 | `F1 | `F2 | `D1)
    | None ->
        None
  in
  let make_node id =
    let machine =
      M.create
        ~config:{ config.machine with M.shared_engine = Some engine }
        ?skip_invariant ()
    in
    let ni = Network_interface.create ~id ~machine ~config:config.ni () in
    Backend.set_mutation (Network_interface.backend ni) backend_mutation;
    Network_interface.set_router ni router;
    Network_interface.attach ni;
    Router.register router ~node_id:id (Network_interface.receive ni);
    { id; machine; ni; auto = Auto_update.create ~machine ~ni () }
  in
  { engine; router; nodes = Array.init nodes make_node }

let engine t = t.engine
let router t = t.router
let node_count t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "System.node: %d out of range" i);
  t.nodes.(i)

let run_until_idle t = Engine.run_until_idle t.engine

type export = {
  exp_node : int;
  exp_pid : int;
  vaddr : int;
  frames : int list;
}

let export_buffer t ~node:node_id ~proc ~pages =
  let n = node t node_id in
  let m = n.machine in
  let page_size = Layout.page_size m.M.layout in
  let vaddr = Kernel.alloc_buffer m proc ~bytes:(pages * page_size) in
  let vpn0 = vaddr / page_size in
  let frames =
    List.init pages (fun i -> Vm.pin m proc ~vpn:(vpn0 + i))
  in
  { exp_node = node_id; exp_pid = proc.Udma_os.Proc.pid; vaddr; frames }

let import_export t ~node:node_id ~proc ~first_index export =
  let n = node t node_id in
  let backend = Network_interface.backend n.ni in
  List.iteri
    (fun i frame ->
      let index = first_index + i in
      ignore
        (Backend.grant backend ~owner:proc.Udma_os.Proc.pid ~index
           ~dst_node:export.exp_node ~dst_frame:frame);
      match
        Syscall.map_device_proxy n.machine proc ~vdev_index:index
          ~pdev_index:index ~writable:true
      with
      | Ok () -> ()
      | Error e ->
          invalid_arg
            (Format.asprintf "System.import_export: grant failed (%a)"
               Syscall.pp_error e))
    export.frames

let release_export t export =
  let n = node t export.exp_node in
  List.iter (fun frame -> Vm.unpin n.machine ~frame) export.frames

let auto_bind t ~node:node_id ~proc ~vaddr export =
  let n = node t node_id in
  let page_size = Layout.page_size n.machine.M.layout in
  if vaddr land (page_size - 1) <> 0 then
    invalid_arg "System.auto_bind: vaddr must be page-aligned";
  let vpn0 = vaddr / page_size in
  List.iteri
    (fun i dst_frame ->
      match Vm.frame_of_vpn n.machine proc ~vpn:(vpn0 + i) with
      | Some frame ->
          Auto_update.bind n.auto ~frame ~dst_node:export.exp_node ~dst_frame
      | None -> invalid_arg "System.auto_bind: source page not resident")
    export.frames
