module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Initiator = Udma.Initiator
module M = Udma_os.Machine
module Kernel = Udma_os.Kernel

type channel = {
  system : System.t;
  snd_node : int;
  rcv_node : int;
  rcv_proc : Udma_os.Proc.t;
  first_index : int;
  pages : int;
  page_size : int;
  export : System.export;
  ctrl_vaddr : int; (* sender staging page: holds the flag word *)
  mutable seq : int;
}

let flag_offset ch = (ch.pages * ch.page_size) - 4

let capacity ch = flag_offset ch

let recv_vaddr ch = ch.export.System.vaddr

let sender_node ch = ch.snd_node
let receiver_node ch = ch.rcv_node

let connect system ~sender:(snd_node, snd_proc) ~receiver:(rcv_node, rcv_proc)
    ?(first_index = 0) ~pages () =
  if pages <= 0 then invalid_arg "Messaging.connect: pages must be positive";
  let export = System.export_buffer system ~node:rcv_node ~proc:rcv_proc ~pages in
  System.import_export system ~node:snd_node ~proc:snd_proc ~first_index export;
  let snd_machine = (System.node system snd_node).System.machine in
  let ctrl_vaddr = Kernel.alloc_buffer snd_machine snd_proc ~bytes:4096 in
  (* dirty the staging page once so it can be a transfer source without
     further faults on the fast path *)
  Kernel.write_user snd_machine snd_proc ~vaddr:ctrl_vaddr
    (Bytes.make 4 '\000');
  {
    system;
    snd_node;
    rcv_node;
    rcv_proc;
    first_index;
    pages;
    page_size = Layout.page_size snd_machine.M.layout;
    export;
    ctrl_vaddr;
    seq = 0;
  }

type send_error = Transfer of Initiator.error

let pp_send_error ppf (Transfer e) =
  Format.fprintf ppf "transfer failed: %a" Initiator.pp_error e

let dev_addr ch ~offset =
  let snd_machine = (System.node ch.system ch.snd_node).System.machine in
  Layout.dev_proxy_addr snd_machine.M.layout
    ~page:(ch.first_index + (offset / ch.page_size))
    ~offset:(offset mod ch.page_size)

let dev_vaddr ch ~offset = dev_addr ch ~offset

let check_size ch nbytes =
  if nbytes <= 0 || nbytes land 3 <> 0 || nbytes > capacity ch then
    invalid_arg
      (Printf.sprintf
         "Messaging.send: nbytes %d (must be a positive 4-byte multiple <= %d)"
         nbytes (capacity ch))

let snd_layout ch =
  (System.node ch.system ch.snd_node).System.machine.M.layout

let send_nowait ch cpu ~src_vaddr ~nbytes ?(pipelined = false) ?config () =
  check_size ch nbytes;
  let transfer =
    if pipelined then Initiator.transfer_queued else Initiator.transfer
  in
  match
    transfer cpu ~layout:(snd_layout ch) ?config
      ~src:(Initiator.Memory src_vaddr)
      ~dst:(Initiator.Device (dev_addr ch ~offset:0))
      ~nbytes ()
  with
  | Ok _ -> Ok ()
  | Error e -> Error (Transfer e)

let send_with transfer ch cpu ~src_vaddr ~nbytes ?config () =
  check_size ch nbytes;
  let layout = snd_layout ch in
  match
    transfer cpu ~layout ?config
      ~src:(Initiator.Memory src_vaddr)
      ~dst:(Initiator.Device (dev_addr ch ~offset:0))
      ~nbytes ()
  with
  | Error e -> Error (Transfer e)
  | Ok _ -> (
      ch.seq <- ch.seq + 1;
      (* write the sequence number into the staging word, then push
         that word through the same deliberate-update path *)
      cpu.Initiator.store ~vaddr:ch.ctrl_vaddr (Int32.of_int ch.seq);
      match
        Initiator.transfer cpu ~layout ?config
          ~src:(Initiator.Memory ch.ctrl_vaddr)
          ~dst:(Initiator.Device (dev_addr ch ~offset:(flag_offset ch)))
          ~nbytes:4 ()
      with
      | Ok _ -> Ok ch.seq
      | Error e -> Error (Transfer e))

let send ch cpu ~src_vaddr ~nbytes ?config () =
  send_with
    (fun cpu ~layout ?config ~src ~dst ~nbytes () ->
      Initiator.transfer cpu ~layout ?config ~src ~dst ~nbytes ())
    ch cpu ~src_vaddr ~nbytes ?config ()

let send_pipelined ch cpu ~src_vaddr ~nbytes ?config () =
  send_with
    (fun cpu ~layout ?config ~src ~dst ~nbytes () ->
      Initiator.transfer_queued cpu ~layout ?config ~src ~dst ~nbytes ())
    ch cpu ~src_vaddr ~nbytes ?config ()

let send_strided ch cpu ~src_vaddr ~stride ~chunk ~nbytes ?config () =
  if chunk <= 0 || stride < chunk then
    invalid_arg "Messaging.send_strided: need chunk > 0 and stride >= chunk";
  send_with
    (fun cpu ~layout ?config ~src ~dst ~nbytes () ->
      Initiator.transfer_shaped cpu ~layout ?config ~src ~dst
        ~shape:(Initiator.Strided_shape { stride; chunk })
        ~nbytes ())
    ch cpu ~src_vaddr ~nbytes ?config ()

(* Hardware-level enqueue: hand the payload straight to the sending
   node's network interface, addressed by the channel's pinned export
   frames — the same destination physical address the NIPT path
   computes. The packet still crosses the NI outgoing FIFO, the wire
   serialisation, the router (with contention when enabled) and the
   receive-side DMA deposit; only the sender's CPU/UDMA initiation is
   skipped. Load generators charge that initiation cost separately (a
   calibrated per-message occupancy), which lets many nodes inject
   concurrently on the one shared clock. *)
let inject ch ?(offset = 0) data =
  let len = Bytes.length data in
  if len <= 0 || offset < 0 || offset + len > capacity ch then
    invalid_arg
      (Printf.sprintf "Messaging.inject: %d bytes at offset %d (capacity %d)"
         len offset (capacity ch));
  let page = offset / ch.page_size and poff = offset mod ch.page_size in
  if poff + len > ch.page_size then
    invalid_arg "Messaging.inject: payload must fit one page (one packet)";
  let frame = List.nth ch.export.System.frames page in
  let ni = (System.node ch.system ch.snd_node).System.ni in
  Network_interface.send_raw ni ~dst_node:ch.rcv_node
    ~dst_paddr:((frame * ch.page_size) + poff)
    data

let recv_poll ch cpu =
  let flag_vaddr = recv_vaddr ch + flag_offset ch in
  Int32.to_int (cpu.Initiator.load ~vaddr:flag_vaddr)

let recv_wait ch cpu ~seq ?(max_polls = 10_000_000) () =
  let engine = System.engine ch.system in
  let rec loop polls =
    if polls >= max_polls then Error "Messaging.recv_wait: poll budget exhausted"
    else if recv_poll ch cpu >= seq then Ok polls
    else begin
      (* if nothing is in flight the flag can never change *)
      if Engine.pending_events engine = 0 && recv_poll ch cpu < seq then
        Error "Messaging.recv_wait: no pending events, flag will never arrive"
      else loop (polls + 1)
    end
  in
  loop 0

let read_payload ch ~len =
  let machine = (System.node ch.system ch.rcv_node).System.machine in
  Kernel.read_user machine ch.rcv_proc ~vaddr:(recv_vaddr ch) ~len
