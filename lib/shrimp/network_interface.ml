module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Event = Udma_obs.Event
module Metrics = Udma_obs.Metrics
module Layout = Udma_mmu.Layout
module Page_table = Udma_mmu.Page_table
module Pte = Udma_mmu.Pte
module Phys_mem = Udma_memory.Phys_mem
module Bus = Udma_dma.Bus
module Device = Udma_dma.Device
module Udma_engine = Udma.Udma_engine
module M = Udma_os.Machine
module Backend = Udma_protect.Backend

type config = {
  packetize_cycles : int;
  out_fifo_bytes : int;
  in_fifo_bytes : int;
  link_word_cycles : int;
}

let default_config =
  {
    packetize_cycles = 15;
    out_fifo_bytes = 65536;
    in_fifo_bytes = 65536;
    link_word_cycles = 1;
  }

type t = {
  id : int;
  machine : M.t;
  config : config;
  backend : Backend.t;
  out_fifo : Fifo.t;
  in_fifo : Fifo.t;
  mutable router : Router.t option;
  mutable out_busy_until : int;
  mutable in_busy_until : int;
  mutable next_seq : int;
  mutable packets_sent : int;
  mutable bytes_sent : int;
  mutable packets_received : int;
  mutable bytes_received : int;
  mutable send_drops : int;
  mutable receive_drops : int;
  mutable delivery_errors : int;
}

let create ~id ~machine ?(config = default_config) () =
  {
    id;
    machine;
    config;
    backend =
      Backend.create Backend.Proxy
        ~entries:(Layout.dev_pages machine.M.layout) ();
    out_fifo = Fifo.create ~capacity_bytes:config.out_fifo_bytes;
    in_fifo = Fifo.create ~capacity_bytes:config.in_fifo_bytes;
    router = None;
    out_busy_until = 0;
    in_busy_until = 0;
    next_seq = 0;
    packets_sent = 0;
    bytes_sent = 0;
    packets_received = 0;
    bytes_received = 0;
    send_drops = 0;
    receive_drops = 0;
    delivery_errors = 0;
  }

let id t = t.id
let backend t = t.backend

let set_router t router = t.router <- Some router

let validate t ~dev_addr ~nbytes =
  let page_size = Layout.page_size t.machine.M.layout in
  Backend.validate_bits t.backend ~dev_addr ~nbytes ~page_size

(* Launch one packet: serialise on the outgoing link, then route. *)
let launch t pkt =
  match t.router with
  | None -> t.send_drops <- t.send_drops + 1
  | Some router ->
      if Fifo.push t.out_fifo pkt then begin
        let engine = t.machine.M.engine in
        let now = Engine.now engine in
        let words = (Packet.size_bytes pkt + 3) / 4 in
        let start = max now t.out_busy_until in
        t.out_busy_until <- start + (words * t.config.link_word_cycles);
        (* Link serialisation is wire time. *)
        Engine.schedule engine ~cat:Engine.Profiler.Wire
          ~delay:(t.out_busy_until - now) (fun _ ->
            match Fifo.pop t.out_fifo with
            | Some pkt ->
                t.packets_sent <- t.packets_sent + 1;
                t.bytes_sent <- t.bytes_sent + Bytes.length pkt.Packet.payload;
                Metrics.incr t.machine.M.metrics "ni.packets_sent";
                Metrics.add t.machine.M.metrics "ni.bytes_sent"
                  (Bytes.length pkt.Packet.payload);
                Router.send router pkt
            | None -> ())
      end
      else begin
        t.send_drops <- t.send_drops + 1;
        Metrics.incr t.machine.M.metrics "ni.send_drops"
      end

(* The DMA engine hands over a whole transfer's data at once. *)
let dev_write t ~addr data =
  let page_size = Layout.page_size t.machine.M.layout in
  let page = addr / page_size and offset = addr mod page_size in
  match Backend.decode t.backend ~index:page with
  | None ->
      (* validated at initiation; a vanished entry is a kernel bug *)
      t.send_drops <- t.send_drops + 1
  | Some { Backend.dst_node; dst_frame; owner = _ } ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      Trace.record t.machine.M.trace
        ~time:(Engine.now t.machine.M.engine) Event.Ni
        (Event.Packetize { dst_node; nbytes = Bytes.length data });
      launch t
        {
          Packet.src_node = t.id;
          dst_node;
          dst_paddr = (dst_frame * page_size) + offset;
          payload = Bytes.copy data;
          seq;
        }

let send_raw t ~dst_node ~dst_paddr data =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  launch t
    { Packet.src_node = t.id; dst_node; dst_paddr; payload = Bytes.copy data;
      seq }

(* EISA DMA on the receiving node: write payload to physical memory
   and mark the page dirty so the data survives paging (paper §6 I3 —
   here the hardware path, with the receive mapping pinned at import
   time). *)
let deposit t pkt =
  let mem = t.machine.M.mem in
  let paddr = pkt.Packet.dst_paddr in
  let len = Bytes.length pkt.Packet.payload in
  if paddr < 0 || paddr + len > Phys_mem.size mem then begin
    t.delivery_errors <- t.delivery_errors + 1;
    Metrics.incr t.machine.M.metrics "ni.delivery_errors"
  end
  else begin
    Phys_mem.write_bytes mem ~addr:paddr pkt.Packet.payload;
    t.packets_received <- t.packets_received + 1;
    t.bytes_received <- t.bytes_received + len;
    Metrics.incr t.machine.M.metrics "ni.packets_received";
    Metrics.add t.machine.M.metrics "ni.bytes_received" len;
    let frame = paddr / Layout.page_size t.machine.M.layout in
    match Hashtbl.find_opt t.machine.M.frame_owner frame with
    | Some (pid, vpn) -> (
        match M.find_proc t.machine ~pid with
        | Some proc -> (
            match Page_table.find proc.Udma_os.Proc.page_table vpn with
            | Some pte -> pte.Pte.dirty <- true
            | None -> ())
        | None -> ())
    | None -> ()
  end

let receive t pkt =
  if Fifo.push t.in_fifo pkt then begin
    let engine = t.machine.M.engine in
    let now = Engine.now engine in
    let dma_cycles =
      Bus.dma_burst_cycles t.machine.M.bus ~nbytes:(Packet.size_bytes pkt)
    in
    let start = max now t.in_busy_until in
    t.in_busy_until <- start + dma_cycles;
    (* The receive-side deposit is the NI device writing memory. *)
    Engine.schedule engine ~cat:Engine.Profiler.Device
      ~delay:(t.in_busy_until - now) (fun _ ->
        match Fifo.pop t.in_fifo with
        | Some pkt -> deposit t pkt
        | None -> ())
  end
  else begin
    t.receive_drops <- t.receive_drops + 1;
    Metrics.incr t.machine.M.metrics "ni.receive_drops"
  end

let port t =
  Device.
    {
      name = Printf.sprintf "shrimp-ni%d" t.id;
      dev_write = (fun ~addr b -> dev_write t ~addr b);
      dev_read =
        (fun ~addr:_ ~len ->
          (* send-only: never called because [readable] is false *)
          Bytes.make len '\000');
      access_cycles = (fun ~addr:_ ~len:_ -> t.config.packetize_cycles);
      writable =
        (fun ~addr ->
          let page_size = Layout.page_size t.machine.M.layout in
          Backend.decode t.backend ~index:(addr / page_size) <> None);
      readable = (fun ~addr:_ -> false);
    }

let attach t =
  match t.machine.M.udma with
  | None -> failwith "Network_interface.attach: machine has no UDMA engine"
  | Some udma ->
      Udma_engine.attach_device udma ~base_page:0
        ~pages:(Layout.dev_pages t.machine.M.layout) ~port:(port t)
        ~validate:(fun ~dev_addr ~nbytes -> validate t ~dev_addr ~nbytes)
        ()

let packets_sent t = t.packets_sent
let bytes_sent t = t.bytes_sent
let packets_received t = t.packets_received
let bytes_received t = t.bytes_received
let send_drops t = t.send_drops
let receive_drops t = t.receive_drops
let delivery_errors t = t.delivery_errors
