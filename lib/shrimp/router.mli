(** The interconnect: a 2-D mesh router standing in for the Intel
    Paragon routing backplane (paper §8), with a choice of wormhole
    routing policy.

    With [link_contention] off (the default), packet latency is the
    closed form [base + hops·per_hop + words·per_word]; each link is
    cut-through so only total occupancy matters for the shapes the
    evaluation measures. With it on, every directed mesh link is a
    FIFO wire: the header claims each link along the path as the wire
    frees, each claim holds the link for the packet's full word
    occupancy, and queueing delay accumulates hop by hop — on idle
    links this telescopes to exactly the closed form, so the option
    changes nothing until the network is actually loaded. Link
    utilisation and queue depth are published as [net.link.*] metrics
    into the engine's registry.

    {b Routing policies.} [`Dimension_order] (the default) walks X to
    the destination column, then Y — one fixed path per (src, dst).
    [`Minimal_adaptive] chooses at every hop, among the (at most two)
    productive links — those reducing the remaining X or Y distance —
    the one with the smaller [busy_until], preferring live links over
    dead ones and the X link on ties, so an idle mesh reproduces the
    dimension-order path exactly. Both policies are minimal: every
    packet crosses exactly [hops] links. Adaptive choice needs the
    per-link busy state, so it only differs from dimension order when
    [link_contention] is on.

    {b In-order delivery.} Delivery between a pair of nodes is in
    order — a small packet never overtakes a large one sent before it
    (SHRIMP's flag-after-payload notification depends on this). Under
    dimension-order the fixed path plus FIFO links give this for free;
    under minimal-adaptive, packets of one pair can take different
    paths, so [send] additionally clamps every arrival to after the
    pair's previous arrival. test_props checks the guarantee under
    contention for both policies with interleaved multi-flow traffic. *)

type routing = [ `Dimension_order | `Minimal_adaptive ]

type config = {
  base_cycles : int;       (** injection + ejection *)
  per_hop_cycles : int;
  per_word_cycles : int;   (** wire occupancy per 32-bit word *)
  link_contention : bool;
      (** model per-link FIFO queueing (default off: closed form) *)
  routing : routing;
      (** path policy; [`Minimal_adaptive] needs [link_contention] to
          have any effect (default [`Dimension_order]) *)
}

val default_config : config
(** 20 / 8 / 1 cycles, contention off, dimension-order. *)

type t

val mesh_width : int -> int
(** Width of the squarest mesh covering a node count. *)

val valid_nodes : int -> bool
(** A node count is routable iff it fills complete rows of the
    {!mesh_width} mesh (2, 4, 6, 9, 12, 16, 20, 25, ...); a partial
    top row would put phantom ids [>= nodes] on routes. *)

val create :
  engine:Udma_sim.Engine.t -> nodes:int -> ?config:config -> unit -> t
(** A mesh of the squarest shape covering [nodes]. Raises
    [Invalid_argument] unless {!valid_nodes}[ nodes]. *)

val nodes : t -> int

val width : t -> int
(** Mesh width (ids are row-major: [id = x + y·width]). *)

val coords : t -> int -> int * int
(** Mesh coordinates of a node id. *)

val hops : t -> src:int -> dst:int -> int
(** Minimal hop count ([0] for self; both policies are minimal). *)

val path : t -> src:int -> dst:int -> (int * int) list
(** The dimension-order (from, to) links, x first then y; empty for
    [src = dst]. *)

val route : t -> src:int -> dst:int -> (int * int) list
(** The links the configured policy would pick {e right now}, against
    the current link busy/fault state, without claiming anything.
    Equals {!path} under [`Dimension_order]. *)

val register : t -> node_id:int -> (Packet.t -> unit) -> unit
(** Install node [node_id]'s delivery sink. *)

val send : t -> Packet.t -> unit
(** Route a packet: its sink fires after the modelled latency. Raises
    [Invalid_argument] for an unregistered destination. *)

val latency_cycles : t -> src:int -> dst:int -> bytes:int -> int
(** The contention-free closed form (a lower bound when
    [link_contention] is on). *)

(** {1 Link faults}

    Faults live in the contended link model: with [link_contention]
    off packets never touch per-link state and faults change nothing.
    A [Link_slow k] link holds the wire [k]× the normal occupancy per
    crossing. A [Link_dead] link is avoided by [`Minimal_adaptive]
    whenever another productive link exists; when it is the only
    productive link (or the policy is dimension-order), the packet
    still crosses — at {!dead_crossing_factor}× occupancy, modelling
    the recovery/retransmit path — and [net.link.dead_crossings]
    counts it. Delivery therefore always completes and the in-order
    clamp keeps its guarantee under any fault mix. *)

type fault = Link_ok | Link_slow of int | Link_dead

val dead_crossing_factor : int

val set_link_fault : t -> from_node:int -> to_node:int -> fault -> unit
(** Set the fault state of one directed mesh link. Raises
    [Invalid_argument] unless the nodes are mesh neighbours (and, for
    [Link_slow k], [k >= 1]). [Link_ok] heals the link. *)

val link_fault : t -> from_node:int -> to_node:int -> fault

(** {1 Link statistics} (all zero unless [link_contention]) *)

type link_stat = {
  from_node : int;
  to_node : int;
  xmits : int;          (** packets that crossed this link *)
  busy_cycles : int;    (** cycles the wire was occupied *)
  wait_cycles : int;    (** head-of-line blocking accumulated here *)
  max_depth : int;      (** deepest FIFO occupancy observed *)
}

val link_stats : t -> link_stat list
(** Every link that carried at least one packet, sorted by (from, to). *)

val publish_link_gauges : t -> unit
(** Publish per-link utilisation ([busy_cycles / now]) as
    [net.link.util.A-B] gauges into the engine's metrics registry. *)

val packets_routed : t -> int
val bytes_routed : t -> int
