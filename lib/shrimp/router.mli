(** The interconnect: a 2-D mesh with dimension-order routing, standing
    in for the Intel Paragon routing backplane (paper §8).

    With [link_contention] off (the default), packet latency is the
    closed form [base + hops·per_hop + words·per_word]; each link is
    cut-through so only total occupancy matters for the shapes the
    evaluation measures. With it on, every directed mesh link is a
    FIFO wire: the header claims each link along the dimension-order
    path as the wire frees, each claim holds the link for the packet's
    full word occupancy, and queueing delay accumulates hop by hop —
    on idle links this telescopes to exactly the closed form, so the
    option changes nothing until the network is actually loaded. Link
    utilisation and queue depth are published as [net.link.*] metrics
    into the engine's registry.

    Dimension-order routing uses one fixed path per (src, dst) pair
    and each link serves in FIFO order, so delivery between a pair of
    nodes is in order — a small packet never overtakes a large one
    sent before it (SHRIMP's flag-after-payload notification depends
    on this; test_props checks it under contention with interleaved
    multi-flow traffic). *)

type config = {
  base_cycles : int;       (** injection + ejection *)
  per_hop_cycles : int;
  per_word_cycles : int;   (** wire occupancy per 32-bit word *)
  link_contention : bool;
      (** model per-link FIFO queueing (default off: closed form) *)
}

val default_config : config
(** 20 / 8 / 1 cycles, contention off. *)

type t

val create :
  engine:Udma_sim.Engine.t -> nodes:int -> ?config:config -> unit -> t
(** A mesh of the squarest shape covering [nodes]. *)

val nodes : t -> int

val width : t -> int
(** Mesh width (ids are row-major: [id = x + y·width]). *)

val coords : t -> int -> int * int
(** Mesh coordinates of a node id. *)

val hops : t -> src:int -> dst:int -> int
(** Dimension-order hop count ([0] for self). *)

val path : t -> src:int -> dst:int -> (int * int) list
(** The directed (from, to) links the packet traverses, x first then
    y; empty for [src = dst]. *)

val register : t -> node_id:int -> (Packet.t -> unit) -> unit
(** Install node [node_id]'s delivery sink. *)

val send : t -> Packet.t -> unit
(** Route a packet: its sink fires after the modelled latency. Raises
    [Invalid_argument] for an unregistered destination. *)

val latency_cycles : t -> src:int -> dst:int -> bytes:int -> int
(** The contention-free closed form (a lower bound when
    [link_contention] is on). *)

(** {1 Link statistics} (all zero unless [link_contention]) *)

type link_stat = {
  from_node : int;
  to_node : int;
  xmits : int;          (** packets that crossed this link *)
  busy_cycles : int;    (** cycles the wire was occupied *)
  wait_cycles : int;    (** head-of-line blocking accumulated here *)
  max_depth : int;      (** deepest FIFO occupancy observed *)
}

val link_stats : t -> link_stat list
(** Every link that carried at least one packet, sorted by (from, to). *)

val publish_link_gauges : t -> unit
(** Publish per-link utilisation ([busy_cycles / now]) as
    [net.link.util.A-B] gauges into the engine's metrics registry. *)

val packets_routed : t -> int
val bytes_routed : t -> int
