(** The interconnect: a 2-D mesh router standing in for the Intel
    Paragon routing backplane (paper §8), with a choice of wormhole
    routing policy.

    With [link_contention] off (the default), packet latency is the
    closed form [base + hops·per_hop + words·per_word]; each link is
    cut-through so only total occupancy matters for the shapes the
    evaluation measures. With it on, every directed mesh link is a
    FIFO wire: the header claims each link along the path as the wire
    frees, each claim holds the link for the packet's full word
    occupancy, and queueing delay accumulates hop by hop — on idle
    links this telescopes to exactly the closed form, so the option
    changes nothing until the network is actually loaded. Link
    utilisation and queue depth are published as [net.link.*] metrics
    into the engine's registry.

    {b Routing policies.} [`Dimension_order] (the default) walks X to
    the destination column, then Y — one fixed path per (src, dst).
    [`Minimal_adaptive] chooses at every hop, among the (at most two)
    productive links — those reducing the remaining X or Y distance —
    the one with the smaller [busy_until], preferring live links over
    dead ones and the X link on ties, so an idle mesh reproduces the
    dimension-order path exactly. Both policies are minimal: every
    packet crosses exactly [hops] links. Adaptive choice needs the
    per-link busy state, so it only differs from dimension order when
    [link_contention] is on.

    {b Virtual channels.} With [vc_count > 1] each directed link
    multiplexes 2–4 virtual channels over one physical wire. VC
    assignment is packet-granularity: a whole packet rides one VC per
    link (wormhole flits of one packet never interleave on a VC), and
    the allocator round-robins among the {e ready} VCs — those whose
    previous packet's tail has cleared the wire by the time this
    header arrives. The wire itself is a shared resource booked by
    reservation: a claim takes the earliest gap in the link's
    outstanding reservations, so a packet on VC 1 can backfill an
    idle window in front of a long VC 0 transfer instead of queueing
    behind its tail — that backfill is the head-of-line-blocking
    relief VCs exist for. Per-VC depth and grant counts are published
    as [net.vc.*] metrics.

    {b Credit-based flow control.} With [rx_credits = Some n] the
    receive FIFO behind each (link, VC) has [n] deposit slots. A claim
    must take the slot that frees soonest; when none is free by the
    header's arrival the claim stalls ([net.credit.stalls] /
    [net.credit.stall_cycles]) instead of queueing without bound. On a
    [Link_dead] link the deposit side's credit returns are lost, so
    grants are quantised to {!nack_retry_cycles} retry polls, each
    counted in [net.credit.nacks]. Sources can consult
    {!injection_ready} to stall at injection rather than on the wire.
    Credit conservation ([held + in_flight + free = capacity] per
    (link, VC), checked by {!check_credits}) and arbitration fairness
    (a ready VC is granted within [vc_count] rounds, checked by
    {!check_arbitration}) are the N1/N2 oracles of the chaos harness;
    {!set_mutation} plants the deliberate bugs proving them sound.

    {b In-order delivery.} Delivery between a pair of nodes is in
    order — a small packet never overtakes a large one sent before it
    (SHRIMP's flag-after-payload notification depends on this). Under
    dimension-order the fixed path plus FIFO links give this for free;
    under minimal-adaptive or with several VCs, packets of one pair
    can take different paths or channels, so [send] additionally
    clamps every arrival to after the pair's previous arrival.
    test_props checks the guarantee under contention for both policies
    and with VCs + finite credits enabled. *)

type routing = [ `Dimension_order | `Minimal_adaptive ]

(** How a contended wire is modelled. [`Analytic] (the default) is the
    packet-granularity reservation model described above — whole
    packets claim whole wire intervals, so anchors over it are
    byte-identical to the pre-flit router. [`Flit] decomposes every
    packet into head/body/tail flits of [flit_words] words and runs a
    cycle-by-cycle wormhole network: each directed link has per-VC
    input FIFOs of [rx_credits] flit slots, a round-robin arbiter (the
    same {!arbitrate} discipline, per output wire) advances at most
    one flit per link per flit-cycle, credits return per flit slot,
    body flits follow the path and VC their head reserved, and a
    blocked head stalls the worm in place — holding buffer slots
    across multiple links, which is the head-of-line blocking the
    analytic wire cannot express (E18 measures the delta). Flit mode
    is dimension-order only and, like faults and credits, lives in the
    contended link model ([link_contention = false] ignores it). *)
type crossing = [ `Analytic | `Flit ]

type config = {
  base_cycles : int;       (** injection + ejection *)
  per_hop_cycles : int;
  per_word_cycles : int;   (** wire occupancy per 32-bit word *)
  link_contention : bool;
      (** model per-link FIFO queueing (default off: closed form) *)
  routing : routing;
      (** path policy; [`Minimal_adaptive] needs [link_contention] to
          have any effect (default [`Dimension_order]) *)
  vc_count : int;
      (** virtual channels per directed link, 1..4 (default 1: the
          single-FIFO model, bit-for-bit) *)
  rx_credits : int option;
      (** deposit slots per (link, VC) receive FIFO; [None] (default)
          = unlimited, the pre-credit model. Like faults, credits live
          in the contended link model only. In flit mode this is the
          per-(link, VC) input-FIFO depth in flits, fixed at creation
          ({!set_rx_credits} only resizes the analytic pools). *)
  crossing : crossing;
      (** wire model under contention (default [`Analytic]) *)
  flit_words : int;
      (** 32-bit words per flit in [`Flit] mode, [>= 1] (default 1);
          a flit occupies a wire for [flit_words · per_word_cycles]
          cycles (fault-scaled) *)
}

val default_config : config
(** 20 / 8 / 1 cycles, contention off, dimension-order, 1 VC,
    unlimited credits, analytic crossing, 1-word flits. *)

type t

val mesh_width : int -> int
(** Width of the squarest mesh covering a node count. *)

val valid_nodes : int -> bool
(** A node count is routable iff it fills complete rows of the
    {!mesh_width} mesh (2, 4, 6, 9, 12, 16, 20, 25, ...); a partial
    top row would put phantom ids [>= nodes] on routes. *)

val create :
  engine:Udma_sim.Engine.t -> nodes:int -> ?config:config -> unit -> t
(** A mesh of the squarest shape covering [nodes]. Raises
    [Invalid_argument] unless {!valid_nodes}[ nodes], [vc_count] is in
    1..4, [rx_credits] (when finite) is [>= 1], [flit_words >= 1],
    and the crossing/routing combination is supported ([`Flit] is
    dimension-order only). *)

val nodes : t -> int

val width : t -> int
(** Mesh width (ids are row-major: [id = x + y·width]). *)

val coords : t -> int -> int * int
(** Mesh coordinates of a node id. *)

val hops : t -> src:int -> dst:int -> int
(** Minimal hop count ([0] for self; both policies are minimal). *)

val path : t -> src:int -> dst:int -> (int * int) list
(** The dimension-order (from, to) links, x first then y; empty for
    [src = dst]. *)

val route : t -> src:int -> dst:int -> (int * int) list
(** The links the configured policy would pick {e right now}, against
    the current link busy/fault state, without claiming anything.
    Equals {!path} under [`Dimension_order]. *)

val register : t -> node_id:int -> (Packet.t -> unit) -> unit
(** Install node [node_id]'s delivery sink. *)

val send : t -> Packet.t -> unit
(** Route a packet: its sink fires after the modelled latency. Raises
    [Invalid_argument] for an unregistered destination. *)

val latency_cycles : t -> src:int -> dst:int -> bytes:int -> int
(** The contention-free closed form (a lower bound when
    [link_contention] is on). *)

(** {1 Link faults}

    Faults live in the contended link model: with [link_contention]
    off packets never touch per-link state and faults change nothing.
    A [Link_slow k] link holds the wire [k]× the normal occupancy per
    crossing. A [Link_dead] link is avoided by [`Minimal_adaptive]
    whenever another productive link exists; when it is the only
    productive link (or the policy is dimension-order), the packet
    still crosses — at {!dead_crossing_factor}× occupancy, modelling
    the recovery/retransmit path — and [net.link.dead_crossings]
    counts it. Delivery therefore always completes and the in-order
    clamp keeps its guarantee under any fault mix. *)

type fault = Link_ok | Link_slow of int | Link_dead

val dead_crossing_factor : int

val set_link_fault : t -> from_node:int -> to_node:int -> fault -> unit
(** Set the fault state of one directed mesh link. Raises
    [Invalid_argument] unless the nodes are mesh neighbours (and, for
    [Link_slow k], [k >= 1]). [Link_ok] heals the link. *)

val link_fault : t -> from_node:int -> to_node:int -> fault

(** {1 Virtual channels and credits} *)

val nack_retry_cycles : int
(** Retry-poll period for credit grants across a dead link. *)

val arbitrate : rr:int -> ready:bool array -> int option
(** The pure round-robin arbiter: the first ready VC scanning
    circularly from [rr], or [None] when none is ready. Advancing
    [rr] to just past each grant bounds a continuously-ready VC's
    wait to [vc_count - 1] skipped rounds — the no-starvation
    property test_props exercises directly. *)

val set_rx_credits : t -> int option -> unit
(** Resize every (link, VC) deposit FIFO under load (the chaos mesh's
    credit squeeze). Growing adds slots free now; shrinking revokes
    the most-available slots first, never yanking a buffer from under
    an in-flight packet — the freed-slot count can therefore go
    transiently negative while revoked buffers drain, but credit
    conservation is preserved. [None] removes the credit limit.
    Raises [Invalid_argument] for [Some n] with [n < 1]. *)

val rx_credits : t -> int option
(** The current deposit-FIFO capacity ([None] = unlimited). *)

val injection_ready : t -> src:int -> dst:int -> int
(** Earliest cycle ([>= now]) the first-hop link toward [dst] has a
    deposit slot free on some VC. [now] whenever credits are
    unlimited, contention is off, or [src = dst]. Sources use this to
    stall injection instead of queueing on the wire. *)

type mutation = Credit_leak | Arb_stuck | Flit_leak | Double_grant

val set_mutation : t -> mutation option -> unit
(** Plant a deliberate flow-control bug for oracle-soundness tests:
    [Credit_leak] drops exactly one credit return (the slot never
    frees and the conservation sum comes up short — N1);
    [Arb_stuck] pins every VC grant to VC 0 (a ready VC's skip streak
    grows past [vc_count] — N2); [Flit_leak] drops exactly one flit on
    a dead-link retry crossing and [Double_grant] moves two flits of
    one worm in a single flit-cycle against one credit — both flit
    bugs are caught by {!check_flits} (F1) and only fire in [`Flit]
    mode. *)

val check_credits : t -> string option
(** N1, credit conservation: [Some detail] iff some (link, VC) pool
    has [held + in_flight + free <> capacity] (or negative
    in-flight). Holds at {e every} cycle in an unmutated router. *)

val check_arbitration : t -> string option
(** N2, arbitration fairness: [Some detail] iff some ready VC has
    been skipped [vc_count] or more consecutive arbitration rounds. *)

type vc_stat = {
  vc_from : int;
  vc_to : int;
  vc_index : int;
  vc_grants : int;      (** packets granted to this VC *)
  vc_max_depth : int;   (** deepest per-VC occupancy observed *)
  vc_max_skip : int;    (** worst ready-but-skipped streak *)
}

val vc_stats : t -> vc_stat list
(** Per-VC counters for every link that exists, sorted by
    (from, to, vc). *)

type credit_stat = {
  cr_from : int;
  cr_to : int;
  cr_vc : int;
  cr_capacity : int;
  cr_held : int;
  cr_inflight : int;
  cr_free : int;
}

val credit_stats : t -> credit_stat list
(** Per-(link, VC) credit-pool state, sorted by (from, to, vc); empty
    when credits are unlimited. *)

(** {1 Flit-level crossing} (all empty/zero unless [crossing = `Flit]
    with [link_contention]) *)

val check_flits : t -> string option
(** F1, flit conservation: [Some detail] iff flits injected differ
    from flits delivered plus flits sitting in FIFOs, or some finite
    input FIFO has [credits + occupancy <> capacity] (or occupancy
    beyond capacity). Holds at {e every} flit-cycle in an unmutated
    router; always [None] in analytic mode. *)

type flit_stat = {
  fl_from : int;
  fl_to : int;
  fl_vc : int;
  fl_capacity : int;      (** input-FIFO flit slots; -1 = unlimited *)
  fl_occ : int;           (** flits buffered right now *)
  fl_credits : int;       (** sender-side credits; -1 = unlimited *)
  fl_max_occ : int;
  fl_grants : int;        (** flits pushed into this FIFO *)
  fl_stall_cycles : int;  (** link cycles with a ready waiter, no grant *)
  fl_hol_cycles : int;    (** of those, cycles the wire itself was free *)
}

val flit_stats : t -> flit_stat list
(** Per-(link, VC) input-FIFO state, in (from, to, vc) order. *)

val flit_counts : t -> int * int * int
(** [(injected, delivered, in_network)] flit totals; conservation
    means the first equals the sum of the other two. *)

val flit_vc_occupancy : t -> (float * int) array
(** Per VC index: (mean, max) total buffered flits across all links,
    the mean taken over active flit-cycles — the per-VC occupancy
    profile E18 reports. *)

(** {1 Link statistics} (all zero unless [link_contention]) *)

type link_stat = {
  from_node : int;
  to_node : int;
  xmits : int;          (** packets that crossed this link *)
  busy_cycles : int;    (** cycles the wire was occupied *)
  wait_cycles : int;    (** head-of-line blocking accumulated here *)
  max_depth : int;      (** deepest FIFO occupancy observed *)
}

val link_stats : t -> link_stat list
(** Every link that carried at least one packet, sorted by (from, to). *)

val publish_link_gauges : t -> unit
(** Publish per-link utilisation ([busy_cycles / now]) as
    [net.link.util.A-B] gauges into the engine's metrics registry. *)

val packets_routed : t -> int
val bytes_routed : t -> int
