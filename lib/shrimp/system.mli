(** A SHRIMP multicomputer: nodes (each a full {!Udma_os.Machine})
    joined by one router on one simulation clock.

    Also hosts the kernel-level export/import protocol that sets up
    deliberate-update communication: the receiver {e exports} a pinned
    buffer; the sender {e imports} it by filling NIPT entries and
    mapping the matching device-proxy pages (paper §8). *)

type node = {
  id : int;
  machine : Udma_os.Machine.t;
  ni : Network_interface.t;
  auto : Auto_update.t;
}

type config = {
  machine : Udma_os.Machine.config;
  router : Router.config;
  ni : Network_interface.config;
}

val default_config : config

type t

val create :
  ?config:config ->
  ?skip_invariant:Udma_os.Machine.invariant ->
  nodes:int ->
  unit ->
  t
(** Build [nodes] nodes, each with a UDMA engine and a network
    interface attached over the whole device-proxy region, registered
    on a shared router and engine. [skip_invariant] plants the
    deliberate kernel bug of {!Udma_os.Machine.create} in {e every}
    node (chaos-harness mutation testing); the network invariants
    [`N1]/[`N2] are forwarded to the shared router instead, as
    {!Router.set_mutation} [Credit_leak] / [Arb_stuck], and the
    protection bugs [`P1]/[`P2] are forwarded to every node's NI
    backend, as {!Udma_protect.Backend.set_mutation} [Owner_skip 0] /
    [Stale_revoke]. Raises [Invalid_argument] if the configured
    machine has no UDMA mode. *)

val engine : t -> Udma_sim.Engine.t
val router : t -> Router.t
val node_count : t -> int
val node : t -> int -> node

val run_until_idle : t -> unit
(** Drain all in-flight packets and transfers. *)

(** {1 Export / import} *)

type export = {
  exp_node : int;
  exp_pid : int;
  vaddr : int;       (** receiver virtual address of the buffer *)
  frames : int list; (** pinned physical frames, in order *)
}

val export_buffer : t -> node:int -> proc:Udma_os.Proc.t -> pages:int -> export
(** Allocate, map and pin a receive buffer of [pages] pages on [node]
    (the pin is the import-time kernel operation that keeps incoming
    packets' physical addresses valid — not on the transfer path). *)

val import_export :
  t -> node:int -> proc:Udma_os.Proc.t -> first_index:int -> export -> unit
(** On the sending node: fill NIPT entries [first_index ...] with the
    export's (node, frame) pairs and map the matching device-proxy
    pages writable into [proc] (each mapping is the §4 grant system
    call). *)

val release_export : t -> export -> unit
(** Unpin an exported buffer's frames. *)

val auto_bind :
  t -> node:int -> proc:Udma_os.Proc.t -> vaddr:int -> export -> unit
(** Bind the pages of the local buffer at [vaddr] (which must be
    resident; pin them first if paging is active) to the exported
    remote pages, page for page — the automatic-update fixed mapping
    of §9. Raises [Invalid_argument] if sizes mismatch or a page is
    not resident. *)
