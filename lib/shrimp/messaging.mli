(** User-level message passing over deliberate update (paper §8).

    A channel is a one-way mapping from a sender process to an
    exported, pinned receive buffer. [send] is a UDMA transfer of the
    payload followed by a 4-byte flag-word transfer carrying the
    message sequence number; the receiver polls the flag word in its
    own memory with ordinary cached loads — no interrupts, no kernel.

    The last word of the buffer is the flag; the payload capacity is
    the rest. *)

type channel

val capacity : channel -> int
(** Usable payload bytes per message. *)

val recv_vaddr : channel -> int
(** Receiver's virtual address of the payload. *)

val sender_node : channel -> int
val receiver_node : channel -> int

val dev_vaddr : channel -> offset:int -> int
(** Sender's virtual device-proxy address of payload byte [offset] —
    the destination address shaped initiations target directly. *)

val connect :
  System.t ->
  sender:int * Udma_os.Proc.t ->
  receiver:int * Udma_os.Proc.t ->
  ?first_index:int ->
  pages:int ->
  unit ->
  channel
(** Set up a channel using device-proxy/NIPT pages
    [first_index .. first_index+pages-1] (default [first_index] 0) on
    the sending node. Allocates and pins the receive buffer, fills the
    NIPT, maps the proxies, and allocates the sender's staging page. *)

type send_error = Transfer of Udma.Initiator.error

val pp_send_error : Format.formatter -> send_error -> unit

val send :
  channel ->
  Udma.Initiator.cpu ->
  src_vaddr:int ->
  nbytes:int ->
  ?config:Udma.Initiator.config ->
  unit ->
  (int, send_error) result
(** Blocking send of [nbytes] (4-byte multiple, at most [capacity]):
    payload transfer, then flag transfer. Returns the message's
    sequence number. *)

val send_pipelined :
  channel ->
  Udma.Initiator.cpu ->
  src_vaddr:int ->
  nbytes:int ->
  ?config:Udma.Initiator.config ->
  unit ->
  (int, send_error) result
(** Like {!send} but issues the payload pages through the §7 hardware
    queue ([Initiator.transfer_queued]) — two references per page,
    waiting only once. Requires the sending node's UDMA engine to be in
    [Queued] mode for real pipelining; degrades to serialised pieces on
    basic hardware. *)

val send_strided :
  channel ->
  Udma.Initiator.cpu ->
  src_vaddr:int ->
  stride:int ->
  chunk:int ->
  nbytes:int ->
  ?config:Udma.Initiator.config ->
  unit ->
  (int, send_error) result
(** Blocking send that gathers a strided source region — [chunk] bytes
    every [stride] — densely into the channel through one shaped
    initiation (three protected references), then sends the flag. The
    whole strided span must lie within the source page: the hardware
    clamps each element to its own page and silently drops what falls
    outside. *)

val send_nowait :
  channel ->
  Udma.Initiator.cpu ->
  src_vaddr:int ->
  nbytes:int ->
  ?pipelined:bool ->
  ?config:Udma.Initiator.config ->
  unit ->
  (unit, send_error) result
(** Payload only, no flag — the streaming-bandwidth primitive used by
    the Figure 8 measurement. [pipelined] (default false) issues the
    pages through the §7 queue. *)

val inject : channel -> ?offset:int -> bytes -> unit
(** Hardware-level enqueue of one payload packet onto the channel,
    bypassing the sender's CPU/UDMA initiation (which costs no
    simulated cycles here): the bytes enter the sending NI's outgoing
    FIFO addressed at the export's pinned frames, then cross the wire,
    the router and the receive-side DMA deposit as usual. The payload
    must lie within one page so it forms a single packet; no flag word
    is sent. Load generators use this to model many concurrently
    initiating senders on the one shared clock, charging the
    calibrated initiation cost out of band. *)

val recv_poll : channel -> Udma.Initiator.cpu -> int
(** Current value of the flag word (the last delivered sequence
    number; 0 before any message). *)

val recv_wait :
  channel -> Udma.Initiator.cpu -> seq:int -> ?max_polls:int -> unit ->
  (int, string) result
(** Poll until the flag reaches [seq] (default budget 10_000_000
    polls); returns the number of polls. *)

val read_payload : channel -> len:int -> bytes
(** Receiver-side payload bytes (test/verification helper, no cycle
    cost). *)
