module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Metrics = Udma_obs.Metrics
module Event = Udma_obs.Event

type routing = [ `Dimension_order | `Minimal_adaptive ]

type config = {
  base_cycles : int;
  per_hop_cycles : int;
  per_word_cycles : int;
  link_contention : bool;
  routing : routing;
}

let default_config =
  { base_cycles = 20; per_hop_cycles = 8; per_word_cycles = 1;
    link_contention = false; routing = `Dimension_order }

type fault = Link_ok | Link_slow of int | Link_dead

(* A dead link is crossed only when it is the sole productive link left
   (the recovery/retransmit path); the crossing holds the wire this
   many times the normal occupancy. *)
let dead_crossing_factor = 64

(* One directed mesh link. [busy_until] is the cycle at which the wire
   finishes the last packet that reserved it; [inflight] counts packets
   that have claimed the link and whose tails have not yet cleared it
   (the FIFO depth a head-of-line packet sees). *)
type link = {
  l_src : int;
  l_dst : int;
  mutable busy_until : int;
  mutable inflight : int;
  mutable l_max_depth : int;
  mutable l_xmits : int;
  mutable l_busy_cycles : int;
  mutable l_wait_cycles : int;
  mutable l_fault : fault;
}

type link_stat = {
  from_node : int;
  to_node : int;
  xmits : int;
  busy_cycles : int;
  wait_cycles : int;
  max_depth : int;
}

type t = {
  engine : Engine.t;
  config : config;
  node_count : int;
  width : int;
  sinks : (Packet.t -> unit) option array;
  last_arrival : (int * int, int) Hashtbl.t;
      (* the in-order guarantee: [send] clamps every arrival to after
         the pair's previous one. Under dimension-order the fixed path
         plus FIFO links already deliver in order and the clamp is a
         no-op; under minimal-adaptive, packets of one pair may take
         different paths, so the clamp is what keeps the guarantee
         (see test_props: checked under contention for both policies) *)
  links : (int * int, link) Hashtbl.t;
  trace : Trace.t;
  mutable packets_routed : int;
  mutable bytes_routed : int;
}

(* Width of the squarest mesh covering [nodes]. *)
let mesh_width nodes =
  let rec go w = if w * w >= nodes then w else go (w + 1) in
  go 1

(* A node count is routable only when it fills complete rows of that
   mesh: a partial top row would put ids >= nodes on dimension-order
   paths (the phantom-node bug — e.g. 5 nodes in a 3-wide mesh route
   4 -> 2 through the nonexistent node 5). *)
let valid_nodes nodes = nodes > 0 && nodes mod mesh_width nodes = 0

let create ~engine ~nodes ?(config = default_config) () =
  if nodes <= 0 then invalid_arg "Router.create: nodes must be positive";
  let width = mesh_width nodes in
  if nodes mod width <> 0 then
    invalid_arg
      (Printf.sprintf
         "Router.create: %d nodes leaves a partial row in the %d-wide mesh \
          (paths would cross phantom nodes); use a count that fills complete \
          rows, e.g. 2, 4, 6, 9, 12, 16, 25, 36, 64"
         nodes width);
  {
    engine;
    config;
    node_count = nodes;
    width;
    sinks = Array.make nodes None;
    last_arrival = Hashtbl.create 16;
    links = Hashtbl.create 64;
    trace = Trace.create ~enabled:false ();
    packets_routed = 0;
    bytes_routed = 0;
  }

let nodes t = t.node_count
let width t = t.width

let check_node t id what =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Router.%s: node %d out of range" what id)

let coords t id =
  check_node t id "coords";
  (id mod t.width, id / t.width)

let node_id t ~x ~y = x + (y * t.width)

let hops t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  abs (sx - dx) + abs (sy - dy)

(* The dimension-order path as directed (from, to) node pairs: walk x
   to the destination column, then y to the destination row. *)
let path t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  let step v goal = if v < goal then v + 1 else v - 1 in
  let rec go x y acc =
    if x <> dx then
      let x' = step x dx in
      go x' y ((node_id t ~x ~y, node_id t ~x:x' ~y) :: acc)
    else if y <> dy then
      let y' = step y dy in
      go x y' ((node_id t ~x ~y, node_id t ~x ~y:y') :: acc)
    else List.rev acc
  in
  go sx sy []

let link_of t a b =
  match Hashtbl.find_opt t.links (a, b) with
  | Some l -> l
  | None ->
      let l =
        { l_src = a; l_dst = b; busy_until = 0; inflight = 0;
          l_max_depth = 0; l_xmits = 0; l_busy_cycles = 0; l_wait_cycles = 0;
          l_fault = Link_ok }
      in
      Hashtbl.add t.links (a, b) l;
      l

let set_link_fault t ~from_node ~to_node fault =
  check_node t from_node "set_link_fault";
  check_node t to_node "set_link_fault";
  if hops t ~src:from_node ~dst:to_node <> 1 then
    invalid_arg
      (Printf.sprintf "Router.set_link_fault: %d-%d is not a mesh link"
         from_node to_node);
  (match fault with
  | Link_slow k when k < 1 ->
      invalid_arg "Router.set_link_fault: slow factor must be >= 1"
  | Link_ok | Link_slow _ | Link_dead -> ());
  (link_of t from_node to_node).l_fault <- fault

let link_fault t ~from_node ~to_node =
  check_node t from_node "link_fault";
  check_node t to_node "link_fault";
  match Hashtbl.find_opt t.links (from_node, to_node) with
  | Some l -> l.l_fault
  | None -> Link_ok

let occupancy_factor = function
  | Link_ok -> 1
  | Link_slow k -> k
  | Link_dead -> dead_crossing_factor

(* One productive step from (x, y) toward (dx, dy). Dimension-order
   always exhausts X first; minimal-adaptive picks, among the (at most
   two) productive links, a live one over a dead one and then the one
   with the smaller [busy_until], taking the X link on ties so an idle
   mesh reproduces the dimension-order path exactly. *)
let next_coord t ~x ~y ~dx ~dy =
  let step v goal = if v < goal then v + 1 else v - 1 in
  let xc = if x <> dx then Some (step x dx, y) else None in
  let yc = if y <> dy then Some (x, step y dy) else None in
  match (t.config.routing, xc, yc) with
  | _, Some c, None | _, None, Some c -> c
  | `Dimension_order, Some c, Some _ -> c
  | `Minimal_adaptive, Some cx, Some cy ->
      let a = node_id t ~x ~y in
      let cost (cx', cy') =
        let l = link_of t a (node_id t ~x:cx' ~y:cy') in
        ((match l.l_fault with Link_dead -> 1 | Link_ok | Link_slow _ -> 0),
         l.busy_until)
      in
      if cost cy < cost cx then cy else cx
  | _, None, None -> invalid_arg "Router.next_coord: already at destination"

(* The links the configured policy would pick right now, against the
   current link state, without claiming anything. Under
   [`Dimension_order] this equals [path]. *)
let route t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  let rec go x y acc =
    if x = dx && y = dy then List.rev acc
    else
      let x', y' = next_coord t ~x ~y ~dx ~dy in
      go x' y' ((node_id t ~x ~y, node_id t ~x:x' ~y:y') :: acc)
  in
  go sx sy []

let register t ~node_id sink =
  check_node t node_id "register";
  t.sinks.(node_id) <- Some sink

let latency_cycles t ~src ~dst ~bytes =
  let words = (bytes + 3) / 4 in
  t.config.base_cycles
  + (hops t ~src ~dst * t.config.per_hop_cycles)
  + (words * t.config.per_word_cycles)

(* Wormhole walk toward the destination: the header claims each link as
   soon as the wire is free, each claim holds the link for the packet's
   full wire occupancy, and the tail crosses the final wire after the
   header ejects. With idle, healthy links this telescopes to exactly
   the closed-form [base + hops·per_hop + words·per_word]. The link
   choice happens here, hop by hop, so minimal-adaptive sees the busy
   state left by every earlier claim — including this packet's own. *)
let contended_arrival t ~now ~src ~dst ~words =
  let em = Engine.metrics t.engine in
  let occ = words * t.config.per_word_cycles in
  let head = ref (now + t.config.base_cycles) in
  (* the packet's own tail cannot clear a link faster than that link's
     (fault-scaled) occupancy; on healthy links this is always beaten
     by the head+occ term below, so it only matters on slow/dead links *)
  let tail = ref 0 in
  let dx, dy = coords t dst in
  let x = ref (fst (coords t src)) and y = ref (snd (coords t src)) in
  while !x <> dx || !y <> dy do
    let a = node_id t ~x:!x ~y:!y in
    let x', y' = next_coord t ~x:!x ~y:!y ~dx ~dy in
    if !x <> dx && !y <> dy && y' <> !y then
      (* adaptive took the Y link although X was productive too *)
      Metrics.incr em "net.router.adaptive_turns";
    let b = node_id t ~x:x' ~y:y' in
    let l = link_of t a b in
    let locc = occ * occupancy_factor l.l_fault in
    if l.l_fault = Link_dead then Metrics.incr em "net.link.dead_crossings";
    let start = max !head l.busy_until in
    let wait = start - !head in
    l.inflight <- l.inflight + 1;
    if l.inflight > l.l_max_depth then l.l_max_depth <- l.inflight;
    if wait > 0 then begin
      l.l_wait_cycles <- l.l_wait_cycles + wait;
      Metrics.add em "net.link.wait_cycles" wait;
      Metrics.incr em "net.link.queued";
      if Trace.active t.trace then
        Trace.record t.trace ~time:now Event.Ni
          (Event.Link_wait
             { from_node = a; to_node = b; wait; depth = l.inflight })
    end;
    Metrics.observe em "net.link.depth" l.inflight;
    l.busy_until <- start + locc;
    if start + locc > !tail then tail := start + locc;
    l.l_xmits <- l.l_xmits + 1;
    l.l_busy_cycles <- l.l_busy_cycles + locc;
    Metrics.incr em "net.link.xmits";
    Metrics.add em "net.link.busy_cycles" locc;
    Engine.schedule_at t.engine ~time:(start + locc) (fun _ ->
        l.inflight <- l.inflight - 1);
    head := start + t.config.per_hop_cycles;
    x := x';
    y := y'
  done;
  max (!head + occ) !tail

let send t pkt =
  check_node t pkt.Packet.src_node "send";
  check_node t pkt.Packet.dst_node "send";
  match t.sinks.(pkt.Packet.dst_node) with
  | None ->
      invalid_arg
        (Printf.sprintf "Router.send: node %d has no sink" pkt.Packet.dst_node)
  | Some sink ->
      let bytes = Packet.size_bytes pkt in
      let src = pkt.Packet.src_node and dst = pkt.Packet.dst_node in
      let now = Engine.now t.engine in
      let uncontended = now + latency_cycles t ~src ~dst ~bytes in
      let nominal =
        if t.config.link_contention then
          contended_arrival t ~now ~src ~dst ~words:((bytes + 3) / 4)
        else uncontended
      in
      let key = (src, dst) in
      let earliest =
        match Hashtbl.find_opt t.last_arrival key with
        | Some last -> last + 1
        | None -> 0
      in
      let arrival = max nominal earliest in
      Hashtbl.replace t.last_arrival key arrival;
      t.packets_routed <- t.packets_routed + 1;
      t.bytes_routed <- t.bytes_routed + bytes;
      Engine.schedule t.engine ~delay:(arrival - now) (fun _ -> sink pkt)

let link_stats t =
  Hashtbl.fold
    (fun _ l acc ->
      {
        from_node = l.l_src;
        to_node = l.l_dst;
        xmits = l.l_xmits;
        busy_cycles = l.l_busy_cycles;
        wait_cycles = l.l_wait_cycles;
        max_depth = l.l_max_depth;
      }
      :: acc)
    t.links []
  |> List.sort (fun a b -> compare (a.from_node, a.to_node) (b.from_node, b.to_node))

let publish_link_gauges t =
  let em = Engine.metrics t.engine in
  let now = Engine.now t.engine in
  if now > 0 then
    List.iter
      (fun s ->
        Metrics.set_gauge em
          (Printf.sprintf "net.link.util.%d-%d" s.from_node s.to_node)
          (float_of_int s.busy_cycles /. float_of_int now))
      (link_stats t)

let packets_routed t = t.packets_routed
let bytes_routed t = t.bytes_routed
