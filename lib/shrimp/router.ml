module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Metrics = Udma_obs.Metrics
module Event = Udma_obs.Event

type config = {
  base_cycles : int;
  per_hop_cycles : int;
  per_word_cycles : int;
  link_contention : bool;
}

let default_config =
  { base_cycles = 20; per_hop_cycles = 8; per_word_cycles = 1;
    link_contention = false }

(* One directed mesh link. [busy_until] is the cycle at which the wire
   finishes the last packet that reserved it; [inflight] counts packets
   that have claimed the link and whose tails have not yet cleared it
   (the FIFO depth a head-of-line packet sees). *)
type link = {
  l_src : int;
  l_dst : int;
  mutable busy_until : int;
  mutable inflight : int;
  mutable l_max_depth : int;
  mutable l_xmits : int;
  mutable l_busy_cycles : int;
  mutable l_wait_cycles : int;
}

type link_stat = {
  from_node : int;
  to_node : int;
  xmits : int;
  busy_cycles : int;
  wait_cycles : int;
  max_depth : int;
}

type t = {
  engine : Engine.t;
  config : config;
  node_count : int;
  width : int;
  sinks : (Packet.t -> unit) option array;
  last_arrival : (int * int, int) Hashtbl.t;
      (* dimension-order routing uses one fixed path per (src, dst), so
         packets between a pair of nodes are delivered in order (see
         test_props: the property holds with contention enabled too) *)
  links : (int * int, link) Hashtbl.t;
  trace : Trace.t;
  mutable packets_routed : int;
  mutable bytes_routed : int;
}

let create ~engine ~nodes ?(config = default_config) () =
  if nodes <= 0 then invalid_arg "Router.create: nodes must be positive";
  let width =
    let rec go w = if w * w >= nodes then w else go (w + 1) in
    go 1
  in
  {
    engine;
    config;
    node_count = nodes;
    width;
    sinks = Array.make nodes None;
    last_arrival = Hashtbl.create 16;
    links = Hashtbl.create 64;
    trace = Trace.create ~enabled:false ();
    packets_routed = 0;
    bytes_routed = 0;
  }

let nodes t = t.node_count
let width t = t.width

let check_node t id what =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Router.%s: node %d out of range" what id)

let coords t id =
  check_node t id "coords";
  (id mod t.width, id / t.width)

let node_id t ~x ~y = x + (y * t.width)

let hops t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  abs (sx - dx) + abs (sy - dy)

(* The dimension-order path as directed (from, to) node pairs: walk x
   to the destination column, then y to the destination row. *)
let path t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  let step v goal = if v < goal then v + 1 else v - 1 in
  let rec go x y acc =
    if x <> dx then
      let x' = step x dx in
      go x' y ((node_id t ~x ~y, node_id t ~x:x' ~y) :: acc)
    else if y <> dy then
      let y' = step y dy in
      go x y' ((node_id t ~x ~y, node_id t ~x ~y:y') :: acc)
    else List.rev acc
  in
  go sx sy []

let link_of t a b =
  match Hashtbl.find_opt t.links (a, b) with
  | Some l -> l
  | None ->
      let l =
        { l_src = a; l_dst = b; busy_until = 0; inflight = 0;
          l_max_depth = 0; l_xmits = 0; l_busy_cycles = 0; l_wait_cycles = 0 }
      in
      Hashtbl.add t.links (a, b) l;
      l

let register t ~node_id sink =
  check_node t node_id "register";
  t.sinks.(node_id) <- Some sink

let latency_cycles t ~src ~dst ~bytes =
  let words = (bytes + 3) / 4 in
  t.config.base_cycles
  + (hops t ~src ~dst * t.config.per_hop_cycles)
  + (words * t.config.per_word_cycles)

(* Wormhole walk over the packet's path: the header claims each link as
   soon as the wire is free, each claim holds the link for the packet's
   full wire occupancy, and the tail crosses the final wire after the
   header ejects. With idle links this telescopes to exactly the
   closed-form [base + hops·per_hop + words·per_word]. *)
let contended_arrival t ~now ~src ~dst ~words =
  let em = Engine.metrics t.engine in
  let occ = words * t.config.per_word_cycles in
  let head = ref (now + t.config.base_cycles) in
  List.iter
    (fun (a, b) ->
      let l = link_of t a b in
      let start = max !head l.busy_until in
      let wait = start - !head in
      if wait > 0 then begin
        l.l_wait_cycles <- l.l_wait_cycles + wait;
        Metrics.add em "net.link.wait_cycles" wait;
        Metrics.incr em "net.link.queued";
        if Trace.active t.trace then
          Trace.record t.trace ~time:now Event.Ni
            (Event.Link_wait
               { from_node = a; to_node = b; wait; depth = l.inflight })
      end;
      l.inflight <- l.inflight + 1;
      if l.inflight > l.l_max_depth then l.l_max_depth <- l.inflight;
      Metrics.observe em "net.link.depth" l.inflight;
      l.busy_until <- start + occ;
      l.l_xmits <- l.l_xmits + 1;
      l.l_busy_cycles <- l.l_busy_cycles + occ;
      Metrics.incr em "net.link.xmits";
      Metrics.add em "net.link.busy_cycles" occ;
      Engine.schedule_at t.engine ~time:(start + occ) (fun _ ->
          l.inflight <- l.inflight - 1);
      head := start + t.config.per_hop_cycles)
    (path t ~src ~dst);
  !head + occ

let send t pkt =
  check_node t pkt.Packet.src_node "send";
  check_node t pkt.Packet.dst_node "send";
  match t.sinks.(pkt.Packet.dst_node) with
  | None ->
      invalid_arg
        (Printf.sprintf "Router.send: node %d has no sink" pkt.Packet.dst_node)
  | Some sink ->
      let bytes = Packet.size_bytes pkt in
      let src = pkt.Packet.src_node and dst = pkt.Packet.dst_node in
      let now = Engine.now t.engine in
      let uncontended = now + latency_cycles t ~src ~dst ~bytes in
      let nominal =
        if t.config.link_contention then
          contended_arrival t ~now ~src ~dst ~words:((bytes + 3) / 4)
        else uncontended
      in
      let key = (src, dst) in
      let earliest =
        match Hashtbl.find_opt t.last_arrival key with
        | Some last -> last + 1
        | None -> 0
      in
      let arrival = max nominal earliest in
      Hashtbl.replace t.last_arrival key arrival;
      t.packets_routed <- t.packets_routed + 1;
      t.bytes_routed <- t.bytes_routed + bytes;
      Engine.schedule t.engine ~delay:(arrival - now) (fun _ -> sink pkt)

let link_stats t =
  Hashtbl.fold
    (fun _ l acc ->
      {
        from_node = l.l_src;
        to_node = l.l_dst;
        xmits = l.l_xmits;
        busy_cycles = l.l_busy_cycles;
        wait_cycles = l.l_wait_cycles;
        max_depth = l.l_max_depth;
      }
      :: acc)
    t.links []
  |> List.sort (fun a b -> compare (a.from_node, a.to_node) (b.from_node, b.to_node))

let publish_link_gauges t =
  let em = Engine.metrics t.engine in
  let now = Engine.now t.engine in
  if now > 0 then
    List.iter
      (fun s ->
        Metrics.set_gauge em
          (Printf.sprintf "net.link.util.%d-%d" s.from_node s.to_node)
          (float_of_int s.busy_cycles /. float_of_int now))
      (link_stats t)

let packets_routed t = t.packets_routed
let bytes_routed t = t.bytes_routed
