module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Metrics = Udma_obs.Metrics
module Event = Udma_obs.Event

type routing = [ `Dimension_order | `Minimal_adaptive ]
type crossing = [ `Analytic | `Flit ]

type config = {
  base_cycles : int;
  per_hop_cycles : int;
  per_word_cycles : int;
  link_contention : bool;
  routing : routing;
  vc_count : int;
  rx_credits : int option;
  crossing : crossing;
  flit_words : int;
}

let default_config =
  { base_cycles = 20; per_hop_cycles = 8; per_word_cycles = 1;
    link_contention = false; routing = `Dimension_order;
    vc_count = 1; rx_credits = None; crossing = `Analytic; flit_words = 1 }

type fault = Link_ok | Link_slow of int | Link_dead

(* A dead link is crossed only when it is the sole productive link left
   (the recovery/retransmit path); the crossing holds the wire this
   many times the normal occupancy. *)
let dead_crossing_factor = 64

(* On a dead link the deposit side's credit-return notifications are
   lost; the source only learns of a freed slot by retrying and being
   NACK'd, so credit grants are quantised to this polling period. *)
let nack_retry_cycles = 32

type mutation = Credit_leak | Arb_stuck | Flit_leak | Double_grant

(* Round-robin arbitration among the VCs competing for one physical
   link: grant the first ready VC scanning circularly from [rr]. The
   caller advances [rr] to just past the grant, which bounds the wait
   of any continuously-ready VC to [vc_count - 1] skipped rounds (the
   distance from [rr] to that VC strictly shrinks on every skip). *)
let arbitrate ~rr ~ready =
  let n = Array.length ready in
  if n = 0 then None
  else
    let rec go k =
      if k >= n then None
      else
        let v = (rr + k) mod n in
        if ready.(v) then Some v else go (k + 1)
    in
    go 0

(* One virtual channel of a directed link. [v_tail] is the cycle the
   VC's most recent packet clears the wire — the next packet assigned
   to this VC cannot start before it (FIFO within a VC). *)
type vc = {
  mutable v_tail : int;
  mutable v_inflight : int;
  mutable v_max_depth : int;
  mutable v_grants : int;
  mutable v_skip_streak : int;      (* consecutive ready-but-skipped *)
  mutable v_max_skip : int;
}

(* Deposit-side credit pool for one (link, vc) receive FIFO. The
   [cp_slots] array is the analytic model (the cycle each buffer slot
   frees; a claim takes the earliest); the three counters are the
   runtime token state the N1 oracle checks, advanced by scheduled
   events at reservation / wire start / release so that
   held + inflight + free = capacity at every cycle. *)
type pool = {
  mutable cp_capacity : int;
  mutable cp_slots : int array;
  mutable cp_held : int;
  mutable cp_inflight : int;
  mutable cp_free : int;
}

(* ---- Flit-level crossing state ([crossing = `Flit] only) ----

   A packet decomposes into head/body/tail flits that cross the mesh
   one link per flit-cycle. A worm is the in-network image of one
   packet: its flits all follow the path the head reserves, and
   [w_vcs] records, per hop, the virtual channel the head was granted
   there (-1 until the head crosses that hop), which the body and tail
   must reuse — the wormhole discipline. *)
type worm = {
  w_id : int;
  w_pkt : Packet.t;
  w_flits : int;
  w_path : (int * int) array;
  w_vcs : int array;
}

type flit = {
  f_worm : worm;
  f_idx : int;              (* 0 = head, w_flits - 1 = tail *)
  mutable f_hop : int;      (* next hop to traverse; |w_path| once at dst *)
  mutable f_ready : int;    (* cycle the flit is usable where it sits *)
}

(* One (link, VC) input FIFO on the deposit side of a directed link.
   [fb_capacity] flit slots (-1 = unlimited); [fb_credits] is the
   credit counter the sender side spends one of per flit pushed and
   the receiver returns one of per flit popped, so
   [credits + occupancy = capacity] at every flit-cycle — half of the
   F1 conservation oracle. [fb_owner] is the id of the worm whose head
   claimed this VC (freed when its tail pops out). *)
type fbuf = {
  fb_capacity : int;
  mutable fb_credits : int;
  mutable fb_occ : int;
  mutable fb_owner : int;
  mutable fb_max_occ : int;
  mutable fb_grants : int;
  fb_q : flit Queue.t;
}

(* An input unit competing for one output wire: the node's injection
   FIFO, or one VC of an incoming link's input buffer. *)
type funit = F_inject of flit Queue.t | F_buf of fbuf

type flit_side = {
  fs_bufs : fbuf array;             (* input FIFOs at l_dst, per VC *)
  mutable fs_units : funit array;   (* competitors for this wire *)
  mutable fs_wire_free : int;
  mutable fs_vc_rr : int;           (* rr pointer for head-flit VC grants *)
  mutable fs_flits : int;           (* flits that crossed this wire *)
  mutable fs_stall_cycles : int;    (* cycles with a ready waiter, no grant *)
  mutable fs_hol_cycles : int;      (* of those, cycles the wire was free *)
}

(* One directed mesh link. [busy_until] is the cycle at which the wire
   finishes the last packet that reserved it; [inflight] counts packets
   that have claimed the link and whose tails have not yet cleared it
   (the FIFO depth a head-of-line packet sees). With more than one VC
   the wire is shared by reservation: [l_busy] lists the outstanding
   future reservations (disjoint, sorted by start) so a later claim can
   backfill an idle window instead of queueing behind the last tail. *)
type link = {
  l_src : int;
  l_dst : int;
  mutable busy_until : int;
  mutable inflight : int;
  mutable l_max_depth : int;
  mutable l_xmits : int;
  mutable l_busy_cycles : int;
  mutable l_wait_cycles : int;
  mutable l_fault : fault;
  mutable l_rr : int;
  l_vcs : vc array;
  mutable l_busy : (int * int) list;
  mutable l_pools : pool array;     (* [||] = unlimited credits *)
  mutable l_flit : flit_side option;  (* [Some] iff [crossing = `Flit] *)
}

type link_stat = {
  from_node : int;
  to_node : int;
  xmits : int;
  busy_cycles : int;
  wait_cycles : int;
  max_depth : int;
}

type vc_stat = {
  vc_from : int;
  vc_to : int;
  vc_index : int;
  vc_grants : int;
  vc_max_depth : int;
  vc_max_skip : int;
}

type credit_stat = {
  cr_from : int;
  cr_to : int;
  cr_vc : int;
  cr_capacity : int;
  cr_held : int;
  cr_inflight : int;
  cr_free : int;
}

type flit_stat = {
  fl_from : int;
  fl_to : int;
  fl_vc : int;
  fl_capacity : int;    (* -1 = unlimited *)
  fl_occ : int;
  fl_credits : int;
  fl_max_occ : int;
  fl_grants : int;
  fl_stall_cycles : int;
  fl_hol_cycles : int;
}

type t = {
  engine : Engine.t;
  config : config;
  node_count : int;
  width : int;
  sinks : (Packet.t -> unit) option array;
  last_arrival : (int * int, int) Hashtbl.t;
      (* the in-order guarantee: [send] clamps every arrival to after
         the pair's previous one. Under dimension-order the fixed path
         plus FIFO links already deliver in order and the clamp is a
         no-op; under minimal-adaptive or with several VCs, packets of
         one pair may take different paths or channels, so the clamp is
         what keeps the guarantee (see test_props: checked under
         contention for both policies and with VCs + finite credits) *)
  links : (int * int, link) Hashtbl.t;
  trace : Trace.t;
  mutable packets_routed : int;
  mutable bytes_routed : int;
  mutable rx_credits_now : int option;
  mutable mutation : mutation option;
  mutable leak_used : bool;
  (* flit-crossing state ([fl_links] is [||] in analytic mode) *)
  mutable fl_links : link array;       (* every directed link, (src,dst) order *)
  fl_inject : flit Queue.t array;      (* per-source injection FIFOs *)
  mutable fl_injected : int;
  mutable fl_delivered : int;
  mutable fl_next_worm : int;
  mutable fl_last_tick : int;
  mutable fl_occ_sum : float array;    (* per-VC occupancy, summed per tick *)
  mutable fl_occ_max : int array;
  mutable fl_occ_cycles : int;
}

(* Width of the squarest mesh covering [nodes]. *)
let mesh_width nodes =
  let rec go w = if w * w >= nodes then w else go (w + 1) in
  go 1

(* A node count is routable only when it fills complete rows of that
   mesh: a partial top row would put ids >= nodes on dimension-order
   paths (the phantom-node bug — e.g. 5 nodes in a 3-wide mesh route
   4 -> 2 through the nonexistent node 5). *)
let valid_nodes nodes = nodes > 0 && nodes mod mesh_width nodes = 0

let fresh_vc () =
  { v_tail = 0; v_inflight = 0; v_max_depth = 0; v_grants = 0;
    v_skip_streak = 0; v_max_skip = 0 }

let fresh_pool ~now n =
  { cp_capacity = n; cp_slots = Array.make n now; cp_held = 0;
    cp_inflight = 0; cp_free = n }

let fresh_pools t =
  match t.rx_credits_now with
  | None -> [||]
  | Some n ->
      let now = Engine.now t.engine in
      Array.init t.config.vc_count (fun _ -> fresh_pool ~now n)

let fl_fresh_buf cap =
  { fb_capacity = cap; fb_credits = cap; fb_occ = 0; fb_owner = -1;
    fb_max_occ = 0; fb_grants = 0; fb_q = Queue.create () }

(* Flit mode materialises every directed mesh link up front, in
   (src, dst) order, so the per-cycle arbitration loop iterates them
   deterministically (the lazy [link_of] creation order would depend
   on traffic). *)
let fl_build_links t =
  let w = t.width and n = t.node_count in
  let cap = match t.config.rx_credits with None -> -1 | Some c -> c in
  let pairs = ref [] in
  for id = 0 to n - 1 do
    let x = id mod w and y = id / w in
    List.iter
      (fun (nx, ny) ->
        if nx >= 0 && nx < w && ny >= 0 then begin
          let b = nx + (ny * w) in
          if b < n then pairs := (id, b) :: !pairs
        end)
      [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]
  done;
  t.fl_links <-
    Array.of_list
      (List.map
         (fun (a, b) ->
           let fs =
             {
               fs_bufs =
                 Array.init t.config.vc_count (fun _ -> fl_fresh_buf cap);
               fs_units = [||];
               fs_wire_free = 0;
               fs_vc_rr = 0;
               fs_flits = 0;
               fs_stall_cycles = 0;
               fs_hol_cycles = 0;
             }
           in
           let l =
             { l_src = a; l_dst = b; busy_until = 0; inflight = 0;
               l_max_depth = 0; l_xmits = 0; l_busy_cycles = 0;
               l_wait_cycles = 0; l_fault = Link_ok; l_rr = 0;
               l_vcs = Array.init t.config.vc_count (fun _ -> fresh_vc ());
               l_busy = []; l_pools = fresh_pools t; l_flit = Some fs }
           in
           Hashtbl.add t.links (a, b) l;
           l)
         (List.sort compare !pairs));
  (* the input units competing for each wire: the source node's
     injection FIFO first, then each incoming link's input-buffer VCs
     in (src, dst, vc) order *)
  Array.iter
    (fun l ->
      let fs = match l.l_flit with Some fs -> fs | None -> assert false in
      let ins =
        Array.to_list t.fl_links
        |> List.filter (fun l' -> l'.l_dst = l.l_src)
        |> List.concat_map (fun l' ->
               match l'.l_flit with
               | Some fs' ->
                   Array.to_list (Array.map (fun b -> F_buf b) fs'.fs_bufs)
               | None -> [])
      in
      fs.fs_units <- Array.of_list (F_inject t.fl_inject.(l.l_src) :: ins))
    t.fl_links

let create ~engine ~nodes ?(config = default_config) () =
  if nodes <= 0 then invalid_arg "Router.create: nodes must be positive";
  if config.vc_count < 1 || config.vc_count > 4 then
    invalid_arg "Router.create: vc_count must be in 1..4";
  (match config.rx_credits with
  | Some n when n < 1 -> invalid_arg "Router.create: rx_credits must be >= 1"
  | Some _ | None -> ());
  if config.flit_words < 1 then
    invalid_arg "Router.create: flit_words must be >= 1";
  (match (config.crossing, config.routing) with
  | `Flit, `Minimal_adaptive ->
      invalid_arg
        "Router.create: the flit crossing model is dimension-order only \
         (adaptive choice is packet-granularity)"
  | (`Flit | `Analytic), _ -> ());
  let width = mesh_width nodes in
  if nodes mod width <> 0 then
    invalid_arg
      (Printf.sprintf
         "Router.create: %d nodes leaves a partial row in the %d-wide mesh \
          (paths would cross phantom nodes); use a count that fills complete \
          rows, e.g. 2, 4, 6, 9, 12, 16, 25, 36, 64"
         nodes width);
  let flit = config.crossing = `Flit && config.link_contention in
  let t =
    {
      engine;
      config;
      node_count = nodes;
      width;
      sinks = Array.make nodes None;
      last_arrival = Hashtbl.create 16;
      links = Hashtbl.create 64;
      trace = Trace.create ~enabled:false ();
      packets_routed = 0;
      bytes_routed = 0;
      rx_credits_now = config.rx_credits;
      mutation = None;
      leak_used = false;
      fl_links = [||];
      fl_inject =
        (if flit then Array.init nodes (fun _ -> Queue.create ()) else [||]);
      fl_injected = 0;
      fl_delivered = 0;
      fl_next_worm = 0;
      fl_last_tick = -1;
      fl_occ_sum = (if flit then Array.make config.vc_count 0.0 else [||]);
      fl_occ_max = (if flit then Array.make config.vc_count 0 else [||]);
      fl_occ_cycles = 0;
    }
  in
  if flit then fl_build_links t;
  t

let nodes t = t.node_count
let width t = t.width
let rx_credits t = t.rx_credits_now

let set_mutation t m =
  t.mutation <- m;
  t.leak_used <- false

let check_node t id what =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Router.%s: node %d out of range" what id)

let coords t id =
  check_node t id "coords";
  (id mod t.width, id / t.width)

let node_id t ~x ~y = x + (y * t.width)

let hops t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  abs (sx - dx) + abs (sy - dy)

(* The dimension-order path as directed (from, to) node pairs: walk x
   to the destination column, then y to the destination row. *)
let path t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  let step v goal = if v < goal then v + 1 else v - 1 in
  let rec go x y acc =
    if x <> dx then
      let x' = step x dx in
      go x' y ((node_id t ~x ~y, node_id t ~x:x' ~y) :: acc)
    else if y <> dy then
      let y' = step y dy in
      go x y' ((node_id t ~x ~y, node_id t ~x ~y:y') :: acc)
    else List.rev acc
  in
  go sx sy []

let link_of t a b =
  match Hashtbl.find_opt t.links (a, b) with
  | Some l -> l
  | None ->
      let l =
        { l_src = a; l_dst = b; busy_until = 0; inflight = 0;
          l_max_depth = 0; l_xmits = 0; l_busy_cycles = 0; l_wait_cycles = 0;
          l_fault = Link_ok; l_rr = 0;
          l_vcs = Array.init t.config.vc_count (fun _ -> fresh_vc ());
          l_busy = []; l_pools = fresh_pools t; l_flit = None }
      in
      Hashtbl.add t.links (a, b) l;
      l

(* Resize the deposit FIFOs under load. Growing adds slots free at
   [now]; shrinking revokes the most-available slots first (largest
   remaining reservation times survive, so in-use buffers are never
   yanked from under a packet). The counter side moves [capacity] and
   [free] by the same delta, so the N1 conservation sum is preserved
   even with reservation/start/release events still queued — [cp_free]
   can go transiently negative on a shrink while revoked buffers drain,
   which models the receiver waiting for occupied slots to empty. *)
let set_rx_credits t credits =
  (match credits with
  | Some n when n < 1 -> invalid_arg "Router.set_rx_credits: credits must be >= 1"
  | Some _ | None -> ());
  t.rx_credits_now <- credits;
  let now = Engine.now t.engine in
  Hashtbl.iter
    (fun _ l ->
      match credits with
      | None -> l.l_pools <- [||]
      | Some n ->
          if Array.length l.l_pools = 0 then
            l.l_pools <-
              Array.init (Array.length l.l_vcs) (fun _ -> fresh_pool ~now n)
          else
            Array.iter
              (fun p ->
                let old = p.cp_capacity in
                if n <> old then begin
                  let slots = Array.copy p.cp_slots in
                  Array.sort (fun a b -> compare b a) slots;
                  p.cp_slots <-
                    (if n > old then
                       Array.append slots (Array.make (n - old) now)
                     else Array.sub slots 0 n);
                  p.cp_capacity <- n;
                  p.cp_free <- p.cp_free + (n - old)
                end)
              l.l_pools)
    t.links

let set_link_fault t ~from_node ~to_node fault =
  check_node t from_node "set_link_fault";
  check_node t to_node "set_link_fault";
  if hops t ~src:from_node ~dst:to_node <> 1 then
    invalid_arg
      (Printf.sprintf "Router.set_link_fault: %d-%d is not a mesh link"
         from_node to_node);
  (match fault with
  | Link_slow k when k < 1 ->
      invalid_arg "Router.set_link_fault: slow factor must be >= 1"
  | Link_ok | Link_slow _ | Link_dead -> ());
  (link_of t from_node to_node).l_fault <- fault

let link_fault t ~from_node ~to_node =
  check_node t from_node "link_fault";
  check_node t to_node "link_fault";
  match Hashtbl.find_opt t.links (from_node, to_node) with
  | Some l -> l.l_fault
  | None -> Link_ok

let occupancy_factor = function
  | Link_ok -> 1
  | Link_slow k -> k
  | Link_dead -> dead_crossing_factor

(* One productive step from (x, y) toward (dx, dy). Dimension-order
   always exhausts X first; minimal-adaptive picks, among the (at most
   two) productive links, a live one over a dead one and then the one
   with the smaller [busy_until], taking the X link on ties so an idle
   mesh reproduces the dimension-order path exactly. *)
let next_coord t ~x ~y ~dx ~dy =
  let step v goal = if v < goal then v + 1 else v - 1 in
  let xc = if x <> dx then Some (step x dx, y) else None in
  let yc = if y <> dy then Some (x, step y dy) else None in
  match (t.config.routing, xc, yc) with
  | _, Some c, None | _, None, Some c -> c
  | `Dimension_order, Some c, Some _ -> c
  | `Minimal_adaptive, Some cx, Some cy ->
      let a = node_id t ~x ~y in
      let cost (cx', cy') =
        let l = link_of t a (node_id t ~x:cx' ~y:cy') in
        ((match l.l_fault with Link_dead -> 1 | Link_ok | Link_slow _ -> 0),
         l.busy_until)
      in
      if cost cy < cost cx then cy else cx
  | _, None, None -> invalid_arg "Router.next_coord: already at destination"

(* The links the configured policy would pick right now, against the
   current link state, without claiming anything. Under
   [`Dimension_order] this equals [path]. *)
let route t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  let rec go x y acc =
    if x = dx && y = dy then List.rev acc
    else
      let x', y' = next_coord t ~x ~y ~dx ~dy in
      go x' y' ((node_id t ~x ~y, node_id t ~x:x' ~y:y') :: acc)
  in
  go sx sy []

let register t ~node_id sink =
  check_node t node_id "register";
  t.sinks.(node_id) <- Some sink

let latency_cycles t ~src ~dst ~bytes =
  let words = (bytes + 3) / 4 in
  t.config.base_cycles
  + (hops t ~src ~dst * t.config.per_hop_cycles)
  + (words * t.config.per_word_cycles)

(* Assign the claim to a virtual channel: round-robin among the ready
   VCs (tail already clear of the wire when this head arrives); when
   none is ready, the one that drains first. The [Arb_stuck] mutation
   is the deliberate bug the N2 oracle must catch: it pins every grant
   to VC 0, so a ready VC's skip streak grows past [vc_count]. *)
let claim_vc t l ~head =
  let vcn = Array.length l.l_vcs in
  if vcn = 1 then 0
  else begin
    let ready = Array.map (fun v -> v.v_tail <= head) l.l_vcs in
    let c =
      match t.mutation with
      | Some Arb_stuck -> 0
      | Some (Credit_leak | Flit_leak | Double_grant) | None -> (
          match arbitrate ~rr:l.l_rr ~ready with
          | Some v -> v
          | None ->
              let best = ref 0 in
              Array.iteri
                (fun i v -> if v.v_tail < l.l_vcs.(!best).v_tail then best := i)
                l.l_vcs;
              !best)
    in
    Array.iteri
      (fun i v ->
        if i = c then v.v_skip_streak <- 0
        else if ready.(i) then begin
          v.v_skip_streak <- v.v_skip_streak + 1;
          if v.v_skip_streak > v.v_max_skip then
            v.v_max_skip <- v.v_skip_streak
        end
        else v.v_skip_streak <- 0)
      l.l_vcs;
    l.l_rr <- (c + 1) mod vcn;
    c
  end

(* Earliest [start >= earliest] such that [start, start + len) misses
   every reserved interval ([busy] disjoint, sorted by start). *)
let rec fit_gap busy earliest len =
  match busy with
  | [] -> earliest
  | (s, e) :: rest ->
      if earliest + len <= s then earliest
      else if earliest >= e then fit_gap rest earliest len
      else fit_gap rest e len

let rec insert_iv busy s e =
  match busy with
  | [] -> [ (s, e) ]
  | ((s0, _) as iv) :: rest ->
      if s < s0 then (s, e) :: busy else iv :: insert_iv rest s e

let rec prune_iv now busy =
  match busy with
  | (_, e) :: rest when e <= now -> prune_iv now rest
  | _ -> busy

(* Wormhole walk toward the destination: the header claims each link as
   soon as the wire is free, each claim holds the link for the packet's
   full wire occupancy, and the tail crosses the final wire after the
   header ejects. With idle, healthy links this telescopes to exactly
   the closed-form [base + hops·per_hop + words·per_word]. The link
   choice happens here, hop by hop, so minimal-adaptive sees the busy
   state left by every earlier claim — including this packet's own.

   With [vc_count = 1] and unlimited credits the claim below reduces
   exactly to the single-FIFO model (start = max head busy_until, one
   scheduled depth decrement per hop): VC 0's tail equals [busy_until]
   and the credit floor equals the head's arrival, so timing, metrics
   and the event schedule are identical — the property the E1/E2/E11/
   E12 anchors pin down. *)
let contended_arrival t ~now ~src ~dst ~words =
  let em = Engine.metrics t.engine in
  let occ = words * t.config.per_word_cycles in
  let head = ref (now + t.config.base_cycles) in
  (* the packet's own tail cannot clear a link faster than that link's
     (fault-scaled) occupancy; on healthy links this is always beaten
     by the head+occ term below, so it only matters on slow/dead links *)
  let tail = ref 0 in
  let dx, dy = coords t dst in
  let x = ref (fst (coords t src)) and y = ref (snd (coords t src)) in
  while !x <> dx || !y <> dy do
    let a = node_id t ~x:!x ~y:!y in
    let x', y' = next_coord t ~x:!x ~y:!y ~dx ~dy in
    if !x <> dx && !y <> dy && y' <> !y then
      (* adaptive took the Y link although X was productive too *)
      Metrics.incr em "net.router.adaptive_turns";
    let b = node_id t ~x:x' ~y:y' in
    let l = link_of t a b in
    let locc = occ * occupancy_factor l.l_fault in
    if l.l_fault = Link_dead then Metrics.incr em "net.link.dead_crossings";
    let vcn = Array.length l.l_vcs in
    let ci = claim_vc t l ~head:!head in
    let v = l.l_vcs.(ci) in
    (* deposit-side credit for the receive FIFO behind this link: take
       the slot that frees soonest; on a dead link the grant is pushed
       to the next NACK'd retry poll *)
    let pinfo =
      if Array.length l.l_pools = 0 then None
      else begin
        let p = l.l_pools.(ci) in
        let si = ref 0 in
        Array.iteri
          (fun i ft -> if ft < p.cp_slots.(!si) then si := i)
          p.cp_slots;
        let slot_free = p.cp_slots.(!si) in
        let granted =
          if slot_free <= !head then !head
          else
            match l.l_fault with
            | Link_dead ->
                let polls =
                  (slot_free - !head + nack_retry_cycles - 1)
                  / nack_retry_cycles
                in
                Metrics.add em "net.credit.nacks" polls;
                !head + (polls * nack_retry_cycles)
            | Link_ok | Link_slow _ -> slot_free
        in
        Some (p, !si, slot_free, granted)
      end
    in
    let credit_floor =
      match pinfo with None -> !head | Some (_, _, _, g) -> g
    in
    let cstall = credit_floor - !head in
    if cstall > 0 then begin
      Metrics.incr em "net.credit.stalls";
      Metrics.add em "net.credit.stall_cycles" cstall
    end;
    let earliest = max credit_floor v.v_tail in
    let start =
      if vcn = 1 then max earliest l.busy_until
      else begin
        l.l_busy <- prune_iv now l.l_busy;
        let s = fit_gap l.l_busy earliest locc in
        l.l_busy <- insert_iv l.l_busy s (s + locc);
        s
      end
    in
    let wait = start - !head in
    l.inflight <- l.inflight + 1;
    if l.inflight > l.l_max_depth then l.l_max_depth <- l.inflight;
    if wait > 0 then begin
      l.l_wait_cycles <- l.l_wait_cycles + wait;
      Metrics.add em "net.link.wait_cycles" wait;
      Metrics.incr em "net.link.queued";
      if Trace.active t.trace then
        Trace.record t.trace ~time:now Event.Ni
          (Event.Link_wait
             { from_node = a; to_node = b; wait; depth = l.inflight })
    end;
    Metrics.observe em "net.link.depth" l.inflight;
    if start + locc > l.busy_until then l.busy_until <- start + locc;
    if start + locc > !tail then tail := start + locc;
    l.l_xmits <- l.l_xmits + 1;
    l.l_busy_cycles <- l.l_busy_cycles + locc;
    Metrics.incr em "net.link.xmits";
    Metrics.add em "net.link.busy_cycles" locc;
    v.v_tail <- start + locc;
    v.v_inflight <- v.v_inflight + 1;
    if v.v_inflight > v.v_max_depth then v.v_max_depth <- v.v_inflight;
    if vcn > 1 then begin
      v.v_grants <- v.v_grants + 1;
      Metrics.incr em "net.vc.grants";
      Metrics.incr em (Printf.sprintf "net.vc.grants.%d" ci);
      Metrics.observe em "net.vc.depth" v.v_inflight
    end;
    (match pinfo with
    | None -> ()
    | Some (p, si, slot_free, _) ->
        let rel = start + locc + t.config.per_hop_cycles in
        let leak = t.mutation = Some Credit_leak && not t.leak_used in
        if leak then t.leak_used <- true;
        (* a leaked slot never frees: the deposit side forgets to
           return the credit, which is exactly what N1 must catch *)
        p.cp_slots.(si) <- (if leak then max_int / 2 else rel);
        let reserve_at = max now slot_free in
        Engine.schedule_at t.engine ~time:reserve_at (fun _ ->
            p.cp_free <- p.cp_free - 1;
            p.cp_held <- p.cp_held + 1);
        Engine.schedule_at t.engine ~time:start (fun _ ->
            p.cp_held <- p.cp_held - 1;
            p.cp_inflight <- p.cp_inflight + 1);
        Engine.schedule_at t.engine ~time:rel (fun _ ->
            p.cp_inflight <- p.cp_inflight - 1;
            if not leak then p.cp_free <- p.cp_free + 1));
    Engine.schedule_at t.engine ~time:(start + locc) (fun _ ->
        l.inflight <- l.inflight - 1;
        v.v_inflight <- v.v_inflight - 1);
    head := start + t.config.per_hop_cycles;
    x := x';
    y := y'
  done;
  max (!head + occ) !tail

(* Earliest cycle the first-hop link toward [dst] has a deposit slot
   free on some VC — the injection gate a source consults before
   handing a packet to the NI. Only the first hop is checked (the
   source cannot see deeper credit state); later hops' credit waits
   still surface inside the walk as [net.credit.stalls]. *)
let injection_ready t ~src ~dst =
  let now = Engine.now t.engine in
  if (not t.config.link_contention)
     || src = dst
     || t.rx_credits_now = None
     || t.config.crossing = `Flit
        (* flit-mode backpressure lives inside the network: the source
           FIFO accepts the worm and its head stalls on credits there *)
  then now
  else begin
    check_node t src "injection_ready";
    check_node t dst "injection_ready";
    let sx, sy = coords t src and dx, dy = coords t dst in
    let x', y' = next_coord t ~x:sx ~y:sy ~dx ~dy in
    let l = link_of t (node_id t ~x:sx ~y:sy) (node_id t ~x:x' ~y:y') in
    if Array.length l.l_pools = 0 then now
    else begin
      let best = ref max_int in
      Array.iter
        (fun p ->
          Array.iter (fun ft -> if ft < !best then best := ft) p.cp_slots)
        l.l_pools;
      max now !best
    end
  end

(* ---- The flit clock ----

   One engine event per active flit-cycle. Each tick first ejects (at
   most one flit per link), then arbitrates every wire (at most one
   flit crosses per link per flit-cycle), in the fixed [fl_links]
   order — fully deterministic. When a tick makes no progress the
   clock skips ahead to the next flit-ready or wire-free time instead
   of spinning, and goes quiescent when neither exists (empty network,
   or a worm wedged by a planted mutation — which is why the F1 oracle
   and not a hang is how a leak surfaces). *)

let fl_flit_cycle t fault =
  t.config.per_word_cycles * t.config.flit_words * occupancy_factor fault

(* Worm completion: the tail flit ejected. Same in-order clamp as the
   analytic path: the pair's arrival is pushed after its previous one
   (body flits of one pair never interleave on the fixed path, but the
   clamp keeps the delivery contract uniform across crossings). *)
let fl_deliver t w now =
  let pkt = w.w_pkt in
  let key = (pkt.Packet.src_node, pkt.Packet.dst_node) in
  let earliest =
    match Hashtbl.find_opt t.last_arrival key with
    | Some last -> last + 1
    | None -> 0
  in
  let arrival = max now earliest in
  Hashtbl.replace t.last_arrival key arrival;
  match t.sinks.(pkt.Packet.dst_node) with
  | Some sink -> Engine.schedule_at t.engine ~time:arrival (fun _ -> sink pkt)
  | None -> ()

let fl_eject t l now progress =
  match l.l_flit with
  | None -> ()
  | Some fs ->
      let em = Engine.metrics t.engine in
      let done_ = ref false in
      Array.iter
        (fun fb ->
          if (not !done_) && not (Queue.is_empty fb.fb_q) then begin
            let f = Queue.peek fb.fb_q in
            if f.f_hop = Array.length f.f_worm.w_path && f.f_ready <= now
            then begin
              ignore (Queue.pop fb.fb_q);
              fb.fb_occ <- fb.fb_occ - 1;
              if fb.fb_credits >= 0 then fb.fb_credits <- fb.fb_credits + 1;
              if f.f_idx = f.f_worm.w_flits - 1 then begin
                fb.fb_owner <- -1;
                fl_deliver t f.f_worm now
              end;
              t.fl_delivered <- t.fl_delivered + 1;
              Metrics.incr em "net.flit.delivered";
              done_ := true;
              progress := true
            end
          end)
        fs.fs_bufs

(* The flit a unit offers this wire right now, with the VC it would
   ride: [None] when the unit is empty, its front flit is not ready,
   is not routed over this wire, or cannot get a VC/credit. A head
   flit asks the per-wire VC allocator (round-robin over the free,
   credited VCs — the same [arbitrate] discipline as the packet
   path); body and tail flits must follow the head's VC and only need
   a credit there. *)
let fl_offer t l fs now u =
  let front =
    match u with
    | F_inject q -> if Queue.is_empty q then None else Some (Queue.peek q)
    | F_buf ub -> if Queue.is_empty ub.fb_q then None else Some (Queue.peek ub.fb_q)
  in
  match front with
  | None -> None
  | Some f ->
      let w = f.f_worm in
      if
        f.f_ready > now
        || f.f_hop >= Array.length w.w_path
        || w.w_path.(f.f_hop) <> (l.l_src, l.l_dst)
      then None
      else if f.f_idx = 0 then begin
        let ready =
          Array.map
            (fun fb -> fb.fb_owner = -1 && fb.fb_credits <> 0)
            fs.fs_bufs
        in
        match arbitrate ~rr:fs.fs_vc_rr ~ready with
        | Some vc -> Some (f, vc)
        | None -> ignore t; None
      end
      else
        let vc = w.w_vcs.(f.f_hop) in
        if vc >= 0
           && fs.fs_bufs.(vc).fb_owner = w.w_id
           && fs.fs_bufs.(vc).fb_credits <> 0
        then Some (f, vc)
        else None

(* Pop a granted flit out of its input unit, returning the upstream
   credit; a popped tail releases the upstream VC. *)
let fl_pop u =
  match u with
  | F_inject q -> ignore (Queue.pop q)
  | F_buf ub ->
      let f = Queue.pop ub.fb_q in
      ub.fb_occ <- ub.fb_occ - 1;
      if ub.fb_credits >= 0 then ub.fb_credits <- ub.fb_credits + 1;
      if f.f_idx = f.f_worm.w_flits - 1 then ub.fb_owner <- -1

(* Move one granted flit across the wire into [fb] (VC [vc]). *)
let fl_advance t fb vc f now =
  let em = Engine.metrics t.engine in
  if f.f_idx = 0 then begin
    f.f_worm.w_vcs.(f.f_hop) <- vc;
    fb.fb_owner <- f.f_worm.w_id
  end;
  if fb.fb_credits > 0 then fb.fb_credits <- fb.fb_credits - 1;
  f.f_hop <- f.f_hop + 1;
  f.f_ready <- now + t.config.per_hop_cycles;
  Queue.add f fb.fb_q;
  fb.fb_occ <- fb.fb_occ + 1;
  if fb.fb_occ > fb.fb_max_occ then fb.fb_max_occ <- fb.fb_occ;
  fb.fb_grants <- fb.fb_grants + 1;
  Metrics.incr em "net.flit.grants";
  Metrics.observe em "net.flit.occupancy" fb.fb_occ

let fl_arbitrate_link t l now progress =
  match l.l_flit with
  | None -> ()
  | Some fs ->
      let em = Engine.metrics t.engine in
      let n = Array.length fs.fs_units in
      let offers = Array.map (fl_offer t l fs now) fs.fs_units in
      let waiting = Array.exists (fun o -> o <> None) offers in
      let wire_free = now >= fs.fs_wire_free in
      (* a unit whose flit is ready but credit/VC-blocked also counts
         as a waiter for stall accounting *)
      let blocked_waiter =
        (not waiting)
        && Array.exists
             (fun u ->
               match u with
               | F_inject q ->
                   (not (Queue.is_empty q))
                   && (let f = Queue.peek q in
                       f.f_ready <= now
                       && f.f_hop < Array.length f.f_worm.w_path
                       && f.f_worm.w_path.(f.f_hop) = (l.l_src, l.l_dst))
               | F_buf ub ->
                   (not (Queue.is_empty ub.fb_q))
                   && (let f = Queue.peek ub.fb_q in
                       f.f_ready <= now
                       && f.f_hop < Array.length f.f_worm.w_path
                       && f.f_worm.w_path.(f.f_hop) = (l.l_src, l.l_dst)))
             fs.fs_units
      in
      if waiting && wire_free then begin
        let ready = Array.map (fun o -> o <> None) offers in
        match arbitrate ~rr:l.l_rr ~ready with
        | None -> ()
        | Some ui ->
            l.l_rr <- (ui + 1) mod n;
            let u = fs.fs_units.(ui) in
            let f, vc =
              match offers.(ui) with Some fv -> fv | None -> assert false
            in
            let fb = fs.fs_bufs.(vc) in
            if f.f_idx = 0 then begin
              fs.fs_vc_rr <- (vc + 1) mod Array.length fs.fs_bufs;
              (* the head claims the whole packet's crossing of this
                 wire for link-level stats *)
              l.l_xmits <- l.l_xmits + 1
            end;
            fl_pop u;
            let occ = fl_flit_cycle t l.l_fault in
            fs.fs_wire_free <- now + occ;
            fs.fs_flits <- fs.fs_flits + 1;
            l.l_busy_cycles <- l.l_busy_cycles + occ;
            Metrics.add em "net.link.busy_cycles" occ;
            if l.l_fault = Link_dead then begin
              Metrics.incr em "net.flit.dead_retries";
              Metrics.incr em "net.link.dead_crossings"
            end;
            (* F1 planted bug: on a dead-link retry the flit is popped
               from the sender but the retransmit never lands — it
               vanishes from the network, which only the conservation
               oracle can notice *)
            let leak =
              l.l_fault = Link_dead
              && t.mutation = Some Flit_leak
              && not t.leak_used
            in
            if leak then begin
              t.leak_used <- true;
              Metrics.incr em "net.flit.leaked"
            end
            else begin
              fl_advance t fb vc f now;
              (* F2 planted bug: the arbiter grants a second flit of
                 the same worm in the same flit-cycle without spending
                 a second credit — the input FIFO overruns and
                 credits + occupancy leaves capacity *)
              match t.mutation with
              | Some Double_grant
                when (not t.leak_used)
                     && fb.fb_credits >= 0
                     && f.f_idx < f.f_worm.w_flits - 1 -> (
                  let next =
                    match u with
                    | F_inject q ->
                        if Queue.is_empty q then None else Some (Queue.peek q)
                    | F_buf ub ->
                        if Queue.is_empty ub.fb_q then None
                        else Some (Queue.peek ub.fb_q)
                  in
                  match next with
                  | Some f2 when f2.f_worm == f.f_worm && f2.f_ready <= now ->
                      t.leak_used <- true;
                      fl_pop u;
                      f2.f_hop <- f2.f_hop + 1;
                      f2.f_ready <- now + t.config.per_hop_cycles;
                      Queue.add f2 fb.fb_q;
                      fb.fb_occ <- fb.fb_occ + 1;
                      Metrics.incr em "net.flit.double_grants"
                  | Some _ | None -> ())
              | Some (Double_grant | Credit_leak | Arb_stuck | Flit_leak)
              | None ->
                  ()
            end;
            progress := true
      end
      else if waiting || blocked_waiter then begin
        fs.fs_stall_cycles <- fs.fs_stall_cycles + 1;
        l.l_wait_cycles <- l.l_wait_cycles + 1;
        Metrics.incr em "net.flit.stall_cycles";
        if wire_free then begin
          (* the wire is idle yet no flit may cross: head-of-line /
             credit blocking, the quantity E18 measures *)
          fs.fs_hol_cycles <- fs.fs_hol_cycles + 1;
          Metrics.incr em "net.flit.hol_stall_cycles"
        end
      end

(* Earliest future cycle at which anything could change, or [None]
   when the network is empty or frozen. *)
let fl_next_time t now =
  let best = ref max_int in
  let wire_best = ref max_int in
  let any = ref false in
  let consider_front q =
    if not (Queue.is_empty q) then begin
      any := true;
      let f = Queue.peek q in
      if f.f_ready > now && f.f_ready < !best then best := f.f_ready
    end
  in
  Array.iter consider_front t.fl_inject;
  Array.iter
    (fun l ->
      match l.l_flit with
      | None -> ()
      | Some fs ->
          Array.iter (fun fb -> consider_front fb.fb_q) fs.fs_bufs;
          if fs.fs_wire_free > now && fs.fs_wire_free < !wire_best then
            wire_best := fs.fs_wire_free)
    t.fl_links;
  if not !any then None
  else
    let b = min !best !wire_best in
    if b = max_int then None else Some b

let fl_sample t =
  let vcn = Array.length t.fl_occ_sum in
  if vcn > 0 then begin
    t.fl_occ_cycles <- t.fl_occ_cycles + 1;
    for v = 0 to vcn - 1 do
      let occ = ref 0 in
      Array.iter
        (fun l ->
          match l.l_flit with
          | None -> ()
          | Some fs -> occ := !occ + fs.fs_bufs.(v).fb_occ)
        t.fl_links;
      t.fl_occ_sum.(v) <- t.fl_occ_sum.(v) +. float_of_int !occ;
      if !occ > t.fl_occ_max.(v) then t.fl_occ_max.(v) <- !occ
    done
  end

let rec fl_tick t _ =
  let now = Engine.now t.engine in
  if now > t.fl_last_tick then begin
    t.fl_last_tick <- now;
    let progress = ref false in
    Array.iter (fun l -> fl_eject t l now progress) t.fl_links;
    Array.iter (fun l -> fl_arbitrate_link t l now progress) t.fl_links;
    fl_sample t;
    let next =
      if !progress then Some (now + 1) else fl_next_time t now
    in
    match next with
    | Some tn -> Engine.schedule_at t.engine ~time:tn (fl_tick t)
    | None -> ()
  end

(* Decompose a packet into a worm and enqueue its flits on the source
   node's injection FIFO (worms of one source serialize there, like
   the NI's outgoing FIFO). *)
let fl_send t pkt =
  let em = Engine.metrics t.engine in
  let now = Engine.now t.engine in
  let src = pkt.Packet.src_node and dst = pkt.Packet.dst_node in
  let words = (Packet.size_bytes pkt + 3) / 4 in
  let nf = max 1 ((words + t.config.flit_words - 1) / t.config.flit_words) in
  let p = Array.of_list (path t ~src ~dst) in
  let w =
    { w_id = t.fl_next_worm; w_pkt = pkt; w_flits = nf; w_path = p;
      w_vcs = Array.make (Array.length p) (-1) }
  in
  t.fl_next_worm <- t.fl_next_worm + 1;
  let ready = now + t.config.base_cycles in
  for i = 0 to nf - 1 do
    Queue.add
      { f_worm = w; f_idx = i; f_hop = 0; f_ready = ready }
      t.fl_inject.(src)
  done;
  t.fl_injected <- t.fl_injected + nf;
  Metrics.add em "net.flit.injected" nf;
  Engine.schedule_at t.engine ~time:ready (fl_tick t)

let send t pkt =
  check_node t pkt.Packet.src_node "send";
  check_node t pkt.Packet.dst_node "send";
  match t.sinks.(pkt.Packet.dst_node) with
  | None ->
      invalid_arg
        (Printf.sprintf "Router.send: node %d has no sink" pkt.Packet.dst_node)
  | Some sink ->
      let bytes = Packet.size_bytes pkt in
      let src = pkt.Packet.src_node and dst = pkt.Packet.dst_node in
      let now = Engine.now t.engine in
      if
        t.config.crossing = `Flit && t.config.link_contention && src <> dst
      then begin
        t.packets_routed <- t.packets_routed + 1;
        t.bytes_routed <- t.bytes_routed + bytes;
        fl_send t pkt
      end
      else begin
      let uncontended = now + latency_cycles t ~src ~dst ~bytes in
      let nominal =
        if t.config.link_contention then
          contended_arrival t ~now ~src ~dst ~words:((bytes + 3) / 4)
        else uncontended
      in
      let key = (src, dst) in
      let earliest =
        match Hashtbl.find_opt t.last_arrival key with
        | Some last -> last + 1
        | None -> 0
      in
      let arrival = max nominal earliest in
      Hashtbl.replace t.last_arrival key arrival;
      t.packets_routed <- t.packets_routed + 1;
      t.bytes_routed <- t.bytes_routed + bytes;
      Engine.schedule t.engine ~delay:(arrival - now) (fun _ -> sink pkt)
      end

let sorted_links t =
  Hashtbl.fold (fun _ l acc -> l :: acc) t.links []
  |> List.sort (fun a b -> compare (a.l_src, a.l_dst) (b.l_src, b.l_dst))

let link_stats t =
  List.map
    (fun l ->
      {
        from_node = l.l_src;
        to_node = l.l_dst;
        xmits = l.l_xmits;
        busy_cycles = l.l_busy_cycles;
        wait_cycles = l.l_wait_cycles;
        max_depth = l.l_max_depth;
      })
    (sorted_links t)

let vc_stats t =
  List.concat_map
    (fun l ->
      Array.to_list
        (Array.mapi
           (fun i v ->
             {
               vc_from = l.l_src;
               vc_to = l.l_dst;
               vc_index = i;
               vc_grants = v.v_grants;
               vc_max_depth = v.v_max_depth;
               vc_max_skip = v.v_max_skip;
             })
           l.l_vcs))
    (sorted_links t)

let credit_stats t =
  List.concat_map
    (fun l ->
      Array.to_list
        (Array.mapi
           (fun i p ->
             {
               cr_from = l.l_src;
               cr_to = l.l_dst;
               cr_vc = i;
               cr_capacity = p.cp_capacity;
               cr_held = p.cp_held;
               cr_inflight = p.cp_inflight;
               cr_free = p.cp_free;
             })
           l.l_pools))
    (sorted_links t)

(* N1: credit conservation. Every scheduled token transition moves a
   unit between exactly two of {free, held, inflight}, and a resize
   moves [capacity] and [free] together, so the sum can only drift if
   a return was dropped (the Credit_leak mutation). [cp_free] is
   allowed to be negative transiently after a shrink (revoked buffers
   still draining); the sum is the invariant. *)
let check_credits t =
  let bad = ref None in
  List.iter
    (fun l ->
      Array.iteri
        (fun vi p ->
          if
            !bad = None
            && (p.cp_held + p.cp_inflight + p.cp_free <> p.cp_capacity
               || p.cp_inflight < 0)
          then
            bad :=
              Some
                (Printf.sprintf
                   "link %d-%d vc %d: held %d + inflight %d + free %d <> \
                    capacity %d"
                   l.l_src l.l_dst vi p.cp_held p.cp_inflight p.cp_free
                   p.cp_capacity))
        l.l_pools)
    (sorted_links t);
  !bad

(* N2: arbitration fairness. Correct round-robin bounds a continuously
   ready VC's skip streak to vc_count - 1 (see [arbitrate]); a streak
   reaching vc_count means some VC is being starved (the Arb_stuck
   mutation pins grants to VC 0). *)
let check_arbitration t =
  let bad = ref None in
  List.iter
    (fun l ->
      let vcn = Array.length l.l_vcs in
      if vcn > 1 then
        Array.iteri
          (fun vi v ->
            if !bad = None && v.v_skip_streak >= vcn then
              bad :=
                Some
                  (Printf.sprintf
                     "link %d-%d vc %d: ready but skipped %d consecutive \
                      arbitration rounds (vc_count %d)"
                     l.l_src l.l_dst vi v.v_skip_streak vcn))
          l.l_vcs)
    (sorted_links t);
  !bad

let flit_stats t =
  List.concat_map
    (fun l ->
      match l.l_flit with
      | None -> []
      | Some fs ->
          Array.to_list
            (Array.mapi
               (fun i fb ->
                 {
                   fl_from = l.l_src;
                   fl_to = l.l_dst;
                   fl_vc = i;
                   fl_capacity = fb.fb_capacity;
                   fl_occ = fb.fb_occ;
                   fl_credits = fb.fb_credits;
                   fl_max_occ = fb.fb_max_occ;
                   fl_grants = fb.fb_grants;
                   fl_stall_cycles = fs.fs_stall_cycles;
                   fl_hol_cycles = fs.fs_hol_cycles;
                 })
               fs.fs_bufs))
    (Array.to_list t.fl_links)

let flit_counts t =
  let buffered = ref 0 in
  Array.iter (fun q -> buffered := !buffered + Queue.length q) t.fl_inject;
  Array.iter
    (fun l ->
      match l.l_flit with
      | None -> ()
      | Some fs ->
          Array.iter
            (fun fb -> buffered := !buffered + Queue.length fb.fb_q)
            fs.fs_bufs)
    t.fl_links;
  (t.fl_injected, t.fl_delivered, !buffered)

let flit_vc_occupancy t =
  Array.mapi
    (fun v sum ->
      let mean =
        if t.fl_occ_cycles = 0 then 0.0
        else sum /. float_of_int t.fl_occ_cycles
      in
      (mean, t.fl_occ_max.(v)))
    t.fl_occ_sum

(* F1: flit conservation. Every flit ever injected is delivered or
   still sitting in some FIFO, and every finite input FIFO satisfies
   credits + occupancy = capacity with occupancy within capacity. The
   planted [Flit_leak] drops a flit mid-retry (the sum comes up
   short); the planted [Double_grant] pushes two flits against one
   credit (the per-FIFO identity breaks). Holds at every flit-cycle
   in an unmutated router; trivially [None] in analytic mode. *)
let check_flits t =
  if Array.length t.fl_links = 0 then None
  else begin
    let injected, delivered, buffered = flit_counts t in
    if injected <> delivered + buffered then
      Some
        (Printf.sprintf
           "flit conservation: injected %d <> delivered %d + in-network %d"
           injected delivered buffered)
    else begin
      let bad = ref None in
      Array.iter
        (fun l ->
          match l.l_flit with
          | None -> ()
          | Some fs ->
              Array.iteri
                (fun vi fb ->
                  if
                    !bad = None && fb.fb_capacity >= 0
                    && (fb.fb_credits + fb.fb_occ <> fb.fb_capacity
                       || fb.fb_occ > fb.fb_capacity
                       || fb.fb_occ <> Queue.length fb.fb_q)
                  then
                    bad :=
                      Some
                        (Printf.sprintf
                           "link %d-%d vc %d: credits %d + occupancy %d <> \
                            capacity %d"
                           l.l_src l.l_dst vi fb.fb_credits fb.fb_occ
                           fb.fb_capacity))
                fs.fs_bufs)
        t.fl_links;
      !bad
    end
  end

let publish_link_gauges t =
  let em = Engine.metrics t.engine in
  let now = Engine.now t.engine in
  if now > 0 then
    List.iter
      (fun s ->
        Metrics.set_gauge em
          (Printf.sprintf "net.link.util.%d-%d" s.from_node s.to_node)
          (float_of_int s.busy_cycles /. float_of_int now))
      (link_stats t)

let packets_routed t = t.packets_routed
let bytes_routed t = t.bytes_routed
