(** Conservative parallel discrete-event kernel.

    The model is split into shards, each with its own {!Eventq} and
    clock. Execution advances in grid-aligned windows of [lookahead]
    cycles: every round the kernel takes the global minimum pending
    timestamp [g], opens the window
    [[g - g mod lookahead, g - g mod lookahead + lookahead)], and each
    shard drains its local events inside it independently — safe
    because a cross-shard {!post} must carry at least [lookahead]
    cycles of delay, so nothing sent during a window can land before
    the next window's base (the classic conservative-PDES argument,
    with the mesh link latency as the natural lookahead).

    Cross-shard posts buffer in per-(src, dst) outboxes and merge into
    the destination queue at the window barrier, sorted by
    (time, key, source shard, per-source sequence). That order — and
    hence every downstream event order — depends only on the window
    sequence and each shard's own deterministic execution, never on
    how many OCaml domains the shards are packed onto: {!run} with any
    [domains] value produces bit-identical results. *)

type t

val create : ?lookahead:int -> shards:int -> unit -> t
(** [create ~shards ()] is a kernel with [shards] empty shards and the
    given lookahead (default 1). Raises [Invalid_argument] unless both
    are positive. *)

val shards : t -> int
val lookahead : t -> int

val now : t -> shard:int -> int
(** [now t ~shard] is the shard's clock: the timestamp of the event it
    is executing, or the last window horizon when idle. *)

val schedule_at : t -> shard:int -> time:int -> ?key:int -> (unit -> unit) -> unit
(** Schedule a local event at an absolute time. Must only be called
    from outside {!run} or from an event executing on [shard] itself.
    [key] orders same-time events before insertion order. Raises
    [Invalid_argument] if [time] is before the shard clock. *)

val schedule : t -> shard:int -> ?key:int -> delay:int -> (unit -> unit) -> unit
(** [schedule t ~shard ~delay fn] is {!schedule_at} at
    [now t ~shard + delay]. *)

val post :
  t -> src:int -> dst:int -> ?key:int -> delay:int -> (unit -> unit) -> unit
(** [post t ~src ~dst ~delay fn] sends a timestamped message from the
    shard currently executing ([src]) to [dst], to fire at
    [now t ~shard:src + delay]. Cross-shard delays must be at least
    {!lookahead} (raises [Invalid_argument] otherwise); [src = dst]
    degenerates to {!schedule} with no minimum. Before {!run} starts,
    posts go straight to the destination queue. *)

val run : ?domains:int -> ?until:int -> t -> unit
(** [run t] executes events until every queue is empty, or (with
    [until]) until no pending event is below [until] — exclusive, so
    events at [until] stay queued and a later [run] resumes. With
    [domains > 1] the shards are partitioned into that many contiguous
    blocks, one OCaml domain each (capped at the shard count); results
    are bit-identical to [domains = 1]. Exceptions raised by events
    are re-raised after the domains join. Not reentrant. *)

val events_executed : t -> int
(** Total events executed across all shards since {!create} — the
    numerator of the [bench sim] events/sec metric. *)

val messages_posted : t -> int
(** Cross-shard messages buffered through outboxes during {!run}. *)

val windows_run : t -> int
(** Conservative windows (barrier rounds) executed. *)

val pending_events : t -> int
(** Events currently queued across all shards. *)
