type t = {
  enabled : bool;
  capacity : int;
  mutable items : (int * string) list; (* newest first, length <= capacity *)
  mutable count : int;
}

let create ?(capacity = 4096) ~enabled () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { enabled; capacity; items = []; count = 0 }

let enabled t = t.enabled

let trim t =
  if t.count > t.capacity then begin
    (* Drop the oldest half; amortises the O(n) rebuild. At capacity 1
       half would be 0 and silently discard even the newest record. *)
    let keep = max 1 (t.capacity / 2) in
    t.items <- List.filteri (fun i _ -> i < keep) t.items;
    t.count <- keep
  end

let record t ~time msg =
  if t.enabled then begin
    t.items <- (time, msg) :: t.items;
    t.count <- t.count + 1;
    trim t
  end

let recordf t ~time fmt =
  if t.enabled then
    Format.kasprintf (fun msg -> record t ~time msg) fmt
  else Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let events t = List.rev t.items

let contains_substring hay needle =
  let hl = String.length hay and nl = String.length needle in
  if nl = 0 then true
  else begin
    let rec at i =
      if i + nl > hl then false
      else if String.sub hay i nl = needle then true
      else at (i + 1)
    in
    at 0
  end

let matching t sub =
  List.filter (fun (_, msg) -> contains_substring msg sub) (events t)

let clear t =
  t.items <- [];
  t.count <- 0
