module Event = Udma_obs.Event

type t = {
  enabled : bool;
  capacity : int;
  mutable items : Event.t list; (* newest first, length <= capacity *)
  mutable count : int;
  mutable sinks : Event.sink list;
}

let global_sink : Event.sink option ref = ref None

let set_global_sink s = global_sink := s

let create ?(capacity = 4096) ~enabled () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { enabled; capacity; items = []; count = 0; sinks = [] }

let enabled t = t.enabled

let active t = t.enabled || t.sinks <> [] || !global_sink <> None

let add_sink t sink = t.sinks <- sink :: t.sinks

let trim t =
  if t.count > t.capacity then begin
    (* Drop the oldest half; amortises the O(n) rebuild. At capacity 1
       half would be 0 and silently discard even the newest record. *)
    let keep = max 1 (t.capacity / 2) in
    t.items <- List.filteri (fun i _ -> i < keep) t.items;
    t.count <- keep
  end

let record t ~time subsystem payload =
  if active t then begin
    let ev = Event.make ~time subsystem payload in
    if t.enabled then begin
      t.items <- ev :: t.items;
      t.count <- t.count + 1;
      trim t
    end;
    List.iter (fun sink -> sink ev) t.sinks;
    match !global_sink with Some sink -> sink ev | None -> ()
  end

let note t ~time subsystem msg = record t ~time subsystem (Event.Note msg)

let events t = List.rev t.items

let matching t pred = List.filter pred (events t)

let clear t =
  t.items <- [];
  t.count <- 0
