type 'a entry = { time : int; key : int; seq : int; payload : 'a }

(* Slots at or beyond [size] hold [None] so the heap never retains a
   popped entry (and, transitively, the event closure and everything it
   captures). The previous representation kept vacated [entry] values
   live in the backing array until they happened to be overwritten. *)
type 'a t = {
  mutable heap : 'a entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let get q i =
  match q.heap.(i) with
  | Some e -> e
  | None -> invalid_arg "Eventq: corrupt heap slot"

(* Entry ordering: earlier time first, then the caller-supplied key,
   then FIFO among equal (time, key). *)
let before a b =
  a.time < b.time
  || (a.time = b.time
      && (a.key < b.key || (a.key = b.key && a.seq < b.seq)))

let ensure_capacity q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let new_cap = if cap = 0 then initial_capacity else cap * 2 in
    let heap = Array.make new_cap None in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let sift_up q i =
  let rec loop i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before (get q i) (get q parent) then begin
        let tmp = q.heap.(i) in
        q.heap.(i) <- q.heap.(parent);
        q.heap.(parent) <- tmp;
        loop parent
      end
    end
  in
  loop i

let sift_down q i =
  let rec loop i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < q.size && before (get q left) (get q !smallest) then
      smallest := left;
    if right < q.size && before (get q right) (get q !smallest) then
      smallest := right;
    if !smallest <> i then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(!smallest);
      q.heap.(!smallest) <- tmp;
      loop !smallest
    end
  in
  loop i

let push q ~time ?(key = 0) payload =
  if time < 0 then invalid_arg "Eventq.push: negative time";
  let entry = { time; key; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  ensure_capacity q;
  q.heap.(q.size) <- Some entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some (get q 0).time

let pop q =
  if q.size = 0 then None
  else begin
    let top = get q 0 in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    (* Null out the vacated slot so the GC can reclaim the payload. *)
    q.heap.(q.size) <- None;
    Some (top.time, top.payload)
  end

let clear q =
  Array.fill q.heap 0 q.size None;
  q.size <- 0
