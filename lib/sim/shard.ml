(* Conservative parallel discrete-event kernel.

   The model is partitioned into [nshards] shards, each with its own
   {!Eventq} and clock. Time advances in windows of [lookahead] cycles
   aligned to a global grid: every round the kernel finds the global
   minimum pending timestamp [g], sets the window to
   [floor = g - g mod lookahead, floor + lookahead), and lets every
   shard execute its local events inside the window independently.
   Cross-shard communication must carry at least [lookahead] cycles of
   delay, so an event posted during window k lands at or after window
   k+1's base — no shard can receive a message in its own past, which
   is the whole conservative-synchronization argument.

   Cross-shard posts buffer in per-(src, dst) outboxes during the
   window and are merged into the destination queue at the window
   barrier, sorted by (time, key, src shard, per-src sequence). The
   merge order — and therefore every queue's internal sequence
   numbering — depends only on the window sequence and each shard's
   own deterministic execution, never on how shards are packed onto
   domains. Runs with any [domains] count produce identical event
   orders, which the determinism tests pin down. *)

type msg = {
  m_time : int;
  m_key : int;
  m_src : int;
  m_seq : int;
  m_fn : unit -> unit;
}

(* Shard-indexed hot counters are spread [stride] ints apart so two
   domains never bounce the same cache line while executing. *)
let stride = 8

type t = {
  nshards : int;
  lookahead : int;
  queues : (unit -> unit) Eventq.t array;
  clocks : int array; (* shard s at index s * stride *)
  outbox : msg list ref array; (* src * nshards + dst *)
  out_seq : int array; (* per-src post counter, strided *)
  shard_events : int array; (* per-shard executed count, strided *)
  mutable windows : int;
  mutable running : bool;
}

let create ?(lookahead = 1) ~shards () =
  if shards <= 0 then invalid_arg "Shard.create: shards must be positive";
  if lookahead <= 0 then invalid_arg "Shard.create: lookahead must be positive";
  {
    nshards = shards;
    lookahead;
    queues = Array.init shards (fun _ -> Eventq.create ());
    clocks = Array.make (shards * stride) 0;
    outbox = Array.init (shards * shards) (fun _ -> ref []);
    out_seq = Array.make (shards * stride) 0;
    shard_events = Array.make (shards * stride) 0;
    windows = 0;
    running = false;
  }

let shards t = t.nshards
let lookahead t = t.lookahead
let now t ~shard = t.clocks.(shard * stride)
let windows_run t = t.windows

let events_executed t =
  let sum = ref 0 in
  for s = 0 to t.nshards - 1 do
    sum := !sum + t.shard_events.(s * stride)
  done;
  !sum

let messages_posted t =
  let sum = ref 0 in
  for s = 0 to t.nshards - 1 do
    sum := !sum + t.out_seq.(s * stride)
  done;
  !sum

let pending_events t =
  Array.fold_left (fun acc q -> acc + Eventq.length q) 0 t.queues

let check_shard t name shard =
  if shard < 0 || shard >= t.nshards then
    invalid_arg (Printf.sprintf "Shard.%s: shard %d out of range" name shard)

let schedule_at t ~shard ~time ?key fn =
  check_shard t "schedule_at" shard;
  if time < now t ~shard then
    invalid_arg "Shard.schedule_at: time before the shard clock";
  Eventq.push t.queues.(shard) ~time ?key fn

let schedule t ~shard ?key ~delay fn =
  if delay < 0 then invalid_arg "Shard.schedule: negative delay";
  schedule_at t ~shard ~time:(now t ~shard + delay) ?key fn

let post t ~src ~dst ?(key = 0) ~delay fn =
  check_shard t "post" src;
  check_shard t "post" dst;
  if src = dst then schedule t ~shard:src ~key ~delay fn
  else begin
    if delay < t.lookahead then
      invalid_arg
        (Printf.sprintf
           "Shard.post: cross-shard delay %d below lookahead %d (the \
            conservative window would be unsound)"
           delay t.lookahead);
    let time = now t ~shard:src + delay in
    if t.running then begin
      let cell = t.outbox.((src * t.nshards) + dst) in
      let seq = t.out_seq.(src * stride) in
      t.out_seq.(src * stride) <- seq + 1;
      cell := { m_time = time; m_key = key; m_src = src; m_seq = seq; m_fn = fn }
              :: !cell
    end
    else
      (* setup is single-threaded: deliver straight to the queue *)
      Eventq.push t.queues.(dst) ~time ~key fn
  end

(* ---- window machinery -------------------------------------------- *)

let range_min t lo hi =
  let m = ref max_int in
  for s = lo to hi - 1 do
    match Eventq.peek_time t.queues.(s) with
    | Some u when u < !m -> m := u
    | _ -> ()
  done;
  !m

let exec_window t s ~horizon =
  let q = t.queues.(s) in
  let executed = ref 0 in
  let rec loop () =
    match Eventq.peek_time q with
    | Some time when time < horizon -> (
        match Eventq.pop q with
        | Some (time, fn) ->
            t.clocks.(s * stride) <- time;
            incr executed;
            fn ();
            loop ()
        | None -> ())
    | _ -> ()
  in
  loop ();
  t.clocks.(s * stride) <- horizon;
  t.shard_events.(s * stride) <- t.shard_events.(s * stride) + !executed

let msg_compare a b =
  let c = compare a.m_time b.m_time in
  if c <> 0 then c
  else
    let c = compare a.m_key b.m_key in
    if c <> 0 then c
    else
      let c = compare a.m_src b.m_src in
      if c <> 0 then c else compare a.m_seq b.m_seq

(* Merge every outbox aimed at [d] into its queue, in an order that
   depends only on message identity — never on domain packing. *)
let flush_into t d =
  let acc = ref [] in
  for src = 0 to t.nshards - 1 do
    let cell = t.outbox.((src * t.nshards) + d) in
    match !cell with
    | [] -> ()
    | msgs ->
        acc := List.rev_append msgs !acc;
        cell := []
  done;
  match !acc with
  | [] -> ()
  | msgs ->
      List.iter
        (fun m -> Eventq.push t.queues.(d) ~time:m.m_time ~key:m.m_key m.m_fn)
        (List.sort msg_compare msgs)

let horizon_of t ~until g =
  let base = g - (g mod t.lookahead) in
  let h = base + t.lookahead in
  match until with Some u -> min h u | None -> h

let stop_at ~until g =
  g = max_int || (match until with Some u -> g >= u | None -> false)

(* ---- sequential driver ------------------------------------------- *)

let run_seq ?until t =
  let continue_ = ref true in
  while !continue_ do
    let g = range_min t 0 t.nshards in
    if stop_at ~until g then continue_ := false
    else begin
      let horizon = horizon_of t ~until g in
      for s = 0 to t.nshards - 1 do
        exec_window t s ~horizon
      done;
      for d = 0 to t.nshards - 1 do
        flush_into t d
      done;
      t.windows <- t.windows + 1
    end
  done

(* ---- parallel driver --------------------------------------------- *)

(* Sense-reversing barrier with a bounded spin before blocking. On a
   machine with a core per domain the sense flip lands within the spin
   budget and the rendezvous stays in the sub-microsecond range; when
   domains outnumber cores a pure spin would burn whole scheduler
   quanta per window (measured: three orders of magnitude slowdown on
   one core), so a waiter that exhausts the budget parks on a condition
   variable instead. The releaser flips the sense and broadcasts while
   holding the mutex, so a parked waiter either sees the flip before
   sleeping or receives the broadcast — no lost wakeups. *)
type barrier = {
  parties : int;
  mutex : Mutex.t;
  cond : Condition.t;
  mutable count : int; (* protected by [mutex] *)
  sense : bool Atomic.t;
}

let spin_budget = 1_000

let make_barrier parties =
  { parties; mutex = Mutex.create (); cond = Condition.create (); count = 0;
    sense = Atomic.make false }

let barrier_wait b local_sense =
  Mutex.lock b.mutex;
  b.count <- b.count + 1;
  if b.count = b.parties then begin
    b.count <- 0;
    Atomic.set b.sense local_sense;
    Condition.broadcast b.cond;
    Mutex.unlock b.mutex
  end
  else begin
    Mutex.unlock b.mutex;
    let rec spin i =
      if Atomic.get b.sense <> local_sense then
        if i < spin_budget then begin
          Domain.cpu_relax ();
          spin (i + 1)
        end
        else begin
          Mutex.lock b.mutex;
          while Atomic.get b.sense <> local_sense do
            Condition.wait b.cond b.mutex
          done;
          Mutex.unlock b.mutex
        end
    in
    spin 0
  end

let run_par ?until t ~domains =
  let n = t.nshards in
  let d = min domains n in
  let bar = make_barrier d in
  let local_mins = Array.init d (fun _ -> Atomic.make max_int) in
  let next_horizon = Atomic.make 0 in
  let failure = Atomic.make None in
  let worker k =
    let lo = k * n / d and hi = (k + 1) * n / d in
    let sense = ref false in
    let await () =
      sense := not !sense;
      barrier_wait bar !sense
    in
    let continue_ = ref true in
    let wins = ref 0 in
    while !continue_ do
      Atomic.set local_mins.(k) (range_min t lo hi);
      await ();
      (* A: every shard's minimum pending time is published *)
      if k = 0 then begin
        let g =
          Array.fold_left (fun acc a -> min acc (Atomic.get a)) max_int
            local_mins
        in
        if stop_at ~until g || Atomic.get failure <> None then
          Atomic.set next_horizon (-1)
        else Atomic.set next_horizon (horizon_of t ~until g)
      end;
      await ();
      (* B: the window horizon is agreed *)
      let h = Atomic.get next_horizon in
      if h < 0 then continue_ := false
      else begin
        (try
           for s = lo to hi - 1 do
             exec_window t s ~horizon:h
           done
         with e ->
           let bt = Printexc.get_raw_backtrace () in
           ignore (Atomic.compare_and_set failure None (Some (e, bt))));
        await ();
        (* C: all outbox writes for this window are visible *)
        for s = lo to hi - 1 do
          flush_into t s
        done;
        incr wins
        (* no barrier here: each domain only touches its own queues
           until the next round's outbox writes, which happen after
           barrier B of the next round *)
      end
    done;
    if k = 0 then t.windows <- t.windows + !wins
  in
  let spawned =
    Array.init (d - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  worker 0;
  Array.iter Domain.join spawned;
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let run ?(domains = 1) ?until t =
  if domains < 1 then invalid_arg "Shard.run: domains must be >= 1";
  if t.running then invalid_arg "Shard.run: already running";
  t.running <- true;
  Fun.protect
    ~finally:(fun () -> t.running <- false)
    (fun () ->
      if domains = 1 || t.nshards = 1 then run_seq ?until t
      else run_par ?until t ~domains)
