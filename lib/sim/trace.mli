(** Typed event tracing.

    A trace is a bounded ring of {!Udma_obs.Event.t} values plus an
    optional list of sinks. Recording allocates one constructor and
    never formats a string; rendering happens only when a human or a
    JSON sink asks. Disabled traces with no sinks cost one branch.

    A process-wide {e global sink} supports [--trace] on CLI
    subcommands whose machines are constructed internally: installing
    it makes every trace in the process stream events to it, even
    traces created with [~enabled:false]. *)

module Event = Udma_obs.Event

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** [create ~enabled ()] keeps the last [capacity] (default 4096)
    events in the ring when [enabled]; otherwise the ring stays empty
    (sinks still fire). *)

val enabled : t -> bool
(** Ring-buffer recording is on. *)

val active : t -> bool
(** Something will consume a record: the ring is enabled, a sink is
    attached, or the global sink is installed. Emitters may use this
    to skip building event payloads. *)

val record : t -> time:int -> Event.subsystem -> Event.payload -> unit
(** Append an event (no-op when {!active} is false). *)

val note : t -> time:int -> Event.subsystem -> string -> unit
(** Convenience for free-form [Note] events. *)

val add_sink : t -> Event.sink -> unit
(** Attach a sink; it sees every subsequent event on this trace. *)

val set_global_sink : Event.sink option -> unit
(** Install (or clear) the process-wide sink fed by {e all} traces. *)

val events : t -> Event.t list
(** Ring contents, oldest first (at most [capacity]). *)

val matching : t -> (Event.t -> bool) -> Event.t list
(** [matching t pred] keeps ring events satisfying [pred], oldest
    first. *)

val clear : t -> unit
