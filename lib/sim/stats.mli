(** Counters and summary statistics for experiments.

    A [Stats.t] is a named bag of integer counters plus value series.
    Experiments record per-operation costs into series and report
    min/mean/max/percentiles. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
(** [incr t name] bumps counter [name] by one (creating it at 0). *)

val add : t -> string -> int -> unit
(** [add t name n] bumps counter [name] by [n]. *)

val get : t -> string -> int
(** [get t name] is the counter's value, 0 if never touched. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Series} *)

val observe : t -> string -> float -> unit
(** [observe t name v] appends [v] to series [name]. *)

val observations : t -> string -> float list
(** All recorded values of a series, oldest first ([] if absent). *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summarize : t -> string -> summary option
(** [summarize t name] is [None] when the series is empty. Percentiles
    use the nearest-rank method. *)

val pp_summary : Format.formatter -> summary -> unit

val dump : t -> string
(** Compact JSON rendering of every counter and series summary —
    [{"counters": {...}, "series": {name: {count, mean, ...}}}].
    Hand-rolled via {!Udma_obs.Json}; no Yojson dependency. *)

val reset : t -> unit
(** Drop every counter and series.

    Note: new code should prefer the machine-wide
    {!Udma_obs.Metrics.t} registry (counters + fixed-bucket
    histograms); [Stats] remains for standalone float series. *)
