type series = { mutable values : float list; mutable n : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  series : (string, series) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; series = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let series_ref t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
      let s = { values = []; n = 0 } in
      Hashtbl.add t.series name s;
      s

let observe t name v =
  let s = series_ref t name in
  s.values <- v :: s.values;
  s.n <- s.n + 1

let observations t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> List.rev s.values
  | None -> []

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

(* Nearest-rank percentile over a sorted array. *)
let percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  sorted.(idx)

let summarize t name =
  match Hashtbl.find_opt t.series name with
  | None -> None
  | Some s when s.n = 0 -> None
  | Some s ->
      let arr = Array.of_list s.values in
      Array.sort compare arr;
      let n = Array.length arr in
      let total = Array.fold_left ( +. ) 0.0 arr in
      Some
        {
          count = n;
          mean = total /. float_of_int n;
          min = arr.(0);
          max = arr.(n - 1);
          p50 = percentile arr 50.0;
          p95 = percentile arr 95.0;
          p99 = percentile arr 99.0;
        }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f" s.count
    s.mean s.min s.p50 s.p95 s.p99 s.max

let dump t =
  let module J = Udma_obs.Json in
  let counter_fields = List.map (fun (k, v) -> (k, J.Int v)) (counters t) in
  let series_names =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.series []
    |> List.sort String.compare
  in
  let series_fields =
    List.filter_map
      (fun name ->
        match summarize t name with
        | None -> None
        | Some s ->
            Some
              ( name,
                J.Obj
                  [
                    ("count", J.Int s.count);
                    ("mean", J.Float s.mean);
                    ("min", J.Float s.min);
                    ("max", J.Float s.max);
                    ("p50", J.Float s.p50);
                    ("p95", J.Float s.p95);
                    ("p99", J.Float s.p99);
                  ] ))
      series_names
  in
  J.to_string
    (J.Obj [ ("counters", J.Obj counter_fields); ("series", J.Obj series_fields) ])

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.series
