module Profiler = Udma_obs.Profiler
module Metrics = Udma_obs.Metrics

type t = {
  mutable clock : int;
  mhz : int;
  queue : (event * Profiler.category option) Eventq.t;
  profiler : Profiler.t;
  metrics : Metrics.t;
}

and event = t -> unit

let create ?(mhz = 120) () =
  if mhz <= 0 then invalid_arg "Engine.create: mhz must be positive";
  {
    clock = 0;
    mhz;
    queue = Eventq.create ();
    profiler = Profiler.create ();
    metrics = Metrics.create ();
  }

let now t = t.clock

let mhz t = t.mhz

let profiler t = t.profiler

let profile t = Profiler.snapshot t.profiler

let metrics t = t.metrics

let ns_of_cycles t c = float_of_int c *. 1000.0 /. float_of_int t.mhz

let us_of_cycles t c = ns_of_cycles t c /. 1000.0

(* Every clock mutation funnels through here, charging the elapsed
   cycles to [cat] (or the profiler's current category). This is what
   makes "category totals sum to Engine.now" hold by construction. *)
let tick t ?cat time =
  if time > t.clock then begin
    Profiler.charge t.profiler ?cat (time - t.clock);
    t.clock <- time
  end

let schedule t ?cat ~delay ev =
  if delay < 0 then invalid_arg "Engine.schedule: negative delay";
  Metrics.incr t.metrics "engine.scheduled";
  Eventq.push t.queue ~time:(t.clock + delay) (ev, cat)

let schedule_at t ?cat ~time ev =
  let time = max time t.clock in
  Metrics.incr t.metrics "engine.scheduled";
  Eventq.push t.queue ~time (ev, cat)

let with_category t cat f =
  let prev = Profiler.current t.profiler in
  Profiler.set_current t.profiler cat;
  Fun.protect ~finally:(fun () -> Profiler.set_current t.profiler prev) f

(* Fire every event due at or before [horizon], letting fired events
   schedule more work inside the window. The clock tracks each event's
   own timestamp while events run; the gap up to an event is charged to
   the event's category when it carries one (a DMA burst completing
   attributes the burst cycles to Dma, not to whoever was polling). *)
let pump t horizon =
  let rec loop () =
    match Eventq.peek_time t.queue with
    | Some time when time <= horizon -> (
        match Eventq.pop t.queue with
        | Some (time, (ev, cat)) ->
            tick t ?cat time;
            Metrics.incr t.metrics "engine.events_fired";
            ev t;
            loop ()
        | None -> ())
    | Some _ | None -> ()
  in
  loop ()

let run_until t time =
  if time > t.clock then begin
    pump t time;
    tick t time
  end

let advance t cost =
  if cost < 0 then invalid_arg "Engine.advance: negative cost";
  run_until t (t.clock + cost)

let run_until_idle t =
  let rec loop () =
    match Eventq.pop t.queue with
    | Some (time, (ev, cat)) ->
        tick t ?cat time;
        Metrics.incr t.metrics "engine.events_fired";
        ev t;
        loop ()
    | None -> ()
  in
  loop ()

let pending_events t = Eventq.length t.queue

let wait_for t ?(poll_cost = 2) ?(max_polls = 10_000_000) cond =
  let rec loop polls =
    if cond () then polls
    else if polls >= max_polls then
      failwith "Engine.wait_for: poll budget exhausted"
    else if Eventq.is_empty t.queue then
      failwith "Engine.wait_for: condition can never become true (idle)"
    else begin
      (* Jump straight to the next event when polling would only spin
         through empty cycles; the clock ends at the same place as if
         every intermediate poll had been simulated. *)
      let next = Option.value (Eventq.peek_time t.queue) ~default:t.clock in
      if t.clock + poll_cost < next then run_until t next
      else advance t poll_cost;
      loop (polls + 1)
    end
  in
  loop 0
