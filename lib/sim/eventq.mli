(** Priority queue of timestamped events.

    A binary min-heap keyed by (time, key, sequence number). The
    sequence number guarantees that two events scheduled for the same
    cycle (and same key) fire in insertion order, which keeps every
    simulation run deterministic. The optional key gives callers a
    second ordering slot between time and insertion order; the sharded
    engine uses it to make cross-shard merges independent of shard
    count. Legacy callers omit it (all keys equal → pure FIFO ties,
    the historical order).

    Popped and cleared slots are explicitly nulled so the queue never
    keeps dead event closures (and whatever they capture — engines,
    buffers, metrics) reachable. *)

type 'a t
(** Mutable event queue holding payloads of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [true] iff no event is pending. *)

val length : 'a t -> int
(** [length q] is the number of pending events. *)

val push : 'a t -> time:int -> ?key:int -> 'a -> unit
(** [push q ~time ?key payload] schedules [payload] at cycle [time].
    [key] (default 0) breaks time ties before insertion order.
    Raises [Invalid_argument] if [time < 0]. *)

val peek_time : 'a t -> int option
(** [peek_time q] is the firing time of the earliest event, if any. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes and returns the earliest event as [(time, payload)].
    Ties fire in (key, insertion) order. The vacated heap slot is
    cleared, so the returned payload is the only remaining reference. *)

val clear : 'a t -> unit
(** [clear q] discards all pending events and drops every reference to
    their payloads. *)
