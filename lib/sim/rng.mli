(** Deterministic pseudo-random numbers for workload generation.

    A small splittable xorshift generator so that every experiment is
    reproducible from a seed and independent streams can be derived for
    independent traffic sources. *)

type t

val create : int -> t
(** [create seed] is a generator; equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and perturbs [t]. *)

val int : t -> int -> int
(** [int t bound] is in [0, bound). Raises [Invalid_argument] if
    [bound <= 0].

    {b Bias note:} this draws a 62-bit value and reduces it with
    [mod bound], which over-weights the low residues whenever [bound]
    does not divide 2^62. The bias is at most [bound]/2^62 per value —
    negligible for simulation bounds (< 2^-40 for bounds up to a
    million) but real. It is kept as-is deliberately: every committed
    anchor (BENCH_baseline/BENCH_udma knees, chaos replays) was
    produced by this exact stream, and changing the reduction would
    shift every seeded experiment. New code, including all sharded-
    engine paths, should use {!int_unbiased}. *)

val int_unbiased : t -> int -> int
(** [int_unbiased t bound] is uniform in [0, bound) with no modulo
    bias, via rejection sampling over the 62-bit raw draw (expected
    < 2 draws per call). Consumes a variable number of raw values, so
    it is {b not} stream-compatible with {!int}; use it only on paths
    without committed anchors (the sharded engine does). Raises
    [Invalid_argument] if [bound <= 0]. *)

val substream : int -> int -> t
(** [substream seed index] is an independent generator derived from
    [(seed, index)]. Unlike {!split}, it does not advance any parent
    generator, so stream [index] is the same no matter how many other
    substreams exist or in what order they are created — the property
    the sharded engine needs for results that are independent of the
    shard partition. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element.
    Raises [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
