type t = { mutable state : int64 }

(* splitmix64: solid mixing, trivially splittable, 63-bit outputs fit
   OCaml's native int on 64-bit platforms. *)
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = Int64.of_int seed }

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t =
  let seed = next t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value stays non-negative in OCaml's native int *)
  let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  raw mod bound

let int_unbiased t bound =
  if bound <= 0 then invalid_arg "Rng.int_unbiased: bound must be positive";
  (* Rejection sampling: discard draws from the tail partial bucket so
     every residue is equally likely. The raw draw is uniform over
     [0, 2^62), i.e. [0, max_int] — the range size 2^62 itself does
     not fit a native int, so the tail size is computed as
     (max_int mod bound + 1) mod bound. Acceptance probability is
     > 1/2 for any bound, so the loop terminates fast. *)
  let tail = ((max_int mod bound) + 1) mod bound in
  if tail = 0 then
    (* bound divides 2^62: plain reduction is already uniform *)
    Int64.to_int (Int64.shift_right_logical (next t) 2) mod bound
  else begin
    let limit = max_int - tail + 1 in
    (* largest multiple of bound <= 2^62; fits since tail >= 1 *)
    let rec draw () =
      let raw = Int64.to_int (Int64.shift_right_logical (next t) 2) in
      if raw >= limit then draw () else raw mod bound
    in
    draw ()
  end

let substream seed index =
  (* Decorrelate (seed, index) pairs by running the index through the
     output mixer before folding it into the seed; adjacent indices
     land in unrelated regions of the splitmix sequence. *)
  let salted = Int64.add (Int64.of_int seed)
      (mix (Int64.mul (Int64.of_int (index + 1)) golden)) in
  { state = salted }

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  raw /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
