(** Discrete-event simulation engine with a cycle clock.

    One engine drives one experiment. Simulated "hardware" schedules
    events in the future; simulated "software" (plain OCaml callbacks)
    advances the clock by charging cycle costs with {!advance}, which
    pumps any events that become due. This interleaves asynchronous DMA
    completion with CPU-side polling exactly as on a real machine,
    without threads. *)

type t

type event = t -> unit
(** An event receives the engine so it can schedule follow-up events. *)

module Profiler = Udma_obs.Profiler

val create : ?mhz:int -> unit -> t
(** [create ?mhz ()] is a fresh engine at cycle 0. [mhz] (default 120)
    is the modelled clock frequency, used only to convert cycles to
    wall-clock units in reports. *)

val now : t -> int
(** [now t] is the current cycle. *)

val mhz : t -> int
(** Modelled clock frequency in MHz. *)

val ns_of_cycles : t -> int -> float
(** [ns_of_cycles t c] converts a cycle count to nanoseconds. *)

val us_of_cycles : t -> int -> float
(** [us_of_cycles t c] converts a cycle count to microseconds. *)

val schedule : t -> ?cat:Profiler.category -> delay:int -> event -> unit
(** [schedule t ~delay ev] fires [ev] [delay] cycles from now.
    Raises [Invalid_argument] if [delay < 0]. When [cat] is given, the
    cycles the clock jumps to reach the event are charged to that
    profiler category (a DMA completion attributes its burst to [Dma],
    not to whoever happened to be polling). *)

val schedule_at : t -> ?cat:Profiler.category -> time:int -> event -> unit
(** [schedule_at t ~time ev] fires [ev] at absolute cycle [time]
    (clamped to [now] if in the past). [cat] as in {!schedule}. *)

val advance : t -> int -> unit
(** [advance t cost] charges [cost] cycles of CPU work: runs every event
    due at or before [now + cost], then sets the clock to [now + cost].
    Events that fire may schedule further events; those are honoured if
    still within the window. *)

val run_until : t -> int -> unit
(** [run_until t time] runs due events and moves the clock to [time]
    (no-op if [time <= now]). *)

val run_until_idle : t -> unit
(** [run_until_idle t] drains the event queue entirely, advancing the
    clock to the last event's time. *)

val wait_for : t -> ?poll_cost:int -> ?max_polls:int -> (unit -> bool) -> int
(** [wait_for t cond] repeatedly charges [poll_cost] cycles (default 2)
    until [cond ()] holds or the queue is idle and [cond] still fails,
    or [max_polls] (default 10_000_000) is exhausted; returns the number
    of polls performed. Raises [Failure] if [cond] can no longer become
    true (queue idle) or the poll budget is exhausted. *)

val pending_events : t -> int
(** Number of scheduled, not-yet-fired events. *)

(** {1 Observability}

    The engine owns a {!Udma_obs.Profiler.t} that every clock mutation
    is charged through, so category totals always sum to {!now}, and a
    {!Udma_obs.Metrics.t} it publishes scheduling counters into
    ([engine.scheduled], [engine.events_fired]). *)

val profiler : t -> Profiler.t

val profile : t -> Profiler.totals
(** Snapshot of the cycle-attribution totals so far. *)

val metrics : t -> Udma_obs.Metrics.t

val with_category : t -> Profiler.category -> (unit -> 'a) -> 'a
(** [with_category t cat f] runs [f] with the profiler's current
    category set to [cat], restoring the previous category afterwards
    (exception-safe). Cycles charged by [f] — including polls inside
    {!wait_for} — attribute to [cat] unless an event's own category
    overrides them. *)
