(** Tenant-scale stress harness for the protection backends (E14).

    Hundreds-to-thousands of tenants on one node multiplex a
    fixed-size destination table ([slots], the NIPT / IOMMU / grant
    capacity) through one {!Backend}: a tenant whose mapping is not
    resident pays the kernel grant path, evicting a victim tenant's
    slot when the table is full. Scheduler churn (deschedules — I1
    Inval storms plus TLB flushes), page eviction under overcommit and
    a rogue tenant probing other tenants' pages are injected at
    configurable rates.

    The per-tenant slot algebra, the RNG draw sequence and every
    control-flow decision are independent of the backend kind, so the
    three backends face {e identical} multi-tenant traffic and differ
    only in cycle costs and fault taxonomy. Everything is
    deterministic under [seed].

    The deterministic-fault contract the qcheck properties pin down:
    once {!initiate} returns [Ok], that transfer is done (authorization
    is checked at initiation only — nothing faults mid-flight); after
    {!deschedule}, {!evict_slot} or {!revoke_tenant}, the affected
    tenant's {e next} {!initiate} returns [Error], every time. *)

type fault = Invalidated | Backend_fault of Backend.fault
(** [Invalidated] is the I1 path: a deschedule invalidated the latched
    initiation, so the next attempt's status read fails and the
    library retries. Backend faults surface the protection check. *)

val fault_name : fault -> string

type config = {
  kind : Backend.kind;
  tenants : int;
  slots : int;       (** destination-table capacity shared by all tenants *)
  ops : int;         (** operations (sends + churn events) to run *)
  churn_pct : int;   (** per-op %: deschedule a random tenant *)
  evict_pct : int;   (** per-op %: evict a random slot (overcommit) *)
  rogue_pct : int;   (** per-op %: rogue cross-tenant probe *)
  seed : int;
  costs : Udma_os.Cost_model.t;
  bcosts : Backend.costs;
}

val default_config : config
(** 8 tenants over 64 slots, 20 000 ops, churn 8 % / evict 4 % /
    rogue 4 %, seed 42, default cost models. *)

type result = {
  sends : int;           (** user sends completed (incl. recoveries) *)
  p50 : int;             (** initiation cycles, end to end per send *)
  p99 : int;
  p999 : int;
  mean : float;
  faults : int;          (** owner-side faults (invalidation, eviction,
                             slot loss) — all recovered *)
  rogue_probes : int;
  rogue_denied : int;    (** must equal [rogue_probes] *)
  grants : int;
  revokes : int;
  invalidations : int;   (** datapath invalidation traffic *)
  iotlb_hits : int;
  iotlb_misses : int;
  isolation_breaches : int;  (** rogue authorizations plus {!Backend.check}
                                 counterexamples — must be 0 *)
}

val percentile : int array -> float -> int
(** Exact nearest-rank percentile over a {e sorted} sample: the value
    at 1-based rank [ceil (p /. 100. *. n)], clamped to the sample.
    No interpolation is performed — unlike {!Udma_obs.Metrics.percentile}
    (an upper-edge estimate over fixed buckets), this reports an actual
    observation. Consequently on small samples the tail percentiles
    coarsen: whenever [ceil (p /. 100. *. n) = n] — for p999, any
    [n < 1000] — the result is exactly the sample maximum. [0] on the
    empty sample. *)

val run : config -> result
(** The whole sweep loop; deterministic (equal configs give equal
    results, byte for byte). Raises [Invalid_argument] on nonpositive
    [tenants]/[slots]/[ops], a negative injection rate, or rates
    summing past 100%. *)

(** {1 Single-step interface (the qcheck surface)} *)

type t

val create : config -> t
val backend : t -> Backend.t

val attach : t -> tenant:int -> int
(** Kernel grant path: give [tenant] a slot, evicting the round-robin
    victim when the table is full; returns the cycles charged. An
    already-resident tenant keeps its slot and has the grant refreshed
    in place. *)

val initiate : t -> tenant:int -> (int, fault * int) Stdlib.result
(** One user-level send initiation; [Ok cycles] or the deterministic
    fault plus the cycles wasted. Does not recover — callers retry
    after {!attach}. *)

val send : t -> tenant:int -> int
(** Fault-recovering send: initiate, repair (grant) and retry until
    the transfer is accepted; returns total cycles. *)

val deschedule : t -> tenant:int -> unit
(** Scheduler churn: flush the tenant's TLB warmth and invalidate any
    latched initiation (the I1 Inval). *)

val evict_slot : t -> slot:int -> int
(** Page eviction under overcommit: revoke whatever grant occupies
    [slot]; the owning tenant's next initiation faults. *)

val revoke_tenant : t -> tenant:int -> int
(** Teardown: revoke all of the tenant's grants. *)

val rogue_probe : t -> rogue:int -> slot:int -> bool
(** Probe [slot] as tenant [rogue]; [true] when the backend denied it
    (the required outcome — [false] is an isolation breach, also
    counted in the result). *)
