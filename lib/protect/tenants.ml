module Rng = Udma_sim.Rng
module Cost_model = Udma_os.Cost_model

type fault = Invalidated | Backend_fault of Backend.fault

let fault_name = function
  | Invalidated -> "invalidated"
  | Backend_fault f -> Backend.fault_name f

type config = {
  kind : Backend.kind;
  tenants : int;
  slots : int;
  ops : int;
  churn_pct : int;
  evict_pct : int;
  rogue_pct : int;
  seed : int;
  costs : Cost_model.t;
  bcosts : Backend.costs;
}

let default_config =
  {
    kind = Backend.Proxy;
    tenants = 8;
    slots = 64;
    ops = 20_000;
    churn_pct = 8;
    evict_pct = 4;
    rogue_pct = 4;
    seed = 42;
    costs = Cost_model.default;
    bcosts = Backend.default_costs;
  }

type result = {
  sends : int;
  p50 : int;
  p99 : int;
  p999 : int;
  mean : float;
  faults : int;
  rogue_probes : int;
  rogue_denied : int;
  grants : int;
  revokes : int;
  invalidations : int;
  iotlb_hits : int;
  iotlb_misses : int;
  isolation_breaches : int;
}

type t = {
  cfg : config;
  backend : Backend.t;
  slot_of : int array;    (* tenant -> slot, -1 when not resident *)
  tenant_of : int array;  (* slot -> tenant, -1 when free *)
  last_slot : int array;  (* last slot the tenant initiated against *)
  tlb_hot : bool array;   (* tenant's UDMA pages warm in its TLB *)
  invalidated : bool array;  (* I1 Inval pending from a deschedule *)
  mutable victim : int;   (* round-robin slot-eviction cursor *)
  rng : Rng.t;
  mutable faults : int;
  mutable rogue_probes : int;
  mutable rogue_denied : int;
  mutable breaches : int;
}

let create cfg =
  if cfg.tenants <= 0 then invalid_arg "Tenants.create: tenants must be positive";
  if cfg.slots <= 0 then invalid_arg "Tenants.create: slots must be positive";
  if cfg.ops <= 0 then invalid_arg "Tenants.create: ops must be positive";
  if cfg.churn_pct < 0 || cfg.evict_pct < 0 || cfg.rogue_pct < 0 then
    invalid_arg "Tenants.create: negative injection rate";
  if cfg.churn_pct + cfg.evict_pct + cfg.rogue_pct > 100 then
    invalid_arg "Tenants.create: injection rates exceed 100%";
  {
    cfg;
    backend = Backend.create ~costs:cfg.bcosts cfg.kind ~entries:cfg.slots ();
    slot_of = Array.make cfg.tenants (-1);
    tenant_of = Array.make cfg.slots (-1);
    last_slot = Array.make cfg.tenants (-1);
    tlb_hot = Array.make cfg.tenants false;
    invalidated = Array.make cfg.tenants false;
    victim = 0;
    rng = Rng.create cfg.seed;
    faults = 0;
    rogue_probes = 0;
    rogue_denied = 0;
    breaches = 0;
  }

let backend t = t.backend

(* A tenant id no real tenant can hold; authorize with it always trips
   the owner check. *)
let rogue_id t = t.cfg.tenants + 999

let evict_slot t ~slot =
  if slot < 0 || slot >= t.cfg.slots then
    invalid_arg "Tenants.evict_slot: slot out of range";
  match t.tenant_of.(slot) with
  | -1 -> 0
  | occupant ->
      t.slot_of.(occupant) <- -1;
      t.tenant_of.(slot) <- -1;
      Backend.revoke t.backend ~index:slot

let revoke_tenant t ~tenant =
  match t.slot_of.(tenant) with
  | -1 -> 0
  | slot -> evict_slot t ~slot

(* Kernel grant path: claim a free slot (evicting the round-robin
   victim under overcommit) and install the tenant's destination. *)
let attach t ~tenant =
  let c = t.cfg.costs in
  let evict_cost, slot =
    match t.slot_of.(tenant) with
    | s when s >= 0 -> (0, s) (* already resident: refresh the grant in place *)
    | _ ->
        let free = ref (-1) in
        for s = t.cfg.slots - 1 downto 0 do
          if t.tenant_of.(s) = -1 then free := s
        done;
        if !free >= 0 then (0, !free)
        else begin
          let s = t.victim in
          t.victim <- (t.victim + 1) mod t.cfg.slots;
          (evict_slot t ~slot:s, s)
        end
  in
  t.slot_of.(tenant) <- slot;
  t.tenant_of.(slot) <- tenant;
  let grant_cost =
    Backend.grant t.backend ~owner:tenant ~index:slot
      ~dst_node:(tenant land 0xf)
      ~dst_frame:(slot + tenant)
  in
  let proxy_map =
    match t.cfg.kind with
    | Backend.Proxy -> c.Cost_model.proxy_map
    | Backend.Iommu | Backend.Capability -> 0
  in
  c.Cost_model.syscall + proxy_map + grant_cost + evict_cost

let initiate t ~tenant =
  let c = t.cfg.costs in
  (* Two uncached proxy-space stores is the whole fast path; a cold TLB
     adds the two translations the paper charges for the first touch. *)
  let warm =
    if t.tlb_hot.(tenant) then 0
    else begin
      t.tlb_hot.(tenant) <- true;
      2 * c.Cost_model.tlb_miss
    end
  in
  let base = (2 * c.Cost_model.uncached_ref) + warm in
  if t.invalidated.(tenant) then begin
    (* The deschedule invalidated the latched initiation: the status
       read comes back Inval and the transfer must be reissued. *)
    t.invalidated.(tenant) <- false;
    Error (Invalidated, base + c.Cost_model.uncached_ref)
  end
  else begin
    let index =
      match t.slot_of.(tenant) with
      | -1 ->
          (* No resident mapping: the device decodes whatever the
             tenant last named (or an unconfigured page) and faults. *)
          if t.last_slot.(tenant) >= 0 then t.last_slot.(tenant)
          else t.cfg.slots
      | slot ->
          t.last_slot.(tenant) <- slot;
          slot
    in
    match Backend.authorize t.backend ~tenant ~index with
    | Ok (_entry, cost) -> Ok (base + cost)
    | Error (f, cost) -> Error (Backend_fault f, base + cost)
  end

let send t ~tenant =
  let c = t.cfg.costs in
  let total = ref 0 in
  let attempts = ref 0 in
  let done_ = ref false in
  while not !done_ do
    incr attempts;
    if !attempts > 4 then
      failwith "Tenants.send: initiation did not converge";
    match initiate t ~tenant with
    | Ok cycles ->
        total := !total + cycles;
        done_ := true
    | Error (Invalidated, cycles) ->
        (* Reissue: the mapping is intact, only the latch was lost. *)
        t.faults <- t.faults + 1;
        total := !total + cycles
    | Error (Backend_fault _, cycles) ->
        (* Trap to the kernel and re-establish the mapping. The proxy
           path recovers through a page fault on the proxy page; the
           others go straight to the map/grant syscall. *)
        t.faults <- t.faults + 1;
        let trap =
          match t.cfg.kind with
          | Backend.Proxy -> c.Cost_model.page_fault
          | Backend.Iommu | Backend.Capability -> 0
        in
        total := !total + cycles + trap + attach t ~tenant
  done;
  !total

let deschedule t ~tenant =
  t.tlb_hot.(tenant) <- false;
  t.invalidated.(tenant) <- true

let rogue_probe t ~rogue ~slot =
  if slot < 0 || slot >= t.cfg.slots then
    invalid_arg "Tenants.rogue_probe: slot out of range";
  t.rogue_probes <- t.rogue_probes + 1;
  (* Three probes per attack: the named slot, the hottest slot (0) and
     an out-of-range index (an unmapped IOVA / unconfigured page). *)
  let denied index =
    match Backend.authorize t.backend ~tenant:rogue ~index with
    | Ok _ -> false
    | Error _ -> true
  in
  let ok = denied slot && denied 0 && denied t.cfg.slots in
  if ok then t.rogue_denied <- t.rogue_denied + 1
  else t.breaches <- t.breaches + 1;
  ok

(* Exact nearest-rank percentile over a sorted sample: the smallest
   value with at least ceil(p/100 * n) observations at or below it. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let run cfg =
  let t = create cfg in
  let lat = ref [] in
  let nlat = ref 0 in
  let churn = cfg.churn_pct in
  let evict = churn + cfg.evict_pct in
  let rogue = evict + cfg.rogue_pct in
  let sweep () =
    match Backend.check t.backend with
    | None -> ()
    | Some _ -> t.breaches <- t.breaches + 1
  in
  for op = 1 to cfg.ops do
    let r = Rng.int t.rng 100 in
    if r < churn then deschedule t ~tenant:(Rng.int t.rng cfg.tenants)
    else if r < evict then ignore (evict_slot t ~slot:(Rng.int t.rng cfg.slots))
    else if r < rogue then
      ignore (rogue_probe t ~rogue:(rogue_id t) ~slot:(Rng.int t.rng cfg.slots))
    else begin
      let tenant = Rng.int t.rng cfg.tenants in
      let cycles = send t ~tenant in
      lat := cycles :: !lat;
      incr nlat
    end;
    if op land 255 = 0 then sweep ()
  done;
  sweep ();
  let sorted = Array.of_list !lat in
  Array.sort compare sorted;
  let sum = Array.fold_left ( + ) 0 sorted in
  let st = Backend.stats t.backend in
  {
    sends = !nlat;
    p50 = percentile sorted 50.;
    p99 = percentile sorted 99.;
    p999 = percentile sorted 99.9;
    mean = (if !nlat = 0 then 0. else float_of_int sum /. float_of_int !nlat);
    faults = t.faults;
    rogue_probes = t.rogue_probes;
    rogue_denied = t.rogue_denied;
    grants = st.Backend.st_grants;
    revokes = st.Backend.st_revokes;
    invalidations = st.Backend.st_invalidations;
    iotlb_hits = st.Backend.st_iotlb_hits;
    iotlb_misses = st.Backend.st_iotlb_misses;
    isolation_breaches = t.breaches;
  }
