(** The protection backend behind user-level DMA initiation.

    The paper's network interface decides, at initiation time, whether
    a user access may name a given destination page. This module makes
    that decision pluggable so one experiment can pit three protection
    designs against identical multi-tenant traffic:

    - {b Proxy} — the paper's proxy-space decode: the table {e is} the
      NIPT, per-process proxy mappings (enforced by the MMU) carry the
      ownership check, and the datapath adds zero cycles. This is the
      production decode path extracted from the network interface;
      {!decode} and {!validate_bits} reproduce the old [Nipt]
      behaviour bit for bit.
    - {b Iommu} — an IOMMU translation path (ARMv8-style virtual-address
      RDMA): the authoritative table is an in-memory I/O page table
      walked on an IOTLB miss, with kernel-mediated map/unmap and
      shootdowns on teardown.
    - {b Capability} — CAPIO-style per-transfer capability validation:
      every initiation pays a capability check, and teardown revokes
      the capability (a later presentation faults as {!fault.Revoked}).

    Every backend keeps two views of the same table: the kernel's
    authoritative grants and the datapath-visible decode state (the
    NIPT itself, the IOTLB, the capability-validation table). The
    cross-tenant isolation invariant I5 is that the datapath view
    never escapes the grants: see {!check}. *)

type kind = Proxy | Iommu | Capability

val kind_name : kind -> string
val all_kinds : kind list

val parse_kind : string -> (kind, string) result

type entry = { owner : int; dst_node : int; dst_frame : int }
(** One destination: the granting tenant (pid) plus the remote
    (node, physical page) pair the old NIPT entry carried. *)

type fault =
  | Misaligned   (** address or count not 4-byte aligned *)
  | No_mapping   (** no entry configured for the page *)
  | Not_owner    (** entry exists but belongs to another tenant *)
  | Revoked      (** capability presented after teardown *)

val fault_name : fault -> string

(** Per-backend datapath and control-path cycle costs. The proxy
    backend has no entries here: its decode is free (the MMU already
    did the work) and its kernel grant cost is the ordinary
    [map_device_proxy] syscall the caller charges. *)
type costs = {
  iotlb_hit : int;     (** IOTLB hit on the initiation path *)
  iotlb_walk : int;    (** I/O page-table walk on an IOTLB miss *)
  iommu_map : int;     (** kernel-mediated IOMMU map, per page *)
  iommu_unmap : int;   (** unmap + IOTLB shootdown, per page *)
  cap_check : int;     (** per-transfer capability validation *)
  cap_grant : int;     (** capability creation at grant time *)
  cap_revoke : int;    (** revocation walk at teardown *)
}

val default_costs : costs

(** Deliberate bugs for mutation-soundness tests (planted via
    [System.create ~skip_invariant:`P1|`P2]). *)
type mutation =
  | Owner_skip of int
      (** P1, isolation leak: the owner check is skipped on this one
          page *)
  | Stale_revoke
      (** P2, stale invalidation: teardown clears the grant but leaves
          the datapath entry (NIPT entry / IOTLB line / capability)
          alive *)

type stats = {
  st_grants : int;
  st_revokes : int;
  st_invalidations : int;  (** datapath invalidations (NIPT clears,
                               IOTLB shootdowns, capability kills) *)
  st_iotlb_hits : int;
  st_iotlb_misses : int;
  st_authorizations : int;
  st_denials : int;
}

type t

val create :
  ?costs:costs -> ?iotlb_entries:int -> kind -> entries:int -> unit -> t
(** A backend over [entries] destination pages. [iotlb_entries]
    (default 8) sizes the IOMMU backend's IOTLB; ignored otherwise. *)

val kind : t -> kind
val capacity : t -> int
val valid_count : t -> int
val set_mutation : t -> mutation option -> unit

(** {1 Datapath (device decode — the old NIPT surface)} *)

val err_misaligned : int
val err_no_mapping : int

val decode : t -> index:int -> entry option
(** What the hardware decodes for device page [index]: the NIPT /
    capability-validation entry, or the live grant for the IOMMU
    (whose datapath cache is the IOTLB, exercised by {!authorize}).
    [None] for invalid or unconfigured entries; no cycle cost. *)

val validate_bits : t -> dev_addr:int -> nbytes:int -> page_size:int -> int
(** The initiation-time device check, bit-identical to the old
    network-interface [validate]: bit 0 on a misaligned address or
    count, bit 1 on an unconfigured entry. *)

(** {1 Kernel-mediated control path} *)

val grant :
  t -> owner:int -> index:int -> dst_node:int -> dst_frame:int -> int
(** Configure destination [index] for tenant [owner]; returns the
    backend-specific cycle cost (0 for proxy — the caller charges the
    map syscall). Overwriting an existing grant shoots down any
    datapath state for the index first. *)

val revoke : t -> index:int -> int
(** Tear down one destination: clear the grant and invalidate the
    datapath entry (NIPT clear / IOTLB shootdown / capability kill);
    returns the cycle cost. No-op (cost 0) if the index holds no
    grant. *)

val revoke_owner : t -> owner:int -> int
(** Tenant teardown: revoke every grant owned by [owner]; returns the
    summed cost. *)

(** {1 Protected initiation} *)

val authorize : t -> tenant:int -> index:int -> (entry * int, fault * int) result
(** The per-transfer protection decision for tenant [tenant] naming
    device page [index]; returns the entry and the datapath cycles
    spent, or the fault and the cycles wasted. A negative [tenant] is
    the MMU-verified caller (the real NI datapath, where per-process
    proxy mappings already established identity) and skips the owner
    comparison. Successful authorizations are journalled for
    {!check}. *)

(** {1 The I5 oracle} *)

val check : t -> string option
(** Cross-tenant isolation, I5: (a) every datapath-visible entry
    (NIPT / IOTLB / capability) is backed by a live grant with the
    same owner — a stale entry surviving teardown is the P2 bug; and
    (b) no journalled authorization paired a tenant with a page it
    does not own, or a page whose grant was already gone — the P1
    isolation leak. Returns the first counterexample. *)

val stats : t -> stats
