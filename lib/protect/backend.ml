type kind = Proxy | Iommu | Capability

let kind_name = function
  | Proxy -> "proxy"
  | Iommu -> "iommu"
  | Capability -> "capability"

let all_kinds = [ Proxy; Iommu; Capability ]

let parse_kind s =
  match String.lowercase_ascii s with
  | "proxy" -> Ok Proxy
  | "iommu" -> Ok Iommu
  | "capability" | "cap" -> Ok Capability
  | _ ->
      Error
        (Printf.sprintf "unknown backend %S (expected proxy|iommu|capability)" s)

type entry = { owner : int; dst_node : int; dst_frame : int }

type fault = Misaligned | No_mapping | Not_owner | Revoked

let fault_name = function
  | Misaligned -> "misaligned"
  | No_mapping -> "no-mapping"
  | Not_owner -> "not-owner"
  | Revoked -> "revoked"

type costs = {
  iotlb_hit : int;
  iotlb_walk : int;
  iommu_map : int;
  iommu_unmap : int;
  cap_check : int;
  cap_grant : int;
  cap_revoke : int;
}

(* The IOTLB numbers follow the two-stage SMMU walk shape (a hit is a
   couple of cycles, a miss costs a multi-level table walk); the
   map/unmap pair is dominated by the kernel round trip and the
   shootdown. Capability validation is a hash+compare per transfer. *)
let default_costs =
  {
    iotlb_hit = 2;
    iotlb_walk = 120;
    iommu_map = 450;
    iommu_unmap = 350;
    cap_check = 18;
    cap_grant = 260;
    cap_revoke = 220;
  }

type mutation = Owner_skip of int | Stale_revoke

type stats = {
  st_grants : int;
  st_revokes : int;
  st_invalidations : int;
  st_iotlb_hits : int;
  st_iotlb_misses : int;
  st_authorizations : int;
  st_denials : int;
}

(* One journalled (successful) authorization, kept for the I5 oracle:
   who initiated, against which page, who owned it at that instant and
   whether a live grant backed it. *)
type jrec = { j_tenant : int; j_index : int; j_owner : int; j_backed : bool }

type iotlb_line = {
  mutable l_index : int;
  mutable l_entry : entry option;
  mutable l_last : int;
}

type t = {
  kind : kind;
  costs : costs;
  granted : entry option array;  (* kernel-authoritative grants *)
  hw : entry option array;       (* NIPT / capability-validation table *)
  iotlb : iotlb_line array;      (* Iommu datapath cache *)
  mutable iotlb_tick : int;
  cap_revoked : bool array;      (* Capability: killed, not just absent *)
  journal : jrec option array;
  mutable j_cursor : int;
  mutable mutation : mutation option;
  mutable grants : int;
  mutable revokes : int;
  mutable invalidations : int;
  mutable iotlb_hits : int;
  mutable iotlb_misses : int;
  mutable authorizations : int;
  mutable denials : int;
}

let journal_depth = 128

let create ?(costs = default_costs) ?(iotlb_entries = 8) kind ~entries () =
  if entries <= 0 then invalid_arg "Backend.create: entries must be positive";
  if iotlb_entries <= 0 then
    invalid_arg "Backend.create: iotlb_entries must be positive";
  {
    kind;
    costs;
    granted = Array.make entries None;
    hw = Array.make entries None;
    iotlb =
      Array.init iotlb_entries (fun _ ->
          { l_index = -1; l_entry = None; l_last = 0 });
    iotlb_tick = 0;
    cap_revoked = Array.make entries false;
    journal = Array.make journal_depth None;
    j_cursor = 0;
    mutation = None;
    grants = 0;
    revokes = 0;
    invalidations = 0;
    iotlb_hits = 0;
    iotlb_misses = 0;
    authorizations = 0;
    denials = 0;
  }

let kind t = t.kind
let capacity t = Array.length t.granted

let valid_count t =
  Array.fold_left (fun n e -> if e = None then n else n + 1) 0 t.granted

let set_mutation t m = t.mutation <- m

let in_range t index = index >= 0 && index < Array.length t.granted

(* ---------- datapath decode (the old NIPT surface) ---------- *)

let err_misaligned = 0x1
let err_no_mapping = 0x2

let decode t ~index =
  if not (in_range t index) then None
  else
    match t.kind with
    | Proxy | Capability -> t.hw.(index)
    | Iommu -> t.granted.(index)

let validate_bits t ~dev_addr ~nbytes ~page_size =
  let align =
    if dev_addr land 3 <> 0 || nbytes land 3 <> 0 then err_misaligned else 0
  in
  let mapping =
    match decode t ~index:(dev_addr / page_size) with
    | Some _ -> 0
    | None -> err_no_mapping
  in
  align lor mapping

(* ---------- IOTLB ---------- *)

let iotlb_drop t ~index =
  let dropped = ref false in
  Array.iter
    (fun l ->
      if l.l_index = index && l.l_entry <> None then begin
        l.l_index <- -1;
        l.l_entry <- None;
        dropped := true
      end)
    t.iotlb;
  !dropped

let iotlb_probe t ~index =
  t.iotlb_tick <- t.iotlb_tick + 1;
  let hit = ref None in
  Array.iter
    (fun l ->
      if l.l_index = index && l.l_entry <> None then begin
        l.l_last <- t.iotlb_tick;
        hit := l.l_entry
      end)
    t.iotlb;
  !hit

let iotlb_fill t ~index entry =
  let victim = ref t.iotlb.(0) in
  Array.iter (fun l -> if l.l_last < !victim.l_last then victim := l) t.iotlb;
  !victim.l_index <- index;
  !victim.l_entry <- Some entry;
  !victim.l_last <- t.iotlb_tick

(* ---------- kernel-mediated control path ---------- *)

let grant t ~owner ~index ~dst_node ~dst_frame =
  if not (in_range t index) then
    invalid_arg (Printf.sprintf "Backend.grant: index %d out of range" index);
  let e = { owner; dst_node; dst_frame } in
  t.grants <- t.grants + 1;
  t.granted.(index) <- Some e;
  t.hw.(index) <- Some e;
  match t.kind with
  | Proxy -> 0
  | Iommu ->
      (* a remap must never leave an old translation cached *)
      if iotlb_drop t ~index then t.invalidations <- t.invalidations + 1;
      t.costs.iommu_map
  | Capability ->
      t.cap_revoked.(index) <- false;
      t.costs.cap_grant

let revoke t ~index =
  if not (in_range t index) || t.granted.(index) = None then 0
  else begin
    t.revokes <- t.revokes + 1;
    t.granted.(index) <- None;
    let stale = t.mutation = Some Stale_revoke in
    (match t.kind with
    | Proxy | Capability ->
        if not stale then begin
          t.hw.(index) <- None;
          t.invalidations <- t.invalidations + 1
        end
    | Iommu ->
        t.hw.(index) <- None;
        if not stale then begin
          ignore (iotlb_drop t ~index);
          t.invalidations <- t.invalidations + 1
        end);
    match t.kind with
    | Proxy -> 0
    | Iommu -> t.costs.iommu_unmap
    | Capability ->
        if not stale then t.cap_revoked.(index) <- true;
        t.costs.cap_revoke
  end

let revoke_owner t ~owner =
  let cycles = ref 0 in
  Array.iteri
    (fun index e ->
      match e with
      | Some { owner = o; _ } when o = owner -> cycles := !cycles + revoke t ~index
      | Some _ | None -> ())
    t.granted;
  !cycles

(* ---------- protected initiation ---------- *)

let journal_push t rec_ =
  t.journal.(t.j_cursor) <- Some rec_;
  t.j_cursor <- (t.j_cursor + 1) mod journal_depth

let owner_checked t ~tenant ~index (e : entry) =
  tenant < 0
  || e.owner = tenant
  || t.mutation = Some (Owner_skip index)

let authorize t ~tenant ~index =
  t.authorizations <- t.authorizations + 1;
  let deny fault cost =
    t.denials <- t.denials + 1;
    Error (fault, cost)
  in
  let found, cost =
    match t.kind with
    | Proxy -> (decode t ~index, 0)
    | Capability -> (decode t ~index, t.costs.cap_check)
    | Iommu -> (
        if not (in_range t index) then (None, t.costs.iotlb_walk)
        else
          match iotlb_probe t ~index with
          | Some e ->
              t.iotlb_hits <- t.iotlb_hits + 1;
              (Some e, t.costs.iotlb_hit)
          | None -> (
              t.iotlb_misses <- t.iotlb_misses + 1;
              match t.granted.(index) with
              | Some e ->
                  iotlb_fill t ~index e;
                  (Some e, t.costs.iotlb_walk)
              | None -> (None, t.costs.iotlb_walk)))
  in
  match found with
  | None ->
      let fault =
        if
          t.kind = Capability && in_range t index && t.cap_revoked.(index)
        then Revoked
        else No_mapping
      in
      deny fault cost
  | Some e ->
      if not (owner_checked t ~tenant ~index e) then deny Not_owner cost
      else begin
        let backed =
          in_range t index
          && match t.granted.(index) with Some g -> g = e | None -> false
        in
        journal_push t { j_tenant = tenant; j_index = index; j_owner = e.owner;
                         j_backed = backed };
        Ok (e, cost)
      end

(* ---------- the I5 oracle ---------- *)

let check t =
  let name = kind_name t.kind in
  let stale_hw () =
    let bad = ref None in
    Array.iteri
      (fun index hw ->
        if !bad = None then
          match (hw, t.granted.(index)) with
          | Some e, Some g when g = e -> ()
          | Some _, _ ->
              bad :=
                Some
                  (Printf.sprintf
                     "%s backend: datapath entry for dev page %d survived \
                      teardown (no matching live grant)"
                     name index)
          | None, _ -> ())
      t.hw;
    !bad
  in
  let stale_iotlb () =
    let bad = ref None in
    Array.iter
      (fun l ->
        if !bad = None then
          match l.l_entry with
          | Some e -> (
              match
                if in_range t l.l_index then t.granted.(l.l_index) else None
              with
              | Some g when g = e -> ()
              | _ ->
                  bad :=
                    Some
                      (Printf.sprintf
                         "%s backend: IOTLB line for dev page %d survived the \
                          unmap shootdown"
                         name l.l_index))
          | None -> ())
      t.iotlb;
    !bad
  in
  let journal_breach () =
    let bad = ref None in
    Array.iter
      (fun r ->
        if !bad = None then
          match r with
          | Some j when j.j_tenant >= 0 && j.j_tenant <> j.j_owner ->
              bad :=
                Some
                  (Printf.sprintf
                     "%s backend: tenant %d was authorized for dev page %d \
                      owned by tenant %d (isolation leak)"
                     name j.j_tenant j.j_index j.j_owner)
          | Some j when not j.j_backed ->
              bad :=
                Some
                  (Printf.sprintf
                     "%s backend: a transfer was authorized against dev page \
                      %d after its grant was revoked (stale invalidation)"
                     name j.j_index)
          | Some _ | None -> ())
      t.journal;
    !bad
  in
  match stale_hw () with
  | Some _ as v -> v
  | None -> (
      match stale_iotlb () with
      | Some _ as v -> v
      | None -> journal_breach ())

let stats t =
  {
    st_grants = t.grants;
    st_revokes = t.revokes;
    st_invalidations = t.invalidations;
    st_iotlb_hits = t.iotlb_hits;
    st_iotlb_misses = t.iotlb_misses;
    st_authorizations = t.authorizations;
    st_denials = t.denials;
  }
