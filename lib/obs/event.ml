type subsystem = Udma | Dma | Vm | Sched | Ni | Dev | Kernel | Sim

let subsystem_name = function
  | Udma -> "udma"
  | Dma -> "dma"
  | Vm -> "vm"
  | Sched -> "sched"
  | Ni -> "ni"
  | Dev -> "dev"
  | Kernel -> "kernel"
  | Sim -> "sim"

type payload =
  | Proxy_store of { proxy : int; value : int }
  | Proxy_load of { proxy : int }
  | Sm_transition of { from_ : string; to_ : string; cause : string }
  | Dma_burst of { src : int; dst : int; nbytes : int; duration : int }
  | Packetize of { dst_node : int; nbytes : int }
  | Fault of { vaddr : int; kind : string }
  | Context_switch of { pid : int }
  | Queue_push of { queue : string; depth : int }
  | Queue_pop of { queue : string; depth : int }
  | Udma_start of { src : int; dst : int; nbytes : int }
  | Udma_abort of { reason : string }
  | Link_wait of { from_node : int; to_node : int; wait : int; depth : int }
  | Note of string

type t = { time : int; subsystem : subsystem; payload : payload }

let make ~time subsystem payload = { time; subsystem; payload }

let render { subsystem; payload; _ } =
  let pre = subsystem_name subsystem in
  match payload with
  | Proxy_store { proxy; value } ->
      Printf.sprintf "%s: store %#x <- %d" pre proxy value
  | Proxy_load { proxy } -> Printf.sprintf "%s: load %#x" pre proxy
  | Sm_transition { from_; to_; cause } ->
      Printf.sprintf "%s: %s -> %s (%s)" pre from_ to_ cause
  | Dma_burst { src; dst; nbytes; duration } ->
      Printf.sprintf "%s: burst %#x -> %#x (%d bytes, %d cycles)" pre src dst
        nbytes duration
  | Packetize { dst_node; nbytes } ->
      Printf.sprintf "%s: packet to node %d (%d bytes)" pre dst_node nbytes
  | Fault { vaddr; kind } -> Printf.sprintf "%s: %s fault %#x" pre kind vaddr
  | Context_switch { pid } -> Printf.sprintf "%s: switch to pid %d" pre pid
  | Queue_push { queue; depth } ->
      Printf.sprintf "%s: push %s (depth %d)" pre queue depth
  | Queue_pop { queue; depth } ->
      Printf.sprintf "%s: pop %s (depth %d)" pre queue depth
  | Udma_start { src; dst; nbytes } ->
      Printf.sprintf "%s: start %#x -> %#x (%d bytes)" pre src dst nbytes
  | Udma_abort { reason } -> Printf.sprintf "%s: abort (%s)" pre reason
  | Link_wait { from_node; to_node; wait; depth } ->
      Printf.sprintf "%s: link %d->%d blocked %d cycles (depth %d)" pre
        from_node to_node wait depth
  | Note msg -> Printf.sprintf "%s: %s" pre msg

let kind_name = function
  | Proxy_store _ -> "proxy_store"
  | Proxy_load _ -> "proxy_load"
  | Sm_transition _ -> "sm_transition"
  | Dma_burst _ -> "dma_burst"
  | Packetize _ -> "packetize"
  | Fault _ -> "fault"
  | Context_switch _ -> "context_switch"
  | Queue_push _ -> "queue_push"
  | Queue_pop _ -> "queue_pop"
  | Udma_start _ -> "udma_start"
  | Udma_abort _ -> "udma_abort"
  | Link_wait _ -> "link_wait"
  | Note _ -> "note"

let to_json { time; subsystem; payload } =
  let fields =
    match payload with
    | Proxy_store { proxy; value } ->
        [ ("proxy", Json.Int proxy); ("value", Json.Int value) ]
    | Proxy_load { proxy } -> [ ("proxy", Json.Int proxy) ]
    | Sm_transition { from_; to_; cause } ->
        [
          ("from", Json.Str from_);
          ("to", Json.Str to_);
          ("cause", Json.Str cause);
        ]
    | Dma_burst { src; dst; nbytes; duration } ->
        [
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("nbytes", Json.Int nbytes);
          ("duration", Json.Int duration);
        ]
    | Packetize { dst_node; nbytes } ->
        [ ("dst_node", Json.Int dst_node); ("nbytes", Json.Int nbytes) ]
    | Fault { vaddr; kind } ->
        [ ("vaddr", Json.Int vaddr); ("fault_kind", Json.Str kind) ]
    | Context_switch { pid } -> [ ("pid", Json.Int pid) ]
    | Queue_push { queue; depth } | Queue_pop { queue; depth } ->
        [ ("queue", Json.Str queue); ("depth", Json.Int depth) ]
    | Udma_start { src; dst; nbytes } ->
        [
          ("src", Json.Int src);
          ("dst", Json.Int dst);
          ("nbytes", Json.Int nbytes);
        ]
    | Udma_abort { reason } -> [ ("reason", Json.Str reason) ]
    | Link_wait { from_node; to_node; wait; depth } ->
        [
          ("from", Json.Int from_node);
          ("to", Json.Int to_node);
          ("wait", Json.Int wait);
          ("depth", Json.Int depth);
        ]
    | Note msg -> [ ("msg", Json.Str msg) ]
  in
  Json.Obj
    ([
       ("t", Json.Int time);
       ("sub", Json.Str (subsystem_name subsystem));
       ("kind", Json.Str (kind_name payload));
     ]
    @ fields)

type sink = t -> unit

let counting_sink () =
  let n = ref 0 in
  ((fun _ -> incr n), fun () -> !n)

let jsonl_sink oc ev = Printf.fprintf oc "%s\n" (Json.to_string (to_json ev))
