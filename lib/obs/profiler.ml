type category = User_ref | Kernel | Dma | Wire | Device | Idle

let categories = [ User_ref; Kernel; Dma; Wire; Device; Idle ]

let category_name = function
  | User_ref -> "user_ref"
  | Kernel -> "kernel"
  | Dma -> "dma"
  | Wire -> "wire"
  | Device -> "device"
  | Idle -> "idle"

let index = function
  | User_ref -> 0
  | Kernel -> 1
  | Dma -> 2
  | Wire -> 3
  | Device -> 4
  | Idle -> 5

let n_categories = 6

type t = { cycles : int array; mutable current : category }

let create () = { cycles = Array.make n_categories 0; current = Idle }

let current t = t.current

let set_current t cat = t.current <- cat

let charge t ?cat n =
  if n < 0 then invalid_arg "Profiler.charge: negative cycles";
  let cat = Option.value cat ~default:t.current in
  let i = index cat in
  t.cycles.(i) <- t.cycles.(i) + n

let total t cat = t.cycles.(index cat)

let grand_total t = Array.fold_left ( + ) 0 t.cycles

type totals = int array

let snapshot t = Array.copy t.cycles

let zero = Array.make n_categories 0

let add_totals a b = Array.init n_categories (fun i -> a.(i) + b.(i))

let sub_totals a b = Array.init n_categories (fun i -> max 0 (a.(i) - b.(i)))

let to_list totals =
  List.map (fun c -> (category_name c, totals.(index c))) categories

let sum totals = Array.fold_left ( + ) 0 totals

let to_json totals =
  Json.Obj
    (List.map (fun (name, c) -> (name, Json.Int c)) (to_list totals)
    @ [ ("total", Json.Int (sum totals)) ])
