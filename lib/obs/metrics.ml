type hist = {
  edges : int array;  (* strictly increasing upper edges *)
  counts : int array; (* length = Array.length edges + 1; last = overflow *)
  mutable n : int;
  mutable total : int;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)

let add t name n =
  let r = counter_ref t name in
  r := !r + n

let set t name v = counter_ref t name := v

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let default_buckets =
  [ 1; 2; 4; 8; 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192; 16384;
    32768; 65536 ]

let make_hist buckets =
  let edges = Array.of_list buckets in
  if Array.length edges = 0 then
    invalid_arg "Metrics.observe: empty bucket list";
  Array.iteri
    (fun i e ->
      if i > 0 && e <= edges.(i - 1) then
        invalid_arg "Metrics.observe: bucket edges must be strictly increasing")
    edges;
  { edges; counts = Array.make (Array.length edges + 1) 0; n = 0; total = 0 }

let hist_ref t ?(buckets = default_buckets) name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = make_hist buckets in
      Hashtbl.add t.hists name h;
      h

(* First bucket whose upper edge >= v; overflow slot otherwise. *)
let bucket_index h v =
  let n = Array.length h.edges in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if h.edges.(mid) >= v then go lo mid else go (mid + 1) hi
  in
  if v > h.edges.(n - 1) then n else go 0 n

let observe t ?buckets name v =
  let h = hist_ref t ?buckets name in
  let i = bucket_index h v in
  h.counts.(i) <- h.counts.(i) + 1;
  h.n <- h.n + 1;
  h.total <- h.total + v

type histogram = {
  buckets : (int * int) list;
  overflow : int;
  count : int;
  sum : int;
}

let snapshot_hist h =
  let n = Array.length h.edges in
  {
    buckets = List.init n (fun i -> (h.edges.(i), h.counts.(i)));
    overflow = h.counts.(n);
    count = h.n;
    sum = h.total;
  }

let histogram t name =
  Option.map snapshot_hist (Hashtbl.find_opt t.hists name)

let percentile (h : histogram) p =
  if p <= 0.0 || p > 100.0 then
    invalid_arg "Metrics.percentile: p must be in (0, 100]";
  if h.count = 0 then None
  else
    (* smallest upper edge covering p% of the observations; an
       overflow-bucket hit reports one past the last edge *)
    let need =
      int_of_float (ceil (p /. 100.0 *. float_of_int h.count))
    in
    let rec go acc = function
      | (edge, c) :: rest ->
          let acc = acc + c in
          if acc >= need then Some edge else go acc rest
      | [] -> (
          match List.rev h.buckets with
          | (last, _) :: _ -> Some (last + 1)
          | [] -> None)
    in
    go 0 h.buckets

let histograms t =
  Hashtbl.fold (fun name h acc -> (name, snapshot_hist h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let hist_json (h : histogram) =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Int h.sum);
      ( "buckets",
        Json.Obj
          (List.map
             (fun (edge, c) -> ("le_" ^ string_of_int edge, Json.Int c))
             h.buckets) );
      ("overflow", Json.Int h.overflow);
    ]

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "gauges",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)) );
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_json h)) (histograms t)) );
    ]

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.gauges;
  Hashtbl.reset t.hists
