(** Typed trace events.

    Every interesting action in the simulated machine (proxy-space
    references, UDMA state-machine transitions, DMA bursts, packet
    launches, page faults, context switches, outgoing-queue traffic)
    is recorded as a structured value carrying its subsystem and the
    cycle at which it happened. String formatting happens only when a
    human asks ({!render}) or a JSON sink drains ({!to_json}) — the
    hot path pays for a constructor allocation, nothing more. *)

type subsystem = Udma | Dma | Vm | Sched | Ni | Dev | Kernel | Sim

val subsystem_name : subsystem -> string
(** Stable lower-case name ("udma", "dma", "vm", ...). *)

type payload =
  | Proxy_store of { proxy : int; value : int }
      (** User STORE into destination proxy space (count word). *)
  | Proxy_load of { proxy : int }
      (** User LOAD from source proxy space (initiates the transfer). *)
  | Sm_transition of { from_ : string; to_ : string; cause : string }
      (** UDMA two-reference state machine moved between states. *)
  | Dma_burst of { src : int; dst : int; nbytes : int; duration : int }
      (** Memory/device burst: start address pair, size, cycles. *)
  | Packetize of { dst_node : int; nbytes : int }
      (** NI cut a payload into a network packet. *)
  | Fault of { vaddr : int; kind : string }
      (** VM fault; [kind] distinguishes page / proxy / protection. *)
  | Context_switch of { pid : int }
  | Queue_push of { queue : string; depth : int }
  | Queue_pop of { queue : string; depth : int }
  | Udma_start of { src : int; dst : int; nbytes : int }
      (** Transfer accepted by the UDMA engine. *)
  | Udma_abort of { reason : string }
  | Link_wait of { from_node : int; to_node : int; wait : int; depth : int }
      (** Packet head-of-line blocked on a busy mesh link. *)
  | Note of string  (** Free-form message; escape hatch, avoid. *)

type t = { time : int; subsystem : subsystem; payload : payload }

val make : time:int -> subsystem -> payload -> t

val render : t -> string
(** One human-readable line, e.g.
    ["udma: start 0x40000 -> 0x80000 (256 bytes)"]. *)

val to_json : t -> Json.t
(** [{"t": cycle, "sub": ..., "kind": ..., ...payload fields}]. *)

(** {1 Sinks}

    A sink consumes events as they are recorded. The ring buffer in
    [Udma_sim.Trace] is one consumer; these are others. *)

type sink = t -> unit

val counting_sink : unit -> sink * (unit -> int)
(** A sink that only counts, and a function to read the count. Useful
    to measure event volume without storing anything. *)

val jsonl_sink : out_channel -> sink
(** Writes each event as one compact JSON line. The caller owns the
    channel (flushing/closing). *)
