(** Metrics registry: named counters, gauges and fixed-bucket cycle
    histograms.

    One registry per simulated machine; [Engine], [Udma_engine], [Vm],
    [Scheduler], [Dma_engine] and [Network_interface] all publish into
    it. Counters keep the familiar [Stats] increment API so existing
    call sites port mechanically; histograms replace ad-hoc float
    series for latency-shaped data. *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> string -> unit
(** Bump a counter by one, creating it at 0. *)

val add : t -> string -> int -> unit

val set : t -> string -> int -> unit
(** Publish an absolute value — used by hardware models that keep
    internal counters and mirror them into the registry. *)

val get : t -> string -> int
(** Counter value, 0 if never touched. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Gauges} — last-write-wins instantaneous values. *)

val set_gauge : t -> string -> float -> unit

val gauge : t -> string -> float option

val gauges : t -> (string * float) list

(** {1 Histograms}

    Fixed upper-edge buckets. A value [v] lands in the first bucket
    whose edge satisfies [v <= edge]; values above the last edge land
    in the overflow bucket. Default edges are powers of two from 1 to
    65536 — a good ladder for cycle counts. *)

val default_buckets : int list

val observe : t -> ?buckets:int list -> string -> int -> unit
(** Record one value into histogram [name], creating the histogram on
    first use ([buckets] only takes effect then; edges must be
    strictly increasing, checked at creation). *)

type histogram = {
  buckets : (int * int) list;  (** (upper edge, count), ascending. *)
  overflow : int;  (** Count of values above the last edge. *)
  count : int;
  sum : int;
}

val histogram : t -> string -> histogram option

val percentile : histogram -> float -> int option
(** [percentile h p] is the smallest bucket upper edge covering [p]
    percent of the observations ([None] for an empty histogram; one
    past the last edge if the percentile falls in the overflow
    bucket). An upper-bound estimate — resolution is the bucket
    ladder. Raises [Invalid_argument] unless [0 < p <= 100]. *)

val histograms : t -> (string * histogram) list

(** {1 Export} *)

val to_json : t -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {...}}]. *)

val reset : t -> unit
