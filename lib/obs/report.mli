(** Experiment reports: typed rows + metadata + cycle breakdown.

    Every experiment produces one [Report.t]; the paper-style table
    ({!print}) and the machine-readable JSON ({!to_json}) derive from
    the same value, so they can never drift. A list of reports wraps
    into the [BENCH_udma.json] document with {!bench_json} — the same
    schema whether it comes from [bench/main.exe --json] or from
    [shrimp_sim <exp> --json]. *)

type value = Int of int | Float of float | Str of string | Bool of bool

val json_of_value : value -> Json.t

type row = (string * value) list
(** Field name -> value; fields appear in the table in [columns]
    order. Rows may carry extra fields that are JSON-only. *)

type t = {
  id : string;  (** Stable identifier, e.g. ["e1_figure8"]. *)
  title : string;  (** Human heading, e.g. ["E1 / Figure 8 — ..."]. *)
  meta : (string * value) list;
      (** Experiment parameters (sizes, trials, seed, mhz...). *)
  columns : (string * string) list;
      (** (field, header) in display order; the table shows exactly
          these. *)
  rows : row list;
  breakdown : Profiler.totals option;
      (** Cycle attribution over the whole experiment; its sum equals
          the total simulated cycles across the experiment's
          engines. *)
}

val make :
  id:string ->
  title:string ->
  ?meta:(string * value) list ->
  columns:(string * string) list ->
  ?breakdown:Profiler.totals ->
  row list ->
  t

val print : ?oc:out_channel -> t -> unit
(** Render the paper-style table: title, column headers, one line per
    row (numbers right-aligned), then the cycle breakdown when
    present. *)

val to_json : t -> Json.t
(** [{"id", "title", "meta", "rows": [...], "breakdown": {...}}]. *)

val bench_json :
  ?meta:(string * value) list -> t list -> Json.t
(** The full benchmark document:
    [{"schema": "udma-bench/1", "meta": {...}, "experiments": [...]}]. *)

val schema_version : string
