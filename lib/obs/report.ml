type value = Int of int | Float of float | Str of string | Bool of bool

let json_of_value = function
  | Int i -> Json.Int i
  | Float f -> Json.Float f
  | Str s -> Json.Str s
  | Bool b -> Json.Bool b

type row = (string * value) list

type t = {
  id : string;
  title : string;
  meta : (string * value) list;
  columns : (string * string) list;
  rows : row list;
  breakdown : Profiler.totals option;
}

let make ~id ~title ?(meta = []) ~columns ?breakdown rows =
  { id; title; meta; columns; rows; breakdown }

let cell_text = function
  | Int i -> string_of_int i
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e9 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.2f" f
  | Str s -> s
  | Bool b -> if b then "yes" else "no"

let right_aligned = function Int _ | Float _ -> true | Str _ | Bool _ -> false

let print ?(oc = stdout) t =
  let p fmt = Printf.fprintf oc fmt in
  p "\n=== %s ===\n" t.title;
  if t.meta <> [] then begin
    let pairs =
      List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (cell_text v)) t.meta
    in
    p "  %s\n" (String.concat "  " pairs)
  end;
  let cells row =
    List.map
      (fun (field, _header) ->
        match List.assoc_opt field row with
        | Some v -> (cell_text v, right_aligned v)
        | None -> ("-", false))
      (t.columns : (string * string) list)
  in
  let header = List.map snd t.columns in
  let body = List.map cells t.rows in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (fst (List.nth row i))))
          (String.length h) body)
      header
  in
  let pad s w right =
    let gap = String.make (max 0 (w - String.length s)) ' ' in
    if right then gap ^ s else s ^ gap
  in
  p "  %s\n"
    (String.concat "  " (List.map2 (fun h w -> pad h w false) header widths));
  List.iter
    (fun row ->
      p "  %s\n"
        (String.concat "  "
           (List.map2 (fun (s, right) w -> pad s w right) row widths)))
    body;
  (match t.breakdown with
  | None -> ()
  | Some totals ->
      let total = Profiler.sum totals in
      let parts =
        List.filter_map
          (fun (name, c) ->
            if c = 0 then None
            else
              Some
                (Printf.sprintf "%s %d (%.1f%%)" name c
                   (100.0 *. float_of_int c /. float_of_int (max 1 total))))
          (Profiler.to_list totals)
      in
      p "  cycles: %d  [%s]\n" total (String.concat ", " parts));
  flush oc

let row_json row = Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) row)

let to_json t =
  let base =
    [
      ("id", Json.Str t.id);
      ("title", Json.Str t.title);
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) t.meta));
      ("rows", Json.List (List.map row_json t.rows));
    ]
  in
  let breakdown =
    match t.breakdown with
    | None -> []
    | Some totals -> [ ("breakdown", Profiler.to_json totals) ]
  in
  Json.Obj (base @ breakdown)

let schema_version = "udma-bench/1"

let bench_json ?(meta = []) reports =
  Json.Obj
    [
      ("schema", Json.Str schema_version);
      ("meta", Json.Obj (List.map (fun (k, v) -> (k, json_of_value v)) meta));
      ("experiments", Json.List (List.map to_json reports));
    ]
