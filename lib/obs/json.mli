(** Minimal JSON values, emitter and parser.

    The container image has no Yojson, so the observability layer
    carries its own ~200-line JSON module: enough to emit experiment
    reports and to read them back for the CI anchor check. The parser
    accepts exactly the subset the emitter produces (plus arbitrary
    whitespace), which is all we ever need to read. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : ?indent:int -> t -> string
(** [to_string v] renders [v]. With [indent] (spaces per level) the
    output is pretty-printed; without it the output is compact. Floats
    render with enough digits to round-trip; NaN/infinity render as
    [null] (JSON has no spelling for them). *)

val parse : string -> (t, string) result
(** [parse s] reads one JSON value (surrounding whitespace allowed).
    Numbers without [.], [e] or [E] parse as [Int]. Returns
    [Error msg] with a character offset on malformed input. *)

(** {1 Accessors} — tolerant lookups for reading reports back. *)

val member : string -> t -> t option
(** [member k v] is field [k] of object [v], if present. *)

val path : string list -> t -> t option
(** [path ks v] follows a chain of object fields. *)

val to_list : t -> t list
(** Elements of a [List]; [[]] for anything else. *)

val number : t -> float option
(** [Int] or [Float] as a float. *)

val string_ : t -> string option
