(** Cycle-attribution profiler.

    Charges every simulated cycle to exactly one category, mirroring
    the paper's §8 cost accounting (user references vs. kernel work vs.
    DMA bursts vs. wire time). The simulation engine owns one profiler
    and routes {e all} clock mutations through {!charge}, so the
    invariant [sum (totals t) = Engine.now] holds by construction —
    a qcheck property enforces it. *)

type category = User_ref | Kernel | Dma | Wire | Device | Idle

val categories : category list
(** All categories, in report order. *)

val category_name : category -> string
(** Lower-case stable name ("user_ref", "kernel", ...). *)

type t

val create : unit -> t
(** Fresh profiler: zero cycles everywhere, current category {!Idle}. *)

val current : t -> category

val set_current : t -> category -> unit
(** Switch the category future cycles are charged to. Switching costs
    nothing — only {!charge} moves totals. *)

val charge : t -> ?cat:category -> int -> unit
(** [charge t n] adds [n] cycles to the current category ([cat]
    overrides it for this charge only). Negative [n] is a programming
    error and raises [Invalid_argument]. *)

val total : t -> category -> int

val grand_total : t -> int
(** Sum over all categories; equals the owning engine's elapsed
    cycles. *)

(** {1 Snapshots} — immutable totals for report breakdowns. *)

type totals
(** Cycle count per category; a pure value. *)

val snapshot : t -> totals

val zero : totals

val add_totals : totals -> totals -> totals
(** Pointwise sum — used to merge breakdowns from experiments that run
    several engines. *)

val sub_totals : totals -> totals -> totals
(** Pointwise difference (clamped at zero) — used to scope a breakdown
    to a measurement window. *)

val to_list : totals -> (string * int) list
(** [(category_name, cycles)] in report order, all six categories. *)

val sum : totals -> int

val to_json : totals -> Json.t
(** Object with the six category fields plus ["total"]. *)
