type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ---------- emitter ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* Shortest representation that round-trips. *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_string ?indent v =
  let buf = Buffer.create 256 in
  let pad n =
    match indent with
    | None -> ()
    | Some w ->
        Buffer.add_char buf '\n';
        Buffer.add_string buf (String.make (n * w) ' ')
  in
  let sep () = match indent with None -> () | Some _ -> Buffer.add_char buf ' '
  in
  let rec go depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (float_repr f)
    | Str s -> escape buf s
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            go (depth + 1) item)
          items;
        pad depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char buf ',';
            pad (depth + 1);
            escape buf k;
            Buffer.add_char buf ':';
            sep ();
            go (depth + 1) item)
          fields;
        pad depth;
        Buffer.add_char buf '}'
  in
  go 0 v;
  Buffer.contents buf

(* ---------- parser ---------- *)

exception Bad of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let literal lit v =
    let l = String.length lit in
    if !pos + l <= n && String.sub s !pos l = lit then begin
      pos := !pos + l;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            if !pos >= n then fail "bad escape";
            (match s.[!pos] with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'u' ->
                if !pos + 4 >= n then fail "bad \\u escape";
                let hex = String.sub s (!pos + 1) 4 in
                let code =
                  try int_of_string ("0x" ^ hex)
                  with _ -> fail "bad \\u escape"
                in
                pos := !pos + 4;
                (* Emit UTF-8 for the BMP code point. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | c -> fail (Printf.sprintf "bad escape \\%c" c));
            incr pos;
            go ()
        | c ->
            Buffer.add_char buf c;
            incr pos;
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && is_num_char s.[!pos] do
      incr pos
    done;
    let text = String.sub s start (!pos - start) in
    if
      String.contains text '.'
      || String.contains text 'e'
      || String.contains text 'E'
    then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt text with
          | Some f -> Float f
          | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          List []
        end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          Obj []
        end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some c when c = '-' || (c >= '0' && c <= '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %c" c)
  in
  try
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then Error (Printf.sprintf "trailing input at offset %d" !pos)
    else Ok v
  with Bad (off, msg) -> Error (Printf.sprintf "%s at offset %d" msg off)

(* ---------- accessors ---------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None

let path ks v =
  List.fold_left (fun acc k -> Option.bind acc (member k)) (Some v) ks

let to_list = function List items -> items | _ -> []

let number = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | _ -> None

let string_ = function Str s -> Some s | _ -> None
