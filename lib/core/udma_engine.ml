module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Event = Udma_obs.Event
module Metrics = Udma_obs.Metrics
module Layout = Udma_mmu.Layout
module Bus = Udma_dma.Bus
module Device = Udma_dma.Device
module Dma_engine = Udma_dma.Dma_engine
module Sm = State_machine

type mode = Basic | Queued of { depth : int }

type priority = User | System

type binding = {
  base_page : int;
  pages : int;
  port : Device.port;
  validate : dev_addr:int -> nbytes:int -> int;
}

(* One accepted transfer, in proxy terms plus resolved endpoints. *)
type request = {
  src_proxy : int;
  dest_proxy : int;
  nbytes : int; (* already clamped to page boundaries *)
  src_ep : Dma_engine.endpoint;
  dst_ep : Dma_engine.endpoint;
  priority : priority;
  accepted_at : int; (* cycle the engine took the request *)
}

type counters = {
  initiations : int;
  completions : int;
  bad_loads : int;
  invals : int;
  probes : int;
  clamped : int;
  refused_full : int;
  device_errors : int;
  aborts : int;
}

type t = {
  engine : Engine.t;
  layout : Layout.t;
  bus : Bus.t;
  dma_engine : Dma_engine.t;
  mode : mode;
  trace : Trace.t;
  metrics : Metrics.t;
  mutable sm : Sm.state;
  mutable bindings : binding list;
  mutable active : request option;
  user_queue : request Queue.t;
  system_queue : request Queue.t;
  refcounts : (int, int) Hashtbl.t; (* memory frame -> outstanding refs *)
  mutable start_hook :
    (src_proxy:int -> dest_proxy:int -> nbytes:int -> unit) option;
  mutable c_initiations : int;
  mutable c_completions : int;
  mutable c_bad_loads : int;
  mutable c_invals : int;
  mutable c_probes : int;
  mutable c_clamped : int;
  mutable c_refused_full : int;
  mutable c_device_errors : int;
  mutable c_aborts : int;
}

let mode t = t.mode
let state t = t.sm
let dma t = t.dma_engine

let sm_name s = Format.asprintf "%a" Sm.pp_state s

(* Every state-machine assignment funnels through here so the typed
   transition event can never drift from the actual state. *)
let set_sm t ~cause sm =
  if sm <> t.sm && Trace.active t.trace then
    Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
      (Event.Sm_transition { from_ = sm_name t.sm; to_ = sm_name sm; cause });
  t.sm <- sm

(* ---------- reference counting (I4 support, §7) ---------- *)

let frames_of_request t r =
  let page_size = Layout.page_size t.layout in
  let mem_addr_of = function
    | Dma_engine.Mem a -> Some a
    | Dma_engine.Dev _ -> None
  in
  match (mem_addr_of r.src_ep, mem_addr_of r.dst_ep) with
  | Some a, None | None, Some a ->
      (* clamped to one page, so a single frame *)
      [ a / page_size ]
  | Some a, Some b -> [ a / page_size; b / page_size ]
  | None, None -> []

let ref_incr t r =
  List.iter
    (fun f ->
      let v = Option.value (Hashtbl.find_opt t.refcounts f) ~default:0 in
      Hashtbl.replace t.refcounts f (v + 1))
    (frames_of_request t r)

let ref_decr t r =
  List.iter
    (fun f ->
      match Hashtbl.find_opt t.refcounts f with
      | Some 1 -> Hashtbl.remove t.refcounts f
      | Some v -> Hashtbl.replace t.refcounts f (v - 1)
      | None -> assert false)
    (frames_of_request t r)

let refcount t ~frame =
  Option.value (Hashtbl.find_opt t.refcounts frame) ~default:0

(* ---------- device binding / endpoint resolution ---------- *)

let find_binding t page =
  List.find_opt
    (fun b -> page >= b.base_page && page < b.base_page + b.pages)
    t.bindings

let attach_device t ~base_page ~pages ~port ?(validate = fun ~dev_addr:_ ~nbytes:_ -> 0)
    () =
  if base_page < 0 || pages <= 0
     || base_page + pages > Layout.dev_pages t.layout then
    invalid_arg "Udma_engine.attach_device: pages out of range";
  List.iter
    (fun b ->
      if base_page < b.base_page + b.pages && b.base_page < base_page + pages
      then invalid_arg "Udma_engine.attach_device: overlapping binding")
    t.bindings;
  t.bindings <- { base_page; pages; port; validate } :: t.bindings

(* Error bits reported in the status word's DEVICE-SPECIFIC field. *)
let err_unbound_device = 0x1
let err_device = 0x2 (* device's own validate failed *)
let err_refused = 0x4 (* DMA engine rejected the endpoints *)

type resolved = {
  endpoint : Dma_engine.endpoint;
  binding : binding option; (* Some for device endpoints *)
  dev_addr : int; (* device-internal address; 0 for memory *)
}

let resolve t proxy space =
  match (space : Sm.space) with
  | Mem_space -> Ok { endpoint = Mem (Layout.unproxy t.layout proxy); binding = None; dev_addr = 0 }
  | Dev_space -> (
      let page, offset = Layout.dev_proxy_index t.layout proxy in
      match find_binding t page with
      | None -> Error err_unbound_device
      | Some b ->
          let dev_addr =
            ((page - b.base_page) * Layout.page_size t.layout) + offset
          in
          Ok { endpoint = Dev (b.port, dev_addr); binding = Some b; dev_addr })

(* ---------- starting / queueing transfers ---------- *)

let record_started t r =
  t.c_initiations <- t.c_initiations + 1;
  Metrics.incr t.metrics "udma.initiations";
  (match t.start_hook with
  | Some hook ->
      hook ~src_proxy:r.src_proxy ~dest_proxy:r.dest_proxy ~nbytes:r.nbytes
  | None -> ());
  Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
    (Event.Udma_start
       { src = r.src_proxy; dst = r.dest_proxy; nbytes = r.nbytes })

let rec start_on_dma t r =
  match
    Dma_engine.start t.dma_engine ~src:r.src_ep ~dst:r.dst_ep ~nbytes:r.nbytes
      ~on_complete:(fun () -> on_dma_complete t r)
  with
  | Ok () -> Ok ()
  | Error e ->
      Trace.note t.trace ~time:(Engine.now t.engine) Event.Udma
        (Format.asprintf "dma refused (%a)" Dma_engine.pp_error e);
      Error err_refused

and on_dma_complete t r =
  ref_decr t r;
  t.c_completions <- t.c_completions + 1;
  Metrics.incr t.metrics "udma.completions";
  Metrics.observe t.metrics "udma.transfer_cycles"
    (Engine.now t.engine - r.accepted_at);
  (match t.mode with
  | Basic ->
      let sm, action = Sm.step t.sm Done in
      set_sm t ~cause:"done" sm;
      (match action with
      | Sm.Completed -> ()
      | Sm.No_action | Sm.Latch_dest | Sm.Invalidated | Sm.Start _
      | Sm.Bad_load | Sm.Status_probe ->
          ())
  | Queued _ -> ());
  t.active <- None;
  dispatch_next t

and dispatch_next t =
  if not (Dma_engine.busy t.dma_engine) then begin
    let pop name q =
      let r = Queue.pop q in
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Queue_pop { queue = name; depth = Queue.length q });
      r
    in
    let next =
      if not (Queue.is_empty t.system_queue) then
        Some (pop "system" t.system_queue)
      else if not (Queue.is_empty t.user_queue) then
        Some (pop "user" t.user_queue)
      else None
    in
    match next with
    | None -> ()
    | Some r -> (
        t.active <- Some r;
        match start_on_dma t r with
        | Ok () -> ()
        | Error _ ->
            (* endpoints were validated at acceptance; a refusal here is
               a hardware bug *)
            assert false)
  end

(* Build a request from an initiation pair: clamp at page boundaries of
   both proxy spaces, resolve endpoints, run device validation. *)
let build_request t ~src_proxy ~src_space ~dest ~priority =
  let page_size = Layout.page_size t.layout in
  let room addr = page_size - Layout.offset_in_page t.layout addr in
  let clamped =
    min dest.Sm.nbytes (min (room src_proxy) (room dest.Sm.dest_proxy))
  in
  if clamped < dest.Sm.nbytes then begin
    t.c_clamped <- t.c_clamped + 1;
    Metrics.incr t.metrics "udma.clamped"
  end;
  match resolve t src_proxy src_space with
  | Error e -> Error e
  | Ok src -> (
      match resolve t dest.Sm.dest_proxy dest.Sm.dest_space with
      | Error e -> Error e
      | Ok dst -> (
          let validation =
            match (src.binding, dst.binding) with
            | Some b, None -> b.validate ~dev_addr:src.dev_addr ~nbytes:clamped
            | None, Some b -> b.validate ~dev_addr:dst.dev_addr ~nbytes:clamped
            | None, None | Some _, Some _ ->
                (* spaces always differ at this point *)
                assert false
          in
          if validation <> 0 then
            (* low two device bits ride along in the status word *)
            Error (err_device lor ((validation land 0x3) lsl 2))
          else
            Ok
              {
                src_proxy;
                dest_proxy = dest.Sm.dest_proxy;
                nbytes = clamped;
                src_ep = src.endpoint;
                dst_ep = dst.endpoint;
                priority;
                accepted_at = Engine.now t.engine;
              }))

(* Accept a request: start immediately or queue it. Returns the status
   fields describing the acceptance. *)
let accept t r =
  ref_incr t r;
  record_started t r;
  if Dma_engine.busy t.dma_engine then begin
    let name, q =
      match r.priority with
      | System -> ("system", t.system_queue)
      | User -> ("user", t.user_queue)
    in
    Queue.push r q;
    Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
      (Event.Queue_push { queue = name; depth = Queue.length q });
    Ok `Queued
  end
  else begin
    t.active <- Some r;
    match start_on_dma t r with
    | Ok () -> Ok `Started
    | Error e ->
        ref_decr t r;
        t.active <- None;
        t.c_initiations <- t.c_initiations - 1;
        Metrics.add t.metrics "udma.initiations" (-1);
        Error e
  end

let queued_len t = Queue.length t.user_queue + Queue.length t.system_queue

let outstanding t = queued_len t + if t.active = None then 0 else 1

(* ---------- oracle introspection ---------- *)

type req_view = {
  v_src : Dma_engine.endpoint;
  v_dst : Dma_engine.endpoint;
  v_nbytes : int;
  v_priority : priority;
}

let outstanding_requests t =
  let drain acc q = Queue.fold (fun acc r -> r :: acc) acc q in
  let acc = match t.active with Some r -> [ r ] | None -> [] in
  List.rev (drain (drain acc t.system_queue) t.user_queue)

let outstanding_views t =
  List.map
    (fun r ->
      { v_src = r.src_ep; v_dst = r.dst_ep; v_nbytes = r.nbytes;
        v_priority = r.priority })
    (outstanding_requests t)

let outstanding_frames t =
  List.concat_map (frames_of_request t) (outstanding_requests t)

let refcounts_snapshot t =
  List.sort compare
    (Hashtbl.fold (fun f c acc -> (f, c) :: acc) t.refcounts [])

(* ---------- match flag (associative query, §7) ---------- *)

let request_matches proxy r = r.src_proxy = proxy || r.dest_proxy = proxy

let match_flag t proxy =
  let active = match t.active with Some r -> request_matches proxy r | None -> false in
  if active then true
  else
    let in_queue q =
      Queue.fold (fun acc r -> acc || request_matches proxy r) false q
    in
    in_queue t.user_queue || in_queue t.system_queue

(* ---------- status composition ---------- *)

let probe_status t proxy =
  let transferring = Dma_engine.busy t.dma_engine in
  let invalid = match t.sm with Sm.Idle -> true | _ -> false in
  let remaining =
    match t.sm with
    | Sm.Dest_loaded d -> d.Sm.nbytes
    | Sm.Transferring _ -> Dma_engine.remaining_bytes t.dma_engine
    | Sm.Idle -> Dma_engine.remaining_bytes t.dma_engine
  in
  Status.make ~transferring ~invalid ~matches:(match_flag t proxy)
    ~remaining_bytes:remaining ()

(* ---------- bus-visible operations ---------- *)

let space_of_paddr t paddr =
  match Layout.region_of t.layout paddr with
  | Some Layout.Mem_proxy -> Some Sm.Mem_space
  | Some Layout.Dev_proxy -> Some Sm.Dev_space
  | Some Layout.Mem | None -> None

let handle_store t ~paddr value =
  match space_of_paddr t paddr with
  | None ->
      invalid_arg
        (Printf.sprintf "Udma_engine.handle_store: %#x not proxy space" paddr)
  | Some space ->
      let value = Int32.to_int value in
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Proxy_store { proxy = paddr; value });
      let sm, action = Sm.step t.sm (Store { proxy = paddr; space; value }) in
      let cause =
        match action with Sm.Invalidated -> "inval" | _ -> "store"
      in
      set_sm t ~cause sm;
      (match action with
      | Sm.Latch_dest -> ()
      | Sm.Invalidated ->
          t.c_invals <- t.c_invals + 1;
          Metrics.incr t.metrics "udma.invals"
      | Sm.No_action -> ()
      | Sm.Start _ | Sm.Bad_load | Sm.Status_probe | Sm.Completed ->
          (* stores never produce these *)
          assert false)

let handle_load t ~paddr =
  match space_of_paddr t paddr with
  | None ->
      invalid_arg
        (Printf.sprintf "Udma_engine.handle_load: %#x not proxy space" paddr)
  | Some space -> (
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Proxy_load { proxy = paddr });
      let sm, action = Sm.step t.sm (Load { proxy = paddr; space }) in
      match action with
      | Sm.Status_probe ->
          set_sm t ~cause:"probe" sm;
          t.c_probes <- t.c_probes + 1;
          Metrics.incr t.metrics "udma.probes";
          probe_status t paddr
      | Sm.Bad_load ->
          set_sm t ~cause:"bad-load" sm;
          t.c_bad_loads <- t.c_bad_loads + 1;
          Metrics.incr t.metrics "udma.bad_loads";
          Status.make ~wrong_space:true ~invalid:true
            ~transferring:(Dma_engine.busy t.dma_engine) ()
      | Sm.Start { src_proxy; src_space; dest } -> (
          match build_request t ~src_proxy ~src_space ~dest ~priority:User with
          | Error bits ->
              set_sm t ~cause:"device-error" Sm.Idle;
              t.c_device_errors <- t.c_device_errors + 1;
              Metrics.incr t.metrics "udma.device_errors";
              Status.make ~invalid:true ~device_error:(bits land 0xf)
                ~transferring:(Dma_engine.busy t.dma_engine) ()
          | Ok r -> (
              match t.mode with
              | Basic -> (
                  (* the machine is Transferring iff the DMA is busy *)
                  match accept t r with
                  | Ok `Started ->
                      set_sm t ~cause:"start" sm;
                      Status.make ~started:true ~transferring:true ~matches:true
                        ~remaining_bytes:r.nbytes ()
                  | Ok `Queued ->
                      (* cannot happen: basic mode implies dma idle here *)
                      assert false
                  | Error bits ->
                      set_sm t ~cause:"device-error" Sm.Idle;
                      t.c_device_errors <- t.c_device_errors + 1;
                      Metrics.incr t.metrics "udma.device_errors";
                      Status.make ~invalid:true ~device_error:(bits land 0xf) ())
              | Queued { depth } ->
                  if Dma_engine.busy t.dma_engine && queued_len t >= depth then begin
                    (* refuse; keep DestLoaded so the user can retry the
                       LOAD alone (§7: refused only when the queue is
                       full) *)
                    t.c_refused_full <- t.c_refused_full + 1;
                    Metrics.incr t.metrics "udma.refused_full";
                    Status.make ~transferring:true ~queue_full:true
                      ~remaining_bytes:dest.Sm.nbytes ()
                  end
                  else
                    (match accept t r with
                    | Ok (`Started | `Queued) ->
                        set_sm t ~cause:"start" Sm.Idle;
                        Status.make ~started:true
                          ~transferring:(Dma_engine.busy t.dma_engine)
                          ~invalid:true ~matches:true ~remaining_bytes:r.nbytes
                          ()
                    | Error bits ->
                        set_sm t ~cause:"device-error" Sm.Idle;
                        t.c_device_errors <- t.c_device_errors + 1;
                        Metrics.incr t.metrics "udma.device_errors";
                        Status.make ~invalid:true
                          ~device_error:(bits land 0xf) ())))
      | Sm.No_action | Sm.Latch_dest | Sm.Invalidated | Sm.Completed ->
          (* loads never produce these *)
          assert false)

(* ---------- kernel interface ---------- *)

let abort_active t =
  match t.active with
  | None -> false
  | Some r ->
      ignore (Dma_engine.abort t.dma_engine);
      ref_decr t r;
      t.active <- None;
      t.c_aborts <- t.c_aborts + 1;
      Metrics.incr t.metrics "udma.aborts";
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Udma_abort
           {
             reason =
               Printf.sprintf "%#x -> %#x" r.src_proxy r.dest_proxy;
           });
      (match t.mode with
      | Basic -> set_sm t ~cause:"abort" Sm.Idle
      | Queued _ -> ());
      dispatch_next t;
      true

let invalidate t =
  (* Store of a negative count to any valid proxy address; we use the
     first memory-proxy address. *)
  let paddr = Layout.mem_proxy_base t.layout in
  handle_store t ~paddr (-1l)

let mem_frame_busy t ~frame =
  refcount t ~frame > 0
  || Dma_engine.mem_page_in_flight t.dma_engine
       ~page_size:(Layout.page_size t.layout) frame
  ||
  match t.sm with
  | Sm.Dest_loaded { dest_proxy; dest_space = Sm.Mem_space; _ } ->
      Layout.page_of_addr t.layout (Layout.unproxy t.layout dest_proxy) = frame
  | Sm.Dest_loaded _ | Sm.Idle | Sm.Transferring _ -> false

let enqueue_system t ~src_proxy ~dest_proxy ~nbytes =
  let space p =
    match space_of_paddr t p with
    | Some s -> s
    | None -> invalid_arg "Udma_engine.enqueue_system: not a proxy address"
  in
  let src_space = space src_proxy and dest_space = space dest_proxy in
  if src_space = dest_space || nbytes <= 0 then Error `Rejected
  else
    let full =
      match t.mode with
      | Basic ->
          (* depth-0: refuse whenever the engine is anything but idle,
             including mid-initiation, so the Basic-mode invariant
             (machine Transferring iff DMA busy) is preserved *)
          Dma_engine.busy t.dma_engine || t.sm <> Sm.Idle
      | Queued { depth } ->
          Dma_engine.busy t.dma_engine && queued_len t >= depth
    in
    if full then Error `Full
    else
      let dest = Sm.{ dest_proxy; dest_space; nbytes } in
      match build_request t ~src_proxy ~src_space ~dest ~priority:System with
      | Error _ -> Error `Rejected
      | Ok r -> (
          match accept t r with
          | Ok (`Started | `Queued) ->
              (match t.mode with
              | Basic ->
                  (* mirror the hardware: a running transfer holds the
                     machine in Transferring until Done *)
                  set_sm t ~cause:"system-enqueue"
                    (Sm.Transferring
                       { src_proxy; src_space;
                         dest = { dest with Sm.nbytes = r.nbytes } })
              | Queued _ -> ());
              Ok ()
          | Error _ -> Error `Rejected)

(* ---------- construction ---------- *)

let counters t =
  {
    initiations = t.c_initiations;
    completions = t.c_completions;
    bad_loads = t.c_bad_loads;
    invals = t.c_invals;
    probes = t.c_probes;
    clamped = t.c_clamped;
    refused_full = t.c_refused_full;
    device_errors = t.c_device_errors;
    aborts = t.c_aborts;
  }

let set_start_hook t hook = t.start_hook <- Some hook

let create ~engine ~layout ~bus ~dma ?(mode = Basic)
    ?(trace = Trace.create ~enabled:false ())
    ?(metrics = Metrics.create ()) () =
  (match mode with
  | Queued { depth } when depth < 1 ->
      invalid_arg "Udma_engine.create: queue depth must be >= 1"
  | Queued _ | Basic -> ());
  let t =
    {
      engine;
      layout;
      bus;
      dma_engine = dma;
      mode;
      trace;
      metrics;
      sm = Sm.Idle;
      bindings = [];
      active = None;
      user_queue = Queue.create ();
      system_queue = Queue.create ();
      refcounts = Hashtbl.create 64;
      start_hook = None;
      c_initiations = 0;
      c_completions = 0;
      c_bad_loads = 0;
      c_invals = 0;
      c_probes = 0;
      c_clamped = 0;
      c_refused_full = 0;
      c_device_errors = 0;
      c_aborts = 0;
    }
  in
  let handler =
    Bus.
      {
        io_load = (fun ~paddr -> Status.encode (handle_load t ~paddr));
        io_store = (fun ~paddr v -> handle_store t ~paddr v);
      }
  in
  let mem_proxy_size = Layout.mem_pages layout * Layout.page_size layout in
  Bus.register_io bus ~base:(Layout.mem_proxy_base layout) ~size:mem_proxy_size
    handler;
  let dev_proxy_size = Layout.dev_pages layout * Layout.page_size layout in
  Bus.register_io bus ~base:(Layout.dev_proxy_base layout) ~size:dev_proxy_size
    handler;
  t
