module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Event = Udma_obs.Event
module Metrics = Udma_obs.Metrics
module Layout = Udma_mmu.Layout
module Bus = Udma_dma.Bus
module Device = Udma_dma.Device
module Dma_engine = Udma_dma.Dma_engine
module Descriptor = Udma_dma.Descriptor
module Frontend = Udma_dma.Frontend
module Sm = State_machine

type mode = Basic | Queued of { depth : int }

type priority = User | System

type binding = {
  base_page : int;
  pages : int;
  port : Device.port;
  validate : dev_addr:int -> nbytes:int -> int;
}

(* One flat element of an accepted transfer, in proxy terms plus
   resolved endpoints. *)
type relem = {
  e_src_proxy : int;
  e_dst_proxy : int;
  e_len : int; (* already clamped to the authorized page *)
  e_src : Dma_engine.endpoint;
  e_dst : Dma_engine.endpoint;
}

(* One accepted transfer: its base proxy pair plus the flat elements
   the shape expanded into (a single element for flat initiations). *)
type request = {
  src_proxy : int;
  dest_proxy : int;
  nbytes : int; (* total bytes over all elements *)
  elems : relem list;
  priority : priority;
  accepted_at : int; (* cycle the engine took the request *)
}

type counters = {
  initiations : int;
  completions : int;
  bad_loads : int;
  invals : int;
  probes : int;
  clamped : int;
  refused_full : int;
  device_errors : int;
  aborts : int;
  shape_latches : int;
}

type t = {
  engine : Engine.t;
  layout : Layout.t;
  bus : Bus.t;
  dma_engine : Dma_engine.t;
  mode : mode;
  skip_clamp : bool; (* D1 mutation: drop the per-element page clamp *)
  trace : Trace.t;
  metrics : Metrics.t;
  mutable sm : Sm.state;
  mutable bindings : binding list;
  mutable active : request option;
  user_queue : request Queue.t;
  system_queue : request Queue.t;
  refcounts : (int, int) Hashtbl.t; (* memory frame -> outstanding refs *)
  mutable start_hook :
    (src_proxy:int -> dest_proxy:int -> nbytes:int -> unit) option;
  mutable c_initiations : int;
  mutable c_completions : int;
  mutable c_bad_loads : int;
  mutable c_invals : int;
  mutable c_probes : int;
  mutable c_clamped : int;
  mutable c_refused_full : int;
  mutable c_device_errors : int;
  mutable c_aborts : int;
  mutable c_shape_latches : int;
}

let mode t = t.mode
let state t = t.sm
let dma t = t.dma_engine

let sm_name s = Format.asprintf "%a" Sm.pp_state s

(* Every state-machine assignment funnels through here so the typed
   transition event can never drift from the actual state. *)
let set_sm t ~cause sm =
  if sm <> t.sm && Trace.active t.trace then
    Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
      (Event.Sm_transition { from_ = sm_name t.sm; to_ = sm_name sm; cause });
  t.sm <- sm

(* ---------- reference counting (I4 support, §7) ---------- *)

let frames_of_request t r =
  let page_size = Layout.page_size t.layout in
  (* every frame a memory-side endpoint touches — normally one per
     element (elements are clamped to the authorized page), but the
     full range so an unclamped (mutated) transfer is accounted
     honestly and I4 can see it *)
  let mem_frames ep len =
    match ep with
    | Dma_engine.Mem a ->
        let lo = a / page_size and hi = (a + len - 1) / page_size in
        List.init (hi - lo + 1) (fun i -> lo + i)
    | Dma_engine.Dev _ -> []
  in
  List.concat_map
    (fun e -> mem_frames e.e_src e.e_len @ mem_frames e.e_dst e.e_len)
    r.elems

let ref_incr t r =
  List.iter
    (fun f ->
      let v = Option.value (Hashtbl.find_opt t.refcounts f) ~default:0 in
      Hashtbl.replace t.refcounts f (v + 1))
    (frames_of_request t r)

let ref_decr t r =
  List.iter
    (fun f ->
      match Hashtbl.find_opt t.refcounts f with
      | Some 1 -> Hashtbl.remove t.refcounts f
      | Some v -> Hashtbl.replace t.refcounts f (v - 1)
      | None -> assert false)
    (frames_of_request t r)

let refcount t ~frame =
  Option.value (Hashtbl.find_opt t.refcounts frame) ~default:0

(* ---------- device binding / endpoint resolution ---------- *)

let find_binding t page =
  List.find_opt
    (fun b -> page >= b.base_page && page < b.base_page + b.pages)
    t.bindings

let attach_device t ~base_page ~pages ~port ?(validate = fun ~dev_addr:_ ~nbytes:_ -> 0)
    () =
  if base_page < 0 || pages <= 0
     || base_page + pages > Layout.dev_pages t.layout then
    invalid_arg "Udma_engine.attach_device: pages out of range";
  List.iter
    (fun b ->
      if base_page < b.base_page + b.pages && b.base_page < base_page + pages
      then invalid_arg "Udma_engine.attach_device: overlapping binding")
    t.bindings;
  t.bindings <- { base_page; pages; port; validate } :: t.bindings

(* Error bits reported in the status word's DEVICE-SPECIFIC field. *)
let err_unbound_device = 0x1
let err_device = 0x2 (* device's own validate failed *)
let err_refused = 0x4 (* DMA engine rejected the endpoints *)
let err_bad_shape = 0x8 (* shape expansion produced no usable element *)

type resolved = {
  endpoint : Dma_engine.endpoint;
  binding : binding option; (* Some for device endpoints *)
  dev_addr : int; (* device-internal address; 0 for memory *)
}

let resolve t proxy space =
  match (space : Sm.space) with
  | Mem_space -> Ok { endpoint = Mem (Layout.unproxy t.layout proxy); binding = None; dev_addr = 0 }
  | Dev_space -> (
      let page, offset = Layout.dev_proxy_index t.layout proxy in
      match find_binding t page with
      | None -> Error err_unbound_device
      | Some b ->
          let dev_addr =
            ((page - b.base_page) * Layout.page_size t.layout) + offset
          in
          Ok { endpoint = Dev (b.port, dev_addr); binding = Some b; dev_addr })

(* ---------- starting / queueing transfers ---------- *)

let record_started t r =
  t.c_initiations <- t.c_initiations + 1;
  Metrics.incr t.metrics "udma.initiations";
  (match t.start_hook with
  | Some hook ->
      hook ~src_proxy:r.src_proxy ~dest_proxy:r.dest_proxy ~nbytes:r.nbytes
  | None -> ());
  Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
    (Event.Udma_start
       { src = r.src_proxy; dst = r.dest_proxy; nbytes = r.nbytes })

let descriptor_of_request r =
  match r.elems with
  | [ e ] ->
      Descriptor.Contiguous { src = e.e_src; dst = e.e_dst; nbytes = e.e_len }
  | es ->
      Descriptor.Scatter_gather
        (List.map
           (fun e ->
             Descriptor.{ src = e.e_src; dst = e.e_dst; len = e.e_len })
           es)

let rec start_on_dma t r =
  match
    Dma_engine.submit t.dma_engine (descriptor_of_request r)
      ~on_complete:(fun () -> on_dma_complete t r)
  with
  | Ok () -> Ok ()
  | Error e ->
      Trace.note t.trace ~time:(Engine.now t.engine) Event.Udma
        (Format.asprintf "dma refused (%a)" Dma_engine.pp_error e);
      Error err_refused

and on_dma_complete t r =
  ref_decr t r;
  t.c_completions <- t.c_completions + 1;
  Metrics.incr t.metrics "udma.completions";
  Metrics.observe t.metrics "udma.transfer_cycles"
    (Engine.now t.engine - r.accepted_at);
  (match t.mode with
  | Basic ->
      let sm, action = Sm.step t.sm Done in
      set_sm t ~cause:"done" sm;
      (match action with
      | Sm.Completed -> ()
      | Sm.No_action | Sm.Latch_dest | Sm.Latch_shape | Sm.Invalidated
      | Sm.Start _ | Sm.Bad_load | Sm.Status_probe ->
          ())
  | Queued _ -> ());
  t.active <- None;
  dispatch_next t

and dispatch_next t =
  if not (Dma_engine.busy t.dma_engine) then begin
    let pop name q =
      let r = Queue.pop q in
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Queue_pop { queue = name; depth = Queue.length q });
      r
    in
    let next =
      if not (Queue.is_empty t.system_queue) then
        Some (pop "system" t.system_queue)
      else if not (Queue.is_empty t.user_queue) then
        Some (pop "user" t.user_queue)
      else None
    in
    match next with
    | None -> ()
    | Some r -> (
        t.active <- Some r;
        match start_on_dma t r with
        | Ok () -> ()
        | Error _ ->
            (* endpoints were validated at acceptance; a refusal here is
               a hardware bug *)
            assert false)
  end

(* Expand a latched shape into raw proxy-space elements
   (src paddr, dst paddr, len, dst clamp base). The clamp base is the
   proxy address whose page authorizes the destination bytes: the
   latched destination for flat/strided shapes, each sg word's own
   proxy for gather elements (every tagged store is its own
   reference). *)
let raw_elems_of_shape ~src_proxy ~dest =
  let dst = dest.Sm.dest_proxy and total = dest.Sm.nbytes in
  match dest.Sm.shape with
  | Sm.Flat -> Ok [ (src_proxy, dst, total, dst) ]
  | Sm.Strided { stride; chunk } ->
      let reps = (total + chunk - 1) / chunk in
      Ok
        (List.init reps (fun i ->
             ( src_proxy + (i * stride),
               dst + (i * chunk),
               min chunk (total - (i * chunk)),
               dst )))
  | Sm.Gather { rev_elems } ->
      let others = List.rev rev_elems in
      let listed = List.fold_left (fun acc (_, l) -> acc + l) 0 others in
      let len0 = total - listed in
      (* element zero is the latched destination; the sg words must
         leave it a positive remainder of the count *)
      if len0 <= 0 then Error err_bad_shape
      else
        let dsts = (dst, len0) :: others in
        let _, acc =
          List.fold_left
            (fun (off, acc) (p, l) ->
              (off + l, (src_proxy + off, p, l, p) :: acc))
            (0, []) dsts
        in
        Ok (List.rev acc)

(* Build a request from an initiation pair: expand the shape, clamp
   each element at the page boundaries its references authorize (the
   frontend's per-element clamp), resolve endpoints, run device
   validation per element. *)
let build_request t ~src_proxy ~src_space ~dest ~priority =
  let page_size = Layout.page_size t.layout in
  match raw_elems_of_shape ~src_proxy ~dest with
  | Error e -> Error e
  | Ok raw ->
      (* The source reference authorizes exactly the page [src_proxy]
         names; a destination element is confined to its clamp base's
         page. Elements clamped to nothing are dropped (never element
         zero: both bases have at least one byte of room). *)
      let confine ~base addr len =
        if addr / page_size <> base / page_size then 0
        else Frontend.clamp_to_page ~page_size ~addr len
      in
      let clamped_raw =
        if t.skip_clamp then raw
        else
          List.filter_map
            (fun (s, d, len, dbase) ->
              let len =
                min
                  (confine ~base:src_proxy s len)
                  (confine ~base:dbase d len)
              in
              if len <= 0 then None else Some (s, d, len, dbase))
            raw
      in
      let total =
        List.fold_left (fun acc (_, _, l, _) -> acc + l) 0 clamped_raw
      in
      if total <= 0 then Error err_bad_shape
      else begin
        if total < dest.Sm.nbytes then begin
          t.c_clamped <- t.c_clamped + 1;
          Metrics.incr t.metrics "udma.clamped"
        end;
        let rec resolve_all acc = function
          | [] -> Ok (List.rev acc)
          | (s, d, len, _) :: rest -> (
              match resolve t s src_space with
              | Error e -> Error e
              | Ok src -> (
                  match resolve t d dest.Sm.dest_space with
                  | Error e -> Error e
                  | Ok dst ->
                      let validation =
                        match (src.binding, dst.binding) with
                        | Some b, None ->
                            b.validate ~dev_addr:src.dev_addr ~nbytes:len
                        | None, Some b ->
                            b.validate ~dev_addr:dst.dev_addr ~nbytes:len
                        | None, None | Some _, Some _ ->
                            (* spaces always differ at this point *)
                            assert false
                      in
                      if validation <> 0 then
                        (* low two device bits ride along in the status
                           word *)
                        Error (err_device lor ((validation land 0x3) lsl 2))
                      else
                        resolve_all
                          ({
                             e_src_proxy = s;
                             e_dst_proxy = d;
                             e_len = len;
                             e_src = src.endpoint;
                             e_dst = dst.endpoint;
                           }
                          :: acc)
                          rest))
        in
        match resolve_all [] clamped_raw with
        | Error e -> Error e
        | Ok elems ->
            Ok
              {
                src_proxy;
                dest_proxy = dest.Sm.dest_proxy;
                nbytes = total;
                elems;
                priority;
                accepted_at = Engine.now t.engine;
              }
      end

(* Accept a request: start immediately or queue it. Returns the status
   fields describing the acceptance. *)
let accept t r =
  ref_incr t r;
  record_started t r;
  if Dma_engine.busy t.dma_engine then begin
    let name, q =
      match r.priority with
      | System -> ("system", t.system_queue)
      | User -> ("user", t.user_queue)
    in
    Queue.push r q;
    Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
      (Event.Queue_push { queue = name; depth = Queue.length q });
    Ok `Queued
  end
  else begin
    t.active <- Some r;
    match start_on_dma t r with
    | Ok () -> Ok `Started
    | Error e ->
        ref_decr t r;
        t.active <- None;
        t.c_initiations <- t.c_initiations - 1;
        Metrics.add t.metrics "udma.initiations" (-1);
        Error e
  end

let queued_len t = Queue.length t.user_queue + Queue.length t.system_queue

let outstanding t = queued_len t + if t.active = None then 0 else 1

(* ---------- oracle introspection ---------- *)

type elem_view = {
  ev_src : Dma_engine.endpoint;
  ev_dst : Dma_engine.endpoint;
  ev_len : int;
}

type req_view = {
  v_src : Dma_engine.endpoint;
  v_dst : Dma_engine.endpoint;
  v_nbytes : int;
  v_priority : priority;
  v_elements : elem_view list;
}

let outstanding_requests t =
  let drain acc q = Queue.fold (fun acc r -> r :: acc) acc q in
  let acc = match t.active with Some r -> [ r ] | None -> [] in
  List.rev (drain (drain acc t.system_queue) t.user_queue)

let outstanding_views t =
  List.map
    (fun r ->
      let elements =
        List.map
          (fun e -> { ev_src = e.e_src; ev_dst = e.e_dst; ev_len = e.e_len })
          r.elems
      in
      let v_src, v_dst =
        match r.elems with
        | e :: _ -> (e.e_src, e.e_dst)
        | [] -> assert false (* requests always carry an element *)
      in
      { v_src; v_dst; v_nbytes = r.nbytes; v_priority = r.priority;
        v_elements = elements })
    (outstanding_requests t)

let outstanding_frames t =
  List.concat_map (frames_of_request t) (outstanding_requests t)

let refcounts_snapshot t =
  List.sort compare
    (Hashtbl.fold (fun f c acc -> (f, c) :: acc) t.refcounts [])

(* ---------- match flag (associative query, §7) ---------- *)

let request_matches proxy r =
  r.src_proxy = proxy || r.dest_proxy = proxy
  || List.exists
       (fun e -> e.e_src_proxy = proxy || e.e_dst_proxy = proxy)
       r.elems

let match_flag t proxy =
  let active = match t.active with Some r -> request_matches proxy r | None -> false in
  if active then true
  else
    let in_queue q =
      Queue.fold (fun acc r -> acc || request_matches proxy r) false q
    in
    in_queue t.user_queue || in_queue t.system_queue

(* ---------- status composition ---------- *)

let probe_status t proxy =
  let transferring = Dma_engine.busy t.dma_engine in
  let invalid = match t.sm with Sm.Idle -> true | _ -> false in
  let remaining =
    match t.sm with
    | Sm.Dest_loaded d -> d.Sm.nbytes
    | Sm.Transferring _ -> Dma_engine.remaining_bytes t.dma_engine
    | Sm.Idle -> Dma_engine.remaining_bytes t.dma_engine
  in
  Status.make ~transferring ~invalid ~matches:(match_flag t proxy)
    ~remaining_bytes:remaining ()

(* ---------- bus-visible operations ---------- *)

let space_of_paddr t paddr =
  match Layout.region_of t.layout paddr with
  | Some Layout.Mem_proxy -> Some Sm.Mem_space
  | Some Layout.Dev_proxy -> Some Sm.Dev_space
  | Some Layout.Mem | None -> None

let handle_store t ~paddr value =
  match space_of_paddr t paddr with
  | None ->
      invalid_arg
        (Printf.sprintf "Udma_engine.handle_store: %#x not proxy space" paddr)
  | Some space ->
      let value = Int32.to_int value in
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Proxy_store { proxy = paddr; value });
      let sm, action = Sm.step t.sm (Store { proxy = paddr; space; value }) in
      let cause =
        match action with Sm.Invalidated -> "inval" | _ -> "store"
      in
      set_sm t ~cause sm;
      (match action with
      | Sm.Latch_dest -> ()
      | Sm.Latch_shape ->
          t.c_shape_latches <- t.c_shape_latches + 1;
          Metrics.incr t.metrics "udma.shape_latches"
      | Sm.Invalidated ->
          t.c_invals <- t.c_invals + 1;
          Metrics.incr t.metrics "udma.invals"
      | Sm.No_action -> ()
      | Sm.Start _ | Sm.Bad_load | Sm.Status_probe | Sm.Completed ->
          (* stores never produce these *)
          assert false)

let handle_load t ~paddr =
  match space_of_paddr t paddr with
  | None ->
      invalid_arg
        (Printf.sprintf "Udma_engine.handle_load: %#x not proxy space" paddr)
  | Some space -> (
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Proxy_load { proxy = paddr });
      let sm, action = Sm.step t.sm (Load { proxy = paddr; space }) in
      match action with
      | Sm.Status_probe ->
          set_sm t ~cause:"probe" sm;
          t.c_probes <- t.c_probes + 1;
          Metrics.incr t.metrics "udma.probes";
          probe_status t paddr
      | Sm.Bad_load ->
          set_sm t ~cause:"bad-load" sm;
          t.c_bad_loads <- t.c_bad_loads + 1;
          Metrics.incr t.metrics "udma.bad_loads";
          Status.make ~wrong_space:true ~invalid:true
            ~transferring:(Dma_engine.busy t.dma_engine) ()
      | Sm.Start { src_proxy; src_space; dest } -> (
          match build_request t ~src_proxy ~src_space ~dest ~priority:User with
          | Error bits ->
              set_sm t ~cause:"device-error" Sm.Idle;
              t.c_device_errors <- t.c_device_errors + 1;
              Metrics.incr t.metrics "udma.device_errors";
              Status.make ~invalid:true ~device_error:(bits land 0xf)
                ~transferring:(Dma_engine.busy t.dma_engine) ()
          | Ok r -> (
              match t.mode with
              | Basic -> (
                  (* the machine is Transferring iff the DMA is busy *)
                  match accept t r with
                  | Ok `Started ->
                      set_sm t ~cause:"start" sm;
                      Status.make ~started:true ~transferring:true ~matches:true
                        ~remaining_bytes:r.nbytes ()
                  | Ok `Queued ->
                      (* cannot happen: basic mode implies dma idle here *)
                      assert false
                  | Error bits ->
                      set_sm t ~cause:"device-error" Sm.Idle;
                      t.c_device_errors <- t.c_device_errors + 1;
                      Metrics.incr t.metrics "udma.device_errors";
                      Status.make ~invalid:true ~device_error:(bits land 0xf) ())
              | Queued { depth } ->
                  if Dma_engine.busy t.dma_engine && queued_len t >= depth then begin
                    (* refuse; keep DestLoaded so the user can retry the
                       LOAD alone (§7: refused only when the queue is
                       full) *)
                    t.c_refused_full <- t.c_refused_full + 1;
                    Metrics.incr t.metrics "udma.refused_full";
                    Status.make ~transferring:true ~queue_full:true
                      ~remaining_bytes:dest.Sm.nbytes ()
                  end
                  else
                    (match accept t r with
                    | Ok (`Started | `Queued) ->
                        set_sm t ~cause:"start" Sm.Idle;
                        Status.make ~started:true
                          ~transferring:(Dma_engine.busy t.dma_engine)
                          ~invalid:true ~matches:true ~remaining_bytes:r.nbytes
                          ()
                    | Error bits ->
                        set_sm t ~cause:"device-error" Sm.Idle;
                        t.c_device_errors <- t.c_device_errors + 1;
                        Metrics.incr t.metrics "udma.device_errors";
                        Status.make ~invalid:true
                          ~device_error:(bits land 0xf) ())))
      | Sm.No_action | Sm.Latch_dest | Sm.Latch_shape | Sm.Invalidated
      | Sm.Completed ->
          (* loads never produce these *)
          assert false)

(* ---------- kernel interface ---------- *)

let abort_active t =
  match t.active with
  | None -> false
  | Some r ->
      ignore (Dma_engine.abort t.dma_engine);
      ref_decr t r;
      t.active <- None;
      t.c_aborts <- t.c_aborts + 1;
      Metrics.incr t.metrics "udma.aborts";
      Trace.record t.trace ~time:(Engine.now t.engine) Event.Udma
        (Event.Udma_abort
           {
             reason =
               Printf.sprintf "%#x -> %#x" r.src_proxy r.dest_proxy;
           });
      (match t.mode with
      | Basic -> set_sm t ~cause:"abort" Sm.Idle
      | Queued _ -> ());
      dispatch_next t;
      true

let invalidate t =
  (* Store of a negative count to any valid proxy address; we use the
     first memory-proxy address. *)
  let paddr = Layout.mem_proxy_base t.layout in
  handle_store t ~paddr (-1l)

let mem_frame_busy t ~frame =
  refcount t ~frame > 0
  || Dma_engine.mem_page_in_flight t.dma_engine
       ~page_size:(Layout.page_size t.layout) frame
  ||
  match t.sm with
  | Sm.Dest_loaded { dest_proxy; dest_space = Sm.Mem_space; _ } ->
      Layout.page_of_addr t.layout (Layout.unproxy t.layout dest_proxy) = frame
  | Sm.Dest_loaded _ | Sm.Idle | Sm.Transferring _ -> false

let enqueue_system t ~src_proxy ~dest_proxy ~nbytes =
  let space p =
    match space_of_paddr t p with
    | Some s -> s
    | None -> invalid_arg "Udma_engine.enqueue_system: not a proxy address"
  in
  let src_space = space src_proxy and dest_space = space dest_proxy in
  if src_space = dest_space || nbytes <= 0 then Error `Rejected
  else
    let full =
      match t.mode with
      | Basic ->
          (* depth-0: refuse whenever the engine is anything but idle,
             including mid-initiation, so the Basic-mode invariant
             (machine Transferring iff DMA busy) is preserved *)
          Dma_engine.busy t.dma_engine || t.sm <> Sm.Idle
      | Queued { depth } ->
          Dma_engine.busy t.dma_engine && queued_len t >= depth
    in
    if full then Error `Full
    else
      let dest = Sm.{ dest_proxy; dest_space; nbytes; shape = Sm.Flat } in
      match build_request t ~src_proxy ~src_space ~dest ~priority:System with
      | Error _ -> Error `Rejected
      | Ok r -> (
          match accept t r with
          | Ok (`Started | `Queued) ->
              (match t.mode with
              | Basic ->
                  (* mirror the hardware: a running transfer holds the
                     machine in Transferring until Done *)
                  set_sm t ~cause:"system-enqueue"
                    (Sm.Transferring
                       { src_proxy; src_space;
                         dest = { dest with Sm.nbytes = r.nbytes } })
              | Queued _ -> ());
              Ok ()
          | Error _ -> Error `Rejected)

(* ---------- construction ---------- *)

let counters t =
  {
    initiations = t.c_initiations;
    completions = t.c_completions;
    bad_loads = t.c_bad_loads;
    invals = t.c_invals;
    probes = t.c_probes;
    clamped = t.c_clamped;
    refused_full = t.c_refused_full;
    device_errors = t.c_device_errors;
    aborts = t.c_aborts;
    shape_latches = t.c_shape_latches;
  }

let set_start_hook t hook = t.start_hook <- Some hook

let create ~engine ~layout ~bus ~dma ?(mode = Basic) ?(skip_clamp = false)
    ?(trace = Trace.create ~enabled:false ())
    ?(metrics = Metrics.create ()) () =
  (match mode with
  | Queued { depth } when depth < 1 ->
      invalid_arg "Udma_engine.create: queue depth must be >= 1"
  | Queued _ | Basic -> ());
  let t =
    {
      engine;
      layout;
      bus;
      dma_engine = dma;
      mode;
      skip_clamp;
      trace;
      metrics;
      sm = Sm.Idle;
      bindings = [];
      active = None;
      user_queue = Queue.create ();
      system_queue = Queue.create ();
      refcounts = Hashtbl.create 64;
      start_hook = None;
      c_initiations = 0;
      c_completions = 0;
      c_bad_loads = 0;
      c_invals = 0;
      c_probes = 0;
      c_clamped = 0;
      c_refused_full = 0;
      c_device_errors = 0;
      c_aborts = 0;
      c_shape_latches = 0;
    }
  in
  let handler =
    Bus.
      {
        io_load = (fun ~paddr -> Status.encode (handle_load t ~paddr));
        io_store = (fun ~paddr v -> handle_store t ~paddr v);
      }
  in
  let mem_proxy_size = Layout.mem_pages layout * Layout.page_size layout in
  Bus.register_io bus ~base:(Layout.mem_proxy_base layout) ~size:mem_proxy_size
    handler;
  let dev_proxy_size = Layout.dev_pages layout * Layout.page_size layout in
  Bus.register_io bus ~base:(Layout.dev_proxy_base layout) ~size:dev_proxy_size
    handler;
  t
