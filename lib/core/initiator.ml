module Layout = Udma_mmu.Layout

type cpu = {
  load : vaddr:int -> int32;
  store : vaddr:int -> int32 -> unit;
  compute : int -> unit;
  now : unit -> int;
}

type endpoint = Memory of int | Device of int

let pp_endpoint ppf = function
  | Memory a -> Format.fprintf ppf "memory:%#x" a
  | Device a -> Format.fprintf ppf "device-proxy:%#x" a

type split_strategy = Optimistic | Precompute

type config = {
  call_overhead_cycles : int;
  alignment_check_cycles : int;
  split : split_strategy;
  max_retries : int;
  poll_limit : int;
}

let default_config =
  {
    call_overhead_cycles = 180;
    alignment_check_cycles = 100;
    split = Optimistic;
    max_retries = 10_000;
    poll_limit = 10_000_000;
  }

type error =
  | Hard_error of Status.t
  | Retries_exhausted of Status.t
  | Poll_limit_exceeded
  | Protocol_violation of string

let pp_error ppf = function
  | Hard_error s -> Format.fprintf ppf "hard error %a" Status.pp s
  | Retries_exhausted s -> Format.fprintf ppf "retries exhausted, last %a" Status.pp s
  | Poll_limit_exceeded -> Format.pp_print_string ppf "poll limit exceeded"
  | Protocol_violation m -> Format.fprintf ppf "protocol violation: %s" m

type stats = {
  pieces : int;
  pairs : int;
  retries : int;
  polls : int;
  cycles : int;
}

(* Mutable accumulator threaded through one transfer. *)
type acc = {
  mutable a_pieces : int;
  mutable a_pairs : int;
  mutable a_retries : int;
  mutable a_polls : int;
}

let fresh_acc () = { a_pieces = 0; a_pairs = 0; a_retries = 0; a_polls = 0 }

let stats_of acc ~cycles =
  {
    pieces = acc.a_pieces;
    pairs = acc.a_pairs;
    retries = acc.a_retries;
    polls = acc.a_polls;
    cycles;
  }

let addr_of = function Memory a -> a | Device a -> a

let shift ep k =
  match ep with Memory a -> Memory (a + k) | Device a -> Device (a + k)

(* The user library computes PROXY on its own virtual addresses (§3). *)
let proxy_vaddr layout = function
  | Memory a -> Layout.proxy_of layout a
  | Device a -> a

let page_room layout addr =
  Layout.page_size layout - Layout.offset_in_page layout addr

(* Probe the engine until the transferring condition clears, i.e. the
   machine reports Idle. Used between back-to-back pieces in basic
   mode. *)
let poll_until_idle cpu config acc probe_addr =
  let rec loop n =
    if n >= config.poll_limit then Error Poll_limit_exceeded
    else begin
      acc.a_polls <- acc.a_polls + 1;
      let st = Status.decode (cpu.load ~vaddr:probe_addr) in
      if st.Status.started then
        Error (Protocol_violation "completion probe initiated a transfer")
      else if st.Status.invalid && not st.Status.transferring then Ok ()
      else loop (n + 1)
    end
  in
  loop 0

(* Wait for a piece to finish: repeat the initiating LOAD; the transfer
   has completed once the match flag is clear (§5). *)
let wait_match_clear cpu config acc probe_addr =
  let rec loop n =
    if n >= config.poll_limit then Error Poll_limit_exceeded
    else begin
      acc.a_polls <- acc.a_polls + 1;
      let st = Status.decode (cpu.load ~vaddr:probe_addr) in
      if st.Status.started then
        Error (Protocol_violation "completion probe initiated a transfer")
      else if st.Status.matches then loop (n + 1)
      else Ok ()
    end
  in
  loop 0

(* One piece: execute the two-reference sequence until it is accepted.
   [queued] selects the retry behaviour for a full hardware queue.
   Returns the accepted status (whose REMAINING-BYTES is the clamped
   piece size) together with the src proxy address used. *)
let initiate_piece cpu layout config acc ~queued ~src ~dst ~count =
  let src_p = proxy_vaddr layout src and dst_p = proxy_vaddr layout dst in
  let rec attempt retries =
    acc.a_pairs <- acc.a_pairs + 1;
    cpu.store ~vaddr:dst_p (Int32.of_int count);
    retry_load retries
  and retry_load retries =
    let st = Status.decode (cpu.load ~vaddr:src_p) in
    if Status.ok st then Ok (st, src_p)
    else if Status.hard_error st then Error (Hard_error st)
    else if retries >= config.max_retries then Error (Retries_exhausted st)
    else begin
      acc.a_retries <- acc.a_retries + 1;
      if st.Status.queue_full && queued then
        (* §7: the DESTINATION stays latched; retry the LOAD alone *)
        retry_load (retries + 1)
      else if st.Status.transferring && not st.Status.invalid then begin
        (* basic engine busy: poll until it goes idle, then re-pair *)
        match poll_until_idle cpu config acc src_p with
        | Ok () -> attempt (retries + 1)
        | Error _ as e -> e |> Result.map (fun _ -> assert false)
      end
      else
        (* invalidated (I1 context switch) or transient: re-pair *)
        attempt (retries + 1)
    end
  in
  attempt 0

(* ---------- shaped (strided / scatter-gather) initiation ---------- *)

type shape_spec =
  | Strided_shape of { stride : int; chunk : int }
  | Gather_shape of (endpoint * int) list

let pp_shape_spec ppf = function
  | Strided_shape { stride; chunk } ->
      Format.fprintf ppf "strided(stride=%d,chunk=%d)" stride chunk
  | Gather_shape elems ->
      Format.fprintf ppf "sg[%d extra]" (List.length elems)

let shape_stores layout ~dst_p = function
  | Strided_shape { stride; chunk } ->
      [ (dst_p, State_machine.encode_strided_word ~stride ~chunk) ]
  | Gather_shape elems ->
      List.map
        (fun (ep, len) ->
          (proxy_vaddr layout ep, State_machine.encode_sg_word ~len))
        elems

(* A shaped piece runs the protected sequence with tagged shape words
   between the count STORE and the initiating LOAD. Any transient
   failure re-runs the whole sequence: a plain re-store of the count
   resets the latched shape to flat, so the shape words must travel
   with it. The exception is a full queue, where the DESTINATION —
   shape included — stays latched and the LOAD alone is retried,
   exactly as for flat pieces. *)
let initiate_shaped cpu layout config acc ~queued ~src ~dst ~count ~shape =
  let src_p = proxy_vaddr layout src and dst_p = proxy_vaddr layout dst in
  let stores = shape_stores layout ~dst_p shape in
  let rec attempt retries =
    acc.a_pairs <- acc.a_pairs + 1;
    cpu.store ~vaddr:dst_p (Int32.of_int count);
    List.iter
      (fun (vaddr, word) -> cpu.store ~vaddr (Int32.of_int word))
      stores;
    retry_load retries
  and retry_load retries =
    let st = Status.decode (cpu.load ~vaddr:src_p) in
    if Status.ok st then Ok (st, src_p)
    else if Status.hard_error st then Error (Hard_error st)
    else if retries >= config.max_retries then Error (Retries_exhausted st)
    else begin
      acc.a_retries <- acc.a_retries + 1;
      if st.Status.queue_full && queued then retry_load (retries + 1)
      else if st.Status.transferring && not st.Status.invalid then begin
        match poll_until_idle cpu config acc src_p with
        | Ok () -> attempt (retries + 1)
        | Error _ as e -> e |> Result.map (fun _ -> assert false)
      end
      else attempt (retries + 1)
    end
  in
  attempt 0

let piece_count config ~remaining ~src_room ~dst_room =
  match config.split with
  | Optimistic -> min remaining Status.max_remaining
  | Precompute -> min remaining (min src_room dst_room)

(* Issue all pieces of one (src, dst, nbytes) transfer. When
   [wait_each] is set (basic hardware) each piece is drained before the
   next pair; otherwise pieces are pipelined through the queue.
   Returns the src proxy address of the last piece for the caller's
   final completion wait. *)
let issue cpu layout config acc ~queued ~wait_each ~src ~dst ~nbytes =
  let rec loop ~first ~src ~dst ~remaining ~last_probe =
    if remaining <= 0 then Ok last_probe
    else begin
      (* §8: the alignment / page-boundary check, charged per piece.
         For pieces after the first in basic mode this work overlaps
         the previous piece's transfer. *)
      cpu.compute config.alignment_check_cycles;
      let src_room = page_room layout (addr_of src)
      and dst_room = page_room layout (addr_of dst) in
      let count = piece_count config ~remaining ~src_room ~dst_room in
      match initiate_piece cpu layout config acc ~queued ~src ~dst ~count with
      | Error _ as e -> e
      | Ok (st, src_p) -> (
          acc.a_pieces <- acc.a_pieces + 1;
          let moved =
            match config.split with
            | Optimistic -> min st.Status.remaining_bytes remaining
            | Precompute -> count
          in
          if moved <= 0 then
            Error (Protocol_violation "hardware reported an empty transfer")
          else begin
            ignore first;
            let continue () =
              loop ~first:false ~src:(shift src moved) ~dst:(shift dst moved)
                ~remaining:(remaining - moved) ~last_probe:(Some src_p)
            in
            if wait_each && remaining - moved > 0 then
              (* the basic engine ignores STOREs while transferring, so
                 drain this piece before pairing again *)
              match wait_match_clear cpu config acc src_p with
              | Ok () -> continue ()
              | Error _ as e -> e
            else continue ()
          end)
    end
  in
  loop ~first:true ~src ~dst ~remaining:nbytes ~last_probe:None

let finish cpu config acc start = function
  | Error e -> Error e
  | Ok None -> Ok (stats_of acc ~cycles:(cpu.now () - start))
  | Ok (Some probe) -> (
      match wait_match_clear cpu config acc probe with
      | Ok () -> Ok (stats_of acc ~cycles:(cpu.now () - start))
      | Error e -> Error e)

let check_args src dst nbytes =
  if nbytes < 0 then invalid_arg "Initiator: negative nbytes";
  match (src, dst) with
  | Memory _, Memory _ ->
      invalid_arg "Initiator: memory-to-memory is not supported by basic UDMA"
  | Device _, Device _ ->
      invalid_arg "Initiator: device-to-device is not supported by basic UDMA"
  | Memory _, Device _ | Device _, Memory _ -> ()

let check_shape_args ~src ~dst ~nbytes shape =
  check_args src dst nbytes;
  if nbytes <= 0 then invalid_arg "Initiator: shaped transfer needs nbytes > 0";
  match shape with
  | Strided_shape { stride; chunk } ->
      if stride <= 0 || chunk <= 0 then
        invalid_arg "Initiator: stride and chunk must be positive"
  | Gather_shape elems ->
      List.iter
        (fun (ep, len) ->
          if len <= 0 then
            invalid_arg "Initiator: gather element length must be positive";
          match (dst, ep) with
          | Memory _, Memory _ | Device _, Device _ -> ()
          | _ ->
              invalid_arg
                "Initiator: gather elements must share the destination's space")
        elems

let transfer cpu ~layout ?(config = default_config) ~src ~dst ~nbytes () =
  check_args src dst nbytes;
  let acc = fresh_acc () in
  let start = cpu.now () in
  if nbytes = 0 then Ok (stats_of acc ~cycles:0)
  else begin
    cpu.compute config.call_overhead_cycles;
    issue cpu layout config acc ~queued:false ~wait_each:true ~src ~dst ~nbytes
    |> finish cpu config acc start
  end

let transfer_queued cpu ~layout ?(config = default_config) ~src ~dst ~nbytes ()
    =
  check_args src dst nbytes;
  let acc = fresh_acc () in
  let start = cpu.now () in
  if nbytes = 0 then Ok (stats_of acc ~cycles:0)
  else begin
    cpu.compute config.call_overhead_cycles;
    issue cpu layout config acc ~queued:true ~wait_each:false ~src ~dst ~nbytes
    |> finish cpu config acc start
  end

let transfer_gather cpu ~layout ?(config = default_config) ~pieces () =
  List.iter (fun (src, dst, nbytes) -> check_args src dst nbytes) pieces;
  let acc = fresh_acc () in
  let start = cpu.now () in
  cpu.compute config.call_overhead_cycles;
  let rec go last = function
    | [] -> Ok last
    | (src, dst, nbytes) :: rest -> (
        if nbytes = 0 then go last rest
        else
          match
            issue cpu layout config acc ~queued:true ~wait_each:false ~src ~dst
              ~nbytes
          with
          | Ok probe -> go (if probe = None then last else probe) rest
          | Error _ as e -> e)
  in
  go None pieces |> finish cpu config acc start

let start_shaped cpu ~layout ?(config = default_config) ?(queued = false) ~src
    ~dst ~shape ~nbytes () =
  check_shape_args ~src ~dst ~nbytes shape;
  let acc = fresh_acc () in
  cpu.compute config.alignment_check_cycles;
  match
    initiate_shaped cpu layout config acc ~queued ~src ~dst ~count:nbytes
      ~shape
  with
  | Error _ as e -> e
  | Ok (st, probe) -> Ok (st, probe)

let await cpu ?(config = default_config) ~probe () =
  let acc = fresh_acc () in
  match wait_match_clear cpu config acc probe with
  | Ok () -> Ok acc.a_polls
  | Error _ as e -> e

let transfer_shaped cpu ~layout ?(config = default_config) ?(queued = false)
    ~src ~dst ~shape ~nbytes () =
  check_shape_args ~src ~dst ~nbytes shape;
  let acc = fresh_acc () in
  let start = cpu.now () in
  cpu.compute config.call_overhead_cycles;
  cpu.compute config.alignment_check_cycles;
  match
    initiate_shaped cpu layout config acc ~queued ~src ~dst ~count:nbytes
      ~shape
  with
  | Error _ as e -> e
  | Ok (_, probe) ->
      acc.a_pieces <- acc.a_pieces + 1;
      finish cpu config acc start (Ok (Some probe))

let initiation_cycles cpu ~layout ~config ~src ~dst ~nbytes =
  check_args src dst nbytes;
  let acc = fresh_acc () in
  let start = cpu.now () in
  cpu.compute config.alignment_check_cycles;
  let src_room = page_room layout (addr_of src)
  and dst_room = page_room layout (addr_of dst) in
  let count = piece_count config ~remaining:nbytes ~src_room ~dst_room in
  match initiate_piece cpu layout config acc ~queued:false ~src ~dst ~count with
  | Ok _ -> Ok (cpu.now () - start)
  | Error e -> Error e
