type space = Mem_space | Dev_space

let pp_space ppf = function
  | Mem_space -> Format.pp_print_string ppf "mem"
  | Dev_space -> Format.pp_print_string ppf "dev"

type shape =
  | Flat
  | Strided of { stride : int; chunk : int }
  | Gather of { rev_elems : (int * int) list }

let pp_shape ppf = function
  | Flat -> Format.pp_print_string ppf "flat"
  | Strided { stride; chunk } ->
      Format.fprintf ppf "strided(%d,%d)" stride chunk
  | Gather { rev_elems } ->
      Format.fprintf ppf "sg[%d]" (List.length rev_elems)

type dest = { dest_proxy : int; dest_space : space; nbytes : int; shape : shape }

type state =
  | Idle
  | Dest_loaded of dest
  | Transferring of { src_proxy : int; src_space : space; dest : dest }

let pp_dest_shape ppf d =
  match d.shape with
  | Flat -> ()
  | s -> Format.fprintf ppf "+%a" pp_shape s

let pp_state ppf = function
  | Idle -> Format.pp_print_string ppf "Idle"
  | Dest_loaded d ->
      Format.fprintf ppf "DestLoaded(%a:%#x,%d%a)" pp_space d.dest_space
        d.dest_proxy d.nbytes pp_dest_shape d
  | Transferring { src_proxy; src_space; dest } ->
      Format.fprintf ppf "Transferring(%a:%#x -> %a:%#x,%d%a)" pp_space
        src_space src_proxy pp_space dest.dest_space dest.dest_proxy
        dest.nbytes pp_dest_shape dest

type event =
  | Store of { proxy : int; space : space; value : int }
  | Load of { proxy : int; space : space }
  | Done

let pp_event ppf = function
  | Store { proxy; space; value } ->
      Format.fprintf ppf "Store(%a:%#x,%d)" pp_space space proxy value
  | Load { proxy; space } -> Format.fprintf ppf "Load(%a:%#x)" pp_space space proxy
  | Done -> Format.pp_print_string ppf "Done"

type action =
  | No_action
  | Latch_dest
  | Latch_shape
  | Invalidated
  | Start of { src_proxy : int; src_space : space; dest : dest }
  | Bad_load
  | Status_probe
  | Completed

let pp_action ppf = function
  | No_action -> Format.pp_print_string ppf "no-action"
  | Latch_dest -> Format.pp_print_string ppf "latch-dest"
  | Latch_shape -> Format.pp_print_string ppf "latch-shape"
  | Invalidated -> Format.pp_print_string ppf "invalidated"
  | Start { src_proxy; src_space; dest } ->
      Format.fprintf ppf "start(%a:%#x -> %a:%#x,%d%a)" pp_space src_space
        src_proxy pp_space dest.dest_space dest.dest_proxy dest.nbytes
        pp_dest_shape dest
  | Bad_load -> Format.pp_print_string ppf "bad-load"
  | Status_probe -> Format.pp_print_string ppf "status-probe"
  | Completed -> Format.pp_print_string ppf "completed"

(* ---------- shape-word encoding ----------

   A STORE whose value has bit 30 set is a shape word, refining the
   DESTINATION/COUNT pair latched by the preceding plain store:

     bit 30        shape tag
     bit 29        1 = scatter-gather element, 0 = strided
     bits 28..14   strided: source stride in bytes (<= 32767)
     bits 13..0    strided: chunk bytes (<= 16383); sg: element length

   Shape words are positive 32-bit values, so they flow through the
   same proxy STORE path as counts; a plain positive store still
   latches (and resets the shape to [Flat]), a non-positive store is
   still an Inval. *)

let shape_tag_bit = 0x4000_0000
let shape_sg_bit = 0x2000_0000
let shape_field_mask = 0x3fff
let max_stride = 0x7fff
let max_shape_field = shape_field_mask

let is_shape_word value = value > 0 && value land shape_tag_bit <> 0

let encode_strided_word ~stride ~chunk =
  if stride < 0 || stride > max_stride then
    invalid_arg "State_machine.encode_strided_word: stride out of range";
  if chunk <= 0 || chunk > max_shape_field then
    invalid_arg "State_machine.encode_strided_word: chunk out of range";
  shape_tag_bit lor (stride lsl 14) lor chunk

let encode_sg_word ~len =
  if len <= 0 || len > max_shape_field then
    invalid_arg "State_machine.encode_sg_word: length out of range";
  shape_tag_bit lor shape_sg_bit lor len

let decode_shape_word value =
  if not (is_shape_word value) then None
  else if value land shape_sg_bit <> 0 then
    Some (`Sg (value land shape_field_mask))
  else
    Some
      (`Strided
        ((value lsr 14) land max_stride, value land shape_field_mask))

let step_shape_store dest ~proxy ~space ~value =
  match decode_shape_word value with
  | None -> assert false
  | Some (`Strided (stride, chunk)) ->
      (* A strided refinement re-references the latched destination:
         wrong proxy or space, a zero chunk, or mixing with an sg list
         is an Inval. *)
      if proxy <> dest.dest_proxy || space <> dest.dest_space || chunk <= 0
      then (Idle, Invalidated)
      else (
        match dest.shape with
        | Gather _ -> (Idle, Invalidated)
        | Flat | Strided _ ->
            (Dest_loaded { dest with shape = Strided { stride; chunk } },
             Latch_shape))
  | Some (`Sg len) ->
      (* Each sg word is its own destination reference: it names a new
         proxy address in the destination space and appends an element.
         Mixing with a strided refinement is an Inval. *)
      if space <> dest.dest_space || len <= 0 then (Idle, Invalidated)
      else (
        match dest.shape with
        | Strided _ -> (Idle, Invalidated)
        | Flat ->
            (Dest_loaded
               { dest with shape = Gather { rev_elems = [ (proxy, len) ] } },
             Latch_shape)
        | Gather { rev_elems } ->
            (Dest_loaded
               { dest with
                 shape = Gather { rev_elems = (proxy, len) :: rev_elems } },
             Latch_shape))

let step state event =
  match (state, event) with
  (* --- Shape words: refinements of a latched destination --- *)
  | Idle, Store { value; _ } when is_shape_word value ->
      (* no destination to refine *)
      (Idle, Invalidated)
  | Dest_loaded dest, Store { proxy; space; value } when is_shape_word value
    ->
      step_shape_store dest ~proxy ~space ~value
  (* --- Store events: positive value latches, non-positive is Inval --- *)
  | Idle, Store { proxy; space; value } when value > 0 ->
      (Dest_loaded
         { dest_proxy = proxy; dest_space = space; nbytes = value;
           shape = Flat },
       Latch_dest)
  | Idle, Store _ -> (Idle, Invalidated)
  | Dest_loaded _, Store { proxy; space; value } when value > 0 ->
      (* A Store in DestLoaded overwrites DESTINATION and COUNT (§5),
         and resets any latched shape. *)
      (Dest_loaded
         { dest_proxy = proxy; dest_space = space; nbytes = value;
           shape = Flat },
       Latch_dest)
  | Dest_loaded _, Store _ -> (Idle, Invalidated)
  | (Transferring _ as s), Store _ ->
      (* No transition depicted: a started transfer is never disturbed. *)
      (s, No_action)
  (* --- Load events --- *)
  | Idle, Load _ -> (Idle, Status_probe)
  | Dest_loaded dest, Load { proxy; space } ->
      if space = dest.dest_space then
        (* BadLoad: memory-to-memory or device-to-device request. *)
        (Idle, Bad_load)
      else
        (Transferring { src_proxy = proxy; src_space = space; dest },
         Start { src_proxy = proxy; src_space = space; dest })
  | (Transferring _ as s), Load _ -> (s, Status_probe)
  (* --- Done from the DMA engine --- *)
  | Transferring _, Done -> (Idle, Completed)
  | (Idle as s), Done | (Dest_loaded _ as s), Done -> (s, No_action)
