(** The UDMA hardware (paper §5 Figure 4, §7).

    Sits between the CPU bus and a standard {!Udma_dma.Dma_engine}:
    it claims the physical memory-proxy and device-proxy regions as
    I/O ranges, interprets the STORE/LOAD initiation sequence with
    {!State_machine}, applies [PROXY⁻¹] to translate physical proxy
    addresses to real addresses, enforces page boundaries by clamping
    (§8: transfers are initiated optimistically and the hardware
    enforces boundaries), and answers every proxy LOAD with a
    {!Status.t} word.

    Two hardware designs are provided:
    - [Basic] (§5): one outstanding transfer; the machine stays in
      [Transferring] until the DMA completes.
    - [Queued ~depth] (§7): accepted requests go to a hardware queue
      and the initiation machine returns to [Idle] immediately, so
      multi-page and unrelated transfers can be outstanding together.
      Per-frame reference counters and an associative query support the
      kernel's I4 check; a second, higher-priority queue is reserved
      for the system. *)

type mode = Basic | Queued of { depth : int }

type priority = User | System

type t

val create :
  engine:Udma_sim.Engine.t ->
  layout:Udma_mmu.Layout.t ->
  bus:Udma_dma.Bus.t ->
  dma:Udma_dma.Dma_engine.t ->
  ?mode:mode ->
  ?skip_clamp:bool ->
  ?trace:Udma_sim.Trace.t ->
  ?metrics:Udma_obs.Metrics.t ->
  unit ->
  t
(** Creates the engine and registers its I/O ranges (the whole memory
    proxy region and the whole device proxy region) on [bus]. [mode]
    defaults to [Basic]. [skip_clamp] is the planted D1 mutation: the
    per-element page clamp is dropped, so a shaped (or oversized flat)
    initiation reaches frames its references never authorized — the
    chaos mesh must catch this through I1/I4. [trace] receives typed
    events (proxy references, state-machine transitions, queue
    traffic); [metrics] mirrors the {!counters} record under [udma.*]
    names and records the [udma.transfer_cycles] histogram. *)

val mode : t -> mode
val state : t -> State_machine.state

val attach_device :
  t ->
  base_page:int ->
  pages:int ->
  port:Udma_dma.Device.port ->
  ?validate:(dev_addr:int -> nbytes:int -> int) ->
  unit ->
  unit
(** [attach_device t ~base_page ~pages ~port ?validate ()] binds
    device-proxy pages [base_page .. base_page+pages-1] to [port].
    A device-proxy byte at (page, offset) is device-internal address
    [(page - base_page) * page_size + offset]. [validate] returns
    device-specific error bits for a proposed transfer (default: always
    0). Raises [Invalid_argument] on overlap or out-of-range pages. *)

(** {1 The bus-visible behaviour}

    These are exercised through the {!Udma_dma.Bus.io_handler} the
    engine registers, but are exposed for direct tests. *)

val handle_store : t -> paddr:int -> int32 -> unit
val handle_load : t -> paddr:int -> Status.t

(** {1 Kernel interface} *)

val invalidate : t -> unit
(** The I1 context-switch action: equivalent to storing a negative
    count to any valid proxy address. *)

val mem_frame_busy : t -> frame:int -> bool
(** The I4 check: is physical page [frame] named by the SOURCE or
    DESTINATION register of an in-flight transfer, by the latched
    DESTINATION of a partial initiation, or (queued mode) by any
    outstanding queued request? *)

val refcount : t -> frame:int -> int
(** Queued mode's per-page reference counter (§7); in basic mode it is
    1 for frames of the in-flight transfer and 0 otherwise. *)

val abort_active : t -> bool
(** Kernel operation: terminate the transfer in flight (no data is
    moved, the initiating process sees its match flag clear and no
    arrival). §5: a mechanism "for software to terminate a transfer
    and force a transition from the Transferring state to the Idle
    state ... is not hard to imagine adding. This could be useful for
    dealing with memory system errors". Returns [false] when nothing
    is in flight. Queued mode dispatches the next request. *)

val enqueue_system :
  t -> src_proxy:int -> dest_proxy:int -> nbytes:int ->
  (unit, [ `Full | `Rejected ]) result
(** Kernel-only port into the higher-priority system queue (§7).
    Addresses are physical proxy addresses. In basic mode behaves as a
    depth-0 queue: [Error `Full] whenever the engine is busy. *)

val outstanding : t -> int
(** Transfers accepted but not yet completed (active + queued). *)

(** {1 Oracle introspection}

    Read-only views of the engine's registers and queues, used by the
    invariant oracles in [Udma_check] to decide I3/I4 directly against
    the hardware state. *)

type elem_view = {
  ev_src : Udma_dma.Dma_engine.endpoint;
  ev_dst : Udma_dma.Dma_engine.endpoint;
  ev_len : int;
}

type req_view = {
  v_src : Udma_dma.Dma_engine.endpoint;
  v_dst : Udma_dma.Dma_engine.endpoint;
  v_nbytes : int;
  v_priority : priority;
  v_elements : elem_view list;
}
(** [v_src]/[v_dst] are the first element's endpoints; [v_elements]
    lists every flat element of the (possibly shaped) request, so the
    oracles can check each page an irregular transfer touches. *)

val outstanding_views : t -> req_view list
(** Resolved endpoints of the active transfer plus every queued
    request, active first. *)

val outstanding_frames : t -> int list
(** Multiset of memory frames referenced by outstanding requests —
    exactly what the per-frame reference counters must account for. *)

val refcounts_snapshot : t -> (int * int) list
(** All nonzero per-frame reference counters, sorted by frame. *)

(** {1 Instrumentation} *)

type counters = {
  initiations : int;     (** transfers started or accepted *)
  completions : int;
  bad_loads : int;
  invals : int;
  probes : int;          (** loads answered with status only *)
  clamped : int;         (** initiations shortened at a page boundary *)
  refused_full : int;    (** queued mode: queue-full refusals *)
  device_errors : int;
  aborts : int;          (** kernel-terminated transfers *)
  shape_latches : int;   (** strided/sg shape words latched *)
}

val counters : t -> counters

val set_start_hook :
  t -> (src_proxy:int -> dest_proxy:int -> nbytes:int -> unit) -> unit
(** Test hook invoked whenever a transfer is started or accepted, with
    the physical proxy base addresses of the pair — used by the I1
    property tests to detect cross-process pairing. *)

val dma : t -> Udma_dma.Dma_engine.t
