(** User-level transfer initiation library.

    This is the code a user process runs: the two-reference
    STORE/LOAD sequence of §3, the data-alignment / page-boundary check
    that the paper's 2.8 µs figure includes (§8), retry on
    invalidation or a busy engine, splitting of multi-page transfers,
    and completion polling by re-issuing the initiating LOAD (§5).

    The library is written against an abstract {!cpu} so it can run on
    any simulated process; the OS layer provides the concrete
    implementation that charges cycle costs and handles faults. *)

type cpu = {
  load : vaddr:int -> int32;         (** user-level LOAD *)
  store : vaddr:int -> int32 -> unit;  (** user-level STORE *)
  compute : int -> unit;             (** charge pure CPU cycles *)
  now : unit -> int;                 (** current cycle *)
}

type endpoint =
  | Memory of int
      (** ordinary virtual address of user data; the library applies
          [PROXY] itself *)
  | Device of int
      (** virtual device-proxy address *)

val pp_endpoint : Format.formatter -> endpoint -> unit

type split_strategy =
  | Optimistic
      (** SHRIMP's strategy (§8): pass the full remaining count and let
          the hardware clamp at the page boundary; advance by the count
          the status word reports *)
  | Precompute
      (** compute each piece's size in software before initiating *)

type config = {
  call_overhead_cycles : int;
      (** fixed software cost per [transfer*] call (argument setup,
          loop entry) — charged once per message *)
  alignment_check_cycles : int;
      (** software cost of the §8 alignment / page-boundary check,
          charged once per initiated piece *)
  split : split_strategy;
  max_retries : int;   (** retry budget per piece for busy/invalidated *)
  poll_limit : int;    (** completion-poll budget per piece *)
}

val default_config : config
(** 180-cycle call overhead, 100-cycle check (DESIGN.md §5),
    [Optimistic], 10_000 retries, 10_000_000 polls. *)

type error =
  | Hard_error of Status.t
      (** wrong-space or device-specific error reported by hardware *)
  | Retries_exhausted of Status.t
  | Poll_limit_exceeded
  | Protocol_violation of string
      (** a completion probe unexpectedly initiated a transfer — only
          possible when the I1 kernel discipline is broken *)

val pp_error : Format.formatter -> error -> unit

type stats = {
  pieces : int;        (** hardware transfers issued *)
  pairs : int;         (** STORE/LOAD pairs executed, incl. retries *)
  retries : int;
  polls : int;         (** completion-wait probe loads *)
  cycles : int;        (** total cycles from first STORE to completion *)
}

val transfer :
  cpu ->
  layout:Udma_mmu.Layout.t ->
  ?config:config ->
  src:endpoint ->
  dst:endpoint ->
  nbytes:int ->
  unit ->
  (stats, error) result
(** Blocking transfer for the basic (§5) hardware: initiates each
    page-bounded piece, waits for it to complete, proceeds to the next.
    Both endpoint addresses advance together as pieces are issued. *)

val transfer_queued :
  cpu ->
  layout:Udma_mmu.Layout.t ->
  ?config:config ->
  src:endpoint ->
  dst:endpoint ->
  nbytes:int ->
  unit ->
  (stats, error) result
(** Pipelined transfer for the queued (§7) hardware: issues every piece
    back-to-back (two references per page; retrying the LOAD alone when
    the queue is full) and then waits only for the last piece, as §7
    prescribes. *)

val transfer_gather :
  cpu ->
  layout:Udma_mmu.Layout.t ->
  ?config:config ->
  pieces:(endpoint * endpoint * int) list ->
  unit ->
  (stats, error) result
(** Gather–scatter (§7): a list of (src, dst, nbytes) transfers issued
    through the queue, waiting only for the last. Each entry may itself
    span pages. *)

(** {2 Shaped (strided / scatter-gather) initiation}

    The descriptor-proxy extension: after the count STORE, the user
    library issues tagged shape words through the same protected
    proxy-space references, then the initiating LOAD. The hardware
    expands the shape into per-element transfers, clamping every
    element to its own page. *)

type shape_spec =
  | Strided_shape of { stride : int; chunk : int }
      (** source advances by [stride] bytes per element, destination
          packs densely; each element moves [chunk] bytes *)
  | Gather_shape of (endpoint * int) list
      (** extra destination elements after the latched first one, each
          [(endpoint, len)]; the first element keeps the remainder
          [nbytes - sum of listed lens], which must be positive *)

val pp_shape_spec : Format.formatter -> shape_spec -> unit

val transfer_shaped :
  cpu ->
  layout:Udma_mmu.Layout.t ->
  ?config:config ->
  ?queued:bool ->
  src:endpoint ->
  dst:endpoint ->
  shape:shape_spec ->
  nbytes:int ->
  unit ->
  (stats, error) result
(** Blocking shaped transfer: one shaped initiation (three or more
    protected references), then poll the initiating LOAD until the
    match flag clears. [queued] selects the queue-full retry behaviour
    (retry the LOAD alone, §7) and must match the hardware's mode. *)

val start_shaped :
  cpu ->
  layout:Udma_mmu.Layout.t ->
  ?config:config ->
  ?queued:bool ->
  src:endpoint ->
  dst:endpoint ->
  shape:shape_spec ->
  nbytes:int ->
  unit ->
  (Status.t * int, error) result
(** Fire-and-forget shaped initiation: runs the protected sequence
    until accepted and returns [(accepted status, probe address)]
    without waiting for completion. Pipelined callers pass the probe
    to {!await}; the chaos harness uses it to leave shaped transfers
    in flight. *)

val await : cpu -> ?config:config -> probe:int -> unit -> (int, error) result
(** [await cpu ~probe ()] re-issues the initiating LOAD at [probe]
    until the match flag clears (§5) and returns the number of probe
    loads. *)

val initiation_cycles : cpu -> layout:Udma_mmu.Layout.t -> config:config ->
  src:endpoint -> dst:endpoint -> nbytes:int -> (int, error) result
(** The paper's §8 initiation measurement: cycles from first reference
    until the initiating LOAD returns, for a single piece, not waiting
    for the transfer itself. *)
