(** The UDMA hardware state machine (paper §5, Figure 5), extended with
    shape words for strided and scatter-gather initiation.

    Pure transition function over the three states — [Idle],
    [Dest_loaded], [Transferring] — and the events [Store], [Load]
    (with [Inval] being a store of a non-positive count and [BadLoad]
    a load from the same proxy space as the latched destination), plus
    the internal [Done] event from the DMA engine. Events with no
    depicted transition leave the state unchanged (paper: "if no
    transition is depicted ... that event does not cause a state
    transition").

    {b Shape words.} A STORE whose value has bit 30 set refines the
    latched destination instead of overwriting it: a {e strided} word
    (bit 29 clear) stored to the same destination proxy encodes
    [stride]/[chunk] fields, and a {e scatter-gather} word (bit 29 set)
    stored to a fresh proxy address in the destination space appends a
    [(proxy, len)] element. Every protocol violation — a shape word
    with no latched destination, a strided word to the wrong proxy or
    space, a zero field, or mixing strided with sg — is an Inval, so
    the protected path never starts a transfer from a malformed shape.
    The completing LOAD still carries the source reference and the
    per-element page clamp is applied by {!Udma_engine} at initiation.

    The function is pure so it can be tested exhaustively; the engine
    in {!Udma_engine} interprets the returned action against the real
    DMA hardware. *)

type space = Mem_space | Dev_space

val pp_space : Format.formatter -> space -> unit

type shape =
  | Flat  (** no shape word seen: today's contiguous transfer *)
  | Strided of { stride : int; chunk : int }
      (** source advances [stride] bytes per [chunk]-byte piece *)
  | Gather of { rev_elems : (int * int) list }
      (** sg destination elements [(proxy paddr, len)], latest first;
          the latched destination is element zero and receives the
          remainder — the count minus the listed lengths *)

val pp_shape : Format.formatter -> shape -> unit

type dest = { dest_proxy : int; dest_space : space; nbytes : int; shape : shape }
(** Latched DESTINATION register + COUNT + shape refinement.
    [dest_proxy] is a physical proxy address. *)

type state =
  | Idle
  | Dest_loaded of dest
  | Transferring of { src_proxy : int; src_space : space; dest : dest }

val pp_state : Format.formatter -> state -> unit

type event =
  | Store of { proxy : int; space : space; value : int }
      (** a STORE of [value] to physical proxy address [proxy];
          [value <= 0] is an [Inval], bit 30 marks a shape word *)
  | Load of { proxy : int; space : space }
  | Done  (** the DMA engine finished the transfer *)

val pp_event : Format.formatter -> event -> unit

type action =
  | No_action        (** event ignored in this state *)
  | Latch_dest       (** DESTINATION/COUNT written *)
  | Latch_shape      (** shape word consumed, refinement latched *)
  | Invalidated      (** Inval consumed, machine reset to Idle *)
  | Start of { src_proxy : int; src_space : space; dest : dest }
      (** the Load completed an initiation pair: start the DMA *)
  | Bad_load         (** load from the same space as the destination *)
  | Status_probe     (** load answered with status only *)
  | Completed        (** Done consumed *)

val pp_action : Format.formatter -> action -> unit

val step : state -> event -> state * action
(** One transition. Total over all [state * event] pairs. *)

(** {1 Shape-word encoding}

    Bit 30 tags a shape word; bit 29 selects sg over strided; strided
    words carry the stride in bits 28..14 and the chunk in bits 13..0;
    sg words carry the element length in bits 13..0. *)

val shape_tag_bit : int

val max_stride : int
(** 32767 — largest encodable strided stride. *)

val max_shape_field : int
(** 16383 — largest chunk / sg element length. *)

val is_shape_word : int -> bool

val encode_strided_word : stride:int -> chunk:int -> int
(** Raises [Invalid_argument] when a field does not fit. *)

val encode_sg_word : len:int -> int
(** Raises [Invalid_argument] when [len] does not fit or is not
    positive. *)

val decode_shape_word : int -> [ `Strided of int * int | `Sg of int ] option
(** [`Strided (stride, chunk)] or [`Sg len]; [None] for plain values. *)
