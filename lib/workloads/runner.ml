module Engine = Udma_sim.Engine
module Rng = Udma_sim.Rng
module Metrics = Udma_obs.Metrics
module Profiler = Udma_obs.Profiler
module Report = Udma_obs.Report
module Layout = Udma_mmu.Layout
module Bus = Udma_dma.Bus
module Device = Udma_dma.Device
module Status = Udma.Status
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module M = Udma_os.Machine
module Proc = Udma_os.Proc
module Vm = Udma_os.Vm
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model
module System = Udma_shrimp.System
module Messaging = Udma_shrimp.Messaging
module Pio_fifo = Udma_devices.Pio_fifo
module Backend = Udma_protect.Backend
module Tenants = Udma_protect.Tenants

let pattern n = Bytes.init n (fun i -> Char.chr (i land 0xff))

let fail_transfer e = failwith (Format.asprintf "transfer: %a" Initiator.pp_error e)
let fail_syscall e = failwith (Format.asprintf "syscall: %a" Syscall.pp_error e)
let fail_send e = failwith (Format.asprintf "send: %a" Messaging.pp_send_error e)

(* ------------------------------------------------------------------ *)
(* engine probe: cycle attribution across a whole experiment           *)
(* ------------------------------------------------------------------ *)

(* Several experiments build a fresh machine (and engine) per data
   point; the probe collects every engine so the report's cycle
   breakdown spans the whole experiment, not just the last engine. *)
type probe = { mutable engines : Engine.t list }

let probe () = { engines = [] }

let watch p engine =
  if not (List.memq engine p.engines) then p.engines <- engine :: p.engines

let breakdown p =
  List.fold_left
    (fun acc e -> Profiler.add_totals acc (Engine.profile e))
    Profiler.zero p.engines

(* Report.value shorthands *)
let vi n = Report.Int n
let vf x = Report.Float x
let vs x = Report.Str x
let vb x = Report.Bool x

(* ------------------------------------------------------------------ *)
(* E1 / Figure 8                                                      *)
(* ------------------------------------------------------------------ *)

type bw_point = {
  size : int;
  cycles_per_msg : float;
  bytes_per_cycle : float;
  pct_of_max : float;
}

let figure8_core ~sizes ~messages ~queued p =
  let sys =
    if queued then
      System.create
        ~config:
          { System.default_config with
            System.machine =
              { M.default_config with
                M.udma_mode = Some (Udma_engine.Queued { depth = 8 }) } }
        ~nodes:2 ()
    else System.create ~nodes:2 ()
  in
  watch p (System.engine sys);
  let snd = System.node sys 0 and rcv = System.node sys 1 in
  let sender = Scheduler.spawn snd.System.machine ~name:"sender" in
  let receiver = Scheduler.spawn rcv.System.machine ~name:"receiver" in
  let max_size = List.fold_left max 4096 sizes in
  let page_size = Layout.page_size snd.System.machine.M.layout in
  let pages = ((max_size + 4) + page_size - 1) / page_size + 1 in
  let ch =
    Messaging.connect sys ~sender:(0, sender) ~receiver:(1, receiver) ~pages ()
  in
  let buf = Kernel.alloc_buffer snd.System.machine sender ~bytes:(pages * page_size) in
  Kernel.write_user snd.System.machine sender ~vaddr:buf (pattern max_size);
  let cpu = Kernel.user_cpu snd.System.machine sender in
  (* warm every mapping (proxy pages, TLB) with one full-size send *)
  (match
     Messaging.send_nowait ch cpu ~src_vaddr:buf ~nbytes:max_size
       ~pipelined:queued ()
   with
  | Ok () -> ()
  | Error e -> fail_send e);
  System.run_until_idle sys;
  let raw =
    List.map
      (fun size ->
        let t0 = Engine.now (System.engine sys) in
        for _ = 1 to messages do
          match
            Messaging.send_nowait ch cpu ~src_vaddr:buf ~nbytes:size
              ~pipelined:queued ()
          with
          | Ok () -> ()
          | Error e -> fail_send e
        done;
        let dt = Engine.now (System.engine sys) - t0 in
        System.run_until_idle sys;
        (size, float_of_int dt /. float_of_int messages))
      sizes
  in
  let max_bpc =
    List.fold_left
      (fun acc (size, cpm) -> Float.max acc (float_of_int size /. cpm))
      0.0 raw
  in
  List.map
    (fun (size, cpm) ->
      let bpc = float_of_int size /. cpm in
      {
        size;
        cycles_per_msg = cpm;
        bytes_per_cycle = bpc;
        pct_of_max = 100.0 *. bpc /. max_bpc;
      })
    raw

let figure8 ?(sizes = Sizes.figure8) ?(messages = 32) ?(queued = false) () =
  figure8_core ~sizes ~messages ~queued (probe ())

let report_figure8 ?(sizes = Sizes.figure8) ?(messages = 32)
    ?(queued = false) () =
  let p = probe () in
  let rows = figure8_core ~sizes ~messages ~queued p in
  Report.make
    ~id:(if queued then "e1_figure8_queued" else "e1_figure8")
    ~title:
      (if queued then
         "E1 / Figure 8: UDMA bandwidth vs message size (queued section-7 \
          hardware)"
       else "E1 / Figure 8: deliberate-update UDMA bandwidth vs message size")
    ~meta:[ ("messages", vi messages); ("queued", vb queued) ]
    ~columns:
      [
        ("size", "size");
        ("cycles_per_msg", "cycles/msg");
        ("bytes_per_cycle", "bytes/cyc");
        ("pct_of_max", "%max");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun pt ->
         [
           ("size", vi pt.size);
           ("cycles_per_msg", vf pt.cycles_per_msg);
           ("bytes_per_cycle", vf pt.bytes_per_cycle);
           ("pct_of_max", vf pt.pct_of_max);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* shared single-node rig: machine + UDMA + one buffer device          *)
(* ------------------------------------------------------------------ *)

let buffer_rig ?(mode = Udma_engine.Basic) ?(mem_pages = 128) ?(dev_pages = 64)
    () =
  let config =
    { M.default_config with M.udma_mode = Some mode; mem_pages; dev_pages }
  in
  let m = M.create ~config () in
  let udma = Option.get m.M.udma in
  let page_size = Layout.page_size m.M.layout in
  let port, store = Device.buffer "dev" ~size:(dev_pages * page_size) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:dev_pages ~port ();
  (m, udma, port, store)

let grant_dev m proc ~pages =
  for i = 0 to pages - 1 do
    match Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i ~writable:true with
    | Ok () -> ()
    | Error e -> fail_syscall e
  done

(* ------------------------------------------------------------------ *)
(* E2: initiation costs                                                *)
(* ------------------------------------------------------------------ *)

type cost_row = { label : string; cycles : int; us : float }

let row costs label cycles =
  { label; cycles; us = Cost_model.us_of_cycles costs cycles }

let cost_rows rows =
  List.map
    (fun (r : cost_row) ->
      [ ("label", vs r.label); ("cycles", vi r.cycles); ("us", vf r.us) ])
    rows

let cost_columns = [ ("label", "path"); ("cycles", "cycles"); ("us", "us") ]

let initiation_costs_core p =
  let m, _udma, port, _ = buffer_rig () in
  watch p m.M.engine;
  let proc = Scheduler.spawn m ~name:"p" in
  grant_dev m proc ~pages:2;
  let buf = Kernel.alloc_buffer m proc ~bytes:8192 in
  Kernel.write_user m proc ~vaddr:buf (pattern 8192);
  let cpu = Kernel.user_cpu m proc in
  let dst = Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0) in
  (* warm mappings *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst ~nbytes:4096 ()
   with
  | Ok _ -> ()
  | Error e -> fail_transfer e);
  Engine.run_until_idle m.M.engine;
  let udma_init =
    match
      Initiator.initiation_cycles cpu ~layout:m.M.layout
        ~config:Initiator.default_config ~src:(Initiator.Memory buf) ~dst
        ~nbytes:4096
    with
    | Ok c -> c
    | Error e -> fail_transfer e
  in
  Engine.run_until_idle m.M.engine;
  let udma_4k =
    match
      Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
        ~dst ~nbytes:4096 ()
    with
    | Ok s -> s.Initiator.cycles
    | Error e -> fail_transfer e
  in
  Engine.run_until_idle m.M.engine;
  let trad strategy nbytes =
    match
      Syscall.dma_transfer m proc ~dir:Syscall.To_device ~vaddr:buf ~nbytes
        ~port ~dev_addr:0 ~strategy
    with
    | Ok c -> c
    | Error e -> fail_syscall e
  in
  let trad_pin_4 = trad Syscall.Pin_user_pages 4 in
  let trad_pin_4k = trad Syscall.Pin_user_pages 4096 in
  let trad_copy_4k = trad Syscall.Copy_through_buffer 4096 in
  let costs = m.M.costs in
  [
    row costs "UDMA initiation (2 refs + check)" udma_init;
    row costs "UDMA 4 KB transfer, end to end" udma_4k;
    row costs "traditional syscall entry/exit alone" costs.Cost_model.syscall;
    row costs "traditional 4 B transfer (pin)" trad_pin_4;
    row costs "traditional 4 KB transfer (pin)" trad_pin_4k;
    row costs "traditional 4 KB transfer (copy)" trad_copy_4k;
  ]

let initiation_costs () = initiation_costs_core (probe ())

let report_costs () =
  let p = probe () in
  let rows = initiation_costs_core p in
  Report.make ~id:"e2_initiation"
    ~title:"E2: transfer-initiation cost (the paper's 2.8 us)"
    ~columns:cost_columns ~breakdown:(breakdown p) (cost_rows rows)

(* ------------------------------------------------------------------ *)
(* E3: HIPPI motivation                                                *)
(* ------------------------------------------------------------------ *)

type hippi_row = { block : int; mbytes_per_s : float; pct_of_channel : float }

let hippi_core ~blocks p =
  let config =
    {
      M.default_config with
      M.udma_mode = None;
      costs = Cost_model.hippi;
      mem_pages = 256;
      virt_pages = 512;
    }
  in
  let m = M.create ~config () in
  watch p m.M.engine;
  let proc = Scheduler.spawn m ~name:"p" in
  let port = Device.null "hippi" in
  let max_block = List.fold_left max 4096 blocks in
  let buf = Kernel.alloc_buffer m proc ~bytes:max_block in
  Kernel.write_user m proc ~vaddr:buf (pattern (min max_block 65536));
  let mhz = float_of_int m.M.costs.Cost_model.mhz in
  (* raw channel rate: one 4-byte word per [burst_word_cycles] *)
  let channel_mbps =
    4.0 *. mhz /. float_of_int (Bus.timing m.M.bus).Bus.burst_word_cycles
  in
  List.map
    (fun block ->
      let cycles =
        match
          Syscall.dma_transfer m proc ~dir:Syscall.To_device ~vaddr:buf
            ~nbytes:block ~port ~dev_addr:0 ~strategy:Syscall.Pin_user_pages
        with
        | Ok c -> c
        | Error e -> fail_syscall e
      in
      let mbps = float_of_int block *. mhz /. float_of_int cycles in
      { block; mbytes_per_s = mbps; pct_of_channel = 100.0 *. mbps /. channel_mbps })
    blocks

let hippi_motivation ?(blocks = Sizes.hippi_blocks) () =
  hippi_core ~blocks (probe ())

let report_hippi ?(blocks = Sizes.hippi_blocks) () =
  let p = probe () in
  let rows = hippi_core ~blocks p in
  Report.make ~id:"e3_hippi"
    ~title:"E3: kernel-initiated DMA on a HIPPI-class channel (section 1)"
    ~columns:
      [
        ("block", "block");
        ("mbytes_per_s", "MB/s");
        ("pct_of_channel", "%channel");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [
           ("block", vi r.block);
           ("mbytes_per_s", vf r.mbytes_per_s);
           ("pct_of_channel", vf r.pct_of_channel);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E4: PIO-FIFO crossover                                              *)
(* ------------------------------------------------------------------ *)

type crossover_row = { xsize : int; udma_cycles : float; pio_cycles : float }

let udma_latency sys ch cpu_snd cpu_rcv ~buf ~size ~trials =
  let total = ref 0 in
  for _ = 1 to trials do
    let t0 = Engine.now (System.engine sys) in
    let seq =
      match Messaging.send ch cpu_snd ~src_vaddr:buf ~nbytes:size () with
      | Ok seq -> seq
      | Error e -> fail_send e
    in
    (match Messaging.recv_wait ch cpu_rcv ~seq () with
    | Ok _ -> ()
    | Error msg -> failwith msg);
    total := !total + (Engine.now (System.engine sys) - t0);
    System.run_until_idle sys
  done;
  float_of_int !total /. float_of_int trials

let pio_pair () =
  let config = { M.default_config with M.udma_mode = None; mem_pages = 64 } in
  let engine = Engine.create ~mhz:config.M.costs.Cost_model.mhz () in
  let mk () =
    M.create ~config:{ config with M.shared_engine = Some engine } ()
  in
  let ma = mk () and mb = mk () in
  let fa = Pio_fifo.create ~engine () and fb = Pio_fifo.create ~engine () in
  Pio_fifo.connect fa fb;
  let install m f =
    Pio_fifo.install_at f m.M.bus
      ~base:(Layout.dev_proxy_base m.M.layout)
      ~size:(Layout.page_size m.M.layout)
  in
  install ma fa;
  install mb fb;
  (engine, ma, mb, fa, fb)

let pio_latency p ~size ~trials =
  let engine, ma, mb, _fa, _fb = pio_pair () in
  watch p engine;
  let pa = Scheduler.spawn ma ~name:"pio-snd" in
  let pb = Scheduler.spawn mb ~name:"pio-rcv" in
  (match Syscall.map_device_proxy ma pa ~vdev_index:0 ~pdev_index:0 ~writable:true with
  | Ok () -> ()
  | Error e -> fail_syscall e);
  (match Syscall.map_device_proxy mb pb ~vdev_index:0 ~pdev_index:0 ~writable:true with
  | Ok () -> ()
  | Error e -> fail_syscall e);
  let ca = Kernel.user_cpu ma pa and cb = Kernel.user_cpu mb pb in
  let tx_a = Layout.dev_proxy_base ma.M.layout in
  let rx_b = Layout.dev_proxy_base mb.M.layout + 4 in
  let count_b = Layout.dev_proxy_base mb.M.layout + 8 in
  let words = (size + 3) / 4 in
  let total = ref 0 in
  for _ = 1 to trials do
    let t0 = Engine.now engine in
    (* sender: one length word then the payload, one store per word *)
    ca.Initiator.store ~vaddr:tx_a (Int32.of_int words);
    for w = 1 to words do
      ca.Initiator.store ~vaddr:tx_a (Int32.of_int w)
    done;
    (* receiver: poll the count, then drain *)
    let expected = words + 1 in
    let rec wait_drain got polls =
      if got >= expected then ()
      else if polls > 10_000_000 then failwith "pio: poll budget"
      else begin
        let avail = Int32.to_int (cb.Initiator.load ~vaddr:count_b) in
        let take = min avail (expected - got) in
        for _ = 1 to take do
          ignore (cb.Initiator.load ~vaddr:rx_b)
        done;
        wait_drain (got + take) (polls + 1)
      end
    in
    wait_drain 0 0;
    total := !total + (Engine.now engine - t0)
  done;
  float_of_int !total /. float_of_int trials

let crossover_core ~sizes ~trials p =
  (* UDMA side: one 2-node system reused across sizes *)
  let sys = System.create ~nodes:2 () in
  watch p (System.engine sys);
  let snd = System.node sys 0 and rcv = System.node sys 1 in
  let sender = Scheduler.spawn snd.System.machine ~name:"s" in
  let receiver = Scheduler.spawn rcv.System.machine ~name:"r" in
  let max_size = List.fold_left max 4096 sizes in
  let page_size = Layout.page_size snd.System.machine.M.layout in
  let pages = ((max_size + 4) + page_size - 1) / page_size + 1 in
  let ch =
    Messaging.connect sys ~sender:(0, sender) ~receiver:(1, receiver) ~pages ()
  in
  let buf =
    Kernel.alloc_buffer snd.System.machine sender ~bytes:(pages * page_size)
  in
  Kernel.write_user snd.System.machine sender ~vaddr:buf (pattern max_size);
  let cpu_snd = Kernel.user_cpu snd.System.machine sender in
  let cpu_rcv = Kernel.user_cpu rcv.System.machine receiver in
  (match Messaging.send ch cpu_snd ~src_vaddr:buf ~nbytes:max_size () with
  | Ok seq -> (
      match Messaging.recv_wait ch cpu_rcv ~seq () with
      | Ok _ -> ()
      | Error msg -> failwith msg)
  | Error e -> fail_send e);
  System.run_until_idle sys;
  List.map
    (fun size ->
      let size = max 4 (size land lnot 3) in
      {
        xsize = size;
        udma_cycles = udma_latency sys ch cpu_snd cpu_rcv ~buf ~size ~trials;
        pio_cycles = pio_latency p ~size ~trials;
      })
    sizes

let pio_crossover ?(sizes = Sizes.crossover) ?(trials = 8) () =
  crossover_core ~sizes ~trials (probe ())

let report_crossover ?(sizes = Sizes.crossover) ?(trials = 8) () =
  let p = probe () in
  let rows = crossover_core ~sizes ~trials p in
  Report.make ~id:"e4_crossover"
    ~title:"E4: one-way latency, UDMA vs memory-mapped FIFO (section 9)"
    ~meta:[ ("trials", vi trials) ]
    ~columns:
      [
        ("size", "size");
        ("udma_cycles", "UDMA cycles");
        ("pio_cycles", "PIO cycles");
        ("winner", "winner");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [
           ("size", vi r.xsize);
           ("udma_cycles", vf r.udma_cycles);
           ("pio_cycles", vf r.pio_cycles);
           ("winner", vs (if r.pio_cycles < r.udma_cycles then "PIO" else "UDMA"));
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E5: queueing ablation                                               *)
(* ------------------------------------------------------------------ *)

type queueing_row = {
  total_bytes : int;
  basic_cycles : int;
  queued_cycles : (int * int) list;
}

let one_big_transfer ~mode ~total p =
  let m, _udma, _, _ = buffer_rig ~mode () in
  watch p m.M.engine;
  let proc = Scheduler.spawn m ~name:"p" in
  let page_size = Layout.page_size m.M.layout in
  let pages = (total + page_size - 1) / page_size in
  grant_dev m proc ~pages;
  let buf = Kernel.alloc_buffer m proc ~bytes:total in
  Kernel.write_user m proc ~vaddr:buf (pattern (min total 65536));
  let cpu = Kernel.user_cpu m proc in
  let dst = Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0) in
  (* warm one page of mappings, then measure the full transfer cold on
     data but warm on code paths *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst ~nbytes:4096 ()
   with
  | Ok _ -> ()
  | Error e -> fail_transfer e);
  Engine.run_until_idle m.M.engine;
  let call =
    match mode with
    | Udma_engine.Basic -> Initiator.transfer
    | Udma_engine.Queued _ -> Initiator.transfer_queued
  in
  match
    call cpu ~layout:m.M.layout ~src:(Initiator.Memory buf) ~dst ~nbytes:total
      ()
  with
  | Ok s -> s.Initiator.cycles
  | Error e -> fail_transfer e

let queueing_core ~total_sizes ~depths p =
  List.map
    (fun total ->
      {
        total_bytes = total;
        basic_cycles = one_big_transfer ~mode:Udma_engine.Basic ~total p;
        queued_cycles =
          List.map
            (fun depth ->
              (depth, one_big_transfer ~mode:(Udma_engine.Queued { depth }) ~total p))
            depths;
      })
    total_sizes

let queueing ?(total_sizes = [ 8192; 16384; 32768; 65536 ])
    ?(depths = [ 2; 4; 8; 16 ]) () =
  queueing_core ~total_sizes ~depths (probe ())

let report_queueing ?(total_sizes = [ 8192; 16384; 32768; 65536 ])
    ?(depths = [ 2; 4; 8; 16 ]) () =
  let p = probe () in
  let rows = queueing_core ~total_sizes ~depths p in
  let depth_field d = Printf.sprintf "depth_%d" d in
  Report.make ~id:"e5_queueing"
    ~title:"E5: multi-page transfers, basic vs queued UDMA (section 7)"
    ~columns:
      ([ ("total_bytes", "total"); ("basic_cycles", "basic") ]
      @ List.map (fun d -> (depth_field d, Printf.sprintf "depth=%d" d)) depths)
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [ ("total_bytes", vi r.total_bytes); ("basic_cycles", vi r.basic_cycles) ]
         @ List.map (fun (d, c) -> (depth_field d, vi c)) r.queued_cycles)
       rows)

(* ------------------------------------------------------------------ *)
(* E6: I1 atomicity under preemption                                   *)
(* ------------------------------------------------------------------ *)

type atomicity_row = {
  preempt_pct : int;
  transfers : int;
  retries : int;
  avg_cycles : float;
  violations : int;
}

let atomicity_core ~probs_pct ~transfers ~seed p =
  List.map
    (fun pct ->
      let m, udma, _, _ = buffer_rig () in
      watch p m.M.engine;
      let p1 = Scheduler.spawn m ~name:"p1" in
      let p2 = Scheduler.spawn m ~name:"p2" in
      grant_dev m p1 ~pages:1;
      (match
         Syscall.map_device_proxy m p2 ~vdev_index:1 ~pdev_index:1 ~writable:true
       with
      | Ok () -> ()
      | Error e -> fail_syscall e);
      let b1 = Kernel.alloc_buffer m p1 ~bytes:4096 in
      Kernel.write_user m p1 ~vaddr:b1 (pattern 512);
      let b2 = Kernel.alloc_buffer m p2 ~bytes:4096 in
      Kernel.write_user m p2 ~vaddr:b2 (pattern 512);
      let cpu1 = Kernel.user_cpu m p1 in
      let cpu2 = Kernel.user_cpu m p2 in
      (* legal pairings: p1 sends b1 -> dev page 0, p2 sends b2 -> dev
         page 1; anything else is a cross-process pairing *)
      let dev0 = Kernel.vdev_addr m ~index:0 ~offset:0 in
      let dev1 = Kernel.vdev_addr m ~index:1 ~offset:0 in
      (* the start hook sees PHYSICAL proxy addresses; device-proxy
         pages are identity-mapped here, memory proxies are checked
         through the buffers' frames *)
      let phys_src vaddr proc =
        let page_size = Layout.page_size m.M.layout in
        match Vm.frame_of_vpn m proc ~vpn:(vaddr / page_size) with
        | Some frame ->
            Layout.proxy_of m.M.layout
              ((frame * page_size) + (vaddr mod page_size))
        | None -> -1
      in
      let violations = ref 0 in
      Udma_engine.set_start_hook udma (fun ~src_proxy ~dest_proxy ~nbytes:_ ->
          let legal =
            (src_proxy = phys_src b1 p1 && dest_proxy = dev0)
            || (src_proxy = phys_src b2 p2 && dest_proxy = dev1)
          in
          if not legal then incr violations);
      let rng = Rng.create (seed + pct) in
      Scheduler.set_preempt_hook m
        (Some (fun _ -> pct > 0 && Rng.int rng 100 < pct));
      let retries = ref 0 and cycles = ref 0 in
      for i = 1 to transfers do
        let cpu, buf, dev = if i land 1 = 0 then (cpu2, b2, dev1) else (cpu1, b1, dev0) in
        match
          Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
            ~dst:(Initiator.Device dev) ~nbytes:512 ()
        with
        | Ok s ->
            retries := !retries + s.Initiator.retries;
            cycles := !cycles + s.Initiator.cycles
        | Error e -> fail_transfer e
      done;
      Scheduler.set_preempt_hook m None;
      Engine.run_until_idle m.M.engine;
      {
        preempt_pct = pct;
        transfers;
        retries = !retries;
        avg_cycles = float_of_int !cycles /. float_of_int transfers;
        violations = !violations;
      })
    probs_pct

let atomicity ?(probs_pct = [ 0; 5; 10; 20; 30; 50 ]) ?(transfers = 200)
    ?(seed = 42) () =
  atomicity_core ~probs_pct ~transfers ~seed (probe ())

let report_atomicity ?(probs_pct = [ 0; 5; 10; 20; 30; 50 ])
    ?(transfers = 200) ?(seed = 42) () =
  let p = probe () in
  let rows = atomicity_core ~probs_pct ~transfers ~seed p in
  Report.make ~id:"e6_atomicity"
    ~title:"E6: two-reference atomicity under preemption (invariant I1)"
    ~meta:[ ("transfers", vi transfers); ("seed", vi seed) ]
    ~columns:
      [
        ("preempt_pct", "preempt%");
        ("transfers", "transfers");
        ("retries", "retries");
        ("avg_cycles", "avg cycles");
        ("violations", "violations");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [
           ("preempt_pct", vi r.preempt_pct);
           ("transfers", vi r.transfers);
           ("retries", vi r.retries);
           ("avg_cycles", vf r.avg_cycles);
           ("violations", vi r.violations);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E7: I4 vs pinning                                                   *)
(* ------------------------------------------------------------------ *)

type pinning_row = { label : string; value : float; unit_ : string }

let pinning_core p =
  let costs = Cost_model.default in
  let static =
    [
      {
        label = "pin + unpin one page (traditional, every transfer)";
        value = float_of_int (costs.Cost_model.pin_page + costs.Cost_model.unpin_page);
        unit_ = "cycles";
      };
      {
        label = "I4 register/refcount check (per replacement candidate)";
        value = float_of_int costs.Cost_model.remap_check;
        unit_ = "cycles";
      };
    ]
  in
  (* dynamic: paging pressure while transfers are in flight *)
  let m, _udma, _, _ = buffer_rig ~mem_pages:24 () in
  watch p m.M.engine;
  let p1 = Scheduler.spawn m ~name:"streamer" in
  let hog = Scheduler.spawn m ~name:"hog" in
  grant_dev m p1 ~pages:1;
  let buf = Kernel.alloc_buffer m p1 ~bytes:4096 in
  Kernel.write_user m p1 ~vaddr:buf (pattern 4096);
  let cpu = Kernel.user_cpu m p1 in
  let transfers = 60 in
  for _ = 1 to transfers do
    (* initiate without waiting so the engine is busy while the hog
       allocates and forces evictions *)
    cpu.Initiator.store
      ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0)
      (Int32.of_int 4096);
    let st =
      Status.decode (cpu.Initiator.load ~vaddr:(Layout.proxy_of m.M.layout buf))
    in
    if not (Status.ok st) then failwith "pinning_vs_i4: initiation failed";
    ignore (Kernel.alloc_buffer m hog ~bytes:4096);
    Scheduler.switch_to m p1;
    Engine.run_until_idle m.M.engine
  done;
  let s name = float_of_int (Metrics.get m.M.metrics name) in
  static
  @ [
      { label = "dynamic run: transfers completed"; value = float_of_int transfers; unit_ = "" };
      { label = "dynamic run: evictions"; value = s "vm.evictions"; unit_ = "" };
      { label = "dynamic run: I4 busy-frame skips"; value = s "vm.i4_skips"; unit_ = "" };
      { label = "dynamic run: deferred cleans"; value = s "vm.clean_deferred"; unit_ = "" };
    ]

let pinning_vs_i4 () = pinning_core (probe ())

let report_pinning () =
  let p = probe () in
  let rows = pinning_core p in
  Report.make ~id:"e7_pinning"
    ~title:"E7: page pinning vs the I4 check (section 6)"
    ~columns:[ ("label", "case"); ("value", "value"); ("unit", "unit") ]
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [ ("label", vs r.label); ("value", vf r.value); ("unit", vs r.unit_) ])
       rows)

(* ------------------------------------------------------------------ *)
(* E8: proxy fault costs                                               *)
(* ------------------------------------------------------------------ *)

let proxy_fault_core p =
  let m, udma, _, _ = buffer_rig ~mem_pages:16 () in
  watch p m.M.engine;
  let proc = Scheduler.spawn m ~name:"p" in
  grant_dev m proc ~pages:1;
  let costs = m.M.costs in
  let cpu = Kernel.user_cpu m proc in
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:buf (pattern 64);
  let proxy = Layout.proxy_of m.M.layout buf in
  let timed f =
    let t0 = Engine.now m.M.engine in
    f ();
    Engine.now m.M.engine - t0
  in
  (* cold: first touch takes the not-present proxy fault (§6 case 1) *)
  let cold = timed (fun () -> ignore (cpu.Initiator.load ~vaddr:proxy)) in
  let warm = timed (fun () -> ignore (cpu.Initiator.load ~vaddr:proxy)) in
  (* write upgrade: proxy STORE to a clean page (I3) *)
  let vpn = buf / Layout.page_size m.M.layout in
  ignore (Vm.clean_page m proc ~vpn);
  let upgrade =
    timed (fun () -> cpu.Initiator.store ~vaddr:proxy 64l)
  in
  Udma_engine.invalidate udma;
  (* paged out: evict buf, then touch its proxy (§6 case 2) *)
  let hog = Scheduler.spawn m ~name:"hog" in
  let rec force i =
    if Vm.frame_of_vpn m proc ~vpn <> None && i < 64 then begin
      ignore (Kernel.alloc_buffer m hog ~bytes:4096);
      force (i + 1)
    end
  in
  force 0;
  Scheduler.switch_to m proc;
  let paged_out = timed (fun () -> ignore (cpu.Initiator.load ~vaddr:proxy)) in
  (* illegal: proxy of an unmapped page segfaults (§6 case 3) *)
  let illegal_vaddr =
    Layout.proxy_of m.M.layout (100 * Layout.page_size m.M.layout)
  in
  let illegal_ok =
    match cpu.Initiator.load ~vaddr:illegal_vaddr with
    | _ -> false
    | exception Vm.Segfault _ -> true
  in
  [
    row costs "cold proxy access (fault + mapping)" cold;
    row costs "warm proxy access" warm;
    row costs "I3 write upgrade (clean page as destination)" upgrade;
    row costs "proxy access to paged-out page (incl. page-in)" paged_out;
    row costs
      (if illegal_ok then "illegal proxy access -> segfault (correct)"
       else "illegal proxy access -> NOT caught (BUG)")
      0;
  ]

let proxy_fault_costs () = proxy_fault_core (probe ())

let report_proxy_faults () =
  let p = probe () in
  let rows = proxy_fault_core p in
  Report.make ~id:"e8_proxy_faults"
    ~title:"E8: demand proxy-mapping costs (section 6)" ~columns:cost_columns
    ~breakdown:(breakdown p) (cost_rows rows)

(* ------------------------------------------------------------------ *)
(* E9: I3 policy ablation                                              *)
(* ------------------------------------------------------------------ *)

type i3_row = {
  policy : string;
  transfers_done : int;
  total_cycles : int;
  proxy_faults : int;
  upgrades : int;
  cleans : int;
}

let i3_run ~policy ~transfers ~pages p =
  let config =
    { M.default_config with
      M.udma_mode = Some Udma_engine.Basic;
      mem_pages = 128;
      i3_policy = policy }
  in
  let m = M.create ~config () in
  watch p m.M.engine;
  let udma = Option.get m.M.udma in
  let page_size = Layout.page_size m.M.layout in
  let port, store = Device.buffer "dev" ~size:(8 * page_size) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  ignore store;
  let proc = Scheduler.spawn m ~name:"sink" in
  grant_dev m proc ~pages:1;
  let bufs =
    Array.init pages (fun _ -> Kernel.alloc_buffer m proc ~bytes:page_size)
  in
  let cpu = Kernel.user_cpu m proc in
  let t0 = Engine.now m.M.engine in
  for i = 0 to transfers - 1 do
    let buf = bufs.(i mod pages) in
    (match
       Initiator.transfer cpu ~layout:m.M.layout
         ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
         ~dst:(Initiator.Memory buf) ~nbytes:1024 ()
     with
    | Ok _ -> ()
    | Error e -> fail_transfer e);
    Engine.run_until_idle m.M.engine;
    (* a pageout-daemon pass cleans every dirty page between rounds,
       forcing the Write_upgrade policy to re-fault on the next
       incoming transfer *)
    if i mod pages = pages - 1 then
      Array.iter
        (fun b -> ignore (Vm.clean_page m proc ~vpn:(b / page_size)))
        bufs
  done;
  {
    policy =
      (match policy with
      | M.Write_upgrade -> "write-upgrade (primary)"
      | M.Proxy_dirty_union -> "proxy-dirty union (alternative)");
    transfers_done = transfers;
    total_cycles = Engine.now m.M.engine - t0;
    proxy_faults = Metrics.get m.M.metrics "vm.proxy_faults";
    upgrades = Metrics.get m.M.metrics "vm.dirty_upgrades";
    cleans = Metrics.get m.M.metrics "vm.cleans";
  }

let i3_core ~transfers ~pages p =
  [
    i3_run ~policy:M.Write_upgrade ~transfers ~pages p;
    i3_run ~policy:M.Proxy_dirty_union ~transfers ~pages p;
  ]

let i3_policies ?(transfers = 64) ?(pages = 4) () =
  i3_core ~transfers ~pages (probe ())

let report_i3 ?(transfers = 64) ?(pages = 4) () =
  let p = probe () in
  let rows = i3_core ~transfers ~pages p in
  Report.make ~id:"e9_i3_policies"
    ~title:"E9: the two I3 content-consistency methods (section 6)"
    ~meta:[ ("transfers", vi transfers); ("pages", vi pages) ]
    ~columns:
      [
        ("policy", "policy");
        ("transfers", "transfers");
        ("cycles", "cycles");
        ("proxy_faults", "faults");
        ("upgrades", "upgrades");
        ("cleans", "cleans");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [
           ("policy", vs r.policy);
           ("transfers", vi r.transfers_done);
           ("cycles", vi r.total_cycles);
           ("proxy_faults", vi r.proxy_faults);
           ("upgrades", vi r.upgrades);
           ("cleans", vi r.cleans);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E10: deliberate vs automatic update                                 *)
(* ------------------------------------------------------------------ *)

type update_row = {
  workload : string;
  deliberate_cycles : int;
  automatic_cycles : int;
  deliberate_packets : int;
  automatic_packets : int;
}

let update_rig p =
  let sys = System.create ~nodes:2 () in
  watch p (System.engine sys);
  let snd = System.node sys 0 in
  let sp = Scheduler.spawn snd.Udma_shrimp.System.machine ~name:"s" in
  let rp =
    Scheduler.spawn (System.node sys 1).Udma_shrimp.System.machine ~name:"r"
  in
  (sys, snd, sp, rp)

(* deliberate: one UDMA transfer per update *)
let deliberate_updates ~offsets ~len p =
  let sys, snd, sp, rp = update_rig p in
  let m = snd.Udma_shrimp.System.machine in
  let export = System.export_buffer sys ~node:1 ~proc:rp ~pages:1 in
  System.import_export sys ~node:0 ~proc:sp ~first_index:0 export;
  let buf = Kernel.alloc_buffer m sp ~bytes:4096 in
  Kernel.write_user m sp ~vaddr:buf (pattern 4096);
  let cpu = Kernel.user_cpu m sp in
  (* warm *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes:len ()
   with
  | Ok _ -> ()
  | Error e -> fail_transfer e);
  System.run_until_idle sys;
  let sent0 = Udma_shrimp.Network_interface.packets_sent snd.Udma_shrimp.System.ni in
  let t0 = Engine.now (System.engine sys) in
  List.iter
    (fun off ->
      match
        Initiator.transfer cpu ~layout:m.M.layout
          ~src:(Initiator.Memory (buf + off))
          ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:off))
          ~nbytes:len ()
      with
      | Ok _ -> ()
      | Error e -> fail_transfer e)
    offsets;
  let cycles = Engine.now (System.engine sys) - t0 in
  System.run_until_idle sys;
  (cycles,
   Udma_shrimp.Network_interface.packets_sent snd.Udma_shrimp.System.ni - sent0)

(* automatic: plain stores to a bound page *)
let automatic_updates ~offsets ~len p =
  let sys, snd, sp, rp = update_rig p in
  let m = snd.Udma_shrimp.System.machine in
  let export = System.export_buffer sys ~node:1 ~proc:rp ~pages:1 in
  let buf = Kernel.alloc_buffer m sp ~bytes:4096 in
  Kernel.write_user m sp ~vaddr:buf (pattern 4096);
  System.auto_bind sys ~node:0 ~proc:sp ~vaddr:buf export;
  let cpu = Kernel.user_cpu m sp in
  (* warm the TLB *)
  ignore (cpu.Initiator.load ~vaddr:buf);
  let sent0 = Udma_shrimp.Network_interface.packets_sent snd.Udma_shrimp.System.ni in
  let t0 = Engine.now (System.engine sys) in
  List.iter
    (fun off ->
      for w = 0 to (len / 4) - 1 do
        cpu.Initiator.store ~vaddr:(buf + off + (w * 4)) (Int32.of_int w)
      done)
    offsets;
  let cycles = Engine.now (System.engine sys) - t0 in
  System.run_until_idle sys;
  (cycles,
   Udma_shrimp.Network_interface.packets_sent snd.Udma_shrimp.System.ni - sent0)

let update_core p =
  let scattered =
    (* 32 single-word updates scattered across the page *)
    List.init 32 (fun i -> (i * 41 * 4) mod 4000 land lnot 3)
  in
  let d_c, d_p = deliberate_updates ~offsets:scattered ~len:4 p in
  let a_c, a_p = automatic_updates ~offsets:scattered ~len:4 p in
  let bulk = [ 0 ] in
  let bd_c, bd_p = deliberate_updates ~offsets:bulk ~len:4096 p in
  let ba_c, ba_p = automatic_updates ~offsets:bulk ~len:4096 p in
  [
    {
      workload = "32 scattered single-word updates";
      deliberate_cycles = d_c;
      automatic_cycles = a_c;
      deliberate_packets = d_p;
      automatic_packets = a_p;
    };
    {
      workload = "one 4 KB sequential region";
      deliberate_cycles = bd_c;
      automatic_cycles = ba_c;
      deliberate_packets = bd_p;
      automatic_packets = ba_p;
    };
  ]

let update_strategies () = update_core (probe ())

let report_updates () =
  let p = probe () in
  let rows = update_core p in
  Report.make ~id:"e10_updates"
    ~title:"E10: deliberate vs automatic update (section 9)"
    ~columns:
      [
        ("workload", "workload");
        ("deliberate_cycles", "delib cyc");
        ("automatic_cycles", "auto cyc");
        ("deliberate_packets", "delib pk");
        ("automatic_packets", "auto pk");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [
           ("workload", vs r.workload);
           ("deliberate_cycles", vi r.deliberate_cycles);
           ("automatic_cycles", vi r.automatic_cycles);
           ("deliberate_packets", vi r.deliberate_packets);
           ("automatic_packets", vi r.automatic_packets);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E11: traffic saturation sweep                                       *)
(* ------------------------------------------------------------------ *)

module Pattern = Udma_traffic.Pattern
module Load_gen = Udma_traffic.Load_gen
module Sweep = Udma_traffic.Sweep

let report_saturation ?loads ?(nodes = 16) ?(pattern = Pattern.Uniform)
    ?(msg_bytes = 256) ?(warmup_cycles = 2_000) ?(window_cycles = 50_000)
    ?(link_contention = true) ?(routing = `Dimension_order)
    ?(link_per_word = Udma_traffic.Load_gen.default_config.Udma_traffic.Load_gen.link_per_word)
    ?(vc_count = Udma_traffic.Load_gen.default_config.Udma_traffic.Load_gen.vc_count)
    ?(rx_credits = Udma_traffic.Load_gen.default_config.Udma_traffic.Load_gen.rx_credits)
    ?(crossing = Udma_traffic.Load_gen.default_config.Udma_traffic.Load_gen.crossing)
    ?(flit_words = Udma_traffic.Load_gen.default_config.Udma_traffic.Load_gen.flit_words)
    ?(seed = 42) ?(domains = 1) () =
  let p = probe () in
  let sharded = Sweep.use_sharded ~crossing ~nodes ~domains () in
  let outcome =
    Sweep.run ?loads ~probe:(watch p) ~nodes ~pattern ~msg_bytes
      ~warmup_cycles ~window_cycles ~link_contention ~routing ~link_per_word
      ~vc_count ~rx_credits ~crossing ~flit_words ~seed ~domains ()
  in
  let width =
    match outcome.Sweep.points with
    | { result; _ } :: _ -> result.Load_gen.width
    | [] -> 0
  in
  Report.make ~id:"e11_saturation"
    ~title:
      (Printf.sprintf
         "E11: latency vs offered load, %d-node mesh, %s traffic%s" nodes
         (Pattern.to_string pattern)
         (if link_contention then "" else " (contention off)"))
    ~meta:
      ([
        ("nodes", vi nodes);
        ("width", vi width);
        ("pattern", vs (Pattern.to_string pattern));
        ("msg_bytes", vi msg_bytes);
        ("send_cycles", vi outcome.Sweep.send_cycles);
        ("warmup_cycles", vi warmup_cycles);
        ("window_cycles", vi window_cycles);
        ("link_contention", vb link_contention);
        ("seed", vi seed);
        ( "knee_load",
          match outcome.Sweep.knee_load with
          | Some l -> vf l
          | None -> vs "none" );
        ( "knee_index",
          match outcome.Sweep.knee_index with
          | Some i -> vi i
          | None -> vs "none" );
      ]
      (* extend meta only on the sharded path so the legacy report — and
         every committed anchor derived from it — stays byte-identical *)
      @ (if sharded then
           [ ("engine", vs "sharded"); ("domains", vi domains) ]
         else [])
      (* same discipline for the flit crossing: analytic reports are
         byte-identical to the pre-flit runner *)
      @ (if crossing = `Flit then
           [ ("crossing", vs "flit"); ("flit_words", vi flit_words) ]
         else [])
    )
    ~columns:
      [
        ("load", "load");
        ("offered_kcyc", "off/kcyc");
        ("delivered_kcyc", "del/kcyc");
        ("mean_latency", "mean cyc");
        ("p95_latency", "p95");
        ("p99_latency", "p99");
        ("link_wait", "link wait");
        ("knee", "knee");
      ]
    ~breakdown:(breakdown p)
    (List.mapi
       (fun i { Sweep.load; result = r } ->
         [
           ("load", vf load);
           ("offered_kcyc", vf r.Load_gen.offered_per_kcycle);
           ("delivered_kcyc", vf r.Load_gen.delivered_per_kcycle);
           ("injected", vi r.Load_gen.injected);
           ("delivered", vi r.Load_gen.delivered);
           ("mean_latency", vf r.Load_gen.mean_latency);
           ("p50_latency", vi r.Load_gen.p50_latency);
           ("p95_latency", vi r.Load_gen.p95_latency);
           ("p99_latency", vi r.Load_gen.p99_latency);
           ("max_latency", vi r.Load_gen.max_latency);
           ("link_wait", vi r.Load_gen.link_wait_cycles);
           ("link_max_depth", vi r.Load_gen.link_max_depth);
           ("knee", vb (outcome.Sweep.knee_index = Some i));
         ])
       outcome.Sweep.points)

(* E12: the same sweep per pattern under both routing policies. The
   interesting output is the knee shift: minimal-adaptive spreads
   transpose/hotspot flows over both productive directions, so their
   knees move to a strictly higher load while uniform barely moves.

   The defaults deliberately pick a link-bound regime: 2 KB messages
   keep the per-message link occupancy large, and [link_per_word = 2]
   halves the mesh bandwidth relative to the fixed send-initiation
   cost. At the stock [link_per_word = 1] the 4x4 sources saturate
   before any link does (occupancy/initiation ~ 0.26 per flow, and
   transpose concentrates only ~3 flows on its worst link), so both
   policies would knee together at source saturation and the routing
   policy could not matter. *)
let report_adaptive ?loads ?(nodes = 16)
    ?(patterns = [ Pattern.Uniform; Pattern.Transpose; Pattern.default_hotspot ])
    ?(msg_bytes = 2048) ?(warmup_cycles = 2_000) ?(window_cycles = 100_000)
    ?(link_per_word = 2) ?(seed = 42) () =
  let p = probe () in
  let sweep pattern routing =
    Sweep.run ?loads ~probe:(watch p) ~nodes ~pattern ~msg_bytes
      ~warmup_cycles ~window_cycles ~link_contention:true ~routing
      ~link_per_word ~seed ()
  in
  let send_cycles = ref 0 in
  let rows =
    List.map
      (fun pattern ->
        let dim = sweep pattern `Dimension_order in
        let ada = sweep pattern `Minimal_adaptive in
        send_cycles := dim.Sweep.send_cycles;
        let v_knee = function Some l -> vf l | None -> vs "none" in
        let wait_at_heaviest o =
          match List.rev o.Sweep.points with
          | { Sweep.result; _ } :: _ -> result.Load_gen.link_wait_cycles
          | [] -> 0
        in
        [
          ("pattern", vs (Pattern.to_string pattern));
          ("knee_dim", v_knee dim.Sweep.knee_load);
          ("knee_adaptive", v_knee ada.Sweep.knee_load);
          ( "knee_shift",
            match (dim.Sweep.knee_load, ada.Sweep.knee_load) with
            | Some d, Some a -> vf (a -. d)
            | _ -> vs "n/a" );
          ("wait_dim", vi (wait_at_heaviest dim));
          ("wait_adaptive", vi (wait_at_heaviest ada));
        ])
      patterns
  in
  let width = Udma_shrimp.Router.mesh_width nodes in
  Report.make ~id:"e12_adaptive"
    ~title:
      (Printf.sprintf
         "E12: dimension-order vs minimal-adaptive routing, %d-node mesh \
          (saturation knee per pattern)"
         nodes)
    ~meta:
      [
        ("nodes", vi nodes);
        ("width", vi width);
        ("msg_bytes", vi msg_bytes);
        ("link_per_word", vi link_per_word);
        ("send_cycles", vi !send_cycles);
        ("warmup_cycles", vi warmup_cycles);
        ("window_cycles", vi window_cycles);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("pattern", "pattern");
        ("knee_dim", "knee dim");
        ("knee_adaptive", "knee adapt");
        ("knee_shift", "shift");
        ("wait_dim", "wait dim");
        ("wait_adaptive", "wait adapt");
      ]
    ~breakdown:(breakdown p) rows

(* E13: hotspot saturation vs virtual channels. The regime is the same
   link-bound one as E12 (2 KB messages, link_per_word = 2) so the
   bottleneck is the contended links into the hot node, where a single
   FIFO head-of-line blocks every flow sharing a link with the hotspot
   stream. Extra VCs let cold flows backfill the wire around a blocked
   hot packet, so the knee holds (or improves) as the hotspot share
   grows; finite deposit credits turn the residual overload into
   source-side [credit_stalls] instead of unbounded link queues. *)
let report_hotspot ?loads ?(nodes = 16) ?(pcts = [ 10; 25; 50 ])
    ?(vc_counts = [ 1; 2; 4 ]) ?(msg_bytes = 2048) ?(warmup_cycles = 2_000)
    ?(window_cycles = 100_000) ?(link_per_word = 2) ?(rx_credits = Some 8)
    ?(seed = 42) () =
  let p = probe () in
  let send_cycles = ref 0 in
  let rows =
    List.concat_map
      (fun pct ->
        List.map
          (fun vcs ->
            let o =
              Sweep.run ?loads ~probe:(watch p) ~nodes
                ~pattern:(Pattern.Hotspot { node = 0; pct })
                ~msg_bytes ~warmup_cycles ~window_cycles
                ~link_contention:true ~routing:`Dimension_order
                ~link_per_word ~vc_count:vcs ~rx_credits ~seed ()
            in
            send_cycles := o.Sweep.send_cycles;
            let heaviest =
              match List.rev o.Sweep.points with
              | { Sweep.result; _ } :: _ -> result
              | [] -> assert false (* Sweep.run rejects empty loads *)
            in
            [
              ("hot_pct", vi pct);
              ("vcs", vi vcs);
              ( "knee",
                match o.Sweep.knee_load with
                | Some l -> vf l
                | None -> vs "none" );
              ("credit_stalls", vi heaviest.Load_gen.credit_stalls);
              ( "credit_stall_cycles",
                vi heaviest.Load_gen.credit_stall_cycles );
              ("link_max_depth", vi heaviest.Load_gen.link_max_depth);
              ("link_wait", vi heaviest.Load_gen.link_wait_cycles);
            ])
          vc_counts)
      pcts
  in
  let width = Udma_shrimp.Router.mesh_width nodes in
  Report.make ~id:"e13_hotspot"
    ~title:
      (Printf.sprintf
         "E13: hotspot saturation vs virtual channels, %d-node mesh \
          (knee per hotspot share; stall columns at the heaviest load)"
         nodes)
    ~meta:
      [
        ("nodes", vi nodes);
        ("width", vi width);
        ("msg_bytes", vi msg_bytes);
        ("link_per_word", vi link_per_word);
        ( "rx_credits",
          match rx_credits with
          | Some n -> vi n
          | None -> vs "unlimited" );
        ("send_cycles", vi !send_cycles);
        ("warmup_cycles", vi warmup_cycles);
        ("window_cycles", vi window_cycles);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("hot_pct", "hot %");
        ("vcs", "VCs");
        ("knee", "knee");
        ("credit_stalls", "stalls");
        ("credit_stall_cycles", "stall cyc");
        ("link_max_depth", "max depth");
        ("link_wait", "link wait");
      ]
    ~breakdown:(breakdown p) rows

(* E18: head-of-line blocking the analytic wire cannot see. The
   analytic crossing reserves a whole packet's occupancy interval per
   link and lets later packets backfill gaps, so a blocked hotspot
   packet never holds buffers on upstream links. The flit crossing
   does: in the E13 regime (hot 50 %, 2 KB messages, link-bound wires,
   finite deposit credits) a stalled worm's flits sit in the
   per-(link, VC) input FIFOs across several links and cold flows
   sharing those links wait behind them even when their own wire is
   free. One row per VC count compares the two crossings at the same
   offered load: [hol_delta] (flit p99 minus analytic p99) is the
   latency the packet-granularity model under-reports, [hol_cycles]
   counts link flit-cycles an idle wire spent blocked on VC/credit
   availability, and [occupancy] shows where the worms sat per VC.
   Extra VCs let cold flits interleave around the blocked worm, so
   both the delta and the stall count shrink from 1 VC to 4. *)
let report_flit ?(load = 0.5) ?(nodes = 16) ?(hot_pct = 50)
    ?(vc_counts = [ 1; 2; 4 ]) ?(msg_bytes = 2048) ?(warmup_cycles = 2_000)
    ?(window_cycles = 60_000) ?(link_per_word = 2) ?(rx_credits = Some 8)
    ?(flit_words = 1) ?(seed = 42) () =
  let p = probe () in
  let send_cycles = ref 0 in
  let point crossing vcs =
    let o =
      Sweep.run ~loads:[ load ] ~probe:(watch p) ~nodes
        ~pattern:(Pattern.Hotspot { node = 0; pct = hot_pct })
        ~msg_bytes ~warmup_cycles ~window_cycles ~link_contention:true
        ~routing:`Dimension_order ~link_per_word ~vc_count:vcs ~rx_credits
        ~crossing ~flit_words ~seed ()
    in
    send_cycles := o.Sweep.send_cycles;
    match o.Sweep.points with
    | [ { Sweep.result; _ } ] -> result
    | _ -> assert false (* one load in, one point out *)
  in
  let rows =
    List.map
      (fun vcs ->
        let a = point `Analytic vcs in
        let f = point `Flit vcs in
        let occ =
          String.concat " "
            (List.mapi
               (fun vc (mean, mx) -> Printf.sprintf "vc%d:%.2f/%d" vc mean mx)
               (Array.to_list f.Load_gen.flit_occupancy))
        in
        [
          ("vcs", vi vcs);
          ("analytic_p50", vi a.Load_gen.p50_latency);
          ("analytic_p99", vi a.Load_gen.p99_latency);
          ("flit_p50", vi f.Load_gen.p50_latency);
          ("flit_p99", vi f.Load_gen.p99_latency);
          ( "hol_delta",
            vi (f.Load_gen.p99_latency - a.Load_gen.p99_latency) );
          ("hol_cycles", vi f.Load_gen.flit_hol_cycles);
          ("analytic_delivered", vi a.Load_gen.delivered);
          ("flit_delivered", vi f.Load_gen.delivered);
          ("occupancy", vs occ);
        ])
      vc_counts
  in
  let width = Udma_shrimp.Router.mesh_width nodes in
  Report.make ~id:"e18_flit"
    ~title:
      (Printf.sprintf
         "E18: flit-level wormhole crossing vs the analytic wire, %d-node \
          mesh, %d%% hotspot at load %.2f (head-of-line blocking per VC \
          count)"
         nodes hot_pct load)
    ~meta:
      [
        ("nodes", vi nodes);
        ("width", vi width);
        ("hot_pct", vi hot_pct);
        ("load", vf load);
        ("msg_bytes", vi msg_bytes);
        ("link_per_word", vi link_per_word);
        ("flit_words", vi flit_words);
        ( "rx_credits",
          match rx_credits with
          | Some n -> vi n
          | None -> vs "unlimited" );
        ("send_cycles", vi !send_cycles);
        ("warmup_cycles", vi warmup_cycles);
        ("window_cycles", vi window_cycles);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("vcs", "VCs");
        ("analytic_p99", "ana p99");
        ("flit_p99", "flit p99");
        ("hol_delta", "HOL delta");
        ("hol_cycles", "HOL cyc");
        ("flit_delivered", "flit del");
        ("occupancy", "occ (mean/max)");
      ]
    ~breakdown:(breakdown p) rows

(* E14: multi-tenant protection backends. Tenant counts sweep from
   comfortable (8 tenants over 64 table slots) to heavy overcommit
   (1024 tenants churning the same 64 slots), and every backend faces
   the identical traffic: the per-op RNG decisions depend only on the
   seed and the injection rates, never on the backend, so the rows
   differ purely in protection-path cycle costs and fault taxonomy.
   Proxy pays only at grant time (syscall + proxy fault on recovery);
   the IOMMU pays the IOTLB walk on cold initiations and map/unmap on
   churn; capabilities pay a per-transfer check plus grant/revoke. *)
let report_tenants ?(tenant_counts = [ 8; 64; 256; 1024 ])
    ?(kinds = Backend.all_kinds) ?(slots = 64) ?(ops = 20_000)
    ?(churn_pct = 8) ?(evict_pct = 4) ?(rogue_pct = 4) ?(seed = 42) () =
  let rows =
    List.concat_map
      (fun kind ->
        List.map
          (fun tenants ->
            let r =
              Tenants.run
                { Tenants.default_config with
                  Tenants.kind; tenants; slots; ops; churn_pct; evict_pct;
                  rogue_pct; seed }
            in
            let pct a b = if b = 0 then 0. else 100. *. float_of_int a /. float_of_int b in
            [
              ("backend", vs (Backend.kind_name kind));
              ("tenants", vi tenants);
              ("sends", vi r.Tenants.sends);
              ("p50", vi r.Tenants.p50);
              ("p99", vi r.Tenants.p99);
              ("p999", vi r.Tenants.p999);
              ("mean", vf r.Tenants.mean);
              ("fault_pct", vf (pct r.Tenants.faults r.Tenants.sends));
              ("rogue_probes", vi r.Tenants.rogue_probes);
              ("rogue_denied", vi r.Tenants.rogue_denied);
              ("grants", vi r.Tenants.grants);
              ("invalidations", vi r.Tenants.invalidations);
              ( "iotlb_hit_pct",
                vf (pct r.Tenants.iotlb_hits
                      (r.Tenants.iotlb_hits + r.Tenants.iotlb_misses)) );
              ("breaches", vi r.Tenants.isolation_breaches);
            ])
          tenant_counts)
      kinds
  in
  Report.make ~id:"e14_tenants"
    ~title:
      (Printf.sprintf
         "E14: multi-tenant protection backends — initiation cost, fault \
          rate and invalidation traffic over %d table slots"
         slots)
    ~meta:
      [
        ("slots", vi slots);
        ("ops", vi ops);
        ("churn_pct", vi churn_pct);
        ("evict_pct", vi evict_pct);
        ("rogue_pct", vi rogue_pct);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("backend", "backend");
        ("tenants", "tenants");
        ("p50", "p50");
        ("p99", "p99");
        ("p999", "p999");
        ("fault_pct", "fault %");
        ("rogue_denied", "denied");
        ("grants", "grants");
        ("invalidations", "invals");
        ("iotlb_hit_pct", "IOTLB hit %");
        ("breaches", "breaches");
      ]
    rows

(* ------------------------------------------------------------------ *)
(* E15: bandwidth vs transfer shape                                    *)
(* ------------------------------------------------------------------ *)

type shape_case = Shape_contig | Shape_strided of int | Shape_sg of int

let shape_label = function
  | Shape_contig -> "contig"
  | Shape_strided f -> Printf.sprintf "stride%d" f
  | Shape_sg n -> Printf.sprintf "sg%d" n

type shape_row = {
  sh_label : string;
  sh_basic : int;
  sh_queued : int;
  sh_basic_bpc : float;
  sh_queued_bpc : float;
  sh_basic_pct : float;
  sh_queued_pct : float;
}

(* One shape at one hardware mode: move [total] bytes to the device
   and return the end-to-end user cycles. Strided shapes re-read the
   first source page (the cost model does not depend on the data);
   scatter-gather shapes split the destination of each page-sized
   initiation into elements scattered in reverse order within its
   device page, so every element stays inside one page — the shape the
   per-element clamp admits whole. *)
let run_shape ~mode ~total shape p =
  let m, _udma, _, _ = buffer_rig ~mode () in
  watch p m.M.engine;
  let proc = Scheduler.spawn m ~name:"p" in
  let page_size = Layout.page_size m.M.layout in
  grant_dev m proc ~pages:((total + page_size - 1) / page_size);
  let buf = Kernel.alloc_buffer m proc ~bytes:total in
  Kernel.write_user m proc ~vaddr:buf (pattern total);
  let cpu = Kernel.user_cpu m proc in
  let layout = m.M.layout in
  let dev off =
    Initiator.Device
      (Kernel.vdev_addr m ~index:(off / page_size) ~offset:(off mod page_size))
  in
  (* warm every mapping the measured run touches *)
  (match
     Initiator.transfer cpu ~layout ~src:(Initiator.Memory buf) ~dst:(dev 0)
       ~nbytes:total ()
   with
  | Ok _ -> ()
  | Error e -> fail_transfer e);
  Engine.run_until_idle m.M.engine;
  let queued =
    match mode with Udma_engine.Basic -> false | Udma_engine.Queued _ -> true
  in
  let start = cpu.Initiator.now () in
  (match shape with
  | Shape_contig -> (
      let call =
        if queued then Initiator.transfer_queued else Initiator.transfer
      in
      match
        call cpu ~layout ~src:(Initiator.Memory buf) ~dst:(dev 0)
          ~nbytes:total ()
      with
      | Ok _ -> ()
      | Error e -> fail_transfer e)
  | Shape_strided _ | Shape_sg _ ->
      let inits =
        match shape with
        | Shape_contig -> assert false
        | Shape_strided f ->
            (* chunk 64 every 64f bytes: each initiation's source span
               is exactly one page, the destination packs densely *)
            let chunk = 64 in
            let bytes_per_init = page_size / f in
            List.init (total / bytes_per_init) (fun k ->
                ( Initiator.Memory buf,
                  dev (k * bytes_per_init),
                  Initiator.Strided_shape { stride = chunk * f; chunk },
                  bytes_per_init ))
        | Shape_sg n ->
            let inits_n = total / page_size in
            let per_init = max 1 (n / inits_n) in
            let len = page_size / per_init in
            List.init inits_n (fun k ->
                let base = k * page_size in
                let extra =
                  List.init (per_init - 1) (fun j ->
                      (dev (base + ((per_init - 2 - j) * len)), len))
                in
                ( Initiator.Memory (buf + base),
                  dev (base + ((per_init - 1) * len)),
                  Initiator.Gather_shape extra,
                  page_size ))
      in
      let await probe =
        match Initiator.await cpu ~probe () with
        | Ok _ -> ()
        | Error e -> fail_transfer e
      in
      let last =
        List.fold_left
          (fun _ (src, dst, shape, nbytes) ->
            match
              Initiator.start_shaped cpu ~layout ~queued ~src ~dst ~shape
                ~nbytes ()
            with
            | Error e -> fail_transfer e
            | Ok (_, probe) ->
                if not queued then await probe;
                Some probe)
          None inits
      in
      Option.iter await last);
  let cycles = cpu.Initiator.now () - start in
  Engine.run_until_idle m.M.engine;
  cycles

let default_shape_cases =
  [
    Shape_contig;
    Shape_strided 2; Shape_strided 4; Shape_strided 8;
    Shape_strided 16; Shape_strided 32; Shape_strided 64;
    Shape_sg 2; Shape_sg 4; Shape_sg 16; Shape_sg 64; Shape_sg 256;
  ]

let quick_shape_cases =
  [ Shape_contig; Shape_strided 4; Shape_strided 64; Shape_sg 4; Shape_sg 256 ]

let shapes_core ~total ~cases p =
  let queued_mode = Udma_engine.Queued { depth = 8 } in
  let basic_contig = run_shape ~mode:Udma_engine.Basic ~total Shape_contig p in
  let queued_contig = run_shape ~mode:queued_mode ~total Shape_contig p in
  List.map
    (fun shape ->
      let b, q =
        match shape with
        | Shape_contig -> (basic_contig, queued_contig)
        | _ ->
            ( run_shape ~mode:Udma_engine.Basic ~total shape p,
              run_shape ~mode:queued_mode ~total shape p )
      in
      {
        sh_label = shape_label shape;
        sh_basic = b;
        sh_queued = q;
        sh_basic_bpc = float_of_int total /. float_of_int b;
        sh_queued_bpc = float_of_int total /. float_of_int q;
        sh_basic_pct = 100.0 *. float_of_int basic_contig /. float_of_int b;
        sh_queued_pct = 100.0 *. float_of_int queued_contig /. float_of_int q;
      })
    cases

let transfer_shapes ?(total = 8192) ?(cases = default_shape_cases) () =
  shapes_core ~total ~cases (probe ())

let report_shapes ?(total = 8192) ?(cases = default_shape_cases) () =
  let p = probe () in
  let rows = shapes_core ~total ~cases p in
  Report.make ~id:"e15_shapes"
    ~title:
      (Printf.sprintf
         "E15: bandwidth vs transfer shape at %d total bytes (descriptor \
          overhead)"
         total)
    ~meta:[ ("total_bytes", vi total) ]
    ~columns:
      [
        ("shape", "shape");
        ("basic_cycles", "basic");
        ("queued_cycles", "queued");
        ("basic_bpc", "B/cyc basic");
        ("queued_bpc", "B/cyc queued");
        ("basic_pct", "% of contig (basic)");
        ("queued_pct", "% of contig (queued)");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun r ->
         [
           ("shape", vs r.sh_label);
           ("basic_cycles", vi r.sh_basic);
           ("queued_cycles", vi r.sh_queued);
           ("basic_bpc", vf r.sh_basic_bpc);
           ("queued_bpc", vf r.sh_queued_bpc);
           ("basic_pct", vf r.sh_basic_pct);
           ("queued_pct", vf r.sh_queued_pct);
         ])
       rows)

(* ------------------------------------------------------------------ *)
(* E16: application workloads over the UDMA fabric (lib/app)           *)
(* ------------------------------------------------------------------ *)

module App_fabric = Udma_app.Fabric
module App_slo = Udma_app.Slo
module Kv = Udma_app.Kv
module Halo = Udma_app.Halo
module Rpc = Udma_app.Rpc

let app_default_loads = [ 0.2; 0.4; 0.6; 0.8; 1.0; 1.2 ]

(* the halo load axis is a work *share* (send cycles / iteration), so
   it cannot exceed 1 *)
let halo_default_loads = [ 0.2; 0.4; 0.6; 0.8; 1.0 ]

let app_fabric ~nodes ~vcs ~link_per_word ~seed =
  {
    App_fabric.default_config with
    App_fabric.nodes;
    vc_count = vcs;
    link_per_word;
    seed;
  }

(* the SLO knee as a report value: the load of the first sustained
   violation, or "none" when the whole sweep holds the SLO *)
let app_knee ?slo ~loads points =
  match App_slo.detect_knee ?slo points with
  | Some i -> vf (List.nth loads i)
  | None -> vs "none"

let app_stat_cells (s : App_slo.stats) =
  [
    ("n", vi s.App_slo.count);
    ("p50", vi s.App_slo.p50);
    ("p95", vi s.App_slo.p95);
    ("p99", vi s.App_slo.p99);
    ("p999", vi s.App_slo.p999);
  ]

let report_kv ?(loads = app_default_loads) ?(nodes = 16) ?shards
    ?(clients_per_node = 4) ?(value_bytes = 2048) ?(write_pct = 10)
    ?(hot_pct = 0) ?(vcs = 1) ?(link_per_word = 1) ?slo
    ?(window_cycles = 60_000) ?(chaos = false) ?(seed = 42) () =
  let shards = Option.value shards ~default:nodes in
  let p = probe () in
  let send_cycles = ref 0 in
  let results =
    List.map
      (fun load ->
        let r =
          Kv.run ~probe:(watch p)
            {
              Kv.default_config with
              Kv.fabric = app_fabric ~nodes ~vcs ~link_per_word ~seed;
              shards;
              clients_per_node;
              value_bytes;
              write_pct;
              hot_pct;
              window_cycles;
              load;
              chaos_links = chaos;
            }
        in
        send_cycles := r.Kv.send_cycles;
        (load, r))
      loads
  in
  let knee =
    app_knee ?slo ~loads (List.map (fun (l, r) -> (l, r.Kv.stats)) results)
  in
  Report.make ~id:"e16_kv"
    ~title:
      (Printf.sprintf
         "E16: sharded KV store, %d shards on a %d-node mesh — tail latency \
          vs offered load (zero-copy reads via deliberate update)"
         shards nodes)
    ~meta:
      [
        ("nodes", vi nodes);
        ("shards", vi shards);
        ("clients_per_node", vi clients_per_node);
        ("value_bytes", vi value_bytes);
        ("write_pct", vi write_pct);
        ("hot_pct", vi hot_pct);
        ("vcs", vi vcs);
        ("link_per_word", vi link_per_word);
        ("send_cycles", vi !send_cycles);
        ("window_cycles", vi window_cycles);
        ("slo", vf (Option.value slo ~default:App_slo.default_slo));
        ("slo_knee", knee);
        ("chaos", vb chaos);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("load", "load");
        ("n", "reqs");
        ("p50", "p50");
        ("p95", "p95");
        ("p99", "p99");
        ("p999", "p999");
        ("cold_p99", "cold p99");
        ("tput", "req/node/kcyc");
        ("credit_stalls", "stalls");
        ("drained", "drained");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun (load, r) ->
         (("load", vf load) :: app_stat_cells r.Kv.stats)
         @ [
             ("cold_p99", vi r.Kv.cold_stats.App_slo.p99);
             ("tput", vf r.Kv.throughput_per_kcycle);
             ("credit_stalls", vi r.Kv.credit_stalls);
             ("drained", vb r.Kv.drained);
           ])
       results)

(* The E13 head-of-line regime seen from the application: write-heavy
   traffic into a 50 % hotspot shard makes the big (value-carrying)
   transfers converge on the hot node's entry links, so extra VCs let
   cold-shard requests backfill the shared wires — the p99 drop is the
   app-level payoff of PR 5's flow control. *)
let report_kv_vcs ?(load = 0.7) ?(nodes = 16) ?(vc_counts = [ 1; 4 ])
    ?(value_bytes = 2048) ?(hot_pct = 50) ?(link_per_word = 2)
    ?(window_cycles = 60_000) ?(seed = 42) () =
  let p = probe () in
  let rows =
    List.map
      (fun vcs ->
        let r =
          Kv.run ~probe:(watch p)
            {
              Kv.default_config with
              Kv.fabric = app_fabric ~nodes ~vcs ~link_per_word ~seed;
              value_bytes;
              write_pct = 100;
              hot_pct;
              window_cycles;
              load;
            }
        in
        (("vcs", vi vcs) :: app_stat_cells r.Kv.stats)
        @ [
            ("cold_p99", vi r.Kv.cold_stats.App_slo.p99);
            ("credit_stalls", vi r.Kv.credit_stalls);
            ("drained", vb r.Kv.drained);
          ])
      vc_counts
  in
  Report.make ~id:"e16_kv_vcs"
    ~title:
      (Printf.sprintf
         "E16: KV hotspot shard (%d%% writes to shard 0) at load %.2f — \
          virtual channels vs request tail latency"
         hot_pct load)
    ~meta:
      [
        ("nodes", vi nodes);
        ("value_bytes", vi value_bytes);
        ("write_pct", vi 100);
        ("hot_pct", vi hot_pct);
        ("link_per_word", vi link_per_word);
        ("load", vf load);
        ("window_cycles", vi window_cycles);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("vcs", "VCs");
        ("n", "reqs");
        ("p50", "p50");
        ("p95", "p95");
        ("p99", "p99");
        ("p999", "p999");
        ("cold_p99", "cold p99");
        ("credit_stalls", "stalls");
        ("drained", "drained");
      ]
    ~breakdown:(breakdown p) rows

let report_halo ?(loads = halo_default_loads) ?(nodes = 16) ?(tile_rows = 32)
    ?(row_bytes = 128) ?(halo_cols = 16) ?(iterations = 30)
    ?(warmup_iters = 2) ?slo ?(seed = 42) () =
  let p = probe () in
  let strided = ref 0 and contig = ref 0 in
  let results =
    List.map
      (fun load ->
        let r =
          Halo.run ~probe:(watch p)
            {
              Halo.fabric = app_fabric ~nodes ~vcs:1 ~link_per_word:1 ~seed;
              tile_rows;
              row_bytes;
              halo_cols;
              iterations;
              warmup_iters;
              load;
            }
        in
        strided := r.Halo.strided_send_cycles;
        contig := r.Halo.contiguous_send_cycles;
        (load, r))
      loads
  in
  (* the compute budget shrinks as the load (send-work share) grows, so
     raw barrier times are not comparable across loads; the SLO knee is
     detected on the exchange *overhead* — barrier time minus the
     compute floor — which isolates what the fabric adds *)
  let overhead (r : Halo.result) =
    let c = r.Halo.compute_cycles in
    let s = r.Halo.stats in
    {
      s with
      App_slo.mean = s.App_slo.mean -. float_of_int c;
      p50 = s.App_slo.p50 - c;
      p95 = s.App_slo.p95 - c;
      p99 = s.App_slo.p99 - c;
      p999 = s.App_slo.p999 - c;
      max = s.App_slo.max - c;
    }
  in
  let knee =
    app_knee ?slo ~loads (List.map (fun (l, r) -> (l, overhead r)) results)
  in
  Report.make ~id:"e16_halo"
    ~title:
      (Printf.sprintf
         "E16: halo exchange, %dx%d-byte tiles on a %d-node mesh — barrier \
          latency vs send-work share (east/west halos strided)"
         tile_rows row_bytes nodes)
    ~meta:
      [
        ("nodes", vi nodes);
        ("tile_rows", vi tile_rows);
        ("row_bytes", vi row_bytes);
        ("halo_cols", vi halo_cols);
        ("iterations", vi iterations);
        ("strided_send_cycles", vi !strided);
        ("contiguous_send_cycles", vi !contig);
        ("slo", vf (Option.value slo ~default:App_slo.default_slo));
        ("slo_knee", knee);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("load", "load");
        ("compute", "compute");
        ("n", "samples");
        ("p50", "p50");
        ("p95", "p95");
        ("p99", "p99");
        ("p999", "p999");
        ("makespan", "makespan");
        ("credit_stalls", "stalls");
        ("drained", "drained");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun (load, r) ->
         [ ("load", vf load); ("compute", vi r.Halo.compute_cycles) ]
         @ app_stat_cells r.Halo.stats
         @ [
             ("makespan", vi r.Halo.makespan_cycles);
             ("credit_stalls", vi r.Halo.credit_stalls);
             ("drained", vb r.Halo.drained);
           ])
       results)

let report_rpc ?(loads = app_default_loads) ?(nodes = 16) ?(resp_bytes = 512)
    ?(server_cycles = 200) ?(burst = 8) ?(pool = 16) ?slo
    ?(window_cycles = 200_000) ?(seed = 42) () =
  let p = probe () in
  let send_cycles = ref 0 in
  let results =
    List.map
      (fun load ->
        let r =
          Rpc.run ~probe:(watch p)
            {
              Rpc.default_config with
              Rpc.fabric = app_fabric ~nodes ~vcs:1 ~link_per_word:1 ~seed;
              resp_bytes;
              server_cycles;
              burst;
              pool;
              window_cycles;
              load;
            }
        in
        send_cycles := r.Rpc.send_cycles;
        (load, r))
      loads
  in
  let knee =
    app_knee ?slo ~loads (List.map (fun (l, r) -> (l, r.Rpc.stats)) results)
  in
  Report.make ~id:"e16_rpc"
    ~title:
      (Printf.sprintf
         "E16: bursty RPC service (bursts of %d, pool %d) on a %d-node mesh \
          — arrival-to-reply tail latency vs offered server load"
         burst pool nodes)
    ~meta:
      [
        ("nodes", vi nodes);
        ("resp_bytes", vi resp_bytes);
        ("server_cycles", vi server_cycles);
        ("burst", vi burst);
        ("pool", vi pool);
        ("send_cycles", vi !send_cycles);
        ("window_cycles", vi window_cycles);
        ("slo", vf (Option.value slo ~default:App_slo.default_slo));
        ("slo_knee", knee);
        ("seed", vi seed);
      ]
    ~columns:
      [
        ("load", "load");
        ("n", "reqs");
        ("bursts", "bursts");
        ("p50", "p50");
        ("p95", "p95");
        ("p99", "p99");
        ("p999", "p999");
        ("tput", "req/kcyc");
        ("offered", "offered/kcyc");
        ("drained", "drained");
      ]
    ~breakdown:(breakdown p)
    (List.map
       (fun (load, r) ->
         (("load", vf load) :: app_stat_cells r.Rpc.stats)
         @ [
             ("bursts", vi r.Rpc.bursts);
             ("tput", vf r.Rpc.throughput_per_kcycle);
             ("offered", vf r.Rpc.offered_per_kcycle);
             ("drained", vb r.Rpc.drained);
           ])
       results)

(* ------------------------------------------------------------------ *)
(* E17: sharded engine throughput scaling                              *)
(* ------------------------------------------------------------------ *)

module Shard_gen = Udma_traffic.Shard_gen

(* One fixed open-loop point on a large mesh, repeated per domain
   count. The event/window/post counters and the traffic result are
   identical for every row (the kernel is domain-count-invariant; the
   [deterministic] meta flag asserts it), so only the wall-clock rate
   columns vary between hosts and runs — they are advisory, never
   anchored. The authoritative throughput anchors live in
   BENCH_sim.json (bench sim). *)
let report_simscale ?(nodes = 256) ?(load = 0.9) ?(msg_bytes = 256)
    ?(warmup_cycles = 2_000) ?(window_cycles = 50_000)
    ?(domains_list = [ 1; 2; 4 ]) ?(seed = 42) () =
  if domains_list = [] then invalid_arg "report_simscale: empty domains list";
  let send_cycles = Load_gen.calibrate ~msg_bytes () in
  let cfg =
    {
      Load_gen.default_config with
      Load_gen.nodes;
      msg_bytes;
      warmup_cycles;
      window_cycles;
      arrival =
        Udma_traffic.Arrival.Poisson
          { per_kcycle = load *. 1000.0 /. float_of_int send_cycles };
      rx_credits = None;
      seed;
    }
  in
  let runs =
    List.map
      (fun domains ->
        let t0 = Unix.gettimeofday () in
        let result, ks = Shard_gen.run_stats ~domains ~send_cycles cfg in
        let wall = Unix.gettimeofday () -. t0 in
        (domains, result, ks, wall))
      domains_list
  in
  let fingerprint (r : Load_gen.result) (ks : Shard_gen.kernel_stats) =
    (ks.Shard_gen.events, ks.Shard_gen.windows, ks.Shard_gen.cross_posts,
     r.Load_gen.injected, r.Load_gen.delivered, r.Load_gen.latencies)
  in
  let deterministic =
    match runs with
    | [] -> true
    | (_, r0, k0, _) :: rest ->
        let f0 = fingerprint r0 k0 in
        List.for_all (fun (_, r, k, _) -> fingerprint r k = f0) rest
  in
  let base_wall =
    match runs with (_, _, _, w) :: _ -> w | [] -> 0.0
  in
  let width =
    match runs with
    | (_, r, _, _) :: _ -> r.Load_gen.width
    | [] -> 0
  in
  Report.make ~id:"e17_simscale"
    ~title:
      (Printf.sprintf
         "E17: sharded engine throughput — events/sec vs worker domains, \
          %d-node mesh at load %.1f" nodes load)
    ~meta:
      [
        ("nodes", vi nodes);
        ("width", vi width);
        ("load", vf load);
        ("msg_bytes", vi msg_bytes);
        ("send_cycles", vi send_cycles);
        ("warmup_cycles", vi warmup_cycles);
        ("window_cycles", vi window_cycles);
        ("seed", vi seed);
        ("host_cores", vi (Domain.recommended_domain_count ()));
        ("deterministic", vb deterministic);
      ]
    ~columns:
      [
        ("domains", "domains");
        ("shards", "shards");
        ("events", "events");
        ("windows", "windows");
        ("cross_posts", "x-posts");
        ("delivered", "delivered");
        ("events_per_sec", "events/s");
        ("speedup", "speedup");
      ]
    (List.map
       (fun (domains, (r : Load_gen.result), (ks : Shard_gen.kernel_stats),
             wall) ->
         [
           ("domains", vi domains);
           ("shards", vi ks.Shard_gen.shards);
           ("events", vi ks.Shard_gen.events);
           ("windows", vi ks.Shard_gen.windows);
           ("cross_posts", vi ks.Shard_gen.cross_posts);
           ("delivered", vi r.Load_gen.delivered);
           ("mean_latency", vf r.Load_gen.mean_latency);
           ("p99_latency", vi r.Load_gen.p99_latency);
           ("wall_ms", vf (wall *. 1000.0));
           ( "events_per_sec",
             vf
               (if wall > 0.0 then float_of_int ks.Shard_gen.events /. wall
                else 0.0) );
           ("speedup", vf (if wall > 0.0 then base_wall /. wall else 0.0));
         ])
       runs)

(* ------------------------------------------------------------------ *)
(* drivers                                                             *)
(* ------------------------------------------------------------------ *)

type experiment = {
  exp_name : string;
  exp_alias : string;
  exp_doc : string;
  exp_run : quick:bool -> seed:int -> Report.t list;
}

(* The one registry every frontend derives from: [all_reports] (hence
   bench/main.exe and the committed baselines) concatenates the
   registry in order, and bin/shrimp_sim.ml generates a name + eN
   alias command pair per entry — adding an experiment here is the
   whole registration. *)
let experiments =
  [
    {
      exp_name = "figure8";
      exp_alias = "e1";
      exp_doc = "E1: deliberate-update bandwidth vs message size (Figure 8).";
      exp_run =
        (fun ~quick ~seed:_ ->
          if quick then
            [
              report_figure8 ~sizes:[ 512; 1024; 4096; 16384 ] ~messages:8 ();
              report_figure8 ~sizes:[ 512; 1024; 4096; 16384 ] ~messages:8
                ~queued:true ();
            ]
          else [ report_figure8 (); report_figure8 ~queued:true () ]);
    };
    {
      exp_name = "initiation";
      exp_alias = "e2";
      exp_doc = "E2: UDMA vs traditional transfer-initiation cost (the 2.8us).";
      exp_run = (fun ~quick:_ ~seed:_ -> [ report_costs () ]);
    };
    {
      exp_name = "hippi";
      exp_alias = "e3";
      exp_doc = "E3: kernel DMA bandwidth vs block size on a HIPPI profile.";
      exp_run =
        (fun ~quick ~seed:_ ->
          if quick then
            [ report_hippi ~blocks:[ 1024; 4096; 65536; 262144 ] () ]
          else [ report_hippi () ]);
    };
    {
      exp_name = "crossover";
      exp_alias = "e4";
      exp_doc = "E4: UDMA vs memory-mapped FIFO latency.";
      exp_run =
        (fun ~quick ~seed:_ ->
          if quick then [ report_crossover ~sizes:[ 64; 512; 4096 ] ~trials:2 () ]
          else [ report_crossover () ]);
    };
    {
      exp_name = "queueing";
      exp_alias = "e5";
      exp_doc = "E5: basic vs queued UDMA for multi-page transfers.";
      exp_run =
        (fun ~quick ~seed:_ ->
          if quick then
            [ report_queueing ~total_sizes:[ 16384; 65536 ] ~depths:[ 4; 8 ] () ]
          else [ report_queueing () ]);
    };
    {
      exp_name = "atomicity";
      exp_alias = "e6";
      exp_doc = "E6: I1 retries under forced preemption.";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [ report_atomicity ~probs_pct:[ 0; 20 ] ~transfers:40 ~seed () ]
          else [ report_atomicity ~seed () ]);
    };
    {
      exp_name = "pinning";
      exp_alias = "e7";
      exp_doc = "E7: page pinning vs the I4 remap check.";
      exp_run = (fun ~quick:_ ~seed:_ -> [ report_pinning () ]);
    };
    {
      exp_name = "proxyfault";
      exp_alias = "e8";
      exp_doc = "E8: demand proxy-mapping fault costs.";
      exp_run = (fun ~quick:_ ~seed:_ -> [ report_proxy_faults () ]);
    };
    {
      exp_name = "i3policy";
      exp_alias = "e9";
      exp_doc = "E9: the two I3 content-consistency methods.";
      exp_run =
        (fun ~quick ~seed:_ ->
          if quick then [ report_i3 ~transfers:16 ~pages:4 () ]
          else [ report_i3 () ]);
    };
    {
      exp_name = "updates";
      exp_alias = "e10";
      exp_doc = "E10: deliberate vs automatic update.";
      exp_run = (fun ~quick:_ ~seed:_ -> [ report_updates () ]);
    };
    {
      exp_name = "traffic";
      exp_alias = "e11";
      exp_doc =
        "E11: mesh saturation — latency vs offered load under multi-node \
         traffic with link contention.";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [
              report_saturation ~loads:[ 0.2; 0.6; 0.9; 1.1 ]
                ~window_cycles:20_000 ~seed ();
            ]
          else [ report_saturation ~seed () ]);
    };
    {
      exp_name = "adaptive";
      exp_alias = "e12";
      exp_doc =
        "E12: dimension-order vs minimal-adaptive routing — per-pattern \
         saturation knee shift.";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [
              (* same link-bound regime as the full sweep, on the four
                 loads that bracket both policies' knees with margin *)
              report_adaptive ~loads:[ 0.2; 0.6; 0.8; 1.0 ]
                ~patterns:
                  [ Udma_traffic.Pattern.Transpose;
                    Udma_traffic.Pattern.default_hotspot ]
                ~seed ();
            ]
          else [ report_adaptive ~seed () ]);
    };
    {
      exp_name = "hotspot";
      exp_alias = "e13";
      exp_doc =
        "E13: hotspot saturation vs virtual channels — per-share knee at \
         1-4 VCs under credit backpressure.";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [
              report_hotspot ~loads:[ 0.2; 0.6; 0.8; 1.0 ] ~pcts:[ 25; 50 ]
                ~vc_counts:[ 1; 4 ] ~seed ();
            ]
          else [ report_hotspot ~seed () ]);
    };
    {
      exp_name = "tenants";
      exp_alias = "e14";
      exp_doc =
        "E14: multi-tenant protection — proxy vs IOMMU vs capability \
         initiation cost and fault rate under tenant churn.";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [ report_tenants ~tenant_counts:[ 8; 256 ] ~ops:4000 ~seed () ]
          else [ report_tenants ~seed () ]);
    };
    {
      exp_name = "shapes";
      exp_alias = "e15";
      exp_doc =
        "E15: bandwidth vs transfer shape — contiguous vs strided vs \
         scatter-gather at equal total bytes.";
      exp_run =
        (fun ~quick ~seed:_ ->
          if quick then [ report_shapes ~cases:quick_shape_cases () ]
          else [ report_shapes () ]);
    };
    {
      exp_name = "apps";
      exp_alias = "e16";
      exp_doc =
        "E16: application workloads — sharded KV, halo exchange and bursty \
         RPC tail latency vs offered load over the user-level DMA fabric.";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [
              report_kv ~loads:[ 0.3; 0.8 ] ~window_cycles:30_000 ~seed ();
              report_halo ~loads:[ 0.5 ] ~iterations:12 ~seed ();
              report_rpc ~loads:[ 0.3; 0.8 ] ~window_cycles:100_000 ~seed ();
            ]
          else
            [
              report_kv ~seed ();
              report_halo ~seed ();
              report_rpc ~seed ();
              report_kv_vcs ~seed ();
            ]);
    };
    {
      exp_name = "simscale";
      exp_alias = "e17";
      exp_doc =
        "E17: sharded-engine throughput — events/sec and speedup vs worker \
         domains on a 256-node mesh (counters deterministic, rates \
         host-dependent).";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [
              report_simscale ~window_cycles:20_000 ~domains_list:[ 1; 2 ]
                ~seed ();
            ]
          else [ report_simscale ~seed () ]);
    };
    {
      exp_name = "flit";
      exp_alias = "e18";
      exp_doc =
        "E18: flit-level wormhole crossing vs the analytic wire — hotspot \
         head-of-line blocking delta and per-VC occupancy at 1-4 VCs.";
      exp_run =
        (fun ~quick ~seed ->
          if quick then
            [
              report_flit ~vc_counts:[ 1; 4 ] ~window_cycles:20_000 ~seed ();
            ]
          else [ report_flit ~seed () ]);
    };
  ]

let all_reports ?(quick = false) ?(seed = 42) () =
  List.concat_map (fun e -> e.exp_run ~quick ~seed) experiments

let run_all () = List.iter Report.print (all_reports ())
