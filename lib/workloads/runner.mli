(** Experiment harnesses — one per paper table/figure (see DESIGN.md §4
    for the index). Each experiment has two entry points: the typed-row
    function (kept stable for tests) and a [report_*] builder that runs
    the same harness and packages rows, parameters and a cycle
    breakdown into a {!Udma_obs.Report.t}. The paper-style table and
    the JSON document both derive from that one value
    ([Udma_obs.Report.print] / [Udma_obs.Report.to_json]), so
    `bench/main.exe` and `bin/shrimp_sim.exe` can never drift. *)

module Report = Udma_obs.Report

(** {1 E1 — Figure 8: deliberate-update bandwidth vs. message size} *)

type bw_point = {
  size : int;
  cycles_per_msg : float;
  bytes_per_cycle : float;
  pct_of_max : float;
}

val figure8 :
  ?sizes:int list -> ?messages:int -> ?queued:bool -> unit -> bw_point list
(** 2-node SHRIMP, back-to-back blocking sends of each size
    ([messages] per point, default 32), normalised to the maximum
    measured bandwidth, exactly as Figure 8. [queued] (default false)
    swaps in the §7 queued hardware and the pipelined initiator as an
    ablation. *)

val report_figure8 :
  ?sizes:int list -> ?messages:int -> ?queued:bool -> unit -> Report.t

(** {1 E2 — initiation cost (the §8 "2.8 µs" and §1/§2 contrast)} *)

type cost_row = { label : string; cycles : int; us : float }

val initiation_costs : unit -> cost_row list
(** UDMA two-reference initiation vs. the traditional kernel paths
    (pin and copy strategies, 4 B and 4 KB), on the default profile. *)

val report_costs : unit -> Report.t

(** {1 E3 — §1 HIPPI motivation: kernel DMA bandwidth vs. block size} *)

type hippi_row = {
  block : int;
  mbytes_per_s : float;
  pct_of_channel : float;
}

val hippi_motivation : ?blocks:int list -> unit -> hippi_row list
(** Kernel-initiated DMA on the HIPPI cost profile over a ~96 MB/s
    channel; reproduces "2.7 MB/s at 1 KB" and the large-block
    requirement for 80 % utilisation. *)

val report_hippi : ?blocks:int list -> unit -> Report.t

(** {1 E4 — §9 PIO-FIFO vs. UDMA crossover} *)

type crossover_row = {
  xsize : int;
  udma_cycles : float;   (** one-way user-to-user latency *)
  pio_cycles : float;
}

val pio_crossover : ?sizes:int list -> ?trials:int -> unit -> crossover_row list

val report_crossover : ?sizes:int list -> ?trials:int -> unit -> Report.t

(** {1 E5 — §7 queueing ablation} *)

type queueing_row = {
  total_bytes : int;
  basic_cycles : int;
  queued_cycles : (int * int) list;  (** (depth, cycles) *)
}

val queueing : ?total_sizes:int list -> ?depths:int list -> unit -> queueing_row list

val report_queueing :
  ?total_sizes:int list -> ?depths:int list -> unit -> Report.t

(** {1 E6 — I1 atomicity under preemption} *)

type atomicity_row = {
  preempt_pct : int;      (** preemption probability per reference, % *)
  transfers : int;
  retries : int;
  avg_cycles : float;
  violations : int;       (** cross-process pairings observed (must be 0) *)
}

val atomicity :
  ?probs_pct:int list -> ?transfers:int -> ?seed:int -> unit ->
  atomicity_row list
(** [seed] (default 42) drives the preemption coin flips; the per-point
    RNG is seeded with [seed + pct] so runs replay exactly. *)

val report_atomicity :
  ?probs_pct:int list -> ?transfers:int -> ?seed:int -> unit -> Report.t

(** {1 E7 — I4 remap-check vs. pinning} *)

type pinning_row = { label : string; value : float; unit_ : string }

val pinning_vs_i4 : unit -> pinning_row list
(** Static per-page costs plus a dynamic paging-under-transfers run
    reporting I4 skips and deferred cleans. *)

val report_pinning : unit -> Report.t

(** {1 E8 — §6 proxy-fault costs} *)

val proxy_fault_costs : unit -> cost_row list
(** Cold (fault + mapping) vs. warm proxy references; the in-core,
    paged-out and illegal cases. *)

val report_proxy_faults : unit -> Report.t

(** {1 E9 — I3 policy ablation (§6's two content-consistency methods)} *)

type i3_row = {
  policy : string;
  transfers_done : int;
  total_cycles : int;
  proxy_faults : int;
  upgrades : int;
  cleans : int;
}

val i3_policies : ?transfers:int -> ?pages:int -> unit -> i3_row list
(** Incoming (device-to-memory) transfers across [pages] buffers with a
    page-cleaning daemon running between rounds, under [Write_upgrade]
    and [Proxy_dirty_union]. The union policy trades upgrade faults
    for paging-code complexity, as §6 predicts. *)

val report_i3 : ?transfers:int -> ?pages:int -> unit -> Report.t

(** {1 E10 — deliberate vs automatic update (§9)} *)

type update_row = {
  workload : string;
  deliberate_cycles : int;
  automatic_cycles : int;
  deliberate_packets : int;
  automatic_packets : int;
}

val update_strategies : unit -> update_row list
(** Word-grain scattered updates vs bulk sequential writes, sent with
    a deliberate-update UDMA transfer per update vs snooped automatic
    update. Automatic update should win fine-grain scattered writes;
    deliberate update should win bulk. *)

val report_updates : unit -> Report.t

(** {1 E11 — traffic saturation (lib/traffic)} *)

val report_saturation :
  ?loads:float list ->
  ?nodes:int ->
  ?pattern:Udma_traffic.Pattern.t ->
  ?msg_bytes:int ->
  ?warmup_cycles:int ->
  ?window_cycles:int ->
  ?link_contention:bool ->
  ?routing:Udma_shrimp.Router.routing ->
  ?link_per_word:int ->
  ?vc_count:int ->
  ?rx_credits:int option ->
  ?crossing:Udma_shrimp.Router.crossing ->
  ?flit_words:int ->
  ?seed:int ->
  ?domains:int ->
  unit ->
  Report.t
(** Latency vs offered load on a mesh driven by
    {!Udma_traffic.Sweep}: one row per load point (offered/delivered
    throughput, latency percentiles, head-of-line blocking), with the
    detected saturation knee flagged in the rows and recorded in the
    meta as [knee_load] (or the string ["none"]). Deterministic under
    [seed]. [domains] (default 1) selects the worker-domain count for
    the sharded engine; per {!Udma_traffic.Sweep.use_sharded} the
    legacy single-engine path — and its exact report bytes — is kept
    whenever [domains = 1] and [nodes <= 64]. On the sharded path the
    meta gains [engine]/[domains] fields and the report is identical
    for every [domains] value. [crossing] (default [`Analytic])
    selects the wire model; [`Flit] pins the legacy engine and adds
    [crossing]/[flit_words] meta fields, leaving analytic reports
    byte-identical to the pre-flit runner. *)

(** {1 E12 — routing policy comparison (lib/shrimp router)} *)

val report_adaptive :
  ?loads:float list ->
  ?nodes:int ->
  ?patterns:Udma_traffic.Pattern.t list ->
  ?msg_bytes:int ->
  ?warmup_cycles:int ->
  ?window_cycles:int ->
  ?link_per_word:int ->
  ?seed:int ->
  unit ->
  Report.t
(** The E11 sweep re-run per pattern under both routing policies
    (contention on): one row per pattern with the saturation knee
    under dimension-order ([knee_dim]) and minimal-adaptive
    ([knee_adaptive]), the knee shift, and the heaviest point's
    head-of-line blocking under each. The defaults (2 KB messages,
    [link_per_word = 2]) put the bottleneck on the contended links
    rather than the send initiation path, so the policy choice is
    visible in the knee. Deterministic under [seed]. *)

(** {1 E13 — hotspot saturation vs virtual channels} *)

val report_hotspot :
  ?loads:float list ->
  ?nodes:int ->
  ?pcts:int list ->
  ?vc_counts:int list ->
  ?msg_bytes:int ->
  ?warmup_cycles:int ->
  ?window_cycles:int ->
  ?link_per_word:int ->
  ?rx_credits:int option ->
  ?seed:int ->
  unit ->
  Report.t
(** The E12 link-bound regime under a hotspot pattern: one row per
    (hotspot share, VC count) with the saturation knee and, at the
    heaviest load, the source-side credit stalls and link-queue
    ceiling. More VCs let cold flows backfill around a blocked
    hotspot packet (the knee holds or improves as the share grows);
    finite [rx_credits] (default [Some 8]) convert residual overload
    into [credit_stalls] instead of unbounded link depth.
    Deterministic under [seed]. *)

(** {1 E18 — flit-level wormhole crossing vs the analytic wire} *)

val report_flit :
  ?load:float ->
  ?nodes:int ->
  ?hot_pct:int ->
  ?vc_counts:int list ->
  ?msg_bytes:int ->
  ?warmup_cycles:int ->
  ?window_cycles:int ->
  ?link_per_word:int ->
  ?rx_credits:int option ->
  ?flit_words:int ->
  ?seed:int ->
  unit ->
  Report.t
(** The E13 hotspot regime (default: 50 % hotspot share, 2 KB
    messages, link-bound wires, 8 deposit credits) run at one offered
    load under both wire models, per VC count: [hol_delta] is the p99
    latency the packet-granularity analytic crossing under-reports
    (flit p99 minus analytic p99 — head-of-line blocking through the
    per-(link, VC) input FIFOs a stalled worm occupies across links),
    [hol_cycles] counts link flit-cycles a free wire spent blocked on
    VC/credit availability, and [occupancy] is the per-VC mean/max
    buffered-flit profile. Both shrink from 1 VC to 4 as cold flits
    interleave around the blocked worm. Deterministic under [seed]. *)

(** {1 E14 — multi-tenant protection backends} *)

val report_tenants :
  ?tenant_counts:int list ->
  ?kinds:Udma_protect.Backend.kind list ->
  ?slots:int ->
  ?ops:int ->
  ?churn_pct:int ->
  ?evict_pct:int ->
  ?rogue_pct:int ->
  ?seed:int ->
  unit ->
  Report.t
(** {!Udma_protect.Tenants.run} per (backend, tenant count): one row
    with initiation p50/p99/p999, the recovered-fault rate, rogue
    probes denied, grant and invalidation traffic, the IOTLB hit rate
    (IOMMU rows) and the isolation-breach count (always 0). Defaults
    sweep {8, 64, 256, 1024} tenants over 64 table slots for all
    three backends; every backend faces the identical op stream, so
    rows differ only in protection-path costs. Deterministic under
    [seed]. *)

(** {1 E15: bandwidth vs transfer shape} *)

type shape_case =
  | Shape_contig
  | Shape_strided of int
      (** source reads 64 bytes every [64 * factor]; destination packs
          densely *)
  | Shape_sg of int
      (** total destination elements across the whole transfer,
          scattered within each initiation's device page *)

type shape_row = {
  sh_label : string;
  sh_basic : int;        (** end-to-end user cycles, basic hardware *)
  sh_queued : int;       (** same, queued hardware (depth 8) *)
  sh_basic_bpc : float;  (** bytes per cycle *)
  sh_queued_bpc : float;
  sh_basic_pct : float;  (** bandwidth as % of contiguous, same mode *)
  sh_queued_pct : float;
}

val default_shape_cases : shape_case list
(** Contiguous, stride factors 2..64, SG 2..256 elements. *)

val quick_shape_cases : shape_case list
(** The 5-case subset CI anchors check. *)

val transfer_shapes :
  ?total:int -> ?cases:shape_case list -> unit -> shape_row list

val report_shapes : ?total:int -> ?cases:shape_case list -> unit -> Report.t
(** Move [total] (default 8192) bytes to the device in every shape, on
    basic and queued hardware: per-shape end-to-end cycles, bytes per
    cycle and bandwidth relative to the contiguous transfer of the same
    mode. Strided and scatter-gather shapes go through shaped
    initiations ({!Udma.Initiator.start_shaped}); the descriptor-fetch
    and per-element burst-setup costs produce the overhead knee as
    element count rises at fixed total bytes. *)

(** {1 E16 — application workloads over the UDMA fabric (lib/app)} *)

val app_default_loads : float list
(** 0.2..1.2 — the KV / RPC sweep extends past saturation so the open
    loop's SLO knee is inside the sweep. *)

val halo_default_loads : float list
(** 0.2..1.0 — the halo load axis is a work share and cannot exceed 1. *)

val report_kv :
  ?loads:float list ->
  ?nodes:int ->
  ?shards:int ->
  ?clients_per_node:int ->
  ?value_bytes:int ->
  ?write_pct:int ->
  ?hot_pct:int ->
  ?vcs:int ->
  ?link_per_word:int ->
  ?slo:float ->
  ?window_cycles:int ->
  ?chaos:bool ->
  ?seed:int ->
  unit ->
  Report.t
(** {!Udma_app.Kv.run} swept over offered loads: one row per load with
    request count, end-to-end latency percentiles (plus the cold — non
    hot-shard — p99), throughput, credit stalls and the drain check;
    the SLO knee (first sustained load where p99 exceeds [slo] times
    the lightest load's p50) lands in the meta. [shards] defaults to
    [nodes]. Deterministic under [seed]. *)

val report_kv_vcs :
  ?load:float ->
  ?nodes:int ->
  ?vc_counts:int list ->
  ?value_bytes:int ->
  ?hot_pct:int ->
  ?link_per_word:int ->
  ?window_cycles:int ->
  ?seed:int ->
  unit ->
  Report.t
(** The KV store in the E13 head-of-line regime (write-heavy traffic
    into a hot shard, link-bound wires) at one load, per VC count: the
    app-level payoff of virtual channels as a p99 / cold-p99 drop.
    Deterministic under [seed]. *)

val report_halo :
  ?loads:float list ->
  ?nodes:int ->
  ?tile_rows:int ->
  ?row_bytes:int ->
  ?halo_cols:int ->
  ?iterations:int ->
  ?warmup_iters:int ->
  ?slo:float ->
  ?seed:int ->
  unit ->
  Report.t
(** {!Udma_app.Halo.run} swept over send-work shares: one row per load
    with per-(node, iteration) barrier-latency percentiles, the
    derived compute budget, makespan and the drain check; east/west
    halos go through the strided (shaped) send path, whose calibrated
    cost lands in the meta next to the contiguous one. Because the
    compute budget shrinks as the send-work share grows, the SLO knee
    is detected on the exchange {e overhead} (barrier time minus the
    compute floor), not on raw barrier times. Deterministic under
    [seed]. *)

val report_rpc :
  ?loads:float list ->
  ?nodes:int ->
  ?resp_bytes:int ->
  ?server_cycles:int ->
  ?burst:int ->
  ?pool:int ->
  ?slo:float ->
  ?window_cycles:int ->
  ?seed:int ->
  unit ->
  Report.t
(** {!Udma_app.Rpc.run} swept over target server utilisations: one row
    per load with arrival-to-reply latency percentiles (backlog wait
    included), burst count, completed vs offered throughput and the
    drain check; the SLO knee in the meta. Deterministic under
    [seed]. *)

val report_simscale :
  ?nodes:int ->
  ?load:float ->
  ?msg_bytes:int ->
  ?warmup_cycles:int ->
  ?window_cycles:int ->
  ?domains_list:int list ->
  ?seed:int ->
  unit ->
  Report.t
(** E17: the sharded conservative engine ({!Udma_traffic.Shard_gen})
    run on one fixed open-loop point (default: 16x16 mesh at load 0.9)
    once per entry of [domains_list] (default [[1; 2; 4]]). One row
    per domain count with the kernel counters (events, windows,
    cross-shard posts), the traffic result, and the wall-clock
    events/sec + speedup over the first entry. The counters and the
    traffic result are identical across rows — the [deterministic]
    meta flag asserts it — while the rate columns depend on the host
    ([host_cores] meta records {!Domain.recommended_domain_count});
    the anchored throughput baseline lives in [BENCH_sim.json]. *)

(** {1 Driver} *)

type experiment = {
  exp_name : string;  (** CLI subcommand name, e.g. ["figure8"] *)
  exp_alias : string;  (** short alias, e.g. ["e1"] *)
  exp_doc : string;  (** one-line description *)
  exp_run : quick:bool -> seed:int -> Report.t list;
}

val experiments : experiment list
(** The experiment registry, in E1..E17 order. [all_reports] and the
    [shrimp_sim] command set are both derived from it, so a new
    experiment registers exactly once here. *)

val all_reports : ?quick:bool -> ?seed:int -> unit -> Report.t list
(** Every experiment (E1 basic + queued, E2..E17) as reports, in
    registry order. [quick] (default false) substitutes the small
    deterministic parameter set CI uses for the committed
    [BENCH_baseline.json]; [seed] feeds the randomized experiments
    (E6) and the traffic sweep (E11). Each report carries its own
    cycle breakdown; the breakdown's sum equals the total simulated
    cycles across every engine that experiment created. *)

val run_all : unit -> unit
(** Run and print every experiment (what [bench/main.exe] calls). *)
