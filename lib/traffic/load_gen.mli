(** Multi-node load generator over the user-level messaging layer.

    One run builds a fresh k×k {!Udma_shrimp.System}, establishes a
    {!Udma_shrimp.Messaging} channel (export + NIPT + proxy grant) for
    every (src, dst) pair the {!Pattern} can produce, calibrates the
    per-message initiation cost with a real warm user-level send, then
    drives the mesh from the configured {!Arrival} process.

    Because all nodes share one simulated clock, concurrent sends
    cannot each block the global clock for their full initiation the
    way a single foreground send does; instead each source is modelled
    as a server occupied [send_cycles] (the calibrated cost) per
    message, after which the payload is handed to the NI with
    {!Udma_shrimp.Messaging.inject} — from there packets take the full
    simulated path (outgoing FIFO, wire serialisation, router with
    optional link contention, receive DMA deposit). Latency is
    enqueue-to-delivery, so source queueing shows up past
    saturation. *)

type config = {
  nodes : int;
      (** 2..64, filling complete rows of the squarest covering mesh
          ({!Udma_shrimp.Router.valid_nodes}): 4, 6, 9, 12, 16, ... *)
  pattern : Pattern.t;
  arrival : Arrival.t;
  msg_bytes : int;  (** positive 4-byte multiple <= 4092 (one packet) *)
  warmup_cycles : int;  (** run-in before measurement starts *)
  window_cycles : int;  (** measurement window *)
  link_contention : bool;  (** router per-link FIFO model on/off *)
  routing : Udma_shrimp.Router.routing;  (** router path policy *)
  link_per_word : int;
      (** router cycles per 4-byte word on a link (>= 1); the default
          matches {!Udma_shrimp.Router.default_config}. Raising it
          models a slower mesh relative to the fixed send-initiation
          cost, which moves the bottleneck from the sources onto the
          contended links (the E12 regime). *)
  vc_count : int;  (** virtual channels per directed link, 1..4 *)
  rx_credits : int option;
      (** deposit slots per (link, VC) receive FIFO ([None] =
          unlimited). With finite credits the source consults
          {!Udma_shrimp.Router.injection_ready} before handing each
          packet to the NI and stalls while the first-hop FIFO is out
          of slots — saturation then shows up as [credit_stalls]
          instead of unbounded link queueing. *)
  crossing : Udma_shrimp.Router.crossing;
      (** wire model under contention: [`Analytic] (default,
          packet-granularity reservations, byte-identical to the
          pre-flit generator) or [`Flit] (cycle-accurate wormhole
          flits; dimension-order only, and the injection gate moves
          inside the network so [credit_stalls] stays 0). *)
  flit_words : int;  (** words per flit in [`Flit] mode (>= 1) *)
  seed : int;
}

val default_config : config
(** 16 nodes, uniform, Poisson 1 msg/kcycle/node, 256 B, 2k warmup,
    50k window, contention on, dimension-order routing, 1 VC,
    unlimited credits, analytic crossing, seed 42. *)

type result = {
  nodes : int;
  width : int;
  send_cycles : int;  (** calibrated per-message initiation cost *)
  window_cycles : int;
  injected : int;  (** arrivals inside the window *)
  launched : int;  (** messages handed to a NI (whole run) *)
  delivered : int;  (** measured arrivals delivered inside the window *)
  offered_per_kcycle : float;  (** injected, per node per 1000 cycles *)
  delivered_per_kcycle : float;
  latencies : int array;  (** sorted enqueue-to-delivery cycles *)
  mean_latency : float;  (** 0 when nothing was delivered *)
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  max_latency : int;
  link_wait_cycles : int;  (** total head-of-line blocking (contention) *)
  link_max_depth : int;
  credit_stalls : int;
      (** launches delayed at the injection gate by an out-of-credit
          first-hop deposit FIFO (0 with unlimited credits) *)
  credit_stall_cycles : int;  (** cycles sources spent in those stalls *)
  links : Udma_shrimp.Router.link_stat list;
  flit_hol_cycles : int;
      (** flit mode: link flit-cycles an idle wire spent blocked on
          VC/credit availability — head-of-line blocking (0 in
          analytic mode, which cannot observe it) *)
  flit_occupancy : (float * int) array;
      (** flit mode: per-VC (mean, max) buffered flits across the mesh
          over active flit-cycles; [[||]] in analytic mode *)
}

val percentile_sorted : int array -> float -> int
(** Nearest-rank percentile of an already sorted array (0 when empty):
    the convention every latency stat in a {!result} uses. Exposed so
    the sharded generator reports with identical rounding. *)

val calibrate : ?msg_bytes:int -> unit -> int
(** The per-message initiation cost on a fresh 2-node system (what a
    run would measure); lets a sweep plan arrival rates relative to
    source capacity before running. *)

val run : ?probe:(Udma_sim.Engine.t -> unit) -> config -> result
(** Deterministic under [config.seed]. [probe] receives the run's
    engine right after creation (for cycle-attribution collection).
    Also publishes [traffic.*] counters, a [traffic.latency_cycles]
    histogram and (with contention) [net.link.*] metrics into that
    engine's registry. Raises [Invalid_argument] on a config outside
    the documented ranges, or if the pattern is silent on this mesh. *)
