module Engine = Udma_sim.Engine
module Rng = Udma_sim.Rng
module Metrics = Udma_obs.Metrics
module Layout = Udma_mmu.Layout
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Kernel = Udma_os.Kernel
module System = Udma_shrimp.System
module Router = Udma_shrimp.Router
module Messaging = Udma_shrimp.Messaging
module Network_interface = Udma_shrimp.Network_interface

type config = {
  nodes : int;
  pattern : Pattern.t;
  arrival : Arrival.t;
  msg_bytes : int;
  warmup_cycles : int;
  window_cycles : int;
  link_contention : bool;
  routing : Router.routing;
  link_per_word : int;
  vc_count : int;
  rx_credits : int option;
  crossing : Router.crossing;
  flit_words : int;
  seed : int;
}

let default_config =
  {
    nodes = 16;
    pattern = Pattern.Uniform;
    arrival = Arrival.Poisson { per_kcycle = 1.0 };
    msg_bytes = 256;
    warmup_cycles = 2_000;
    window_cycles = 50_000;
    link_contention = true;
    routing = `Dimension_order;
    link_per_word = Router.default_config.Router.per_word_cycles;
    vc_count = Router.default_config.Router.vc_count;
    rx_credits = Router.default_config.Router.rx_credits;
    crossing = Router.default_config.Router.crossing;
    flit_words = Router.default_config.Router.flit_words;
    seed = 42;
  }

type result = {
  nodes : int;
  width : int;
  send_cycles : int;
  window_cycles : int;
  injected : int;
  launched : int;
  delivered : int;
  offered_per_kcycle : float;
  delivered_per_kcycle : float;
  latencies : int array;
  mean_latency : float;
  p50_latency : int;
  p95_latency : int;
  p99_latency : int;
  max_latency : int;
  link_wait_cycles : int;
  link_max_depth : int;
  credit_stalls : int;
  credit_stall_cycles : int;
  links : Router.link_stat list;
  flit_hol_cycles : int;
  flit_occupancy : (float * int) array;
      (* per VC: (mean, max) buffered flits; [||] in analytic mode *)
}

(* p-th percentile of a sorted array (nearest-rank). *)
let percentile_sorted arr p =
  let n = Array.length arr in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    arr.(max 0 (min (n - 1) (rank - 1)))

let validate (cfg : config) =
  if cfg.nodes < 2 || cfg.nodes > 64 then
    invalid_arg "Load_gen: nodes must be in 2..64";
  if not (Router.valid_nodes cfg.nodes) then
    invalid_arg
      "Load_gen: nodes must fill complete mesh rows (2, 4, 6, 9, 12, 16, 20, \
       25, 30, 36, 42, 49, 56 or 64)";
  if cfg.msg_bytes <= 0 || cfg.msg_bytes land 3 <> 0 || cfg.msg_bytes > 4092
  then
    invalid_arg "Load_gen: msg_bytes must be a positive 4-byte multiple <= 4092";
  if cfg.link_per_word < 1 then
    invalid_arg "Load_gen: link_per_word must be >= 1";
  if cfg.vc_count < 1 || cfg.vc_count > 4 then
    invalid_arg "Load_gen: vc_count must be in 1..4";
  (match cfg.rx_credits with
  | Some n when n < 1 -> invalid_arg "Load_gen: rx_credits must be >= 1"
  | Some _ | None -> ());
  if cfg.flit_words < 1 then invalid_arg "Load_gen: flit_words must be >= 1";
  (match (cfg.crossing, cfg.routing) with
  | `Flit, `Minimal_adaptive ->
      invalid_arg "Load_gen: the flit crossing is dimension-order only"
  | (`Flit | `Analytic), _ -> ());
  if cfg.window_cycles <= 0 then
    invalid_arg "Load_gen: window_cycles must be positive";
  if cfg.warmup_cycles < 0 then
    invalid_arg "Load_gen: warmup_cycles must be non-negative"

let make_system (cfg : config) =
  System.create
    ~config:
      { System.default_config with
        System.router =
          { Router.default_config with
            Router.link_contention = cfg.link_contention;
            Router.routing = cfg.routing;
            Router.per_word_cycles = cfg.link_per_word;
            Router.vc_count = cfg.vc_count;
            Router.rx_credits = cfg.rx_credits;
            Router.crossing = cfg.crossing;
            Router.flit_words = cfg.flit_words } }
    ~nodes:cfg.nodes ()

(* One real user-level send (STORE count / LOAD source, blocking until
   the device accepts the payload) measured on a warm channel: the
   per-message CPU occupancy the service model charges each source. *)
let calibrate_on ch cpu ~buf ~msg_bytes sys =
  let engine = System.engine sys in
  let warm () =
    match Messaging.send_nowait ch cpu ~src_vaddr:buf ~nbytes:msg_bytes () with
    | Ok () -> ()
    | Error e ->
        failwith
          (Format.asprintf "Load_gen: calibration send failed: %a"
             Messaging.pp_send_error e)
  in
  warm ();
  System.run_until_idle sys;
  let t0 = Engine.now engine in
  warm ();
  let dt = Engine.now engine - t0 in
  System.run_until_idle sys;
  dt

let calibrate ?(msg_bytes = default_config.msg_bytes) () =
  let sys = System.create ~nodes:2 () in
  let snd = System.node sys 0 in
  let sp = Scheduler.spawn snd.System.machine ~name:"cal-send" in
  let rp =
    Scheduler.spawn (System.node sys 1).System.machine ~name:"cal-recv"
  in
  let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:1 () in
  let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
  Kernel.write_user snd.System.machine sp ~vaddr:buf
    (Bytes.init msg_bytes (fun i -> Char.chr (i land 0xff)));
  let cpu = Kernel.user_cpu snd.System.machine sp in
  calibrate_on ch cpu ~buf ~msg_bytes sys

(* A message waiting at its source or in flight. [born] is its arrival
   (enqueue) time, so the recorded latency includes source queueing —
   the quantity that blows up past saturation. *)
type msg = { born : int; on_deliver : (int -> unit) option }

type source = {
  src : int;
  rng : Rng.t;
  q : (int * msg) Queue.t; (* (dst, msg) in arrival order *)
  mutable serving : bool;
}

let run ?probe (cfg : config) =
  validate cfg;
  let sys = make_system cfg in
  (match probe with Some f -> f (System.engine sys) | None -> ());
  let engine = System.engine sys in
  let router = System.router sys in
  let width = Router.width router in
  let nodes = cfg.nodes in
  (* one process per node; channels for every (src, dst) the pattern
     can produce, with sequential NIPT/proxy indices per sender *)
  let procs =
    Array.init nodes (fun i ->
        Scheduler.spawn (System.node sys i).System.machine
          ~name:(Printf.sprintf "traffic%d" i))
  in
  let channels = Array.make_matrix nodes nodes None in
  Array.iteri
    (fun src _ ->
      let next_index = ref 0 in
      List.iter
        (fun dst ->
          let ch =
            Messaging.connect sys ~sender:(src, procs.(src))
              ~receiver:(dst, procs.(dst)) ~first_index:!next_index ~pages:1 ()
          in
          incr next_index;
          channels.(src).(dst) <- Some ch)
        (Pattern.support cfg.pattern ~width ~nodes ~src))
    procs;
  let channel src dst =
    match channels.(src).(dst) with
    | Some ch -> ch
    | None ->
        invalid_arg
          (Printf.sprintf "Load_gen: pattern picked unplanned pair %d->%d" src
             dst)
  in
  (* calibrate the per-message initiation cost with a real warm send on
     the first live channel, before the latency-recording sinks go in *)
  let send_cycles =
    let rec first src =
      if src >= nodes then
        invalid_arg "Load_gen: pattern generates no traffic on this mesh"
      else
        match
          List.find_map (fun d -> channels.(src).(d)) (List.init nodes Fun.id)
        with
        | Some ch -> (src, ch)
        | None -> first (src + 1)
    in
    let src, ch = first 0 in
    let m = (System.node sys src).System.machine in
    let buf = Kernel.alloc_buffer m procs.(src) ~bytes:4096 in
    Kernel.write_user m procs.(src) ~vaddr:buf
      (Bytes.init cfg.msg_bytes (fun i -> Char.chr (i land 0xff)));
    calibrate_on ch (Kernel.user_cpu m procs.(src)) ~buf
      ~msg_bytes:cfg.msg_bytes sys
  in
  let payload = Bytes.init cfg.msg_bytes (fun i -> Char.chr (i land 0xff)) in
  let t0 = Engine.now engine in
  let measure_start = t0 + cfg.warmup_cycles in
  let t_end = measure_start + cfg.window_cycles in
  let em = Engine.metrics engine in
  (* delivery bookkeeping: per-(src,dst) FIFO of in-flight messages.
     Sound because each message is one packet and the router delivers
     in order per pair — under both routing policies (adaptive paths
     vary, but the router clamps per-pair arrivals to send order). *)
  let inflight = Hashtbl.create 64 in
  let inflight_q key =
    match Hashtbl.find_opt inflight key with
    | Some q -> q
    | None ->
        let q = Queue.create () in
        Hashtbl.add inflight key q;
        q
  in
  let injected = ref 0 and launched = ref 0 and delivered = ref 0 in
  let lat_acc = ref [] in
  Array.iteri
    (fun d (node : System.node) ->
      let ni = node.System.ni in
      Router.register router ~node_id:d (fun pkt ->
          Network_interface.receive ni pkt;
          let q = inflight_q (pkt.Udma_shrimp.Packet.src_node, d) in
          if not (Queue.is_empty q) then begin
            let msg = Queue.pop q in
            let now = Engine.now engine in
            if msg.born >= measure_start && now < t_end then begin
              incr delivered;
              let lat = now - msg.born in
              lat_acc := lat :: !lat_acc;
              Metrics.observe em "traffic.latency_cycles" lat;
              Metrics.incr em "traffic.delivered"
            end;
            match msg.on_deliver with
            | Some k -> k (Engine.now engine)
            | None -> ()
          end))
    (Array.init nodes (fun i -> System.node sys i));
  (* service model: each source's CPU initiates queued messages one at
     a time, [send_cycles] each, then hands the packet to the NI.
     With finite rx credits the hand-off first consults the router's
     injection gate: when the first-hop deposit FIFO is out of slots
     the source stalls (counted as a credit stall) until one frees,
     instead of letting the packet queue on the wire without bound. *)
  let credit_stalls = ref 0 and credit_stall_cycles = ref 0 in
  let rec pump (s : source) =
    if (not s.serving) && not (Queue.is_empty s.q) then begin
      s.serving <- true;
      Engine.schedule engine ~delay:send_cycles (fun _ -> launch s)
    end
  and launch (s : source) =
    let dst, _ = Queue.peek s.q in
    let now = Engine.now engine in
    let ready = Router.injection_ready router ~src:s.src ~dst in
    if ready > now then begin
      incr credit_stalls;
      credit_stall_cycles := !credit_stall_cycles + (ready - now);
      Metrics.incr em "traffic.credit_stalls";
      Metrics.add em "traffic.credit_stall_cycles" (ready - now);
      Engine.schedule_at engine ~time:ready (fun _ -> launch s)
    end
    else begin
      let dst, msg = Queue.pop s.q in
      Queue.push msg (inflight_q (s.src, dst));
      Messaging.inject (channel s.src dst) payload;
      incr launched;
      Metrics.incr em "traffic.launched";
      s.serving <- false;
      pump s
    end
  in
  let master = Rng.create cfg.seed in
  let sources =
    Array.init nodes (fun src ->
        { src; rng = Rng.split master; q = Queue.create (); serving = false })
  in
  let enqueue s ?on_deliver dst =
    let now = Engine.now engine in
    if now >= measure_start && now < t_end then begin
      incr injected;
      Metrics.incr em "traffic.injected"
    end;
    Queue.push (dst, { born = now; on_deliver }) s.q;
    pump s
  in
  (match cfg.arrival with
  | Arrival.Poisson _ | Arrival.Periodic _ ->
      let rec arrive s time =
        if time < t_end then
          Engine.schedule_at engine ~time (fun _ ->
              (match
                 Pattern.dest cfg.pattern s.rng ~width ~nodes ~src:s.src
               with
              | Some dst -> enqueue s dst
              | None -> ());
              arrive s (Engine.now engine + Arrival.next_gap cfg.arrival s.rng))
      in
      Array.iter
        (fun s -> arrive s (t0 + Arrival.next_gap cfg.arrival s.rng))
        sources
  | Arrival.Closed { clients; think_cycles } ->
      if clients <= 0 then invalid_arg "Load_gen: clients must be positive";
      let rec client_turn s =
        if Engine.now engine < t_end then
          match Pattern.dest cfg.pattern s.rng ~width ~nodes ~src:s.src with
          | Some dst ->
              enqueue s dst ~on_deliver:(fun delivered_at ->
                  Engine.schedule_at engine ~time:(delivered_at + think_cycles)
                    (fun _ -> client_turn s))
          | None -> ()
      in
      for c = 0 to clients - 1 do
        let s = sources.(c mod nodes) in
        (* stagger first requests across one think interval *)
        Engine.schedule_at engine
          ~time:(t0 + Rng.int s.rng (max 1 think_cycles))
          (fun _ -> client_turn s)
      done);
  Engine.run_until_idle engine;
  Router.publish_link_gauges router;
  let latencies = Array.of_list !lat_acc in
  Array.sort compare latencies;
  let n = Array.length latencies in
  let mean_latency =
    if n = 0 then 0.0
    else float_of_int (Array.fold_left ( + ) 0 latencies) /. float_of_int n
  in
  let links = Router.link_stats router in
  let per_kcycle count =
    1000.0 *. float_of_int count
    /. float_of_int (cfg.window_cycles * nodes)
  in
  {
    nodes;
    width;
    send_cycles;
    window_cycles = cfg.window_cycles;
    injected = !injected;
    launched = !launched;
    delivered = !delivered;
    offered_per_kcycle = per_kcycle !injected;
    delivered_per_kcycle = per_kcycle !delivered;
    latencies;
    mean_latency;
    p50_latency = percentile_sorted latencies 50.0;
    p95_latency = percentile_sorted latencies 95.0;
    p99_latency = percentile_sorted latencies 99.0;
    max_latency = (if n = 0 then 0 else latencies.(n - 1));
    link_wait_cycles =
      List.fold_left (fun a (l : Router.link_stat) -> a + l.Router.wait_cycles) 0 links;
    link_max_depth =
      List.fold_left (fun a (l : Router.link_stat) -> max a l.Router.max_depth) 0 links;
    credit_stalls = !credit_stalls;
    credit_stall_cycles = !credit_stall_cycles;
    links;
    flit_hol_cycles =
      (* fl_hol_cycles is a per-link counter repeated on each VC row *)
      List.fold_left
        (fun a (s : Router.flit_stat) ->
          if s.Router.fl_vc = 0 then a + s.Router.fl_hol_cycles else a)
        0
        (Router.flit_stats router);
    flit_occupancy = Router.flit_vc_occupancy router;
  }
