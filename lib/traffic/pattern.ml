module Rng = Udma_sim.Rng

type t =
  | Uniform
  | Transpose
  | Neighbor
  | Hotspot of { node : int; pct : int }

let default_hotspot = Hotspot { node = 0; pct = 25 }

let to_string = function
  | Uniform -> "uniform"
  | Transpose -> "transpose"
  | Neighbor -> "neighbor"
  | Hotspot { node; pct } -> Printf.sprintf "hotspot(node %d, %d%%)" node pct

let parse s =
  match String.lowercase_ascii (String.trim s) with
  | "uniform" | "random" -> Ok Uniform
  | "transpose" -> Ok Transpose
  | "neighbor" | "neighbour" | "nearest-neighbor" -> Ok Neighbor
  | "hotspot" -> Ok default_hotspot
  | s when String.length s > 8 && String.sub s 0 8 = "hotspot:" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some pct when pct > 0 && pct <= 100 ->
          Ok (Hotspot { node = 0; pct })
      | _ -> Error (Printf.sprintf "bad hotspot percentage in %S" s))
  | _ ->
      Error
        (Printf.sprintf
           "unknown pattern %S (uniform | transpose | neighbor | hotspot[:PCT])"
           s)

let coords ~width id = (id mod width, id / width)

let transpose_dest ~width ~nodes src =
  let x, y = coords ~width src in
  let d = y + (x * width) in
  if d < nodes && d <> src then Some d else None

let neighbors ~width ~nodes src =
  let x, y = coords ~width src in
  List.filter_map
    (fun (nx, ny) ->
      if nx >= 0 && nx < width && ny >= 0 then
        let id = nx + (ny * width) in
        if id < nodes then Some id else None
      else None)
    [ (x - 1, y); (x + 1, y); (x, y - 1); (x, y + 1) ]

(* Destinations this source can ever pick — the channels the load
   generator must set up. *)
let support t ~width ~nodes ~src =
  let others = List.filter (fun d -> d <> src) (List.init nodes Fun.id) in
  match t with
  | Uniform | Hotspot _ -> others
  | Transpose -> (
      match transpose_dest ~width ~nodes src with
      | Some d -> [ d ]
      | None -> [])
  | Neighbor -> neighbors ~width ~nodes src

(* Destination choice, parameterised on the integer draw so the legacy
   stream ([Rng.int], modulo-biased, pinned by committed anchors) and
   the sharded engine's unbiased stream share one implementation. *)
let dest_gen draw t ~width ~nodes ~src =
  let uniform_other () =
    let d = draw (nodes - 1) in
    if d >= src then d + 1 else d
  in
  if nodes < 2 then None
  else
    match t with
    | Uniform -> Some (uniform_other ())
    | Transpose -> transpose_dest ~width ~nodes src
    | Neighbor -> (
        match neighbors ~width ~nodes src with
        | [] -> None
        | ns -> Some (List.nth ns (draw (List.length ns))))
    | Hotspot { node; pct } ->
        if src <> node && draw 100 < pct then Some node
        else Some (uniform_other ())

let dest t rng ~width ~nodes ~src = dest_gen (Rng.int rng) t ~width ~nodes ~src

let dest_unbiased t rng ~width ~nodes ~src =
  dest_gen (Rng.int_unbiased rng) t ~width ~nodes ~src
