type point = { load : float; result : Load_gen.result }

type outcome = {
  send_cycles : int;
  points : point list;
  knee_index : int option;
  knee_load : float option;
}

let default_loads = [ 0.2; 0.4; 0.6; 0.8; 0.9; 1.0; 1.1 ]

(* Saturation knee: the first point whose mean latency exceeds
   [latency_factor] x the lightest point's mean, or that delivers less
   than [min_efficiency] of what was offered. Deterministic given the
   sweep's seed. *)
let latency_factor = 2.0
let min_efficiency = 0.9

(* Saturated independently of any latency baseline: nothing (or too
   little) of what was offered got through. *)
let inefficient (r : Load_gen.result) =
  (r.Load_gen.delivered = 0 && r.Load_gen.injected > 0)
  || r.Load_gen.injected > 0
     && float_of_int r.Load_gen.delivered
        < min_efficiency *. float_of_int r.Load_gen.injected

let detect_knee points =
  match points with
  | [] -> None
  | first :: rest ->
      (* the lightest point anchors the latency baseline, so it must
         itself be healthy: if it already fails the efficiency test the
         whole curve starts saturated — report the knee there rather
         than comparing later points against a saturated baseline *)
      if inefficient first.result then Some 0
      else
        let base = first.result.Load_gen.mean_latency in
        let saturated p =
          let r = p.result in
          inefficient r
          || (base > 0.0 && r.Load_gen.mean_latency >= latency_factor *. base)
        in
        (* the knee is the first point of SUSTAINED saturation: every
           later point must be saturated too. A non-monotone dip back
           under the threshold (a lucky seed at one load) disqualifies
           the candidate — without this, the dip's rebound used to be
           reported as the knee of an already-saturated curve *)
        let rec go i candidate = function
          | [] -> candidate
          | p :: rest ->
              if saturated p then
                go (i + 1) (if candidate = None then Some i else candidate) rest
              else go (i + 1) None rest
        in
        go 1 None rest

(* Engine dispatch for the [--domains] knob: the legacy global-engine
   path stays the default (and the byte-identity baseline for every
   committed anchor); the sharded conservative kernel takes over when
   parallelism is requested or the mesh exceeds the legacy 64-node
   cap. [domains = 1] on a small mesh therefore IS the current
   engine — the single-domain deterministic mode. *)
let use_sharded ?(crossing = `Analytic) ~nodes ~domains () =
  (* the flit crossing is a legacy-engine feature: the sharded kernel
     has no cycle-level wire model, so flit sweeps ignore [domains] *)
  crossing = `Analytic && (domains > 1 || nodes > 64)

let run ?(loads = default_loads) ?probe ?(nodes = 16)
    ?(pattern = Pattern.Uniform) ?(msg_bytes = 256) ?(warmup_cycles = 2_000)
    ?(window_cycles = 50_000) ?(link_contention = true)
    ?(routing = `Dimension_order)
    ?(link_per_word = Load_gen.default_config.Load_gen.link_per_word)
    ?(vc_count = Load_gen.default_config.Load_gen.vc_count)
    ?(rx_credits = Load_gen.default_config.Load_gen.rx_credits)
    ?(crossing = Load_gen.default_config.Load_gen.crossing)
    ?(flit_words = Load_gen.default_config.Load_gen.flit_words)
    ?(seed = 42) ?(domains = 1) () =
  if loads = [] then invalid_arg "Sweep.run: empty load list";
  List.iter
    (fun l -> if not (l > 0.0) then invalid_arg "Sweep.run: loads must be > 0")
    loads;
  if domains < 1 then invalid_arg "Sweep.run: domains must be >= 1";
  let sharded = use_sharded ~crossing ~nodes ~domains () in
  (* per-source capacity: one initiation every [send_cycles]; a load
     fraction maps to that share of the capacity rate *)
  let send_cycles = Load_gen.calibrate ~msg_bytes () in
  let points =
    List.map
      (fun load ->
        let per_kcycle = load *. 1000.0 /. float_of_int send_cycles in
        let cfg =
          {
            Load_gen.nodes;
            pattern;
            arrival = Arrival.Poisson { per_kcycle };
            msg_bytes;
            warmup_cycles;
            window_cycles;
            link_contention;
            routing;
            link_per_word;
            vc_count;
            rx_credits;
            crossing;
            flit_words;
            seed;
          }
        in
        let result =
          if sharded then Shard_gen.run ~domains ~send_cycles cfg
          else Load_gen.run ?probe cfg
        in
        { load; result })
      loads
  in
  let knee_index = detect_knee points in
  {
    send_cycles;
    points;
    knee_index;
    knee_load =
      Option.map (fun i -> (List.nth points i).load) knee_index;
  }
