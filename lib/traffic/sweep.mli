(** Saturation sweep: step offered load, run one {!Load_gen} mesh per
    point, and find the knee of the latency-vs-offered-load curve.

    Offered load is expressed as a fraction of one source's initiation
    capacity (a calibrated real user-level send every [send_cycles]
    cycles = load 1.0), so the x-axis is stable across message sizes
    and cost-model changes. *)

type point = { load : float; result : Load_gen.result }

type outcome = {
  send_cycles : int;  (** calibrated per-message initiation cost *)
  points : point list;  (** one per requested load, in order *)
  knee_index : int option;
  knee_load : float option;
}

val default_loads : float list

val latency_factor : float
(** Knee rule 1: mean latency at least this multiple of the lightest
    point's mean. *)

val min_efficiency : float
(** Knee rule 2: delivered/offered below this fraction. *)

val detect_knee : point list -> int option
(** Index of the first point of {e sustained} saturation: the first
    point saturated under either rule above with every later point
    saturated too. A non-monotone dip back under the threshold (one
    lucky seed mid-curve) disqualifies earlier candidates, so a dip's
    rebound is never reported as the knee. The lightest point anchors
    the latency baseline, so it must itself pass the efficiency test:
    if it does not, the whole curve starts saturated and the knee is
    [Some 0] (no later point is compared against the saturated
    baseline). *)

val use_sharded :
  ?crossing:Udma_shrimp.Router.crossing ->
  nodes:int -> domains:int -> unit -> bool
(** Engine dispatch rule for {!run}: the sharded conservative kernel
    ({!Shard_gen}) runs the points when [domains > 1] or
    [nodes > 64]; otherwise the legacy global-engine {!Load_gen} path
    does — so [domains = 1] on a small mesh is byte-identical to the
    engine every committed anchor was produced on. The [`Flit]
    crossing (default [`Analytic]) always stays on the legacy engine:
    the sharded kernel has no cycle-level wire model, so flit sweeps
    ignore [domains]. *)

val run :
  ?loads:float list ->
  ?probe:(Udma_sim.Engine.t -> unit) ->
  ?nodes:int ->
  ?pattern:Pattern.t ->
  ?msg_bytes:int ->
  ?warmup_cycles:int ->
  ?window_cycles:int ->
  ?link_contention:bool ->
  ?routing:Udma_shrimp.Router.routing ->
  ?link_per_word:int ->
  ?vc_count:int ->
  ?rx_credits:int option ->
  ?crossing:Udma_shrimp.Router.crossing ->
  ?flit_words:int ->
  ?seed:int ->
  ?domains:int ->
  unit ->
  outcome
(** Deterministic under [seed]: equal arguments give equal outcomes,
    byte for byte — and on the sharded path, identical for every
    [domains] value (default 1), which only sets the worker-domain
    count. [probe] observes each point's fresh engine (cycle
    attribution); it is consulted on the legacy path only — the
    sharded kernel has no global engine to probe. Configs outside the
    sharded subset (adaptive routing, several VCs, finite credits,
    closed arrivals) raise [Invalid_argument] when dispatched to it. *)
