module Rng = Udma_sim.Rng

type t =
  | Poisson of { per_kcycle : float }
  | Periodic of { per_kcycle : float }
  | Closed of { clients : int; think_cycles : int }

let open_loop = function Poisson _ | Periodic _ -> true | Closed _ -> false

let check_rate what per_kcycle =
  if not (per_kcycle > 0.0) then
    invalid_arg (Printf.sprintf "Arrival.%s: rate must be positive" what)

let next_gap t rng =
  match t with
  | Poisson { per_kcycle } ->
      check_rate "next_gap" per_kcycle;
      (* exponential inter-arrival, mean 1000/rate cycles; clamped to at
         least one cycle so a chain of arrivals always advances time *)
      let u = Rng.float rng 1.0 in
      let mean = 1000.0 /. per_kcycle in
      max 1 (int_of_float (Float.round (-.mean *. log (1.0 -. u))))
  | Periodic { per_kcycle } ->
      check_rate "next_gap" per_kcycle;
      max 1 (int_of_float (Float.round (1000.0 /. per_kcycle)))
  | Closed _ -> invalid_arg "Arrival.next_gap: closed-loop has no rate"

let to_string = function
  | Poisson { per_kcycle } -> Printf.sprintf "poisson(%.3f/kcyc)" per_kcycle
  | Periodic { per_kcycle } -> Printf.sprintf "periodic(%.3f/kcyc)" per_kcycle
  | Closed { clients; think_cycles } ->
      Printf.sprintf "closed(%d clients, think %d)" clients think_cycles
