(** Spatial traffic patterns: who sends to whom on a [width]-wide 2-D
    mesh of [nodes] nodes (ids row-major, as {!Udma_shrimp.Router}). *)

type t =
  | Uniform  (** each message to a uniformly random other node *)
  | Transpose  (** (x,y) sends to (y,x); diagonal nodes are silent *)
  | Neighbor  (** a uniformly random mesh neighbour *)
  | Hotspot of { node : int; pct : int }
      (** [pct]% of messages to [node], the rest uniform *)

val default_hotspot : t
(** Node 0, 25%. *)

val parse : string -> (t, string) result
(** ["uniform" | "transpose" | "neighbor" | "hotspot" | "hotspot:PCT"]. *)

val to_string : t -> string

val support : t -> width:int -> nodes:int -> src:int -> int list
(** Every destination [src] can ever pick (the channels a load
    generator must pre-establish); empty when the source is silent. *)

val dest : t -> Udma_sim.Rng.t -> width:int -> nodes:int -> src:int -> int option
(** Pick the next destination ([None] = this source is silent, e.g. a
    transpose diagonal). Never returns [src] itself. Draws with the
    legacy {!Udma_sim.Rng.int} reduction, preserving the exact streams
    behind every committed anchor. *)

val dest_unbiased :
  t -> Udma_sim.Rng.t -> width:int -> nodes:int -> src:int -> int option
(** Same choice rule as {!dest} but drawn with
    {!Udma_sim.Rng.int_unbiased} (rejection-sampled, no modulo bias).
    Used by the sharded engine's generator, whose streams carry no
    legacy-anchor compatibility burden. *)
