(** Arrival processes for the load generator.

    Open-loop processes inject at a configured rate regardless of
    delivery (the saturation-sweep workhorse); the closed-loop process
    models [clients] request/response clients that wait for their
    message to be delivered, think, and send again. All are
    deterministic given a {!Udma_sim.Rng} stream. *)

type t =
  | Poisson of { per_kcycle : float }
      (** Memoryless arrivals, [per_kcycle] messages per 1000 cycles
          per source. *)
  | Periodic of { per_kcycle : float }
      (** Deterministic-rate arrivals at the same mean spacing. *)
  | Closed of { clients : int; think_cycles : int }
      (** N clients per mesh (round-robin over nodes), each waiting
          for delivery then thinking [think_cycles] before re-sending. *)

val open_loop : t -> bool

val next_gap : t -> Udma_sim.Rng.t -> int
(** Next inter-arrival gap in cycles (at least 1). Raises
    [Invalid_argument] for {!Closed} (clients pace themselves) or a
    non-positive rate. *)

val to_string : t -> string
