module Rng = Udma_sim.Rng
module Shard = Udma_sim.Shard
module Router = Udma_shrimp.Router

(* Sharded counterpart of {!Load_gen}: the same open-loop service-model
   workload, rebuilt hop-granularly on the conservative {!Shard}
   kernel so it parallelises across OCaml domains and scales past the
   legacy 64-node cap (up to 32×32).

   Topology: one shard per mesh row. Under dimension-order routing a
   packet walks X first (links within one row) and then Y (links
   between adjacent rows), so every cross-shard edge carries at least
   one hop of wire latency — [per_hop_cycles] is the natural
   conservative lookahead. The legacy router instead claims a packet's
   whole path atomically at send time against global link state, which
   is exactly what cannot be sharded; here each link claim is its own
   event at the link's owning shard, so contention is resolved in
   event order per link. The two models agree on uncontended latency
   (both telescope to base + hops·per_hop + words·per_word) but
   resolve contention differently, so sharded results are anchored
   separately (BENCH_sim.json) rather than against the legacy knees.

   Determinism: per-node RNG streams come from {!Rng.substream} (and
   draws use the unbiased reduction), so they depend only on
   (seed, node); everything else is per-shard state plus the kernel's
   partition-independent merge. Results are byte-identical for every
   [domains] value. *)

type kernel_stats = {
  events : int;  (** events executed across all shards *)
  windows : int;  (** conservative windows (barrier rounds) *)
  cross_posts : int;  (** cross-shard messages during the run *)
  shards : int;
}

let max_nodes = 1024

(* Cost model shared with the legacy router. *)
let base_cycles = Router.default_config.Router.base_cycles
let per_hop_cycles = Router.default_config.Router.per_hop_cycles

let validate (cfg : Load_gen.config) =
  if cfg.nodes < 2 || cfg.nodes > max_nodes then
    invalid_arg
      (Printf.sprintf "Shard_gen: nodes must be in 2..%d" max_nodes);
  if not (Router.valid_nodes cfg.nodes) then
    invalid_arg
      "Shard_gen: nodes must fill complete mesh rows (16, 64, 256, 1024, ...)";
  if cfg.msg_bytes <= 0 || cfg.msg_bytes land 3 <> 0 || cfg.msg_bytes > 4092
  then
    invalid_arg
      "Shard_gen: msg_bytes must be a positive 4-byte multiple <= 4092";
  if cfg.link_per_word < 1 then
    invalid_arg "Shard_gen: link_per_word must be >= 1";
  (match cfg.routing with
  | `Dimension_order -> ()
  | `Minimal_adaptive ->
      invalid_arg
        "Shard_gen: the sharded engine supports dimension-order routing only \
         (adaptive choice reads remote link state mid-walk)");
  if cfg.vc_count <> 1 then
    invalid_arg "Shard_gen: the sharded engine supports a single VC per link";
  if cfg.rx_credits <> None then
    invalid_arg
      "Shard_gen: the sharded engine does not model finite rx credits \
       (the injection gate reads remote deposit state)";
  if cfg.crossing <> `Analytic then
    invalid_arg
      "Shard_gen: the sharded engine has no cycle-level wire model; the flit \
       crossing runs on the legacy engine";
  if not (Arrival.open_loop cfg.arrival) then
    invalid_arg
      "Shard_gen: closed-loop arrivals need sub-lookahead delivery feedback; \
       use the legacy engine";
  if cfg.window_cycles <= 0 then
    invalid_arg "Shard_gen: window_cycles must be positive";
  if cfg.warmup_cycles < 0 then
    invalid_arg "Shard_gen: warmup_cycles must be non-negative"

(* One directed mesh link, owned by the shard of its source node. *)
type link = {
  l_from : int;
  l_to : int;
  mutable busy_until : int;
  mutable inflight : int;
  mutable max_depth : int;
  mutable xmits : int;
  mutable busy_cycles : int;
  mutable wait_cycles : int;
}

(* Per-shard accumulators: each record is touched only by its owning
   shard while the kernel runs, so no synchronisation is needed. *)
type shard_stats = {
  mutable injected : int;
  mutable launched : int;
  mutable delivered : int;
  mutable lats : int list;
  last_arrival : (int * int, int) Hashtbl.t;
}

type source = {
  src : int;
  rng : Rng.t;
  q : (int * int) Queue.t; (* (dst, born) in arrival order *)
  mutable serving : bool;
  mutable next_pid : int;
}

(* Packet ids order same-cycle events of different packets at a merge;
   they only need to be unique and deterministic. *)
let pid_stride = 1 lsl 20

let run_stats ?(domains = 1) ?send_cycles (cfg : Load_gen.config) =
  validate cfg;
  if domains < 1 then invalid_arg "Shard_gen: domains must be >= 1";
  let send_cycles =
    match send_cycles with
    | Some c -> c
    | None -> Load_gen.calibrate ~msg_bytes:cfg.msg_bytes ()
  in
  let nodes = cfg.nodes in
  let width = Router.mesh_width nodes in
  let rows = nodes / width in
  let words = (cfg.msg_bytes + 3) / 4 in
  let occ = words * cfg.link_per_word in
  let k = Shard.create ~lookahead:per_hop_cycles ~shards:rows () in
  let row_of node = node / width in
  let node_id ~x ~y = x + (y * width) in
  let measure_start = cfg.warmup_cycles in
  let t_end = cfg.warmup_cycles + cfg.window_cycles in
  (* directed links encoded node*4 + direction (+x, -x, +y, -y) *)
  let links = Array.make (nodes * 4) None in
  let link_for a b =
    let dir =
      if b = a + 1 then 0
      else if b = a - 1 then 1
      else if b = a + width then 2
      else 3
    in
    let i = (a * 4) + dir in
    match links.(i) with
    | Some l -> l
    | None ->
        let l =
          { l_from = a; l_to = b; busy_until = 0; inflight = 0; max_depth = 0;
            xmits = 0; busy_cycles = 0; wait_cycles = 0 }
        in
        links.(i) <- Some l;
        l
  in
  let stats =
    Array.init rows (fun _ ->
        { injected = 0; launched = 0; delivered = 0; lats = [];
          last_arrival = Hashtbl.create 64 })
  in
  let deliver ~psrc ~pdst ~born () =
    let shard = row_of pdst in
    let st = stats.(shard) in
    let now = Shard.now k ~shard in
    (* per-pair in-order clamp, as the legacy router's [last_arrival]:
       a no-op under dimension-order + FIFO links, kept as the stated
       guarantee *)
    let at =
      match Hashtbl.find_opt st.last_arrival (psrc, pdst) with
      | Some last -> max now (last + 1)
      | None -> now
    in
    Hashtbl.replace st.last_arrival (psrc, pdst) at;
    if born >= measure_start && at < t_end then begin
      st.delivered <- st.delivered + 1;
      st.lats <- (at - born) :: st.lats
    end
  in
  (* Header walk: each link claim is one event at the link owner's
     shard, firing when the header reaches the link entrance. With an
     idle mesh this telescopes to base + hops·per_hop + words·per_word,
     the legacy closed form. *)
  let rec hop ~x ~y ~pid ~psrc ~pdst ~born ~head =
    let dx = pdst mod width and dy = pdst / width in
    let a = node_id ~x ~y in
    let step v goal = if v < goal then v + 1 else v - 1 in
    let x', y' = if x <> dx then (step x dx, y) else (x, step y dy) in
    let b = node_id ~x:x' ~y:y' in
    let l = link_for a b in
    let start = max head l.busy_until in
    let wait = start - head in
    if wait > 0 then l.wait_cycles <- l.wait_cycles + wait;
    l.inflight <- l.inflight + 1;
    if l.inflight > l.max_depth then l.max_depth <- l.inflight;
    l.busy_until <- start + occ;
    l.xmits <- l.xmits + 1;
    l.busy_cycles <- l.busy_cycles + occ;
    Shard.schedule k ~shard:y ~key:pid ~delay:(start + occ - head) (fun () ->
        l.inflight <- l.inflight - 1);
    if b = pdst then
      Shard.post k ~src:y ~dst:y' ~key:pid
        ~delay:(start + per_hop_cycles + occ - head)
        (deliver ~psrc ~pdst ~born)
    else
      Shard.post k ~src:y ~dst:y' ~key:pid
        ~delay:(start + per_hop_cycles - head)
        (fun () ->
          hop ~x:x' ~y:y' ~pid ~psrc ~pdst ~born
            ~head:(start + per_hop_cycles))
  in
  let start_walk ~pid ~psrc ~pdst ~born =
    let sy = psrc / width in
    let now = Shard.now k ~shard:sy in
    if psrc = pdst then
      Shard.schedule k ~shard:sy ~key:pid ~delay:(base_cycles + occ)
        (deliver ~psrc ~pdst ~born)
    else if cfg.link_contention then
      Shard.schedule k ~shard:sy ~key:pid ~delay:base_cycles (fun () ->
          hop ~x:(psrc mod width) ~y:sy ~pid ~psrc ~pdst ~born
            ~head:(now + base_cycles))
    else begin
      let hops =
        abs ((psrc mod width) - (pdst mod width)) + abs (sy - (pdst / width))
      in
      Shard.post k ~src:sy ~dst:(pdst / width) ~key:pid
        ~delay:(base_cycles + (hops * per_hop_cycles) + occ)
        (deliver ~psrc ~pdst ~born)
    end
  in
  (* service model: one initiation every [send_cycles] per source, as
     the legacy generator *)
  let rec pump (s : source) =
    if (not s.serving) && not (Queue.is_empty s.q) then begin
      s.serving <- true;
      Shard.schedule k ~shard:(row_of s.src) ~delay:send_cycles (fun () ->
          launch s)
    end
  and launch (s : source) =
    let dst, born = Queue.pop s.q in
    let pid = (s.src * pid_stride) + s.next_pid in
    s.next_pid <- s.next_pid + 1;
    stats.(row_of s.src).launched <- stats.(row_of s.src).launched + 1;
    start_walk ~pid ~psrc:s.src ~pdst:dst ~born;
    s.serving <- false;
    pump s
  in
  let sources =
    Array.init nodes (fun src ->
        { src; rng = Rng.substream cfg.seed src; q = Queue.create ();
          serving = false; next_pid = 0 })
  in
  let enqueue s dst =
    let shard = row_of s.src in
    let now = Shard.now k ~shard in
    if now >= measure_start && now < t_end then
      stats.(shard).injected <- stats.(shard).injected + 1;
    Queue.push (dst, now) s.q;
    pump s
  in
  let rec arrive s time =
    if time < t_end then
      Shard.schedule_at k ~shard:(row_of s.src) ~time (fun () ->
          (match
             Pattern.dest_unbiased cfg.pattern s.rng ~width ~nodes ~src:s.src
           with
          | Some dst -> enqueue s dst
          | None -> ());
          arrive s (Shard.now k ~shard:(row_of s.src)
                    + Arrival.next_gap cfg.arrival s.rng))
  in
  Array.iter (fun s -> arrive s (Arrival.next_gap cfg.arrival s.rng)) sources;
  Shard.run ~domains k;
  (* deterministic merge: sums, sorted latencies, links by (from, to) *)
  let injected = Array.fold_left (fun a st -> a + st.injected) 0 stats in
  let launched = Array.fold_left (fun a st -> a + st.launched) 0 stats in
  let delivered = Array.fold_left (fun a st -> a + st.delivered) 0 stats in
  let latencies =
    Array.of_list (Array.fold_left (fun a st -> List.rev_append st.lats a) [] stats)
  in
  Array.sort compare latencies;
  let n = Array.length latencies in
  let mean_latency =
    if n = 0 then 0.0
    else float_of_int (Array.fold_left ( + ) 0 latencies) /. float_of_int n
  in
  let link_stats =
    Array.to_list links
    |> List.filter_map (fun l -> l)
    |> List.filter (fun l -> l.xmits > 0)
    |> List.sort (fun a b -> compare (a.l_from, a.l_to) (b.l_from, b.l_to))
    |> List.map (fun l ->
           { Router.from_node = l.l_from; to_node = l.l_to; xmits = l.xmits;
             busy_cycles = l.busy_cycles; wait_cycles = l.wait_cycles;
             max_depth = l.max_depth })
  in
  let per_kcycle count =
    1000.0 *. float_of_int count
    /. float_of_int (cfg.window_cycles * nodes)
  in
  let result =
    {
      Load_gen.nodes;
      width;
      send_cycles;
      window_cycles = cfg.window_cycles;
      injected;
      launched;
      delivered;
      offered_per_kcycle = per_kcycle injected;
      delivered_per_kcycle = per_kcycle delivered;
      latencies;
      mean_latency;
      p50_latency = Load_gen.percentile_sorted latencies 50.0;
      p95_latency = Load_gen.percentile_sorted latencies 95.0;
      p99_latency = Load_gen.percentile_sorted latencies 99.0;
      max_latency = (if n = 0 then 0 else latencies.(n - 1));
      link_wait_cycles =
        List.fold_left
          (fun a (l : Router.link_stat) -> a + l.Router.wait_cycles)
          0 link_stats;
      link_max_depth =
        List.fold_left
          (fun a (l : Router.link_stat) -> max a l.Router.max_depth)
          0 link_stats;
      credit_stalls = 0;
      credit_stall_cycles = 0;
      links = link_stats;
      flit_hol_cycles = 0;
      flit_occupancy = [||];
    }
  in
  ( result,
    {
      events = Shard.events_executed k;
      windows = Shard.windows_run k;
      cross_posts = Shard.messages_posted k;
      shards = rows;
    } )

let run ?domains ?send_cycles cfg = fst (run_stats ?domains ?send_cycles cfg)
