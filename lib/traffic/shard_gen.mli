(** Sharded load generator on the conservative parallel kernel.

    The same open-loop service-model workload as {!Load_gen}, rebuilt
    hop-granularly on {!Udma_sim.Shard} (one shard per mesh row, the
    link hop latency as lookahead) so an E11-class sweep parallelises
    across OCaml domains and scales to 32×32 meshes — past the legacy
    engine's 64-node cap.

    Model differences against the legacy path, and why:
    - Link claims happen hop by hop in event order at each link's
      owning shard, where the legacy router claims a packet's whole
      path atomically at send time against global link state (the
      unshardable part). Both telescope to the same uncontended
      latency; under contention they resolve queueing differently, so
      sharded results are anchored in [BENCH_sim.json], not against
      legacy knees.
    - Supported config subset: dimension-order routing, one VC,
      unlimited rx credits, open-loop arrivals, no link faults.
      Anything else raises [Invalid_argument] naming the legacy
      engine.
    - Per-node RNG streams come from {!Udma_sim.Rng.substream} with
      unbiased draws, so they depend only on (seed, node id).

    Results are byte-identical for every [domains] value: the kernel's
    cross-shard merge order is partition-independent, and all stats
    merge through order-insensitive reductions. *)

type kernel_stats = {
  events : int;  (** events executed across all shards *)
  windows : int;  (** conservative windows (barrier rounds) *)
  cross_posts : int;  (** cross-shard messages during the run *)
  shards : int;  (** mesh rows *)
}

val max_nodes : int
(** 1024 (a 32×32 mesh). *)

val validate : Load_gen.config -> unit
(** Raises [Invalid_argument] outside the supported subset above. *)

val run :
  ?domains:int -> ?send_cycles:int -> Load_gen.config -> Load_gen.result
(** [run cfg] drives the sharded mesh and reports in the exact
    {!Load_gen.result} shape (with [credit_stalls = 0]).
    [domains] (default 1) is the worker-domain count; it never affects
    the result, only wall-clock. [send_cycles] is the per-message
    initiation cost; when omitted it is calibrated with a real warm
    send exactly as a legacy run would. *)

val run_stats :
  ?domains:int ->
  ?send_cycles:int ->
  Load_gen.config ->
  Load_gen.result * kernel_stats
(** As {!run}, also returning the kernel's event/window counters for
    the [bench sim] events/sec metric. *)
