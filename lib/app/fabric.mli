(** The shared application fabric: a k×k SHRIMP mesh driven as a
    closed-loop service network (E16).

    One fabric builds a fresh {!Udma_shrimp.System}, spawns one process
    per node and establishes a {!Udma_shrimp.Messaging} channel (export
    + NIPT + proxy grant) for every directed (src, dst) pair an
    application will use. Per-message initiation costs are calibrated
    with {e real} warm user-level sends — contiguous
    ({!Udma_shrimp.Messaging.send_nowait}) and strided
    ({!Udma_shrimp.Messaging.send_strided}, the PR-7 shaped path) — so
    the service model charges exactly what the protected two-reference
    (or three-reference, shaped) sequence costs on this cost model.

    Like {!Udma_traffic.Load_gen}, each node's CPU is modelled as a
    single server: {!post} enqueues a message on the source node's CPU
    queue, the CPU is occupied [cost] cycles per message (its
    calibrated initiation cost, plus any application service time),
    then the payload is handed to the NI with
    {!Udma_shrimp.Messaging.inject} and takes the full simulated path —
    outgoing FIFO, wire, router (VCs, credits, faults, adaptive
    routing), receive-side DMA deposit into the importer's pinned
    buffer. Delivery callbacks fire at deposit time, so end-to-end
    request latencies include source CPU queueing, credit stalls and
    link contention.

    Because replies land in the client's own exported receive buffer
    (deliberate update into client-mapped memory), the read path is
    zero-copy: the client polls cached loads on its own pages; no
    kernel, no interrupt, no receive-side copy. *)

type config = {
  nodes : int;  (** 2..64, complete mesh rows ({!Udma_shrimp.Router.valid_nodes}) *)
  vc_count : int;  (** virtual channels per directed link, 1..4 *)
  rx_credits : int option;  (** deposit slots per (link, VC); [None] = unlimited *)
  routing : Udma_shrimp.Router.routing;
  link_per_word : int;  (** >= 1; >= 2 puts the bottleneck on the links *)
  link_contention : bool;
  seed : int;
}

val default_config : config
(** 16 nodes, 1 VC, 8 credits, dimension-order, [link_per_word] 1,
    contention on, seed 42. *)

type t

val create : config -> pairs:(int * int) list -> t
(** Build the mesh and a channel per directed pair (deduplicated;
    [src = dst] pairs are rejected). Raises [Invalid_argument] on a
    config outside the documented ranges or an empty pair list. *)

val engine : t -> Udma_sim.Engine.t
val nodes : t -> int
val width : t -> int
val now : t -> int
val rng : t -> Udma_sim.Rng.t
(** A fresh independent stream split off the fabric's master RNG. *)

val neighbors : t -> int -> int list
(** Mesh neighbours of a node id (2..4 of them), ascending. *)

val calibrate_send : t -> nbytes:int -> int
(** Cycles one warm contiguous user-level send of [nbytes] costs on
    this fabric (measured once per distinct size, then memoized).
    [nbytes] must be a positive 4-byte multiple <= the channel
    capacity (4092). *)

val calibrate_strided : t -> stride:int -> chunk:int -> nbytes:int -> int
(** Same for one warm {e shaped} (strided) send gathering [chunk]
    bytes every [stride] — the whole span must lie within one page. *)

val post :
  t ->
  src:int ->
  dst:int ->
  nbytes:int ->
  cost:int ->
  ?on_deliver:(int -> unit) ->
  unit ->
  unit
(** Enqueue one [nbytes] message on [src]'s CPU queue. The CPU serves
    queued messages in order, [cost] cycles each; with finite credits
    the hand-off stalls at the router's injection gate until the
    first-hop deposit FIFO has a slot. [on_deliver now] fires when the
    receive-side DMA deposit completes. Raises [Invalid_argument] for
    a pair without a channel or an invalid size. *)

val run_until_idle : t -> unit

(** {1 Seeded link chaos (the mesh [M_link_fault] action, app-level)} *)

val chaos_links : t -> ?period:int -> ?slow_factor:int -> until:int -> unit -> unit
(** Schedule a seeded kill/slow/heal storm: every [period] cycles
    (default 5000) until cycle [until], one random directed mesh link
    is set to [Link_dead], [Link_slow slow_factor] (default 4) or
    healed, with the same 2:2:1 mix as the chaos mesh's
    [M_link_fault]. Delivery still always completes (dead links cross
    at {!Udma_shrimp.Router.dead_crossing_factor}× occupancy), so a
    closed-loop app must drain — the smoke CI asserts exactly that. *)

(** {1 Counters} *)

val launched : t -> int
(** Messages handed to a NI. *)

val delivered : t -> int
(** Delivery callbacks fired. *)

val credit_stalls : t -> int
val credit_stall_cycles : t -> int

val faults_injected : t -> int
(** Chaos link events applied. *)

val payload : t -> nbytes:int -> bytes
(** The deterministic fill injected for [nbytes]-byte messages (for
    receive-buffer verification in tests). *)

val read_payload : t -> src:int -> dst:int -> len:int -> bytes
(** The first [len] bytes of the (src, dst) channel's receive buffer
    — what the zero-copy reader sees (test helper, no cycle cost). *)
