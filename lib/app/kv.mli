(** Sharded key-value store over protected user-level DMA (E16).

    [shards] server shards live on mesh nodes [0 .. shards-1]; every
    node runs [clients_per_node] closed-loop clients. A client draws a
    key, hashes it to a shard (a [hot_pct] share of draws is pinned to
    shard 0 — the hotspot-shard skew), and sends a small request
    through the real UDMA path. The server charges [server_cycles] of
    lookup plus the calibrated reply-initiation cost on its own CPU
    queue, then answers:

    - a {b read} (the common op) replies with the [value_bytes] value
      as a deliberate-update transfer {e into the client's own mapped
      receive buffer} — the zero-copy read path: the value lands in
      client memory by receive-side DMA deposit and the client reads
      it with cached loads; no kernel, no interrupt, no copy;
    - a {b write} carries the value with the request and replies with
      an 8-byte ack.

    Request latency is end to end: client enqueue (think-time expiry)
    to reply deposit, so it includes client CPU queueing, credit
    stalls, link contention and the server's queue. [load] is the
    target fraction of one node's reply-initiation capacity (think
    time = [clients_per_node · send_cycles / load]); the realized
    throughput is reported. Deterministic under the fabric seed. *)

type config = {
  fabric : Fabric.config;
  shards : int;  (** 1..nodes; shard i is served by node i *)
  clients_per_node : int;
  value_bytes : int;  (** 4-byte multiple <= 4092 *)
  req_bytes : int;  (** request size (default 64) *)
  write_pct : int;  (** % of ops that are writes, 0..100 *)
  hot_pct : int;  (** % of key draws pinned to shard 0, 0..100 *)
  server_cycles : int;  (** per-op lookup/update cost on the shard CPU *)
  warmup_cycles : int;
  window_cycles : int;
  load : float;  (** > 0; target fraction of reply-initiation capacity *)
  chaos_links : bool;  (** seeded kill/slow/heal storm during the run *)
}

val default_config : config
(** 16 nodes via {!Fabric.default_config}, shards = nodes, 4 clients
    per node, 2048-byte values, 64-byte requests, 10 % writes, no
    hotspot, 120-cycle server op, 2k warmup, 60k window, load 0.6,
    no chaos. *)

type result = {
  issued : int;  (** requests born inside the window *)
  completed : int;  (** of those, replies delivered *)
  reads : int;
  writes : int;
  stats : Slo.stats;  (** end-to-end request latency, all window ops *)
  cold_stats : Slo.stats;  (** same, ops whose shard is not the hot one *)
  throughput_per_kcycle : float;  (** completed per node per 1000 cycles *)
  send_cycles : int;  (** calibrated reply (value) initiation cost *)
  think_cycles : int;
  credit_stalls : int;
  chaos_events : int;
  drained : bool;  (** every issued request completed after the drain *)
}

val run : ?probe:(Udma_sim.Engine.t -> unit) -> config -> result
(** Deterministic under [config.fabric.seed]; [probe] receives the
    fabric's engine before the run (for cycle-breakdown collection).
    Raises [Invalid_argument] on a config outside the documented
    ranges. *)
