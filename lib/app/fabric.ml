module Engine = Udma_sim.Engine
module Rng = Udma_sim.Rng
module Metrics = Udma_obs.Metrics
module Scheduler = Udma_os.Scheduler
module Kernel = Udma_os.Kernel
module System = Udma_shrimp.System
module Router = Udma_shrimp.Router
module Messaging = Udma_shrimp.Messaging
module Network_interface = Udma_shrimp.Network_interface

type config = {
  nodes : int;
  vc_count : int;
  rx_credits : int option;
  routing : Router.routing;
  link_per_word : int;
  link_contention : bool;
  seed : int;
}

let default_config =
  {
    nodes = 16;
    vc_count = 1;
    rx_credits = Some 8;
    routing = `Dimension_order;
    link_per_word = 1;
    link_contention = true;
    seed = 42;
  }

type pending = {
  dst : int;
  nbytes : int;
  cost : int;
  on_deliver : (int -> unit) option;
}

type cpu_q = { node : int; q : pending Queue.t; mutable serving : bool }

type t = {
  cfg : config;
  sys : System.t;
  engine : Engine.t;
  router : Router.t;
  width : int;
  procs : Udma_os.Proc.t array;
  channels : Messaging.channel option array array;
  cpus : cpu_q array;
  inflight : (int * int, (int -> unit) option Queue.t) Hashtbl.t;
  payloads : (int, bytes) Hashtbl.t;
  send_costs : (int, int) Hashtbl.t;  (* nbytes -> calibrated cycles *)
  master : Rng.t;
  chaos_rng : Rng.t;
  mutable launched : int;
  mutable delivered : int;
  mutable credit_stalls : int;
  mutable credit_stall_cycles : int;
  mutable faults_injected : int;
}

let capacity = 4092 (* one-page channel minus the flag word *)

let validate (cfg : config) =
  if cfg.nodes < 2 || cfg.nodes > 64 then
    invalid_arg "Fabric: nodes must be in 2..64";
  if not (Router.valid_nodes cfg.nodes) then
    invalid_arg "Fabric: nodes must fill complete mesh rows";
  if cfg.vc_count < 1 || cfg.vc_count > 4 then
    invalid_arg "Fabric: vc_count must be in 1..4";
  (match cfg.rx_credits with
  | Some n when n < 1 -> invalid_arg "Fabric: rx_credits must be >= 1"
  | Some _ | None -> ());
  if cfg.link_per_word < 1 then invalid_arg "Fabric: link_per_word must be >= 1"

let check_nbytes nbytes =
  if nbytes <= 0 || nbytes land 3 <> 0 || nbytes > capacity then
    invalid_arg
      (Printf.sprintf
         "Fabric: nbytes %d must be a positive 4-byte multiple <= %d" nbytes
         capacity)

let channel t src dst =
  match t.channels.(src).(dst) with
  | Some ch -> ch
  | None ->
      invalid_arg (Printf.sprintf "Fabric: no channel for pair %d->%d" src dst)

let inflight_q t key =
  match Hashtbl.find_opt t.inflight key with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      Hashtbl.add t.inflight key q;
      q

(* Deterministic per-size fill; also what tests check in the importer's
   receive buffer to confirm the zero-copy deposit. *)
let payload t ~nbytes =
  match Hashtbl.find_opt t.payloads nbytes with
  | Some b -> b
  | None ->
      let b = Bytes.init nbytes (fun i -> Char.chr ((i + nbytes) land 0xff)) in
      Hashtbl.add t.payloads nbytes b;
      b

let create (cfg : config) ~pairs =
  validate cfg;
  if pairs = [] then invalid_arg "Fabric: empty pair list";
  List.iter
    (fun (s, d) ->
      if s = d || s < 0 || d < 0 || s >= cfg.nodes || d >= cfg.nodes then
        invalid_arg (Printf.sprintf "Fabric: bad pair %d->%d" s d))
    pairs;
  let sys =
    System.create
      ~config:
        { System.default_config with
          System.router =
            { Router.default_config with
              Router.link_contention = cfg.link_contention;
              Router.routing = cfg.routing;
              Router.per_word_cycles = cfg.link_per_word;
              Router.vc_count = cfg.vc_count;
              Router.rx_credits = cfg.rx_credits } }
      ~nodes:cfg.nodes ()
  in
  let engine = System.engine sys in
  let router = System.router sys in
  let procs =
    Array.init cfg.nodes (fun i ->
        Scheduler.spawn (System.node sys i).System.machine
          ~name:(Printf.sprintf "app%d" i))
  in
  let channels = Array.make_matrix cfg.nodes cfg.nodes None in
  let next_index = Array.make cfg.nodes 0 in
  List.iter
    (fun (src, dst) ->
      if channels.(src).(dst) = None then begin
        let ch =
          Messaging.connect sys ~sender:(src, procs.(src))
            ~receiver:(dst, procs.(dst)) ~first_index:next_index.(src) ~pages:1
            ()
        in
        next_index.(src) <- next_index.(src) + 1;
        channels.(src).(dst) <- Some ch
      end)
    pairs;
  let master = Rng.create cfg.seed in
  let t =
    {
      cfg;
      sys;
      engine;
      router;
      width = Router.width router;
      procs;
      channels;
      cpus =
        Array.init cfg.nodes (fun node ->
            { node; q = Queue.create (); serving = false });
      inflight = Hashtbl.create 64;
      payloads = Hashtbl.create 8;
      send_costs = Hashtbl.create 8;
      master;
      chaos_rng = Rng.split master;
      launched = 0;
      delivered = 0;
      credit_stalls = 0;
      credit_stall_cycles = 0;
      faults_injected = 0;
    }
  in
  (* delivery sinks: receive the deposit, then fire the matched
     callback. Per-(src,dst) FIFO matching is sound because every
     message is one packet and the router delivers in order per pair
     (the arrival clamp holds under adaptive routing and VCs too).
     Unmatched packets — calibration sends, flag words — fall through. *)
  for d = 0 to cfg.nodes - 1 do
    let node = System.node sys d in
    Router.register router ~node_id:d (fun pkt ->
        Network_interface.receive node.System.ni pkt;
        let q = inflight_q t (pkt.Udma_shrimp.Packet.src_node, d) in
        if not (Queue.is_empty q) then begin
          t.delivered <- t.delivered + 1;
          Metrics.incr (Engine.metrics engine) "app.delivered";
          match Queue.pop q with
          | Some k -> k (Engine.now engine)
          | None -> ()
        end)
  done;
  t

let engine t = t.engine
let nodes t = t.cfg.nodes
let width t = t.width
let now t = Engine.now t.engine
let rng t = Rng.split t.master

let neighbors t id =
  let w = t.width in
  let x = id mod w and y = id / w in
  List.filter_map
    (fun (nx, ny) ->
      if nx < 0 || ny < 0 || nx >= w then None
      else
        let nid = nx + (ny * w) in
        if nid >= t.cfg.nodes then None else Some nid)
    [ (x, y - 1); (x - 1, y); (x + 1, y); (x, y + 1) ]
  |> List.sort compare

(* One warm measured send on the first established channel out of some
   node — the per-message CPU occupancy the service model charges.
   Calibration packets reach the sinks unmatched and are ignored. *)
let first_pair t =
  let rec go src =
    if src >= t.cfg.nodes then assert false (* create rejects empty pairs *)
    else
      match
        List.find_map
          (fun d -> Option.map (fun _ -> d) t.channels.(src).(d))
          (List.init t.cfg.nodes Fun.id)
      with
      | Some dst -> (src, dst)
      | None -> go (src + 1)
  in
  go 0

let measure t send =
  let warm () =
    match send () with
    | Ok _ -> ()
    | Error e ->
        failwith
          (Format.asprintf "Fabric: calibration send failed: %a"
             Messaging.pp_send_error e)
  in
  warm ();
  System.run_until_idle t.sys;
  let t0 = Engine.now t.engine in
  warm ();
  let dt = Engine.now t.engine - t0 in
  System.run_until_idle t.sys;
  dt

let calibration_buf t src =
  let m = (System.node t.sys src).System.machine in
  let buf = Kernel.alloc_buffer m t.procs.(src) ~bytes:4096 in
  Kernel.write_user m t.procs.(src) ~vaddr:buf
    (Bytes.init 4096 (fun i -> Char.chr (i land 0xff)));
  (Kernel.user_cpu m t.procs.(src), buf)

let calibrate_send t ~nbytes =
  check_nbytes nbytes;
  match Hashtbl.find_opt t.send_costs nbytes with
  | Some c -> c
  | None ->
      let src, dst = first_pair t in
      let ch = channel t src dst in
      let cpu, buf = calibration_buf t src in
      let c =
        measure t (fun () ->
            Messaging.send_nowait ch cpu ~src_vaddr:buf ~nbytes ())
      in
      Hashtbl.add t.send_costs nbytes c;
      c

let calibrate_strided t ~stride ~chunk ~nbytes =
  check_nbytes nbytes;
  if chunk <= 0 || stride < chunk then
    invalid_arg "Fabric.calibrate_strided: need 0 < chunk <= stride";
  let reps = (nbytes + chunk - 1) / chunk in
  if ((reps - 1) * stride) + chunk > 4096 then
    invalid_arg "Fabric.calibrate_strided: strided span exceeds the source page";
  let src, dst = first_pair t in
  let ch = channel t src dst in
  let cpu, buf = calibration_buf t src in
  measure t (fun () ->
      Messaging.send_strided ch cpu ~src_vaddr:buf ~stride ~chunk ~nbytes ())

(* service model: each node's CPU initiates queued messages one at a
   time, [cost] cycles each, then hands the payload to the NI — first
   consulting the router's injection gate when credits are finite, so
   an out-of-slots first hop stalls the source instead of queueing on
   the wire without bound. *)
let rec pump t (s : cpu_q) =
  if (not s.serving) && not (Queue.is_empty s.q) then begin
    s.serving <- true;
    let p = Queue.peek s.q in
    Engine.schedule t.engine ~delay:p.cost (fun _ -> launch t s)
  end

and launch t (s : cpu_q) =
  let p = Queue.peek s.q in
  let now = Engine.now t.engine in
  let ready = Router.injection_ready t.router ~src:s.node ~dst:p.dst in
  if ready > now then begin
    t.credit_stalls <- t.credit_stalls + 1;
    t.credit_stall_cycles <- t.credit_stall_cycles + (ready - now);
    Metrics.incr (Engine.metrics t.engine) "app.credit_stalls";
    Engine.schedule_at t.engine ~time:ready (fun _ -> launch t s)
  end
  else begin
    let p = Queue.pop s.q in
    Queue.push p.on_deliver (inflight_q t (s.node, p.dst));
    Messaging.inject (channel t s.node p.dst) (payload t ~nbytes:p.nbytes);
    t.launched <- t.launched + 1;
    Metrics.incr (Engine.metrics t.engine) "app.launched";
    s.serving <- false;
    pump t s
  end

let post t ~src ~dst ~nbytes ~cost ?on_deliver () =
  check_nbytes nbytes;
  if cost < 1 then invalid_arg "Fabric.post: cost must be >= 1";
  ignore (channel t src dst);
  Queue.push { dst; nbytes; cost; on_deliver } t.cpus.(src).q;
  pump t t.cpus.(src)

let run_until_idle t = System.run_until_idle t.sys

(* Seeded link chaos: the mesh harness's M_link_fault mix (kill /
   slow / heal at 2:2:1) applied on a period, app-level. Dead links
   still deliver (at dead_crossing_factor x occupancy), so closed
   loops always drain. *)
let chaos_links t ?(period = 5_000) ?(slow_factor = 4) ~until () =
  if period < 1 then invalid_arg "Fabric.chaos_links: period must be >= 1";
  let rng = t.chaos_rng in
  let rec step time =
    if time < until then
      Engine.schedule_at t.engine ~time (fun _ ->
          let from_node = Rng.int rng t.cfg.nodes in
          (match neighbors t from_node with
          | [] -> ()
          | ns ->
              let to_node = List.nth ns (Rng.int rng (List.length ns)) in
              let fault =
                match Rng.int rng 5 with
                | 0 | 1 -> Router.Link_dead
                | 2 | 3 -> Router.Link_slow slow_factor
                | _ -> Router.Link_ok
              in
              Router.set_link_fault t.router ~from_node ~to_node fault;
              t.faults_injected <- t.faults_injected + 1;
              Metrics.incr (Engine.metrics t.engine) "app.chaos_link_events");
          step (time + period))
  in
  step (Engine.now t.engine + period)

let launched t = t.launched
let delivered t = t.delivered
let credit_stalls t = t.credit_stalls
let credit_stall_cycles t = t.credit_stall_cycles
let faults_injected t = t.faults_injected

let read_payload t ~src ~dst ~len = Messaging.read_payload (channel t src dst) ~len
