type stats = {
  count : int;
  mean : float;
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
  max : int;
}

(* Exact nearest-rank percentile over a sorted sample — deliberately
   the same convention as Udma_protect.Tenants.percentile (the value
   at 1-based rank ceil(p/100 * n)), so app percentiles and tenant
   percentiles compare like for like. test_obs pins the convention
   against Udma_obs.Metrics.percentile's bucket-edge estimate. *)
let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0
  else begin
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))
  end

let empty_stats =
  { count = 0; mean = 0.0; p50 = 0; p95 = 0; p99 = 0; p999 = 0; max = 0 }

let stats_of latencies =
  let n = Array.length latencies in
  if n = 0 then empty_stats
  else begin
    let sorted = Array.copy latencies in
    Array.sort compare sorted;
    {
      count = n;
      mean = float_of_int (Array.fold_left ( + ) 0 sorted) /. float_of_int n;
      p50 = percentile sorted 50.0;
      p95 = percentile sorted 95.0;
      p99 = percentile sorted 99.0;
      p999 = percentile sorted 99.9;
      max = sorted.(n - 1);
    }
  end

let default_slo = 5.0

let detect_knee ?(slo = default_slo) points =
  if not (slo > 0.0) then invalid_arg "Slo.detect_knee: slo must be > 0";
  match points with
  | [] -> None
  | (_, first) :: _ when first.count = 0 -> None
  | (_, first) :: _ ->
      let budget = slo *. float_of_int first.p50 in
      let violates (_, s) = s.count > 0 && float_of_int s.p99 > budget in
      (* first point of SUSTAINED violation: every later point must
         violate too (one lucky load mid-curve resets the candidate),
         mirroring Udma_traffic.Sweep.detect_knee *)
      let rec go i candidate = function
        | [] -> candidate
        | p :: rest ->
            if violates p then
              go (i + 1) (if candidate = None then Some i else candidate) rest
            else go (i + 1) None rest
      in
      go 0 None points
