(** Halo-exchange collective over shaped user-level transfers (E16).

    Every mesh node owns a [tile_rows × row_bytes] tile of a
    distributed grid and runs a BSP stencil loop: compute on the tile,
    then exchange one-deep halos with each mesh neighbour and wait for
    theirs. North/south halos are whole boundary rows — contiguous
    sends of [row_bytes]. East/west halos are boundary {e columns}:
    [halo_cols] bytes out of every row, sent with the shaped
    (strided) descriptor path of {!Udma_shrimp.Messaging.send_strided}
    — [chunk = halo_cols], [stride = row_bytes], one transfer per
    iteration instead of [tile_rows] little sends.

    Iteration [k] at a node completes when the halos tagged [k] from
    {e all} its neighbours have been deposited (per-neighbour
    cumulative receive counters; neighbours drift by at most one
    iteration, so counts disambiguate). The per-(node, iteration)
    latency sample is barrier time: iteration start to last halo
    arrival, so stragglers, credit stalls and link contention all land
    in the tail.

    [load] sets compute per iteration from the max-degree node's send
    work [w] (two strided + two contiguous initiations):
    [compute = w·(1/load − 1)], making [load] the fraction of an
    interior node's iteration the CPU spends initiating transfers —
    crank it up and the exchange, not the stencil, dominates. *)

type config = {
  fabric : Fabric.config;
  tile_rows : int;  (** rows per tile; strided span must fit the page *)
  row_bytes : int;  (** bytes per tile row (4-byte multiple) *)
  halo_cols : int;  (** east/west halo bytes per row (4-byte multiple) *)
  iterations : int;  (** measured BSP iterations, >= 1 *)
  warmup_iters : int;  (** leading iterations excluded from stats *)
  load : float;  (** in (0, 1]; send-work fraction of an iteration *)
}

val default_config : config
(** 16 nodes, 32×128-byte tiles, 16-byte east/west halos, 30
    iterations after 2 warmup, load 0.5. *)

type result = {
  iterations : int;  (** measured (post-warmup) iterations *)
  stats : Slo.stats;  (** per-(node, iteration) barrier latency *)
  makespan_cycles : int;  (** first issue to global completion *)
  strided_send_cycles : int;  (** calibrated east/west initiation *)
  contiguous_send_cycles : int;  (** calibrated north/south initiation *)
  compute_cycles : int;  (** derived per-iteration compute *)
  halos_sent : int;
  credit_stalls : int;
  drained : bool;  (** every node finished every iteration *)
}

val run : ?probe:(Udma_sim.Engine.t -> unit) -> config -> result
(** Deterministic under [config.fabric.seed]; [probe] receives the
    fabric's engine before the run (for cycle-breakdown collection).
    Raises [Invalid_argument] on a config outside the documented
    ranges (including a strided span that would overrun the source
    page). *)
