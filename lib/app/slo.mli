(** Tail-latency statistics and SLO-knee detection for the application
    workloads (E16).

    Every app records one end-to-end latency sample per request and
    summarises a load point as {!stats}. The percentile convention is
    the exact nearest-rank one of {!Udma_protect.Tenants.percentile}
    (the value at 1-based rank [ceil (p/100 · n)]): an actual
    observation, not a bucket upper edge — so on small samples the
    tail percentiles coarsen to the maximum (p999 is exactly the
    sample max whenever [n < 1000]).

    The {e SLO knee} is the datacenter-style saturation criterion the
    apps report instead of (and alongside) the throughput knee of
    {!Udma_traffic.Sweep}: the first offered-load point whose p99
    exceeds [slo] times the {e unloaded} p50 — the lightest point's
    median, the service time a tenant was promised — with every
    heavier point violating too (a one-point dip back under the
    multiple disqualifies earlier candidates, mirroring
    {!Udma_traffic.Sweep.detect_knee}'s sustained-saturation rule). *)

type stats = {
  count : int;
  mean : float;  (** 0 when no sample was recorded *)
  p50 : int;
  p95 : int;
  p99 : int;
  p999 : int;
  max : int;
}

val percentile : int array -> float -> int
(** Exact nearest-rank percentile over a {e sorted} sample; [0] on the
    empty sample. Same convention as {!Udma_protect.Tenants.percentile}. *)

val stats_of : int array -> stats
(** Summarise an (unsorted) latency sample; sorts a copy. *)

val empty_stats : stats

val default_slo : float
(** 5.0 — p99 may grow to five times the unloaded median before the
    point counts as violating. *)

val detect_knee : ?slo:float -> (float * stats) list -> int option
(** [detect_knee ~slo points] over (load, stats) points in ascending
    load order: index of the first point of sustained SLO violation
    ([stats.p99 > slo · baseline_p50] where [baseline_p50] is the
    first point's p50), or [None]. A first point with no samples
    anchors no baseline and the result is [None]; [Some 0] means even
    the lightest load violates its own median times [slo]. *)
