module Rng = Udma_sim.Rng
module Engine = Udma_sim.Engine

type config = {
  fabric : Fabric.config;
  shards : int;
  clients_per_node : int;
  value_bytes : int;
  req_bytes : int;
  write_pct : int;
  hot_pct : int;
  server_cycles : int;
  warmup_cycles : int;
  window_cycles : int;
  load : float;
  chaos_links : bool;
}

let default_config =
  {
    fabric = Fabric.default_config;
    shards = 16;
    clients_per_node = 4;
    value_bytes = 2048;
    req_bytes = 64;
    write_pct = 10;
    hot_pct = 0;
    server_cycles = 120;
    warmup_cycles = 2_000;
    window_cycles = 60_000;
    load = 0.6;
    chaos_links = false;
  }

type result = {
  issued : int;
  completed : int;
  reads : int;
  writes : int;
  stats : Slo.stats;
  cold_stats : Slo.stats;
  throughput_per_kcycle : float;
  send_cycles : int;
  think_cycles : int;
  credit_stalls : int;
  chaos_events : int;
  drained : bool;
}

let validate cfg =
  let nodes = cfg.fabric.Fabric.nodes in
  if cfg.shards < 1 || cfg.shards > nodes then
    invalid_arg "Kv: shards must be in 1..nodes";
  if cfg.clients_per_node < 1 then
    invalid_arg "Kv: clients_per_node must be >= 1";
  if cfg.value_bytes <= 0 || cfg.value_bytes land 3 <> 0 then
    invalid_arg "Kv: value_bytes must be a positive 4-byte multiple";
  if cfg.req_bytes <= 0 || cfg.req_bytes land 3 <> 0 then
    invalid_arg "Kv: req_bytes must be a positive 4-byte multiple";
  if cfg.req_bytes + cfg.value_bytes > 4092 then
    invalid_arg "Kv: req_bytes + value_bytes must fit one channel page (4092)";
  if cfg.write_pct < 0 || cfg.write_pct > 100 then
    invalid_arg "Kv: write_pct must be in 0..100";
  if cfg.hot_pct < 0 || cfg.hot_pct > 100 then
    invalid_arg "Kv: hot_pct must be in 0..100";
  if cfg.server_cycles < 0 then invalid_arg "Kv: server_cycles must be >= 0";
  if cfg.warmup_cycles < 0 then invalid_arg "Kv: warmup_cycles must be >= 0";
  if cfg.window_cycles < 1 then invalid_arg "Kv: window_cycles must be >= 1";
  if not (cfg.load > 0.0) then invalid_arg "Kv: load must be > 0"

(* Every node runs clients against every remote shard: requests flow
   client -> shard node, replies shard node -> client. A client's own
   node may host a shard, but the channel matrix has no self edge, so
   draws landing on the local shard remap to the next shard (a client
   only ever queries remote shards — the op the paper's protected
   user-level DMA exists for). *)
let pairs_of cfg =
  let nodes = cfg.fabric.Fabric.nodes in
  List.concat_map
    (fun c ->
      List.concat_map
        (fun s -> if s = c then [] else [ (c, s); (s, c) ])
        (List.init cfg.shards Fun.id))
    (List.init nodes Fun.id)

let run ?probe cfg =
  validate cfg;
  let nodes = cfg.fabric.Fabric.nodes in
  let fab = Fabric.create cfg.fabric ~pairs:(pairs_of cfg) in
  Option.iter (fun f -> f (Fabric.engine fab)) probe;
  let read_req_cost = Fabric.calibrate_send fab ~nbytes:cfg.req_bytes in
  let write_nbytes = cfg.req_bytes + cfg.value_bytes in
  let write_req_cost =
    if cfg.write_pct > 0 then Fabric.calibrate_send fab ~nbytes:write_nbytes
    else 0
  in
  let value_cost = Fabric.calibrate_send fab ~nbytes:cfg.value_bytes in
  let ack_cost = if cfg.write_pct > 0 then Fabric.calibrate_send fab ~nbytes:8 else 0 in
  (* load axis: each reply occupies a shard's CPU for about
     [server_cycles + value_cost]; with shards = nodes and uniform keys
     a node's clients offer clients_per_node/think requests per cycle
     against a 1/value_cost initiation capacity, so think scales the
     offered fraction. Hotspot skew then concentrates that offer. *)
  let think =
    max 1
      (int_of_float
         (float_of_int (cfg.clients_per_node * value_cost) /. cfg.load))
  in
  let rng = Fabric.rng fab in
  let engine = Fabric.engine fab in
  let t0 = Fabric.now fab in
  let warm_end = t0 + cfg.warmup_cycles in
  let stop = warm_end + cfg.window_cycles in
  let issued = ref 0
  and completed = ref 0
  and reads = ref 0
  and writes = ref 0
  and all_issued = ref 0
  and all_completed = ref 0
  and lats = ref []
  and cold_lats = ref [] in
  let draw_shard node =
    let s =
      if cfg.hot_pct > 0 && Rng.int rng 100 < cfg.hot_pct then 0
      else Rng.int rng cfg.shards
    in
    if s = node then (s + 1) mod cfg.shards else s
  in
  let rec issue node () =
    let born = Engine.now engine in
    let shard = draw_shard node in
    let is_write = cfg.write_pct > 0 && Rng.int rng 100 < cfg.write_pct in
    let in_window = born >= warm_end && born < stop in
    incr all_issued;
    if in_window then begin
      incr issued;
      if is_write then incr writes else incr reads
    end;
    let req_nb, req_cost =
      if is_write then (write_nbytes, write_req_cost)
      else (cfg.req_bytes, read_req_cost)
    in
    let reply_nb, reply_cost =
      if is_write then (8, ack_cost) else (cfg.value_bytes, value_cost)
    in
    Fabric.post fab ~src:node ~dst:shard ~nbytes:req_nb ~cost:req_cost
      ~on_deliver:(fun _ ->
        (* the shard's CPU does the lookup/update, then initiates the
           reply — a read's value is a deliberate update straight into
           the client's mapped receive buffer (zero-copy) *)
        Fabric.post fab ~src:shard ~dst:node ~nbytes:reply_nb
          ~cost:(cfg.server_cycles + reply_cost)
          ~on_deliver:(fun done_at ->
            incr all_completed;
            if in_window then begin
              incr completed;
              let lat = done_at - born in
              lats := lat :: !lats;
              if shard <> 0 then cold_lats := lat :: !cold_lats
            end;
            let next = done_at + think in
            if next < stop then
              Engine.schedule_at engine ~time:next (fun _ -> issue node ()))
          ())
      ()
  in
  for node = 0 to nodes - 1 do
    (* with a single shard, clients on the shard node have no remote
       shard to query and sit out *)
    if not (cfg.shards = 1 && node = 0) then
      for _ = 1 to cfg.clients_per_node do
        let jitter = Rng.int rng (think + 1) in
        Engine.schedule_at engine ~time:(t0 + jitter) (fun _ -> issue node ())
      done
  done;
  if cfg.chaos_links then Fabric.chaos_links fab ~until:stop ();
  Fabric.run_until_idle fab;
  {
    issued = !issued;
    completed = !completed;
    reads = !reads;
    writes = !writes;
    stats = Slo.stats_of (Array.of_list !lats);
    cold_stats = Slo.stats_of (Array.of_list !cold_lats);
    throughput_per_kcycle =
      float_of_int !completed /. float_of_int nodes
      /. (float_of_int cfg.window_cycles /. 1000.0);
    send_cycles = value_cost;
    think_cycles = think;
    credit_stalls = Fabric.credit_stalls fab;
    chaos_events = Fabric.faults_injected fab;
    drained = !all_completed = !all_issued;
  }
