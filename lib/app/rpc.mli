(** Bursty request–response service with tail-latency SLOs (E16).

    Node 0 is the server; every other node runs one client. Requests
    arrive in {e bursts}: each client draws exponential inter-burst
    gaps (a Poisson process of bursts, via
    {!Udma_traffic.Arrival.next_gap}) and each burst deposits [burst]
    requests at once — the open-loop arrival pattern that makes p999
    interesting. The client pool is {e closed} at [pool] outstanding
    requests per client: arrivals beyond the cap wait in a client-side
    backlog and are issued as replies free slots, so past the knee the
    backlog — not the network — is where latency explodes.

    Latency is measured from {e intended arrival} (when the burst
    generator created the request) to reply deposit, so it includes
    backlog wait, client CPU queueing, both network crossings and the
    server's CPU queue (each reply charges [server_cycles] plus the
    calibrated response initiation).

    [load] targets server utilisation: with per-request server work
    [w = server_cycles + response send cost], the per-client burst
    rate is chosen so the aggregate request rate times [w] equals
    [load]. *)

type config = {
  fabric : Fabric.config;
  req_bytes : int;  (** 4-byte multiple *)
  resp_bytes : int;  (** 4-byte multiple <= 4092 *)
  server_cycles : int;  (** per-request service cost on the server CPU *)
  burst : int;  (** requests per burst, >= 1 *)
  pool : int;  (** outstanding-request cap per client, >= 1 *)
  warmup_cycles : int;
  window_cycles : int;
  load : float;  (** > 0; target server utilisation *)
}

val default_config : config
(** 16 nodes via {!Fabric.default_config}, 64-byte requests, 512-byte
    responses, 200-cycle service, bursts of 8, pool 16, 2k warmup,
    60k window, load 0.6. *)

type result = {
  issued : int;  (** requests born inside the window *)
  completed : int;  (** of those, replies delivered *)
  bursts : int;  (** bursts generated inside the window *)
  stats : Slo.stats;  (** arrival-to-reply latency, window requests *)
  throughput_per_kcycle : float;  (** completed requests per 1000 cycles *)
  offered_per_kcycle : float;  (** window arrivals per 1000 cycles *)
  send_cycles : int;  (** calibrated response initiation cost *)
  credit_stalls : int;
  drained : bool;  (** every generated request completed *)
}

val run : ?probe:(Udma_sim.Engine.t -> unit) -> config -> result
(** Deterministic under [config.fabric.seed]; [probe] receives the
    fabric's engine before the run (for cycle-breakdown collection).
    Raises [Invalid_argument] on a config outside the documented
    ranges. *)
