module Rng = Udma_sim.Rng
module Engine = Udma_sim.Engine
module Arrival = Udma_traffic.Arrival

type config = {
  fabric : Fabric.config;
  req_bytes : int;
  resp_bytes : int;
  server_cycles : int;
  burst : int;
  pool : int;
  warmup_cycles : int;
  window_cycles : int;
  load : float;
}

let default_config =
  {
    fabric = Fabric.default_config;
    req_bytes = 64;
    resp_bytes = 512;
    server_cycles = 200;
    burst = 8;
    pool = 16;
    warmup_cycles = 2_000;
    window_cycles = 60_000;
    load = 0.6;
  }

type result = {
  issued : int;
  completed : int;
  bursts : int;
  stats : Slo.stats;
  throughput_per_kcycle : float;
  offered_per_kcycle : float;
  send_cycles : int;
  credit_stalls : int;
  drained : bool;
}

let validate cfg =
  if cfg.req_bytes <= 0 || cfg.req_bytes land 3 <> 0 then
    invalid_arg "Rpc: req_bytes must be a positive 4-byte multiple";
  if cfg.resp_bytes <= 0 || cfg.resp_bytes land 3 <> 0 || cfg.resp_bytes > 4092
  then invalid_arg "Rpc: resp_bytes must be a positive 4-byte multiple <= 4092";
  if cfg.req_bytes > 4092 then invalid_arg "Rpc: req_bytes must be <= 4092";
  if cfg.server_cycles < 0 then invalid_arg "Rpc: server_cycles must be >= 0";
  if cfg.burst < 1 then invalid_arg "Rpc: burst must be >= 1";
  if cfg.pool < 1 then invalid_arg "Rpc: pool must be >= 1";
  if cfg.warmup_cycles < 0 then invalid_arg "Rpc: warmup_cycles must be >= 0";
  if cfg.window_cycles < 1 then invalid_arg "Rpc: window_cycles must be >= 1";
  if not (cfg.load > 0.0) then invalid_arg "Rpc: load must be > 0"

type client = {
  node : int;
  rng : Rng.t;
  mutable outstanding : int;
  backlog : int Queue.t;  (* intended arrival times of waiting requests *)
}

let server = 0

let run ?probe cfg =
  validate cfg;
  let nodes = cfg.fabric.Fabric.nodes in
  let n_clients = nodes - 1 in
  let pairs =
    List.concat_map
      (fun c -> [ (c, server); (server, c) ])
      (List.init n_clients (fun i -> i + 1))
  in
  let fab = Fabric.create cfg.fabric ~pairs in
  Option.iter (fun f -> f (Fabric.engine fab)) probe;
  let req_cost = Fabric.calibrate_send fab ~nbytes:cfg.req_bytes in
  let resp_cost = Fabric.calibrate_send fab ~nbytes:cfg.resp_bytes in
  (* load axis: the server spends [server_cycles + resp_cost] per
     request, so the aggregate burst rate is set to offer [load] of
     that capacity, split evenly across clients *)
  let work = cfg.server_cycles + resp_cost in
  let burst_rate_per_kcycle =
    cfg.load *. 1000.0 /. float_of_int (n_clients * cfg.burst * work)
  in
  let arrival = Arrival.Poisson { per_kcycle = burst_rate_per_kcycle } in
  let engine = Fabric.engine fab in
  let t0 = Fabric.now fab in
  let warm_end = t0 + cfg.warmup_cycles in
  let stop = warm_end + cfg.window_cycles in
  let issued = ref 0
  and completed = ref 0
  and bursts = ref 0
  and all_issued = ref 0
  and all_completed = ref 0
  and lats = ref [] in
  let clients =
    Array.init n_clients (fun i ->
        {
          node = i + 1;
          rng = Fabric.rng fab;
          outstanding = 0;
          backlog = Queue.create ();
        })
  in
  let rec issue cl ~arrival_at =
    cl.outstanding <- cl.outstanding + 1;
    let in_window = arrival_at >= warm_end && arrival_at < stop in
    Fabric.post fab ~src:cl.node ~dst:server ~nbytes:cfg.req_bytes
      ~cost:req_cost
      ~on_deliver:(fun _ ->
        Fabric.post fab ~src:server ~dst:cl.node ~nbytes:cfg.resp_bytes
          ~cost:(cfg.server_cycles + resp_cost)
          ~on_deliver:(fun done_at ->
            incr all_completed;
            if in_window then begin
              incr completed;
              lats := (done_at - arrival_at) :: !lats
            end;
            cl.outstanding <- cl.outstanding - 1;
            if not (Queue.is_empty cl.backlog) then
              issue cl ~arrival_at:(Queue.pop cl.backlog))
          ())
      ()
  in
  let admit cl ~arrival_at =
    incr all_issued;
    if arrival_at >= warm_end && arrival_at < stop then incr issued;
    if cl.outstanding < cfg.pool then issue cl ~arrival_at
    else Queue.push arrival_at cl.backlog
  in
  let rec generate cl time =
    if time < stop then
      Engine.schedule_at engine ~time (fun _ ->
          let now = Engine.now engine in
          if now >= warm_end && now < stop then incr bursts;
          for _ = 1 to cfg.burst do
            admit cl ~arrival_at:now
          done;
          generate cl (now + Arrival.next_gap arrival cl.rng))
  in
  Array.iter (fun cl -> generate cl (t0 + Arrival.next_gap arrival cl.rng)) clients;
  Fabric.run_until_idle fab;
  {
    issued = !issued;
    completed = !completed;
    bursts = !bursts;
    stats = Slo.stats_of (Array.of_list !lats);
    throughput_per_kcycle =
      float_of_int !completed /. (float_of_int cfg.window_cycles /. 1000.0);
    offered_per_kcycle =
      float_of_int !issued /. (float_of_int cfg.window_cycles /. 1000.0);
    send_cycles = resp_cost;
    credit_stalls = Fabric.credit_stalls fab;
    drained = !all_completed = !all_issued;
  }
