module Engine = Udma_sim.Engine
module Router = Udma_shrimp.Router

type config = {
  fabric : Fabric.config;
  tile_rows : int;
  row_bytes : int;
  halo_cols : int;
  iterations : int;
  warmup_iters : int;
  load : float;
}

let default_config =
  {
    fabric = Fabric.default_config;
    tile_rows = 32;
    row_bytes = 128;
    halo_cols = 16;
    iterations = 30;
    warmup_iters = 2;
    load = 0.5;
  }

type result = {
  iterations : int;
  stats : Slo.stats;
  makespan_cycles : int;
  strided_send_cycles : int;
  contiguous_send_cycles : int;
  compute_cycles : int;
  halos_sent : int;
  credit_stalls : int;
  drained : bool;
}

let validate cfg =
  if cfg.tile_rows < 1 then invalid_arg "Halo: tile_rows must be >= 1";
  if cfg.row_bytes <= 0 || cfg.row_bytes land 3 <> 0 then
    invalid_arg "Halo: row_bytes must be a positive 4-byte multiple";
  if cfg.halo_cols <= 0 || cfg.halo_cols land 3 <> 0 then
    invalid_arg "Halo: halo_cols must be a positive 4-byte multiple";
  if cfg.halo_cols > cfg.row_bytes then
    invalid_arg "Halo: halo_cols must be <= row_bytes";
  if ((cfg.tile_rows - 1) * cfg.row_bytes) + cfg.halo_cols > 4096 then
    invalid_arg "Halo: strided halo span exceeds the source page";
  if cfg.tile_rows * cfg.halo_cols > 4092 then
    invalid_arg "Halo: east/west halo exceeds the channel capacity";
  if cfg.row_bytes > 4092 then
    invalid_arg "Halo: north/south halo exceeds the channel capacity";
  if cfg.iterations < 1 then invalid_arg "Halo: iterations must be >= 1";
  if cfg.warmup_iters < 0 || cfg.warmup_iters >= cfg.iterations then
    invalid_arg "Halo: warmup_iters must be in 0..iterations-1";
  if not (cfg.load > 0.0 && cfg.load <= 1.0) then
    invalid_arg "Halo: load must be in (0, 1]"

(* Mesh neighbourhood, computable before the fabric exists (same
   row-major layout as Fabric.neighbors / the router). *)
let neighbors_of ~nodes ~width id =
  let x = id mod width and y = id / width in
  List.filter_map
    (fun (nx, ny) ->
      if nx < 0 || ny < 0 || nx >= width then None
      else
        let nid = nx + (ny * width) in
        if nid >= nodes then None else Some nid)
    [ (x, y - 1); (x - 1, y); (x + 1, y); (x, y + 1) ]
  |> List.sort compare

type peer = { id : int; east_west : bool; mutable received : int }

type node_state = {
  peers : peer array;
  mutable iter : int;  (* iteration currently in flight *)
  mutable started_at : int;
  mutable finished : bool;
}

let run ?probe cfg =
  validate cfg;
  let nodes = cfg.fabric.Fabric.nodes in
  let width = Router.mesh_width nodes in
  let nbrs = Array.init nodes (neighbors_of ~nodes ~width) in
  let pairs =
    List.concat_map
      (fun n -> List.map (fun p -> (n, p)) nbrs.(n))
      (List.init nodes Fun.id)
  in
  let fab = Fabric.create cfg.fabric ~pairs in
  Option.iter (fun f -> f (Fabric.engine fab)) probe;
  let ew_nbytes = cfg.tile_rows * cfg.halo_cols in
  let strided_cost =
    Fabric.calibrate_strided fab ~stride:cfg.row_bytes ~chunk:cfg.halo_cols
      ~nbytes:ew_nbytes
  in
  let contig_cost = Fabric.calibrate_send fab ~nbytes:cfg.row_bytes in
  let engine = Fabric.engine fab in
  let same_row a b = a / width = b / width in
  let send_work n =
    List.fold_left
      (fun acc p -> acc + if same_row n p then strided_cost else contig_cost)
      0 nbrs.(n)
  in
  let max_work =
    Array.fold_left max 0 (Array.init nodes send_work)
  in
  let compute =
    max 0 (int_of_float (float_of_int max_work *. ((1.0 /. cfg.load) -. 1.0)))
  in
  let states =
    Array.init nodes (fun n ->
        {
          peers =
            Array.of_list
              (List.map
                 (fun p -> { id = p; east_west = same_row n p; received = 0 })
                 nbrs.(n));
          iter = 0;
          started_at = 0;
          finished = false;
        })
  in
  let lats = ref [] and done_nodes = ref 0 in
  let t_start = Fabric.now fab in
  (* iteration k is complete once every neighbour's k-tagged halo has
     landed: cumulative counters reach k+1. Neighbours drift by at most
     one iteration (they cannot send k+1 before our k arrives), so the
     counts disambiguate without tagging the payloads. *)
  let rec begin_iter node =
    let st = states.(node) in
    st.started_at <- Engine.now engine;
    Array.iteri
      (fun i p ->
        let nbytes = if p.east_west then ew_nbytes else cfg.row_bytes in
        let base = if p.east_west then strided_cost else contig_cost in
        (* the stencil compute rides on the first initiation of the
           iteration; the rest queue behind it on the node's CPU *)
        let cost = if i = 0 then compute + base else base in
        Fabric.post fab ~src:node ~dst:p.id ~nbytes ~cost
          ~on_deliver:(fun _ ->
            let dst = states.(p.id) in
            let back =
              Array.to_list dst.peers |> List.find (fun q -> q.id = node)
            in
            back.received <- back.received + 1;
            check p.id)
          ())
      st.peers;
    check node
  and check node =
    let st = states.(node) in
    if
      (not st.finished)
      && Array.for_all (fun p -> p.received >= st.iter + 1) st.peers
    then begin
      let lat = Engine.now engine - st.started_at in
      if st.iter >= cfg.warmup_iters then lats := lat :: !lats;
      st.iter <- st.iter + 1;
      if st.iter < cfg.iterations then begin_iter node
      else begin
        st.finished <- true;
        incr done_nodes
      end
    end
  in
  for node = 0 to nodes - 1 do
    begin_iter node
  done;
  Fabric.run_until_idle fab;
  {
    iterations = cfg.iterations - cfg.warmup_iters;
    stats = Slo.stats_of (Array.of_list !lats);
    makespan_cycles = Fabric.now fab - t_start;
    strided_send_cycles = strided_cost;
    contiguous_send_cycles = contig_cost;
    compute_cycles = compute;
    halos_sent = Fabric.launched fab;
    credit_stalls = Fabric.credit_stalls fab;
    drained = !done_nodes = nodes;
  }
