(** One simulated node: hardware plus kernel-visible state.

    [Machine.t] is the record every OS module operates on. It is built
    by {!create}, which assembles physical memory, the bus, the MMU,
    the DMA engine and (optionally) the UDMA engine over one simulation
    engine. *)

(** How invariant I3 (content consistency, paper §6) is maintained. *)
type i3_policy =
  | Write_upgrade
      (** the paper's primary method: a proxy page is writable only
          while its real page is dirty; the first proxy write faults
          and upgrades; cleaning write-protects the proxy page *)
  | Proxy_dirty_union
      (** the paper's alternative: proxy pages carry their own dirty
          bits and the paging code treats a page as dirty when either
          it or its proxy page is dirty — "conceptually simpler, but
          requires more changes to the paging code" *)

(** The paper's four OS invariants (§6), plus two network invariants
    the router's flow-control model must maintain, named so the
    fault-injection harness can disable the action maintaining each
    one and so oracles can report which invariant a state violates.

    [`N1] is credit conservation: for every (link, virtual channel)
    pool, [held + in_flight + free = capacity] at every cycle.
    [`N2] is arbitration fairness: a ready virtual channel is granted
    the physical link within [vc_count] arbitration rounds. Passing
    either to [create]'s [skip_invariant] is forwarded by
    [Udma_shrimp.System] to the router as the matching deliberate
    bug (credit leak / stuck arbiter); the machine itself has no
    [`N1]/[`N2] maintenance path.

    [`F1] is flit conservation, the oracle of the flit-level crossing
    model: every flit ever injected is either delivered or sitting in
    some injection/input FIFO, and every finite input FIFO satisfies
    [credits + occupancy = capacity] (with occupancy never exceeding
    capacity). [`F2] is its second planted bug: the per-link arbiter
    grants two flits in one flit-cycle against a single credit, which
    the same conservation oracle catches as a credit/occupancy
    mismatch. [Udma_shrimp.System] forwards [`F1]/[`F2] to the router
    as the flit-leak / double-grant mutations; both are reported by
    oracles as [`F1] violations and only fire when the router runs
    with [crossing = `Flit].

    [`I5] is cross-tenant isolation: no transfer is authorized against
    a destination page its tenant does not own, and no datapath decode
    state (NIPT entry, IOTLB line, capability) survives the teardown of
    the grant backing it. [`P1] (owner check skipped on one page) and
    [`P2] (stale datapath entry survives teardown) are the two
    deliberate protection bugs: [Udma_shrimp.System] forwards either
    to the node's protection backend, and the [`I5] oracle must catch
    both. Like [`N1]/[`N2], the machine itself has no maintenance path
    for them.

    [`D1] is the DMA-frontend clamp bug: the UDMA engine skips the
    per-element page clamp, so a shaped (strided/scatter-gather) or
    oversized flat initiation reaches physical frames its proxy
    references never authorized. The mesh chaos harness must catch it
    through I1/I4 (a referenced frame no longer backs — or never
    backed — a user page). *)
type invariant =
  [ `I1 | `I2 | `I3 | `I4 | `I5 | `N1 | `N2 | `F1 | `F2 | `P1 | `P2 | `D1 ]

val invariant_name : invariant -> string

val pp_invariant : Format.formatter -> invariant -> unit

type t = {
  engine : Udma_sim.Engine.t;
  layout : Udma_mmu.Layout.t;
  mem : Udma_memory.Phys_mem.t;
  alloc : Udma_memory.Frame_allocator.t;
  swap : Udma_memory.Backing_store.t;
  bus : Udma_dma.Bus.t;
  mmu : Udma_mmu.Mmu.t;
  dma : Udma_dma.Dma_engine.t;
  udma : Udma.Udma_engine.t option;
      (** [None] builds a traditional-DMA-only machine (baselines) *)
  costs : Cost_model.t;
  i3_policy : i3_policy;
  metrics : Udma_obs.Metrics.t;
      (** machine-wide registry: [vm.*], [sched.*], [syscall.*] plus
          the [udma.*] / [dma.*] counters the hardware mirrors in *)
  trace : Udma_sim.Trace.t;
  mutable procs : Proc.t list;
  mutable runq : Proc.t list;        (** round-robin ready queue *)
  mutable current : Proc.t option;
  mutable next_pid : int;
  frame_owner : (int, int * int) Hashtbl.t;
      (** frame → (pid, vpn) for replacement; only user memory frames *)
  swap_slots : (int * int, Udma_memory.Backing_store.slot) Hashtbl.t;
      (** (pid, vpn) → swap slot for paged-out pages *)
  pinned : (int, int) Hashtbl.t;     (** frame → pin count *)
  mutable clock_hand : int;          (** clock-replacement cursor *)
  mutable preempt_hook : (t -> bool) option;
      (** consulted before every user reference; returning [true]
          forces a context switch (failure injection for I1 tests) *)
  mutable skip_invariant : invariant option;
      (** debug hook: the kernel/VM action maintaining this invariant
          is skipped — a deliberate OS bug used to prove the chaos
          oracles actually detect each class of violation *)
  mutable on_switch : (t -> unit) option;
      (** observer called at the end of every real context switch,
          after the I1 Inval; the chaos harness installs its I1 oracle
          here *)
}

type config = {
  page_size : int;
  mem_pages : int;       (** physical frames *)
  virt_pages : int;
      (** user virtual pages (≥ [mem_pages]; excess is demand-paged) *)
  dev_pages : int;       (** device-proxy pages *)
  reserved_frames : int; (** frames the kernel keeps (≥ 1) *)
  tlb_entries : int;
  udma_mode : Udma.Udma_engine.mode option;
      (** [None] = no UDMA hardware; [Some mode] installs the engine *)
  costs : Cost_model.t;
  i3_policy : i3_policy;
  bus_timing : Udma_dma.Bus.timing;
  trace_enabled : bool;
  shared_engine : Udma_sim.Engine.t option;
      (** multi-node systems pass one engine to every machine so that
          all nodes share simulated time *)
}

val default_config : config
(** 4 KB pages, 512 frames, 2048 virtual pages, 64 device-proxy pages,
    2 reserved frames, 64 TLB entries, basic UDMA, default costs and
    timing, no trace. *)

val create : ?config:config -> ?skip_invariant:invariant -> unit -> t
(** [skip_invariant] installs the deliberate-bug debug hook: the
    kernel action maintaining that invariant is omitted (see
    {!skips}). Intended only for oracle-soundness tests. *)

val skips : t -> invariant -> bool
(** [skips m inv] is [true] when the kernel was built with
    [~skip_invariant:inv]; the maintenance paths consult this. *)

val find_proc : t -> pid:int -> Proc.t option

val charge : t -> int -> unit
(** [charge m cycles] advances the simulation clock by [cycles] and
    attributes them to the current process. Cycles are charged to the
    profiler's current category, or to [Kernel] when no category is
    set (uncategorized machine work is kernel work by definition). *)

val proxy_vpn : t -> int -> int
(** [proxy_vpn m vpn] is the virtual page number of [PROXY] of virtual
    page [vpn]. *)

val proxy_ppage : t -> int -> int
(** [proxy_ppage m frame] is the physical page number of [PROXY] of
    physical frame [frame]. *)

val frame_is_pinned : t -> int -> bool
