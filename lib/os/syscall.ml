module Engine = Udma_sim.Engine
module Metrics = Udma_obs.Metrics
module Layout = Udma_mmu.Layout
module Page_table = Udma_mmu.Page_table
module Pte = Udma_mmu.Pte
module Phys_mem = Udma_memory.Phys_mem
module Device = Udma_dma.Device
module Dma_engine = Udma_dma.Dma_engine
module Udma_engine = Udma.Udma_engine
module M = Machine

type direction = To_device | From_device

type strategy = Pin_user_pages | Copy_through_buffer

type error = Bad_address | Bad_size | Device_error of string

let pp_error ppf = function
  | Bad_address -> Format.pp_print_string ppf "bad address"
  | Bad_size -> Format.pp_print_string ppf "bad size"
  | Device_error s -> Format.fprintf ppf "device error: %s" s

(* Split [vaddr, vaddr+nbytes) at page boundaries. *)
let page_pieces layout ~vaddr ~nbytes =
  let page_size = Layout.page_size layout in
  let rec go addr remaining acc =
    if remaining <= 0 then List.rev acc
    else
      let room = page_size - Layout.offset_in_page layout addr in
      let piece = min room remaining in
      go (addr + piece) (remaining - piece) ((addr, piece) :: acc)
  in
  go vaddr nbytes []

let resident_frame m proc ~vpn =
  match Page_table.find proc.Proc.page_table vpn with
  | Some pte when pte.Pte.present -> Some pte.Pte.ppage
  | Some _ -> Some (Vm.page_in m proc ~vpn)
  | None -> None

(* Start one DMA piece and block until the hardware is done. The
   descriptor-chain model: the kernel pays [dma_start] once per system
   call and one [interrupt] at the end; per-piece turnaround is
   hardware-side and already inside the burst timing. *)
let run_piece m ~src ~dst ~nbytes =
  let finished = ref false in
  match
    Dma_engine.submit m.M.dma
      (Udma_dma.Descriptor.Contiguous { src; dst; nbytes })
      ~on_complete:(fun () -> finished := true)
  with
  | Error e -> Error (Device_error (Format.asprintf "%a" Dma_engine.pp_error e))
  | Ok () ->
      ignore (Engine.wait_for m.M.engine ~poll_cost:1 (fun () -> !finished));
      Ok ()

let rec first_error = function
  | [] -> Ok ()
  | Ok () :: rest -> first_error rest
  | (Error _ as e) :: _ -> e

(* The §2 sequence with user pages pinned in place. *)
let transfer_pinned m proc ~dir ~vaddr ~nbytes ~port ~dev_addr =
  let layout = m.M.layout in
  let pieces = page_pieces layout ~vaddr ~nbytes in
  (* step 2: translate, verify, pin, build descriptors *)
  let resolved =
    List.map
      (fun (addr, len) ->
        Machine.charge m m.M.costs.Cost_model.translate_page;
        let vpn = Layout.page_of_addr layout addr in
        match resident_frame m proc ~vpn with
        | None -> Error Bad_address
        | Some _ ->
            let frame = Vm.pin m proc ~vpn in
            let paddr =
              Phys_mem.frame_base m.M.mem frame
              + Layout.offset_in_page layout addr
            in
            Ok (vpn, frame, paddr, len))
      pieces
  in
  let ok_pieces = List.filter_map Result.to_option resolved in
  let unpin_all () =
    List.iter (fun (_, frame, _, _) -> Vm.unpin m ~frame) ok_pieces
  in
  if List.length ok_pieces <> List.length pieces then begin
    unpin_all ();
    Error Bad_address
  end
  else begin
    Machine.charge m m.M.costs.Cost_model.descriptor_build;
    Machine.charge m m.M.costs.Cost_model.dma_start;
    (* step 3: the transfers; the device address advances with the data *)
    let _, results =
      List.fold_left
        (fun (dev_off, acc) (vpn, _frame, paddr, len) ->
          let r =
            match dir with
            | To_device ->
                run_piece m ~src:(Dma_engine.Mem paddr)
                  ~dst:(Dma_engine.Dev (port, dev_addr + dev_off)) ~nbytes:len
            | From_device ->
                let r =
                  run_piece m
                    ~src:(Dma_engine.Dev (port, dev_addr + dev_off))
                    ~dst:(Dma_engine.Mem paddr) ~nbytes:len
                in
                (* the kernel knows about the incoming data: mark dirty *)
                (match Page_table.find proc.Proc.page_table vpn with
                | Some pte -> pte.Pte.dirty <- true
                | None -> ());
                r
          in
          (dev_off + len, r :: acc))
        (0, []) ok_pieces
    in
    (* step 4: completion interrupt, unpin and return *)
    Machine.charge m m.M.costs.Cost_model.interrupt;
    unpin_all ();
    first_error (List.rev results)
  end

(* Copy through one reserved, permanently pinned kernel frame. *)
let bounce_frame = 1

let transfer_bounce m proc ~dir ~vaddr ~nbytes ~port ~dev_addr =
  let layout = m.M.layout in
  let page_size = Layout.page_size layout in
  let bounce_base = Phys_mem.frame_base m.M.mem bounce_frame in
  let rec chunks off acc =
    if off >= nbytes then List.rev acc
    else
      let len = min page_size (nbytes - off) in
      chunks (off + len) ((off, len) :: acc)
  in
  let copy_user_chunk ~off ~len ~to_bounce =
    (* the kernel walks the user pages under the chunk *)
    let pieces = page_pieces layout ~vaddr:(vaddr + off) ~nbytes:len in
    let results =
      List.map
        (fun (addr, piece_len) ->
          Machine.charge m m.M.costs.Cost_model.translate_page;
          let vpn = Layout.page_of_addr layout addr in
          match resident_frame m proc ~vpn with
          | None -> Error Bad_address
          | Some frame ->
              let paddr =
                Phys_mem.frame_base m.M.mem frame
                + Layout.offset_in_page layout addr
              in
              let boff = bounce_base + (addr - (vaddr + off)) in
              Machine.charge m (Cost_model.copy_cycles m.M.costs piece_len);
              if to_bounce then
                Phys_mem.blit m.M.mem ~src:paddr ~dst:boff ~len:piece_len
              else begin
                Phys_mem.blit m.M.mem ~src:boff ~dst:paddr ~len:piece_len;
                match Page_table.find proc.Proc.page_table vpn with
                | Some pte -> pte.Pte.dirty <- true
                | None -> ()
              end;
              Ok ())
        pieces
    in
    first_error results
  in
  Machine.charge m m.M.costs.Cost_model.dma_start;
  let results =
    List.map
      (fun (off, len) ->
        Machine.charge m m.M.costs.Cost_model.descriptor_build;
        match dir with
        | To_device -> (
            match copy_user_chunk ~off ~len ~to_bounce:true with
            | Error _ as e -> e
            | Ok () ->
                run_piece m ~src:(Dma_engine.Mem bounce_base)
                  ~dst:(Dma_engine.Dev (port, dev_addr + off)) ~nbytes:len)
        | From_device -> (
            match
              run_piece m
                ~src:(Dma_engine.Dev (port, dev_addr + off))
                ~dst:(Dma_engine.Mem bounce_base) ~nbytes:len
            with
            | Error _ as e -> e
            | Ok () -> copy_user_chunk ~off ~len ~to_bounce:false))
      (chunks 0 [])
  in
  Machine.charge m m.M.costs.Cost_model.interrupt;
  first_error results

let dma_transfer m proc ~dir ~vaddr ~nbytes ~port ~dev_addr ~strategy =
  if nbytes <= 0 then Error Bad_size
  else begin
    let start = Engine.now m.M.engine in
    (* step 1: the system call itself *)
    Machine.charge m m.M.costs.Cost_model.syscall;
    Metrics.incr m.M.metrics "syscall.dma";
    let result =
      match strategy with
      | Pin_user_pages ->
          transfer_pinned m proc ~dir ~vaddr ~nbytes ~port ~dev_addr
      | Copy_through_buffer ->
          transfer_bounce m proc ~dir ~vaddr ~nbytes ~port ~dev_addr
    in
    match result with
    | Ok () -> Ok (Engine.now m.M.engine - start)
    | Error _ as e -> e
  end

let map_device_proxy m proc ~vdev_index ~pdev_index ~writable =
  Machine.charge m m.M.costs.Cost_model.syscall;
  Metrics.incr m.M.metrics "syscall.map_device_proxy";
  match Vm.map_device_proxy m proc ~vdev_index ~pdev_index ~writable with
  | () -> Ok ()
  | exception Invalid_argument _ -> Error Bad_address

let udma_enqueue_system m ~src_proxy ~dest_proxy ~nbytes =
  Machine.charge m m.M.costs.Cost_model.syscall;
  match m.M.udma with
  | None -> Error (Device_error "no UDMA engine")
  | Some u -> (
      match Udma_engine.enqueue_system u ~src_proxy ~dest_proxy ~nbytes with
      | Ok () -> Ok ()
      | Error `Full -> Error (Device_error "queue full")
      | Error `Rejected -> Error Bad_address)
