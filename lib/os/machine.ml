module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Metrics = Udma_obs.Metrics
module Profiler = Udma_obs.Profiler
module Layout = Udma_mmu.Layout
module Mmu = Udma_mmu.Mmu
module Phys_mem = Udma_memory.Phys_mem
module Frame_allocator = Udma_memory.Frame_allocator
module Backing_store = Udma_memory.Backing_store
module Bus = Udma_dma.Bus
module Dma_engine = Udma_dma.Dma_engine
module Udma_engine = Udma.Udma_engine

type i3_policy = Write_upgrade | Proxy_dirty_union

type invariant =
  [ `I1 | `I2 | `I3 | `I4 | `I5 | `N1 | `N2 | `F1 | `F2 | `P1 | `P2 | `D1 ]

let invariant_name = function
  | `I1 -> "I1"
  | `I2 -> "I2"
  | `I3 -> "I3"
  | `I4 -> "I4"
  | `I5 -> "I5"
  | `N1 -> "N1"
  | `N2 -> "N2"
  | `F1 -> "F1"
  | `F2 -> "F2"
  | `P1 -> "P1"
  | `P2 -> "P2"
  | `D1 -> "D1"

let pp_invariant ppf inv = Format.pp_print_string ppf (invariant_name inv)

type t = {
  engine : Engine.t;
  layout : Layout.t;
  mem : Phys_mem.t;
  alloc : Frame_allocator.t;
  swap : Backing_store.t;
  bus : Bus.t;
  mmu : Mmu.t;
  dma : Dma_engine.t;
  udma : Udma_engine.t option;
  costs : Cost_model.t;
  i3_policy : i3_policy;
  metrics : Metrics.t;
  trace : Trace.t;
  mutable procs : Proc.t list;
  mutable runq : Proc.t list;
  mutable current : Proc.t option;
  mutable next_pid : int;
  frame_owner : (int, int * int) Hashtbl.t;
  swap_slots : (int * int, Backing_store.slot) Hashtbl.t;
  pinned : (int, int) Hashtbl.t;
  mutable clock_hand : int;
  mutable preempt_hook : (t -> bool) option;
  mutable skip_invariant : invariant option;
  mutable on_switch : (t -> unit) option;
}

type config = {
  page_size : int;
  mem_pages : int;
  virt_pages : int;
  dev_pages : int;
  reserved_frames : int;
  tlb_entries : int;
  udma_mode : Udma_engine.mode option;
  costs : Cost_model.t;
  i3_policy : i3_policy;
  bus_timing : Bus.timing;
  trace_enabled : bool;
  shared_engine : Engine.t option;
      (* multi-node systems run every machine on one engine *)
}

let default_config =
  {
    page_size = 4096;
    mem_pages = 512;
    virt_pages = 2048;
    dev_pages = 64;
    reserved_frames = 2;
    tlb_entries = 64;
    udma_mode = Some Udma_engine.Basic;
    costs = Cost_model.default;
    i3_policy = Write_upgrade;
    bus_timing = Bus.default_timing;
    trace_enabled = false;
    shared_engine = None;
  }

let create ?(config = default_config) ?skip_invariant () =
  (* the virtual user region may exceed installed memory (demand
     paging); the layout describes the larger of the two and physical
     addresses beyond installed memory simply never get mapped *)
  let virt_pages = max config.virt_pages config.mem_pages in
  let layout =
    Layout.create ~page_size:config.page_size ~mem_pages:virt_pages
      ~dev_pages:config.dev_pages
  in
  let mem =
    Phys_mem.create ~frames:config.mem_pages ~page_size:config.page_size
  in
  let engine =
    match config.shared_engine with
    | Some e -> e
    | None -> Engine.create ~mhz:config.costs.Cost_model.mhz ()
  in
  let bus = Bus.create ~timing:config.bus_timing mem in
  let mmu = Mmu.create ~layout ~tlb_capacity:config.tlb_entries in
  let trace = Trace.create ~enabled:config.trace_enabled () in
  let metrics = Metrics.create () in
  let dma = Dma_engine.create ~engine ~bus ~trace ~metrics () in
  let udma =
    match config.udma_mode with
    | None -> None
    | Some mode ->
        Some
          (Udma_engine.create ~engine ~layout ~bus ~dma ~mode
             ~skip_clamp:(skip_invariant = Some `D1)
             ~trace ~metrics ())
  in
  {
    engine;
    layout;
    mem;
    alloc =
      Frame_allocator.create ~frames:config.mem_pages
        ~reserved:config.reserved_frames;
    swap = Backing_store.create ~page_size:config.page_size;
    bus;
    mmu;
    dma;
    udma;
    costs = config.costs;
    i3_policy = config.i3_policy;
    metrics;
    trace;
    procs = [];
    runq = [];
    current = None;
    next_pid = 1;
    frame_owner = Hashtbl.create 64;
    swap_slots = Hashtbl.create 64;
    pinned = Hashtbl.create 16;
    clock_hand = config.reserved_frames;
    preempt_hook = None;
    skip_invariant;
    on_switch = None;
  }

let skips t inv = t.skip_invariant = Some (inv :> invariant)

let find_proc t ~pid = List.find_opt (fun p -> p.Proc.pid = pid) t.procs

let charge t cycles =
  (* Uncategorized machine work is kernel work; user references set
     User_ref before reaching here and keep their attribution. *)
  (if Profiler.current (Engine.profiler t.engine) = Profiler.Idle then
     Engine.with_category t.engine Profiler.Kernel (fun () ->
         Engine.advance t.engine cycles)
   else Engine.advance t.engine cycles);
  match t.current with
  | Some p -> p.Proc.cpu_cycles <- p.Proc.cpu_cycles + cycles
  | None -> ()

let pages_per_span t = Layout.span t.layout / Layout.page_size t.layout

let proxy_vpn t vpn = vpn + pages_per_span t

let proxy_ppage t frame = frame + pages_per_span t

let frame_is_pinned t frame =
  match Hashtbl.find_opt t.pinned frame with
  | Some n -> n > 0
  | None -> false
