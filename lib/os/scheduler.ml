module Metrics = Udma_obs.Metrics
module Trace = Udma_sim.Trace
module Engine = Udma_sim.Engine
module Mmu = Udma_mmu.Mmu
module Udma_engine = Udma.Udma_engine
module M = Machine

let spawn m ~name =
  let proc = Proc.make ~pid:m.M.next_pid ~name in
  m.M.next_pid <- m.M.next_pid + 1;
  m.M.procs <- m.M.procs @ [ proc ];
  m.M.runq <- m.M.runq @ [ proc ];
  if m.M.current = None then begin
    proc.Proc.state <- Proc.Running;
    m.M.current <- Some proc
  end;
  proc

let current m = m.M.current

let switch_to m proc =
  match m.M.current with
  | Some cur when cur == proc -> ()
  | cur ->
      (* A switch is kernel work even when triggered mid-user-reference
         by preemption. *)
      Engine.with_category m.M.engine Engine.Profiler.Kernel (fun () ->
          Machine.charge m m.M.costs.Cost_model.context_switch);
      Metrics.incr m.M.metrics "sched.switches";
      (* I1: invalidate any partially initiated UDMA sequence with a
         single STORE of a negative count to a proxy address *)
      (match m.M.udma with
      | Some u when not (M.skips m `I1) -> Udma_engine.invalidate u
      | Some _ | None -> ());
      Mmu.flush_tlb m.M.mmu;
      (match cur with
      | Some c when c.Proc.state = Proc.Running -> c.Proc.state <- Proc.Ready
      | Some _ | None -> ());
      proc.Proc.state <- Proc.Running;
      m.M.current <- Some proc;
      Trace.record m.M.trace ~time:(Engine.now m.M.engine)
        Udma_obs.Event.Sched
        (Udma_obs.Event.Context_switch { pid = proc.Proc.pid });
      (match m.M.on_switch with Some f -> f m | None -> ())

let ready m =
  List.filter (fun p -> p.Proc.state <> Proc.Exited) m.M.runq

let preempt m =
  match (m.M.current, ready m) with
  | _, [] | _, [ _ ] -> ()
  | Some cur, rq -> (
      (* rotate: next after current, wrapping *)
      let rec next = function
        | [] -> List.hd rq
        | p :: rest -> if p == cur then (match rest with q :: _ -> q | [] -> List.hd rq) else next rest
      in
      match next rq with p -> switch_to m p)
  | None, p :: _ -> switch_to m p

let set_preempt_hook m hook = m.M.preempt_hook <- hook

let maybe_preempt m =
  match m.M.preempt_hook with
  | Some hook -> if hook m then preempt m
  | None -> ()

let exit_proc m proc =
  proc.Proc.state <- Proc.Exited;
  m.M.runq <- List.filter (fun p -> not (p == proc)) m.M.runq;
  match m.M.current with
  | Some cur when cur == proc ->
      m.M.current <- None;
      (match ready m with p :: _ -> switch_to m p | [] -> ())
  | Some _ | None -> ()
