module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Mmu = Udma_mmu.Mmu
module Page_table = Udma_mmu.Page_table
module Pte = Udma_mmu.Pte
module Phys_mem = Udma_memory.Phys_mem
module Bus = Udma_dma.Bus
module Initiator = Udma.Initiator
module M = Machine

let max_fault_retries = 8

(* One user-level memory reference: preemption check, translation with
   fault handling, cost accounting, bus routing. *)
let user_access m proc access vaddr k =
  if vaddr land 3 <> 0 then
    invalid_arg (Printf.sprintf "user access: unaligned address %#x" vaddr);
  Scheduler.maybe_preempt m;
  (match m.M.current with
  | Some cur when cur == proc -> ()
  | Some _ | None -> Scheduler.switch_to m proc);
  let costs = m.M.costs in
  let rec go tries =
    if tries > max_fault_retries then
      raise
        (Vm.Segfault
           {
             pid = proc.Proc.pid;
             vaddr;
             access;
             reason = "fault loop: mapping keeps disappearing";
           })
    else
      match Mmu.translate m.M.mmu proc.Proc.page_table access vaddr with
      | tr ->
          let base =
            match Bus.decode m.M.bus tr.Mmu.paddr with
            | `Mem -> costs.Cost_model.cached_ref
            | `Io _ -> costs.Cost_model.uncached_ref
            | `Unmapped -> costs.Cost_model.uncached_ref
          in
          let cost =
            if tr.Mmu.tlb_hit then base else base + costs.Cost_model.tlb_miss
          in
          Engine.with_category m.M.engine Engine.Profiler.User_ref (fun () ->
              Machine.charge m cost);
          k tr.Mmu.paddr
      | exception Mmu.Fault _ ->
          Vm.handle_fault m proc access ~vaddr;
          go (tries + 1)
  in
  go 0

let user_cpu m proc =
  Initiator.
    {
      load =
        (fun ~vaddr ->
          user_access m proc Mmu.Read vaddr (fun paddr ->
              Bus.load_word m.M.bus paddr));
      store =
        (fun ~vaddr v ->
          user_access m proc Mmu.Write vaddr (fun paddr ->
              Bus.store_word m.M.bus paddr v));
      compute =
        (fun cycles ->
          (* executing any instruction of [proc] means it was scheduled *)
          (match m.M.current with
          | Some cur when cur == proc -> ()
          | Some _ | None -> Scheduler.switch_to m proc);
          Engine.with_category m.M.engine Engine.Profiler.User_ref (fun () ->
              Machine.charge m cycles));
      now = (fun () -> Engine.now m.M.engine);
    }

let alloc_buffer m proc ~bytes =
  if bytes <= 0 then invalid_arg "Kernel.alloc_buffer: size must be positive";
  let page_size = Layout.page_size m.M.layout in
  let pages = (bytes + page_size - 1) / page_size in
  let vpn0 = proc.Proc.brk_vpn in
  for i = 0 to pages - 1 do
    ignore (Vm.map_new_page m proc ~vpn:(vpn0 + i) ())
  done;
  proc.Proc.brk_vpn <- vpn0 + pages;
  vpn0 * page_size

(* Kernel-internal resolution: bring the page in if needed. *)
let kernel_resolve m proc ~vaddr =
  let vpn = Layout.page_of_addr m.M.layout vaddr in
  match Page_table.find proc.Proc.page_table vpn with
  | Some pte when pte.Pte.present -> pte.Pte.ppage
  | Some _ -> Vm.page_in m proc ~vpn
  | None ->
      raise
        (Vm.Segfault
           { pid = proc.Proc.pid; vaddr; access = Mmu.Read;
             reason = "kernel access to unmapped user page" })

let write_user m proc ~vaddr data =
  let layout = m.M.layout in
  let page_size = Layout.page_size layout in
  let len = Bytes.length data in
  let rec go off =
    if off < len then begin
      let addr = vaddr + off in
      let room = page_size - Layout.offset_in_page layout addr in
      let piece = min room (len - off) in
      let frame = kernel_resolve m proc ~vaddr:addr in
      let paddr =
        Phys_mem.frame_base m.M.mem frame + Layout.offset_in_page layout addr
      in
      Phys_mem.write_bytes m.M.mem ~addr:paddr (Bytes.sub data off piece);
      (* a kernel write dirties the page like any other write *)
      (match
         Page_table.find proc.Proc.page_table
           (Layout.page_of_addr layout addr)
       with
      | Some pte -> pte.Pte.dirty <- true
      | None -> ());
      go (off + piece)
    end
  in
  go 0

let read_user m proc ~vaddr ~len =
  let layout = m.M.layout in
  let page_size = Layout.page_size layout in
  let out = Bytes.make len '\000' in
  let rec go off =
    if off < len then begin
      let addr = vaddr + off in
      let room = page_size - Layout.offset_in_page layout addr in
      let piece = min room (len - off) in
      let frame = kernel_resolve m proc ~vaddr:addr in
      let paddr =
        Phys_mem.frame_base m.M.mem frame + Layout.offset_in_page layout addr
      in
      Bytes.blit (Phys_mem.read_bytes m.M.mem ~addr:paddr ~len:piece) 0 out off
        piece;
      go (off + piece)
    end
  in
  go 0;
  out

let touch_dirty m proc ~vaddr =
  let cpu = user_cpu m proc in
  let aligned = vaddr land lnot 3 in
  let v = cpu.Initiator.load ~vaddr:aligned in
  cpu.Initiator.store ~vaddr:aligned v

let vdev_addr m ~index ~offset =
  Layout.dev_proxy_addr m.M.layout ~page:index ~offset
