module Engine = Udma_sim.Engine
module Metrics = Udma_obs.Metrics
module Trace = Udma_sim.Trace
module Layout = Udma_mmu.Layout
module Pte = Udma_mmu.Pte
module Page_table = Udma_mmu.Page_table
module Mmu = Udma_mmu.Mmu
module Phys_mem = Udma_memory.Phys_mem
module Frame_allocator = Udma_memory.Frame_allocator
module Backing_store = Udma_memory.Backing_store
module Dma_engine = Udma_dma.Dma_engine
module Udma_engine = Udma.Udma_engine
module M = Machine

exception Segfault of {
  pid : int;
  vaddr : int;
  access : Mmu.access;
  reason : string;
}

exception Out_of_memory

let () =
  Printexc.register_printer (function
    | Segfault { pid; vaddr; access; reason } ->
        Some
          (Format.asprintf "Vm.Segfault(pid=%d, %#x, %a: %s)" pid vaddr
             Mmu.pp_access access reason)
    | Out_of_memory -> Some "Vm.Out_of_memory"
    | _ -> None)

let segfault proc vaddr access reason =
  raise (Segfault { pid = proc.Proc.pid; vaddr; access; reason })

let is_user_mem_vpn m vpn =
  vpn >= 0 && vpn < Layout.mem_pages m.M.layout

(* ---------- I2: proxy-mapping invalidation ---------- *)

(* Any change to vpn→frame invalidates PROXY(vpn)→PROXY(frame). *)
let invalidate_proxy_mapping m proc ~vpn =
  if M.skips m `I2 then ()
  else
  let pvpn = M.proxy_vpn m vpn in
  (match Page_table.find proc.Proc.page_table pvpn with
  | Some _ ->
      Page_table.remove proc.Proc.page_table pvpn;
      Metrics.incr m.M.metrics "vm.proxy_invalidations"
  | None -> ());
  Mmu.flush_tlb_page m.M.mmu ~vpn:pvpn

(* ---------- I4: may this frame be replaced right now? ---------- *)

let frame_dma_busy m frame =
  if M.skips m `I4 then false
  else begin
  Machine.charge m m.M.costs.Cost_model.remap_check;
  match m.M.udma with
  | Some u -> Udma_engine.mem_frame_busy u ~frame
  | None ->
      Dma_engine.mem_page_in_flight m.M.dma
        ~page_size:(Layout.page_size m.M.layout) frame
  end

(* ---------- I3: content consistency ---------- *)

let proxy_pte m proc ~vpn =
  Page_table.find proc.Proc.page_table (M.proxy_vpn m vpn)

(* Under [Proxy_dirty_union] the paging code must treat a page as dirty
   when either it or its proxy page is dirty (§6's alternative). *)
let effective_dirty (m : M.t) proc ~vpn (pte : Pte.t) =
  match m.M.i3_policy with
  | M.Write_upgrade -> pte.Pte.dirty
  | M.Proxy_dirty_union -> (
      pte.Pte.dirty
      ||
      match proxy_pte m proc ~vpn with
      | Some p -> p.Pte.dirty
      | None -> false)

let clear_dirty (m : M.t) proc ~vpn (pte : Pte.t) =
  pte.Pte.dirty <- false;
  match m.M.i3_policy with
  | M.Write_upgrade -> ()
  | M.Proxy_dirty_union -> (
      match proxy_pte m proc ~vpn with
      | Some p -> p.Pte.dirty <- false
      | None -> ())

(* ---------- paging mechanics ---------- *)

let read_frame m frame =
  Phys_mem.read_bytes m.M.mem
    ~addr:(Phys_mem.frame_base m.M.mem frame)
    ~len:(Phys_mem.page_size m.M.mem)

let write_frame m frame data =
  Phys_mem.write_bytes m.M.mem ~addr:(Phys_mem.frame_base m.M.mem frame) data

let page_out_frame m proc ~vpn ~frame ~(pte : Pte.t) =
  let key = (proc.Proc.pid, vpn) in
  if effective_dirty m proc ~vpn pte then begin
    Machine.charge m m.M.costs.Cost_model.page_io;
    Metrics.incr m.M.metrics "vm.page_outs";
    let data = read_frame m frame in
    match Hashtbl.find_opt m.M.swap_slots key with
    | Some slot -> Backing_store.overwrite m.M.swap slot data
    | None -> Hashtbl.replace m.M.swap_slots key (Backing_store.store m.M.swap data)
  end
  else if not (Hashtbl.mem m.M.swap_slots key) then
    (* never written and never swapped: preserve contents anyway so a
       clean page loaded by the kernel survives *)
    Hashtbl.replace m.M.swap_slots key
      (Backing_store.store m.M.swap (read_frame m frame));
  clear_dirty m proc ~vpn pte;
  invalidate_proxy_mapping m proc ~vpn;
  pte.Pte.present <- false;
  pte.Pte.ppage <- -1;
  Hashtbl.remove m.M.frame_owner frame;
  Mmu.flush_tlb_page m.M.mmu ~vpn
(* ownership of [frame] passes to the caller of [evict_one] *)

(* Clock replacement honouring pins and I4. *)
let evict_one m =
  let frames = Phys_mem.frames m.M.mem in
  let try_frame frame =
    match Hashtbl.find_opt m.M.frame_owner frame with
    | None -> `Skip
    | Some (pid, vpn) -> (
        match M.find_proc m ~pid with
        | None -> `Skip
        | Some proc -> (
            match Page_table.find proc.Proc.page_table vpn with
            | None -> `Skip
            | Some pte when not pte.Pte.present -> `Skip
            | Some pte ->
                if M.frame_is_pinned m frame then `Skip
                else if frame_dma_busy m frame then begin
                  Metrics.incr m.M.metrics "vm.i4_skips";
                  `Busy
                end
                else if pte.Pte.referenced then begin
                  (* second chance *)
                  pte.Pte.referenced <- false;
                  `Skip
                end
                else `Victim (proc, vpn, frame, pte)))
  in
  let rec sweep remaining saw_busy =
    if remaining = 0 then
      if saw_busy then `All_busy else `None
    else begin
      let frame = m.M.clock_hand in
      m.M.clock_hand <-
        (if m.M.clock_hand + 1 >= frames then 0 else m.M.clock_hand + 1);
      match try_frame frame with
      | `Victim v -> `Found v
      | `Busy -> sweep (remaining - 1) true
      | `Skip -> sweep (remaining - 1) saw_busy
    end
  in
  (* two full passes: the first clears referenced bits *)
  let rec attempt tries =
    match sweep (2 * frames) false with
    | `Found (proc, vpn, frame, pte) ->
        Metrics.incr m.M.metrics "vm.evictions";
        page_out_frame m proc ~vpn ~frame ~pte;
        frame
    | `All_busy when tries > 0 ->
        (* §6: "wait until the transfer finishes" *)
        ignore
          (Engine.wait_for m.M.engine
             ~poll_cost:m.M.costs.Cost_model.remap_check (fun () ->
               not (Dma_engine.busy m.M.dma)));
        attempt (tries - 1)
    | `All_busy | `None -> raise Out_of_memory
  in
  attempt 8

let alloc_frame m =
  match Frame_allocator.alloc m.M.alloc with
  | Some f -> f
  | None -> evict_one m

(* ---------- mapping ---------- *)

let map_new_page m proc ~vpn ?(writable = true) () =
  if not (is_user_mem_vpn m vpn) then
    invalid_arg "Vm.map_new_page: not a user-memory page";
  (match Page_table.find proc.Proc.page_table vpn with
  | Some pte when pte.Pte.present ->
      invalid_arg "Vm.map_new_page: already mapped"
  | Some _ | None -> ());
  let frame = alloc_frame m in
  Phys_mem.fill_frame m.M.mem ~frame 0;
  Page_table.set proc.Proc.page_table vpn (Pte.make ~writable ~ppage:frame ());
  Hashtbl.replace m.M.frame_owner frame (proc.Proc.pid, vpn);
  Metrics.incr m.M.metrics "vm.maps";
  frame

let frame_of_vpn _m proc ~vpn =
  match Page_table.find proc.Proc.page_table vpn with
  | Some pte when pte.Pte.present -> Some pte.Pte.ppage
  | Some _ | None -> None

let unmap_page m proc ~vpn =
  match Page_table.find proc.Proc.page_table vpn with
  | None -> invalid_arg "Vm.unmap_page: not mapped"
  | Some pte ->
      if pte.Pte.present then begin
        let frame = pte.Pte.ppage in
        if M.frame_is_pinned m frame then
          failwith "Vm.unmap_page: frame is pinned";
        if frame_dma_busy m frame then
          failwith "Vm.unmap_page: frame busy with DMA (I4)";
        Hashtbl.remove m.M.frame_owner frame;
        Frame_allocator.free m.M.alloc frame
      end;
      invalidate_proxy_mapping m proc ~vpn;
      Page_table.remove proc.Proc.page_table vpn;
      Mmu.flush_tlb_page m.M.mmu ~vpn;
      (match Hashtbl.find_opt m.M.swap_slots (proc.Proc.pid, vpn) with
      | Some slot ->
          Backing_store.release m.M.swap slot;
          Hashtbl.remove m.M.swap_slots (proc.Proc.pid, vpn)
      | None -> ())

let map_device_proxy m proc ~vdev_index ~pdev_index ~writable =
  let dev_pages = Layout.dev_pages m.M.layout in
  if vdev_index < 0 || vdev_index >= dev_pages
     || pdev_index < 0 || pdev_index >= dev_pages then
    invalid_arg "Vm.map_device_proxy: index out of range";
  let base_page = Layout.page_of_addr m.M.layout (Layout.dev_proxy_base m.M.layout) in
  Page_table.set proc.Proc.page_table (base_page + vdev_index)
    (Pte.make ~writable ~ppage:(base_page + pdev_index) ());
  Metrics.incr m.M.metrics "vm.device_proxy_maps"

(* ---------- paging entry points ---------- *)

let page_in m proc ~vpn =
  let key = (proc.Proc.pid, vpn) in
  match Page_table.find proc.Proc.page_table vpn with
  | Some pte when not pte.Pte.present -> (
      match Hashtbl.find_opt m.M.swap_slots key with
      | None -> invalid_arg "Vm.page_in: page has no swap slot"
      | Some slot ->
          let frame = alloc_frame m in
          Machine.charge m m.M.costs.Cost_model.page_io;
          Metrics.incr m.M.metrics "vm.page_ins";
          write_frame m frame (Backing_store.load m.M.swap slot);
          pte.Pte.present <- true;
          pte.Pte.ppage <- frame;
          pte.Pte.dirty <- false;
          pte.Pte.referenced <- false;
          Hashtbl.replace m.M.frame_owner frame (proc.Proc.pid, vpn);
          frame)
  | Some pte -> pte.Pte.ppage
  | None -> invalid_arg "Vm.page_in: page not mapped"

let clean_page m proc ~vpn =
  match Page_table.find proc.Proc.page_table vpn with
  | Some pte when pte.Pte.present && effective_dirty m proc ~vpn pte ->
      let frame = pte.Pte.ppage in
      (* the paper's race rule: never clear the dirty bit while a DMA
         transfer to the page is in progress *)
      if frame_dma_busy m frame then begin
        Metrics.incr m.M.metrics "vm.clean_deferred";
        false
      end
      else begin
        Machine.charge m m.M.costs.Cost_model.page_io;
        Metrics.incr m.M.metrics "vm.cleans";
        let key = (proc.Proc.pid, vpn) in
        let data = read_frame m frame in
        (match Hashtbl.find_opt m.M.swap_slots key with
        | Some slot -> Backing_store.overwrite m.M.swap slot data
        | None ->
            Hashtbl.replace m.M.swap_slots key
              (Backing_store.store m.M.swap data));
        clear_dirty m proc ~vpn pte;
        (match m.M.i3_policy with
        | M.Write_upgrade when M.skips m `I3 ->
            (* deliberate bug: leave the proxy page writable *)
            ()
        | M.Write_upgrade ->
            (* I3: the proxy page must become read-only again *)
            let pvpn = M.proxy_vpn m vpn in
            (match Page_table.find proc.Proc.page_table pvpn with
            | Some ppte -> ppte.Pte.writable <- false
            | None -> ());
            Mmu.flush_tlb_page m.M.mmu ~vpn:pvpn
        | M.Proxy_dirty_union ->
            (* the proxy page keeps its own dirty bit; no protection
               change is needed *)
            ());
        true
      end
  | Some _ -> true (* clean or absent: nothing to do *)
  | None -> invalid_arg "Vm.clean_page: page not mapped"

(* ---------- fault handling (§6) ---------- *)

let charge_fault m = Machine.charge m m.M.costs.Cost_model.page_fault

(* The three cases for a memory-proxy fault (§6, Maintaining I2), plus
   the I3 write-upgrade. *)
let handle_proxy_fault m proc access ~vaddr =
  proc.Proc.proxy_faults <- proc.Proc.proxy_faults + 1;
  Metrics.incr m.M.metrics "vm.proxy_faults";
  let vmem_addr = Layout.unproxy m.M.layout vaddr in
  let vpn = Layout.page_of_addr m.M.layout vmem_addr in
  let pvpn = M.proxy_vpn m vpn in
  match Page_table.find proc.Proc.page_table vpn with
  | None ->
      (* case 3: vmem_page not accessible — like an illegal access *)
      segfault proc vaddr access "proxy fault on unmapped page"
  | Some real ->
      let frame =
        if real.Pte.present then real.Pte.ppage
        else begin
          (* case 2: valid but not in core — page it in first *)
          ignore (page_in m proc ~vpn);
          real.Pte.ppage
        end
      in
      (* case 1: create PROXY(vmem_page) -> PROXY(pmem_page) *)
      Machine.charge m m.M.costs.Cost_model.proxy_map;
      (match access with
      | Mmu.Write when not real.Pte.writable ->
          segfault proc vaddr access
            "proxy write to read-only page (read-only pages may only \
             be transfer sources)"
      | Mmu.Write | Mmu.Read -> ());
      let writable =
        match m.M.i3_policy with
        | M.Proxy_dirty_union ->
            (* the proxy page is writable whenever the real page is;
               its own dirty bit tracks incoming transfers *)
            real.Pte.writable
        | M.Write_upgrade when M.skips m `I3 ->
            (* deliberate bug: enable the write without dirtying *)
            real.Pte.writable
        | M.Write_upgrade ->
            (* I3: writable only while the real page is dirty *)
            (match access with
            | Mmu.Write when not real.Pte.dirty ->
                (* upgrade: mark the real page dirty, enable the write *)
                Machine.charge m m.M.costs.Cost_model.dirty_upgrade;
                Metrics.incr m.M.metrics "vm.dirty_upgrades";
                real.Pte.dirty <- true
            | Mmu.Write | Mmu.Read -> ());
            real.Pte.writable && real.Pte.dirty
      in
      Page_table.set proc.Proc.page_table pvpn
        (Pte.make ~writable ~ppage:(M.proxy_ppage m frame) ());
      Mmu.flush_tlb_page m.M.mmu ~vpn:pvpn

let handle_fault m proc access ~vaddr =
  (* Fault service is kernel work regardless of what the CPU was doing
     when the reference trapped. *)
  Engine.with_category m.M.engine Engine.Profiler.Kernel @@ fun () ->
  let t0 = Engine.now m.M.engine in
  charge_fault m;
  proc.Proc.faults <- proc.Proc.faults + 1;
  Metrics.incr m.M.metrics "vm.faults";
  let region = Layout.region_of m.M.layout vaddr in
  let kind =
    match region with
    | Some Layout.Mem_proxy -> "proxy"
    | Some Layout.Mem -> "page"
    | Some Layout.Dev_proxy -> "dev-proxy"
    | None -> "illegal"
  in
  Trace.record m.M.trace ~time:t0 Udma_obs.Event.Vm
    (Udma_obs.Event.Fault { vaddr; kind });
  Fun.protect
    ~finally:(fun () ->
      Metrics.observe m.M.metrics "vm.fault_cycles"
        (Engine.now m.M.engine - t0))
  @@ fun () ->
  match region with
  | None -> segfault proc vaddr access "address outside every region"
  | Some Layout.Mem -> (
      let vpn = Layout.page_of_addr m.M.layout vaddr in
      match Page_table.find proc.Proc.page_table vpn with
      | Some pte when not pte.Pte.present ->
          ignore (page_in m proc ~vpn);
          (* any remap invalidated the proxy page (I2); it will fault
             back in on demand *)
          ()
      | Some pte -> (
          match access with
          | Mmu.Write when not pte.Pte.writable ->
              segfault proc vaddr access "write to read-only page"
          | Mmu.Write | Mmu.Read ->
              (* spurious: stale TLB already handled by the MMU *)
              ())
      | None -> segfault proc vaddr access "unmapped user page")
  | Some Layout.Mem_proxy -> handle_proxy_fault m proc access ~vaddr
  | Some Layout.Dev_proxy ->
      segfault proc vaddr access
        "device proxy pages are granted only by the mapping system call"

(* ---------- traditional-DMA pinning ---------- *)

let pin m proc ~vpn =
  let frame =
    match Page_table.find proc.Proc.page_table vpn with
    | Some pte when pte.Pte.present -> pte.Pte.ppage
    | Some _ -> page_in m proc ~vpn
    | None -> invalid_arg "Vm.pin: page not mapped"
  in
  Machine.charge m m.M.costs.Cost_model.pin_page;
  Metrics.incr m.M.metrics "vm.pins";
  let n = Option.value (Hashtbl.find_opt m.M.pinned frame) ~default:0 in
  Hashtbl.replace m.M.pinned frame (n + 1);
  frame

let unpin m ~frame =
  Machine.charge m m.M.costs.Cost_model.unpin_page;
  match Hashtbl.find_opt m.M.pinned frame with
  | Some 1 -> Hashtbl.remove m.M.pinned frame
  | Some n when n > 1 -> Hashtbl.replace m.M.pinned frame (n - 1)
  | Some _ | None -> invalid_arg "Vm.unpin: frame not pinned"

(* ---------- introspection ---------- *)

let resident_pages m proc =
  ignore m;
  List.length
    (List.filter
       (fun (_, pte) -> pte.Pte.present)
       (Page_table.entries proc.Proc.page_table))

let proxy_mappings m proc =
  let first_proxy = M.proxy_vpn m 0 in
  let dev_base = Layout.page_of_addr m.M.layout (Layout.dev_proxy_base m.M.layout) in
  List.length
    (List.filter
       (fun (vpn, pte) -> pte.Pte.present && vpn >= first_proxy && vpn < dev_base)
       (Page_table.entries proc.Proc.page_table))
