(* Midend: decompose flat elements into timed bursts with descriptor
   fetch/setup cost. *)

type burst = {
  element : Descriptor.element;
  start_cycle : int;
  overhead_cycles : int;
  word_cycles : int;
  words : int;
}

type plan = { bursts : burst list; total_cycles : int; total_bytes : int }

let words_of_bytes n = (n + 3) / 4

(* A descriptor record is modelled as four words (source, destination,
   length, next) fetched over the same bus the data moves on: the fetch
   costs one 16-byte burst. The first element's registers are loaded by
   the initiating store sequence, so only elements after the first pay
   the fetch. This makes the per-element overhead self-calibrating
   against the bus timing instead of a free parameter. *)
let desc_fetch_cycles bus = Bus.dma_burst_cycles bus ~nbytes:16

let dev_cycles (e : Descriptor.element) =
  match (e.src, e.dst) with
  | Descriptor.Dev (p, a), _ | _, Descriptor.Dev (p, a) ->
      p.Device.access_cycles ~addr:a ~len:e.len
  | Descriptor.Mem _, Descriptor.Mem _ -> 0

let burst_cycles b = b.overhead_cycles + (b.words * b.word_cycles)

let plan ~bus ?desc_fetch_cycles:fetch elems =
  let timing = Bus.timing bus in
  let fetch =
    match fetch with Some c -> c | None -> desc_fetch_cycles bus
  in
  let cursor = ref 0 in
  let bursts =
    List.mapi
      (fun i (e : Descriptor.element) ->
        let overhead =
          (if i = 0 then 0 else fetch)
          + timing.Bus.burst_setup_cycles + dev_cycles e
        in
        let b =
          {
            element = e;
            start_cycle = !cursor;
            overhead_cycles = overhead;
            word_cycles = timing.Bus.burst_word_cycles;
            words = words_of_bytes e.len;
          }
        in
        cursor := !cursor + burst_cycles b;
        b)
      elems
  in
  let total_bytes =
    List.fold_left (fun acc (e : Descriptor.element) -> acc + e.len) 0 elems
  in
  { bursts; total_cycles = !cursor; total_bytes }
