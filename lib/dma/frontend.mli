(** Frontend: descriptor validation and normalization.

    Turns a {!Descriptor.t} into the ordered flat element list the
    midend plans over, refusing malformed descriptors with the same
    error precedence the flat engine used: length first, then the
    endpoint pairing, then source bounds/permission, then destination.

    Page-boundary clamping lives here too (it moved out of the UDMA
    engine): the UDMA initiation path confines each element to the page
    its referenced proxy names, using {!clamp_to_page} per element. *)

val normalize :
  mem_size:int ->
  Descriptor.t ->
  (Descriptor.element list, Descriptor.error) result
(** Validate every element of [desc]. An empty descriptor or any
    zero/negative-length element is [Bad_size]; mem→mem or dev→dev
    elements are [Unsupported_pair]; out-of-bounds memory is
    [Bad_size]; a device refusing the address is [Device_refused]. *)

val page_room : page_size:int -> int -> int
(** Bytes from address to the end of its page. *)

val clamp_to_page : page_size:int -> addr:int -> int -> int
(** [clamp_to_page ~page_size ~addr len] is the prefix of [len] that
    keeps [addr .. addr+len) inside [addr]'s page. *)
