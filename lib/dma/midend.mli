(** Midend: burst decomposition and the descriptor cost model.

    Each flat element becomes one bus burst. An element's cost is

    {[ fetch (elements after the first)
       + burst_setup_cycles
       + device access cycles
       + words × burst_word_cycles ]}

    so a single-element plan costs exactly what the flat engine
    charged — [Bus.dma_burst_cycles ~nbytes] plus device latency — and
    multi-element descriptors pay a per-element fetch/setup overhead
    that makes short chunks measurably worse (the irregular-DMAC
    effect, measured in experiment E15). *)

type burst = {
  element : Descriptor.element;
  start_cycle : int;      (** cycle offset from transfer start *)
  overhead_cycles : int;  (** fetch (non-first) + setup + device latency *)
  word_cycles : int;      (** per-word cost while data is on the wire *)
  words : int;            (** 32-bit words in the burst *)
}

type plan = { bursts : burst list; total_cycles : int; total_bytes : int }

val desc_fetch_cycles : Bus.t -> int
(** Cost of fetching one descriptor record: a 4-word (16-byte) burst on
    the same bus, [Bus.dma_burst_cycles ~nbytes:16] (28 cycles at
    default timing). Charged per element after the first. *)

val burst_cycles : burst -> int
(** Total cycles of one burst: overhead + words × per-word. *)

val plan : bus:Bus.t -> ?desc_fetch_cycles:int -> Descriptor.element list -> plan
(** Lay the elements out back-to-back on the bus. The optional
    [desc_fetch_cycles] overrides the self-calibrated fetch cost (used
    by cost-model tests). *)
