(** Backend: plan realization against {!Bus.timing}.

    The backend owns the two hardware-facing halves of a transfer: the
    progress counter a mid-flight status probe reads, and the actual
    data movement performed atomically at completion time (matching the
    flat engine's deposit-at-completion model). *)

val bytes_done : Midend.plan -> elapsed:int -> int
(** Bytes on the wire after [elapsed] cycles: zero while a burst is in
    its fetch/setup/device overhead, then one word per
    [burst_word_cycles], capped at each element's length. *)

val execute : Bus.t -> Midend.plan -> unit
(** Move every element's data (memory→device or device→memory). *)
