(** Typed transfer descriptors (the DMA frontend's input language).

    A descriptor describes {e what} to move; the frontend validates it,
    the midend decomposes it into bursts with per-descriptor fetch cost,
    and the backend realizes bus occupancy. The split follows the
    modular-iDMA architecture (Benz et al.): description is an API
    layer, cost realization is another.

    Formatter convention for [lib/dma]: every public type [ty] here and
    in the sibling modules exposes exactly one [pp_ty :
    Format.formatter -> ty -> unit] (or [pp] for the module's main
    type); other modules alias these printers instead of redefining
    them. *)

type endpoint =
  | Mem of int                  (** physical byte address in real memory *)
  | Dev of Device.port * int    (** device port + device-internal address *)

val pp_endpoint : Format.formatter -> endpoint -> unit

type error =
  | Busy                  (** a transfer is already in flight *)
  | Bad_size              (** empty/negative length or beyond memory limits *)
  | Unsupported_pair      (** mem→mem or dev→dev element *)
  | Device_refused        (** endpoint not readable/writable at that address *)

val pp_error : Format.formatter -> error -> unit

type element = { src : endpoint; dst : endpoint; len : int }
(** One flat piece of a transfer: [len] bytes from [src] to [dst]. *)

val pp_element : Format.formatter -> element -> unit

type t =
  | Contiguous of { src : endpoint; dst : endpoint; nbytes : int }
      (** Today's shape: one flat byte range. Cost-identical to the
          pre-descriptor engine. *)
  | Strided of {
      src : endpoint;
      dst : endpoint;
      stride : int;  (** source advance between consecutive chunks *)
      chunk : int;   (** bytes moved per repetition *)
      reps : int;    (** number of chunks *)
    }
      (** [reps] chunks of [chunk] bytes; the source steps by [stride]
          per chunk (a strided read of rows/columns), the destination is
          packed densely ([chunk] apart). Total bytes = [chunk * reps]. *)
  | Scatter_gather of element list
      (** Arbitrary vector of elements, realized in order. *)

val pp : Format.formatter -> t -> unit

val advance : endpoint -> int -> endpoint
(** [advance ep n] is [ep] with its address moved forward [n] bytes. *)

val elements : t -> element list
(** Flatten a descriptor into its ordered flat elements. *)

val total_bytes : t -> int
(** Sum of element lengths. *)
