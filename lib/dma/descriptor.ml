(* Typed transfer descriptors: the DMA frontend's input language. *)

type endpoint = Mem of int | Dev of Device.port * int

let pp_endpoint ppf = function
  | Mem a -> Format.fprintf ppf "mem:%#x" a
  | Dev (p, a) -> Format.fprintf ppf "dev(%s):%#x" p.Device.name a

type error = Busy | Bad_size | Unsupported_pair | Device_refused

let pp_error ppf = function
  | Busy -> Format.pp_print_string ppf "busy"
  | Bad_size -> Format.pp_print_string ppf "bad-size"
  | Unsupported_pair -> Format.pp_print_string ppf "unsupported-pair"
  | Device_refused -> Format.pp_print_string ppf "device-refused"

type element = { src : endpoint; dst : endpoint; len : int }

let pp_element ppf e =
  Format.fprintf ppf "%a->%a[%d]" pp_endpoint e.src pp_endpoint e.dst e.len

type t =
  | Contiguous of { src : endpoint; dst : endpoint; nbytes : int }
  | Strided of {
      src : endpoint;
      dst : endpoint;
      stride : int;
      chunk : int;
      reps : int;
    }
  | Scatter_gather of element list

let advance ep delta =
  match ep with Mem a -> Mem (a + delta) | Dev (p, a) -> Dev (p, a + delta)

let elements = function
  | Contiguous { src; dst; nbytes } -> [ { src; dst; len = nbytes } ]
  | Strided { src; dst; stride; chunk; reps } ->
      List.init (max reps 0) (fun i ->
          {
            src = advance src (i * stride);
            dst = advance dst (i * chunk);
            len = chunk;
          })
  | Scatter_gather es -> es

let total_bytes d = List.fold_left (fun acc e -> acc + e.len) 0 (elements d)

let pp ppf = function
  | Contiguous { src; dst; nbytes } ->
      Format.fprintf ppf "contiguous %a->%a[%d]" pp_endpoint src pp_endpoint
        dst nbytes
  | Strided { src; dst; stride; chunk; reps } ->
      Format.fprintf ppf "strided %a->%a stride=%d chunk=%d reps=%d"
        pp_endpoint src pp_endpoint dst stride chunk reps
  | Scatter_gather es ->
      Format.fprintf ppf "sg[%d](%a)" (List.length es)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
           pp_element)
        es
