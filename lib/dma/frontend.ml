(* Frontend: validate and normalize descriptors into flat elements. *)

open Descriptor

let endpoint_ok ~mem_size ~as_src len = function
  | Mem a -> a >= 0 && a + len <= mem_size
  | Dev (p, a) ->
      if as_src then p.Device.readable ~addr:a else p.Device.writable ~addr:a

let check_element ~mem_size e =
  if e.len <= 0 then Error Bad_size
  else
    match (e.src, e.dst) with
    | Mem _, Mem _ | Dev _, Dev _ -> Error Unsupported_pair
    | (Mem _ | Dev _), (Mem _ | Dev _) ->
        if not (endpoint_ok ~mem_size ~as_src:true e.len e.src) then
          match e.src with
          | Mem _ -> Error Bad_size
          | Dev _ -> Error Device_refused
        else if not (endpoint_ok ~mem_size ~as_src:false e.len e.dst) then
          match e.dst with
          | Mem _ -> Error Bad_size
          | Dev _ -> Error Device_refused
        else Ok ()

let normalize ~mem_size desc =
  let elems = elements desc in
  if elems = [] then Error Bad_size
  else
    let rec go = function
      | [] -> Ok elems
      | e :: rest -> (
          match check_element ~mem_size e with
          | Ok () -> go rest
          | Error _ as err -> err)
    in
    go elems

let page_room ~page_size addr = page_size - (addr mod page_size)

let clamp_to_page ~page_size ~addr len = min len (page_room ~page_size addr)
