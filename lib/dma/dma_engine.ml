module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Event = Udma_obs.Event
module Metrics = Udma_obs.Metrics
module Phys_mem = Udma_memory.Phys_mem

type endpoint = Mem of int | Dev of Device.port * int

let pp_endpoint ppf = function
  | Mem a -> Format.fprintf ppf "mem:%#x" a
  | Dev (p, a) -> Format.fprintf ppf "dev(%s):%#x" p.Device.name a

type error = Busy | Bad_size | Unsupported_pair | Device_refused

let pp_error ppf = function
  | Busy -> Format.pp_print_string ppf "busy"
  | Bad_size -> Format.pp_print_string ppf "bad-size"
  | Unsupported_pair -> Format.pp_print_string ppf "unsupported-pair"
  | Device_refused -> Format.pp_print_string ppf "device-refused"

type transfer = {
  src : endpoint;
  dst : endpoint;
  nbytes : int;
  started_at : int;
  duration : int;
  on_complete : unit -> unit;
  id : int;
}

type t = {
  engine : Engine.t;
  bus : Bus.t;
  trace : Trace.t;
  metrics : Metrics.t;
  mutable current : transfer option;
  mutable next_id : int;
  mutable transfers_completed : int;
  mutable bytes_moved : int;
}

let create ~engine ~bus ?(trace = Trace.create ~enabled:false ())
    ?(metrics = Metrics.create ()) () =
  {
    engine;
    bus;
    trace;
    metrics;
    current = None;
    next_id = 0;
    transfers_completed = 0;
    bytes_moved = 0;
  }

let busy t = t.current <> None

let mem_size t = Phys_mem.size (Bus.memory t.bus)

let endpoint_ok t ~as_src nbytes = function
  | Mem a -> a >= 0 && a + nbytes <= mem_size t
  | Dev (p, a) ->
      if as_src then p.Device.readable ~addr:a else p.Device.writable ~addr:a

let move t xfer =
  let mem = Bus.memory t.bus in
  match (xfer.src, xfer.dst) with
  | Mem src, Dev (p, dst) ->
      let data = Phys_mem.read_bytes mem ~addr:src ~len:xfer.nbytes in
      p.Device.dev_write ~addr:dst data
  | Dev (p, src), Mem dst ->
      let data = p.Device.dev_read ~addr:src ~len:xfer.nbytes in
      Phys_mem.write_bytes mem ~addr:dst data
  | Mem _, Mem _ | Dev _, Dev _ -> assert false (* refused at start *)

let start t ~src ~dst ~nbytes ~on_complete =
  if busy t then Error Busy
  else if nbytes <= 0 then Error Bad_size
  else
    match (src, dst) with
    | Mem _, Mem _ | Dev _, Dev _ -> Error Unsupported_pair
    | (Mem _ | Dev _), (Mem _ | Dev _) ->
        if not (endpoint_ok t ~as_src:true nbytes src) then
          if (match src with Mem _ -> true | Dev _ -> false) then
            Error Bad_size
          else Error Device_refused
        else if not (endpoint_ok t ~as_src:false nbytes dst) then
          if (match dst with Mem _ -> true | Dev _ -> false) then
            Error Bad_size
          else Error Device_refused
        else begin
          let dev_cycles =
            match (src, dst) with
            | Dev (p, a), _ | _, Dev (p, a) ->
                p.Device.access_cycles ~addr:a ~len:nbytes
            | Mem _, Mem _ -> 0
          in
          let duration = Bus.dma_burst_cycles t.bus ~nbytes + dev_cycles in
          let id = t.next_id in
          t.next_id <- t.next_id + 1;
          let xfer =
            {
              src;
              dst;
              nbytes;
              started_at = Engine.now t.engine;
              duration;
              on_complete;
              id;
            }
          in
          t.current <- Some xfer;
          let addr_of = function Mem a -> a | Dev (_, a) -> a in
          Trace.record t.trace ~time:xfer.started_at Event.Dma
            (Event.Dma_burst
               { src = addr_of src; dst = addr_of dst; nbytes; duration });
          (* The cycles the clock jumps to reach the completion are the
             burst itself: attribute them to the Dma category. *)
          Engine.schedule t.engine ~cat:Engine.Profiler.Dma ~delay:duration
            (fun _ ->
              (* An abort may have retired this transfer already. *)
              match t.current with
              | Some cur when cur.id = id ->
                  move t cur;
                  t.current <- None;
                  t.transfers_completed <- t.transfers_completed + 1;
                  t.bytes_moved <- t.bytes_moved + cur.nbytes;
                  Metrics.incr t.metrics "dma.transfers";
                  Metrics.add t.metrics "dma.bytes_moved" cur.nbytes;
                  cur.on_complete ()
              | Some _ | None -> ());
          Ok ()
        end

let source t = Option.map (fun x -> x.src) t.current
let destination t = Option.map (fun x -> x.dst) t.current
let count t = match t.current with Some x -> x.nbytes | None -> 0

let remaining_bytes t =
  match t.current with
  | None -> 0
  | Some x ->
      let elapsed = Engine.now t.engine - x.started_at in
      if x.duration <= 0 || elapsed >= x.duration then 0
      else
        let done_bytes = x.nbytes * elapsed / x.duration in
        (* report whole words, as the hardware counter would *)
        x.nbytes - (done_bytes land lnot 3)

let transfer_base t =
  match t.current with
  | Some { src = Mem a; _ } | Some { dst = Mem a; _ } -> Some a
  | Some _ -> None
  | None -> None

let mem_page_in_flight t ~page_size frame =
  match t.current with
  | Some ({ src = Mem a; _ } as x) | Some ({ dst = Mem a; _ } as x) ->
      let lo = a / page_size and hi = (a + x.nbytes - 1) / page_size in
      frame >= lo && frame <= hi
  | Some _ | None -> false

let abort t =
  match t.current with
  | Some _ ->
      t.current <- None;
      true
  | None -> false

let transfers_completed t = t.transfers_completed
let bytes_moved t = t.bytes_moved
