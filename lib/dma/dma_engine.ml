module Engine = Udma_sim.Engine
module Trace = Udma_sim.Trace
module Event = Udma_obs.Event
module Metrics = Udma_obs.Metrics
module Phys_mem = Udma_memory.Phys_mem

type endpoint = Descriptor.endpoint = Mem of int | Dev of Device.port * int

let pp_endpoint = Descriptor.pp_endpoint

type error = Descriptor.error =
  | Busy
  | Bad_size
  | Unsupported_pair
  | Device_refused

let pp_error = Descriptor.pp_error

type transfer = {
  desc : Descriptor.t;
  elements : Descriptor.element list;
  plan : Midend.plan;
  started_at : int;
  duration : int;
  on_complete : unit -> unit;
  id : int;
}

type t = {
  engine : Engine.t;
  bus : Bus.t;
  trace : Trace.t;
  metrics : Metrics.t;
  mutable current : transfer option;
  mutable next_id : int;
  mutable transfers_completed : int;
  mutable bytes_moved : int;
}

let create ~engine ~bus ?(trace = Trace.create ~enabled:false ())
    ?(metrics = Metrics.create ()) () =
  {
    engine;
    bus;
    trace;
    metrics;
    current = None;
    next_id = 0;
    transfers_completed = 0;
    bytes_moved = 0;
  }

let busy t = t.current <> None

let mem_size t = Phys_mem.size (Bus.memory t.bus)

let addr_of = function Mem a -> a | Dev (_, a) -> a

let submit t desc ~on_complete =
  if busy t then Error Busy
  else
    match Frontend.normalize ~mem_size:(mem_size t) desc with
    | Error _ as e -> e
    | Ok elements ->
        let plan = Midend.plan ~bus:t.bus elements in
        let duration = plan.Midend.total_cycles in
        let id = t.next_id in
        t.next_id <- t.next_id + 1;
        let started_at = Engine.now t.engine in
        let xfer =
          { desc; elements; plan; started_at; duration; on_complete; id }
        in
        t.current <- Some xfer;
        List.iter
          (fun (b : Midend.burst) ->
            let e = b.Midend.element in
            Trace.record t.trace
              ~time:(started_at + b.Midend.start_cycle)
              Event.Dma
              (Event.Dma_burst
                 {
                   src = addr_of e.Descriptor.src;
                   dst = addr_of e.Descriptor.dst;
                   nbytes = e.Descriptor.len;
                   duration = Midend.burst_cycles b;
                 }))
          plan.Midend.bursts;
        (* The cycles the clock jumps to reach the completion are the
           burst itself: attribute them to the Dma category. *)
        Engine.schedule t.engine ~cat:Engine.Profiler.Dma ~delay:duration
          (fun _ ->
            (* An abort may have retired this transfer already. *)
            match t.current with
            | Some cur when cur.id = id ->
                Backend.execute t.bus cur.plan;
                t.current <- None;
                t.transfers_completed <- t.transfers_completed + 1;
                t.bytes_moved <- t.bytes_moved + cur.plan.Midend.total_bytes;
                Metrics.incr t.metrics "dma.transfers";
                Metrics.add t.metrics "dma.bytes_moved"
                  cur.plan.Midend.total_bytes;
                cur.on_complete ()
            | Some _ | None -> ());
        Ok ()

let descriptor t = Option.map (fun x -> x.desc) t.current

let source t =
  match t.current with
  | Some { elements = e :: _; _ } -> Some e.Descriptor.src
  | Some _ | None -> None

let destination t =
  match t.current with
  | Some { elements = e :: _; _ } -> Some e.Descriptor.dst
  | Some _ | None -> None

let count t =
  match t.current with Some x -> x.plan.Midend.total_bytes | None -> 0

let remaining_bytes t =
  match t.current with
  | None -> 0
  | Some x ->
      let elapsed = Engine.now t.engine - x.started_at in
      if x.duration <= 0 || elapsed >= x.duration then 0
      else
        let done_bytes = Backend.bytes_done x.plan ~elapsed in
        (* report whole words, as the hardware counter would *)
        x.plan.Midend.total_bytes - (done_bytes land lnot 3)

let transfer_base t =
  match t.current with
  | Some { elements = e :: _; _ } -> (
      match (e.Descriptor.src, e.Descriptor.dst) with
      | Mem a, _ | _, Mem a -> Some a
      | _ -> None)
  | Some _ | None -> None

let mem_page_in_flight t ~page_size frame =
  match t.current with
  | None -> false
  | Some x ->
      List.exists
        (fun (e : Descriptor.element) ->
          let mem_addr =
            match (e.src, e.dst) with
            | Mem a, _ | _, Mem a -> Some a
            | _ -> None
          in
          match mem_addr with
          | None -> false
          | Some a ->
              let lo = a / page_size and hi = (a + e.len - 1) / page_size in
              frame >= lo && frame <= hi)
        x.elements

let abort t =
  match t.current with
  | Some _ ->
      t.current <- None;
      true
  | None -> false

let transfers_completed t = t.transfers_completed
let bytes_moved t = t.bytes_moved
