(* Backend: realize a plan against the bus — progress accounting while
   in flight, data movement at completion. *)

module Phys_mem = Udma_memory.Phys_mem

let bytes_done (plan : Midend.plan) ~elapsed =
  List.fold_left
    (fun acc (b : Midend.burst) ->
      let into = elapsed - b.start_cycle - b.overhead_cycles in
      if into <= 0 then acc
      else
        let words_done =
          if b.word_cycles <= 0 then b.words else into / b.word_cycles
        in
        acc + min b.element.Descriptor.len (min words_done b.words * 4))
    0 plan.Midend.bursts

let move_element bus (e : Descriptor.element) =
  let mem = Bus.memory bus in
  match (e.src, e.dst) with
  | Descriptor.Mem src, Descriptor.Dev (p, dst) ->
      let data = Phys_mem.read_bytes mem ~addr:src ~len:e.len in
      p.Device.dev_write ~addr:dst data
  | Descriptor.Dev (p, src), Descriptor.Mem dst ->
      let data = p.Device.dev_read ~addr:src ~len:e.len in
      Phys_mem.write_bytes mem ~addr:dst data
  | Descriptor.Mem _, Descriptor.Mem _ | Descriptor.Dev _, Descriptor.Dev _ ->
      assert false (* refused by the frontend *)

let execute bus (plan : Midend.plan) =
  List.iter (fun (b : Midend.burst) -> move_element bus b.element)
    plan.Midend.bursts
