(** Modular DMA controller (paper §2, Figure 1, refactored along the
    iDMA frontend/midend/backend split).

    The engine accepts typed {!Descriptor.t} transfers. The frontend
    ({!Frontend}) validates and flattens the descriptor, the midend
    ({!Midend}) decomposes it into bursts with per-descriptor fetch
    cost, and the backend ({!Backend}) realizes bus occupancy against
    {!Bus.timing}. One descriptor may be in flight at a time; it
    occupies the bus for the planned cycles plus any device-side
    latency, then raises its completion callback (the "interrupt").
    Data is deposited atomically at completion time.

    A [Contiguous] descriptor is the flat single-burst transfer: one
    source, one destination, one length. The engine moves data between
    memory and exactly
    one device endpoint per element — memory-to-memory and
    device-to-device are refused, which is what makes the UDMA
    [BadLoad] event observable (paper §5). *)

type endpoint = Descriptor.endpoint =
  | Mem of int                  (** physical byte address in real memory *)
  | Dev of Device.port * int    (** device port + device-internal address *)

val pp_endpoint : Format.formatter -> endpoint -> unit
(** Alias of {!Descriptor.pp_endpoint} — the one printer for the type. *)

type error = Descriptor.error =
  | Busy                  (** a transfer is already in flight *)
  | Bad_size              (** nbytes <= 0 or beyond device/memory limits *)
  | Unsupported_pair      (** mem→mem or dev→dev *)
  | Device_refused        (** endpoint not readable/writable at that address *)

val pp_error : Format.formatter -> error -> unit
(** Alias of {!Descriptor.pp_error}. *)

type t

val create :
  engine:Udma_sim.Engine.t ->
  bus:Bus.t ->
  ?trace:Udma_sim.Trace.t ->
  ?metrics:Udma_obs.Metrics.t ->
  unit ->
  t
(** [trace] receives a typed [Dma_burst] event per planned burst;
    [metrics] receives the [dma.transfers] / [dma.bytes_moved]
    counters. Both default to throwaway instances (standalone engines
    in unit tests). *)

val busy : t -> bool

val submit :
  t ->
  Descriptor.t ->
  on_complete:(unit -> unit) ->
  (unit, error) result
(** [submit t desc ~on_complete] begins a descriptor transfer.
    [on_complete] fires (via the simulation engine) after the modelled
    duration, after all elements' data has been moved. *)

val descriptor : t -> Descriptor.t option
(** The in-flight descriptor, if any. *)

val source : t -> endpoint option
(** Value of the SOURCE register: the first element's source while a
    transfer is in flight. *)

val destination : t -> endpoint option
(** Value of the DESTINATION register: the first element's destination
    while a transfer is in flight. *)

val count : t -> int
(** Total bytes requested by the in-flight transfer; 0 when idle. *)

val remaining_bytes : t -> int
(** Bytes not yet on the wire, burst-aware: progress is zero during
    each burst's fetch/setup/device overhead and advances one word per
    [burst_word_cycles] after — what the hardware byte counter would
    read. 0 when idle. *)

val transfer_base : t -> int option
(** Memory-side physical base address of the in-flight transfer's first
    element, if it has one — what the kernel's I4 check reads. *)

val mem_page_in_flight : t -> page_size:int -> int -> bool
(** [mem_page_in_flight t ~page_size frame] is [true] when physical
    page [frame] overlaps the memory side of {e any} element of the
    in-flight transfer. *)

val abort : t -> bool
(** Cancel the in-flight transfer (no data is moved — including
    elements of a scatter-gather list not yet reached — and no
    completion callback fires). Returns [false] when idle. The paper
    notes such a mechanism "is not hard to imagine adding" (§5); it is
    exercised in failure-injection tests. *)

val transfers_completed : t -> int
val bytes_moved : t -> int
