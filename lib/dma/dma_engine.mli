(** Traditional DMA controller (paper §2, Figure 1).

    SOURCE, DESTINATION and COUNT registers plus a transfer state
    machine. One transfer may be in flight at a time; it occupies the
    bus for [burst_setup + words × burst_word] cycles plus any
    device-side latency, then raises its completion callback (the
    "interrupt"). Data is deposited atomically at completion time.

    The basic engine moves data between memory and exactly one device
    endpoint — memory-to-memory and device-to-device are refused, which
    is what makes the UDMA [BadLoad] event observable (paper §5). *)

type endpoint =
  | Mem of int                  (** physical byte address in real memory *)
  | Dev of Device.port * int    (** device port + device-internal address *)

val pp_endpoint : Format.formatter -> endpoint -> unit

type error =
  | Busy                  (** a transfer is already in flight *)
  | Bad_size              (** nbytes <= 0 or beyond device/memory limits *)
  | Unsupported_pair      (** mem→mem or dev→dev *)
  | Device_refused        (** endpoint not readable/writable at that address *)

val pp_error : Format.formatter -> error -> unit

type t

val create :
  engine:Udma_sim.Engine.t ->
  bus:Bus.t ->
  ?trace:Udma_sim.Trace.t ->
  ?metrics:Udma_obs.Metrics.t ->
  unit ->
  t
(** [trace] receives a typed [Dma_burst] event per transfer; [metrics]
    receives the [dma.transfers] / [dma.bytes_moved] counters. Both
    default to throwaway instances (standalone engines in unit
    tests). *)

val busy : t -> bool

val start :
  t ->
  src:endpoint ->
  dst:endpoint ->
  nbytes:int ->
  on_complete:(unit -> unit) ->
  (unit, error) result
(** [start t ~src ~dst ~nbytes ~on_complete] begins a transfer.
    [on_complete] fires (via the simulation engine) after the modelled
    duration, after the data has been moved. *)

val source : t -> endpoint option
(** Value of the SOURCE register while a transfer is in flight. *)

val destination : t -> endpoint option
(** Value of the DESTINATION register while a transfer is in flight. *)

val count : t -> int
(** Bytes requested by the in-flight transfer; 0 when idle. *)

val remaining_bytes : t -> int
(** Bytes not yet on the wire, estimated linearly; 0 when idle. *)

val transfer_base : t -> int option
(** Memory-side physical base address of the in-flight transfer, if it
    has one — what the kernel's I4 check reads. *)

val mem_page_in_flight : t -> page_size:int -> int -> bool
(** [mem_page_in_flight t ~page_size frame] is [true] when physical
    page [frame] overlaps the memory side of the in-flight transfer. *)

val abort : t -> bool
(** Cancel the in-flight transfer (no data is moved, no completion
    callback fires). Returns [false] when idle. The paper notes such a
    mechanism "is not hard to imagine adding" (§5); it is exercised in
    failure-injection tests. *)

val transfers_completed : t -> int
val bytes_moved : t -> int
