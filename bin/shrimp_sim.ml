(* Command-line driver: run any single experiment from the paper's
   evaluation with parameter overrides, or all of them. Every
   experiment subcommand takes the same observability flags: --json
   (udma-bench/1 document, the exact schema bench/main.exe --json
   writes), --out FILE, --trace (typed JSON-lines event stream on
   stderr) and --seed. *)

module Runner = Udma_workloads.Runner
module Report = Udma_obs.Report
module Json = Udma_obs.Json
module Event = Udma_obs.Event
module Metrics = Udma_obs.Metrics
module Trace = Udma_sim.Trace
open Cmdliner

(* ------------------------------------------------------------------ *)
(* common flags                                                        *)
(* ------------------------------------------------------------------ *)

type common = { json : bool; out : string option; trace : bool; seed : int }

let common_term =
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit the result as a udma-bench/1 JSON document instead of the \
             paper-style table.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the output to $(docv) instead of stdout.")
  in
  let trace =
    Arg.(
      value & flag
      & info [ "trace" ]
          ~doc:
            "Stream every typed trace event (proxy references, state-machine \
             transitions, DMA bursts, packets, faults...) as JSON lines on \
             stderr while the experiment runs.")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Seed for the randomized experiments.")
  in
  Term.(
    const (fun json out trace seed -> { json; out; trace; seed })
    $ json $ out $ trace $ seed)

let with_out c f =
  match c.out with
  | None -> f stdout
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let doc_meta c =
  [ ("generator", Report.Str "shrimp_sim"); ("seed", Report.Int c.seed) ]

(* Run [mk] (which builds the reports) with the global trace sink
   installed when asked, then render: one schema for --json, the
   derived table otherwise. *)
let emit_reports c mk =
  if c.trace then Trace.set_global_sink (Some (Event.jsonl_sink stderr));
  let reports = mk () in
  Trace.set_global_sink None;
  if c.json then
    with_out c (fun oc ->
        output_string oc
          (Json.to_string ~indent:2 (Report.bench_json ~meta:(doc_meta c) reports));
        output_char oc '\n')
  else with_out c (fun oc -> List.iter (Report.print ~oc) reports)

let sizes_arg ~doc default =
  Arg.(value & opt (list int) default & info [ "sizes" ] ~docv:"BYTES,..." ~doc)

(* ------------------------------------------------------------------ *)
(* experiment subcommands                                              *)
(*                                                                     *)
(* The set of experiments comes from Runner.experiments — adding an    *)
(* entry there is enough to get a name + eN alias command here. An     *)
(* experiment with interesting parameters can register a richer term   *)
(* in [custom_terms]; everything else gets the generic one (common     *)
(* flags plus --quick).                                                *)
(* ------------------------------------------------------------------ *)

let figure8_term =
  let messages =
    Arg.(
      value & opt int 32
      & info [ "messages" ] ~docv:"N" ~doc:"Messages per size point.")
  in
  let queued =
    Arg.(
      value & flag
      & info [ "queued" ] ~doc:"Use the section-7 queued hardware instead.")
  in
  let run c sizes messages queued =
    emit_reports c (fun () -> [ Runner.report_figure8 ~sizes ~messages ~queued () ])
  in
  Term.(
    const run $ common_term
    $ sizes_arg ~doc:"Message sizes to sweep." Udma_workloads.Sizes.figure8
    $ messages $ queued)

let hippi_term =
  let run c blocks = emit_reports c (fun () -> [ Runner.report_hippi ~blocks () ]) in
  Term.(
    const run $ common_term
    $ sizes_arg ~doc:"Block sizes to sweep." Udma_workloads.Sizes.hippi_blocks)

let crossover_term =
  let trials =
    Arg.(value & opt int 8 & info [ "trials" ] ~docv:"N" ~doc:"Trials per size.")
  in
  let run c sizes trials =
    emit_reports c (fun () -> [ Runner.report_crossover ~sizes ~trials () ])
  in
  Term.(
    const run $ common_term
    $ sizes_arg ~doc:"Message sizes." Udma_workloads.Sizes.crossover
    $ trials)

let queueing_term =
  let depths =
    Arg.(
      value
      & opt (list int) [ 2; 4; 8; 16 ]
      & info [ "depths" ] ~docv:"D,..." ~doc:"Hardware queue depths.")
  in
  let run c sizes depths =
    emit_reports c (fun () ->
        [ Runner.report_queueing ~total_sizes:sizes ~depths () ])
  in
  Term.(
    const run $ common_term
    $ sizes_arg ~doc:"Total transfer sizes." [ 8192; 16384; 32768; 65536 ]
    $ depths)

let atomicity_term =
  let probs =
    Arg.(
      value
      & opt (list int) [ 0; 5; 10; 20; 30; 50 ]
      & info [ "probs" ] ~docv:"PCT,..." ~doc:"Preemption probabilities (%).")
  in
  let transfers =
    Arg.(
      value & opt int 200
      & info [ "transfers" ] ~docv:"N" ~doc:"Transfers per probability point.")
  in
  let run c probs transfers =
    emit_reports c (fun () ->
        [ Runner.report_atomicity ~probs_pct:probs ~transfers ~seed:c.seed () ])
  in
  Term.(const run $ common_term $ probs $ transfers)

let traffic_term =
  let module Pattern = Udma_traffic.Pattern in
  let module Sweep = Udma_traffic.Sweep in
  let pattern_conv =
    Arg.conv
      ( (fun s -> Pattern.parse s |> Result.map_error (fun e -> `Msg e)),
        fun ppf p -> Format.pp_print_string ppf (Pattern.to_string p) )
  in
  let nodes =
    Arg.(
      value & opt int 16
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Mesh size, filling complete rows of the squarest covering \
             mesh (4, 6, 9, 12, 16, ...). The legacy engine covers 2..64; \
             larger meshes (up to 1024) run on the sharded engine (see \
             $(b,--domains)).")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains for the sharded per-row simulation engine. The \
             default 1 on a mesh of up to 64 nodes keeps the legacy \
             single-queue engine (byte-identical reports); any higher value \
             — or a larger mesh — dispatches to the sharded conservative \
             kernel, whose results are identical for every domain count.")
  in
  let pattern =
    Arg.(
      value
      & opt pattern_conv Pattern.Uniform
      & info [ "pattern" ] ~docv:"PATTERN"
          ~doc:
            "Spatial pattern: $(b,uniform), $(b,transpose), $(b,neighbor) or \
             $(b,hotspot)[:PCT].")
  in
  let msg_bytes =
    Arg.(
      value & opt int 256
      & info [ "msg-bytes" ] ~docv:"BYTES"
          ~doc:"Message size; a 4-byte multiple up to 4092 (one packet).")
  in
  let loads =
    Arg.(
      value
      & opt (list float) Sweep.default_loads
      & info [ "loads" ] ~docv:"L,..."
          ~doc:
            "Offered loads to sweep, as fractions of one source's calibrated \
             initiation capacity.")
  in
  let window =
    Arg.(
      value & opt int 50_000
      & info [ "window" ] ~docv:"CYCLES" ~doc:"Measurement window per point.")
  in
  let warmup =
    Arg.(
      value & opt int 2_000
      & info [ "warmup" ] ~docv:"CYCLES" ~doc:"Run-in before measurement.")
  in
  let no_contention =
    Arg.(
      value & flag
      & info [ "no-contention" ]
          ~doc:
            "Disable the router's per-link FIFO model (contention-free \
             latency, the pre-traffic behaviour).")
  in
  let routing =
    Arg.(
      value
      & opt
          (enum
             [ ("dimension", `Dimension_order); ("adaptive", `Minimal_adaptive) ])
          `Dimension_order
      & info [ "routing" ] ~docv:"POLICY"
          ~doc:
            "Router path policy: $(b,dimension) (X then Y, the default) or \
             $(b,adaptive) (minimal-adaptive: the less-busy productive link \
             at every hop; needs the contention model).")
  in
  let link_per_word =
    Arg.(
      value & opt int 1
      & info [ "link-per-word" ] ~docv:"CYCLES"
          ~doc:
            "Router cycles per 4-byte word on a mesh link (default 1). \
             Raising it slows the links relative to the send-initiation \
             cost, moving the bottleneck onto the network (the E12 regime).")
  in
  let vcs =
    Arg.(
      value & opt int 1
      & info [ "vcs" ] ~docv:"N"
          ~doc:
            "Virtual channels per directed mesh link, 1..4 (default 1: the \
             single-FIFO model, bit-for-bit). Extra VCs let other flows \
             backfill the wire around a head-of-line-blocked packet.")
  in
  let rx_credits =
    Arg.(
      value
      & opt (some int) None
      & info [ "rx-credits" ] ~docv:"N"
          ~doc:
            "Deposit slots per (link, VC) receive FIFO (default: unlimited, \
             the pre-credit model). With finite credits sources stall at \
             the injection gate instead of queueing on the wire.")
  in
  let crossing =
    let crossing_conv = Arg.enum [ ("analytic", `Analytic); ("flit", `Flit) ] in
    Arg.(
      value & opt crossing_conv `Analytic
      & info [ "crossing" ] ~docv:"MODEL"
          ~doc:
            "Wire model under contention: $(b,analytic) (default, \
             packet-granularity link reservations — the model every \
             committed anchor was produced on) or $(b,flit) \
             (cycle-accurate wormhole flits through per-(link,VC) input \
             FIFOs; dimension-order only, always on the legacy engine). \
             See also $(b,--flit-words).")
  in
  let flit_words =
    Arg.(
      value & opt int 1
      & info [ "flit-words" ] ~docv:"N"
          ~doc:"4-byte words per flit in the flit crossing (default 1).")
  in
  let run c nodes pattern msg_bytes loads window warmup no_contention routing
      link_per_word vcs rx_credits crossing flit_words domains =
    emit_reports c (fun () ->
        [
          Runner.report_saturation ~loads ~nodes ~pattern ~msg_bytes
            ~warmup_cycles:warmup ~window_cycles:window
            ~link_contention:(not no_contention) ~routing ~link_per_word
            ~vc_count:vcs ~rx_credits ~crossing ~flit_words ~seed:c.seed
            ~domains ();
        ])
  in
  Term.(
    const run $ common_term $ nodes $ pattern $ msg_bytes $ loads $ window
    $ warmup $ no_contention $ routing $ link_per_word $ vcs $ rx_credits
    $ crossing $ flit_words $ domains)

let tenants_term =
  let module Backend = Udma_protect.Backend in
  let backend_conv =
    Arg.conv
      ( (fun s -> Backend.parse_kind s |> Result.map_error (fun e -> `Msg e)),
        fun ppf k -> Format.pp_print_string ppf (Backend.kind_name k) )
  in
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Use the small deterministic CI parameter set (8 and 256 \
             tenants, 4000 ops).")
  in
  let backends =
    Arg.(
      value
      & opt (some (list backend_conv)) None
      & info [ "backend" ] ~docv:"KIND,..."
          ~doc:
            "Protection backends to sweep: $(b,proxy), $(b,iommu), \
             $(b,capability) (default: all three).")
  in
  let tenants =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "tenants" ] ~docv:"N,..."
          ~doc:
            "Tenant counts to sweep (default 8,64,256,1024; $(b,--quick) \
             uses 8,256).")
  in
  let slots =
    Arg.(
      value & opt int 64
      & info [ "slots" ] ~docv:"N"
          ~doc:"Destination-table slots shared by all tenants.")
  in
  let ops =
    Arg.(
      value
      & opt (some int) None
      & info [ "ops" ] ~docv:"N"
          ~doc:
            "Operations per (backend, tenant count) point (default 20000; \
             $(b,--quick) uses 4000).")
  in
  let churn =
    Arg.(
      value & opt int 8
      & info [ "churn" ] ~docv:"PCT"
          ~doc:"Per-op probability of descheduling a tenant (%).")
  in
  let evict =
    Arg.(
      value & opt int 4
      & info [ "evict" ] ~docv:"PCT"
          ~doc:"Per-op probability of evicting a table slot (%).")
  in
  let rogue =
    Arg.(
      value & opt int 4
      & info [ "rogue" ] ~docv:"PCT"
          ~doc:"Per-op probability of a rogue cross-tenant probe (%).")
  in
  let run c quick backends tenants slots ops churn evict rogue =
    let tenant_counts =
      match tenants with
      | Some l -> l
      | None -> if quick then [ 8; 256 ] else [ 8; 64; 256; 1024 ]
    in
    let ops =
      match ops with Some n -> n | None -> if quick then 4000 else 20_000
    in
    let kinds =
      match backends with Some l -> l | None -> Backend.all_kinds
    in
    emit_reports c (fun () ->
        [
          Runner.report_tenants ~tenant_counts ~kinds ~slots ~ops
            ~churn_pct:churn ~evict_pct:evict ~rogue_pct:rogue ~seed:c.seed ();
        ])
  in
  Term.(
    const run $ common_term $ quick $ backends $ tenants $ slots $ ops $ churn
    $ evict $ rogue)

let shapes_term =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Use the small deterministic CI parameter set.")
  in
  let shape_kinds =
    Arg.(
      value
      & opt
          (list (enum [ ("contig", `Contig); ("strided", `Strided); ("sg", `Sg) ]))
          [ `Contig; `Strided; `Sg ]
      & info [ "shape" ] ~docv:"KINDS"
          ~doc:
            "Shape families to sweep: comma-separated subset of $(b,contig), \
             $(b,strided) and $(b,sg).")
  in
  let strides =
    Arg.(
      value
      & opt (list int) [ 2; 4; 8; 16; 32; 64 ]
      & info [ "stride" ] ~docv:"FACTORS"
          ~doc:
            "Stride factors for the strided family (the source reads 64 \
             bytes every 64*FACTOR; each factor must divide 64).")
  in
  let sg_elems =
    Arg.(
      value
      & opt (list int) [ 2; 4; 16; 64; 256 ]
      & info [ "sg-elems" ] ~docv:"COUNTS"
          ~doc:
            "Scatter-gather element counts across the whole transfer (each \
             must be twice a power-of-two divisor of the page size).")
  in
  let total =
    Arg.(
      value & opt int 8192
      & info [ "total" ] ~docv:"BYTES"
          ~doc:"Total bytes moved per shape (a page multiple).")
  in
  let run c quick kinds strides sg_elems total =
    let fail fmt = Printf.ksprintf (fun m -> prerr_endline m; exit 2) fmt in
    if total <= 0 || total mod 4096 <> 0 then
      fail "shapes: --total %d is not a positive page multiple" total;
    List.iter
      (fun f ->
        if f <= 0 || 64 mod f <> 0 then
          fail "shapes: --stride factor %d does not divide 64" f)
      strides;
    List.iter
      (fun n ->
        if n < 2 || n mod 2 <> 0 || 4096 mod (n / 2) <> 0 then
          fail "shapes: --sg-elems %d is not twice a divisor of the page" n)
      sg_elems;
    let cases =
      if quick then Runner.quick_shape_cases
      else
        List.concat_map
          (function
            | `Contig -> [ Runner.Shape_contig ]
            | `Strided -> List.map (fun f -> Runner.Shape_strided f) strides
            | `Sg -> List.map (fun n -> Runner.Shape_sg n) sg_elems)
          kinds
    in
    emit_reports c (fun () -> [ Runner.report_shapes ~total ~cases () ])
  in
  Term.(
    const run $ common_term $ quick $ shape_kinds $ strides $ sg_elems $ total)

let apps_term =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Use the small deterministic CI parameter set.")
  in
  let app_sel =
    Arg.(
      value
      & opt (some (enum [ ("kv", `Kv); ("halo", `Halo); ("rpc", `Rpc) ])) None
      & info [ "app" ] ~docv:"APP"
          ~doc:
            "Run one application: $(b,kv) (sharded key-value store), \
             $(b,halo) (halo-exchange collective) or $(b,rpc) (bursty \
             request-response service). Default: all three, plus the KV \
             VC-contrast table.")
  in
  let nodes =
    Arg.(
      value & opt int 16
      & info [ "nodes" ] ~docv:"N"
          ~doc:
            "Mesh size, 2..64, filling complete rows of the squarest \
             covering mesh (4, 6, 9, 12, 16, ...).")
  in
  let shards =
    Arg.(
      value
      & opt (some int) None
      & info [ "shards" ] ~docv:"N"
          ~doc:"KV server shards, on nodes 0..N-1 (default: one per node).")
  in
  let value_bytes =
    Arg.(
      value & opt int 2048
      & info [ "value-bytes" ] ~docv:"BYTES"
          ~doc:"KV value size; a 4-byte multiple (requests must still fit \
                one page).")
  in
  let slo =
    Arg.(
      value
      & opt (some float) None
      & info [ "slo" ] ~docv:"MULT"
          ~doc:
            "SLO multiple: the knee is the first sustained load whose p99 \
             exceeds MULT times the lightest load's p50 (default 5.0).")
  in
  let loads =
    Arg.(
      value
      & opt (some (list float)) None
      & info [ "loads" ] ~docv:"L,..."
          ~doc:
            "Offered loads to sweep (halo caps at 1.0; applied to the halo \
             sweep only with an explicit $(b,--app) halo).")
  in
  let vcs =
    Arg.(
      value & opt int 1
      & info [ "vcs" ] ~docv:"N"
          ~doc:"Virtual channels per directed mesh link for the KV sweep, \
                1..4.")
  in
  let hot_pct =
    Arg.(
      value & opt int 0
      & info [ "hot-pct" ] ~docv:"PCT"
          ~doc:"Share of KV key draws pinned to shard 0 (the hotspot).")
  in
  let write_pct =
    Arg.(
      value & opt int 10
      & info [ "write-pct" ] ~docv:"PCT" ~doc:"Share of KV ops that write.")
  in
  let link_per_word =
    Arg.(
      value & opt int 1
      & info [ "link-per-word" ] ~docv:"CYCLES"
          ~doc:
            "Router cycles per 4-byte word on a mesh link (>= 2 puts the \
             bottleneck on the wires, the VC regime).")
  in
  let chaos =
    Arg.(
      value & flag
      & info [ "chaos" ]
          ~doc:
            "Run the KV store under a seeded link kill/slow/heal storm (the \
             mesh M_link_fault action); the closed loop must still drain.")
  in
  let run c quick app nodes shards value_bytes slo loads vcs hot_pct write_pct
      link_per_word chaos =
    let seed = c.seed in
    let sweep_loads =
      match loads with
      | Some l -> l
      | None ->
          if quick then [ 0.3; 0.8 ] else Runner.app_default_loads
    in
    let kv () =
      Runner.report_kv ~loads:sweep_loads ~nodes ?shards ~value_bytes
        ~write_pct ~hot_pct ~vcs ~link_per_word ?slo
        ~window_cycles:(if quick then 30_000 else 60_000)
        ~chaos ~seed ()
    in
    let halo () =
      Runner.report_halo
        ?loads:
          (if app = Some `Halo then loads
           else if quick then Some [ 0.5 ]
           else None)
        ?slo ~nodes
        ~iterations:(if quick then 12 else 30)
        ~seed ()
    in
    let rpc () =
      Runner.report_rpc ~loads:sweep_loads ~nodes ?slo
        ~window_cycles:(if quick then 100_000 else 200_000)
        ~seed ()
    in
    emit_reports c (fun () ->
        match app with
        | Some `Kv -> [ kv () ]
        | Some `Halo -> [ halo () ]
        | Some `Rpc -> [ rpc () ]
        | None ->
            [ kv (); halo (); rpc () ]
            @ if quick then [] else [ Runner.report_kv_vcs ~nodes ~seed () ])
  in
  Term.(
    const run $ common_term $ quick $ app_sel $ nodes $ shards $ value_bytes
    $ slo $ loads $ vcs $ hot_pct $ write_pct $ link_per_word $ chaos)

let custom_terms =
  [
    ("figure8", figure8_term);
    ("hippi", hippi_term);
    ("crossover", crossover_term);
    ("queueing", queueing_term);
    ("atomicity", atomicity_term);
    ("traffic", traffic_term);
    ("tenants", tenants_term);
    ("shapes", shapes_term);
    ("apps", apps_term);
  ]

let generic_term (e : Runner.experiment) =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ] ~doc:"Use the small deterministic CI parameter set.")
  in
  let run c quick =
    emit_reports c (fun () -> e.Runner.exp_run ~quick ~seed:c.seed)
  in
  Term.(const run $ common_term $ quick)

(* Each experiment registers under its paper-section name and an
   eN alias, so `shrimp_sim e1 --json` works as EXPERIMENTS.md
   documents. *)
let experiment_cmds =
  List.concat_map
    (fun (e : Runner.experiment) ->
      let term =
        match List.assoc_opt e.Runner.exp_name custom_terms with
        | Some t -> t
        | None -> generic_term e
      in
      let doc = e.Runner.exp_doc in
      [
        Cmd.v (Cmd.info e.Runner.exp_name ~doc) term;
        Cmd.v
          (Cmd.info e.Runner.exp_alias
             ~doc:(Printf.sprintf "Alias for $(b,%s): %s" e.Runner.exp_name doc))
          term;
      ])
    Runner.experiments

let all_cmd =
  let quick =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:"Small deterministic parameters (what CI diffs against the \
                committed BENCH_baseline.json).")
  in
  let run c quick =
    emit_reports c (fun () -> Runner.all_reports ~quick ~seed:c.seed ())
  in
  Cmd.v
    (Cmd.info "all"
       ~doc:"Run every experiment (same series as bench/main.exe).")
    Term.(const run $ common_term $ quick)

(* ------------------------------------------------------------------ *)
(* trace walkthrough                                                   *)
(* ------------------------------------------------------------------ *)

let trace_cmd =
  let run c =
    (* one traced deliberate-update send on a 2-node system *)
    let module System = Udma_shrimp.System in
    let module Messaging = Udma_shrimp.Messaging in
    let module M = Udma_os.Machine in
    let module Scheduler = Udma_os.Scheduler in
    let module Kernel = Udma_os.Kernel in
    if c.trace then Trace.set_global_sink (Some (Event.jsonl_sink stderr));
    let config =
      { System.default_config with
        System.machine = { M.default_config with M.trace_enabled = true } }
    in
    let sys = System.create ~config ~nodes:2 () in
    let snd = System.node sys 0 in
    let sp = Scheduler.spawn snd.System.machine ~name:"sender" in
    let rp = Scheduler.spawn (System.node sys 1).System.machine ~name:"receiver" in
    let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:1 () in
    let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
    Kernel.write_user snd.System.machine sp ~vaddr:buf (Bytes.make 256 'x');
    let cpu_s = Kernel.user_cpu snd.System.machine sp in
    let cpu_r = Kernel.user_cpu (System.node sys 1).System.machine rp in
    (match Messaging.send ch cpu_s ~src_vaddr:buf ~nbytes:256 () with
    | Ok seq -> (
        match Messaging.recv_wait ch cpu_r ~seq () with
        | Ok _ -> ()
        | Error msg -> prerr_endline msg)
    | Error e -> Format.eprintf "%a@." Messaging.pp_send_error e);
    System.run_until_idle sys;
    Trace.set_global_sink None;
    let events = Trace.events snd.System.machine.M.trace in
    let counters = Metrics.counters snd.System.machine.M.metrics in
    if c.json then
      with_out c (fun oc ->
          let doc =
            Json.Obj
              [
                ("schema", Json.Str "udma-trace/1");
                ("events", Json.List (List.map Event.to_json events));
                ( "counters",
                  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) counters) );
              ]
          in
          output_string oc (Json.to_string ~indent:2 doc);
          output_char oc '\n')
    else
      with_out c (fun oc ->
          Printf.fprintf oc
            "--- sender-node trace (256 B deliberate-update send) ---\n";
          List.iter
            (fun ev ->
              Printf.fprintf oc "%8d  %s\n" ev.Event.time (Event.render ev))
            events;
          Printf.fprintf oc "--- sender-node kernel counters ---\n";
          List.iter
            (fun (name, v) -> Printf.fprintf oc "%-28s %d\n" name v)
            counters)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one traced deliberate-update send and dump the hardware \
             and kernel event trace.")
    Term.(const run $ common_term)

(* ------------------------------------------------------------------ *)
(* chaos                                                               *)
(* ------------------------------------------------------------------ *)

let chaos_cmd =
  let module Chaos = Udma_check.Chaos in
  let seeds =
    Arg.(
      value & opt int 256
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let start =
    Arg.(value & opt int 0 & info [ "start" ] ~docv:"SEED" ~doc:"First seed.")
  in
  let steps =
    Arg.(
      value & opt int 40
      & info [ "steps" ] ~docv:"N" ~doc:"Actions per seed's schedule.")
  in
  let replay =
    Arg.(
      value
      & opt (some int) None
      & info [ "replay" ] ~docv:"SEED"
          ~doc:"Replay one seed and print its full schedule (and trace).")
  in
  let mutate =
    let inv_conv =
      Arg.enum
        [
          ("i1", `I1); ("i2", `I2); ("i3", `I3); ("i4", `I4);
          ("n1", `N1); ("n2", `N2); ("f1", `F1); ("f2", `F2);
          ("p1", `P1); ("p2", `P2); ("d1", `D1);
        ]
    in
    Arg.(
      value
      & opt (some inv_conv) None
      & info [ "mutate" ] ~docv:"INVARIANT"
          ~doc:
            "Disable the kernel action maintaining this invariant \
             (deliberate bug); the sweep is then expected to find \
             violations, and the first is reported shrunk. $(b,n1) \
             (credit leak) and $(b,n2) (stuck arbiter) plant router \
             bugs, $(b,f1) (flit leaked on a dead-link retry) and \
             $(b,f2) (arbiter double-grant past the credit check) \
             plant flit-crossing bugs the F1 conservation oracle must \
             catch, $(b,p1) (owner check skipped) and $(b,p2) (stale \
             datapath entry after teardown) plant protection-backend \
             bugs the I5 oracle must catch, and $(b,d1) (per-element \
             page clamp skipped on shaped transfers) plants a \
             DMA-frontend bug the I4 oracle must catch; all seven are \
             meant for $(b,--mesh) sweeps.")
  in
  let mesh =
    Arg.(
      value & flag
      & info [ "mesh" ]
          ~doc:
            "Sweep multi-node mesh schedules instead of single-machine \
             ones: random sends, link faults, credit squeezes, rogue \
             tenants and import-slot revocations on a 2-4 node system \
             with 1-4 VCs (a third of the seeds on the flit-level \
             wormhole crossing), checking I1-I4 and the I5 isolation \
             oracle on every node (proxy, IOMMU and capability \
             backends) and the router's credit (N1), arbitration (N2) \
             and flit-conservation (F1) oracles after every action.")
  in
  let run c seeds start steps replay mutate mesh =
    if c.trace then Trace.set_global_sink (Some (Event.jsonl_sink stderr));
    let skip_invariant = mutate in
    let finish () = Trace.set_global_sink None in
    if mesh then
      with_out c (fun oc ->
          let ppf = Format.formatter_of_out_channel oc in
          match replay with
          | Some seed -> (
              let plan = Chaos.mesh_plan_of_seed ~steps seed in
              Format.fprintf ppf "replaying mesh seed %d: %a@." seed
                Chaos.pp_mesh_setup plan.Chaos.mesh_setup;
              List.iteri
                (fun i a ->
                  Format.fprintf ppf "  %2d. %a@." i Chaos.pp_mesh_action a)
                plan.Chaos.mesh_actions;
              match Chaos.run_mesh_plan ?skip_invariant plan with
              | Chaos.Mesh_pass ->
                  Format.fprintf ppf "no invariant violation.@.";
                  finish ();
                  exit 0
              | Chaos.Mesh_fail f ->
                  output_string oc (Chaos.mesh_report f);
                  finish ();
                  exit (if mutate = None then 1 else 0))
          | None -> (
              let failures =
                Chaos.mesh_sweep ?skip_invariant ~steps ~start ~seeds ()
              in
              match (failures, mutate) with
              | [], None ->
                  Format.fprintf ppf
                    "mesh chaos sweep: %d seeds x %d steps, no I1-I5/N1-N2 \
                     violation.@."
                    seeds steps;
                  finish ()
              | [], Some inv ->
                  Format.fprintf ppf
                    "mesh chaos sweep with %a disabled found no violation \
                     in %d seeds — the oracles missed a planted bug!@."
                    Udma_os.Machine.pp_invariant inv seeds;
                  finish ();
                  exit 1
              | f :: _, _ ->
                  Format.fprintf ppf
                    "mesh chaos sweep: %d of %d seeds violated an \
                     invariant%s@."
                    (List.length failures) seeds
                    (match mutate with
                    | Some _ -> " (expected: a bug was planted)"
                    | None -> "");
                  output_string oc (Chaos.mesh_report f);
                  finish ();
                  if mutate = None then exit 1))
    else
    with_out c (fun oc ->
        let ppf = Format.formatter_of_out_channel oc in
        match replay with
        | Some seed -> (
            let plan = Chaos.plan_of_seed ~steps seed in
            Format.fprintf ppf "replaying seed %d: %a@." seed Chaos.pp_setup
              plan.setup;
            List.iteri
              (fun i a -> Format.fprintf ppf "  %2d. %a@." i Chaos.pp_action a)
              plan.Chaos.actions;
            match Chaos.run_plan ?skip_invariant plan with
            | Chaos.Pass ->
                Format.fprintf ppf "no invariant violation.@.";
                finish ();
                exit 0
            | Chaos.Fail f ->
                output_string oc
                  (Chaos.report ?skip_invariant (Chaos.shrink ?skip_invariant f));
                finish ();
                exit (if mutate = None then 1 else 0))
        | None -> (
            let failures = Chaos.sweep ?skip_invariant ~steps ~start ~seeds () in
            match (failures, mutate) with
            | [], None ->
                Format.fprintf ppf
                  "chaos sweep: %d seeds x %d steps, no I1-I4 violation.@."
                  seeds steps;
                finish ()
            | [], Some inv ->
                Format.fprintf ppf
                  "chaos sweep with %a disabled found no violation in %d \
                   seeds — the oracles missed a planted bug!@."
                  Udma_os.Machine.pp_invariant inv seeds;
                finish ();
                exit 1
            | f :: _, _ ->
                Format.fprintf ppf
                  "chaos sweep: %d of %d seeds violated an invariant%s@."
                  (List.length failures) seeds
                  (match mutate with
                  | Some _ -> " (expected: a kernel bug was planted)"
                  | None -> "");
                output_string oc
                  (Chaos.report ?skip_invariant (Chaos.shrink ?skip_invariant f));
                finish ();
                if mutate = None then exit 1))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Randomized fault-injection sweep checking the paper's OS \
          invariants I1-I4 after every step; failing seeds are replayed \
          deterministically and shrunk to a minimal schedule. With \
          $(b,--mesh), sweeps multi-node schedules that also exercise the \
          router's virtual-channel credit (N1) and arbitration (N2) \
          oracles.")
    Term.(
      const run $ common_term $ seeds $ start $ steps $ replay $ mutate $ mesh)

let () =
  let info =
    Cmd.info "shrimp_sim" ~version:"1.0.0"
      ~doc:
        "Experiments from 'Protected, User-Level DMA for the SHRIMP Network \
         Interface' (HPCA 1996), reproduced in simulation."
  in
  exit
    (Cmd.eval
       (Cmd.group info (experiment_cmds @ [ trace_cmd; chaos_cmd; all_cmd ])))
