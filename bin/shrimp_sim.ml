(* Command-line driver: run any single experiment from the paper's
   evaluation with parameter overrides, or all of them. *)

module Runner = Udma_workloads.Runner
open Cmdliner

let sizes_arg ~doc default =
  Arg.(value & opt (list int) default & info [ "sizes" ] ~docv:"BYTES,..." ~doc)

let figure8_cmd =
  let messages =
    Arg.(
      value & opt int 32
      & info [ "messages" ] ~docv:"N" ~doc:"Messages per size point.")
  in
  let run sizes messages =
    Runner.print_figure8 (Runner.figure8 ~sizes ~messages ())
  in
  Cmd.v
    (Cmd.info "figure8"
       ~doc:"E1: deliberate-update bandwidth vs message size (Figure 8).")
    Term.(
      const run
      $ sizes_arg ~doc:"Message sizes to sweep." Udma_workloads.Sizes.figure8
      $ messages)

let initiation_cmd =
  let run () = Runner.print_costs (Runner.initiation_costs ()) in
  Cmd.v
    (Cmd.info "initiation"
       ~doc:"E2: UDMA vs traditional transfer-initiation cost (the 2.8us).")
    Term.(const run $ const ())

let hippi_cmd =
  let run blocks = Runner.print_hippi (Runner.hippi_motivation ~blocks ()) in
  Cmd.v
    (Cmd.info "hippi"
       ~doc:"E3: kernel DMA bandwidth vs block size on a HIPPI profile.")
    Term.(
      const run
      $ sizes_arg ~doc:"Block sizes to sweep." Udma_workloads.Sizes.hippi_blocks)

let crossover_cmd =
  let trials =
    Arg.(value & opt int 8 & info [ "trials" ] ~docv:"N" ~doc:"Trials per size.")
  in
  let run sizes trials =
    Runner.print_crossover (Runner.pio_crossover ~sizes ~trials ())
  in
  Cmd.v
    (Cmd.info "crossover" ~doc:"E4: UDMA vs memory-mapped FIFO latency.")
    Term.(
      const run
      $ sizes_arg ~doc:"Message sizes." Udma_workloads.Sizes.crossover
      $ trials)

let queueing_cmd =
  let depths =
    Arg.(
      value
      & opt (list int) [ 2; 4; 8; 16 ]
      & info [ "depths" ] ~docv:"D,..." ~doc:"Hardware queue depths.")
  in
  let run sizes depths =
    Runner.print_queueing (Runner.queueing ~total_sizes:sizes ~depths ())
  in
  Cmd.v
    (Cmd.info "queueing" ~doc:"E5: basic vs queued UDMA for multi-page transfers.")
    Term.(
      const run
      $ sizes_arg ~doc:"Total transfer sizes." [ 8192; 16384; 32768; 65536 ]
      $ depths)

let atomicity_cmd =
  let probs =
    Arg.(
      value
      & opt (list int) [ 0; 5; 10; 20; 30; 50 ]
      & info [ "probs" ] ~docv:"PCT,..." ~doc:"Preemption probabilities (%).")
  in
  let transfers =
    Arg.(
      value & opt int 200
      & info [ "transfers" ] ~docv:"N" ~doc:"Transfers per probability point.")
  in
  let run probs transfers =
    Runner.print_atomicity (Runner.atomicity ~probs_pct:probs ~transfers ())
  in
  Cmd.v
    (Cmd.info "atomicity" ~doc:"E6: I1 retries under forced preemption.")
    Term.(const run $ probs $ transfers)

let pinning_cmd =
  let run () = Runner.print_pinning (Runner.pinning_vs_i4 ()) in
  Cmd.v
    (Cmd.info "pinning" ~doc:"E7: page pinning vs the I4 remap check.")
    Term.(const run $ const ())

let proxyfault_cmd =
  let run () = Runner.print_proxy_faults (Runner.proxy_fault_costs ()) in
  Cmd.v
    (Cmd.info "proxyfault" ~doc:"E8: demand proxy-mapping fault costs.")
    Term.(const run $ const ())

let i3_cmd =
  let run () = Runner.print_i3 (Runner.i3_policies ()) in
  Cmd.v
    (Cmd.info "i3policy" ~doc:"E9: the two I3 content-consistency methods.")
    Term.(const run $ const ())

let updates_cmd =
  let run () = Runner.print_updates (Runner.update_strategies ()) in
  Cmd.v
    (Cmd.info "updates" ~doc:"E10: deliberate vs automatic update.")
    Term.(const run $ const ())

let trace_cmd =
  let run () =
    (* one traced deliberate-update send on a 2-node system *)
    let module System = Udma_shrimp.System in
    let module Messaging = Udma_shrimp.Messaging in
    let module M = Udma_os.Machine in
    let module Scheduler = Udma_os.Scheduler in
    let module Kernel = Udma_os.Kernel in
    let config =
      { System.default_config with
        System.machine = { M.default_config with M.trace_enabled = true } }
    in
    let sys = System.create ~config ~nodes:2 () in
    let snd = System.node sys 0 in
    let sp = Scheduler.spawn snd.System.machine ~name:"sender" in
    let rp = Scheduler.spawn (System.node sys 1).System.machine ~name:"receiver" in
    let ch = Messaging.connect sys ~sender:(0, sp) ~receiver:(1, rp) ~pages:1 () in
    let buf = Kernel.alloc_buffer snd.System.machine sp ~bytes:4096 in
    Kernel.write_user snd.System.machine sp ~vaddr:buf (Bytes.make 256 'x');
    let cpu_s = Kernel.user_cpu snd.System.machine sp in
    let cpu_r = Kernel.user_cpu (System.node sys 1).System.machine rp in
    (match Messaging.send ch cpu_s ~src_vaddr:buf ~nbytes:256 () with
    | Ok seq -> (
        match Messaging.recv_wait ch cpu_r ~seq () with
        | Ok _ -> ()
        | Error msg -> prerr_endline msg)
    | Error e -> Format.eprintf "%a@." Messaging.pp_send_error e);
    System.run_until_idle sys;
    Printf.printf "--- sender-node trace (256 B deliberate-update send) ---\n";
    List.iter
      (fun (t, msg) -> Printf.printf "%8d  %s\n" t msg)
      (Udma_sim.Trace.events snd.System.machine.M.trace);
    Printf.printf "--- sender-node kernel counters ---\n";
    List.iter
      (fun (name, v) -> Printf.printf "%-28s %d\n" name v)
      (Udma_sim.Stats.counters snd.System.machine.M.stats)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one traced deliberate-update send and dump the hardware \
             and kernel event trace.")
    Term.(const run $ const ())

let chaos_cmd =
  let module Chaos = Udma_check.Chaos in
  let module Oracle = Udma_check.Oracle in
  let seeds =
    Arg.(
      value & opt int 256
      & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to sweep.")
  in
  let start =
    Arg.(value & opt int 0 & info [ "start" ] ~docv:"SEED" ~doc:"First seed.")
  in
  let steps =
    Arg.(
      value & opt int 40
      & info [ "steps" ] ~docv:"N" ~doc:"Actions per seed's schedule.")
  in
  let seed_opt =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"Replay one seed and print its full schedule (and trace).")
  in
  let mutate =
    let inv_conv =
      Arg.enum [ ("i1", `I1); ("i2", `I2); ("i3", `I3); ("i4", `I4) ]
    in
    Arg.(
      value
      & opt (some inv_conv) None
      & info [ "mutate" ] ~docv:"INVARIANT"
          ~doc:
            "Disable the kernel action maintaining this invariant \
             (deliberate bug); the sweep is then expected to find \
             violations, and the first is reported shrunk.")
  in
  let run seeds start steps seed_opt mutate =
    let skip_invariant = mutate in
    match seed_opt with
    | Some seed -> (
        let plan = Chaos.plan_of_seed ~steps seed in
        Format.printf "replaying seed %d: %a@." seed Chaos.pp_setup plan.setup;
        List.iteri
          (fun i a -> Format.printf "  %2d. %a@." i Chaos.pp_action a)
          plan.Chaos.actions;
        match Chaos.run_plan ?skip_invariant plan with
        | Chaos.Pass ->
            Format.printf "no invariant violation.@.";
            exit 0
        | Chaos.Fail f ->
            print_string (Chaos.report ?skip_invariant (Chaos.shrink ?skip_invariant f));
            exit (if mutate = None then 1 else 0))
    | None -> (
        let failures =
          Chaos.sweep ?skip_invariant ~steps ~start ~seeds ()
        in
        match (failures, mutate) with
        | [], None ->
            Format.printf
              "chaos sweep: %d seeds x %d steps, no I1-I4 violation.@." seeds
              steps
        | [], Some inv ->
            Format.printf
              "chaos sweep with %a disabled found no violation in %d seeds — \
               the oracles missed a planted bug!@."
              Udma_os.Machine.pp_invariant inv seeds;
            exit 1
        | f :: _, _ ->
            Format.printf "chaos sweep: %d of %d seeds violated an invariant%s@."
              (List.length failures) seeds
              (match mutate with
              | Some _ -> " (expected: a kernel bug was planted)"
              | None -> "");
            print_string (Chaos.report ?skip_invariant (Chaos.shrink ?skip_invariant f));
            if mutate = None then exit 1)
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Randomized fault-injection sweep checking the paper's OS \
          invariants I1-I4 after every step; failing seeds are replayed \
          deterministically and shrunk to a minimal schedule.")
    Term.(const run $ seeds $ start $ steps $ seed_opt $ mutate)

let all_cmd =
  let run () = Runner.run_all () in
  Cmd.v
    (Cmd.info "all" ~doc:"Run every experiment (same as bench/main.exe's series).")
    Term.(const run $ const ())

let () =
  let info =
    Cmd.info "shrimp_sim" ~version:"1.0.0"
      ~doc:
        "Experiments from 'Protected, User-Level DMA for the SHRIMP Network \
         Interface' (HPCA 1996), reproduced in simulation."
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figure8_cmd;
            initiation_cmd;
            hippi_cmd;
            crossover_cmd;
            queueing_cmd;
            atomicity_cmd;
            pinning_cmd;
            proxyfault_cmd;
            i3_cmd;
            updates_cmd;
            trace_cmd;
            chaos_cmd;
            all_cmd;
          ]))
