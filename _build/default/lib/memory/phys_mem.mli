(** Simulated physical memory.

    A contiguous, byte-addressable array of [frames * page_size] bytes.
    Frame [f] occupies physical bytes [f * page_size .. (f+1) * page_size - 1].
    All accesses are bounds-checked; the MMU is responsible for
    protection, this module only stores bits. *)

type t

val create : frames:int -> page_size:int -> t
(** [create ~frames ~page_size] is zero-filled memory.
    Raises [Invalid_argument] if either argument is non-positive or
    [page_size] is not a power of two. *)

val frames : t -> int
val page_size : t -> int
val size : t -> int
(** Total bytes. *)

val read_byte : t -> int -> int
(** [read_byte t addr] is the byte at physical address [addr].
    Raises [Invalid_argument] when out of range. *)

val write_byte : t -> int -> int -> unit
(** [write_byte t addr v] stores [v land 0xff] at [addr]. *)

val read_word : t -> int -> int32
(** [read_word t addr] reads a little-endian 32-bit word. [addr] must be
    4-byte aligned. *)

val write_word : t -> int -> int32 -> unit
(** Little-endian 32-bit store; [addr] must be 4-byte aligned. *)

val read_bytes : t -> addr:int -> len:int -> bytes
(** [read_bytes t ~addr ~len] copies out a region. *)

val write_bytes : t -> addr:int -> bytes -> unit
(** [write_bytes t ~addr b] copies [b] into memory at [addr]. *)

val blit : t -> src:int -> dst:int -> len:int -> unit
(** [blit t ~src ~dst ~len] copies within physical memory (memmove
    semantics). *)

val fill_frame : t -> frame:int -> int -> unit
(** [fill_frame t ~frame v] fills a whole frame with byte [v]. *)

val frame_base : t -> int -> int
(** [frame_base t f] is the physical address of frame [f]'s first byte. *)

val frame_of_addr : t -> int -> int
(** [frame_of_addr t addr] is the frame containing [addr]. *)
