type t = {
  frames : int;
  reserved : int;
  free_set : bool array; (* index 0 = frame [reserved] *)
  mutable free_count : int;
  mutable search_hint : int; (* lowest index possibly free *)
}

let create ~frames ~reserved =
  if reserved < 0 || reserved >= frames then
    invalid_arg "Frame_allocator.create: bad reserved count";
  {
    frames;
    reserved;
    free_set = Array.make (frames - reserved) true;
    free_count = frames - reserved;
    search_hint = 0;
  }

let total t = t.frames - t.reserved

let free_count t = t.free_count

let alloc t =
  if t.free_count = 0 then None
  else begin
    let n = Array.length t.free_set in
    let rec find i = if i >= n then None else if t.free_set.(i) then Some i else find (i + 1) in
    match find t.search_hint with
    | None -> None (* hint stale and nothing above it; rescan from 0 *)
    | Some i ->
        t.free_set.(i) <- false;
        t.free_count <- t.free_count - 1;
        t.search_hint <- i + 1;
        Some (i + t.reserved)
  end

(* The hint only moves forward on alloc and back on free, so a stale
   hint can only over-shoot when frees happened below it; reset then. *)
let alloc t =
  match alloc t with
  | Some f -> Some f
  | None when t.free_count > 0 ->
      t.search_hint <- 0;
      alloc t
  | None -> None

let alloc_exn t =
  match alloc t with
  | Some f -> f
  | None -> failwith "Frame_allocator.alloc_exn: out of physical frames"

let check_range t f what =
  if f < t.reserved || f >= t.frames then
    invalid_arg (Printf.sprintf "Frame_allocator.%s: frame %d out of range" what f)

let free t f =
  check_range t f "free";
  let i = f - t.reserved in
  if t.free_set.(i) then
    invalid_arg (Printf.sprintf "Frame_allocator.free: double free of frame %d" f);
  t.free_set.(i) <- true;
  t.free_count <- t.free_count + 1;
  if i < t.search_hint then t.search_hint <- i

let is_free t f =
  if f < t.reserved || f >= t.frames then false else t.free_set.(f - t.reserved)
