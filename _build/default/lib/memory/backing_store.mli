(** Backing store (swap) for demand paging.

    Pages are identified by an abstract slot handle. The VM writes a
    page's contents out when cleaning or evicting and reads them back
    on a page-in. Contents are stored faithfully so tests can verify
    that data survives eviction/reload cycles. *)

type t

type slot
(** Handle for one stored page. *)

val create : page_size:int -> t

val page_size : t -> int

val slots_used : t -> int

val store : t -> bytes -> slot
(** [store t page] writes a fresh slot. [Bytes.length page] must equal
    [page_size]. *)

val overwrite : t -> slot -> bytes -> unit
(** [overwrite t s page] replaces the slot's contents (page cleaning). *)

val load : t -> slot -> bytes
(** [load t s] is a copy of the slot's contents.
    Raises [Invalid_argument] if the slot was released. *)

val release : t -> slot -> unit
(** [release t s] frees the slot; further access raises. *)

val pp_slot : Format.formatter -> slot -> unit
