type t = { data : Bytes.t; frames : int; page_size : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~frames ~page_size =
  if frames <= 0 then invalid_arg "Phys_mem.create: frames must be positive";
  if not (is_power_of_two page_size) then
    invalid_arg "Phys_mem.create: page_size must be a positive power of two";
  { data = Bytes.make (frames * page_size) '\000'; frames; page_size }

let frames t = t.frames
let page_size t = t.page_size
let size t = Bytes.length t.data

let check t addr len what =
  if addr < 0 || len < 0 || addr + len > Bytes.length t.data then
    invalid_arg
      (Printf.sprintf "Phys_mem.%s: [%#x,+%d) out of range [0,%#x)" what addr
         len (Bytes.length t.data))

let read_byte t addr =
  check t addr 1 "read_byte";
  Char.code (Bytes.get t.data addr)

let write_byte t addr v =
  check t addr 1 "write_byte";
  Bytes.set t.data addr (Char.chr (v land 0xff))

let check_aligned addr what =
  if addr land 3 <> 0 then
    invalid_arg (Printf.sprintf "Phys_mem.%s: unaligned address %#x" what addr)

let read_word t addr =
  check t addr 4 "read_word";
  check_aligned addr "read_word";
  Bytes.get_int32_le t.data addr

let write_word t addr v =
  check t addr 4 "write_word";
  check_aligned addr "write_word";
  Bytes.set_int32_le t.data addr v

let read_bytes t ~addr ~len =
  check t addr len "read_bytes";
  Bytes.sub t.data addr len

let write_bytes t ~addr b =
  check t addr (Bytes.length b) "write_bytes";
  Bytes.blit b 0 t.data addr (Bytes.length b)

let blit t ~src ~dst ~len =
  check t src len "blit";
  check t dst len "blit";
  Bytes.blit t.data src t.data dst len

let frame_base t f =
  if f < 0 || f >= t.frames then
    invalid_arg (Printf.sprintf "Phys_mem.frame_base: frame %d" f);
  f * t.page_size

let frame_of_addr t addr =
  check t addr 1 "frame_of_addr";
  addr / t.page_size

let fill_frame t ~frame v =
  let base = frame_base t frame in
  Bytes.fill t.data base t.page_size (Char.chr (v land 0xff))
