(** Physical frame allocator.

    Tracks which frames of a {!Phys_mem.t} are free. Frames are
    allocated lowest-first so runs are deterministic. *)

type t

val create : frames:int -> reserved:int -> t
(** [create ~frames ~reserved] manages frames [reserved .. frames-1];
    the first [reserved] frames (kernel image, device tables) are never
    handed out. Raises [Invalid_argument] if [reserved < 0] or
    [reserved >= frames]. *)

val total : t -> int
(** Frames under management (excludes reserved). *)

val free_count : t -> int

val alloc : t -> int option
(** [alloc t] takes the lowest free frame, or [None] when exhausted. *)

val alloc_exn : t -> int
(** Like {!alloc} but raises [Failure] when out of memory. *)

val free : t -> int -> unit
(** [free t f] returns frame [f]. Raises [Invalid_argument] if [f] is
    reserved, out of range, or already free (double free). *)

val is_free : t -> int -> bool
(** [is_free t f] for managed frames; reserved frames report [false]. *)
