type slot = int

type t = {
  page_size : int;
  table : (int, bytes) Hashtbl.t;
  mutable next : int;
}

let create ~page_size =
  if page_size <= 0 then
    invalid_arg "Backing_store.create: page_size must be positive";
  { page_size; table = Hashtbl.create 64; next = 0 }

let page_size t = t.page_size

let slots_used t = Hashtbl.length t.table

let check_size t page what =
  if Bytes.length page <> t.page_size then
    invalid_arg
      (Printf.sprintf "Backing_store.%s: expected %d bytes, got %d" what
         t.page_size (Bytes.length page))

let store t page =
  check_size t page "store";
  let s = t.next in
  t.next <- t.next + 1;
  Hashtbl.replace t.table s (Bytes.copy page);
  s

let find t s what =
  match Hashtbl.find_opt t.table s with
  | Some b -> b
  | None ->
      invalid_arg (Printf.sprintf "Backing_store.%s: slot %d not present" what s)

let overwrite t s page =
  check_size t page "overwrite";
  ignore (find t s "overwrite");
  Hashtbl.replace t.table s (Bytes.copy page)

let load t s = Bytes.copy (find t s "load")

let release t s =
  ignore (find t s "release");
  Hashtbl.remove t.table s

let pp_slot ppf s = Format.fprintf ppf "slot#%d" s
