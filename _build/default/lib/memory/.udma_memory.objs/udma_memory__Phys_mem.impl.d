lib/memory/phys_mem.ml: Bytes Char Printf
