lib/memory/backing_store.mli: Format
