lib/memory/frame_allocator.ml: Array Printf
