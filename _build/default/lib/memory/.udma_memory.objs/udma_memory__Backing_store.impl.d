lib/memory/backing_store.ml: Bytes Format Hashtbl Printf
