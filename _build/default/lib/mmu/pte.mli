(** Page-table entry.

    One entry maps a virtual page to a physical page anywhere in the
    physical space (real memory, memory proxy, or device proxy; the
    region is determined by the physical page number and the layout).
    The bits mirror what the UDMA paper's OS support needs: [present],
    [writable], [dirty], [referenced]. *)

type t = {
  mutable present : bool;
  mutable writable : bool;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable ppage : int;  (** physical page number; meaningful when present *)
}

val make : ?writable:bool -> ppage:int -> unit -> t
(** A present, clean, unreferenced entry ([writable] defaults [true]). *)

val absent : unit -> t
(** A non-present entry ([ppage] = -1). *)

val pp : Format.formatter -> t -> unit
