type t = {
  mutable present : bool;
  mutable writable : bool;
  mutable dirty : bool;
  mutable referenced : bool;
  mutable ppage : int;
}

let make ?(writable = true) ~ppage () =
  { present = true; writable; dirty = false; referenced = false; ppage }

let absent () =
  { present = false; writable = false; dirty = false; referenced = false;
    ppage = -1 }

let pp ppf t =
  Format.fprintf ppf "{%s%s%s%s ppage=%d}"
    (if t.present then "P" else "-")
    (if t.writable then "W" else "-")
    (if t.dirty then "D" else "-")
    (if t.referenced then "R" else "-")
    t.ppage
