(** Address-space layout with proxy regions (paper §4, Figures 2–3).

    Both the virtual and the physical address space are divided into
    three regions, recognised by high-order address bits:

    {v
      [0,            span)             memory space
      [span,         2*span)           memory proxy space
      [2*span,       2*span + devsz)   device proxy space
    v}

    where [span] is a power of two at least as large as the real memory.
    The paper's [PROXY] function is then the fixed-offset scheme it
    recommends: [PROXY(a) = a + span], [PROXY⁻¹(p) = p - span]. The same
    layout is used for virtual and physical spaces, so one value of
    {!t} describes both. *)

type t

type region =
  | Mem        (** real memory *)
  | Mem_proxy  (** memory proxy space *)
  | Dev_proxy  (** device proxy space *)

val pp_region : Format.formatter -> region -> unit

val create : page_size:int -> mem_pages:int -> dev_pages:int -> t
(** [create ~page_size ~mem_pages ~dev_pages]. [page_size] must be a
    power of two; page counts positive. *)

val page_size : t -> int
val mem_pages : t -> int
val dev_pages : t -> int

val span : t -> int
(** Size of the memory region in bytes (power of two). *)

val mem_base : t -> int
val mem_proxy_base : t -> int
val dev_proxy_base : t -> int

val region_of : t -> int -> region option
(** [region_of t addr] classifies an address; [None] if it falls in no
    region (beyond installed memory, in the proxy hole, or past the
    device proxy region). *)

val proxy_of : t -> int -> int
(** [proxy_of t addr] is [PROXY(addr)] for an address in [Mem].
    Raises [Invalid_argument] otherwise. *)

val unproxy : t -> int -> int
(** [unproxy t addr] is [PROXY⁻¹(addr)] for an address in [Mem_proxy].
    Raises [Invalid_argument] otherwise. *)

val dev_proxy_addr : t -> page:int -> offset:int -> int
(** [dev_proxy_addr t ~page ~offset] is the device-proxy address naming
    byte [offset] of device-proxy page [page]. Raises
    [Invalid_argument] when out of range. *)

val dev_proxy_index : t -> int -> int * int
(** [dev_proxy_index t addr] is [(page, offset)] for a [Dev_proxy]
    address. Raises [Invalid_argument] otherwise. *)

val page_of_addr : t -> int -> int
(** Page number within the whole (virtual or physical) space. *)

val offset_in_page : t -> int -> int

val addr_of_page : t -> int -> int

val page_base : t -> int -> int
(** [page_base t addr] rounds [addr] down to its page boundary. *)

val same_page : t -> int -> int -> bool

val crosses_page : t -> addr:int -> len:int -> bool
(** [crosses_page t ~addr ~len] is [true] when [addr .. addr+len-1]
    spans a page boundary ([len >= 1]). *)
