type t = (int, Pte.t) Hashtbl.t

let create () : t = Hashtbl.create 256

let find t vpn = Hashtbl.find_opt t vpn

let set t vpn pte = Hashtbl.replace t vpn pte

let remove t vpn = Hashtbl.remove t vpn

let entries t =
  Hashtbl.fold (fun vpn pte acc -> (vpn, pte) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mapped_count t = Hashtbl.length t

let iter f t = Hashtbl.iter f t
