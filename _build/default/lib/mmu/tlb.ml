type entry = { vpn : int; pte : Pte.t; mutable stamp : int }

type t = {
  capacity : int;
  mutable entries : entry list; (* unordered, length <= capacity *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Tlb.create: capacity must be positive";
  { capacity; entries = []; tick = 0; hits = 0; misses = 0 }

let capacity t = t.capacity

let lookup t vpn =
  match List.find_opt (fun e -> e.vpn = vpn) t.entries with
  | Some e ->
      t.tick <- t.tick + 1;
      e.stamp <- t.tick;
      t.hits <- t.hits + 1;
      Some e.pte
  | None ->
      t.misses <- t.misses + 1;
      None

let insert t vpn pte =
  t.tick <- t.tick + 1;
  let without = List.filter (fun e -> e.vpn <> vpn) t.entries in
  let without =
    if List.length without >= t.capacity then
      (* Evict the least recently used entry. *)
      let lru =
        List.fold_left
          (fun acc e ->
            match acc with
            | None -> Some e
            | Some best -> if e.stamp < best.stamp then Some e else acc)
          None without
      in
      match lru with
      | Some victim -> List.filter (fun e -> e != victim) without
      | None -> without
    else without
  in
  t.entries <- { vpn; pte; stamp = t.tick } :: without

let flush_page t vpn = t.entries <- List.filter (fun e -> e.vpn <> vpn) t.entries

let flush_all t = t.entries <- []

let hits t = t.hits
let misses t = t.misses
