lib/mmu/pte.mli: Format
