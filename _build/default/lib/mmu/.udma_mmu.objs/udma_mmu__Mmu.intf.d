lib/mmu/mmu.mli: Format Layout Page_table Tlb
