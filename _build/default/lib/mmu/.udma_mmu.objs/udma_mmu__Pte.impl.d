lib/mmu/pte.ml: Format
