lib/mmu/mmu.ml: Format Layout Page_table Printexc Pte Tlb
