lib/mmu/tlb.mli: Pte
