lib/mmu/page_table.mli: Pte
