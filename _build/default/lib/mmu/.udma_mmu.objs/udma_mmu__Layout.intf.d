lib/mmu/layout.mli: Format
