lib/mmu/tlb.ml: List Pte
