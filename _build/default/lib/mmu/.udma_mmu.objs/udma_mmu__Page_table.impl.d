lib/mmu/page_table.ml: Hashtbl List Pte
