lib/mmu/layout.ml: Format Printf
