type t = {
  page_size : int;
  mem_pages : int;
  dev_pages : int;
  span : int;
}

type region = Mem | Mem_proxy | Dev_proxy

let pp_region ppf = function
  | Mem -> Format.pp_print_string ppf "mem"
  | Mem_proxy -> Format.pp_print_string ppf "mem-proxy"
  | Dev_proxy -> Format.pp_print_string ppf "dev-proxy"

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let next_power_of_two n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ~page_size ~mem_pages ~dev_pages =
  if not (is_power_of_two page_size) then
    invalid_arg "Layout.create: page_size must be a power of two";
  if mem_pages <= 0 || dev_pages <= 0 then
    invalid_arg "Layout.create: page counts must be positive";
  let span = next_power_of_two (mem_pages * page_size) in
  { page_size; mem_pages; dev_pages; span }

let page_size t = t.page_size
let mem_pages t = t.mem_pages
let dev_pages t = t.dev_pages
let span t = t.span

let mem_base _ = 0
let mem_proxy_base t = t.span
let dev_proxy_base t = 2 * t.span

let mem_limit t = t.mem_pages * t.page_size
let dev_limit t = dev_proxy_base t + (t.dev_pages * t.page_size)

let region_of t addr =
  if addr < 0 then None
  else if addr < mem_limit t then Some Mem
  else if addr < t.span then None (* hole above installed memory *)
  else if addr < t.span + mem_limit t then Some Mem_proxy
  else if addr < dev_proxy_base t then None
  else if addr < dev_limit t then Some Dev_proxy
  else None

let proxy_of t addr =
  match region_of t addr with
  | Some Mem -> addr + t.span
  | Some Mem_proxy | Some Dev_proxy | None ->
      invalid_arg (Printf.sprintf "Layout.proxy_of: %#x not in memory space" addr)

let unproxy t addr =
  match region_of t addr with
  | Some Mem_proxy -> addr - t.span
  | Some Mem | Some Dev_proxy | None ->
      invalid_arg
        (Printf.sprintf "Layout.unproxy: %#x not in memory proxy space" addr)

let dev_proxy_addr t ~page ~offset =
  if page < 0 || page >= t.dev_pages then
    invalid_arg (Printf.sprintf "Layout.dev_proxy_addr: page %d" page);
  if offset < 0 || offset >= t.page_size then
    invalid_arg (Printf.sprintf "Layout.dev_proxy_addr: offset %d" offset);
  dev_proxy_base t + (page * t.page_size) + offset

let dev_proxy_index t addr =
  match region_of t addr with
  | Some Dev_proxy ->
      let rel = addr - dev_proxy_base t in
      (rel / t.page_size, rel mod t.page_size)
  | Some Mem | Some Mem_proxy | None ->
      invalid_arg
        (Printf.sprintf "Layout.dev_proxy_index: %#x not in device proxy space"
           addr)

let page_of_addr t addr = addr / t.page_size
let offset_in_page t addr = addr land (t.page_size - 1)
let addr_of_page t page = page * t.page_size
let page_base t addr = addr land lnot (t.page_size - 1)
let same_page t a b = page_base t a = page_base t b

let crosses_page t ~addr ~len =
  if len < 1 then invalid_arg "Layout.crosses_page: len must be >= 1";
  page_base t addr <> page_base t (addr + len - 1)
