(** Per-address-space page table: virtual page number → {!Pte.t}. *)

type t

val create : unit -> t

val find : t -> int -> Pte.t option
(** [find t vpn] is the entry for virtual page [vpn], if any. *)

val set : t -> int -> Pte.t -> unit
(** [set t vpn pte] installs or replaces the entry. *)

val remove : t -> int -> unit
(** [remove t vpn] drops the entry (no-op if absent). *)

val entries : t -> (int * Pte.t) list
(** All entries, sorted by virtual page number. *)

val mapped_count : t -> int

val iter : (int -> Pte.t -> unit) -> t -> unit
