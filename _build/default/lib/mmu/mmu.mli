(** Memory management unit: translation and permission checking.

    This is the hardware the UDMA mechanism reuses (paper §3): every
    user reference — including references to proxy space — is
    translated and permission-checked here, so proxy-page mappings are
    exactly as protected as ordinary pages. Faults are raised as
    exceptions for the kernel to handle. *)

type access = Read | Write

val pp_access : Format.formatter -> access -> unit

type fault_kind =
  | Not_present   (** no mapping, or mapping marked not present *)
  | Protection    (** write to a read-only page *)
  | Out_of_range  (** address in no architected region *)

val pp_fault_kind : Format.formatter -> fault_kind -> unit

exception Fault of { vaddr : int; access : access; kind : fault_kind }

type t

val create : layout:Layout.t -> tlb_capacity:int -> t

val layout : t -> Layout.t
val tlb : t -> Tlb.t

type translation = { paddr : int; tlb_hit : bool }

val translate : t -> Page_table.t -> access -> int -> translation
(** [translate t pt access vaddr] checks the virtual address against
    the layout, consults the TLB then the page table, enforces
    [present] and (for [Write]) [writable], sets the referenced bit —
    and the dirty bit on writes — and returns the physical address.
    Raises {!Fault} on any failure. *)

val probe : t -> Page_table.t -> access -> int -> (translation, fault_kind) result
(** Like {!translate} but returns the fault instead of raising, and
    does not disturb referenced/dirty bits or the TLB. *)

val flush_tlb : t -> unit
(** Full TLB flush (performed on context switch). *)

val flush_tlb_page : t -> vpn:int -> unit
(** Invalidate one cached translation (performed on unmap/remap and on
    permission downgrades such as write-protecting a proxy page). *)
