type access = Read | Write

let pp_access ppf = function
  | Read -> Format.pp_print_string ppf "read"
  | Write -> Format.pp_print_string ppf "write"

type fault_kind = Not_present | Protection | Out_of_range

let pp_fault_kind ppf = function
  | Not_present -> Format.pp_print_string ppf "not-present"
  | Protection -> Format.pp_print_string ppf "protection"
  | Out_of_range -> Format.pp_print_string ppf "out-of-range"

exception Fault of { vaddr : int; access : access; kind : fault_kind }

let () =
  Printexc.register_printer (function
    | Fault { vaddr; access; kind } ->
        Some
          (Format.asprintf "Mmu.Fault(%#x, %a, %a)" vaddr pp_access access
             pp_fault_kind kind)
    | _ -> None)

type t = { layout : Layout.t; tlb : Tlb.t }

let create ~layout ~tlb_capacity =
  { layout; tlb = Tlb.create ~capacity:tlb_capacity }

let layout t = t.layout
let tlb t = t.tlb

type translation = { paddr : int; tlb_hit : bool }

let fault vaddr access kind = raise (Fault { vaddr; access; kind })

(* Find a usable PTE for [vpn], recording whether the TLB supplied it.
   A TLB hit whose entry is stale (not present) falls back to the walk
   path after flushing; the kernel may have paged the frame out. *)
let find_pte t pt vpn =
  match Tlb.lookup t.tlb vpn with
  | Some pte when pte.Pte.present -> Some (pte, true)
  | Some _ ->
      Tlb.flush_page t.tlb vpn;
      (match Page_table.find pt vpn with
      | Some pte when pte.Pte.present -> Some (pte, false)
      | Some _ | None -> None)
  | None -> (
      match Page_table.find pt vpn with
      | Some pte when pte.Pte.present ->
          Tlb.insert t.tlb vpn pte;
          Some (pte, false)
      | Some _ | None -> None)

let translate t pt access vaddr =
  (match Layout.region_of t.layout vaddr with
  | Some _ -> ()
  | None -> fault vaddr access Out_of_range);
  let vpn = Layout.page_of_addr t.layout vaddr in
  match find_pte t pt vpn with
  | None -> fault vaddr access Not_present
  | Some (pte, tlb_hit) ->
      (match access with
      | Read -> ()
      | Write -> if not pte.Pte.writable then fault vaddr access Protection);
      pte.Pte.referenced <- true;
      (match access with
      | Write -> pte.Pte.dirty <- true
      | Read -> ());
      let paddr =
        Layout.addr_of_page t.layout pte.Pte.ppage
        + Layout.offset_in_page t.layout vaddr
      in
      { paddr; tlb_hit }

let probe t pt access vaddr =
  match Layout.region_of t.layout vaddr with
  | None -> Error Out_of_range
  | Some _ -> (
      let vpn = Layout.page_of_addr t.layout vaddr in
      match Page_table.find pt vpn with
      | None -> Error Not_present
      | Some pte when not pte.Pte.present -> Error Not_present
      | Some pte -> (
          match access with
          | Write when not pte.Pte.writable -> Error Protection
          | Read | Write ->
              let paddr =
                Layout.addr_of_page t.layout pte.Pte.ppage
                + Layout.offset_in_page t.layout vaddr
              in
              Ok { paddr; tlb_hit = false }))

let flush_tlb t = Tlb.flush_all t.tlb

let flush_tlb_page t ~vpn = Tlb.flush_page t.tlb vpn
