(** Translation lookaside buffer.

    A small, fully associative, LRU-replaced cache of page-table
    entries. Entries alias the live {!Pte.t} objects, so bit updates
    (dirty/referenced) made through the TLB are visible in the page
    table — but a cached entry must be flushed when the page table
    mapping itself is removed or replaced. *)

type t

val create : capacity:int -> t
(** Raises [Invalid_argument] if [capacity <= 0]. *)

val capacity : t -> int

val lookup : t -> int -> Pte.t option
(** [lookup t vpn] is a hit (refreshing LRU order) or [None]. *)

val insert : t -> int -> Pte.t -> unit
(** [insert t vpn pte] caches an entry, evicting the LRU one if full. *)

val flush_page : t -> int -> unit
(** Drop the entry for [vpn] if cached. *)

val flush_all : t -> unit
(** Full flush (context switch). *)

val hits : t -> int
val misses : t -> int
(** Cumulative counters (a [lookup] returning [None] is a miss). *)
