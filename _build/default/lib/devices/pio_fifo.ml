module Engine = Udma_sim.Engine

type t = {
  engine : Engine.t;
  capacity : int;
  rx : int32 Queue.t;
  mutable peer : t option;
  link_latency : int;
  mutable base : int; (* set at install time *)
  mutable tx_pushed : int;
  mutable rx_delivered : int;
  mutable overruns : int;
}

let create ~engine ?(capacity_words = 16384) ?(link_latency = 40) () =
  if capacity_words <= 0 then invalid_arg "Pio_fifo.create: capacity";
  if link_latency < 0 then invalid_arg "Pio_fifo.create: latency";
  {
    engine;
    capacity = capacity_words;
    rx = Queue.create ();
    peer = None;
    link_latency;
    base = 0;
    tx_pushed = 0;
    rx_delivered = 0;
    overruns = 0;
  }

let connect a b =
  a.peer <- Some b;
  b.peer <- Some a

let deliver peer word _engine =
  if Queue.length peer.rx < peer.capacity then begin
    Queue.push word peer.rx;
    peer.rx_delivered <- peer.rx_delivered + 1
  end
  else peer.overruns <- peer.overruns + 1

let push_tx t word =
  t.tx_pushed <- t.tx_pushed + 1;
  match t.peer with
  | None -> () (* unconnected: words vanish into the void *)
  | Some peer -> Engine.schedule t.engine ~delay:t.link_latency (deliver peer word)

let reg_tx = 0
let reg_rx = 4
let reg_rx_count = 8
let reg_tx_space = 12

let handler t =
  Udma_dma.Bus.
    {
      io_load =
        (fun ~paddr ->
          match paddr - t.base with
          | o when o = reg_rx -> (
              match Queue.take_opt t.rx with Some w -> w | None -> 0l)
          | o when o = reg_rx_count -> Int32.of_int (Queue.length t.rx)
          | o when o = reg_tx_space ->
              (* the TX side is wire-limited, not buffered; always room *)
              Int32.of_int t.capacity
          | _ -> 0l);
      io_store =
        (fun ~paddr v ->
          match paddr - t.base with
          | o when o = reg_tx -> push_tx t v
          | _ -> () (* writes to other registers are ignored *));
    }

let install_at t bus ~base ~size =
  t.base <- base;
  Udma_dma.Bus.register_io bus ~base ~size (handler t)

let tx_pushed t = t.tx_pushed
let rx_delivered t = t.rx_delivered
let overruns t = t.overruns
let rx_pending t = Queue.length t.rx
