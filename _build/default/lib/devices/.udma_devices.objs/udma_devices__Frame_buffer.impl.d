lib/devices/frame_buffer.ml: Bytes Char Printf Udma_dma
