lib/devices/pio_fifo.mli: Udma_dma Udma_sim
