lib/devices/pio_fifo.ml: Int32 Queue Udma_dma Udma_sim
