lib/devices/disk.ml: Bytes Printf Udma_dma
