lib/devices/disk.mli: Udma_dma
