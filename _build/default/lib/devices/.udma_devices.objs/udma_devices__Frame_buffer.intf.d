lib/devices/frame_buffer.mli: Udma_dma
