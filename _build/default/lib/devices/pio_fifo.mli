(** Memory-mapped FIFO network interface — the related-work baseline
    (paper §9: CM-5-style controllers with no DMA capability, where
    "the host processor communicates with the network interface by
    reading or writing special memory locations").

    Every word crosses the bus as a processor-generated single-word
    transaction, so short messages enjoy low latency but long messages
    cannot use burst mode — exactly the trade-off the paper argues UDMA
    wins for long messages.

    The register page layout (word offsets from the installed base):
    - [+0]  TX data (store pushes one word toward the peer)
    - [+4]  RX data (load pops one received word; 0 when empty)
    - [+8]  RX count (load: words waiting)
    - [+12] TX space (load: words of room left) *)

type t

val create :
  engine:Udma_sim.Engine.t ->
  ?capacity_words:int ->
  ?link_latency:int ->
  unit ->
  t
(** [capacity_words] (default 16384) bounds both FIFOs; [link_latency]
    (default 40 cycles) is the per-word wire delay to the peer. *)

val connect : t -> t -> unit
(** Cross-connect two interfaces (idempotent, symmetric). *)

val handler : t -> Udma_dma.Bus.io_handler
(** To be registered over one page of physical address space; register
    decoding is relative to the lowest registered address, so pass the
    same [base] to {!install_at}. *)

val install_at : t -> Udma_dma.Bus.t -> base:int -> size:int -> unit
(** Register the device's one page of registers on the bus. *)

val tx_pushed : t -> int
val rx_delivered : t -> int
val overruns : t -> int
(** Words dropped because the peer's RX FIFO was full. *)

val rx_pending : t -> int
