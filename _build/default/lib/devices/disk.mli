(** Block storage device — the paper's "a device address might name a
    block" example (§4).

    The device-internal address space is the linear block store; block
    [b] occupies device bytes [b·block_size ...]. A seek model charges
    head movement proportional to block distance, so DMA transfers pay
    realistic device-side latency on top of bus occupancy. *)

type t

type geometry = {
  blocks : int;
  block_size : int;      (** bytes; a power of two *)
  seek_base_cycles : int;
  seek_per_block_cycles : int;  (** per block of head travel *)
  transfer_cycles_per_block : int;
}

val default_geometry : geometry
(** 1024 × 4 KB blocks, 2000 + 4/block seek, 500 cycles/block media
    transfer. *)

val create : ?geometry:geometry -> unit -> t

val geometry : t -> geometry
val size_bytes : t -> int

val port : t -> Udma_dma.Device.port
(** DMA port; [access_cycles] implements the seek + media-transfer
    model and updates the head position. *)

val pages : t -> page_size:int -> int

val read_block : t -> int -> bytes
val write_block : t -> int -> bytes -> unit

val head_position : t -> int
(** Current head block (after the last access). *)

val seeks : t -> int
(** Number of non-zero-distance seeks performed. *)
