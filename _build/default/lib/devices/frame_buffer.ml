type t = { width : int; height : int; pixels : Bytes.t }

let bytes_per_pixel = 4

let create ~width ~height =
  if width <= 0 || height <= 0 then
    invalid_arg "Frame_buffer.create: dimensions must be positive";
  { width; height; pixels = Bytes.make (width * height * bytes_per_pixel) '\000' }

let width t = t.width
let height t = t.height
let size_bytes t = Bytes.length t.pixels

let port t =
  let size = size_bytes t in
  let check addr len what =
    if addr < 0 || len < 0 || addr + len > size then
      invalid_arg (Printf.sprintf "Frame_buffer.%s: [%#x,+%d)" what addr len)
  in
  Udma_dma.Device.
    {
      name = "framebuffer";
      dev_write =
        (fun ~addr b ->
          check addr (Bytes.length b) "dev_write";
          Bytes.blit b 0 t.pixels addr (Bytes.length b));
      dev_read =
        (fun ~addr ~len ->
          check addr len "dev_read";
          Bytes.sub t.pixels addr len);
      access_cycles = (fun ~addr:_ ~len:_ -> 0);
      writable = (fun ~addr -> addr >= 0 && addr < size);
      readable = (fun ~addr -> addr >= 0 && addr < size);
    }

let pages t ~page_size = (size_bytes t + page_size - 1) / page_size

let offset t ~x ~y =
  if x < 0 || x >= t.width || y < 0 || y >= t.height then
    invalid_arg (Printf.sprintf "Frame_buffer: pixel (%d,%d) out of range" x y);
  ((y * t.width) + x) * bytes_per_pixel

let get_pixel t ~x ~y = Bytes.get_int32_le t.pixels (offset t ~x ~y)

let set_pixel t ~x ~y v = Bytes.set_int32_le t.pixels (offset t ~x ~y) v

let row t ~y =
  if y < 0 || y >= t.height then invalid_arg "Frame_buffer.row: out of range";
  Bytes.sub t.pixels (y * t.width * bytes_per_pixel) (t.width * bytes_per_pixel)

let checksum t =
  let h = ref 0 in
  Bytes.iter (fun c -> h := ((!h * 131) + Char.code c) land 0x3FFFFFFF) t.pixels;
  !h
