(** Graphics frame buffer — one of the paper's example UDMA devices
    (§1, §4: "a device address might specify a pixel").

    The device-internal address space is raw pixel memory,
    [width × height × 4] bytes (RGBA8888, row-major). Device-proxy page
    [k] therefore names pixels [k·page_size/4 ...]. *)

type t

val create : width:int -> height:int -> t

val width : t -> int
val height : t -> int
val size_bytes : t -> int

val port : t -> Udma_dma.Device.port
(** DMA port over the pixel memory; transfers must be 4-byte (pixel)
    aligned or the UDMA status word reports a device error. *)

val pages : t -> page_size:int -> int
(** Device-proxy pages needed to cover the pixel memory. *)

val get_pixel : t -> x:int -> y:int -> int32
val set_pixel : t -> x:int -> y:int -> int32 -> unit

val row : t -> y:int -> bytes
(** The raw bytes of scanline [y]. *)

val checksum : t -> int
(** Order-sensitive checksum of the whole pixel memory (tests). *)
