type geometry = {
  blocks : int;
  block_size : int;
  seek_base_cycles : int;
  seek_per_block_cycles : int;
  transfer_cycles_per_block : int;
}

let default_geometry =
  {
    blocks = 1024;
    block_size = 4096;
    seek_base_cycles = 2000;
    seek_per_block_cycles = 4;
    transfer_cycles_per_block = 500;
  }

type t = {
  geometry : geometry;
  store : Bytes.t;
  mutable head : int;
  mutable seeks : int;
}

let create ?(geometry = default_geometry) () =
  if geometry.blocks <= 0 || geometry.block_size <= 0 then
    invalid_arg "Disk.create: bad geometry";
  {
    geometry;
    store = Bytes.make (geometry.blocks * geometry.block_size) '\000';
    head = 0;
    seeks = 0;
  }

let geometry t = t.geometry
let size_bytes t = Bytes.length t.store

let check t addr len what =
  if addr < 0 || len < 0 || addr + len > size_bytes t then
    invalid_arg (Printf.sprintf "Disk.%s: [%#x,+%d) out of range" what addr len)

(* Seek to the first block of the access, then stream. *)
let access_cycles t ~addr ~len =
  let g = t.geometry in
  let first = addr / g.block_size in
  let last = (addr + max 1 len - 1) / g.block_size in
  let distance = abs (first - t.head) in
  if distance > 0 then t.seeks <- t.seeks + 1;
  t.head <- last;
  g.seek_base_cycles
  + (distance * g.seek_per_block_cycles)
  + ((last - first + 1) * g.transfer_cycles_per_block)

let port t =
  Udma_dma.Device.
    {
      name = "disk";
      dev_write =
        (fun ~addr b ->
          check t addr (Bytes.length b) "dev_write";
          Bytes.blit b 0 t.store addr (Bytes.length b));
      dev_read =
        (fun ~addr ~len ->
          check t addr len "dev_read";
          Bytes.sub t.store addr len);
      access_cycles = (fun ~addr ~len -> access_cycles t ~addr ~len);
      writable = (fun ~addr -> addr >= 0 && addr < size_bytes t);
      readable = (fun ~addr -> addr >= 0 && addr < size_bytes t);
    }

let pages t ~page_size = (size_bytes t + page_size - 1) / page_size

let read_block t b =
  let g = t.geometry in
  if b < 0 || b >= g.blocks then invalid_arg "Disk.read_block: out of range";
  Bytes.sub t.store (b * g.block_size) g.block_size

let write_block t b data =
  let g = t.geometry in
  if b < 0 || b >= g.blocks then invalid_arg "Disk.write_block: out of range";
  if Bytes.length data <> g.block_size then
    invalid_arg "Disk.write_block: wrong block size";
  Bytes.blit data 0 t.store (b * g.block_size) g.block_size

let head_position t = t.head
let seeks t = t.seeks
