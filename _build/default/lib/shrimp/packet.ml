type t = {
  src_node : int;
  dst_node : int;
  dst_paddr : int;
  payload : bytes;
  seq : int;
}

let header_bytes = 16

let size_bytes t = Bytes.length t.payload + header_bytes

let pp ppf t =
  Format.fprintf ppf "pkt#%d %d->%d @%#x (%d bytes)" t.seq t.src_node
    t.dst_node t.dst_paddr (Bytes.length t.payload)
