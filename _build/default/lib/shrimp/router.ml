module Engine = Udma_sim.Engine

type config = {
  base_cycles : int;
  per_hop_cycles : int;
  per_word_cycles : int;
}

let default_config = { base_cycles = 20; per_hop_cycles = 8; per_word_cycles = 1 }

type t = {
  engine : Engine.t;
  config : config;
  node_count : int;
  width : int;
  sinks : (Packet.t -> unit) option array;
  last_arrival : (int * int, int) Hashtbl.t;
      (* dimension-order routing uses one fixed path per (src, dst), so
         packets between a pair of nodes are delivered in order *)
  mutable packets_routed : int;
  mutable bytes_routed : int;
}

let create ~engine ~nodes ?(config = default_config) () =
  if nodes <= 0 then invalid_arg "Router.create: nodes must be positive";
  let width =
    let rec go w = if w * w >= nodes then w else go (w + 1) in
    go 1
  in
  {
    engine;
    config;
    node_count = nodes;
    width;
    sinks = Array.make nodes None;
    last_arrival = Hashtbl.create 16;
    packets_routed = 0;
    bytes_routed = 0;
  }

let nodes t = t.node_count

let check_node t id what =
  if id < 0 || id >= t.node_count then
    invalid_arg (Printf.sprintf "Router.%s: node %d out of range" what id)

let coords t id =
  check_node t id "coords";
  (id mod t.width, id / t.width)

let hops t ~src ~dst =
  let sx, sy = coords t src and dx, dy = coords t dst in
  abs (sx - dx) + abs (sy - dy)

let register t ~node_id sink =
  check_node t node_id "register";
  t.sinks.(node_id) <- Some sink

let latency_cycles t ~src ~dst ~bytes =
  let words = (bytes + 3) / 4 in
  t.config.base_cycles
  + (hops t ~src ~dst * t.config.per_hop_cycles)
  + (words * t.config.per_word_cycles)

let send t pkt =
  check_node t pkt.Packet.src_node "send";
  check_node t pkt.Packet.dst_node "send";
  match t.sinks.(pkt.Packet.dst_node) with
  | None ->
      invalid_arg
        (Printf.sprintf "Router.send: node %d has no sink" pkt.Packet.dst_node)
  | Some sink ->
      let bytes = Packet.size_bytes pkt in
      let latency =
        latency_cycles t ~src:pkt.Packet.src_node ~dst:pkt.Packet.dst_node
          ~bytes
      in
      let key = (pkt.Packet.src_node, pkt.Packet.dst_node) in
      let earliest =
        match Hashtbl.find_opt t.last_arrival key with
        | Some last -> last + 1
        | None -> 0
      in
      let arrival = max (Engine.now t.engine + latency) earliest in
      Hashtbl.replace t.last_arrival key arrival;
      t.packets_routed <- t.packets_routed + 1;
      t.bytes_routed <- t.bytes_routed + bytes;
      Engine.schedule t.engine ~delay:(arrival - Engine.now t.engine) (fun _ ->
          sink pkt)

let packets_routed t = t.packets_routed
let bytes_routed t = t.bytes_routed
