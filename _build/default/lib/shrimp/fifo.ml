type t = {
  capacity : int;
  q : Packet.t Queue.t;
  mutable used : int;
  mutable pushes : int;
  mutable rejections : int;
}

let create ~capacity_bytes =
  if capacity_bytes <= 0 then invalid_arg "Fifo.create: capacity";
  { capacity = capacity_bytes; q = Queue.create (); used = 0; pushes = 0;
    rejections = 0 }

let capacity_bytes t = t.capacity
let used_bytes t = t.used
let length t = Queue.length t.q

let push t pkt =
  let sz = Packet.size_bytes pkt in
  if t.used + sz > t.capacity then begin
    t.rejections <- t.rejections + 1;
    false
  end
  else begin
    Queue.push pkt t.q;
    t.used <- t.used + sz;
    t.pushes <- t.pushes + 1;
    true
  end

let pop t =
  match Queue.take_opt t.q with
  | Some pkt ->
      t.used <- t.used - Packet.size_bytes pkt;
      Some pkt
  | None -> None

let peek t = Queue.peek_opt t.q

let is_empty t = Queue.is_empty t.q

let pushes t = t.pushes
let rejections t = t.rejections
