lib/shrimp/messaging.mli: Format System Udma Udma_os
