lib/shrimp/packet.mli: Format
