lib/shrimp/packet.ml: Bytes Format
