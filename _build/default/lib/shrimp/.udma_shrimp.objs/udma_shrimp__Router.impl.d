lib/shrimp/router.ml: Array Hashtbl Packet Printf Udma_sim
