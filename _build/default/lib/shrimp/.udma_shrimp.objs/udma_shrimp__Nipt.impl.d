lib/shrimp/nipt.ml: Array Printf
