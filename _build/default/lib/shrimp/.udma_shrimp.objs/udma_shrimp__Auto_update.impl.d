lib/shrimp/auto_update.ml: Buffer Bytes Hashtbl Network_interface Udma_dma Udma_mmu Udma_os Udma_sim
