lib/shrimp/fifo.mli: Packet
