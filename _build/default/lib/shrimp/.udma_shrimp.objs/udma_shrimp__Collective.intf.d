lib/shrimp/collective.mli: System Udma Udma_os
