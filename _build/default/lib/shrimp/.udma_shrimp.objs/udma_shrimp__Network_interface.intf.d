lib/shrimp/network_interface.mli: Nipt Packet Router Udma_dma Udma_os
