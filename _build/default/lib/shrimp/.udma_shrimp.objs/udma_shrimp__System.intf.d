lib/shrimp/system.mli: Auto_update Network_interface Router Udma_os Udma_sim
