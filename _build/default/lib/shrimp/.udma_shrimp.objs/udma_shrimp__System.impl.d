lib/shrimp/system.ml: Array Auto_update Format List Network_interface Nipt Printf Router Udma_mmu Udma_os Udma_sim
