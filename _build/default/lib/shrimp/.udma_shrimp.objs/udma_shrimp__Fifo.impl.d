lib/shrimp/fifo.ml: Packet Queue
