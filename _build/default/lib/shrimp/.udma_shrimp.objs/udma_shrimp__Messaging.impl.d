lib/shrimp/messaging.ml: Bytes Format Int32 Printf System Udma Udma_mmu Udma_os Udma_sim
