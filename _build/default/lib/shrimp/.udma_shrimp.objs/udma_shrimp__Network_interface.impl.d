lib/shrimp/network_interface.ml: Bytes Fifo Hashtbl Nipt Packet Printf Router Udma Udma_dma Udma_memory Udma_mmu Udma_os Udma_sim
