lib/shrimp/router.mli: Packet Udma_sim
