lib/shrimp/collective.ml: Array Bytes Format Fun List Messaging Option System Udma Udma_mmu Udma_os
