lib/shrimp/auto_update.mli: Network_interface Udma_os
