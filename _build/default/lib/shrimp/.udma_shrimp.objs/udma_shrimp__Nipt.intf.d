lib/shrimp/nipt.mli:
