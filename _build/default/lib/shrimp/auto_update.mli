(** Automatic update — SHRIMP's second transfer strategy.

    The paper under reproduction evaluates deliberate update, but §9
    notes that the design "retains the automatic update transfer
    strategy described in [5], which still relies upon fixed mappings
    between source and destination pages": once the kernel binds a
    local physical page to a remote page, the network interface snoops
    ordinary writes to that page on the memory bus and propagates them
    to the remote node with no initiation at all.

    The snooper merges consecutive writes: a run of stores to
    contiguous, ascending addresses accumulates in a combining buffer
    that is flushed when the run breaks, when the buffer fills, or
    after a quiet window. *)

type config = {
  combine_bytes : int;   (** combining-buffer capacity (default 64) *)
  flush_window : int;    (** cycles of write silence before a flush *)
}

val default_config : config
(** 64-byte combining, 200-cycle window. *)

type t

val create :
  machine:Udma_os.Machine.t -> ni:Network_interface.t -> ?config:config ->
  unit -> t
(** Attach the snooper to the machine's bus. Updates leave through
    [ni]'s normal outgoing path (same FIFO and link). *)

val bind : t -> frame:int -> dst_node:int -> dst_frame:int -> unit
(** Kernel operation: future writes to physical page [frame] are
    propagated to page [dst_frame] on [dst_node] at the same offset
    (the fixed page mapping of §9). Raises [Invalid_argument] if the
    frame is already bound. *)

val unbind : t -> frame:int -> unit
(** Stop propagation (flushes any pending combined run first). *)

val flush : t -> unit
(** Push out the pending combining buffer immediately. *)

val bound_count : t -> int

val updates_sent : t -> int
(** Update packets launched. *)

val words_combined : t -> int
(** Words merged into an already-open run. *)
