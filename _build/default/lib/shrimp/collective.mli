(** User-level collective operations over deliberate update.

    SHRIMP's point (paper §1, §8) is that protected user-level
    communication makes fine-grain coordination cheap enough to build
    real primitives on. This module builds three classics on top of
    {!Messaging} channels — no kernel involvement after setup:

    - {b barrier}: all-to-one flag gather plus one-to-all release;
    - {b broadcast}: root streams its buffer to every other rank;
    - {b all-gather}: every rank's contribution is delivered into every
      other rank's receive window.

    A [group] owns one channel per ordered pair of ranks, carved out of
    disjoint NIPT regions. *)

type group

val group_size : group -> int

val create_group :
  System.t -> members:(int * Udma_os.Proc.t) list -> ?first_index:int ->
  ?pages_per_channel:int -> unit -> group
(** [create_group sys ~members ()] wires channels for every ordered
    pair. [members] are (node id, process) pairs, rank = list position.
    NIPT/device-proxy pages from [first_index] (default 0) are consumed
    in order; [pages_per_channel] defaults to 1. Raises
    [Invalid_argument] for fewer than 2 members or if the device-proxy
    region cannot hold all the channels. *)

val cpu_of : group -> rank:int -> Udma.Initiator.cpu
(** The member's CPU (convenience). *)

val barrier : group -> rank:int -> unit
(** Execute rank [rank]'s part of the barrier. Because the simulation
    is single-threaded, call this once for every rank in any order;
    the final call completes the barrier for everyone. Counts one
    barrier per full round. *)

val barriers_completed : group -> int

val broadcast :
  group -> root:int -> src_vaddr:int -> nbytes:int -> unit
(** Stream [nbytes] (4-byte multiple, within channel capacity) from
    [root]'s buffer to every other rank; blocks until every rank has
    observed its copy. *)

val bcast_recv_vaddr : group -> root:int -> rank:int -> int
(** Where rank [rank] receives [root]'s broadcasts. Raises
    [Invalid_argument] when [rank = root]. *)

val all_gather :
  group -> contributions:(int * int) array -> unit
(** [all_gather g ~contributions] where [contributions.(rank) =
    (src_vaddr, nbytes)]: every rank sends its contribution to every
    other rank; blocks until all deliveries are observed. *)

val gather_recv_vaddr : group -> from_rank:int -> rank:int -> int
(** Where rank [rank] received [from_rank]'s contribution. *)
