module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Bus = Udma_dma.Bus
module M = Udma_os.Machine

type config = { combine_bytes : int; flush_window : int }

let default_config = { combine_bytes = 64; flush_window = 200 }

type binding = { dst_node : int; dst_frame : int }

type run = {
  frame : int;
  binding : binding;
  start_offset : int;
  data : Buffer.t;
  mutable last_write : int;
}

type t = {
  machine : M.t;
  ni : Network_interface.t;
  config : config;
  bindings : (int, binding) Hashtbl.t; (* frame -> destination *)
  mutable pending : run option;
  mutable checker_armed : bool;
  mutable updates_sent : int;
  mutable words_combined : int;
}

let page_size t = Layout.page_size t.machine.M.layout

let flush t =
  match t.pending with
  | None -> ()
  | Some run ->
      t.pending <- None;
      t.updates_sent <- t.updates_sent + 1;
      Network_interface.send_raw t.ni ~dst_node:run.binding.dst_node
        ~dst_paddr:((run.binding.dst_frame * page_size t) + run.start_offset)
        (Buffer.to_bytes run.data)

(* Flush the run if no write has touched it for a quiet window;
   otherwise re-arm. *)
let rec arm_checker t =
  if not t.checker_armed then begin
    t.checker_armed <- true;
    Engine.schedule t.machine.M.engine ~delay:t.config.flush_window (fun _ ->
        t.checker_armed <- false;
        match t.pending with
        | Some run ->
            if
              Engine.now t.machine.M.engine - run.last_write
              >= t.config.flush_window
            then flush t
            else arm_checker t
        | None -> ())
  end

let snoop t ~paddr v =
  let frame = paddr / page_size t in
  let offset = paddr mod page_size t in
  let extend_current () =
    match t.pending with
    | Some run
      when run.frame = frame
           && offset = run.start_offset + Buffer.length run.data
           && Buffer.length run.data + 4 <= t.config.combine_bytes ->
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 v;
        Buffer.add_bytes run.data b;
        run.last_write <- Engine.now t.machine.M.engine;
        t.words_combined <- t.words_combined + 1;
        true
    | Some _ | None -> false
  in
  match Hashtbl.find_opt t.bindings frame with
  | None -> ()
  | Some binding ->
      if not (extend_current ()) then begin
        flush t;
        let data = Buffer.create t.config.combine_bytes in
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 v;
        Buffer.add_bytes data b;
        t.pending <-
          Some
            {
              frame;
              binding;
              start_offset = offset;
              data;
              last_write = Engine.now t.machine.M.engine;
            };
        arm_checker t
      end

let create ~machine ~ni ?(config = default_config) () =
  if config.combine_bytes < 4 || config.combine_bytes land 3 <> 0 then
    invalid_arg "Auto_update.create: combine_bytes must be a positive word multiple";
  let t =
    {
      machine;
      ni;
      config;
      bindings = Hashtbl.create 16;
      pending = None;
      checker_armed = false;
      updates_sent = 0;
      words_combined = 0;
    }
  in
  Bus.add_snoop machine.M.bus (fun ~paddr v -> snoop t ~paddr v);
  t

let bind t ~frame ~dst_node ~dst_frame =
  if Hashtbl.mem t.bindings frame then
    invalid_arg "Auto_update.bind: frame already bound";
  Hashtbl.replace t.bindings frame { dst_node; dst_frame }

let unbind t ~frame =
  (match t.pending with
  | Some run when run.frame = frame -> flush t
  | Some _ | None -> ());
  Hashtbl.remove t.bindings frame

let bound_count t = Hashtbl.length t.bindings
let updates_sent t = t.updates_sent
let words_combined t = t.words_combined
