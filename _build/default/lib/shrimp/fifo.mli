(** Bounded packet FIFO (the outgoing/incoming FIFOs of Figure 6).

    Capacity is accounted in bytes of packet data (header included) so
    big packets occupy proportionally more of the buffer. *)

type t

val create : capacity_bytes:int -> t

val capacity_bytes : t -> int
val used_bytes : t -> int
val length : t -> int

val push : t -> Packet.t -> bool
(** [false] when the packet does not fit (caller applies
    backpressure). *)

val pop : t -> Packet.t option

val peek : t -> Packet.t option

val is_empty : t -> bool

val pushes : t -> int
val rejections : t -> int
