(** The interconnect: a 2-D mesh with dimension-order routing, standing
    in for the Intel Paragon routing backplane (paper §8).

    Packet latency is [base + hops·per_hop + words·per_word]; each
    link is cut-through so only total occupancy matters for the shapes
    the evaluation measures. Dimension-order routing uses one fixed
    path per (src, dst) pair, so delivery between a pair of nodes is
    in order — a small packet never overtakes a large one sent before
    it (SHRIMP's flag-after-payload notification depends on this). *)

type config = {
  base_cycles : int;       (** injection + ejection *)
  per_hop_cycles : int;
  per_word_cycles : int;   (** wire occupancy per 32-bit word *)
}

val default_config : config
(** 20 / 8 / 1 cycles. *)

type t

val create :
  engine:Udma_sim.Engine.t -> nodes:int -> ?config:config -> unit -> t
(** A mesh of the squarest shape covering [nodes]. *)

val nodes : t -> int

val coords : t -> int -> int * int
(** Mesh coordinates of a node id. *)

val hops : t -> src:int -> dst:int -> int
(** Dimension-order hop count ([0] for self). *)

val register : t -> node_id:int -> (Packet.t -> unit) -> unit
(** Install node [node_id]'s delivery sink. *)

val send : t -> Packet.t -> unit
(** Route a packet: its sink fires after the modelled latency. Raises
    [Invalid_argument] for an unregistered destination. *)

val latency_cycles : t -> src:int -> dst:int -> bytes:int -> int

val packets_routed : t -> int
val bytes_routed : t -> int
