(** The Network Interface Page Table (paper §8, Figures 6–7).

    Every potential message destination is an entry naming a remote
    node and a physical page on that node. A device-proxy address is
    split into a page number and an offset; the page number indexes the
    NIPT directly, and the offset is combined with the entry's remote
    page to form the remote physical address. The real board indexes
    with 15 bits (32 K destination pages); the size here is
    configurable. *)

type entry = { dst_node : int; dst_frame : int }

type t

val create : entries:int -> t

val capacity : t -> int

val set : t -> index:int -> entry -> unit
(** Kernel-only operation: configure a destination. *)

val clear : t -> index:int -> unit

val lookup : t -> index:int -> entry option
(** [None] for invalid/unconfigured entries. *)

val valid_count : t -> int
