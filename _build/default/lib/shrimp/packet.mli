(** A SHRIMP network packet.

    Built by the sending network interface from a NIPT lookup (paper
    §8, Figure 7): the header carries the destination node and the
    destination {e physical} address, resolved at send time, so the
    receiving side can DMA the payload straight into memory. *)

type t = {
  src_node : int;
  dst_node : int;
  dst_paddr : int;   (** destination physical byte address *)
  payload : bytes;
  seq : int;         (** per-sender sequence number, for tracing *)
}

val size_bytes : t -> int
(** Payload plus the modelled header. *)

val header_bytes : int
(** 16: node ids, address, length. *)

val pp : Format.formatter -> t -> unit
