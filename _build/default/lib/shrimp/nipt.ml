type entry = { dst_node : int; dst_frame : int }

type t = { table : entry option array }

let create ~entries =
  if entries <= 0 then invalid_arg "Nipt.create: entries must be positive";
  { table = Array.make entries None }

let capacity t = Array.length t.table

let check t index what =
  if index < 0 || index >= Array.length t.table then
    invalid_arg (Printf.sprintf "Nipt.%s: index %d out of range" what index)

let set t ~index entry =
  check t index "set";
  t.table.(index) <- Some entry

let clear t ~index =
  check t index "clear";
  t.table.(index) <- None

let lookup t ~index =
  if index < 0 || index >= Array.length t.table then None else t.table.(index)

let valid_count t =
  Array.fold_left (fun n e -> if e = None then n else n + 1) 0 t.table
