module Layout = Udma_mmu.Layout
module Initiator = Udma.Initiator
module M = Udma_os.Machine
module Kernel = Udma_os.Kernel

type member = {
  node : int;
  proc : Udma_os.Proc.t;
  cpu : Initiator.cpu;
  token_vaddr : int; (* 1-word send buffer for barrier tokens *)
}

type link = { channel : Messaging.channel; mutable last_seq : int }

type group = {
  system : System.t;
  members : member array;
  links : link option array array; (* data channels, links.(s).(r), s <> r *)
  barrier_up : link option array;  (* rank r -> root, r >= 1 *)
  barrier_down : link option array; (* root -> rank r, r >= 1 *)
  mutable arrived : bool array;
  mutable barrier_round : int;
  mutable barriers_completed : int;
}

let group_size g = Array.length g.members

let link g ~src ~dst =
  match g.links.(src).(dst) with
  | Some l -> l
  | None -> invalid_arg "Collective: no channel between these ranks"

let create_group system ~members ?(first_index = 0) ?(pages_per_channel = 1) ()
    =
  let n = List.length members in
  if n < 2 then invalid_arg "Collective.create_group: need at least 2 members";
  let members =
    Array.of_list
      (List.map
         (fun (node, proc) ->
           let machine = (System.node system node).System.machine in
           let token_vaddr = Kernel.alloc_buffer machine proc ~bytes:4096 in
           (* dirty it once so it can be a transfer source *)
           Kernel.write_user machine proc ~vaddr:token_vaddr
             (Bytes.make 4 '\000');
           { node; proc; cpu = Kernel.user_cpu machine proc; token_vaddr })
         members)
  in
  let idx = ref first_index in
  let connect ~src ~dst ~pages =
    let ms = members.(src) and mr = members.(dst) in
    let channel =
      Messaging.connect system
        ~sender:(ms.node, ms.proc)
        ~receiver:(mr.node, mr.proc)
        ~first_index:!idx ~pages ()
    in
    idx := !idx + pages;
    Some { channel; last_seq = 0 }
  in
  let links = Array.make_matrix n n None in
  for s = 0 to n - 1 do
    for r = 0 to n - 1 do
      if s <> r then links.(s).(r) <- connect ~src:s ~dst:r ~pages:pages_per_channel
    done
  done;
  (* barriers get their own channels so tokens never clobber data in a
     channel's receive window *)
  let barrier_up = Array.make n None and barrier_down = Array.make n None in
  for r = 1 to n - 1 do
    barrier_up.(r) <- connect ~src:r ~dst:0 ~pages:1;
    barrier_down.(r) <- connect ~src:0 ~dst:r ~pages:1
  done;
  {
    system;
    members;
    links;
    barrier_up;
    barrier_down;
    arrived = Array.make n false;
    barrier_round = 0;
    barriers_completed = 0;
  }

let cpu_of g ~rank = g.members.(rank).cpu

let fail_send e =
  failwith (Format.asprintf "Collective: %a" Messaging.pp_send_error e)

let send_on g l ~src =
  let m = g.members.(src) in
  match
    Messaging.send l.channel m.cpu ~src_vaddr:m.token_vaddr ~nbytes:4 ()
  with
  | Ok seq -> l.last_seq <- seq
  | Error e -> fail_send e

let wait_on g l ~dst =
  match
    Messaging.recv_wait l.channel g.members.(dst).cpu ~seq:l.last_seq ()
  with
  | Ok _ -> ()
  | Error msg -> failwith ("Collective: " ^ msg)

let wait_token g ~src ~dst = wait_on g (link g ~src ~dst) ~dst

let barrier g ~rank =
  let n = group_size g in
  if rank < 0 || rank >= n then invalid_arg "Collective.barrier: bad rank";
  if g.arrived.(rank) then
    invalid_arg "Collective.barrier: rank already arrived this round";
  g.arrived.(rank) <- true;
  (* non-root ranks notify the root as they arrive *)
  if rank <> 0 then send_on g (Option.get g.barrier_up.(rank)) ~src:rank;
  if Array.for_all Fun.id g.arrived then begin
    (* gather: the root observes every token *)
    for r = 1 to n - 1 do
      wait_on g (Option.get g.barrier_up.(r)) ~dst:0
    done;
    (* release: the root notifies everyone, and each rank observes it *)
    for r = 1 to n - 1 do
      send_on g (Option.get g.barrier_down.(r)) ~src:0
    done;
    for r = 1 to n - 1 do
      wait_on g (Option.get g.barrier_down.(r)) ~dst:r
    done;
    g.arrived <- Array.make n false;
    g.barrier_round <- g.barrier_round + 1;
    g.barriers_completed <- g.barriers_completed + 1
  end

let barriers_completed g = g.barriers_completed

let broadcast g ~root ~src_vaddr ~nbytes =
  let n = group_size g in
  if root < 0 || root >= n then invalid_arg "Collective.broadcast: bad root";
  let pending =
    List.filter_map
      (fun r ->
        if r = root then None
        else begin
          let l = link g ~src:root ~dst:r in
          match
            Messaging.send l.channel g.members.(root).cpu ~src_vaddr ~nbytes ()
          with
          | Ok seq ->
              l.last_seq <- seq;
              Some r
          | Error e -> fail_send e
        end)
      (List.init n Fun.id)
  in
  List.iter (fun r -> wait_token g ~src:root ~dst:r) pending

let bcast_recv_vaddr g ~root ~rank =
  if root = rank then
    invalid_arg "Collective.bcast_recv_vaddr: root receives nothing";
  Messaging.recv_vaddr (link g ~src:root ~dst:rank).channel

let all_gather g ~contributions =
  let n = group_size g in
  if Array.length contributions <> n then
    invalid_arg "Collective.all_gather: one contribution per rank";
  (* everyone sends to everyone, then everyone observes everything *)
  for s = 0 to n - 1 do
    let src_vaddr, nbytes = contributions.(s) in
    for r = 0 to n - 1 do
      if s <> r then begin
        let l = link g ~src:s ~dst:r in
        match
          Messaging.send l.channel g.members.(s).cpu ~src_vaddr ~nbytes ()
        with
        | Ok seq -> l.last_seq <- seq
        | Error e -> fail_send e
      end
    done
  done;
  for s = 0 to n - 1 do
    for r = 0 to n - 1 do
      if s <> r then wait_token g ~src:s ~dst:r
    done
  done

let gather_recv_vaddr g ~from_rank ~rank =
  if from_rank = rank then
    invalid_arg "Collective.gather_recv_vaddr: a rank keeps its own data";
  Messaging.recv_vaddr (link g ~src:from_rank ~dst:rank).channel
