(** A simulated user process. *)

type state = Ready | Running | Blocked | Exited

val pp_state : Format.formatter -> state -> unit

type t = {
  pid : int;
  name : string;
  page_table : Udma_mmu.Page_table.t;
  mutable state : state;
  mutable brk_vpn : int;      (** next free virtual page for allocations *)
  mutable faults : int;       (** page faults taken *)
  mutable proxy_faults : int; (** faults on proxy pages (§6 demand mapping) *)
  mutable cpu_cycles : int;   (** cycles charged while this process ran *)
}

val make : pid:int -> name:string -> t
(** A fresh [Ready] process with an empty page table; allocations start
    at virtual page 1 (page 0 is never mapped, so null dereferences
    fault). *)

val pp : Format.formatter -> t -> unit
