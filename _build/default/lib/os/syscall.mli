(** System calls — most importantly the traditional kernel-initiated
    DMA path of paper §2, used as the baseline in every comparison.

    A traditional transfer performs the four §2 steps: system call,
    translate + verify + pin + descriptor, the transfer itself, and
    completion interrupt + unpin + reschedule. The [Copy_through_buffer]
    variant models the common alternative the paper mentions: copying
    through reserved, pre-pinned kernel I/O buffers instead of pinning
    user pages. *)

type direction = To_device | From_device

type strategy =
  | Pin_user_pages      (** translate, pin, DMA directly, unpin *)
  | Copy_through_buffer (** bounce through a pinned kernel page *)

type error =
  | Bad_address   (** range not mapped in the process *)
  | Bad_size
  | Device_error of string

val pp_error : Format.formatter -> error -> unit

val dma_transfer :
  Machine.t ->
  Proc.t ->
  dir:direction ->
  vaddr:int ->
  nbytes:int ->
  port:Udma_dma.Device.port ->
  dev_addr:int ->
  strategy:strategy ->
  (int, error) result
(** Blocking kernel DMA between user virtual memory and a device.
    Returns the cycles consumed from syscall entry to return. *)

val map_device_proxy :
  Machine.t -> Proc.t -> vdev_index:int -> pdev_index:int -> writable:bool ->
  (unit, error) result
(** The §4 system call that grants a process a device-proxy mapping
    (charges the syscall cost, then installs the PTE). *)

val udma_enqueue_system :
  Machine.t -> src_proxy:int -> dest_proxy:int -> nbytes:int ->
  (unit, error) result
(** Kernel-initiated transfer through the §7 system-priority queue. *)
