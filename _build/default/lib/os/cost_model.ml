type t = {
  mhz : int;
  cached_ref : int;
  tlb_miss : int;
  uncached_ref : int;
  page_fault : int;
  proxy_map : int;
  dirty_upgrade : int;
  syscall : int;
  translate_page : int;
  pin_page : int;
  unpin_page : int;
  descriptor_build : int;
  dma_start : int;
  interrupt : int;
  context_switch : int;
  copy_per_byte_x8 : int;
  page_io : int;
  remap_check : int;
}

let default =
  {
    mhz = 72;
    cached_ref = 2;
    tlb_miss = 24;
    uncached_ref = 50;
    page_fault = 500;
    proxy_map = 300;
    dirty_upgrade = 250;
    syscall = 800;
    translate_page = 160;
    pin_page = 600;
    unpin_page = 400;
    descriptor_build = 200;
    dma_start = 100;
    interrupt = 1000;
    context_switch = 1200;
    copy_per_byte_x8 = 8; (* 1 cycle per byte *)
    page_io = 20_000;
    remap_check = 40;
  }

(* §1: >350 us of per-transfer overhead on the Paragon HIPPI path.
   At the modelled 72 MHz that is ~25_000 cycles per transfer. The
   Paragon path amortises its pinned I/O buffers, so the overhead is
   dominated by fixed per-call work (syscall, descriptor, start,
   interrupt) with only light per-page bookkeeping. *)
let hippi =
  {
    default with
    syscall = 9_000;
    translate_page = 60;
    pin_page = 100;
    unpin_page = 40;
    descriptor_build = 5_000;
    dma_start = 1_700;
    interrupt = 9_000;
  }

let us_of_cycles t c = float_of_int c /. float_of_int t.mhz

let copy_cycles t nbytes =
  if nbytes < 0 then invalid_arg "Cost_model.copy_cycles: negative size";
  (nbytes * t.copy_per_byte_x8 + 7) / 8

let udma_initiation_estimate t ~alignment_check_cycles =
  (2 * t.uncached_ref) + alignment_check_cycles
