(** Cycle costs of kernel and memory-system operations.

    Every experiment parameterises the simulation through one of these
    records; DESIGN.md §5 documents the calibration. The modelled clock
    is [mhz] MHz, so microseconds = cycles / mhz. *)

type t = {
  mhz : int;
  cached_ref : int;       (** user load/store hitting the cache + TLB *)
  tlb_miss : int;         (** additional cost of a page-table walk *)
  uncached_ref : int;     (** uncached (I/O-bus) reference — proxy space *)
  page_fault : int;       (** trap entry + dispatch + return *)
  proxy_map : int;        (** creating one proxy PTE on demand (§6) *)
  dirty_upgrade : int;    (** I3 write-enable + dirty-mark path (§6) *)
  syscall : int;          (** system-call entry + exit *)
  translate_page : int;   (** kernel virtual→physical translation, per page *)
  pin_page : int;         (** pinning one page (traditional DMA) *)
  unpin_page : int;
  descriptor_build : int; (** building one DMA descriptor *)
  dma_start : int;        (** kernel pokes the DMA control register *)
  interrupt : int;        (** completion interrupt + handler *)
  context_switch : int;   (** full context switch, incl. the I1 Inval store *)
  copy_per_byte_x8 : int; (** memory-copy cost in eighths of a cycle/byte *)
  page_io : int;          (** one page in/out of backing store *)
  remap_check : int;      (** I4 check: read engine registers / refcount *)
}

val default : t
(** The SHRIMP-calibrated profile (72 MHz; DESIGN.md §5): the
    two-reference initiation plus the user library's page-boundary
    check totals 200 cycles = 2.8 µs, the paper's §8 figure. *)

val hippi : t
(** The §1 motivation profile: kernel-initiated DMA with ≈350 µs of
    software overhead per transfer on a 100 MB/s-class channel. *)

val us_of_cycles : t -> int -> float

val copy_cycles : t -> int -> int
(** [copy_cycles t nbytes] is the memory-copy cost for [nbytes]. *)

val udma_initiation_estimate : t -> alignment_check_cycles:int -> int
(** Two uncached references plus the user library's check — the §8
    number. *)
