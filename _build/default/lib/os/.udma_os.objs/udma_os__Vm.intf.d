lib/os/vm.mli: Machine Proc Udma_mmu
