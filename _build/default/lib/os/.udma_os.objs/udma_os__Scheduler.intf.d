lib/os/scheduler.mli: Machine Proc
