lib/os/machine.mli: Cost_model Hashtbl Proc Udma Udma_dma Udma_memory Udma_mmu Udma_sim
