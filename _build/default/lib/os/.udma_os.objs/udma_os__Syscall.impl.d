lib/os/syscall.ml: Cost_model Format List Machine Proc Result Udma Udma_dma Udma_memory Udma_mmu Udma_sim Vm
