lib/os/proc.ml: Format Udma_mmu
