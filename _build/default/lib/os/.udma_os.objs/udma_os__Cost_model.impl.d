lib/os/cost_model.ml:
