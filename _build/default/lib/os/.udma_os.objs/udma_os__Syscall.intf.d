lib/os/syscall.mli: Format Machine Proc Udma_dma
