lib/os/vm.ml: Cost_model Format Hashtbl List Machine Option Printexc Proc Udma Udma_dma Udma_memory Udma_mmu Udma_sim
