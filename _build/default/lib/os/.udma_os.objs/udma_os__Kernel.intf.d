lib/os/kernel.mli: Machine Proc Udma
