lib/os/kernel.ml: Bytes Cost_model Machine Printf Proc Scheduler Udma Udma_dma Udma_memory Udma_mmu Udma_sim Vm
