lib/os/scheduler.ml: Cost_model List Machine Proc Udma Udma_mmu Udma_sim
