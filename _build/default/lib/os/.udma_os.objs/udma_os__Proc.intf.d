lib/os/proc.mli: Format Udma_mmu
