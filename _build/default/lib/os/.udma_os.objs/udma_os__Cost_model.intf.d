lib/os/cost_model.mli:
