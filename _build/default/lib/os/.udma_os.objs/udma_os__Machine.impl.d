lib/os/machine.ml: Cost_model Hashtbl List Proc Udma Udma_dma Udma_memory Udma_mmu Udma_sim
