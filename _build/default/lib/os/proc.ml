type state = Ready | Running | Blocked | Exited

let pp_state ppf = function
  | Ready -> Format.pp_print_string ppf "ready"
  | Running -> Format.pp_print_string ppf "running"
  | Blocked -> Format.pp_print_string ppf "blocked"
  | Exited -> Format.pp_print_string ppf "exited"

type t = {
  pid : int;
  name : string;
  page_table : Udma_mmu.Page_table.t;
  mutable state : state;
  mutable brk_vpn : int;
  mutable faults : int;
  mutable proxy_faults : int;
  mutable cpu_cycles : int;
}

let make ~pid ~name =
  {
    pid;
    name;
    page_table = Udma_mmu.Page_table.create ();
    state = Ready;
    brk_vpn = 1;
    faults = 0;
    proxy_faults = 0;
    cpu_cycles = 0;
  }

let pp ppf t =
  Format.fprintf ppf "proc(%d:%s,%a)" t.pid t.name pp_state t.state
