(** Process scheduling with the I1 context-switch hook.

    The paper's atomicity invariant (I1) is maintained by one action:
    every context switch stores a negative count to a valid proxy
    address, resetting any partially initiated UDMA sequence (§6,
    "the context-switch code does this with a single STORE
    instruction"). The UDMA device itself is stateless across switches;
    a transfer in flight continues. *)

val spawn : Machine.t -> name:string -> Proc.t
(** Create a process, append it to the ready queue. The first spawned
    process becomes current. *)

val current : Machine.t -> Proc.t option

val switch_to : Machine.t -> Proc.t -> unit
(** Full context switch: charges the switch cost, performs the I1
    Inval store on the UDMA engine, flushes the TLB, and makes [proc]
    current. Switching to the current process is a no-op. *)

val preempt : Machine.t -> unit
(** Round-robin: switch to the next ready process (no-op with fewer
    than two ready processes). *)

val set_preempt_hook : Machine.t -> (Machine.t -> bool) option -> unit
(** Install the failure-injection hook consulted before every user
    memory reference; returning [true] triggers {!preempt}. *)

val maybe_preempt : Machine.t -> unit
(** Consult the hook and preempt if it fires (called by the CPU layer). *)

val exit_proc : Machine.t -> Proc.t -> unit
(** Mark exited and drop from the ready queue. *)
