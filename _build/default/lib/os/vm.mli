(** The virtual-memory manager: demand paging plus the UDMA kernel
    contract (paper §6).

    Maintains the paper's invariants:

    - {b I2} (mapping consistency): a proxy mapping
      [PROXY(vpn) → PROXY(frame)] exists only while [vpn → frame] does;
      any change to a real mapping invalidates its proxy mapping.
    - {b I3} (content consistency): a proxy page is writable only if
      its real page is dirty; the first proxy write faults, the kernel
      marks the real page dirty and enables the write; cleaning a page
      write-protects its proxy page again.
    - {b I4} (register consistency): no frame named by the UDMA
      engine's registers (or queue) is ever replaced; the replacement
      scan checks the engine instead of pinning pages.

    Proxy mappings are created on demand by {!handle_fault}, which
    implements §6's three cases (in core / paged out / illegal). *)

exception Segfault of {
  pid : int;
  vaddr : int;
  access : Udma_mmu.Mmu.access;
  reason : string;
}

exception Out_of_memory

(** {1 Mapping} *)

val map_new_page :
  Machine.t -> Proc.t -> vpn:int -> ?writable:bool -> unit -> int
(** Allocate a zeroed frame (evicting if necessary) and map it at
    [vpn]. Returns the frame. The new page is {e clean}, so using it as
    a UDMA destination first takes the I3 upgrade fault. Raises
    [Invalid_argument] if [vpn] is already mapped or not a user-memory
    page. *)

val unmap_page : Machine.t -> Proc.t -> vpn:int -> unit
(** Remove the mapping (and, per I2, its proxy mapping), free the frame
    and any swap slot. Raises [Invalid_argument] if unmapped, [Failure]
    if the frame is pinned or I4-busy. *)

val map_device_proxy :
  Machine.t -> Proc.t -> vdev_index:int -> pdev_index:int -> writable:bool ->
  unit
(** Grant the process access to physical device-proxy page
    [pdev_index] at virtual device-proxy page [vdev_index] (§4: the
    system call that decides whether to grant the permission). *)

val frame_of_vpn : Machine.t -> Proc.t -> vpn:int -> int option
(** The frame currently backing [vpn], if resident. *)

(** {1 Paging} *)

val evict_one : Machine.t -> int
(** Run the clock algorithm, honouring pins and the I4 check, page out
    the victim, and return the freed frame — which now {e belongs to
    the caller} (it is not returned to the free list; map it or free it
    explicitly). If every transfer must first drain, waits for the
    engine. Raises {!Out_of_memory} when nothing can ever be freed. *)

val clean_page : Machine.t -> Proc.t -> vpn:int -> bool
(** Write a dirty page to backing store, clear its dirty bit and (I3)
    write-protect its proxy page. Returns [false] without cleaning when
    a DMA transfer to the page is in flight (the paper's race rule). *)

val page_in : Machine.t -> Proc.t -> vpn:int -> int
(** Bring a swapped-out page back; returns its (new) frame. *)

(** {1 Fault handling} *)

val handle_fault :
  Machine.t -> Proc.t -> Udma_mmu.Mmu.access -> vaddr:int -> unit
(** Resolve one MMU fault: demand page-in for user memory, the three §6
    cases for memory-proxy pages, the I3 write-upgrade for proxy
    protection faults. Raises {!Segfault} for illegal accesses. *)

(** {1 Traditional-DMA support} *)

val pin : Machine.t -> Proc.t -> vpn:int -> int
(** Make resident and pin; returns the frame. *)

val unpin : Machine.t -> frame:int -> unit

(** {1 Introspection} *)

val resident_pages : Machine.t -> Proc.t -> int
val proxy_mappings : Machine.t -> Proc.t -> int
