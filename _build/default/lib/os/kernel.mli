(** Kernel glue: the simulated user-level CPU and setup helpers.

    {!user_cpu} turns a process into the {!Udma.Initiator.cpu} the
    user-level library runs on: each reference consults the preemption
    hook (I1 failure injection), translates through the MMU, lets the
    VM resolve faults, charges the calibrated cycle cost (cached,
    TLB-miss or uncached), and routes the physical access over the
    bus — proxy references therefore land in the UDMA engine exactly as
    on real hardware. *)

val user_cpu : Machine.t -> Proc.t -> Udma.Initiator.cpu
(** CPU operations for [proc]. Issuing an operation when another
    process is current performs a real context switch first (with its
    I1 Inval), so tests interleave processes simply by interleaving
    calls. Raises {!Vm.Segfault} for illegal accesses and
    [Invalid_argument] for unaligned word access. *)

val alloc_buffer : Machine.t -> Proc.t -> bytes:int -> int
(** Allocate and map a page-aligned user buffer of at least [bytes]
    bytes; returns its virtual address. New pages are clean. *)

val write_user : Machine.t -> Proc.t -> vaddr:int -> bytes -> unit
(** Loader-style helper (no cycle cost): copy data into user memory
    through the page table, paging in as needed and setting dirty bits
    as a kernel write would. *)

val read_user : Machine.t -> Proc.t -> vaddr:int -> len:int -> bytes
(** Loader-style helper (no cycle cost): copy data out of user
    memory. *)

val touch_dirty : Machine.t -> Proc.t -> vaddr:int -> unit
(** Make the page dirty the honest way: one user-level store of the
    word already there (costs cycles, may fault). Used to pre-arm I3
    before using a page as a UDMA destination. *)

val vdev_addr : Machine.t -> index:int -> offset:int -> int
(** The virtual device-proxy address of byte [offset] in device-proxy
    page [index] (identical to the physical one; mappings decide
    access). *)
