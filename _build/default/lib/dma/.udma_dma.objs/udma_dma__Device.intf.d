lib/dma/device.mli:
