lib/dma/dma_engine.ml: Bus Device Format Option Udma_memory Udma_sim
