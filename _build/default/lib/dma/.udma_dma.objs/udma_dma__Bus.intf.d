lib/dma/bus.mli: Udma_memory
