lib/dma/dma_engine.mli: Bus Device Format Udma_sim
