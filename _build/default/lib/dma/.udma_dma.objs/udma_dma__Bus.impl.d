lib/dma/bus.ml: List Printf Udma_memory
