lib/dma/device.ml: Bytes Printf
