type timing = {
  single_word_cycles : int;
  burst_setup_cycles : int;
  burst_word_cycles : int;
}

let default_timing =
  { single_word_cycles = 100; burst_setup_cycles = 16; burst_word_cycles = 3 }

type io_handler = {
  io_load : paddr:int -> int32;
  io_store : paddr:int -> int32 -> unit;
}

type range = { base : int; size : int; handler : io_handler }

type t = {
  timing : timing;
  memory : Udma_memory.Phys_mem.t;
  mutable ranges : range list;
  mutable snoops : (paddr:int -> int32 -> unit) list;
}

let create ?(timing = default_timing) memory =
  { timing; memory; ranges = []; snoops = [] }

let add_snoop t f = t.snoops <- f :: t.snoops

let timing t = t.timing
let memory t = t.memory

let overlaps a_base a_size b_base b_size =
  a_base < b_base + b_size && b_base < a_base + a_size

let register_io t ~base ~size handler =
  if base < 0 || size <= 0 then invalid_arg "Bus.register_io: bad range";
  List.iter
    (fun r ->
      if overlaps base size r.base r.size then
        invalid_arg
          (Printf.sprintf "Bus.register_io: [%#x,+%d) overlaps [%#x,+%d)" base
             size r.base r.size))
    t.ranges;
  t.ranges <- { base; size; handler } :: t.ranges

let decode t paddr =
  if paddr >= 0 && paddr < Udma_memory.Phys_mem.size t.memory then `Mem
  else
    match
      List.find_opt
        (fun r -> paddr >= r.base && paddr < r.base + r.size)
        t.ranges
    with
    | Some r -> `Io r.handler
    | None -> `Unmapped

let load_word t paddr =
  match decode t paddr with
  | `Mem -> Udma_memory.Phys_mem.read_word t.memory paddr
  | `Io h -> h.io_load ~paddr
  | `Unmapped ->
      invalid_arg (Printf.sprintf "Bus.load_word: machine check at %#x" paddr)

let store_word t paddr v =
  match decode t paddr with
  | `Mem ->
      Udma_memory.Phys_mem.write_word t.memory paddr v;
      List.iter (fun f -> f ~paddr v) t.snoops
  | `Io h -> h.io_store ~paddr v
  | `Unmapped ->
      invalid_arg (Printf.sprintf "Bus.store_word: machine check at %#x" paddr)

let words_of_bytes nbytes = (nbytes + 3) / 4

let dma_burst_cycles t ~nbytes =
  if nbytes < 0 then invalid_arg "Bus.dma_burst_cycles: negative size";
  t.timing.burst_setup_cycles + (words_of_bytes nbytes * t.timing.burst_word_cycles)

let pio_cycles t ~nbytes =
  if nbytes < 0 then invalid_arg "Bus.pio_cycles: negative size";
  words_of_bytes nbytes * t.timing.single_word_cycles
