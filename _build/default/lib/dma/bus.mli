(** Physical-address bus: routes accesses to memory or I/O ranges.

    After MMU translation every access is physical. Real memory is
    serviced by {!Udma_memory.Phys_mem}; registered I/O ranges (the
    UDMA engine's proxy regions, memory-mapped FIFOs...) are serviced by
    their handlers. The bus also owns the transfer-timing parameters
    shared by DMA burst traffic and programmed I/O. *)

type timing = {
  single_word_cycles : int;
      (** one processor-generated uncached word transaction *)
  burst_setup_cycles : int;  (** arbitration + setup per DMA burst *)
  burst_word_cycles : int;   (** per 32-bit word within a burst *)
}

val default_timing : timing
(** 100 / 16 / 3 cycles — calibrated in DESIGN.md §5. *)

type io_handler = {
  io_load : paddr:int -> int32;
  io_store : paddr:int -> int32 -> unit;
}

type t

val create : ?timing:timing -> Udma_memory.Phys_mem.t -> t

val timing : t -> timing
val memory : t -> Udma_memory.Phys_mem.t

val register_io : t -> base:int -> size:int -> io_handler -> unit
(** [register_io t ~base ~size h] claims [base .. base+size). Raises
    [Invalid_argument] on overlap with an existing range. *)

val decode : t -> int -> [ `Mem | `Io of io_handler | `Unmapped ]
(** What services physical address [paddr]. Memory addresses are those
    within the physical memory array. *)

val load_word : t -> int -> int32
(** Routed 32-bit load. Raises [Invalid_argument] on unmapped
    addresses (a machine check). *)

val store_word : t -> int -> int32 -> unit

val add_snoop : t -> (paddr:int -> int32 -> unit) -> unit
(** [add_snoop t f] registers a bus snooper: [f] observes every word
    store that is routed to real memory (I/O stores are not snooped).
    SHRIMP's automatic-update hardware watches the write-through
    memory bus this way. *)

val dma_burst_cycles : t -> nbytes:int -> int
(** Bus occupancy of a DMA burst moving [nbytes]
    (setup + words × per-word). *)

val pio_cycles : t -> nbytes:int -> int
(** Bus occupancy of moving [nbytes] by processor-generated single-word
    transactions (the memory-mapped-FIFO baseline, paper §9). *)
