type port = {
  name : string;
  dev_write : addr:int -> bytes -> unit;
  dev_read : addr:int -> len:int -> bytes;
  access_cycles : addr:int -> len:int -> int;
  writable : addr:int -> bool;
  readable : addr:int -> bool;
}

let null name =
  {
    name;
    dev_write = (fun ~addr:_ _ -> ());
    dev_read = (fun ~addr:_ ~len -> Bytes.make len '\000');
    access_cycles = (fun ~addr:_ ~len:_ -> 0);
    writable = (fun ~addr:_ -> true);
    readable = (fun ~addr:_ -> true);
  }

let buffer name ~size =
  if size <= 0 then invalid_arg "Device.buffer: size must be positive";
  let store = Bytes.make size '\000' in
  let check addr len what =
    if addr < 0 || len < 0 || addr + len > size then
      invalid_arg
        (Printf.sprintf "Device.buffer(%s).%s: [%#x,+%d) out of range" name
           what addr len)
  in
  let port =
    {
      name;
      dev_write =
        (fun ~addr b ->
          check addr (Bytes.length b) "dev_write";
          Bytes.blit b 0 store addr (Bytes.length b));
      dev_read =
        (fun ~addr ~len ->
          check addr len "dev_read";
          Bytes.sub store addr len);
      access_cycles = (fun ~addr:_ ~len:_ -> 0);
      writable = (fun ~addr -> addr >= 0 && addr < size);
      readable = (fun ~addr -> addr >= 0 && addr < size);
    }
  in
  (port, store)
