(** The device side of a DMA transfer.

    A [port] is what the DMA engine talks to: a sink for
    memory-to-device transfers and a source for device-to-memory
    transfers, addressed by a device-internal address whose meaning is
    device-specific (paper §4: a pixel, a network destination, a disk
    block...). [access_cycles] lets a device add its own latency
    (e.g. disk seek) to a transfer. *)

type port = {
  name : string;
  dev_write : addr:int -> bytes -> unit;
      (** Accept [bytes] at device address [addr] (memory → device). *)
  dev_read : addr:int -> len:int -> bytes;
      (** Produce [len] bytes from device address [addr]
          (device → memory). *)
  access_cycles : addr:int -> len:int -> int;
      (** Extra device-side cycles for a transfer touching
          [addr .. addr+len). *)
  writable : addr:int -> bool;
      (** Whether [addr] may be a transfer destination. *)
  readable : addr:int -> bool;
      (** Whether [addr] may be a transfer source. *)
}

val null : string -> port
(** A port that accepts and produces zeros at zero cost — useful in
    tests and as a bandwidth sink. *)

val buffer : string -> size:int -> port * bytes
(** [buffer name ~size] is a port backed by a byte buffer (returned so
    tests can inspect it), zero extra cost, fully accessible. Reads and
    writes out of range raise [Invalid_argument]. *)
