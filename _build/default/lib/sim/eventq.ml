type 'a entry = { time : int; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let initial_capacity = 64

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

(* Entry ordering: earlier time first; FIFO among equal times. *)
let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let ensure_capacity q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let dummy = q.heap.(0) in
    let new_cap = if cap = 0 then initial_capacity else cap * 2 in
    let heap = Array.make new_cap dummy in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let sift_up q i =
  let rec loop i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before q.heap.(i) q.heap.(parent) then begin
        let tmp = q.heap.(i) in
        q.heap.(i) <- q.heap.(parent);
        q.heap.(parent) <- tmp;
        loop parent
      end
    end
  in
  loop i

let sift_down q i =
  let rec loop i =
    let left = (2 * i) + 1 and right = (2 * i) + 2 in
    let smallest = ref i in
    if left < q.size && before q.heap.(left) q.heap.(!smallest) then
      smallest := left;
    if right < q.size && before q.heap.(right) q.heap.(!smallest) then
      smallest := right;
    if !smallest <> i then begin
      let tmp = q.heap.(i) in
      q.heap.(i) <- q.heap.(!smallest);
      q.heap.(!smallest) <- tmp;
      loop !smallest
    end
  in
  loop i

let push q ~time payload =
  if time < 0 then invalid_arg "Eventq.push: negative time";
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if q.size = 0 && Array.length q.heap = 0 then
    q.heap <- Array.make initial_capacity entry
  else ensure_capacity q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  sift_up q (q.size - 1)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q 0
    end;
    Some (top.time, top.payload)
  end

let clear q = q.size <- 0
