(** Priority queue of timestamped events.

    A binary min-heap keyed by (time, sequence number). The sequence
    number guarantees that two events scheduled for the same cycle fire
    in insertion order, which keeps every simulation run deterministic. *)

type 'a t
(** Mutable event queue holding payloads of type ['a]. *)

val create : unit -> 'a t
(** [create ()] is a fresh empty queue. *)

val is_empty : 'a t -> bool
(** [is_empty q] is [true] iff no event is pending. *)

val length : 'a t -> int
(** [length q] is the number of pending events. *)

val push : 'a t -> time:int -> 'a -> unit
(** [push q ~time payload] schedules [payload] at cycle [time].
    Raises [Invalid_argument] if [time < 0]. *)

val peek_time : 'a t -> int option
(** [peek_time q] is the firing time of the earliest event, if any. *)

val pop : 'a t -> (int * 'a) option
(** [pop q] removes and returns the earliest event as [(time, payload)].
    Ties fire in insertion order. *)

val clear : 'a t -> unit
(** [clear q] discards all pending events. *)
