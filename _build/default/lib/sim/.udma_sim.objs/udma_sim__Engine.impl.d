lib/sim/engine.ml: Eventq Option
