lib/sim/rng.mli:
