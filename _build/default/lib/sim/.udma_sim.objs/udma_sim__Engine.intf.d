lib/sim/engine.mli:
