lib/sim/eventq.mli:
