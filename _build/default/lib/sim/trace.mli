(** Lightweight event tracing.

    A trace is a bounded ring of timestamped strings; tests assert on
    it and the CLI can dump it. Disabled traces cost one branch. *)

type t

val create : ?capacity:int -> enabled:bool -> unit -> t
(** [create ~enabled ()] keeps the last [capacity] (default 4096)
    records when [enabled]; otherwise records nothing. *)

val enabled : t -> bool

val record : t -> time:int -> string -> unit
(** [record t ~time msg] appends a record (no-op when disabled). *)

val recordf :
  t -> time:int -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted variant; the format arguments are not evaluated when the
    trace is disabled. *)

val events : t -> (int * string) list
(** Recorded events, oldest first (at most [capacity]). *)

val matching : t -> string -> (int * string) list
(** [matching t sub] keeps events whose text contains [sub]. *)

val clear : t -> unit
