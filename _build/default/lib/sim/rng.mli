(** Deterministic pseudo-random numbers for workload generation.

    A small splittable xorshift generator so that every experiment is
    reproducible from a seed and independent streams can be derived for
    independent traffic sources. *)

type t

val create : int -> t
(** [create seed] is a generator; equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and perturbs [t]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises [Invalid_argument]
    if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly chosen element.
    Raises [Invalid_argument] on an empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
