lib/workloads/runner.mli:
