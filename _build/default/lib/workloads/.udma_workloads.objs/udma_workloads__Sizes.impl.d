lib/workloads/sizes.ml: List Printf
