lib/workloads/runner.ml: Array Bytes Char Float Format Int32 List Option Printf Sizes String Udma Udma_devices Udma_dma Udma_mmu Udma_os Udma_shrimp Udma_sim
