lib/workloads/sizes.mli:
