let pow2 ~lo ~hi =
  if lo <= 0 || hi < lo then invalid_arg "Sizes.pow2";
  let rec go s acc = if s > hi then List.rev acc else go (s * 2) (s :: acc) in
  go lo []

let figure8 =
  [ 64; 128; 256; 384; 512; 768; 1024; 1536; 2048; 3072; 4096;
    4608; 5120; 6144; 7168; 8192; 10240; 12288; 16384 ]

let hippi_blocks = pow2 ~lo:256 ~hi:262144

let crossover = [ 16; 32; 64; 128; 256; 512; 1024; 2048; 4096; 8192 ]

let pretty n =
  if n >= 1048576 && n mod 1048576 = 0 then Printf.sprintf "%dM" (n / 1048576)
  else if n >= 1024 && n mod 1024 = 0 then Printf.sprintf "%dK" (n / 1024)
  else string_of_int n
