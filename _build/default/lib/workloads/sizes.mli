(** Message-size sweeps used across experiments. *)

val figure8 : int list
(** The Figure 8 x-axis: 64 B to 16 KB, denser below one page. *)

val hippi_blocks : int list
(** 256 B to 256 KB block sizes for the §1 HIPPI motivation. *)

val crossover : int list
(** 16 B to 8 KB for the PIO/UDMA comparison. *)

val pow2 : lo:int -> hi:int -> int list
(** Powers of two from [lo] to [hi] inclusive. *)

val pretty : int -> string
(** [pretty 4096] is ["4K"]. *)
