lib/core/udma_engine.mli: State_machine Status Udma_dma Udma_mmu Udma_sim
