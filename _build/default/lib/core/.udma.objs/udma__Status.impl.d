lib/core/status.ml: Format Int32
