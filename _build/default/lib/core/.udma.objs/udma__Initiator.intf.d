lib/core/initiator.mli: Format Status Udma_mmu
