lib/core/initiator.ml: Format Int32 List Result Status Udma_mmu
