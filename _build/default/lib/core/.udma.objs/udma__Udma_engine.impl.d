lib/core/udma_engine.ml: Hashtbl Int32 List Option Printf Queue State_machine Status Udma_dma Udma_mmu Udma_sim
