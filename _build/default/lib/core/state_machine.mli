(** The UDMA hardware state machine (paper §5, Figure 5).

    Pure transition function over the three states — [Idle],
    [Dest_loaded], [Transferring] — and the events [Store], [Load]
    (with [Inval] being a store of a non-positive count and [BadLoad]
    a load from the same proxy space as the latched destination), plus
    the internal [Done] event from the DMA engine. Events with no
    depicted transition leave the state unchanged (paper: "if no
    transition is depicted ... that event does not cause a state
    transition").

    The function is pure so it can be tested exhaustively; the engine
    in {!Udma_engine} interprets the returned action against the real
    DMA hardware. *)

type space = Mem_space | Dev_space

val pp_space : Format.formatter -> space -> unit

type dest = { dest_proxy : int; dest_space : space; nbytes : int }
(** Latched DESTINATION register + COUNT. [dest_proxy] is a physical
    proxy address. *)

type state =
  | Idle
  | Dest_loaded of dest
  | Transferring of { src_proxy : int; src_space : space; dest : dest }

val pp_state : Format.formatter -> state -> unit

type event =
  | Store of { proxy : int; space : space; value : int }
      (** a STORE of [value] to physical proxy address [proxy];
          [value <= 0] is an [Inval] *)
  | Load of { proxy : int; space : space }
  | Done  (** the DMA engine finished the transfer *)

val pp_event : Format.formatter -> event -> unit

type action =
  | No_action        (** event ignored in this state *)
  | Latch_dest       (** DESTINATION/COUNT written *)
  | Invalidated      (** Inval consumed, machine reset to Idle *)
  | Start of { src_proxy : int; src_space : space; dest : dest }
      (** the Load completed an initiation pair: start the DMA *)
  | Bad_load         (** load from the same space as the destination *)
  | Status_probe     (** load answered with status only *)
  | Completed        (** Done consumed *)

val pp_action : Format.formatter -> action -> unit

val step : state -> event -> state * action
(** One transition. Total over all [state * event] pairs. *)
