(** The status word returned by every proxy LOAD (paper §5).

    The paper specifies seven fields; we add one extension bit
    ([queue_full]) for the §7 queueing design. The word is encoded into
    the 32-bit value the LOAD instruction returns, so user code sees
    exactly what the hardware would deliver. *)

type t = {
  started : bool;
      (** This access caused DestLoaded→Transferring (or, with
          queueing, was accepted). Encoded as the paper's INITIATION
          FLAG, which is {e zero} on success. *)
  transferring : bool;  (** device is in the Transferring state *)
  invalid : bool;       (** device is in the Idle state *)
  matches : bool;
      (** Transferring, and the referenced address equals the base
          address of a transfer in progress (with queueing: of any
          outstanding request). *)
  wrong_space : bool;   (** the access was a BadLoad *)
  queue_full : bool;    (** queued mode: request refused, queue full *)
  device_error : int;   (** device-specific error bits (0 = none) *)
  remaining_bytes : int;
      (** bytes remaining in DestLoaded/Transferring; 0 otherwise *)
}

val idle : t
(** The word returned by a probe of an idle engine: initiation flag
    set, invalid set, everything else clear. *)

val make :
  ?started:bool ->
  ?transferring:bool ->
  ?invalid:bool ->
  ?matches:bool ->
  ?wrong_space:bool ->
  ?queue_full:bool ->
  ?device_error:int ->
  ?remaining_bytes:int ->
  unit ->
  t

val encode : t -> int32
(** Bit layout: bit 0 = INITIATION FLAG (1 = {e not} started), 1 =
    TRANSFERRING, 2 = INVALID, 3 = MATCH, 4 = WRONG-SPACE, 5 =
    QUEUE-FULL, 6–9 = DEVICE-SPECIFIC ERRORS, 10–30 = REMAINING-BYTES
    (saturating). *)

val decode : int32 -> t

val ok : t -> bool
(** [ok s] is [true] when the access successfully initiated (accepted)
    a transfer and reported no device error. *)

val hard_error : t -> bool
(** [true] when a real error occurred — wrong space or device error —
    as opposed to a busy/idle condition worth retrying (paper §5). *)

val pp : Format.formatter -> t -> unit

val equal : t -> t -> bool

val max_remaining : int
(** Largest representable REMAINING-BYTES value. *)
