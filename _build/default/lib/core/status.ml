type t = {
  started : bool;
  transferring : bool;
  invalid : bool;
  matches : bool;
  wrong_space : bool;
  queue_full : bool;
  device_error : int;
  remaining_bytes : int;
}

let make ?(started = false) ?(transferring = false) ?(invalid = false)
    ?(matches = false) ?(wrong_space = false) ?(queue_full = false)
    ?(device_error = 0) ?(remaining_bytes = 0) () =
  if device_error < 0 || device_error > 0xf then
    invalid_arg "Status.make: device_error must fit 4 bits";
  if remaining_bytes < 0 then
    invalid_arg "Status.make: negative remaining_bytes";
  {
    started;
    transferring;
    invalid;
    matches;
    wrong_space;
    queue_full;
    device_error;
    remaining_bytes;
  }

let idle = make ~invalid:true ()

let max_remaining = (1 lsl 21) - 1

let bit b pos = if b then Int32.shift_left 1l pos else 0l

let encode t =
  let remaining = min t.remaining_bytes max_remaining in
  let open Int32 in
  logor (bit (not t.started) 0)
  @@ logor (bit t.transferring 1)
  @@ logor (bit t.invalid 2)
  @@ logor (bit t.matches 3)
  @@ logor (bit t.wrong_space 4)
  @@ logor (bit t.queue_full 5)
  @@ logor (shift_left (of_int (t.device_error land 0xf)) 6)
       (shift_left (of_int remaining) 10)

let decode w =
  let geti shift mask = Int32.to_int (Int32.shift_right_logical w shift) land mask in
  let getb pos = geti pos 1 = 1 in
  {
    started = not (getb 0);
    transferring = getb 1;
    invalid = getb 2;
    matches = getb 3;
    wrong_space = getb 4;
    queue_full = getb 5;
    device_error = geti 6 0xf;
    remaining_bytes = geti 10 0x1fffff;
  }

let ok t = t.started && t.device_error = 0 && not t.wrong_space

let hard_error t = t.wrong_space || t.device_error <> 0

let pp ppf t =
  Format.fprintf ppf "{%s%s%s%s%s%s err=%d rem=%d}"
    (if t.started then "S" else "-")
    (if t.transferring then "T" else "-")
    (if t.invalid then "I" else "-")
    (if t.matches then "M" else "-")
    (if t.wrong_space then "W" else "-")
    (if t.queue_full then "Q" else "-")
    t.device_error t.remaining_bytes

let equal a b = a = b
