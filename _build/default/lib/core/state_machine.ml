type space = Mem_space | Dev_space

let pp_space ppf = function
  | Mem_space -> Format.pp_print_string ppf "mem"
  | Dev_space -> Format.pp_print_string ppf "dev"

type dest = { dest_proxy : int; dest_space : space; nbytes : int }

type state =
  | Idle
  | Dest_loaded of dest
  | Transferring of { src_proxy : int; src_space : space; dest : dest }

let pp_state ppf = function
  | Idle -> Format.pp_print_string ppf "Idle"
  | Dest_loaded d ->
      Format.fprintf ppf "DestLoaded(%a:%#x,%d)" pp_space d.dest_space
        d.dest_proxy d.nbytes
  | Transferring { src_proxy; src_space; dest } ->
      Format.fprintf ppf "Transferring(%a:%#x -> %a:%#x,%d)" pp_space src_space
        src_proxy pp_space dest.dest_space dest.dest_proxy dest.nbytes

type event =
  | Store of { proxy : int; space : space; value : int }
  | Load of { proxy : int; space : space }
  | Done

let pp_event ppf = function
  | Store { proxy; space; value } ->
      Format.fprintf ppf "Store(%a:%#x,%d)" pp_space space proxy value
  | Load { proxy; space } -> Format.fprintf ppf "Load(%a:%#x)" pp_space space proxy
  | Done -> Format.pp_print_string ppf "Done"

type action =
  | No_action
  | Latch_dest
  | Invalidated
  | Start of { src_proxy : int; src_space : space; dest : dest }
  | Bad_load
  | Status_probe
  | Completed

let pp_action ppf = function
  | No_action -> Format.pp_print_string ppf "no-action"
  | Latch_dest -> Format.pp_print_string ppf "latch-dest"
  | Invalidated -> Format.pp_print_string ppf "invalidated"
  | Start { src_proxy; src_space; dest } ->
      Format.fprintf ppf "start(%a:%#x -> %a:%#x,%d)" pp_space src_space
        src_proxy pp_space dest.dest_space dest.dest_proxy dest.nbytes
  | Bad_load -> Format.pp_print_string ppf "bad-load"
  | Status_probe -> Format.pp_print_string ppf "status-probe"
  | Completed -> Format.pp_print_string ppf "completed"

let step state event =
  match (state, event) with
  (* --- Store events: positive value latches, non-positive is Inval --- *)
  | Idle, Store { proxy; space; value } when value > 0 ->
      (Dest_loaded { dest_proxy = proxy; dest_space = space; nbytes = value },
       Latch_dest)
  | Idle, Store _ -> (Idle, Invalidated)
  | Dest_loaded _, Store { proxy; space; value } when value > 0 ->
      (* A Store in DestLoaded overwrites DESTINATION and COUNT (§5). *)
      (Dest_loaded { dest_proxy = proxy; dest_space = space; nbytes = value },
       Latch_dest)
  | Dest_loaded _, Store _ -> (Idle, Invalidated)
  | (Transferring _ as s), Store _ ->
      (* No transition depicted: a started transfer is never disturbed. *)
      (s, No_action)
  (* --- Load events --- *)
  | Idle, Load _ -> (Idle, Status_probe)
  | Dest_loaded dest, Load { proxy; space } ->
      if space = dest.dest_space then
        (* BadLoad: memory-to-memory or device-to-device request. *)
        (Idle, Bad_load)
      else
        (Transferring { src_proxy = proxy; src_space = space; dest },
         Start { src_proxy = proxy; src_space = space; dest })
  | (Transferring _ as s), Load _ -> (s, Status_probe)
  (* --- Done from the DMA engine --- *)
  | Transferring _, Done -> (Idle, Completed)
  | (Idle as s), Done | (Dest_loaded _ as s), Done -> (s, No_action)
