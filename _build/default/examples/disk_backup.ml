(* Streaming a memory region to disk with user-level DMA.

   The paper stresses that UDMA "can be used with a wide variety of
   I/O devices including ... data storage devices such as disks and
   tape drives" (§1), with device-proxy addresses naming blocks (§4).
   This example backs up a 64 KB region to the disk device twice: once
   page by page on the basic hardware, once pipelined through the §7
   queueing hardware with a gather of out-of-order blocks — and
   verifies the bytes on the platters.

   Run with: dune exec examples/disk_backup.exe *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module Disk = Udma_devices.Disk
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model

let total = 65536

let machine_with_disk ~mode =
  let config =
    { M.default_config with M.udma_mode = Some mode; dev_pages = 64 }
  in
  let m = M.create ~config () in
  let udma = Option.get m.M.udma in
  let disk = Disk.create () in
  let pages = min 64 (Disk.pages disk ~page_size:(Layout.page_size m.M.layout)) in
  Udma_engine.attach_device udma ~base_page:0 ~pages ~port:(Disk.port disk) ();
  (m, disk)

let prepare m proc =
  let pages = total / Layout.page_size m.M.layout in
  for i = 0 to pages - 1 do
    match
      Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i ~writable:true
    with
    | Ok () -> ()
    | Error e -> failwith (Format.asprintf "grant: %a" Syscall.pp_error e)
  done;
  let buf = Kernel.alloc_buffer m proc ~bytes:total in
  Kernel.write_user m proc ~vaddr:buf
    (Bytes.init total (fun i -> Char.chr ((i * 7) land 0xff)));
  buf

let verify disk =
  let ok = ref true in
  for b = 0 to (total / 4096) - 1 do
    let data = Disk.read_block disk b in
    for i = 0 to 4095 do
      let expect = Char.chr ((((b * 4096) + i) * 7) land 0xff) in
      if Bytes.get data i <> expect then ok := false
    done
  done;
  !ok

let () =
  (* -- basic hardware: one page at a time --------------------------- *)
  let m, disk = machine_with_disk ~mode:Udma_engine.Basic in
  let proc = Scheduler.spawn m ~name:"backup" in
  let buf = prepare m proc in
  let cpu = Kernel.user_cpu m proc in
  let stats =
    match
      Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
        ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
        ~nbytes:total ()
    with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Initiator.pp_error e)
  in
  Engine.run_until_idle m.M.engine;
  Printf.printf
    "basic:  %d KB in %d pieces, %d cycles (%.0f us), disk seeks: %d, data %s\n"
    (total / 1024) stats.Initiator.pieces stats.Initiator.cycles
    (Cost_model.us_of_cycles m.M.costs stats.Initiator.cycles)
    (Disk.seeks disk)
    (if verify disk then "verified" else "CORRUPT");

  (* -- queued hardware: pipelined, plus an out-of-order gather ------ *)
  let m, disk = machine_with_disk ~mode:(Udma_engine.Queued { depth = 8 }) in
  let proc = Scheduler.spawn m ~name:"backup" in
  let buf = prepare m proc in
  let cpu = Kernel.user_cpu m proc in
  let stats =
    match
      Initiator.transfer_queued cpu ~layout:m.M.layout
        ~src:(Initiator.Memory buf)
        ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
        ~nbytes:total ()
    with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Initiator.pp_error e)
  in
  Engine.run_until_idle m.M.engine;
  Printf.printf "queued: %d KB in %d pieces, %d cycles (%.0f us), data %s\n"
    (total / 1024) stats.Initiator.pieces stats.Initiator.cycles
    (Cost_model.us_of_cycles m.M.costs stats.Initiator.cycles)
    (if verify disk then "verified" else "CORRUPT");

  (* gather: write the blocks back in reverse order in one call *)
  let page = Layout.page_size m.M.layout in
  let pieces =
    List.init (total / page) (fun i ->
        let j = (total / page) - 1 - i in
        ( Initiator.Memory (buf + (j * page)),
          Initiator.Device (Kernel.vdev_addr m ~index:j ~offset:0),
          page ))
  in
  let stats =
    match Initiator.transfer_gather cpu ~layout:m.M.layout ~pieces () with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Initiator.pp_error e)
  in
  Engine.run_until_idle m.M.engine;
  Printf.printf
    "gather: %d reverse-order blocks in %d cycles (%.0f us), disk seeks: %d, \
     data %s\n"
    (total / page) stats.Initiator.cycles
    (Cost_model.us_of_cycles m.M.costs stats.Initiator.cycles)
    (Disk.seeks disk)
    (if verify disk then "verified" else "CORRUPT");
  print_endline "disk_backup: OK"
