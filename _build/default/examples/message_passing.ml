(* Message passing on a 4-node SHRIMP multicomputer.

   Demonstrates the paper's headline use: "a user process sends a
   packet to another machine with a simple UDMA transfer of the data
   from memory to the network interface" (§8). Sets up deliberate-
   update channels, runs a ping-pong latency measurement and a ring of
   messages around all four nodes.

   Run with: dune exec examples/message_passing.exe *)

module Engine = Udma_sim.Engine
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model
module System = Udma_shrimp.System
module Messaging = Udma_shrimp.Messaging

let ok_send = function
  | Ok seq -> seq
  | Error e -> failwith (Format.asprintf "%a" Messaging.pp_send_error e)

let ok_recv = function Ok polls -> polls | Error msg -> failwith msg

let () =
  let sys = System.create ~nodes:4 () in
  let procs =
    Array.init 4 (fun i ->
        Scheduler.spawn (System.node sys i).System.machine
          ~name:(Printf.sprintf "rank%d" i))
  in
  let cpus =
    Array.init 4 (fun i ->
        Kernel.user_cpu (System.node sys i).System.machine procs.(i))
  in
  let costs = (System.node sys 0).System.machine.M.costs in

  (* -- ping-pong between nodes 0 and 1 ------------------------------ *)
  let ch01 =
    Messaging.connect sys ~sender:(0, procs.(0)) ~receiver:(1, procs.(1))
      ~first_index:0 ~pages:1 ()
  in
  let ch10 =
    Messaging.connect sys ~sender:(1, procs.(1)) ~receiver:(0, procs.(0))
      ~first_index:1 ~pages:1 ()
  in
  let buf0 =
    Kernel.alloc_buffer (System.node sys 0).System.machine procs.(0) ~bytes:4096
  in
  let buf1 =
    Kernel.alloc_buffer (System.node sys 1).System.machine procs.(1) ~bytes:4096
  in
  Kernel.write_user (System.node sys 0).System.machine procs.(0) ~vaddr:buf0
    (Bytes.make 256 'p');
  Kernel.write_user (System.node sys 1).System.machine procs.(1) ~vaddr:buf1
    (Bytes.make 256 'q');
  (* warm the mappings *)
  let seq = ok_send (Messaging.send ch01 cpus.(0) ~src_vaddr:buf0 ~nbytes:256 ()) in
  ignore (ok_recv (Messaging.recv_wait ch01 cpus.(1) ~seq ()));
  let seq = ok_send (Messaging.send ch10 cpus.(1) ~src_vaddr:buf1 ~nbytes:256 ()) in
  ignore (ok_recv (Messaging.recv_wait ch10 cpus.(0) ~seq ()));
  System.run_until_idle sys;

  let rounds = 20 in
  let t0 = Engine.now (System.engine sys) in
  for _ = 1 to rounds do
    let seq = ok_send (Messaging.send ch01 cpus.(0) ~src_vaddr:buf0 ~nbytes:256 ()) in
    ignore (ok_recv (Messaging.recv_wait ch01 cpus.(1) ~seq ()));
    let seq = ok_send (Messaging.send ch10 cpus.(1) ~src_vaddr:buf1 ~nbytes:256 ()) in
    ignore (ok_recv (Messaging.recv_wait ch10 cpus.(0) ~seq ()))
  done;
  let rtt = (Engine.now (System.engine sys) - t0) / rounds in
  Printf.printf "ping-pong (256 B): %d cycles RTT = %.1f us\n" rtt
    (Cost_model.us_of_cycles costs rtt);

  (* -- a ring of messages around all four nodes --------------------- *)
  let ring =
    Array.init 4 (fun i ->
        let next = (i + 1) mod 4 in
        Messaging.connect sys ~sender:(i, procs.(i))
          ~receiver:(next, procs.(next)) ~first_index:4 ~pages:1 ())
  in
  let bufs =
    Array.init 4 (fun i ->
        let m = (System.node sys i).System.machine in
        let b = Kernel.alloc_buffer m procs.(i) ~bytes:4096 in
        Kernel.write_user m procs.(i) ~vaddr:b
          (Bytes.make 512 (Char.chr (Char.code 'A' + i)));
        b)
  in
  let t0 = Engine.now (System.engine sys) in
  (* pass a token 0 -> 1 -> 2 -> 3 -> 0, [laps] times; each node
     forwards as soon as its predecessor's message lands *)
  let laps = 5 in
  for lap = 1 to laps do
    for i = 0 to 3 do
      let next = (i + 1) mod 4 in
      ignore
        (ok_send
           (Messaging.send ring.(i) cpus.(i) ~src_vaddr:bufs.(i) ~nbytes:512 ()));
      ignore (ok_recv (Messaging.recv_wait ring.(i) cpus.(next) ~seq:lap ()))
    done
  done;
  let cycles = Engine.now (System.engine sys) - t0 in
  Printf.printf "ring: %d hops of 512 B in %d cycles (%.1f us/hop)\n"
    (4 * laps) cycles
    (Cost_model.us_of_cycles costs (cycles / (4 * laps)));
  System.run_until_idle sys;
  let ni1 = (System.node sys 1).System.ni in
  Printf.printf "node 1 NI: %d packets received, %d bytes\n"
    (Udma_shrimp.Network_interface.packets_received ni1)
    (Udma_shrimp.Network_interface.bytes_received ni1);
  print_endline "message_passing: OK"
