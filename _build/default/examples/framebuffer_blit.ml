(* Blitting scanlines into a graphics frame buffer.

   §4 of the paper: "if the device is a graphics frame-buffer, a
   device address might specify a pixel". A user process renders a
   gradient into its own memory and blits it to the frame buffer with
   UDMA, then repeats the job with programmed I/O (one uncached store
   per pixel) to show why the paper bothers: for bulk pixel data the
   DMA path is more than an order of magnitude cheaper.

   Run with: dune exec examples/framebuffer_blit.exe *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module Frame_buffer = Udma_devices.Frame_buffer
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model

let width = 256
let height = 64

let gradient_row y =
  Bytes.init (width * 4) (fun i ->
      let x = i / 4 in
      match i land 3 with
      | 0 -> Char.chr (x land 0xff)          (* r *)
      | 1 -> Char.chr (y * 4 land 0xff)      (* g *)
      | 2 -> Char.chr ((x + y) land 0xff)    (* b *)
      | _ -> Char.chr 0xff)                  (* a *)

let () =
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let fb = Frame_buffer.create ~width ~height in
  let page_size = Layout.page_size m.M.layout in
  let fb_pages = Frame_buffer.pages fb ~page_size in
  Udma_engine.attach_device udma ~base_page:0 ~pages:fb_pages
    ~port:(Frame_buffer.port fb) ();

  let proc = Scheduler.spawn m ~name:"render" in
  for i = 0 to fb_pages - 1 do
    match
      Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i ~writable:true
    with
    | Ok () -> ()
    | Error e -> failwith (Format.asprintf "grant: %a" Syscall.pp_error e)
  done;

  (* render into user memory *)
  let frame_bytes = width * height * 4 in
  let buf = Kernel.alloc_buffer m proc ~bytes:frame_bytes in
  for y = 0 to height - 1 do
    Kernel.write_user m proc ~vaddr:(buf + (y * width * 4)) (gradient_row y)
  done;

  (* -- UDMA blit of the whole frame --------------------------------- *)
  let cpu = Kernel.user_cpu m proc in
  let stats =
    match
      Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
        ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
        ~nbytes:frame_bytes ()
    with
    | Ok s -> s
    | Error e -> failwith (Format.asprintf "%a" Initiator.pp_error e)
  in
  Engine.run_until_idle m.M.engine;
  let udma_cycles = stats.Initiator.cycles in
  Printf.printf "UDMA blit: %dx%d (%d KB) in %d cycles (%.0f us), %d pieces\n"
    width height (frame_bytes / 1024) udma_cycles
    (Cost_model.us_of_cycles m.M.costs udma_cycles)
    stats.Initiator.pieces;

  (* verify a few pixels *)
  assert (Frame_buffer.get_pixel fb ~x:0 ~y:0 = Bytes.get_int32_le (gradient_row 0) 0);
  assert (
    Frame_buffer.get_pixel fb ~x:(width - 1) ~y:(height - 1)
    = Bytes.get_int32_le (gradient_row (height - 1)) ((width - 1) * 4));

  (* -- the same frame by programmed I/O: what UDMA replaces ---------- *)
  (* modelled: one uncached store per pixel *)
  let pio_cycles = width * height * m.M.costs.Cost_model.uncached_ref in
  Printf.printf
    "PIO blit (modelled, 1 uncached store/pixel): %d cycles (%.0f us)\n"
    pio_cycles
    (Cost_model.us_of_cycles m.M.costs pio_cycles);
  Printf.printf "UDMA speedup over PIO: %.1fx\n"
    (float_of_int pio_cycles /. float_of_int udma_cycles);
  Printf.printf "frame checksum: %d\n" (Frame_buffer.checksum fb);
  print_endline "framebuffer_blit: OK"
