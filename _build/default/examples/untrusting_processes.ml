(* Untrusting processes sharing one UDMA device.

   The paper's §3 protection claim: "A UDMA device can be used
   concurrently by an arbitrary number of untrusting processes without
   compromising protection." Here three processes share the device:

   - alice may write device pages 0-1,
   - bob   may write device pages 2-3,
   - mallory has no grant at all and tries everything anyway.

   Every attack mallory mounts dies at the MMU with a segmentation
   fault before it can reach the hardware, while alice's and bob's
   transfers — including ones interleaved mid-sequence — proceed
   unharmed thanks to invariant I1.

   Run with: dune exec examples/untrusting_processes.exe *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Device = Udma_dma.Device
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module M = Udma_os.Machine
module Vm = Udma_os.Vm
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel

let attack name f =
  match f () with
  | exception Vm.Segfault _ -> Printf.printf "  %-46s -> segfault (blocked)\n" name
  | exception e ->
      Printf.printf "  %-46s -> %s\n" name (Printexc.to_string e)
  | _ -> Printf.printf "  %-46s -> NOT BLOCKED (protection bug!)\n" name

let () =
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let port, store = Device.buffer "shared-device" ~size:(16 * 4096) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:16 ~port ();

  let alice = Scheduler.spawn m ~name:"alice" in
  let bob = Scheduler.spawn m ~name:"bob" in
  let mallory = Scheduler.spawn m ~name:"mallory" in

  List.iter
    (fun i -> ignore (Syscall.map_device_proxy m alice ~vdev_index:i ~pdev_index:i ~writable:true))
    [ 0; 1 ];
  List.iter
    (fun i -> ignore (Syscall.map_device_proxy m bob ~vdev_index:i ~pdev_index:i ~writable:true))
    [ 2; 3 ];
  print_endline "kernel: alice granted device pages 0-1, bob 2-3, mallory none";

  let a_buf = Kernel.alloc_buffer m alice ~bytes:4096 in
  Kernel.write_user m alice ~vaddr:a_buf (Bytes.make 64 'A');
  let b_buf = Kernel.alloc_buffer m bob ~bytes:4096 in
  Kernel.write_user m bob ~vaddr:b_buf (Bytes.make 64 'B');
  let m_buf = Kernel.alloc_buffer m mallory ~bytes:4096 in
  Kernel.write_user m mallory ~vaddr:m_buf (Bytes.make 64 'M');

  let a_cpu = Kernel.user_cpu m alice in
  let b_cpu = Kernel.user_cpu m bob in
  let m_cpu = Kernel.user_cpu m mallory in

  (* -- mallory's attacks ------------------------------------------- *)
  print_endline "mallory attacks:";
  attack "store to an ungranted device-proxy page" (fun () ->
      m_cpu.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 64l);
  attack "store to alice's device pages" (fun () ->
      m_cpu.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:1 ~offset:0) 64l);
  (* note: alice's buffer ADDRESS means nothing in mallory's own
     address space — names are per-process, which is the whole point.
     The real attack is a proxy reference to a page mallory has no
     mapping for: §6's illegal case *)
  attack "proxy of an address with no mapping (case 3)" (fun () ->
      ignore
        (m_cpu.Initiator.load
           ~vaddr:(Layout.proxy_of m.M.layout (m_buf + (8 * 4096)))));
  attack "DMA into a page mallory cannot even map" (fun () ->
      m_cpu.Initiator.store
        ~vaddr:(Layout.proxy_of m.M.layout (m_buf + (8 * 4096)))
        64l);
  Printf.printf "  hardware transfer count after all attacks: %d (none)\n"
    (Udma_engine.counters udma).Udma_engine.initiations;

  (* -- alice and bob interleave mid-sequence ------------------------ *)
  (* alice does only her STORE; bob runs a complete transfer (forcing a
     context switch and an I1 Inval); alice's high-level call then
     retries transparently *)
  a_cpu.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 64l;
  (match
     Initiator.transfer b_cpu ~layout:m.M.layout ~src:(Initiator.Memory b_buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:2 ~offset:0))
       ~nbytes:64 ()
   with
  | Ok _ -> print_endline "bob: transfer complete (interleaved with alice's)"
  | Error e -> Format.printf "bob failed: %a@." Initiator.pp_error e);
  (match
     Initiator.transfer a_cpu ~layout:m.M.layout ~src:(Initiator.Memory a_buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes:64 ()
   with
  | Ok stats ->
      Printf.printf
        "alice: transfer complete (%d pair(s); her earlier half-sequence \
         was discarded by the I1 Inval, not mispaired)\n"
        stats.Initiator.pairs
  | Error e -> Format.printf "alice failed: %a@." Initiator.pp_error e);

  Engine.run_until_idle m.M.engine;
  Printf.printf "device page 0: %c..., device page 2: %c...\n"
    (Bytes.get store 0)
    (Bytes.get store (2 * 4096));
  assert (Bytes.get store 0 = 'A');
  assert (Bytes.get store (2 * 4096) = 'B');
  (* mallory's M never reached the device *)
  assert (not (Bytes.exists (fun c -> c = 'M') store));
  print_endline "untrusting_processes: OK — isolation held"
