examples/parallel_reduce.mli:
