examples/disk_backup.ml: Bytes Char Format List Option Printf Udma Udma_devices Udma_mmu Udma_os Udma_sim
