examples/message_passing.ml: Array Bytes Char Format Printf Udma_os Udma_shrimp Udma_sim
