examples/untrusting_processes.mli:
