examples/untrusting_processes.ml: Bytes Format List Option Printexc Printf Udma Udma_dma Udma_mmu Udma_os Udma_sim
