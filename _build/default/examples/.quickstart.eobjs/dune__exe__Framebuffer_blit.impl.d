examples/framebuffer_blit.ml: Bytes Char Format Option Printf Udma Udma_devices Udma_mmu Udma_os Udma_sim
