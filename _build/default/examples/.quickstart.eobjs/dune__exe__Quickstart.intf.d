examples/quickstart.mli:
