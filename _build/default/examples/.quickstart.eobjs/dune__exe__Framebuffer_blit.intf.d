examples/framebuffer_blit.mli:
