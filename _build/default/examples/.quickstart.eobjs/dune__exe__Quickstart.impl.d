examples/quickstart.ml: Bytes Format Option Printf Udma Udma_dma Udma_mmu Udma_os Udma_sim
