examples/parallel_reduce.ml: Array Bytes Int32 List Printf Udma_os Udma_shrimp Udma_sim
