examples/disk_backup.mli:
