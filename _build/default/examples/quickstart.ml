(* Quickstart: the UDMA mechanism end to end on one simulated node.

   Builds a machine (CPU + MMU + DMA + UDMA engine), attaches a simple
   buffer device, and walks through exactly what the paper describes:
   the kernel grants a device-proxy mapping once, and from then on a
   user process starts fully protected DMA transfers with two ordinary
   memory references — no system call on the transfer path.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Device = Udma_dma.Device
module Status = Udma.Status
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model

let () =
  (* -- hardware + kernel ------------------------------------------- *)
  let m = M.create () in
  let udma = Option.get m.M.udma in
  let port, device_memory = Device.buffer "demo-device" ~size:65536 in
  Udma_engine.attach_device udma ~base_page:0 ~pages:16 ~port ();

  (* -- one process, one kernel grant ------------------------------- *)
  let proc = Scheduler.spawn m ~name:"app" in
  (match
     Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true
   with
  | Ok () -> print_endline "kernel: granted device-proxy page 0"
  | Error e -> Format.printf "grant failed: %a@." Syscall.pp_error e);

  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let message = Bytes.of_string "hello from user-level DMA!" in
  Kernel.write_user m proc ~vaddr:buf message;

  (* -- the two-reference transfer ----------------------------------- *)
  let cpu = Kernel.user_cpu m proc in
  let before = Engine.now m.M.engine in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes:(Bytes.length message + 3 land lnot 3 |> max 28)
       ()
   with
  | Ok stats ->
      Printf.printf
        "user: transfer done — %d piece(s), %d STORE/LOAD pair(s), %d \
         cycles (%.2f us)\n"
        stats.Initiator.pieces stats.Initiator.pairs stats.Initiator.cycles
        (Cost_model.us_of_cycles m.M.costs stats.Initiator.cycles)
  | Error e -> Format.printf "transfer failed: %a@." Initiator.pp_error e);
  ignore before;

  Engine.run_until_idle m.M.engine;
  Printf.printf "device: received %S\n"
    (Bytes.to_string (Bytes.sub device_memory 0 (Bytes.length message)));

  (* -- what the status word looks like ------------------------------ *)
  let st = Udma_engine.handle_load udma ~paddr:(Layout.mem_proxy_base m.M.layout) in
  Format.printf "probe of the idle engine: %a@." Status.pp st;

  (* -- the cost picture --------------------------------------------- *)
  let init =
    Cost_model.udma_initiation_estimate m.M.costs ~alignment_check_cycles:100
  in
  Printf.printf
    "initiation: %d cycles = %.2f us — the paper's 2.8 us (section 8)\n" init
    (Cost_model.us_of_cycles m.M.costs init);
  print_endline "quickstart: OK"
