(* A small parallel computation on SHRIMP: distributed vector sum.

   Each of four ranks owns a slice of a vector, computes a partial
   sum, all-gathers the partials with the user-level collective
   library, and reduces locally — with barriers separating the phases.
   Everything after setup runs at user level over deliberate update:
   no system call ever appears on the communication path.

   Run with: dune exec examples/parallel_reduce.exe *)

module Engine = Udma_sim.Engine
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model
module System = Udma_shrimp.System
module Collective = Udma_shrimp.Collective

let ranks = 4
let slice = 1024 (* ints per rank *)

let () =
  let sys = System.create ~nodes:ranks () in
  let members =
    List.init ranks (fun i ->
        (i, Scheduler.spawn (System.node sys i).System.machine
              ~name:(Printf.sprintf "rank%d" i)))
  in
  let group = Collective.create_group sys ~members () in
  let procs = Array.of_list (List.map snd members) in

  (* each rank fills its slice: rank r owns values r*slice .. r*slice+slice-1 *)
  let partial_bufs =
    Array.init ranks (fun r ->
        let m = (System.node sys r).System.machine in
        let buf = Kernel.alloc_buffer m procs.(r) ~bytes:4096 in
        let local_sum = ref 0 in
        for i = 0 to slice - 1 do
          local_sum := !local_sum + (r * slice) + i
        done;
        let b = Bytes.create 4 in
        Bytes.set_int32_le b 0 (Int32.of_int !local_sum);
        Kernel.write_user m procs.(r) ~vaddr:buf b;
        Printf.printf "rank %d: partial sum %d\n" r !local_sum;
        buf)
  in

  (* phase barrier, then all-gather the 4-byte partials *)
  let t0 = Engine.now (System.engine sys) in
  for r = 0 to ranks - 1 do
    Collective.barrier group ~rank:r
  done;
  Collective.all_gather group
    ~contributions:(Array.map (fun buf -> (buf, 4)) partial_bufs);
  for r = 0 to ranks - 1 do
    Collective.barrier group ~rank:r
  done;
  let comm_cycles = Engine.now (System.engine sys) - t0 in

  (* every rank can now reduce locally; verify they all agree *)
  let expect = (ranks * slice * ((ranks * slice) - 1)) / 2 in
  for r = 0 to ranks - 1 do
    let m = (System.node sys r).System.machine in
    let total = ref 0 in
    for from = 0 to ranks - 1 do
      let v =
        if from = r then
          Kernel.read_user m procs.(r) ~vaddr:partial_bufs.(r) ~len:4
        else
          Kernel.read_user m procs.(r)
            ~vaddr:(Collective.gather_recv_vaddr group ~from_rank:from ~rank:r)
            ~len:4
      in
      total := !total + Int32.to_int (Bytes.get_int32_le v 0)
    done;
    Printf.printf "rank %d: global sum %d (%s)\n" r !total
      (if !total = expect then "correct" else "WRONG");
    assert (!total = expect)
  done;
  let costs = (System.node sys 0).System.machine.M.costs in
  Printf.printf
    "2 barriers + all-gather across %d nodes: %d cycles (%.1f us)\n" ranks
    comm_cycles
    (Cost_model.us_of_cycles costs comm_cycles);
  Printf.printf "barriers completed: %d\n" (Collective.barriers_completed group);
  print_endline "parallel_reduce: OK"
