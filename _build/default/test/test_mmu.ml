(* Unit tests for the MMU substrate: the address-space layout with its
   proxy regions (paper Figures 2-3), page tables, TLB and the
   translation/permission machinery UDMA reuses. *)

module Layout = Udma_mmu.Layout
module Pte = Udma_mmu.Pte
module Page_table = Udma_mmu.Page_table
module Tlb = Udma_mmu.Tlb
module Mmu = Udma_mmu.Mmu

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let layout () = Layout.create ~page_size:4096 ~mem_pages:64 ~dev_pages:16

(* ---------- Layout ---------- *)

let test_layout_regions () =
  let l = layout () in
  checki "span is power of two" 0 (Layout.span l land (Layout.span l - 1));
  checkb "span covers memory" true (Layout.span l >= 64 * 4096);
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "low address is memory" (Some Layout.Mem) (Layout.region_of l 0);
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "proxy base" (Some Layout.Mem_proxy)
    (Layout.region_of l (Layout.mem_proxy_base l));
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "device proxy base" (Some Layout.Dev_proxy)
    (Layout.region_of l (Layout.dev_proxy_base l));
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "past device proxy" None
    (Layout.region_of l (Layout.dev_proxy_base l + (16 * 4096)));
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "negative" None (Layout.region_of l (-4))

let test_layout_hole_above_memory () =
  (* 48 pages of memory in a 64-page span leaves a hole *)
  let l = Layout.create ~page_size:4096 ~mem_pages:48 ~dev_pages:4 in
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "hole above installed memory" None
    (Layout.region_of l (50 * 4096));
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "hole above proxy of installed memory" None
    (Layout.region_of l (Layout.mem_proxy_base l + (50 * 4096)))

let test_layout_proxy_roundtrip () =
  let l = layout () in
  let addr = (13 * 4096) + 52 in
  let p = Layout.proxy_of l addr in
  Alcotest.(check (option (of_pp Layout.pp_region)))
    "proxy is in proxy space" (Some Layout.Mem_proxy) (Layout.region_of l p);
  checki "round trip" addr (Layout.unproxy l p);
  checki "fixed offset" (Layout.span l) (p - addr)

let test_layout_proxy_errors () =
  let l = layout () in
  checkb "proxy of proxy rejected" true
    (try ignore (Layout.proxy_of l (Layout.mem_proxy_base l)); false
     with Invalid_argument _ -> true);
  checkb "unproxy of memory rejected" true
    (try ignore (Layout.unproxy l 0); false with Invalid_argument _ -> true)

let test_layout_dev_proxy_index () =
  let l = layout () in
  let addr = Layout.dev_proxy_addr l ~page:3 ~offset:100 in
  Alcotest.(check (pair int int)) "index round trip" (3, 100)
    (Layout.dev_proxy_index l addr);
  checkb "page out of range" true
    (try ignore (Layout.dev_proxy_addr l ~page:16 ~offset:0); false
     with Invalid_argument _ -> true);
  checkb "offset out of range" true
    (try ignore (Layout.dev_proxy_addr l ~page:0 ~offset:4096); false
     with Invalid_argument _ -> true)

let test_layout_page_helpers () =
  let l = layout () in
  checki "page of addr" 3 (Layout.page_of_addr l 12289);
  checki "offset" 1 (Layout.offset_in_page l 12289);
  checki "page base" 12288 (Layout.page_base l 12289);
  checkb "same page" true (Layout.same_page l 12289 12290);
  checkb "different page" false (Layout.same_page l 12289 16384);
  checkb "crossing" true (Layout.crosses_page l ~addr:4090 ~len:10);
  checkb "not crossing" false (Layout.crosses_page l ~addr:4090 ~len:6);
  checkb "one byte never crosses" false (Layout.crosses_page l ~addr:4095 ~len:1)

(* ---------- Page_table ---------- *)

let test_page_table_basic () =
  let pt = Page_table.create () in
  checkb "empty" true (Page_table.find pt 5 = None);
  Page_table.set pt 5 (Pte.make ~ppage:9 ());
  (match Page_table.find pt 5 with
  | Some pte -> checki "frame" 9 pte.Pte.ppage
  | None -> Alcotest.fail "expected entry");
  Page_table.remove pt 5;
  checkb "removed" true (Page_table.find pt 5 = None);
  Page_table.remove pt 5 (* idempotent *)

let test_page_table_entries_sorted () =
  let pt = Page_table.create () in
  List.iter (fun v -> Page_table.set pt v (Pte.make ~ppage:v ())) [ 9; 1; 5 ];
  Alcotest.(check (list int)) "sorted" [ 1; 5; 9 ]
    (List.map fst (Page_table.entries pt));
  checki "count" 3 (Page_table.mapped_count pt)

(* ---------- Tlb ---------- *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~capacity:4 in
  checkb "cold miss" true (Tlb.lookup tlb 1 = None);
  let pte = Pte.make ~ppage:7 () in
  Tlb.insert tlb 1 pte;
  (match Tlb.lookup tlb 1 with
  | Some p -> checkb "same pte object" true (p == pte)
  | None -> Alcotest.fail "expected hit");
  checki "hits" 1 (Tlb.hits tlb);
  checki "misses" 1 (Tlb.misses tlb)

let test_tlb_lru_eviction () =
  let tlb = Tlb.create ~capacity:2 in
  Tlb.insert tlb 1 (Pte.make ~ppage:1 ());
  Tlb.insert tlb 2 (Pte.make ~ppage:2 ());
  ignore (Tlb.lookup tlb 1); (* 1 is now most recent *)
  Tlb.insert tlb 3 (Pte.make ~ppage:3 ());
  checkb "1 survives" true (Tlb.lookup tlb 1 <> None);
  checkb "2 evicted" true (Tlb.lookup tlb 2 = None);
  checkb "3 present" true (Tlb.lookup tlb 3 <> None)

let test_tlb_flush () =
  let tlb = Tlb.create ~capacity:4 in
  Tlb.insert tlb 1 (Pte.make ~ppage:1 ());
  Tlb.insert tlb 2 (Pte.make ~ppage:2 ());
  Tlb.flush_page tlb 1;
  checkb "page flushed" true (Tlb.lookup tlb 1 = None);
  checkb "other survives" true (Tlb.lookup tlb 2 <> None);
  Tlb.flush_all tlb;
  checkb "all flushed" true (Tlb.lookup tlb 2 = None)

(* ---------- Mmu ---------- *)

let mmu_rig () =
  let l = layout () in
  let mmu = Mmu.create ~layout:l ~tlb_capacity:8 in
  let pt = Page_table.create () in
  (l, mmu, pt)

let test_mmu_translate () =
  let l, mmu, pt = mmu_rig () in
  Page_table.set pt 2 (Pte.make ~ppage:5 ());
  let tr = Mmu.translate mmu pt Mmu.Read ((2 * 4096) + 100) in
  checki "physical address" ((5 * 4096) + 100) tr.Mmu.paddr;
  checkb "first access misses TLB" false tr.Mmu.tlb_hit;
  let tr2 = Mmu.translate mmu pt Mmu.Read ((2 * 4096) + 200) in
  checkb "second access hits TLB" true tr2.Mmu.tlb_hit;
  ignore l

let test_mmu_faults () =
  let _, mmu, pt = mmu_rig () in
  let fault_kind f =
    try f (); None with Mmu.Fault { kind; _ } -> Some kind
  in
  checkb "unmapped" true
    (fault_kind (fun () -> ignore (Mmu.translate mmu pt Mmu.Read 4096))
     = Some Mmu.Not_present);
  Page_table.set pt 1 (Pte.make ~writable:false ~ppage:3 ());
  checkb "read ok" true
    (fault_kind (fun () -> ignore (Mmu.translate mmu pt Mmu.Read 4096)) = None);
  checkb "write to read-only" true
    (fault_kind (fun () -> ignore (Mmu.translate mmu pt Mmu.Write 4096))
     = Some Mmu.Protection);
  checkb "out of range" true
    (fault_kind (fun () -> ignore (Mmu.translate mmu pt Mmu.Read max_int))
     = Some Mmu.Out_of_range)

let test_mmu_dirty_referenced () =
  let _, mmu, pt = mmu_rig () in
  let pte = Pte.make ~ppage:3 () in
  Page_table.set pt 1 pte;
  ignore (Mmu.translate mmu pt Mmu.Read 4096);
  checkb "referenced set" true pte.Pte.referenced;
  checkb "read does not dirty" false pte.Pte.dirty;
  ignore (Mmu.translate mmu pt Mmu.Write 4096);
  checkb "write dirties" true pte.Pte.dirty

let test_mmu_stale_tlb_falls_back () =
  let _, mmu, pt = mmu_rig () in
  let pte = Pte.make ~ppage:3 () in
  Page_table.set pt 1 pte;
  ignore (Mmu.translate mmu pt Mmu.Read 4096); (* cached *)
  (* the kernel pages it out without flushing the TLB *)
  pte.Pte.present <- false;
  checkb "stale entry does not translate" true
    (try ignore (Mmu.translate mmu pt Mmu.Read 4096); false
     with Mmu.Fault { kind = Mmu.Not_present; _ } -> true)

let test_mmu_probe_no_side_effects () =
  let _, mmu, pt = mmu_rig () in
  let pte = Pte.make ~ppage:3 () in
  Page_table.set pt 1 pte;
  (match Mmu.probe mmu pt Mmu.Read 4096 with
  | Ok tr -> checki "paddr" (3 * 4096) tr.Mmu.paddr
  | Error _ -> Alcotest.fail "expected Ok");
  checkb "probe leaves referenced clear" false pte.Pte.referenced;
  checkb "probe write check" true
    (Mmu.probe mmu pt Mmu.Write 4096 = Ok { Mmu.paddr = 3 * 4096; tlb_hit = false });
  Alcotest.(check bool) "probe error" true
    (Mmu.probe mmu pt Mmu.Read (90 * 4096 * 1000) = Error Mmu.Out_of_range)

let test_mmu_proxy_translation () =
  let l, mmu, pt = mmu_rig () in
  (* map a proxy page exactly as the kernel would: PROXY(v) -> PROXY(p) *)
  let span_pages = Layout.span l / 4096 in
  Page_table.set pt 2 (Pte.make ~ppage:5 ());
  Page_table.set pt (2 + span_pages) (Pte.make ~ppage:(5 + span_pages) ());
  let proxy_vaddr = Layout.proxy_of l ((2 * 4096) + 8) in
  let tr = Mmu.translate mmu pt Mmu.Read proxy_vaddr in
  checki "proxy physical = PROXY(frame)"
    (Layout.proxy_of l ((5 * 4096) + 8))
    tr.Mmu.paddr

let () =
  Alcotest.run "udma_mmu"
    [
      ( "layout",
        [
          Alcotest.test_case "regions" `Quick test_layout_regions;
          Alcotest.test_case "hole above memory" `Quick test_layout_hole_above_memory;
          Alcotest.test_case "proxy roundtrip" `Quick test_layout_proxy_roundtrip;
          Alcotest.test_case "proxy errors" `Quick test_layout_proxy_errors;
          Alcotest.test_case "device proxy index" `Quick test_layout_dev_proxy_index;
          Alcotest.test_case "page helpers" `Quick test_layout_page_helpers;
        ] );
      ( "page_table",
        [
          Alcotest.test_case "basic" `Quick test_page_table_basic;
          Alcotest.test_case "entries sorted" `Quick test_page_table_entries_sorted;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_tlb_lru_eviction;
          Alcotest.test_case "flush" `Quick test_tlb_flush;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "translate" `Quick test_mmu_translate;
          Alcotest.test_case "faults" `Quick test_mmu_faults;
          Alcotest.test_case "dirty/referenced" `Quick test_mmu_dirty_referenced;
          Alcotest.test_case "stale TLB fallback" `Quick test_mmu_stale_tlb_falls_back;
          Alcotest.test_case "probe has no side effects" `Quick
            test_mmu_probe_no_side_effects;
          Alcotest.test_case "proxy translation" `Quick test_mmu_proxy_translation;
        ] );
    ]
