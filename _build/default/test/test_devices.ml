(* Unit tests for the example devices: frame buffer, disk, PIO FIFO. *)

module Engine = Udma_sim.Engine
module Device = Udma_dma.Device
module Frame_buffer = Udma_devices.Frame_buffer
module Disk = Udma_devices.Disk
module Pio_fifo = Udma_devices.Pio_fifo

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* ---------- Frame buffer ---------- *)

let test_fb_pixels () =
  let fb = Frame_buffer.create ~width:16 ~height:8 in
  checki "size" (16 * 8 * 4) (Frame_buffer.size_bytes fb);
  Frame_buffer.set_pixel fb ~x:3 ~y:2 0xAABBCCDDl;
  Alcotest.check Alcotest.int32 "pixel" 0xAABBCCDDl
    (Frame_buffer.get_pixel fb ~x:3 ~y:2);
  checkb "out of range" true
    (try ignore (Frame_buffer.get_pixel fb ~x:16 ~y:0); false
     with Invalid_argument _ -> true)

let test_fb_port_addressing () =
  let fb = Frame_buffer.create ~width:16 ~height:8 in
  let port = Frame_buffer.port fb in
  (* writing via the port at a pixel's byte offset sets that pixel *)
  let b = Bytes.create 4 in
  Bytes.set_int32_le b 0 0x01020304l;
  port.Device.dev_write ~addr:((2 * 16 + 5) * 4) b;
  Alcotest.check Alcotest.int32 "port write hits pixel" 0x01020304l
    (Frame_buffer.get_pixel fb ~x:5 ~y:2);
  Alcotest.check Alcotest.bytes "port read" b
    (port.Device.dev_read ~addr:((2 * 16 + 5) * 4) ~len:4)

let test_fb_row_and_checksum () =
  let fb = Frame_buffer.create ~width:8 ~height:4 in
  let c0 = Frame_buffer.checksum fb in
  Frame_buffer.set_pixel fb ~x:0 ~y:1 1l;
  checkb "checksum changes" true (Frame_buffer.checksum fb <> c0);
  checki "row length" (8 * 4) (Bytes.length (Frame_buffer.row fb ~y:1));
  checki "pages" 1 (Frame_buffer.pages fb ~page_size:4096)

(* ---------- Disk ---------- *)

let test_disk_blocks () =
  let d = Disk.create () in
  let block = Bytes.make 4096 'D' in
  Disk.write_block d 5 block;
  Alcotest.check Alcotest.bytes "block roundtrip" block (Disk.read_block d 5);
  checkb "wrong size rejected" true
    (try Disk.write_block d 0 (Bytes.make 100 'x'); false
     with Invalid_argument _ -> true)

let test_disk_seek_model () =
  let d = Disk.create () in
  let g = Disk.geometry d in
  let port = Disk.port d in
  (* access at block 0: no head movement *)
  let c0 = port.Device.access_cycles ~addr:0 ~len:4096 in
  checki "no seek distance"
    (g.Disk.seek_base_cycles + g.Disk.transfer_cycles_per_block) c0;
  checki "head at block 0" 0 (Disk.head_position d);
  (* jump to block 100: distance charged *)
  let c1 = port.Device.access_cycles ~addr:(100 * 4096) ~len:4096 in
  checki "seek to 100"
    (g.Disk.seek_base_cycles + (100 * g.Disk.seek_per_block_cycles)
     + g.Disk.transfer_cycles_per_block)
    c1;
  checki "head moved" 100 (Disk.head_position d);
  checki "one real seek" 1 (Disk.seeks d)

let test_disk_multiblock_access () =
  let d = Disk.create () in
  let g = Disk.geometry d in
  let port = Disk.port d in
  (* 3 blocks in one access: pay media transfer for each *)
  let c = port.Device.access_cycles ~addr:0 ~len:(3 * 4096) in
  checki "three blocks"
    (g.Disk.seek_base_cycles + (3 * g.Disk.transfer_cycles_per_block))
    c

let test_disk_port_data () =
  let d = Disk.create () in
  let port = Disk.port d in
  port.Device.dev_write ~addr:8192 (Bytes.of_string "ondisk");
  Alcotest.check Alcotest.string "readable" "ondisk"
    (Bytes.to_string (port.Device.dev_read ~addr:8192 ~len:6));
  Alcotest.check Alcotest.string "block api agrees" "ondisk"
    (Bytes.to_string (Bytes.sub (Disk.read_block d 2) 0 6))

(* ---------- PIO FIFO ---------- *)

let test_pio_word_transport () =
  let engine = Engine.create () in
  let a = Pio_fifo.create ~engine () and b = Pio_fifo.create ~engine () in
  Pio_fifo.connect a b;
  let ha = Pio_fifo.handler a and hb = Pio_fifo.handler b in
  ha.Udma_dma.Bus.io_store ~paddr:0 42l;
  ha.Udma_dma.Bus.io_store ~paddr:0 43l;
  checki "nothing before latency" 0 (Pio_fifo.rx_pending b);
  Engine.run_until_idle engine;
  checki "both arrived" 2 (Pio_fifo.rx_pending b);
  Alcotest.check Alcotest.int32 "count reg" 2l (hb.Udma_dma.Bus.io_load ~paddr:8);
  Alcotest.check Alcotest.int32 "pop 1" 42l (hb.Udma_dma.Bus.io_load ~paddr:4);
  Alcotest.check Alcotest.int32 "pop 2" 43l (hb.Udma_dma.Bus.io_load ~paddr:4);
  Alcotest.check Alcotest.int32 "empty pops zero" 0l
    (hb.Udma_dma.Bus.io_load ~paddr:4);
  checki "tx counter" 2 (Pio_fifo.tx_pushed a);
  checki "rx counter" 2 (Pio_fifo.rx_delivered b)

let test_pio_latency () =
  let engine = Engine.create () in
  let a = Pio_fifo.create ~engine ~link_latency:100 () in
  let b = Pio_fifo.create ~engine ~link_latency:100 () in
  Pio_fifo.connect a b;
  (Pio_fifo.handler a).Udma_dma.Bus.io_store ~paddr:0 1l;
  Engine.advance engine 99;
  checki "not yet" 0 (Pio_fifo.rx_pending b);
  Engine.advance engine 1;
  checki "arrived at latency" 1 (Pio_fifo.rx_pending b)

let test_pio_overrun () =
  let engine = Engine.create () in
  let a = Pio_fifo.create ~engine ~capacity_words:4 () in
  let b = Pio_fifo.create ~engine ~capacity_words:4 () in
  Pio_fifo.connect a b;
  let ha = Pio_fifo.handler a in
  for i = 1 to 10 do
    ha.Udma_dma.Bus.io_store ~paddr:0 (Int32.of_int i)
  done;
  Engine.run_until_idle engine;
  checki "capacity kept" 4 (Pio_fifo.rx_pending b);
  checki "overruns counted" 6 (Pio_fifo.overruns b)

let test_pio_unconnected () =
  let engine = Engine.create () in
  let a = Pio_fifo.create ~engine () in
  (Pio_fifo.handler a).Udma_dma.Bus.io_store ~paddr:0 1l;
  Engine.run_until_idle engine;
  checki "pushed counted" 1 (Pio_fifo.tx_pushed a)

(* ---------- devices driven through the full UDMA stack ---------- *)

module Layout = Udma_mmu.Layout
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module M = Udma_os.Machine
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel

let machine_with port ~pages =
  let m = M.create () in
  let udma = Option.get m.M.udma in
  Udma_engine.attach_device udma ~base_page:0 ~pages ~port ();
  let proc = Scheduler.spawn m ~name:"p" in
  for i = 0 to pages - 1 do
    match Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i ~writable:true with
    | Ok () -> ()
    | Error _ -> failwith "grant"
  done;
  (m, proc)

let test_disk_via_udma_roundtrip () =
  let d = Disk.create () in
  let m, proc = machine_with (Disk.port d) ~pages:16 in
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let data = Bytes.init 4096 (fun i -> Char.chr ((i * 5) land 0xff)) in
  Kernel.write_user m proc ~vaddr:buf data;
  let cpu = Kernel.user_cpu m proc in
  (* write block 3 via user-level DMA *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:3 ~offset:0))
       ~nbytes:4096 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "write: %a" Initiator.pp_error e);
  Udma_sim.Engine.run_until_idle m.M.engine;
  Alcotest.check Alcotest.bytes "on the platters" data (Disk.read_block d 3);
  (* read it back into a second buffer (dev -> mem, I3 in play) *)
  let buf2 = Kernel.alloc_buffer m proc ~bytes:4096 in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:3 ~offset:0))
       ~dst:(Initiator.Memory buf2) ~nbytes:4096 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "read: %a" Initiator.pp_error e);
  Udma_sim.Engine.run_until_idle m.M.engine;
  Alcotest.check Alcotest.bytes "read back" data
    (Kernel.read_user m proc ~vaddr:buf2 ~len:4096);
  checkb "disk latency charged" true (Disk.seeks d >= 1)

let test_framebuffer_via_udma () =
  let fb = Frame_buffer.create ~width:64 ~height:16 in
  let m, proc = machine_with (Frame_buffer.port fb) ~pages:1 in
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let row = Bytes.init (64 * 4) (fun i -> Char.chr (i land 0xff)) in
  Kernel.write_user m proc ~vaddr:buf row;
  let cpu = Kernel.user_cpu m proc in
  (* blit one scanline to row 2 *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:(2 * 64 * 4)))
       ~nbytes:(64 * 4) ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "blit: %a" Initiator.pp_error e);
  Udma_sim.Engine.run_until_idle m.M.engine;
  Alcotest.check Alcotest.bytes "scanline landed" row (Frame_buffer.row fb ~y:2);
  (* read pixels back into memory *)
  let buf2 = Kernel.alloc_buffer m proc ~bytes:4096 in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:(2 * 64 * 4)))
       ~dst:(Initiator.Memory buf2) ~nbytes:(64 * 4) ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "readback: %a" Initiator.pp_error e);
  Udma_sim.Engine.run_until_idle m.M.engine;
  Alcotest.check Alcotest.bytes "pixels read back" row
    (Kernel.read_user m proc ~vaddr:buf2 ~len:(64 * 4))

let () =
  Alcotest.run "udma_devices"
    [
      ( "frame_buffer",
        [
          Alcotest.test_case "pixels" `Quick test_fb_pixels;
          Alcotest.test_case "port addressing" `Quick test_fb_port_addressing;
          Alcotest.test_case "row + checksum" `Quick test_fb_row_and_checksum;
        ] );
      ( "disk",
        [
          Alcotest.test_case "blocks" `Quick test_disk_blocks;
          Alcotest.test_case "seek model" `Quick test_disk_seek_model;
          Alcotest.test_case "multi-block access" `Quick test_disk_multiblock_access;
          Alcotest.test_case "port data" `Quick test_disk_port_data;
        ] );
      ( "via-udma",
        [
          Alcotest.test_case "disk roundtrip" `Quick test_disk_via_udma_roundtrip;
          Alcotest.test_case "framebuffer blit + readback" `Quick
            test_framebuffer_via_udma;
        ] );
      ( "pio_fifo",
        [
          Alcotest.test_case "word transport" `Quick test_pio_word_transport;
          Alcotest.test_case "latency" `Quick test_pio_latency;
          Alcotest.test_case "overrun" `Quick test_pio_overrun;
          Alcotest.test_case "unconnected" `Quick test_pio_unconnected;
        ] );
    ]
