(* Unit tests for the physical-memory substrate. *)

module Phys_mem = Udma_memory.Phys_mem
module Frame_allocator = Udma_memory.Frame_allocator
module Backing_store = Udma_memory.Backing_store

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let mem () = Phys_mem.create ~frames:8 ~page_size:4096

(* ---------- Phys_mem ---------- *)

let test_mem_geometry () =
  let m = mem () in
  checki "frames" 8 (Phys_mem.frames m);
  checki "page size" 4096 (Phys_mem.page_size m);
  checki "size" 32768 (Phys_mem.size m);
  checki "frame base" 8192 (Phys_mem.frame_base m 2);
  checki "frame of addr" 2 (Phys_mem.frame_of_addr m 8195)

let test_mem_bad_create () =
  Alcotest.check_raises "zero frames"
    (Invalid_argument "Phys_mem.create: frames must be positive") (fun () ->
      ignore (Phys_mem.create ~frames:0 ~page_size:4096));
  Alcotest.check_raises "non-power-of-two page"
    (Invalid_argument
       "Phys_mem.create: page_size must be a positive power of two")
    (fun () -> ignore (Phys_mem.create ~frames:1 ~page_size:3000))

let test_mem_bytes () =
  let m = mem () in
  Phys_mem.write_byte m 100 0xAB;
  checki "read back" 0xAB (Phys_mem.read_byte m 100);
  Phys_mem.write_byte m 101 0x1FF;
  checki "masked to a byte" 0xFF (Phys_mem.read_byte m 101);
  checki "zero initialised" 0 (Phys_mem.read_byte m 200)

let test_mem_words_little_endian () =
  let m = mem () in
  Phys_mem.write_word m 16 0x11223344l;
  checki "LSB first" 0x44 (Phys_mem.read_byte m 16);
  checki "MSB last" 0x11 (Phys_mem.read_byte m 19);
  Alcotest.check Alcotest.int32 "word read" 0x11223344l (Phys_mem.read_word m 16)

let test_mem_word_alignment () =
  let m = mem () in
  Alcotest.check_raises "unaligned read"
    (Invalid_argument "Phys_mem.read_word: unaligned address 0x2") (fun () ->
      ignore (Phys_mem.read_word m 2))

let test_mem_bounds () =
  let m = mem () in
  let check_oob f = try f (); false with Invalid_argument _ -> true in
  checkb "read past end" true (check_oob (fun () -> ignore (Phys_mem.read_byte m 32768)));
  checkb "negative" true (check_oob (fun () -> ignore (Phys_mem.read_byte m (-1))));
  checkb "region straddling end" true
    (check_oob (fun () -> ignore (Phys_mem.read_bytes m ~addr:32760 ~len:16)))

let test_mem_bulk () =
  let m = mem () in
  let data = Bytes.init 300 (fun i -> Char.chr (i land 0xff)) in
  Phys_mem.write_bytes m ~addr:1000 data;
  Alcotest.check Alcotest.bytes "round trip" data
    (Phys_mem.read_bytes m ~addr:1000 ~len:300)

let test_mem_blit_overlap () =
  let m = mem () in
  let data = Bytes.of_string "abcdefgh" in
  Phys_mem.write_bytes m ~addr:0 data;
  (* overlapping forward copy must behave like memmove *)
  Phys_mem.blit m ~src:0 ~dst:2 ~len:8;
  Alcotest.check Alcotest.bytes "memmove semantics"
    (Bytes.of_string "ababcdefgh")
    (Phys_mem.read_bytes m ~addr:0 ~len:10)

let test_mem_fill_frame () =
  let m = mem () in
  Phys_mem.fill_frame m ~frame:1 0x5A;
  checki "first byte" 0x5A (Phys_mem.read_byte m 4096);
  checki "last byte" 0x5A (Phys_mem.read_byte m 8191);
  checki "neighbour untouched" 0 (Phys_mem.read_byte m 8192)

(* ---------- Frame_allocator ---------- *)

let test_alloc_lowest_first () =
  let a = Frame_allocator.create ~frames:8 ~reserved:2 in
  checki "total" 6 (Frame_allocator.total a);
  checki "first" 2 (Frame_allocator.alloc_exn a);
  checki "second" 3 (Frame_allocator.alloc_exn a);
  Frame_allocator.free a 2;
  checki "reuse lowest" 2 (Frame_allocator.alloc_exn a)

let test_alloc_exhaustion () =
  let a = Frame_allocator.create ~frames:4 ~reserved:1 in
  checki "f1" 1 (Frame_allocator.alloc_exn a);
  checki "f2" 2 (Frame_allocator.alloc_exn a);
  checki "f3" 3 (Frame_allocator.alloc_exn a);
  checkb "exhausted" true (Frame_allocator.alloc a = None);
  checki "free count" 0 (Frame_allocator.free_count a)

let test_alloc_double_free () =
  let a = Frame_allocator.create ~frames:4 ~reserved:1 in
  let f = Frame_allocator.alloc_exn a in
  Frame_allocator.free a f;
  Alcotest.check_raises "double free"
    (Invalid_argument (Printf.sprintf "Frame_allocator.free: double free of frame %d" f))
    (fun () -> Frame_allocator.free a f)

let test_alloc_reserved_protected () =
  let a = Frame_allocator.create ~frames:4 ~reserved:2 in
  checkb "reserved not free" false (Frame_allocator.is_free a 0);
  Alcotest.check_raises "cannot free reserved"
    (Invalid_argument "Frame_allocator.free: frame 0 out of range") (fun () ->
      Frame_allocator.free a 0)

let test_alloc_no_duplicates_under_churn () =
  let a = Frame_allocator.create ~frames:16 ~reserved:2 in
  let live = Hashtbl.create 16 in
  let rng = Udma_sim.Rng.create 99 in
  for _ = 1 to 2000 do
    if Udma_sim.Rng.bool rng && Hashtbl.length live < 14 then begin
      match Frame_allocator.alloc a with
      | Some f ->
          checkb "frame not already live" false (Hashtbl.mem live f);
          Hashtbl.replace live f ()
      | None -> ()
    end
    else
      match Hashtbl.fold (fun f () _ -> Some f) live None with
      | Some f ->
          Hashtbl.remove live f;
          Frame_allocator.free a f
      | None -> ()
  done;
  checki "accounting consistent"
    (14 - Hashtbl.length live)
    (Frame_allocator.free_count a)

(* ---------- Backing_store ---------- *)

let page n seed = Bytes.init n (fun i -> Char.chr ((i * seed) land 0xff))

let test_store_roundtrip () =
  let b = Backing_store.create ~page_size:4096 in
  let s1 = Backing_store.store b (page 4096 3) in
  let s2 = Backing_store.store b (page 4096 7) in
  checki "slots used" 2 (Backing_store.slots_used b);
  Alcotest.check Alcotest.bytes "slot 1" (page 4096 3) (Backing_store.load b s1);
  Alcotest.check Alcotest.bytes "slot 2" (page 4096 7) (Backing_store.load b s2)

let test_store_overwrite () =
  let b = Backing_store.create ~page_size:4096 in
  let s = Backing_store.store b (page 4096 1) in
  Backing_store.overwrite b s (page 4096 9);
  Alcotest.check Alcotest.bytes "overwritten" (page 4096 9) (Backing_store.load b s)

let test_store_release () =
  let b = Backing_store.create ~page_size:4096 in
  let s = Backing_store.store b (page 4096 1) in
  Backing_store.release b s;
  checki "slot gone" 0 (Backing_store.slots_used b);
  checkb "load after release raises" true
    (try ignore (Backing_store.load b s); false
     with Invalid_argument _ -> true)

let test_store_size_check () =
  let b = Backing_store.create ~page_size:4096 in
  Alcotest.check_raises "wrong size"
    (Invalid_argument "Backing_store.store: expected 4096 bytes, got 100")
    (fun () -> ignore (Backing_store.store b (Bytes.make 100 'x')))

let test_store_isolation () =
  let b = Backing_store.create ~page_size:64 in
  let src = page 64 2 in
  let s = Backing_store.store b src in
  Bytes.set src 0 'Z';
  checkb "store copied" true (Bytes.get (Backing_store.load b s) 0 <> 'Z');
  let out = Backing_store.load b s in
  Bytes.set out 1 'Q';
  checkb "load copied" true (Bytes.get (Backing_store.load b s) 1 <> 'Q')

let () =
  Alcotest.run "udma_memory"
    [
      ( "phys_mem",
        [
          Alcotest.test_case "geometry" `Quick test_mem_geometry;
          Alcotest.test_case "bad create" `Quick test_mem_bad_create;
          Alcotest.test_case "bytes" `Quick test_mem_bytes;
          Alcotest.test_case "little-endian words" `Quick
            test_mem_words_little_endian;
          Alcotest.test_case "word alignment" `Quick test_mem_word_alignment;
          Alcotest.test_case "bounds" `Quick test_mem_bounds;
          Alcotest.test_case "bulk read/write" `Quick test_mem_bulk;
          Alcotest.test_case "overlapping blit" `Quick test_mem_blit_overlap;
          Alcotest.test_case "fill frame" `Quick test_mem_fill_frame;
        ] );
      ( "frame_allocator",
        [
          Alcotest.test_case "lowest first" `Quick test_alloc_lowest_first;
          Alcotest.test_case "exhaustion" `Quick test_alloc_exhaustion;
          Alcotest.test_case "double free" `Quick test_alloc_double_free;
          Alcotest.test_case "reserved protected" `Quick
            test_alloc_reserved_protected;
          Alcotest.test_case "no duplicates under churn" `Quick
            test_alloc_no_duplicates_under_churn;
        ] );
      ( "backing_store",
        [
          Alcotest.test_case "roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "overwrite" `Quick test_store_overwrite;
          Alcotest.test_case "release" `Quick test_store_release;
          Alcotest.test_case "size check" `Quick test_store_size_check;
          Alcotest.test_case "copy isolation" `Quick test_store_isolation;
        ] );
    ]
