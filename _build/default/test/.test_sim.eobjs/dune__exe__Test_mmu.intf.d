test/test_mmu.mli:
