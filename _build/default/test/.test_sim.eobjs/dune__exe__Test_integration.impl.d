test/test_integration.ml: Alcotest Bytes Char List Option Printf Udma Udma_devices Udma_dma Udma_mmu Udma_os Udma_shrimp Udma_sim Udma_workloads
