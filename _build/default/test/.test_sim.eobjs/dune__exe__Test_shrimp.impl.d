test/test_shrimp.ml: Alcotest Array Bytes Char Hashtbl Int32 List Option Printf Udma Udma_memory Udma_mmu Udma_os Udma_shrimp Udma_sim
