test/test_os.ml: Alcotest Bytes Char Int32 List Option Printf Udma Udma_dma Udma_mmu Udma_os Udma_sim
