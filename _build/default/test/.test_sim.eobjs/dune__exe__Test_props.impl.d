test/test_props.ml: Alcotest Array Bytes Char Fun Gen Hashtbl Int32 List Option QCheck QCheck_alcotest Udma Udma_dma Udma_mmu Udma_os Udma_shrimp Udma_sim
