test/test_shrimp.mli:
