test/test_core.ml: Alcotest Bytes Int32 List Printf Udma Udma_dma Udma_memory Udma_mmu Udma_shrimp Udma_sim
