test/test_sim.ml: Alcotest Array Fun List Option Udma_sim
