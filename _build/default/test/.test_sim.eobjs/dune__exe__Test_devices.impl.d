test/test_devices.ml: Alcotest Bytes Char Int32 Option Udma Udma_devices Udma_dma Udma_mmu Udma_os Udma_sim
