test/test_memory.ml: Alcotest Bytes Char Hashtbl Printf Udma_memory Udma_sim
