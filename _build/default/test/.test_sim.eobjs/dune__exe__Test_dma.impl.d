test/test_dma.ml: Alcotest Bytes Int32 Udma_dma Udma_memory Udma_sim
