test/test_mmu.ml: Alcotest List Udma_mmu
