(* The benchmark binary regenerates every table and figure of the
   paper's evaluation (the E1–E8 index in DESIGN.md §4), printing the
   same series the paper reports, and then runs one Bechamel
   micro-benchmark per experiment measuring the wall-clock cost of the
   corresponding simulation harness. *)

module Runner = Udma_workloads.Runner

open Bechamel
open Toolkit

(* Small parameterisations so each Bechamel sample is a fraction of a
   second; the printed paper series above use the full parameters. *)
let bech_tests =
  [
    Test.make ~name:"e1_figure8_point"
      (Staged.stage (fun () ->
           ignore (Runner.figure8 ~sizes:[ 512; 4096 ] ~messages:4 ())));
    Test.make ~name:"e2_initiation"
      (Staged.stage (fun () -> ignore (Runner.initiation_costs ())));
    Test.make ~name:"e3_hippi"
      (Staged.stage (fun () ->
           ignore (Runner.hippi_motivation ~blocks:[ 1024; 65536 ] ())));
    Test.make ~name:"e4_pio_crossover"
      (Staged.stage (fun () ->
           ignore (Runner.pio_crossover ~sizes:[ 64; 1024 ] ~trials:2 ())));
    Test.make ~name:"e5_queueing"
      (Staged.stage (fun () ->
           ignore (Runner.queueing ~total_sizes:[ 16384 ] ~depths:[ 4 ] ())));
    Test.make ~name:"e6_atomicity"
      (Staged.stage (fun () ->
           ignore (Runner.atomicity ~probs_pct:[ 10 ] ~transfers:20 ())));
    Test.make ~name:"e7_pinning"
      (Staged.stage (fun () -> ignore (Runner.pinning_vs_i4 ())));
    Test.make ~name:"e8_proxy_fault"
      (Staged.stage (fun () -> ignore (Runner.proxy_fault_costs ())));
    Test.make ~name:"e9_i3_policy"
      (Staged.stage (fun () ->
           ignore (Runner.i3_policies ~transfers:8 ~pages:2 ())));
    Test.make ~name:"e10_updates"
      (Staged.stage (fun () -> ignore (Runner.update_strategies ())));
  ]

let run_bechamel () =
  Printf.printf "\n=== Bechamel micro-benchmarks (host wall-clock per harness run) ===\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"udma" bech_tests)
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (est :: _) -> est
          | Some [] | None -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-28s %16s\n" "harness" "ns/run";
  List.iter
    (fun (name, ns) -> Printf.printf "%-28s %16.0f\n" name ns)
    rows

let () =
  Printf.printf
    "Reproduction of: Blumrich, Dubnicki, Felten, Li — \"Protected, \
     User-Level DMA for the SHRIMP Network Interface\" (HPCA 1996)\n";
  Printf.printf
    "Every series below corresponds to a table/figure or quantitative \
     claim of the paper; see DESIGN.md section 4 and EXPERIMENTS.md.\n";
  Runner.run_all ();
  run_bechamel ();
  Printf.printf "\nDone.\n"
