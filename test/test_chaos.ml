(* The chaos harness as a test: a clean sweep over many seeds must
   find no I1–I4 violation, and — the soundness half — each deliberate
   kernel bug planted with [~skip_invariant] must be detected by some
   seed, replay deterministically, shrink, and be reported under the
   right invariant's name. *)

module M = Udma_os.Machine
module Oracle = Udma_check.Oracle
module Chaos = Udma_check.Chaos

let sweep_seeds = 512
let mutation_seeds = 256
let mesh_seeds = 64

(* ---------- the sweep itself: no violations in a correct kernel ---------- *)

let test_clean_sweep () =
  match Chaos.sweep ~seeds:sweep_seeds () with
  | [] -> ()
  | f :: _ as failures ->
      Alcotest.failf "%d of %d seeds violated an invariant; first:\n%s"
        (List.length failures) sweep_seeds
        (Chaos.report (Chaos.shrink f))

(* A failing run must replay identically: same step, same invariant,
   same detail. Exercised through the mutated kernels below. *)
let check_replay ~skip_invariant (f : Chaos.failure) =
  match Chaos.run_plan ~skip_invariant f.Chaos.plan with
  | Chaos.Pass ->
      Alcotest.failf "seed %d failed once but replayed clean"
        f.Chaos.plan.Chaos.setup.Chaos.seed
  | Chaos.Fail f' ->
      Alcotest.(check int) "replay stops at the same step" f.Chaos.step
        f'.Chaos.step;
      Alcotest.(check string) "replay reports the same violation"
        f.Chaos.violation.Oracle.detail f'.Chaos.violation.Oracle.detail

(* ---------- mutation self-test: the oracles catch planted bugs ---------- *)

let test_mutation inv () =
  match Chaos.first_failure ~skip_invariant:inv ~seeds:mutation_seeds () with
  | None ->
      Alcotest.failf
        "kernel built without the %s maintenance action survived %d chaos \
         seeds — the %s oracle is not sound"
        (M.invariant_name inv) mutation_seeds (M.invariant_name inv)
  | Some f ->
      Alcotest.(check string)
        "the violated invariant is the one whose maintenance was disabled"
        (M.invariant_name inv)
        (M.invariant_name f.Chaos.violation.Oracle.invariant);
      check_replay ~skip_invariant:inv f;
      let s = Chaos.shrink ~skip_invariant:inv f in
      Alcotest.(check string) "shrinking preserves the invariant"
        (M.invariant_name inv)
        (M.invariant_name s.Chaos.violation.Oracle.invariant);
      if List.length s.Chaos.plan.Chaos.actions
         > List.length f.Chaos.plan.Chaos.actions
      then Alcotest.fail "shrinking grew the schedule";
      (* the printed repro recipe names the invariant *)
      let report = Chaos.report ~skip_invariant:inv s in
      let name = M.invariant_name inv ^ " violated" in
      let contains hay needle =
        let nl = String.length needle and hl = String.length hay in
        let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
        go 0
      in
      if not (contains report name) then
        Alcotest.failf "report does not name %s:\n%s" (M.invariant_name inv)
          report

(* ---------- mesh scenario: oracles under multi-node traffic ---------- *)

let test_mesh_sweep () =
  match Chaos.mesh_sweep ~seeds:mesh_seeds () with
  | [] -> ()
  | f :: _ as failures ->
      Alcotest.failf "%d of %d mesh seeds violated an invariant; first:\n%s"
        (List.length failures) mesh_seeds (Chaos.mesh_report f)

(* A mesh failure must also replay identically, checked through a
   planted I2 bug (mapping consistency breaks under paging pressure
   regardless of the network, so some mesh seed must find it) and the
   two planted router bugs: a leaked credit return (N1) and a stuck
   VC arbiter (N2). [check_name] asserts the violation names the
   planted invariant — always true for the router bugs, whose mutation
   cannot perturb the kernel invariants. The protection bugs P1
   (ownership check skipped) and P2 (stale datapath entry survives
   teardown) manifest as cross-tenant isolation leaks, so their
   violations are reported under I5 — [expect_name] overrides the
   expected name for those cases. The flit bugs F1 (a flit leaked on a
   dead-link retry) and F2 (an arbiter double grant against one
   credit) arm only on flit-crossing seeds and both surface through
   the F1 conservation oracle. *)
let test_mesh_mutation ?(check_name = false) ?expect_name inv () =
  let rec first seed =
    if seed >= mesh_seeds then None
    else
      match Chaos.run_mesh_seed ~skip_invariant:inv seed with
      | Chaos.Mesh_pass -> first (seed + 1)
      | Chaos.Mesh_fail f -> Some f
  in
  match first 0 with
  | None ->
      Alcotest.failf
        "mesh kernels built without the %s maintenance action survived %d \
         seeds"
        (M.invariant_name inv) mesh_seeds
  | Some f -> (
      if check_name then
        Alcotest.(check string)
          "the violated invariant is the one whose maintenance was disabled"
          (match expect_name with
          | Some n -> n
          | None -> M.invariant_name inv)
          (M.invariant_name f.Chaos.mesh_violation.Oracle.invariant);
      match Chaos.run_mesh_plan ~skip_invariant:inv f.Chaos.mesh_plan with
      | Chaos.Mesh_pass ->
          Alcotest.failf "mesh seed %d failed once but replayed clean"
            f.Chaos.mesh_plan.Chaos.mesh_setup.Chaos.mesh_seed
      | Chaos.Mesh_fail f' ->
          Alcotest.(check int) "mesh replay stops at the same step"
            f.Chaos.mesh_step f'.Chaos.mesh_step;
          Alcotest.(check string) "mesh replay reports the same violation"
            f.Chaos.mesh_violation.Oracle.detail
            f'.Chaos.mesh_violation.Oracle.detail)

(* The mesh generator must actually exercise the new failure surface:
   across the sweep's seeds there have to be link-fault actions (dead,
   slowed and healed links), setups under both routing policies, and
   only routable node counts. *)
let test_mesh_generator_coverage () =
  let dead = ref 0 and slow = ref 0 and heal = ref 0 in
  let adaptive = ref 0 in
  let multi_vc = ref 0 and finite = ref 0 and unlimited = ref 0 in
  let squeeze = ref 0 and squeeze_tight = ref 0 in
  let rogue = ref 0 and revoke = ref 0 and backend_send = ref 0 in
  let shaped = ref 0 in
  let flit = ref 0 in
  for seed = 0 to mesh_seeds - 1 do
    let p = Chaos.mesh_plan_of_seed seed in
    let setup = p.Chaos.mesh_setup in
    if not (Udma_shrimp.Router.valid_nodes setup.Chaos.mesh_nodes) then
      Alcotest.failf "seed %d generated unroutable node count %d" seed
        setup.Chaos.mesh_nodes;
    if setup.Chaos.mesh_vcs < 1 || setup.Chaos.mesh_vcs > 4 then
      Alcotest.failf "seed %d generated vc count %d outside 1..4" seed
        setup.Chaos.mesh_vcs;
    (match setup.Chaos.mesh_credits with
    | Some n when n < 1 ->
        Alcotest.failf "seed %d generated nonpositive credits %d" seed n
    | Some _ -> incr finite
    | None -> incr unlimited);
    if setup.Chaos.adaptive then incr adaptive;
    if setup.Chaos.mesh_vcs > 1 then incr multi_vc;
    (* the apply step downgrades adaptive to dimension-order on flit
       seeds, so the plan may pair them freely; flit_words must still
       be sane *)
    (match setup.Chaos.mesh_crossing with
    | `Flit ->
        incr flit;
        if setup.Chaos.mesh_flit_words < 1 then
          Alcotest.failf "seed %d generated flit_words %d" seed
            setup.Chaos.mesh_flit_words
    | `Analytic -> ());
    List.iter
      (function
        | Chaos.M_link_fault { fault = Udma_shrimp.Router.Link_dead; _ } ->
            incr dead
        | Chaos.M_link_fault { fault = Udma_shrimp.Router.Link_slow _; _ } ->
            incr slow
        | Chaos.M_link_fault { fault = Udma_shrimp.Router.Link_ok; _ } ->
            incr heal
        | Chaos.M_credit_squeeze { credits } -> (
            incr squeeze;
            match credits with
            | Some n when n <= 3 -> incr squeeze_tight
            | Some _ | None -> ())
        | Chaos.M_rogue_tenant _ -> incr rogue
        | Chaos.M_revoke _ -> incr revoke
        | Chaos.M_backend_send _ -> incr backend_send
        | Chaos.M_shaped_send _ -> incr shaped
        | _ -> ())
      p.Chaos.mesh_actions
  done;
  Alcotest.(check bool) "dead links injected" true (!dead > 0);
  Alcotest.(check bool) "slowed links injected" true (!slow > 0);
  Alcotest.(check bool) "links healed" true (!heal > 0);
  Alcotest.(check bool) "both routing policies exercised" true
    (!adaptive > 0 && !adaptive < mesh_seeds);
  Alcotest.(check bool) "multi-VC setups generated" true
    (!multi_vc > 0 && !multi_vc < mesh_seeds);
  Alcotest.(check bool) "finite and unlimited credit setups generated" true
    (!finite > 0 && !unlimited > 0);
  Alcotest.(check bool) "credit squeezes generated" true (!squeeze > 0);
  Alcotest.(check bool) "squeezes shrink to tight pools" true
    (!squeeze_tight > 0);
  Alcotest.(check bool) "rogue-tenant probes generated" true (!rogue > 0);
  Alcotest.(check bool) "revocations generated" true (!revoke > 0);
  Alcotest.(check bool) "authorized backend sends generated" true
    (!backend_send > 0);
  Alcotest.(check bool) "shaped sends generated" true (!shaped > 0);
  Alcotest.(check bool) "both crossings exercised" true
    (!flit > 0 && !flit < mesh_seeds)

(* ---------- determinism of the generator ---------- *)

let test_plan_deterministic () =
  for seed = 0 to 63 do
    let a = Chaos.plan_of_seed seed and b = Chaos.plan_of_seed seed in
    if a <> b then Alcotest.failf "plan_of_seed %d is not deterministic" seed;
    let ma = Chaos.mesh_plan_of_seed seed
    and mb = Chaos.mesh_plan_of_seed seed in
    if ma <> mb then
      Alcotest.failf "mesh_plan_of_seed %d is not deterministic" seed
  done

let () =
  Alcotest.run "chaos"
    [
      ( "chaos",
        [
          Alcotest.test_case "plan generation is deterministic" `Quick
            test_plan_deterministic;
          Alcotest.test_case
            (Printf.sprintf "%d-seed sweep: no I1-I4 violation" sweep_seeds)
            `Quick test_clean_sweep;
          Alcotest.test_case "mutation: skipping I1 is detected" `Quick
            (test_mutation `I1);
          Alcotest.test_case "mutation: skipping I2 is detected" `Quick
            (test_mutation `I2);
          Alcotest.test_case "mutation: skipping I3 is detected" `Quick
            (test_mutation `I3);
          Alcotest.test_case "mutation: skipping I4 is detected" `Quick
            (test_mutation `I4);
          Alcotest.test_case
            (Printf.sprintf
               "%d-seed mesh traffic sweep: no I1-I5/N1-N2 violation"
               mesh_seeds)
            `Quick test_mesh_sweep;
          Alcotest.test_case
            "mesh mutation: skipping I2 is detected and replays" `Quick
            (test_mesh_mutation `I2);
          Alcotest.test_case
            "mesh mutation: leaking a credit is detected (N1)" `Quick
            (test_mesh_mutation ~check_name:true `N1);
          Alcotest.test_case
            "mesh mutation: a stuck VC arbiter is detected (N2)" `Quick
            (test_mesh_mutation ~check_name:true `N2);
          Alcotest.test_case
            "mesh mutation: skipping the owner check leaks across tenants \
             (P1 -> I5)"
            `Quick
            (test_mesh_mutation ~check_name:true ~expect_name:"I5" `P1);
          Alcotest.test_case
            "mesh mutation: a stale datapath entry survives teardown \
             (P2 -> I5)"
            `Quick
            (test_mesh_mutation ~check_name:true ~expect_name:"I5" `P2);
          Alcotest.test_case
            "mesh mutation: skipping the per-element page clamp reaches \
             unauthorized frames (D1 -> I4)"
            `Quick
            (test_mesh_mutation ~check_name:true ~expect_name:"I4" `D1);
          Alcotest.test_case
            "mesh mutation: a flit leaked on a dead-link retry breaks \
             conservation (F1)"
            `Quick
            (test_mesh_mutation ~check_name:true `F1);
          Alcotest.test_case
            "mesh mutation: an arbiter double grant breaks the credit \
             identity (F2 -> F1)"
            `Quick
            (test_mesh_mutation ~check_name:true ~expect_name:"F1" `F2);
          Alcotest.test_case "mesh generator covers faults + policies" `Quick
            test_mesh_generator_coverage;
        ] );
    ]
