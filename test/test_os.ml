(* OS-layer tests: the kernel contract of paper §6 — demand proxy
   mapping, the I1/I2/I3/I4 invariants, demand paging, pinning, and the
   traditional DMA syscall baseline. *)

module Engine = Udma_sim.Engine
module Layout = Udma_mmu.Layout
module Page_table = Udma_mmu.Page_table
module Pte = Udma_mmu.Pte
module Device = Udma_dma.Device
module Dma_engine = Udma_dma.Dma_engine
module Status = Udma.Status
module Initiator = Udma.Initiator
module Udma_engine = Udma.Udma_engine
module M = Udma_os.Machine
module Vm = Udma_os.Vm
module Proc = Udma_os.Proc
module Scheduler = Udma_os.Scheduler
module Syscall = Udma_os.Syscall
module Kernel = Udma_os.Kernel
module Cost_model = Udma_os.Cost_model

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* A machine with one buffer device attached to the UDMA engine. *)
let machine_with_buffer ?(mode = Udma_engine.Basic) ?(mem_pages = 64) () =
  let config = { M.default_config with M.udma_mode = Some mode; mem_pages } in
  let m = M.create ~config () in
  let udma = Option.get m.M.udma in
  let dev_bytes = 8 * Layout.page_size m.M.layout in
  let port, store = Device.buffer "buf" ~size:dev_bytes in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  (m, udma, port, store)

let fill_pattern n seed =
  Bytes.init n (fun i -> Char.chr ((i + seed) land 0xff))

(* ---------- end-to-end UDMA transfers ---------- *)

let test_udma_mem_to_dev () =
  let m, udma, _port, store = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"sender" in
  (* grant the device proxy pages *)
  List.iter
    (fun i ->
      check
        (Alcotest.result Alcotest.unit (Alcotest.of_pp Syscall.pp_error))
        "grant" (Ok ())
        (Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i
           ~writable:true))
    [ 0; 1 ];
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let data = fill_pattern 1024 7 in
  Kernel.write_user m proc ~vaddr:buf data;
  let cpu = Kernel.user_cpu m proc in
  let dst = Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0) in
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst ~nbytes:1024 ()
   with
  | Ok stats ->
      checki "one piece" 1 stats.Initiator.pieces;
      checkb "took cycles" true (stats.Initiator.cycles > 0)
  | Error e -> Alcotest.failf "transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  check Alcotest.bytes "data arrived" data (Bytes.sub store 0 1024);
  let c = Udma_engine.counters udma in
  checki "initiations" 1 c.Udma_engine.initiations;
  checki "completions" 1 c.Udma_engine.completions

let test_udma_dev_to_mem () =
  let m, _udma, _port, store = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"receiver" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let data = fill_pattern 512 42 in
  Bytes.blit data 0 store 0 512;
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  (* I3: the destination page must be dirty before the proxy STORE is
     allowed; touch it the honest way *)
  Kernel.touch_dirty m proc ~vaddr:buf;
  let cpu = Kernel.user_cpu m proc in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~dst:(Initiator.Memory buf) ~nbytes:512 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  check Alcotest.bytes "data landed in user memory" data
    (Kernel.read_user m proc ~vaddr:buf ~len:512)

let test_udma_multi_page () =
  let m, _udma, _port, store = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"sender" in
  List.iter
    (fun i ->
      ignore
        (Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i
           ~writable:true))
    [ 0; 1; 2 ];
  let nbytes = 3 * 4096 in
  let buf = Kernel.alloc_buffer m proc ~bytes:nbytes in
  let data = fill_pattern nbytes 3 in
  Kernel.write_user m proc ~vaddr:buf data;
  let cpu = Kernel.user_cpu m proc in
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes ()
   with
  | Ok stats -> checki "three pieces" 3 stats.Initiator.pieces
  | Error e -> Alcotest.failf "transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  check Alcotest.bytes "all pages arrived" data (Bytes.sub store 0 nbytes)

let test_initiation_cost_is_2_8_us () =
  let m, _udma, _, _ = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:buf (fill_pattern 64 0);
  let cpu = Kernel.user_cpu m proc in
  (* warm the mappings so we measure steady-state initiation, as the
     paper does *)
  ignore
    (Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes:64 ());
  Engine.run_until_idle m.M.engine;
  match
    Initiator.initiation_cycles cpu ~layout:m.M.layout
      ~config:Initiator.default_config ~src:(Initiator.Memory buf)
      ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
      ~nbytes:64
  with
  | Ok cycles ->
      let us = Cost_model.us_of_cycles m.M.costs cycles in
      checkb
        (Printf.sprintf "~2.8us (got %.2fus, %d cycles)" us cycles)
        true
        (us > 2.0 && us < 3.6)
  | Error e -> Alcotest.failf "initiation failed: %a" Initiator.pp_error e

(* ---------- I1: atomicity across context switches ---------- *)

let test_i1_inval_on_switch () =
  let m, udma, _, _ = machine_with_buffer () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let p2 = Scheduler.spawn m ~name:"p2" in
  ignore (Syscall.map_device_proxy m p1 ~vdev_index:0 ~pdev_index:0 ~writable:true);
  ignore (Syscall.map_device_proxy m p2 ~vdev_index:1 ~pdev_index:1 ~writable:true);
  let b1 = Kernel.alloc_buffer m p1 ~bytes:4096 in
  Kernel.write_user m p1 ~vaddr:b1 (fill_pattern 128 1);
  let b2 = Kernel.alloc_buffer m p2 ~bytes:4096 in
  Kernel.write_user m p2 ~vaddr:b2 (fill_pattern 128 2);
  let cpu1 = Kernel.user_cpu m p1 in
  let cpu2 = Kernel.user_cpu m p2 in
  (* p1 executes only the STORE half of its sequence *)
  let dst1 = Layout.proxy_of m.M.layout b1 in
  ignore dst1;
  cpu1.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0)
    (Int32.of_int 128);
  (match Udma_engine.state udma with
  | Udma.State_machine.Dest_loaded _ -> ()
  | s -> Alcotest.failf "expected DestLoaded, got %a" Udma.State_machine.pp_state s);
  (* p2 runs: the context switch must invalidate p1's half-initiation *)
  cpu2.Initiator.compute 1;
  (match Udma_engine.state udma with
  | Udma.State_machine.Idle -> ()
  | s -> Alcotest.failf "I1 violated: %a after switch" Udma.State_machine.pp_state s);
  (* p1 resumes with its LOAD: the status must say Idle, not start *)
  let src1 = Layout.proxy_of m.M.layout b1 in
  let st = Status.decode (cpu1.Initiator.load ~vaddr:src1) in
  checkb "not started" false st.Status.started;
  checkb "invalid flag" true st.Status.invalid;
  (* and the retrying high-level call still succeeds *)
  match
    Initiator.transfer cpu1 ~layout:m.M.layout ~src:(Initiator.Memory b1)
      ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
      ~nbytes:128 ()
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "retry failed: %a" Initiator.pp_error e

let test_i1_no_cross_process_pairing () =
  let m, udma, _, _ = machine_with_buffer () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let p2 = Scheduler.spawn m ~name:"p2" in
  ignore (Syscall.map_device_proxy m p1 ~vdev_index:0 ~pdev_index:0 ~writable:true);
  ignore (Syscall.map_device_proxy m p2 ~vdev_index:1 ~pdev_index:1 ~writable:true);
  let b1 = Kernel.alloc_buffer m p1 ~bytes:4096 in
  Kernel.write_user m p1 ~vaddr:b1 (fill_pattern 64 1);
  let b2 = Kernel.alloc_buffer m p2 ~bytes:4096 in
  Kernel.write_user m p2 ~vaddr:b2 (fill_pattern 64 2);
  (* record every started pair; none may mix p1's dest with p2's src *)
  let started = ref [] in
  Udma_engine.set_start_hook udma (fun ~src_proxy ~dest_proxy ~nbytes:_ ->
      started := (src_proxy, dest_proxy) :: !started);
  let cpu1 = Kernel.user_cpu m p1 in
  let cpu2 = Kernel.user_cpu m p2 in
  (* p1 stores (dev page 0); p2 then runs a complete transfer; p1 then
     issues its load *)
  cpu1.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 64l;
  (match
     Initiator.transfer cpu2 ~layout:m.M.layout ~src:(Initiator.Memory b2)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:1 ~offset:0))
       ~nbytes:64 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "p2 transfer failed: %a" Initiator.pp_error e);
  let st =
    Status.decode (cpu1.Initiator.load ~vaddr:(Layout.proxy_of m.M.layout b1))
  in
  checkb "p1's load did not start anything" false st.Status.started;
  Engine.run_until_idle m.M.engine;
  let p1_dev = Kernel.vdev_addr m ~index:0 ~offset:0 in
  List.iter
    (fun (src, dest) ->
      if dest = p1_dev then
        Alcotest.failf "cross-process pairing: %#x -> %#x" src dest)
    !started;
  checki "exactly one transfer" 1 (List.length !started)

(* ---------- I3: content consistency ---------- *)

let test_i3_clean_page_write_protects_proxy () =
  let m, _udma, _, store = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Bytes.blit (fill_pattern 256 9) 0 store 0 256;
  let cpu = Kernel.user_cpu m proc in
  (* fresh page is clean: the proxy STORE must take the I3 upgrade
     fault and succeed, leaving the page dirty *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~dst:(Initiator.Memory buf) ~nbytes:256 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "incoming transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  let vpn = buf / Layout.page_size m.M.layout in
  let pte = Option.get (Page_table.find proc.Proc.page_table vpn) in
  checkb "page dirty after incoming DMA" true pte.Pte.dirty;
  (* clean the page: the proxy page must become read-only again *)
  checkb "cleaned" true (Vm.clean_page m proc ~vpn);
  checkb "dirty cleared" false pte.Pte.dirty;
  let pvpn = M.proxy_vpn m vpn in
  let ppte = Option.get (Page_table.find proc.Proc.page_table pvpn) in
  checkb "proxy write-protected (I3)" false ppte.Pte.writable;
  (* a new incoming transfer upgrade-faults again and re-dirties *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~dst:(Initiator.Memory buf) ~nbytes:256 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "second transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  checkb "dirty again" true pte.Pte.dirty

let test_i3_readonly_page_never_destination () =
  let m, _udma, _, _ = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  (* map a read-only page by hand *)
  let vpn = 40 in
  let frame = Vm.map_new_page m proc ~vpn ~writable:false () in
  ignore frame;
  let vaddr = vpn * Layout.page_size m.M.layout in
  let cpu = Kernel.user_cpu m proc in
  (* as a source it is fine ... *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory vaddr)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes:64 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "read-only source failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  (* ... as a destination the proxy STORE must segfault *)
  match
    Initiator.transfer cpu ~layout:m.M.layout
      ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
      ~dst:(Initiator.Memory vaddr) ~nbytes:64 ()
  with
  | exception Vm.Segfault _ -> ()
  | Ok _ -> Alcotest.fail "read-only page accepted as DMA destination"
  | Error e ->
      Alcotest.failf "expected segfault, got error %a" Initiator.pp_error e

(* ---------- I2: mapping consistency ---------- *)

let test_i2_eviction_invalidates_proxy () =
  let m, _udma, _, _ = machine_with_buffer ~mem_pages:16 () in
  (* 16 frames, 2 reserved: tight memory to force evictions *)
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:buf (fill_pattern 4096 5);
  let cpu = Kernel.user_cpu m proc in
  (* create the proxy mapping via a real transfer *)
  (match
     Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes:64 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "setup transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  let vpn = buf / Layout.page_size m.M.layout in
  let pvpn = M.proxy_vpn m vpn in
  checkb "proxy mapping exists" true
    (Page_table.find proc.Proc.page_table pvpn <> None);
  (* hammer memory until buf's page gets evicted *)
  let hog = Scheduler.spawn m ~name:"hog" in
  let rec hammer i =
    if Vm.frame_of_vpn m proc ~vpn <> None && i < 64 then begin
      ignore (Kernel.alloc_buffer m hog ~bytes:4096);
      hammer (i + 1)
    end
  in
  hammer 0;
  checkb "page evicted" true (Vm.frame_of_vpn m proc ~vpn = None);
  (* I2: proxy mapping must be gone *)
  checkb "proxy invalidated (I2)" true
    (Page_table.find proc.Proc.page_table pvpn = None);
  (* and the data must survive a reload + new transfer *)
  Scheduler.switch_to m proc;
  check Alcotest.bytes "data survives eviction" (fill_pattern 4096 5)
    (Kernel.read_user m proc ~vaddr:buf ~len:4096)

(* ---------- I4: register consistency ---------- *)

let test_i4_inflight_page_not_evicted () =
  let m, udma, _, _ = machine_with_buffer ~mem_pages:16 () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:buf (fill_pattern 4096 11);
  let vpn = buf / Layout.page_size m.M.layout in
  let frame = Option.get (Vm.frame_of_vpn m proc ~vpn) in
  let cpu = Kernel.user_cpu m proc in
  (* initiate but do not wait: engine now busy with buf's frame *)
  let src_p = Layout.proxy_of m.M.layout buf in
  cpu.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 4096l;
  let st = Status.decode (cpu.Initiator.load ~vaddr:src_p) in
  checkb "started" true st.Status.started;
  checkb "frame reported busy (I4)" true (Udma_engine.mem_frame_busy udma ~frame);
  (* eviction pressure must pick other frames *)
  let hog = Scheduler.spawn m ~name:"hog" in
  for _ = 1 to 6 do
    ignore (Kernel.alloc_buffer m hog ~bytes:4096)
  done;
  checkb "in-flight frame still resident" true
    (Vm.frame_of_vpn m proc ~vpn = Some frame);
  Engine.run_until_idle m.M.engine;
  checkb "frame free after completion" false
    (Udma_engine.mem_frame_busy udma ~frame)

let test_i4_destloaded_dest_protected () =
  let m, udma, _, _ = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.touch_dirty m proc ~vaddr:buf;
  let vpn = buf / Layout.page_size m.M.layout in
  let frame = Option.get (Vm.frame_of_vpn m proc ~vpn) in
  let cpu = Kernel.user_cpu m proc in
  (* STORE half only, with a memory destination: DESTINATION register
     holds buf's page *)
  cpu.Initiator.store ~vaddr:(Layout.proxy_of m.M.layout buf) 256l;
  checkb "latched dest reported busy (I4)" true
    (Udma_engine.mem_frame_busy udma ~frame);
  (* the kernel can clear it with an Inval *)
  Udma_engine.invalidate udma;
  checkb "free after inval" false (Udma_engine.mem_frame_busy udma ~frame)

(* ---------- I3 alternative policy: proxy dirty union (§6) ---------- *)

let machine_union ?(mem_pages = 64) () =
  let config =
    { M.default_config with
      M.udma_mode = Some Udma_engine.Basic;
      mem_pages;
      i3_policy = M.Proxy_dirty_union }
  in
  let m = M.create ~config () in
  let udma = Option.get m.M.udma in
  let port, store = Device.buffer "buf" ~size:(8 * Layout.page_size m.M.layout) in
  Udma_engine.attach_device udma ~base_page:0 ~pages:8 ~port ();
  (m, udma, port, store)

let test_union_no_upgrade_fault () =
  let m, _udma, _, store = machine_union () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  Bytes.blit (fill_pattern 128 3) 0 store 0 128;
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  (* fresh page is clean; under the union policy the incoming transfer
     needs no dirty-upgrade fault at all *)
  let cpu = Kernel.user_cpu m proc in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~dst:(Initiator.Memory buf) ~nbytes:128 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  checki "no upgrade faults" 0 (Udma_obs.Metrics.get m.M.metrics "vm.dirty_upgrades");
  check Alcotest.bytes "data landed" (fill_pattern 128 3)
    (Kernel.read_user m proc ~vaddr:buf ~len:128);
  (* the proxy page, not the real page, carries the dirty bit *)
  let vpn = buf / Layout.page_size m.M.layout in
  let ppte = Option.get (Page_table.find proc.Proc.page_table (M.proxy_vpn m vpn)) in
  checkb "proxy pte dirty" true ppte.Pte.dirty

let test_union_data_survives_eviction () =
  let m, _udma, _, store = machine_union ~mem_pages:16 () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  Bytes.blit (fill_pattern 4096 6) 0 store 0 4096;
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let cpu = Kernel.user_cpu m proc in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~dst:(Initiator.Memory buf) ~nbytes:4096 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  let vpn = buf / Layout.page_size m.M.layout in
  let pte = Option.get (Page_table.find proc.Proc.page_table vpn) in
  checkb "real pte may stay clean under union" true (not pte.Pte.dirty || true);
  (* force the page out: the union dirty check must write it to swap *)
  let hog = Scheduler.spawn m ~name:"hog" in
  let rec force i =
    if Vm.frame_of_vpn m proc ~vpn <> None && i < 64 then begin
      ignore (Kernel.alloc_buffer m hog ~bytes:4096);
      force (i + 1)
    end
  in
  force 0;
  checkb "evicted" true (Vm.frame_of_vpn m proc ~vpn = None);
  Scheduler.switch_to m proc;
  check Alcotest.bytes "incoming DMA data survived paging (union I3)"
    (fill_pattern 4096 6)
    (Kernel.read_user m proc ~vaddr:buf ~len:4096)

let test_union_clean_keeps_proxy_writable () =
  let m, _udma, _, _store = machine_union () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let cpu = Kernel.user_cpu m proc in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~dst:(Initiator.Memory buf) ~nbytes:64 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  let vpn = buf / Layout.page_size m.M.layout in
  checkb "cleaned" true (Vm.clean_page m proc ~vpn);
  let ppte = Option.get (Page_table.find proc.Proc.page_table (M.proxy_vpn m vpn)) in
  checkb "proxy stays writable (no I3 write-protect)" true ppte.Pte.writable;
  checkb "proxy dirty cleared" false ppte.Pte.dirty;
  (* the next incoming transfer needs no fault at all *)
  let faults_before = proc.Proc.faults in
  (match
     Initiator.transfer cpu ~layout:m.M.layout
       ~src:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~dst:(Initiator.Memory buf) ~nbytes:64 ()
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "transfer failed: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  checki "no new faults on the fast path" faults_before proc.Proc.faults;
  checkb "proxy dirty again" true ppte.Pte.dirty

(* ---------- demand paging ---------- *)

let test_paging_roundtrip () =
  let m, _udma, _, _ = machine_with_buffer ~mem_pages:16 () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let buf = Kernel.alloc_buffer m p1 ~bytes:4 * 4096 in
  ignore buf;
  Alcotest.(check pass) "alloc ok" () ()

let test_demand_paging_preserves_data () =
  let m, _udma, _, _ = machine_with_buffer ~mem_pages:16 () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let bufs =
    List.init 20 (fun i ->
        let v = Kernel.alloc_buffer m p1 ~bytes:4096 in
        Kernel.write_user m p1 ~vaddr:v (fill_pattern 4096 i);
        (v, i))
  in
  (* touching them all again forces page-in of evicted ones *)
  List.iter
    (fun (v, i) ->
      check Alcotest.bytes
        (Printf.sprintf "buffer %d intact" i)
        (fill_pattern 4096 i)
        (Kernel.read_user m p1 ~vaddr:v ~len:4096))
    bufs;
  checkb "evictions happened" true
    (Udma_obs.Metrics.get m.M.metrics "vm.evictions" > 0)

(* ---------- traditional DMA baseline ---------- *)

let test_traditional_dma_to_device () =
  let config = { M.default_config with M.udma_mode = None } in
  let m = M.create ~config () in
  let proc = Scheduler.spawn m ~name:"p" in
  let port, store = Device.buffer "dev" ~size:65536 in
  let buf = Kernel.alloc_buffer m proc ~bytes:8192 in
  let data = fill_pattern 8192 13 in
  Kernel.write_user m proc ~vaddr:buf data;
  (match
     Syscall.dma_transfer m proc ~dir:Syscall.To_device ~vaddr:buf ~nbytes:8192
       ~port ~dev_addr:0 ~strategy:Syscall.Pin_user_pages
   with
  | Ok cycles ->
      (* the kernel path costs thousands of cycles *)
      checkb
        (Printf.sprintf "expensive (%d cycles)" cycles)
        true (cycles > 3000)
  | Error e -> Alcotest.failf "syscall failed: %a" Syscall.pp_error e);
  check Alcotest.bytes "device got the data" data (Bytes.sub store 0 8192)

let test_traditional_dma_copy_strategy () =
  let config = { M.default_config with M.udma_mode = None } in
  let m = M.create ~config () in
  let proc = Scheduler.spawn m ~name:"p" in
  let port, store = Device.buffer "dev" ~size:65536 in
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let data = fill_pattern 3000 29 in
  Kernel.write_user m proc ~vaddr:buf data;
  (match
     Syscall.dma_transfer m proc ~dir:Syscall.To_device ~vaddr:buf ~nbytes:3000
       ~port ~dev_addr:0 ~strategy:Syscall.Copy_through_buffer
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "syscall failed: %a" Syscall.pp_error e);
  check Alcotest.bytes "device got the data" data (Bytes.sub store 0 3000)

let test_traditional_dma_from_device_marks_dirty () =
  let config = { M.default_config with M.udma_mode = None } in
  let m = M.create ~config () in
  let proc = Scheduler.spawn m ~name:"p" in
  let port, store = Device.buffer "dev" ~size:65536 in
  Bytes.blit (fill_pattern 4096 17) 0 store 0 4096;
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  (match
     Syscall.dma_transfer m proc ~dir:Syscall.From_device ~vaddr:buf
       ~nbytes:4096 ~port ~dev_addr:0 ~strategy:Syscall.Pin_user_pages
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "syscall failed: %a" Syscall.pp_error e);
  let vpn = buf / Layout.page_size m.M.layout in
  let pte = Option.get (Page_table.find proc.Proc.page_table vpn) in
  checkb "kernel marked the page dirty" true pte.Pte.dirty;
  check Alcotest.bytes "data arrived" (fill_pattern 4096 17)
    (Kernel.read_user m proc ~vaddr:buf ~len:4096)

let test_udma_vs_traditional_cost_gap () =
  let m, _udma, _, _ = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:buf (fill_pattern 1024 1);
  let cpu = Kernel.user_cpu m proc in
  let dst = Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0) in
  ignore
    (Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst ~nbytes:64 ());
  Engine.run_until_idle m.M.engine;
  let udma_cycles =
    match
      Initiator.initiation_cycles cpu ~layout:m.M.layout
        ~config:Initiator.default_config ~src:(Initiator.Memory buf) ~dst
        ~nbytes:64
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "udma failed: %a" Initiator.pp_error e
  in
  Engine.run_until_idle m.M.engine;
  (* same machine, kernel path to the same device *)
  let port, _ = Device.buffer "d2" ~size:65536 in
  let trad_cycles =
    match
      Syscall.dma_transfer m proc ~dir:Syscall.To_device ~vaddr:buf ~nbytes:64
        ~port ~dev_addr:0 ~strategy:Syscall.Pin_user_pages
    with
    | Ok c -> c
    | Error e -> Alcotest.failf "traditional failed: %a" Syscall.pp_error e
  in
  checkb
    (Printf.sprintf "UDMA (%d) ≪ traditional (%d)" udma_cycles trad_cycles)
    true
    (trad_cycles > 5 * udma_cycles)

(* ---------- cost model ---------- *)

let test_cost_model () =
  let c = Cost_model.default in
  Alcotest.(check (float 0.01)) "2.8us initiation" 2.78
    (Cost_model.us_of_cycles c
       (Cost_model.udma_initiation_estimate c ~alignment_check_cycles:100));
  checki "1 cycle per byte, rounded up" 9 (Cost_model.copy_cycles c 9);
  checki "copy zero" 0 (Cost_model.copy_cycles c 0);
  let h = Cost_model.hippi in
  let fixed =
    h.Cost_model.syscall + h.Cost_model.descriptor_build
    + h.Cost_model.dma_start + h.Cost_model.interrupt
  in
  (* >=340us of fixed overhead, the paper's ">350us" ballpark *)
  checkb "hippi fixed overhead ~343us" true
    (Cost_model.us_of_cycles h fixed > 330.0)

(* ---------- scheduler ---------- *)

let test_scheduler_round_robin () =
  let m, _udma, _, _ = machine_with_buffer () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let p2 = Scheduler.spawn m ~name:"p2" in
  let p3 = Scheduler.spawn m ~name:"p3" in
  checkb "first is current" true (Scheduler.current m = Some p1);
  Scheduler.preempt m;
  checkb "rotated to p2" true (Scheduler.current m = Some p2);
  Scheduler.preempt m;
  checkb "rotated to p3" true (Scheduler.current m = Some p3);
  Scheduler.preempt m;
  checkb "wrapped to p1" true (Scheduler.current m = Some p1);
  checki "switches counted" 3 (Udma_obs.Metrics.get m.M.metrics "sched.switches")

let test_scheduler_exit () =
  let m, _udma, _, _ = machine_with_buffer () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let p2 = Scheduler.spawn m ~name:"p2" in
  Scheduler.exit_proc m p1;
  checkb "p1 exited" true (p1.Proc.state = Proc.Exited);
  checkb "p2 scheduled" true (Scheduler.current m = Some p2);
  Scheduler.preempt m;
  checkb "only p2 remains" true (Scheduler.current m = Some p2)

let test_switch_flushes_tlb () =
  let m, _udma, _, _ = machine_with_buffer () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let p2 = Scheduler.spawn m ~name:"p2" in
  let b1 = Kernel.alloc_buffer m p1 ~bytes:4096 in
  let cpu1 = Kernel.user_cpu m p1 in
  ignore (cpu1.Initiator.load ~vaddr:b1);
  ignore (cpu1.Initiator.load ~vaddr:b1);
  let hits_before = Udma_mmu.Tlb.hits (Udma_mmu.Mmu.tlb m.M.mmu) in
  checkb "warm TLB hits" true (hits_before > 0);
  Scheduler.switch_to m p2;
  Scheduler.switch_to m p1;
  let misses_before = Udma_mmu.Tlb.misses (Udma_mmu.Mmu.tlb m.M.mmu) in
  ignore (cpu1.Initiator.load ~vaddr:b1);
  checkb "cold after switch" true
    (Udma_mmu.Tlb.misses (Udma_mmu.Mmu.tlb m.M.mmu) > misses_before)

(* ---------- syscall errors + kernel helpers ---------- *)

let test_syscall_bad_address () =
  let config = { M.default_config with M.udma_mode = None } in
  let m = M.create ~config () in
  let proc = Scheduler.spawn m ~name:"p" in
  let port, _ = Device.buffer "d" ~size:65536 in
  checkb "unmapped vaddr" true
    (Syscall.dma_transfer m proc ~dir:Syscall.To_device ~vaddr:(100 * 4096)
       ~nbytes:64 ~port ~dev_addr:0 ~strategy:Syscall.Pin_user_pages
     = Error Syscall.Bad_address);
  checkb "zero size" true
    (Syscall.dma_transfer m proc ~dir:Syscall.To_device ~vaddr:4096 ~nbytes:0
       ~port ~dev_addr:0 ~strategy:Syscall.Pin_user_pages
     = Error Syscall.Bad_size);
  checkb "bad grant indexes" true
    (Syscall.map_device_proxy m proc ~vdev_index:(-1) ~pdev_index:0
       ~writable:true
     = Error Syscall.Bad_address)

let test_kernel_unaligned_access () =
  let m, _udma, _, _ = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let cpu = Kernel.user_cpu m proc in
  checkb "unaligned load raises" true
    (try ignore (cpu.Initiator.load ~vaddr:(buf + 2)); false
     with Invalid_argument _ -> true)

let test_kernel_user_copy_across_pages () =
  let m, _udma, _, _ = machine_with_buffer ~mem_pages:16 () in
  let proc = Scheduler.spawn m ~name:"p" in
  let buf = Kernel.alloc_buffer m proc ~bytes:(3 * 4096) in
  let data = fill_pattern 10_000 21 in
  (* straddles three pages at an odd offset *)
  Kernel.write_user m proc ~vaddr:(buf + 500) data;
  check Alcotest.bytes "round trip across pages" data
    (Kernel.read_user m proc ~vaddr:(buf + 500) ~len:10_000)

(* ---------- vm corner cases ---------- *)

let test_unmap_page_cleans_up () =
  let m, _udma, _, _ = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:buf (fill_pattern 64 1);
  let cpu = Kernel.user_cpu m proc in
  ignore
    (Initiator.transfer cpu ~layout:m.M.layout ~src:(Initiator.Memory buf)
       ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
       ~nbytes:64 ());
  Engine.run_until_idle m.M.engine;
  let vpn = buf / Layout.page_size m.M.layout in
  checkb "proxy mapped" true
    (Page_table.find proc.Proc.page_table (M.proxy_vpn m vpn) <> None);
  Vm.unmap_page m proc ~vpn;
  checkb "real gone" true (Page_table.find proc.Proc.page_table vpn = None);
  checkb "proxy gone (I2)" true
    (Page_table.find proc.Proc.page_table (M.proxy_vpn m vpn) = None);
  checkb "touching it now segfaults" true
    (try ignore (cpu.Initiator.load ~vaddr:buf); false
     with Vm.Segfault _ -> true)

let test_unmap_pinned_fails () =
  let m, _udma, _, _ = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  let vpn = buf / Layout.page_size m.M.layout in
  let frame = Vm.pin m proc ~vpn in
  checkb "unmap refuses pinned" true
    (try Vm.unmap_page m proc ~vpn; false with Failure _ -> true);
  Vm.unpin m ~frame;
  Vm.unmap_page m proc ~vpn

let test_pin_pages_in_swapped_page () =
  let m, _udma, _, _ = machine_with_buffer ~mem_pages:16 () in
  let proc = Scheduler.spawn m ~name:"p" in
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:buf (fill_pattern 4096 8);
  let vpn = buf / Layout.page_size m.M.layout in
  (* force it out *)
  let hog = Scheduler.spawn m ~name:"hog" in
  let rec force i =
    if Vm.frame_of_vpn m proc ~vpn <> None && i < 64 then begin
      ignore (Kernel.alloc_buffer m hog ~bytes:4096);
      force (i + 1)
    end
  in
  force 0;
  checkb "swapped out" true (Vm.frame_of_vpn m proc ~vpn = None);
  let frame = Vm.pin m proc ~vpn in
  checkb "resident again" true (Vm.frame_of_vpn m proc ~vpn = Some frame);
  check Alcotest.bytes "contents back" (fill_pattern 4096 8)
    (Kernel.read_user m proc ~vaddr:buf ~len:4096);
  Vm.unpin m ~frame

let test_clean_deferred_during_transfer () =
  let m, _udma, _, store = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  ignore (Syscall.map_device_proxy m proc ~vdev_index:0 ~pdev_index:0 ~writable:true);
  Bytes.blit (fill_pattern 4096 4) 0 store 0 4096;
  let buf = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.touch_dirty m proc ~vaddr:buf;
  let vpn = buf / Layout.page_size m.M.layout in
  let cpu = Kernel.user_cpu m proc in
  (* initiate an incoming transfer and try to clean mid-flight: the
     paper's race rule says the dirty bit must not be cleared *)
  cpu.Initiator.store ~vaddr:(Layout.proxy_of m.M.layout buf) 4096l;
  let st =
    Status.decode
      (cpu.Initiator.load ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0))
  in
  checkb "started" true st.Status.started;
  checkb "clean deferred while DMA in flight" false (Vm.clean_page m proc ~vpn);
  checki "deferral counted" 1 (Udma_obs.Metrics.get m.M.metrics "vm.clean_deferred");
  Engine.run_until_idle m.M.engine;
  checkb "clean succeeds after completion" true (Vm.clean_page m proc ~vpn)

(* ---------- initiator strategies ---------- *)

let test_precompute_matches_optimistic () =
  let run split =
    let m, _udma, _, store = machine_with_buffer () in
    let proc = Scheduler.spawn m ~name:"p" in
    List.iter
      (fun i ->
        ignore
          (Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i
             ~writable:true))
      [ 0; 1; 2 ];
    let buf = Kernel.alloc_buffer m proc ~bytes:(3 * 4096) in
    let data = fill_pattern 9000 2 in
    Kernel.write_user m proc ~vaddr:(buf + 100 land lnot 3) data;
    let cpu = Kernel.user_cpu m proc in
    let config = { Initiator.default_config with Initiator.split } in
    match
      Initiator.transfer cpu ~layout:m.M.layout ~config
        ~src:(Initiator.Memory (buf + 100 land lnot 3))
        ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
        ~nbytes:9000 ()
    with
    | Ok stats ->
        Engine.run_until_idle m.M.engine;
        (stats.Initiator.pieces, Bytes.sub store 0 9000)
    | Error e -> Alcotest.failf "transfer: %a" Initiator.pp_error e
  in
  let p_opt, d_opt = run Initiator.Optimistic in
  let p_pre, d_pre = run Initiator.Precompute in
  checki "same piece count" p_opt p_pre;
  check Alcotest.bytes "same bytes" d_opt d_pre

let test_gather_on_basic_hardware () =
  (* gather uses the queued retry protocol but must degrade gracefully
     on the basic engine (busy-wait between pieces) *)
  let m, _udma, _, store = machine_with_buffer () in
  let proc = Scheduler.spawn m ~name:"p" in
  List.iter
    (fun i ->
      ignore
        (Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i
           ~writable:true))
    [ 0; 1 ];
  let b1 = Kernel.alloc_buffer m proc ~bytes:4096 in
  let b2 = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:b1 (fill_pattern 256 1);
  Kernel.write_user m proc ~vaddr:b2 (fill_pattern 256 2);
  let cpu = Kernel.user_cpu m proc in
  (match
     Initiator.transfer_gather cpu ~layout:m.M.layout
       ~pieces:
         [
           (Initiator.Memory b1,
            Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0), 256);
           (Initiator.Memory b2,
            Initiator.Device (Kernel.vdev_addr m ~index:1 ~offset:0), 256);
         ]
       ()
   with
  | Ok stats -> checki "two pieces" 2 stats.Initiator.pieces
  | Error e -> Alcotest.failf "gather: %a" Initiator.pp_error e);
  Engine.run_until_idle m.M.engine;
  check Alcotest.bytes "piece 1" (fill_pattern 256 1) (Bytes.sub store 0 256);
  check Alcotest.bytes "piece 2" (fill_pattern 256 2) (Bytes.sub store 4096 256)

(* ---------- scheduler/VM churn against the UDMA engine ---------- *)

(* A deschedule while a DMA is in flight: the context switch performs
   the I1 Inval store, which resets any partially initiated sequence —
   but the engine is stateless across switches and the transfer in
   flight must run to completion untouched. *)
let test_deschedule_during_inflight_dma () =
  let m, udma, _, store = machine_with_buffer () in
  let p1 = Scheduler.spawn m ~name:"p1" in
  let p2 = Scheduler.spawn m ~name:"p2" in
  ignore (Syscall.map_device_proxy m p1 ~vdev_index:0 ~pdev_index:0 ~writable:true);
  let buf = Kernel.alloc_buffer m p1 ~bytes:4096 in
  Kernel.write_user m p1 ~vaddr:buf (fill_pattern 1024 21);
  let cpu1 = Kernel.user_cpu m p1 in
  cpu1.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:0 ~offset:0) 1024l;
  let st =
    Status.decode (cpu1.Initiator.load ~vaddr:(Layout.proxy_of m.M.layout buf))
  in
  checkb "transfer started" true st.Status.started;
  let invals_before = (Udma_engine.counters udma).Udma_engine.invals in
  Scheduler.switch_to m p2;
  let c = Udma_engine.counters udma in
  checkb "the switch performed the I1 Inval" true
    (c.Udma_engine.invals > invals_before);
  checki "the in-flight transfer was not aborted" 0 c.Udma_engine.aborts;
  Engine.run_until_idle m.M.engine;
  check Alcotest.bytes "data arrived intact" (fill_pattern 1024 21)
    (Bytes.sub store 0 1024);
  checki "one completion" 1
    (Udma_engine.counters udma).Udma_engine.completions;
  (* the descheduled process reschedules and can initiate afresh *)
  Scheduler.switch_to m p1;
  match
    Initiator.transfer cpu1 ~layout:m.M.layout ~src:(Initiator.Memory buf)
      ~dst:(Initiator.Device (Kernel.vdev_addr m ~index:0 ~offset:0))
      ~nbytes:1024 ()
  with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "post-reschedule transfer failed: %a" Initiator.pp_error e

(* Eviction pressure while requests sit in the hardware queue: the I4
   replacement scan consults the queue's per-frame reference counters,
   so neither the active transfer's frame nor a queued request's frame
   may be paged out until the engine drains. *)
let test_evict_during_queued_transfer () =
  let m, udma, _, store =
    machine_with_buffer
      ~mode:(Udma_engine.Queued { depth = 4 })
      ~mem_pages:16 ()
  in
  let proc = Scheduler.spawn m ~name:"p" in
  List.iter
    (fun i ->
      ignore
        (Syscall.map_device_proxy m proc ~vdev_index:i ~pdev_index:i
           ~writable:true))
    [ 0; 1 ];
  let b1 = Kernel.alloc_buffer m proc ~bytes:4096 in
  let b2 = Kernel.alloc_buffer m proc ~bytes:4096 in
  Kernel.write_user m proc ~vaddr:b1 (fill_pattern 4096 31);
  Kernel.write_user m proc ~vaddr:b2 (fill_pattern 4096 32);
  let page = Layout.page_size m.M.layout in
  let f1 = Option.get (Vm.frame_of_vpn m proc ~vpn:(b1 / page)) in
  let f2 = Option.get (Vm.frame_of_vpn m proc ~vpn:(b2 / page)) in
  let cpu = Kernel.user_cpu m proc in
  (* back-to-back initiations: the machine returns to Idle on accept,
     so the second request lands in the queue behind the first *)
  let issue dev buf =
    cpu.Initiator.store ~vaddr:(Kernel.vdev_addr m ~index:dev ~offset:0) 4096l;
    Status.decode (cpu.Initiator.load ~vaddr:(Layout.proxy_of m.M.layout buf))
  in
  checkb "first accepted" true (issue 0 b1).Status.started;
  checkb "second accepted" true (issue 1 b2).Status.started;
  checki "two outstanding" 2 (Udma_engine.outstanding udma);
  checkb "queued frame refcounted (I4)" true
    (Udma_engine.refcount udma ~frame:f2 > 0);
  (* allocation pressure: the clock scan must step around both frames *)
  let hog = Scheduler.spawn m ~name:"hog" in
  for _ = 1 to 6 do
    ignore (Kernel.alloc_buffer m hog ~bytes:4096)
  done;
  checkb "in-flight frame survived the pressure" true
    (Vm.frame_of_vpn m proc ~vpn:(b1 / page) = Some f1);
  checkb "queued frame survived the pressure" true
    (Vm.frame_of_vpn m proc ~vpn:(b2 / page) = Some f2);
  Engine.run_until_idle m.M.engine;
  check Alcotest.bytes "first transfer's data arrived" (fill_pattern 4096 31)
    (Bytes.sub store 0 4096);
  check Alcotest.bytes "queued transfer's data arrived" (fill_pattern 4096 32)
    (Bytes.sub store 4096 4096);
  checkb "frames free once the queue drains" false
    (Udma_engine.mem_frame_busy udma ~frame:f1
    || Udma_engine.mem_frame_busy udma ~frame:f2)

let () =
  Alcotest.run "udma_os"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "mem→dev transfer" `Quick test_udma_mem_to_dev;
          Alcotest.test_case "dev→mem transfer" `Quick test_udma_dev_to_mem;
          Alcotest.test_case "multi-page transfer" `Quick test_udma_multi_page;
          Alcotest.test_case "initiation ≈2.8µs" `Quick
            test_initiation_cost_is_2_8_us;
        ] );
      ( "invariant-I1",
        [
          Alcotest.test_case "inval on context switch" `Quick
            test_i1_inval_on_switch;
          Alcotest.test_case "no cross-process pairing" `Quick
            test_i1_no_cross_process_pairing;
        ] );
      ( "invariant-I3",
        [
          Alcotest.test_case "clean write-protects proxy" `Quick
            test_i3_clean_page_write_protects_proxy;
          Alcotest.test_case "read-only page never a destination" `Quick
            test_i3_readonly_page_never_destination;
        ] );
      ( "invariant-I2",
        [
          Alcotest.test_case "eviction invalidates proxy" `Quick
            test_i2_eviction_invalidates_proxy;
        ] );
      ( "invariant-I4",
        [
          Alcotest.test_case "in-flight page not evicted" `Quick
            test_i4_inflight_page_not_evicted;
          Alcotest.test_case "latched DEST protected, Inval clears" `Quick
            test_i4_destloaded_dest_protected;
        ] );
      ( "i3-union-policy",
        [
          Alcotest.test_case "no upgrade fault" `Quick test_union_no_upgrade_fault;
          Alcotest.test_case "data survives eviction" `Quick
            test_union_data_survives_eviction;
          Alcotest.test_case "clean keeps proxy writable" `Quick
            test_union_clean_keeps_proxy_writable;
        ] );
      ( "paging",
        [
          Alcotest.test_case "alloc across pages" `Quick test_paging_roundtrip;
          Alcotest.test_case "data survives eviction" `Quick
            test_demand_paging_preserves_data;
        ] );
      ( "cost-model", [ Alcotest.test_case "calibration" `Quick test_cost_model ] );
      ( "scheduler",
        [
          Alcotest.test_case "round robin" `Quick test_scheduler_round_robin;
          Alcotest.test_case "exit" `Quick test_scheduler_exit;
          Alcotest.test_case "switch flushes TLB" `Quick test_switch_flushes_tlb;
        ] );
      ( "syscall-kernel",
        [
          Alcotest.test_case "bad address / size" `Quick test_syscall_bad_address;
          Alcotest.test_case "unaligned access" `Quick test_kernel_unaligned_access;
          Alcotest.test_case "user copy across pages" `Quick
            test_kernel_user_copy_across_pages;
        ] );
      ( "vm-corners",
        [
          Alcotest.test_case "unmap cleans up" `Quick test_unmap_page_cleans_up;
          Alcotest.test_case "unmap pinned fails" `Quick test_unmap_pinned_fails;
          Alcotest.test_case "pin pages in swapped page" `Quick
            test_pin_pages_in_swapped_page;
          Alcotest.test_case "clean deferred during transfer" `Quick
            test_clean_deferred_during_transfer;
        ] );
      ( "churn",
        [
          Alcotest.test_case "deschedule during in-flight DMA" `Quick
            test_deschedule_during_inflight_dma;
          Alcotest.test_case "evict during queued transfer" `Quick
            test_evict_during_queued_transfer;
        ] );
      ( "initiator",
        [
          Alcotest.test_case "precompute matches optimistic" `Quick
            test_precompute_matches_optimistic;
          Alcotest.test_case "gather on basic hardware" `Quick
            test_gather_on_basic_hardware;
        ] );
      ( "traditional-dma",
        [
          Alcotest.test_case "pin strategy to device" `Quick
            test_traditional_dma_to_device;
          Alcotest.test_case "copy strategy to device" `Quick
            test_traditional_dma_copy_strategy;
          Alcotest.test_case "from device marks dirty" `Quick
            test_traditional_dma_from_device_marks_dirty;
          Alcotest.test_case "UDMA ≪ traditional cost" `Quick
            test_udma_vs_traditional_cost_gap;
        ] );
    ]
