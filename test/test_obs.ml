(* Unit + property tests for the observability layer (lib/obs): JSON
   emitter/parser, metrics histograms, the report schema, and the
   profiler invariant sum(categories) = Engine.now. *)

module Json = Udma_obs.Json
module Event = Udma_obs.Event
module Metrics = Udma_obs.Metrics
module Profiler = Udma_obs.Profiler
module Report = Udma_obs.Report
module Engine = Udma_sim.Engine

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string

(* ---------- Json ---------- *)

let test_json_emit () =
  let doc =
    Json.Obj
      [
        ("a", Json.Int 1);
        ("b", Json.List [ Json.Str "x"; Json.Bool true; Json.Null ]);
        ("c", Json.Float 1.5);
      ]
  in
  checks "compact" {|{"a":1,"b":["x",true,null],"c":1.5}|} (Json.to_string doc)

let test_json_escapes () =
  checks "escaped" {|"a\"b\\c\nd"|} (Json.to_string (Json.Str "a\"b\\c\nd"))

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "udma-bench/1");
        ("n", Json.Int (-42));
        ("x", Json.Float 0.25);
        ("flags", Json.List [ Json.Bool false; Json.Null ]);
        ("nested", Json.Obj [ ("deep", Json.List [ Json.Int 1; Json.Int 2 ]) ]);
        ("text", Json.Str "line1\nline2 \"quoted\" \\slash");
      ]
  in
  (* emit (indented and compact), reparse, compare structurally *)
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok doc' -> checkb "roundtrip" true (doc = doc')
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    [ Json.to_string doc; Json.to_string ~indent:2 doc ]

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted invalid JSON: %s" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "nul"; "\"unterminated"; "1 2" ]

let test_json_accessors () =
  let doc =
    Json.Obj
      [ ("outer", Json.Obj [ ("inner", Json.List [ Json.Int 7 ]) ]) ]
  in
  (match Json.path [ "outer"; "inner" ] doc with
  | Some (Json.List [ Json.Int 7 ]) -> ()
  | _ -> Alcotest.fail "path lookup");
  checkb "number of int" true (Json.number (Json.Int 3) = Some 3.0);
  checkb "string_" true (Json.string_ (Json.Str "s") = Some "s")

(* ---------- Metrics histograms ---------- *)

let test_histogram_edges () =
  let m = Metrics.create () in
  (* default buckets are powers of two 1..65536; a value lands in the
     first bucket whose edge is >= the value *)
  Metrics.observe m "h" 1;
  Metrics.observe m "h" 2;
  Metrics.observe m "h" 3;
  (* 3 -> bucket le_4 *)
  Metrics.observe m "h" 65536;
  Metrics.observe m "h" 65537;
  (* -> overflow *)
  Metrics.observe m "h" 0;
  (* 0 <= 1 -> first bucket *)
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      checki "count" 6 h.Metrics.count;
      checki "sum" (1 + 2 + 3 + 65536 + 65537 + 0) h.Metrics.sum;
      checki "overflow" 1 h.Metrics.overflow;
      let bucket edge = List.assoc edge h.Metrics.buckets in
      checki "le_1 holds 0 and 1" 2 (bucket 1);
      checki "le_2 holds 2" 1 (bucket 2);
      checki "le_4 holds 3" 1 (bucket 4);
      checki "le_65536 holds 65536" 1 (bucket 65536)

let test_histogram_custom_buckets () =
  let m = Metrics.create () in
  Metrics.observe m ~buckets:[ 10; 100 ] "h" 5;
  Metrics.observe m ~buckets:[ 10; 100 ] "h" 10;
  Metrics.observe m ~buckets:[ 10; 100 ] "h" 11;
  Metrics.observe m ~buckets:[ 10; 100 ] "h" 1000;
  (match Metrics.histogram m "h" with
  | Some h ->
      checki "le_10" 2 (List.assoc 10 h.Metrics.buckets);
      checki "le_100" 1 (List.assoc 100 h.Metrics.buckets);
      checki "overflow" 1 h.Metrics.overflow
  | None -> Alcotest.fail "histogram missing");
  (* non-increasing edges are a programming error *)
  checkb "bad buckets rejected" true
    (match Metrics.observe m ~buckets:[ 10; 10 ] "h2" 1 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_histogram_percentile () =
  let m = Metrics.create () in
  (* 100 samples in bucket <=10, 10 in <=100, 1 overflow *)
  for _ = 1 to 100 do Metrics.observe m ~buckets:[ 10; 100 ] "h" 5 done;
  for _ = 1 to 10 do Metrics.observe m ~buckets:[ 10; 100 ] "h" 50 done;
  Metrics.observe m ~buckets:[ 10; 100 ] "h" 1000;
  (match Metrics.histogram m "h" with
  | Some h ->
      checkb "p50 in first bucket" true (Metrics.percentile h 50.0 = Some 10);
      checkb "p95 in second bucket" true (Metrics.percentile h 95.0 = Some 100);
      checkb "p100 lands in overflow (edge+1)" true
        (Metrics.percentile h 100.0 = Some 101);
      checkb "p out of range rejected" true
        (match Metrics.percentile h 0.0 with
        | _ -> false
        | exception Invalid_argument _ -> true)
  | None -> Alcotest.fail "histogram missing");
  (* empty histogram has no percentile *)
  Metrics.observe m "h2" 1;
  (match Metrics.histogram m "h2" with
  | Some h2 ->
      let empty = { h2 with Metrics.count = 0; buckets = []; overflow = 0 } in
      checkb "empty histogram" true (Metrics.percentile empty 50.0 = None)
  | None -> Alcotest.fail "histogram missing")

(* ---------- Metrics.percentile vs Tenants.percentile agreement ----------

   Two percentile definitions live in the tree: the bucketed
   upper-bound estimate over histograms (Metrics) and the exact
   nearest-rank over a sorted sample (Tenants, also mirrored by the
   app-layer Slo module). Both use rank = ceil(p/100 * n), so when the
   histogram's bucket edges enumerate every distinct sample value the
   two must agree exactly; with a coarser ladder Metrics may only
   round the answer up to the next edge, never down. *)

module Tenants = Udma_protect.Tenants

let metrics_percentile_of_samples samples p =
  let distinct =
    List.sort_uniq compare samples
  in
  let m = Metrics.create () in
  List.iter (fun v -> Metrics.observe m ~buckets:distinct "h" v) samples;
  match Metrics.histogram m "h" with
  | Some h -> Metrics.percentile h p
  | None -> None

let tenants_percentile_of_samples samples p =
  let sorted = Array.of_list (List.sort compare samples) in
  Tenants.percentile sorted p

let test_percentile_agreement_exact () =
  let samples = [ 7; 1; 1; 3; 9; 3; 3; 200; 42; 5 ] in
  List.iter
    (fun p ->
      checkb
        (Printf.sprintf "exact-edge agreement at p%.1f" p)
        true
        (metrics_percentile_of_samples samples p
        = Some (tenants_percentile_of_samples samples p)))
    [ 1.0; 25.0; 50.0; 90.0; 95.0; 99.0; 99.9; 100.0 ];
  (* single observation: every percentile is that observation *)
  checkb "singleton" true
    (metrics_percentile_of_samples [ 17 ] 50.0
    = Some (tenants_percentile_of_samples [ 17 ] 50.0))

let test_percentile_divergence_coarse_buckets () =
  (* with a coarse ladder the bucketed answer rounds up: 3 samples all
     below the first edge report the edge, not the exact value *)
  let m = Metrics.create () in
  List.iter (fun v -> Metrics.observe m ~buckets:[ 100; 200 ] "h" v) [ 3; 5; 9 ];
  match Metrics.histogram m "h" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
      checkb "bucketed p99 rounds up to edge" true
        (Metrics.percentile h 99.0 = Some 100);
      checki "exact p99 is the sample max" 9
        (tenants_percentile_of_samples [ 3; 5; 9 ] 99.0)

let prop_percentile_agreement =
  let gen =
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (int_range 1 65536))
        (int_range 1 1000))
  in
  QCheck.Test.make ~count:300
    ~name:"exact-edge histogram percentile = nearest-rank percentile" gen
    (fun (samples, pmil) ->
      let p = float_of_int pmil /. 10.0 in
      metrics_percentile_of_samples samples p
      = Some (tenants_percentile_of_samples samples p))
  |> QCheck_alcotest.to_alcotest

let prop_percentile_upper_bound =
  (* on the default power-of-two ladder the bucketed estimate never
     under-reports the exact percentile (values kept within the ladder
     so the overflow bucket stays out of play) *)
  let gen =
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 60) (int_range 1 65536))
        (int_range 1 1000))
  in
  QCheck.Test.make ~count:300
    ~name:"default-ladder percentile upper-bounds the exact one" gen
    (fun (samples, pmil) ->
      let p = float_of_int pmil /. 10.0 in
      let m = Metrics.create () in
      List.iter (fun v -> Metrics.observe m "h" v) samples;
      match Metrics.histogram m "h" with
      | None -> false
      | Some h -> (
          match Metrics.percentile h p with
          | None -> false
          | Some est -> est >= tenants_percentile_of_samples samples p))
  |> QCheck_alcotest.to_alcotest

let test_counters_and_gauges () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.add m "c" 4;
  checki "counter" 5 (Metrics.get m "c");
  checki "absent counter" 0 (Metrics.get m "zzz");
  Metrics.set_gauge m "g" 2.5;
  checkb "gauge" true (Metrics.gauge m "g" = Some 2.5)

(* The router reports its FIFO depth through two channels: the typed
   [Link_wait] trace event and the [net.link.depth] histogram. Both
   must describe the same thing — the post-claim depth, i.e. including
   the packet that just claimed the link. Two back-to-back packets on
   one link: the histogram sees depths 1 then 2, and the one Link_wait
   event (only waiters are traced) carries depth 2. *)
let test_link_wait_depth_matches_metric () =
  let module Router = Udma_shrimp.Router in
  let module Packet = Udma_shrimp.Packet in
  let seen = ref [] in
  Udma_sim.Trace.set_global_sink
    (Some
       (fun (e : Event.t) ->
         match e.Event.payload with
         | Event.Link_wait { depth; _ } -> seen := depth :: !seen
         | _ -> ()));
  Fun.protect
    ~finally:(fun () -> Udma_sim.Trace.set_global_sink None)
    (fun () ->
      let engine = Engine.create () in
      let r =
        Router.create ~engine ~nodes:4
          ~config:{ Router.default_config with Router.link_contention = true }
          ()
      in
      Router.register r ~node_id:1 (fun _ -> ());
      let pkt seq =
        { Packet.src_node = 0; dst_node = 1; dst_paddr = 0;
          payload = Bytes.make 400 'x'; seq }
      in
      Router.send r (pkt 0);
      Router.send r (pkt 1);
      Engine.run_until_idle engine;
      checkb "one waiter traced" true (!seen = [ 2 ]);
      match Metrics.histogram (Engine.metrics engine) "net.link.depth" with
      | None -> Alcotest.fail "net.link.depth histogram missing"
      | Some h ->
          checki "one observation per claim" 2 h.Metrics.count;
          (* depths 1 then 2: the trace's depth=2 is the histogram's
             second sample, not a pre-claim depth=1 *)
          checki "sum of post-claim depths" 3 h.Metrics.sum)

(* ---------- Report: the golden schema ---------- *)

let test_report_golden_json () =
  let profiler = Profiler.create () in
  Profiler.charge profiler ~cat:Profiler.Kernel 10;
  Profiler.charge profiler ~cat:Profiler.Dma 30;
  let report =
    Report.make ~id:"e0_golden" ~title:"golden"
      ~meta:[ ("trials", Report.Int 2) ]
      ~columns:[ ("size", "size"); ("pct", "%") ]
      ~breakdown:(Profiler.snapshot profiler)
      [
        [ ("size", Report.Int 512); ("pct", Report.Float 51.0) ];
        [ ("size", Report.Int 4096); ("pct", Report.Float 96.0) ];
      ]
  in
  let doc = Report.bench_json ~meta:[ ("seed", Report.Int 42) ] [ report ] in
  let golden =
    {|{"schema":"udma-bench/1","meta":{"seed":42},"experiments":[{"id":"e0_golden","title":"golden","meta":{"trials":2},"rows":[{"size":512,"pct":51.0},{"size":4096,"pct":96.0}],"breakdown":{"user_ref":0,"kernel":10,"dma":30,"wire":0,"device":0,"idle":0,"total":40}}]}|}
  in
  checks "bench_json golden" golden (Json.to_string doc);
  (* and it must reparse *)
  match Json.parse (Json.to_string ~indent:2 doc) with
  | Ok doc' -> checkb "reparses" true (doc = doc')
  | Error msg -> Alcotest.failf "golden does not reparse: %s" msg

let test_report_schema_fields () =
  (* every experiment report carries id/title/rows, and the breakdown
     sums match the declared total *)
  let reports =
    [
      Udma_workloads.Runner.report_costs ();
      Udma_workloads.Runner.report_proxy_faults ();
    ]
  in
  List.iter
    (fun (r : Report.t) ->
      let doc = Report.to_json r in
      checkb "has id" true (Json.member "id" doc <> None);
      checkb "has rows" true
        (match Json.member "rows" doc with
        | Some (Json.List (_ :: _)) -> true
        | _ -> false);
      match Json.path [ "breakdown"; "total" ] doc with
      | Some (Json.Int total) ->
          let parts =
            List.fold_left
              (fun acc cat ->
                match
                  Json.path [ "breakdown"; Profiler.category_name cat ] doc
                with
                | Some (Json.Int n) -> acc + n
                | _ -> acc)
              0 Profiler.categories
          in
          checki "breakdown sums to total" total parts;
          checkb "experiment consumed cycles" true (total > 0)
      | _ -> Alcotest.fail "missing breakdown.total")
    reports

(* ---------- Events ---------- *)

let test_event_json () =
  let ev =
    Event.make ~time:7 Event.Udma
      (Event.Sm_transition { from_ = "Idle"; to_ = "SrcReady"; cause = "store" })
  in
  let doc = Event.to_json ev in
  checkb "time field" true (Json.member "t" doc = Some (Json.Int 7));
  checkb "sub field" true (Json.member "sub" doc = Some (Json.Str "udma"));
  checkb "kind field" true
    (Json.member "kind" doc = Some (Json.Str "sm_transition"))

let test_jsonl_sink () =
  let path = Filename.temp_file "udma_obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      let sink = Event.jsonl_sink oc in
      sink
        (Event.make ~time:1 Event.Dma
           (Event.Dma_burst { src = 0; dst = 0x1000; nbytes = 64; duration = 16 }));
      sink (Event.make ~time:2 Event.Sim (Event.Note "done"));
      close_out oc;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      let lines = List.rev !lines in
      checki "one line per event" 2 (List.length lines);
      List.iter
        (fun line ->
          match Json.parse line with
          | Ok _ -> ()
          | Error msg -> Alcotest.failf "bad JSON line %s: %s" line msg)
        lines)

(* ---------- Profiler: the sum invariant, as a qcheck property ---------- *)

let qtest = QCheck_alcotest.to_alcotest

(* random program against the engine: advances, scheduled events (with
   and without a category), nested with_category sections *)
let prop_profiler_sums_to_now =
  let gen =
    QCheck.(
      list_of_size Gen.(int_range 1 40)
        (triple (int_bound 5) (int_bound 200) (int_bound 50)))
  in
  QCheck.Test.make ~count:200
    ~name:"profiler category totals always sum to Engine.now" gen (fun ops ->
      let engine = Engine.create () in
      List.iter
        (fun (kind, a, b) ->
          match kind with
          | 0 -> Engine.advance engine a
          | 1 ->
              Engine.with_category engine Engine.Profiler.User_ref (fun () ->
                  Engine.advance engine b)
          | 2 ->
              Engine.schedule engine ~delay:a (fun e -> Engine.advance e (b / 2))
          | 3 ->
              Engine.schedule engine ~cat:Engine.Profiler.Dma ~delay:a
                (fun _ -> ())
          | 4 ->
              Engine.with_category engine Engine.Profiler.Kernel (fun () ->
                  Engine.advance engine a;
                  Engine.with_category engine Engine.Profiler.Wire (fun () ->
                      Engine.advance engine b))
          | _ -> Engine.run_until engine (Engine.now engine + a))
        ops;
      Engine.run_until_idle engine;
      Profiler.sum (Engine.profile engine) = Engine.now engine)
  |> qtest

(* the same invariant over a real workload harness: every engine a
   report tracked ends with totals summing to its elapsed cycles *)
let test_report_breakdown_matches_engines () =
  let r = Udma_workloads.Runner.report_costs () in
  match r.Report.breakdown with
  | None -> Alcotest.fail "report has no breakdown"
  | Some totals -> checkb "non-empty" true (Profiler.sum totals > 0)

let () =
  Alcotest.run "udma_obs"
    [
      ( "json",
        [
          Alcotest.test_case "emit" `Quick test_json_emit;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "custom buckets" `Quick
            test_histogram_custom_buckets;
          Alcotest.test_case "percentile" `Quick test_histogram_percentile;
          Alcotest.test_case "counters and gauges" `Quick
            test_counters_and_gauges;
          Alcotest.test_case "percentile agreement on exact edges" `Quick
            test_percentile_agreement_exact;
          Alcotest.test_case "percentile divergence on coarse buckets" `Quick
            test_percentile_divergence_coarse_buckets;
          prop_percentile_agreement;
          prop_percentile_upper_bound;
          Alcotest.test_case "link wait depth matches metric" `Quick
            test_link_wait_depth_matches_metric;
        ] );
      ( "report",
        [
          Alcotest.test_case "golden bench_json" `Quick test_report_golden_json;
          Alcotest.test_case "schema fields + breakdown sum" `Quick
            test_report_schema_fields;
          Alcotest.test_case "breakdown present" `Quick
            test_report_breakdown_matches_engines;
        ] );
      ( "events",
        [
          Alcotest.test_case "event json" `Quick test_event_json;
          Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
        ] );
      ("profiler", [ prop_profiler_sums_to_now ]);
    ]
