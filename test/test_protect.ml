(* Unit tests for the protection backends (lib/protect): the decode
   parity that makes the proxy backend a drop-in for the old NIPT, the
   kernel grant/revoke path and its per-backend costs, the IOMMU's
   IOTLB, the capability revocation taxonomy, ownership enforcement,
   the planted P1/P2 mutations as seen by the I5 oracle, and the
   tenant-scale harness driving all of it. *)

module Backend = Udma_protect.Backend
module Tenants = Udma_protect.Tenants

let c = Backend.default_costs

let mk ?iotlb_entries kind = Backend.create ?iotlb_entries kind ~entries:16 ()

let fault =
  Alcotest.testable
    (fun ppf f -> Fmt.string ppf (Backend.fault_name f))
    ( = )

let auth_ok t ~tenant ~index =
  match Backend.authorize t ~tenant ~index with
  | Ok (e, cost) -> (e, cost)
  | Error (f, _) ->
      Alcotest.failf "authorize tenant=%d index=%d unexpectedly faulted: %s"
        tenant index (Backend.fault_name f)

let auth_err t ~tenant ~index =
  match Backend.authorize t ~tenant ~index with
  | Ok _ ->
      Alcotest.failf "authorize tenant=%d index=%d unexpectedly succeeded"
        tenant index
  | Error (f, cost) -> (f, cost)

(* ---------- datapath decode: NIPT parity ---------- *)

let test_validate_bits () =
  List.iter
    (fun kind ->
      let t = mk kind in
      let v = Backend.validate_bits t ~page_size:4096 in
      (* unconfigured, aligned: mapping bit only *)
      Alcotest.(check int) "no mapping" Backend.err_no_mapping
        (v ~dev_addr:0 ~nbytes:64);
      (* misaligned address and count each raise bit 0 *)
      Alcotest.(check int) "misaligned addr"
        (Backend.err_misaligned lor Backend.err_no_mapping)
        (v ~dev_addr:2 ~nbytes:64);
      Alcotest.(check int) "misaligned count"
        (Backend.err_misaligned lor Backend.err_no_mapping)
        (v ~dev_addr:0 ~nbytes:3);
      ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:1 ~dst_frame:7);
      Alcotest.(check int) "clean after grant" 0 (v ~dev_addr:0 ~nbytes:64);
      Alcotest.(check int) "misalignment still flagged on a granted page"
        Backend.err_misaligned
        (v ~dev_addr:4 ~nbytes:6))
    Backend.all_kinds

let test_grant_revoke () =
  List.iter
    (fun kind ->
      let t = mk kind in
      Alcotest.(check int) "empty" 0 (Backend.valid_count t);
      ignore (Backend.grant t ~owner:3 ~index:5 ~dst_node:2 ~dst_frame:9);
      (match Backend.decode t ~index:5 with
      | Some e ->
          Alcotest.(check int) "owner" 3 e.Backend.owner;
          Alcotest.(check int) "dst_node" 2 e.Backend.dst_node;
          Alcotest.(check int) "dst_frame" 9 e.Backend.dst_frame
      | None -> Alcotest.fail "granted entry does not decode");
      Alcotest.(check int) "one valid" 1 (Backend.valid_count t);
      ignore (Backend.revoke t ~index:5);
      Alcotest.(check bool) "revoked entry decodes to None" true
        (Backend.decode t ~index:5 = None);
      Alcotest.(check int) "revoking an empty index is free" 0
        (Backend.revoke t ~index:5);
      Alcotest.(check bool) "out-of-range decode is None" true
        (Backend.decode t ~index:99 = None))
    Backend.all_kinds

let test_control_path_costs () =
  let grant_cost kind =
    Backend.grant (mk kind) ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:0
  in
  let revoke_cost kind =
    let t = mk kind in
    ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:0);
    Backend.revoke t ~index:0
  in
  Alcotest.(check int) "proxy grant is free (caller pays the syscall)" 0
    (grant_cost Backend.Proxy);
  Alcotest.(check int) "iommu grant = map" c.Backend.iommu_map
    (grant_cost Backend.Iommu);
  Alcotest.(check int) "capability grant" c.Backend.cap_grant
    (grant_cost Backend.Capability);
  Alcotest.(check int) "proxy revoke is free" 0 (revoke_cost Backend.Proxy);
  Alcotest.(check int) "iommu revoke = unmap + shootdown"
    c.Backend.iommu_unmap (revoke_cost Backend.Iommu);
  Alcotest.(check int) "capability revoke" c.Backend.cap_revoke
    (revoke_cost Backend.Capability)

let test_revoke_owner () =
  List.iter
    (fun kind ->
      let t = mk kind in
      ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:0);
      ignore (Backend.grant t ~owner:2 ~index:1 ~dst_node:0 ~dst_frame:1);
      ignore (Backend.grant t ~owner:1 ~index:2 ~dst_node:0 ~dst_frame:2);
      ignore (Backend.revoke_owner t ~owner:1);
      Alcotest.(check bool) "owner 1's grants are gone" true
        (Backend.decode t ~index:0 = None && Backend.decode t ~index:2 = None);
      Alcotest.(check bool) "owner 2's grant survives" true
        (Backend.decode t ~index:1 <> None))
    Backend.all_kinds

(* ---------- ownership enforcement ---------- *)

let test_owner_enforcement () =
  List.iter
    (fun kind ->
      let t = mk kind in
      ignore (Backend.grant t ~owner:7 ~index:3 ~dst_node:1 ~dst_frame:4);
      let e, _ = auth_ok t ~tenant:7 ~index:3 in
      Alcotest.(check int) "owner authorizes" 7 e.Backend.owner;
      let f, _ = auth_err t ~tenant:8 ~index:3 in
      Alcotest.check fault "cross-tenant access is Not_owner"
        Backend.Not_owner f;
      (* negative tenant = the MMU-verified NI datapath: per-process
         proxy mappings already carried the identity check *)
      ignore (auth_ok t ~tenant:(-1) ~index:3);
      let f, _ = auth_err t ~tenant:7 ~index:9 in
      Alcotest.check fault "unconfigured page is No_mapping"
        Backend.No_mapping f;
      Alcotest.(check bool) "oracle stays clean under legal traffic" true
        (Backend.check t = None))
    Backend.all_kinds

let test_capability_revoked_fault () =
  let t = mk Backend.Capability in
  ignore (Backend.grant t ~owner:1 ~index:2 ~dst_node:0 ~dst_frame:0);
  ignore (Backend.revoke t ~index:2);
  let f, cost = auth_err t ~tenant:1 ~index:2 in
  Alcotest.check fault "presenting a revoked capability is Revoked"
    Backend.Revoked f;
  Alcotest.(check int) "the failed check still costs the validation"
    c.Backend.cap_check cost;
  (* the other backends report the same sequence as a plain miss *)
  List.iter
    (fun kind ->
      let t = mk kind in
      ignore (Backend.grant t ~owner:1 ~index:2 ~dst_node:0 ~dst_frame:0);
      ignore (Backend.revoke t ~index:2);
      let f, _ = auth_err t ~tenant:1 ~index:2 in
      Alcotest.check fault "revoke then use is No_mapping" Backend.No_mapping
        f)
    [ Backend.Proxy; Backend.Iommu ];
  (* re-granting revives the capability *)
  ignore (Backend.grant t ~owner:1 ~index:2 ~dst_node:0 ~dst_frame:0);
  ignore (auth_ok t ~tenant:1 ~index:2)

(* ---------- the IOTLB ---------- *)

let test_iotlb_hit_miss () =
  let t = mk ~iotlb_entries:2 Backend.Iommu in
  for i = 0 to 2 do
    ignore (Backend.grant t ~owner:1 ~index:i ~dst_node:0 ~dst_frame:i)
  done;
  let _, cost = auth_ok t ~tenant:1 ~index:0 in
  Alcotest.(check int) "cold access walks" c.Backend.iotlb_walk cost;
  let _, cost = auth_ok t ~tenant:1 ~index:0 in
  Alcotest.(check int) "second access hits" c.Backend.iotlb_hit cost;
  (* touch two more pages: the 2-entry IOTLB must evict page 0 (LRU) *)
  ignore (auth_ok t ~tenant:1 ~index:1);
  ignore (auth_ok t ~tenant:1 ~index:2);
  let _, cost = auth_ok t ~tenant:1 ~index:0 in
  Alcotest.(check int) "evicted line walks again" c.Backend.iotlb_walk cost;
  let s = Backend.stats t in
  Alcotest.(check int) "hit count" 1 s.Backend.st_iotlb_hits;
  Alcotest.(check int) "miss count" 4 s.Backend.st_iotlb_misses

let test_iotlb_shootdown () =
  let t = mk ~iotlb_entries:4 Backend.Iommu in
  ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:0);
  ignore (auth_ok t ~tenant:1 ~index:0) (* line is now cached *);
  ignore (Backend.revoke t ~index:0);
  let f, cost = auth_err t ~tenant:1 ~index:0 in
  Alcotest.check fault "unmap shoots the line down" Backend.No_mapping f;
  Alcotest.(check int) "the miss pays the walk" c.Backend.iotlb_walk cost;
  (* remap with a different frame: the grant path must not leave the
     old translation cached *)
  ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:5);
  ignore (auth_ok t ~tenant:1 ~index:0);
  ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:6);
  let e, _ = auth_ok t ~tenant:1 ~index:0 in
  Alcotest.(check int) "remap is visible immediately" 6 e.Backend.dst_frame;
  Alcotest.(check bool) "oracle clean" true (Backend.check t = None)

(* ---------- the planted bugs, as the I5 oracle sees them ---------- *)

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_mutation_owner_skip () =
  List.iter
    (fun kind ->
      let t = mk kind in
      ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:0);
      Backend.set_mutation t (Some (Backend.Owner_skip 0));
      (* the buggy kernel lets tenant 2 through on page 0... *)
      ignore (auth_ok t ~tenant:2 ~index:0);
      (match Backend.check t with
      | Some msg ->
          Alcotest.(check bool)
            (Backend.kind_name kind ^ ": breach names the leak") true
            (contains msg "isolation leak")
      | None ->
          Alcotest.failf "%s: P1 leak not caught by check"
            (Backend.kind_name kind));
      (* ...but only on the planted page *)
      ignore (Backend.grant t ~owner:1 ~index:1 ~dst_node:0 ~dst_frame:1);
      let f, _ = auth_err t ~tenant:2 ~index:1 in
      Alcotest.check fault "other pages still enforce" Backend.Not_owner f)
    Backend.all_kinds

let test_mutation_stale_revoke () =
  List.iter
    (fun kind ->
      let t = mk ~iotlb_entries:4 kind in
      ignore (Backend.grant t ~owner:1 ~index:0 ~dst_node:0 ~dst_frame:0);
      (* Iommu's datapath state is the IOTLB: cache the line first *)
      ignore (auth_ok t ~tenant:1 ~index:0);
      Backend.set_mutation t (Some Backend.Stale_revoke);
      ignore (Backend.revoke t ~index:0);
      match Backend.check t with
      | Some msg ->
          Alcotest.(check bool)
            (Backend.kind_name kind ^ ": stale entry reported") true
            (contains msg "survived")
      | None ->
          Alcotest.failf "%s: P2 stale entry not caught by check"
            (Backend.kind_name kind))
    Backend.all_kinds

(* ---------- the tenant-scale harness ---------- *)

let small kind =
  {
    Tenants.default_config with
    Tenants.kind;
    tenants = 32;
    slots = 8;
    ops = 3_000;
  }

let test_tenants_smoke () =
  List.iter
    (fun kind ->
      let r = Tenants.run (small kind) in
      let name = Backend.kind_name kind in
      Alcotest.(check bool) (name ^ ": sends happened") true (r.Tenants.sends > 0);
      Alcotest.(check bool) (name ^ ": percentiles are ordered") true
        (r.Tenants.p50 <= r.Tenants.p99 && r.Tenants.p99 <= r.Tenants.p999);
      Alcotest.(check bool) (name ^ ": mean within range") true
        (float_of_int r.Tenants.p50 <= r.Tenants.mean *. 2.0);
      Alcotest.(check int)
        (name ^ ": every rogue probe was denied")
        r.Tenants.rogue_probes r.Tenants.rogue_denied;
      Alcotest.(check int) (name ^ ": no isolation breach") 0
        r.Tenants.isolation_breaches;
      Alcotest.(check bool) (name ^ ": overcommit forced grants") true
        (r.Tenants.grants > 0))
    Backend.all_kinds

let test_tenants_deterministic () =
  List.iter
    (fun kind ->
      let a = Tenants.run (small kind) and b = Tenants.run (small kind) in
      if a <> b then
        Alcotest.failf "%s: two runs of the same config differ"
          (Backend.kind_name kind))
    Backend.all_kinds

let test_tenants_identical_traffic () =
  (* the slot algebra and RNG draws are backend-independent: only
     cycle costs and the fault taxonomy may differ *)
  let runs = List.map (fun k -> Tenants.run (small k)) Backend.all_kinds in
  match runs with
  | r0 :: rest ->
      List.iter
        (fun r ->
          Alcotest.(check int) "same sends" r0.Tenants.sends r.Tenants.sends;
          Alcotest.(check int) "same grants" r0.Tenants.grants
            r.Tenants.grants;
          Alcotest.(check int) "same rogue probes" r0.Tenants.rogue_probes
            r.Tenants.rogue_probes;
          Alcotest.(check int) "same faults" r0.Tenants.faults
            r.Tenants.faults)
        rest
  | [] -> assert false

let test_tenants_config_validation () =
  let bad f =
    match Tenants.run (f (small Backend.Proxy)) with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "invalid config accepted"
  in
  bad (fun c -> { c with Tenants.tenants = 0 });
  bad (fun c -> { c with Tenants.slots = 0 });
  bad (fun c -> { c with Tenants.ops = 0 });
  bad (fun c -> { c with Tenants.churn_pct = -1 });
  bad (fun c -> { c with Tenants.churn_pct = 60; evict_pct = 30; rogue_pct = 20 })

let test_percentile_small_samples () =
  let p = Tenants.percentile in
  Alcotest.(check int) "empty sample" 0 (p [||] 99.9);
  Alcotest.(check int) "singleton p50" 7 (p [| 7 |] 50.);
  Alcotest.(check int) "singleton p999" 7 (p [| 7 |] 99.9);
  let ten = Array.init 10 (fun i -> i + 1) in
  (* nearest rank: ceil(p/100 * 10) gives ranks 5, 10, 10 *)
  Alcotest.(check int) "p50 of 1..10" 5 (p ten 50.);
  Alcotest.(check int) "p99 of 1..10 is the max" 10 (p ten 99.);
  Alcotest.(check int) "p999 of 1..10 is the max" 10 (p ten 99.9);
  (* below 1000 samples p999's rank clamps to n: always the maximum *)
  List.iter
    (fun n ->
      let s = Array.init n (fun i -> 2 * i) in
      Alcotest.(check int)
        (Printf.sprintf "p999 of n=%d is the sample max" n)
        (2 * (n - 1))
        (p s 99.9))
    [ 2; 99; 500; 999 ];
  (* with enough samples the rank pulls back off the maximum *)
  let many = Array.init 10_000 (fun i -> i) in
  Alcotest.(check int) "p999 of n=10000 is rank 9991" 9990 (p many 99.9);
  Alcotest.(check int) "p100 is the max" 9999 (p many 100.)

let test_tenants_fault_paths () =
  List.iter
    (fun kind ->
      let t = Tenants.create (small kind) in
      ignore (Tenants.attach t ~tenant:0);
      (match Tenants.initiate t ~tenant:0 with
      | Ok _ -> ()
      | Error _ -> Alcotest.fail "attached tenant faulted");
      Tenants.deschedule t ~tenant:0;
      (match Tenants.initiate t ~tenant:0 with
      | Error (Tenants.Invalidated, _) -> ()
      | Ok _ | Error _ ->
          Alcotest.fail "deschedule did not invalidate the latched initiation");
      ignore (Tenants.attach t ~tenant:0);
      ignore (Tenants.revoke_tenant t ~tenant:0);
      (match Tenants.initiate t ~tenant:0 with
      | Error (Tenants.Backend_fault _, _) -> ()
      | Ok _ | Error _ -> Alcotest.fail "revoked tenant did not fault");
      Alcotest.(check bool) "rogue probe denied" true
        (Tenants.rogue_probe t ~rogue:999 ~slot:0);
      Alcotest.(check bool) "oracle clean at the end" true
        (Backend.check (Tenants.backend t) = None))
    Backend.all_kinds

let () =
  Alcotest.run "protect"
    [
      ( "backend",
        [
          Alcotest.test_case "validate_bits matches the old NIPT" `Quick
            test_validate_bits;
          Alcotest.test_case "grant / decode / revoke round-trip" `Quick
            test_grant_revoke;
          Alcotest.test_case "control-path costs per backend" `Quick
            test_control_path_costs;
          Alcotest.test_case "revoke_owner tears down one tenant only" `Quick
            test_revoke_owner;
          Alcotest.test_case "ownership is enforced at initiation" `Quick
            test_owner_enforcement;
          Alcotest.test_case "capability teardown faults as Revoked" `Quick
            test_capability_revoked_fault;
          Alcotest.test_case "IOTLB: hit, miss, LRU eviction" `Quick
            test_iotlb_hit_miss;
          Alcotest.test_case "IOTLB: unmap and remap shoot lines down" `Quick
            test_iotlb_shootdown;
          Alcotest.test_case "P1 (owner skip) is caught by the I5 oracle"
            `Quick test_mutation_owner_skip;
          Alcotest.test_case "P2 (stale revoke) is caught by the I5 oracle"
            `Quick test_mutation_stale_revoke;
        ] );
      ( "tenants",
        [
          Alcotest.test_case "multi-tenant smoke, all backends" `Quick
            test_tenants_smoke;
          Alcotest.test_case "runs are deterministic" `Quick
            test_tenants_deterministic;
          Alcotest.test_case "backends face identical traffic" `Quick
            test_tenants_identical_traffic;
          Alcotest.test_case "config validation" `Quick
            test_tenants_config_validation;
          Alcotest.test_case "nearest-rank p999 on small samples" `Quick
            test_percentile_small_samples;
          Alcotest.test_case "deterministic fault paths" `Quick
            test_tenants_fault_paths;
        ] );
    ]
