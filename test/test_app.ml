(* Unit + property tests for the application workload suite (lib/app,
   E16): SLO statistics and knee detection, the shared fabric (service
   model, zero-copy delivery, chaos drain), and the three apps — KV,
   halo exchange, bursty RPC — including determinism and the VC
   head-of-line win at the hotspot point. *)

module Slo = Udma_app.Slo
module Fabric = Udma_app.Fabric
module Kv = Udma_app.Kv
module Halo = Udma_app.Halo
module Rpc = Udma_app.Rpc
module Tenants = Udma_protect.Tenants

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let qtest = QCheck_alcotest.to_alcotest

(* ---------- Slo: percentiles and stats ---------- *)

let test_slo_percentile () =
  checki "empty sample" 0 (Slo.percentile [||] 50.0);
  checki "singleton p50" 7 (Slo.percentile [| 7 |] 50.0);
  checki "singleton p999" 7 (Slo.percentile [| 7 |] 99.9);
  let s = [| 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 |] in
  checki "p50 of 1..10" 5 (Slo.percentile s 50.0);
  checki "p90 of 1..10" 9 (Slo.percentile s 90.0);
  checki "p99 of 1..10" 10 (Slo.percentile s 99.0);
  checki "p100 of 1..10" 10 (Slo.percentile s 100.0)

let prop_slo_matches_tenants =
  (* the app layer promises the exact Tenants convention *)
  let gen =
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 50) (int_range 0 10_000))
        (int_range 1 1000))
  in
  QCheck.Test.make ~count:300 ~name:"Slo.percentile = Tenants.percentile" gen
    (fun (samples, pmil) ->
      let p = float_of_int pmil /. 10.0 in
      let sorted = Array.of_list (List.sort compare samples) in
      Slo.percentile sorted p = Tenants.percentile sorted p)
  |> qtest

let test_slo_stats () =
  let st = Slo.stats_of [| 30; 10; 20 |] in
  checki "count" 3 st.Slo.count;
  checki "p50" 20 st.Slo.p50;
  checki "max" 30 st.Slo.max;
  checki "p999 coarsens to max on small samples" 30 st.Slo.p999;
  Alcotest.check (Alcotest.float 1e-9) "mean" 20.0 st.Slo.mean;
  checki "empty stats count" 0 Slo.empty_stats.Slo.count

let st_of ~p50 ~p99 =
  { Slo.empty_stats with Slo.count = 100; p50; p99 }

let test_slo_knee () =
  (* baseline p50 = 100; slo 5.0 -> violation once p99 > 500 *)
  let pts v =
    List.mapi (fun i p99 -> (0.2 *. float_of_int (i + 1), st_of ~p50:100 ~p99)) v
  in
  checkb "no violation" true
    (Slo.detect_knee ~slo:5.0 (pts [ 120; 200; 400; 500 ]) = None);
  checkb "first sustained violation" true
    (Slo.detect_knee ~slo:5.0 (pts [ 120; 200; 501; 900 ]) = Some 2);
  checkb "a dip disqualifies the earlier candidate" true
    (Slo.detect_knee ~slo:5.0 (pts [ 120; 600; 400; 900 ]) = Some 3);
  checkb "even the lightest point can violate" true
    (Slo.detect_knee ~slo:5.0 (pts [ 501; 600; 700 ]) = Some 0);
  checkb "empty sweep" true (Slo.detect_knee ~slo:5.0 [] = None);
  checkb "no-sample baseline anchors nothing" true
    (Slo.detect_knee ~slo:5.0
       [ (0.2, Slo.empty_stats); (0.4, st_of ~p50:1 ~p99:99999) ]
    = None)

(* ---------- Fabric: validation, service model, zero-copy ---------- *)

let test_fabric_validation () =
  let bad f =
    match f () with
    | _ -> Alcotest.fail "expected Invalid_argument"
    | exception Invalid_argument _ -> ()
  in
  bad (fun () ->
      ignore
        (Fabric.create { Fabric.default_config with Fabric.nodes = 3 }
           ~pairs:[ (0, 1) ]));
  bad (fun () ->
      ignore
        (Fabric.create { Fabric.default_config with Fabric.vc_count = 5 }
           ~pairs:[ (0, 1) ]));
  bad (fun () -> ignore (Fabric.create Fabric.default_config ~pairs:[]));
  bad (fun () -> ignore (Fabric.create Fabric.default_config ~pairs:[ (2, 2) ]));
  let fab = Fabric.create Fabric.default_config ~pairs:[ (0, 1) ] in
  bad (fun () -> ignore (Fabric.calibrate_send fab ~nbytes:6));
  bad (fun () -> ignore (Fabric.calibrate_send fab ~nbytes:8192));
  bad (fun () -> Fabric.post fab ~src:1 ~dst:0 ~nbytes:64 ~cost:10 ())

let test_fabric_delivery_zero_copy () =
  let fab = Fabric.create Fabric.default_config ~pairs:[ (0, 5); (5, 0) ] in
  let cost = Fabric.calibrate_send fab ~nbytes:256 in
  checkb "calibrated cost positive" true (cost > 0);
  let delivered_at = ref (-1) in
  Fabric.post fab ~src:0 ~dst:5 ~nbytes:256 ~cost
    ~on_deliver:(fun now -> delivered_at := now)
    ();
  Fabric.run_until_idle fab;
  checkb "delivery strictly after initiation cost" true (!delivered_at > cost);
  checki "launched" 1 (Fabric.launched fab);
  checki "delivered" 1 (Fabric.delivered fab);
  (* the receive buffer holds the deterministic fill: what a zero-copy
     reader sees with cached loads, no receive-side copy in between *)
  Alcotest.check Alcotest.bytes "deposited payload readable in place"
    (Fabric.payload fab ~nbytes:256)
    (Fabric.read_payload fab ~src:0 ~dst:5 ~len:256)

let test_fabric_deterministic () =
  let observe () =
    let fab =
      Fabric.create
        { Fabric.default_config with Fabric.seed = 7 }
        ~pairs:[ (0, 3); (3, 0); (0, 12) ]
    in
    let cost = Fabric.calibrate_send fab ~nbytes:512 in
    let times = ref [] in
    for i = 0 to 9 do
      Fabric.post fab ~src:0 ~dst:(if i mod 2 = 0 then 3 else 12) ~nbytes:512
        ~cost
        ~on_deliver:(fun now -> times := now :: !times)
        ()
    done;
    Fabric.run_until_idle fab;
    (cost, !times)
  in
  checkb "same seed, same schedule" true (observe () = observe ())

let test_fabric_chaos_drains () =
  let fab =
    Fabric.create
      { Fabric.default_config with Fabric.rx_credits = Some 4 }
      ~pairs:[ (0, 15); (15, 0); (3, 12) ]
  in
  let cost = Fabric.calibrate_send fab ~nbytes:1024 in
  Fabric.chaos_links fab ~period:500 ~until:20_000 ();
  for i = 0 to 59 do
    let src, dst =
      match i mod 3 with 0 -> (0, 15) | 1 -> (15, 0) | _ -> (3, 12)
    in
    Udma_sim.Engine.schedule (Fabric.engine fab) ~delay:(i * 250) (fun _ ->
        Fabric.post fab ~src ~dst ~nbytes:1024 ~cost ())
  done;
  Fabric.run_until_idle fab;
  checkb "chaos events applied" true (Fabric.faults_injected fab > 0);
  checki "every message still delivered" (Fabric.launched fab)
    (Fabric.delivered fab);
  checki "sixty launched" 60 (Fabric.launched fab)

(* ---------- the three apps: drain, determinism, the VC win ---------- *)

let small_fabric = { Fabric.default_config with Fabric.nodes = 4 }

let test_kv_smoke () =
  let cfg =
    { Kv.default_config with
      Kv.fabric = small_fabric;
      shards = 4;
      clients_per_node = 2;
      window_cycles = 15_000;
    }
  in
  let r = Kv.run cfg in
  checkb "drained" true r.Kv.drained;
  checki "all issued completed" r.Kv.issued r.Kv.completed;
  checki "ops partition into reads and writes" r.Kv.issued
    (r.Kv.reads + r.Kv.writes);
  checki "a sample per completed op" r.Kv.completed r.Kv.stats.Slo.count;
  checkb "throughput positive" true (r.Kv.throughput_per_kcycle > 0.0);
  checkb "deterministic" true (Kv.run cfg = r)

let test_kv_chaos_smoke () =
  let r =
    Kv.run
      { Kv.default_config with
        Kv.fabric = small_fabric;
        shards = 4;
        clients_per_node = 2;
        window_cycles = 15_000;
        chaos_links = true;
      }
  in
  checkb "drained under link chaos" true r.Kv.drained;
  checkb "chaos actually fired" true (r.Kv.chaos_events > 0)

let test_halo_smoke () =
  let cfg =
    { Halo.default_config with
      Halo.fabric = small_fabric;
      iterations = 8;
      warmup_iters = 2;
    }
  in
  let r = Halo.run cfg in
  checkb "drained" true r.Halo.drained;
  checki "measured iterations" 6 r.Halo.iterations;
  checki "a sample per node per measured iteration" (4 * 6)
    r.Halo.stats.Slo.count;
  checkb "strided dearer than contiguous (three-reference path)" true
    (r.Halo.strided_send_cycles > r.Halo.contiguous_send_cycles);
  checkb "deterministic" true (Halo.run cfg = r)

let test_rpc_smoke () =
  let cfg =
    { Rpc.default_config with
      Rpc.fabric = small_fabric;
      window_cycles = 30_000;
    }
  in
  let r = Rpc.run cfg in
  checkb "drained" true r.Rpc.drained;
  checki "all issued completed" r.Rpc.issued r.Rpc.completed;
  checkb "bursts generated" true (r.Rpc.bursts > 0);
  checkb "deterministic" true (Rpc.run cfg = r)

let test_kv_vcs_improve_hotspot_tail () =
  (* the E16 headline: write-heavy hotspot traffic on thin links —
     4 VCs must beat 1 VC on p99 (head-of-line blocking released) *)
  let run vcs =
    Kv.run
      { Kv.default_config with
        Kv.fabric =
          { Fabric.default_config with
            Fabric.vc_count = vcs;
            link_per_word = 2;
          };
        write_pct = 100;
        hot_pct = 50;
        load = 0.7;
      }
  in
  let r1 = run 1 and r4 = run 4 in
  checkb "both drained" true (r1.Kv.drained && r4.Kv.drained);
  checkb
    (Printf.sprintf "p99 improves with 4 VCs (%d -> %d)" r1.Kv.stats.Slo.p99
       r4.Kv.stats.Slo.p99)
    true
    (r4.Kv.stats.Slo.p99 < r1.Kv.stats.Slo.p99)

let () =
  Alcotest.run "udma_app"
    [
      ( "slo",
        [
          Alcotest.test_case "percentile" `Quick test_slo_percentile;
          Alcotest.test_case "stats" `Quick test_slo_stats;
          Alcotest.test_case "knee detection" `Quick test_slo_knee;
          prop_slo_matches_tenants;
        ] );
      ( "fabric",
        [
          Alcotest.test_case "config validation" `Quick test_fabric_validation;
          Alcotest.test_case "delivery is zero-copy" `Quick
            test_fabric_delivery_zero_copy;
          Alcotest.test_case "deterministic" `Quick test_fabric_deterministic;
          Alcotest.test_case "chaos storm drains" `Quick
            test_fabric_chaos_drains;
        ] );
      ( "apps",
        [
          Alcotest.test_case "kv smoke" `Quick test_kv_smoke;
          Alcotest.test_case "kv chaos smoke" `Quick test_kv_chaos_smoke;
          Alcotest.test_case "halo smoke" `Quick test_halo_smoke;
          Alcotest.test_case "rpc smoke" `Quick test_rpc_smoke;
          Alcotest.test_case "4 VCs beat 1 VC at the hotspot" `Quick
            test_kv_vcs_improve_hotspot_tail;
        ] );
    ]
