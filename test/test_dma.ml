(* Unit tests for the bus and the modular DMA controller (paper
   section 2, Figure 1; frontend/midend/backend split). *)

module Engine = Udma_sim.Engine
module Phys_mem = Udma_memory.Phys_mem
module Bus = Udma_dma.Bus
module Device = Udma_dma.Device
module Descriptor = Udma_dma.Descriptor
module Frontend = Udma_dma.Frontend
module Midend = Udma_dma.Midend
module Dma_engine = Udma_dma.Dma_engine

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

let rig () =
  let mem = Phys_mem.create ~frames:8 ~page_size:4096 in
  let engine = Engine.create () in
  let bus = Bus.create mem in
  let dma = Dma_engine.create ~engine ~bus () in
  (engine, mem, bus, dma)

let contiguous ~src ~dst ~nbytes = Descriptor.Contiguous { src; dst; nbytes }

let submit dma desc ~on_complete = Dma_engine.submit dma desc ~on_complete

(* ---------- Bus ---------- *)

let test_bus_memory_routing () =
  let _, mem, bus, _ = rig () in
  Bus.store_word bus 64 0xCAFEl;
  Alcotest.check Alcotest.int32 "read via bus" 0xCAFEl (Bus.load_word bus 64);
  Alcotest.check Alcotest.int32 "read via memory" 0xCAFEl (Phys_mem.read_word mem 64)

let test_bus_io_routing () =
  let _, _, bus, _ = rig () in
  let stored = ref [] in
  let handler =
    Bus.
      {
        io_load = (fun ~paddr -> Int32.of_int (paddr land 0xff));
        io_store = (fun ~paddr v -> stored := (paddr, v) :: !stored);
      }
  in
  Bus.register_io bus ~base:0x100000 ~size:4096 handler;
  Bus.store_word bus 0x100010 7l;
  Alcotest.(check (list (pair int int32))) "store routed" [ (0x100010, 7l) ] !stored;
  Alcotest.check Alcotest.int32 "load routed" 0x10l (Bus.load_word bus 0x100010)

let test_bus_overlap_rejected () =
  let _, _, bus, _ = rig () in
  let h = Bus.{ io_load = (fun ~paddr:_ -> 0l); io_store = (fun ~paddr:_ _ -> ()) } in
  Bus.register_io bus ~base:0x100000 ~size:4096 h;
  checkb "overlap raises" true
    (try Bus.register_io bus ~base:0x100800 ~size:4096 h; false
     with Invalid_argument _ -> true);
  (* adjacent is fine *)
  Bus.register_io bus ~base:0x101000 ~size:4096 h

let test_bus_machine_check () =
  let _, _, bus, _ = rig () in
  checkb "unmapped load raises" true
    (try ignore (Bus.load_word bus 0x900000); false
     with Invalid_argument _ -> true)

let test_bus_timing () =
  let _, _, bus, _ = rig () in
  let t = Bus.timing bus in
  checki "burst: setup + words*cost"
    (t.Bus.burst_setup_cycles + (256 * t.Bus.burst_word_cycles))
    (Bus.dma_burst_cycles bus ~nbytes:1024);
  checki "burst rounds up words"
    (t.Bus.burst_setup_cycles + (2 * t.Bus.burst_word_cycles))
    (Bus.dma_burst_cycles bus ~nbytes:5);
  checki "pio: one transaction per word" (256 * t.Bus.single_word_cycles)
    (Bus.pio_cycles bus ~nbytes:1024)

(* ---------- Device ports ---------- *)

let test_device_buffer () =
  let port, store = Device.buffer "d" ~size:128 in
  port.Device.dev_write ~addr:8 (Bytes.of_string "hi");
  Alcotest.check Alcotest.string "stored" "hi"
    (Bytes.to_string (Bytes.sub store 8 2));
  Alcotest.check Alcotest.bytes "read" (Bytes.of_string "hi")
    (port.Device.dev_read ~addr:8 ~len:2);
  checkb "writable in range" true (port.Device.writable ~addr:0);
  checkb "not writable out of range" false (port.Device.writable ~addr:128)

let test_device_null () =
  let port = Device.null "sink" in
  port.Device.dev_write ~addr:0 (Bytes.make 16 'x');
  Alcotest.check Alcotest.bytes "reads zeros" (Bytes.make 4 '\000')
    (port.Device.dev_read ~addr:0 ~len:4);
  checki "free" 0 (port.Device.access_cycles ~addr:0 ~len:4096)

(* ---------- Dma_engine: contiguous descriptors ---------- *)

let test_dma_mem_to_dev () =
  let engine, mem, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  Phys_mem.write_bytes mem ~addr:100 (Bytes.of_string "payload!");
  let done_at = ref (-1) in
  (match
     submit dma
       (contiguous ~src:(Dma_engine.Mem 100)
          ~dst:(Dma_engine.Dev (port, 20)) ~nbytes:8)
       ~on_complete:(fun () -> done_at := Engine.now engine)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit failed: %a" Dma_engine.pp_error e);
  checkb "busy during transfer" true (Dma_engine.busy dma);
  checkb "data not yet moved" true (Bytes.get store 20 = '\000');
  Engine.run_until_idle engine;
  checkb "idle after" false (Dma_engine.busy dma);
  Alcotest.check Alcotest.string "moved" "payload!"
    (Bytes.to_string (Bytes.sub store 20 8));
  checkb "completion time positive" true (!done_at > 0)

let test_dma_dev_to_mem () =
  let engine, mem, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  Bytes.blit_string "incoming" 0 store 0 8;
  (match
     submit dma
       (contiguous ~src:(Dma_engine.Dev (port, 0)) ~dst:(Dma_engine.Mem 500)
          ~nbytes:8)
       ~on_complete:ignore
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit failed: %a" Dma_engine.pp_error e);
  Engine.run_until_idle engine;
  Alcotest.check Alcotest.string "moved" "incoming"
    (Bytes.to_string (Phys_mem.read_bytes mem ~addr:500 ~len:8))

let test_dma_busy_rejected () =
  let _, _, _, dma = rig () in
  let port = Device.null "d" in
  ignore
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Dev (port, 0))
          ~nbytes:64)
       ~on_complete:ignore);
  checkb "second submit refused" true
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Dev (port, 0))
          ~nbytes:64)
       ~on_complete:ignore
     = Error Dma_engine.Busy)

let test_dma_unsupported_pairs () =
  let _, _, _, dma = rig () in
  let port = Device.null "d" in
  checkb "mem to mem" true
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Mem 64) ~nbytes:8)
       ~on_complete:ignore
     = Error Dma_engine.Unsupported_pair);
  checkb "dev to dev" true
    (submit dma
       (contiguous
          ~src:(Dma_engine.Dev (port, 0))
          ~dst:(Dma_engine.Dev (port, 64))
          ~nbytes:8)
       ~on_complete:ignore
     = Error Dma_engine.Unsupported_pair)

let test_dma_bad_sizes () =
  let _, _, _, dma = rig () in
  let port = Device.null "d" in
  checkb "zero" true
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Dev (port, 0))
          ~nbytes:0)
       ~on_complete:ignore
     = Error Dma_engine.Bad_size);
  checkb "memory overrun" true
    (submit dma
       (contiguous
          ~src:(Dma_engine.Mem (8 * 4096 - 4))
          ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:64)
       ~on_complete:ignore
     = Error Dma_engine.Bad_size)

let test_dma_device_refusal () =
  let _, _, _, dma = rig () in
  let port, _ = Device.buffer "d" ~size:64 in
  checkb "device refuses out-of-range dest" true
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0)
          ~dst:(Dma_engine.Dev (port, 100))
          ~nbytes:8)
       ~on_complete:ignore
     = Error Dma_engine.Device_refused)

let test_dma_registers_and_remaining () =
  let engine, _, bus, dma = rig () in
  let port = Device.null "d" in
  ignore
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 4096) ~dst:(Dma_engine.Dev (port, 0))
          ~nbytes:1024)
       ~on_complete:ignore);
  checki "count register" 1024 (Dma_engine.count dma);
  Alcotest.(check (option int)) "memory-side base" (Some 4096)
    (Dma_engine.transfer_base dma);
  checki "remaining at start" 1024 (Dma_engine.remaining_bytes dma);
  let duration = Bus.dma_burst_cycles bus ~nbytes:1024 in
  Engine.advance engine (duration / 2);
  let rem = Dma_engine.remaining_bytes dma in
  checkb "about half remains" true (rem > 256 && rem < 768);
  checki "word multiple" 0 ((1024 - rem) land 3);
  Engine.run_until_idle engine;
  checki "zero when idle" 0 (Dma_engine.remaining_bytes dma);
  checki "count zero when idle" 0 (Dma_engine.count dma)

let test_dma_remaining_burst_aware () =
  let engine, _, bus, dma = rig () in
  let port = Device.null "d" in
  let timing = Bus.timing bus in
  ignore
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Dev (port, 0))
          ~nbytes:256)
       ~on_complete:ignore);
  (* nothing moves during burst setup — the old linear estimate would
     already report progress here *)
  Engine.advance engine timing.Bus.burst_setup_cycles;
  checki "no progress during setup" 256 (Dma_engine.remaining_bytes dma);
  (* ten words into the data phase, exactly 40 bytes are on the wire *)
  Engine.advance engine (10 * timing.Bus.burst_word_cycles);
  checki "word-exact progress" (256 - 40) (Dma_engine.remaining_bytes dma);
  Engine.run_until_idle engine

let test_dma_page_in_flight () =
  let engine, _, _, dma = rig () in
  let port = Device.null "d" in
  ignore
    (submit dma
       (contiguous
          ~src:(Dma_engine.Mem (2 * 4096 + 2048))
          ~dst:(Dma_engine.Dev (port, 0)) ~nbytes:4096)
       ~on_complete:ignore);
  checkb "first page busy" true (Dma_engine.mem_page_in_flight dma ~page_size:4096 2);
  checkb "straddled page busy" true
    (Dma_engine.mem_page_in_flight dma ~page_size:4096 3);
  checkb "other page free" false
    (Dma_engine.mem_page_in_flight dma ~page_size:4096 4);
  Engine.run_until_idle engine;
  checkb "free after" false (Dma_engine.mem_page_in_flight dma ~page_size:4096 2)

let test_dma_abort () =
  let engine, _, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  let completed = ref false in
  ignore
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Dev (port, 0))
          ~nbytes:64)
       ~on_complete:(fun () -> completed := true));
  checkb "abort succeeds" true (Dma_engine.abort dma);
  checkb "idle immediately" false (Dma_engine.busy dma);
  Engine.run_until_idle engine;
  checkb "no completion callback" false !completed;
  checkb "no data moved" true (Bytes.get store 0 = '\000');
  checkb "abort when idle" false (Dma_engine.abort dma)

let test_dma_counters () =
  let engine, _, _, dma = rig () in
  let port = Device.null "d" in
  for _ = 1 to 3 do
    ignore
      (submit dma
         (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Dev (port, 0))
            ~nbytes:100)
         ~on_complete:ignore);
    Engine.run_until_idle engine
  done;
  checki "transfers" 3 (Dma_engine.transfers_completed dma);
  checki "bytes" 300 (Dma_engine.bytes_moved dma)

let test_dma_device_latency_counts () =
  let engine, _, bus, dma = rig () in
  let slow =
    { (Device.null "slow") with Device.access_cycles = (fun ~addr:_ ~len:_ -> 5000) }
  in
  let t0 = Engine.now engine in
  ignore
    (submit dma
       (contiguous ~src:(Dma_engine.Mem 0) ~dst:(Dma_engine.Dev (slow, 0))
          ~nbytes:64)
       ~on_complete:ignore);
  Engine.run_until_idle engine;
  checki "device latency added"
    (Bus.dma_burst_cycles bus ~nbytes:64 + 5000)
    (Engine.now engine - t0)

let test_dma_flat_contiguous () =
  (* a one-element Contiguous descriptor is the flat transfer: data
     moves and the burst cost matches the bus model exactly *)
  let engine, mem, bus, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  Phys_mem.write_bytes mem ~addr:0 (Bytes.of_string "via-flat");
  let t0 = Engine.now engine in
  (match
     Dma_engine.submit dma
       (contiguous ~src:(Dma_engine.Mem 0)
          ~dst:(Dma_engine.Dev (port, 0))
          ~nbytes:8)
       ~on_complete:ignore
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit failed: %a" Dma_engine.pp_error e);
  Engine.run_until_idle engine;
  Alcotest.check Alcotest.string "moved" "via-flat"
    (Bytes.to_string (Bytes.sub store 0 8));
  checki "flat cost unchanged"
    (Bus.dma_burst_cycles bus ~nbytes:8)
    (Engine.now engine - t0)

(* ---------- Dma_engine: shaped descriptors ---------- *)

let test_dma_strided () =
  let engine, mem, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  (* a 4x8 tile out of a 32-byte-pitch matrix *)
  for row = 0 to 3 do
    Phys_mem.write_bytes mem ~addr:(row * 32)
      (Bytes.of_string (Printf.sprintf "row%dxxxx" row))
  done;
  (match
     submit dma
       (Descriptor.Strided
          {
            src = Dma_engine.Mem 0;
            dst = Dma_engine.Dev (port, 0);
            stride = 32;
            chunk = 8;
            reps = 4;
          })
       ~on_complete:ignore
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit failed: %a" Dma_engine.pp_error e);
  checki "count is total" 32 (Dma_engine.count dma);
  Engine.run_until_idle engine;
  Alcotest.check Alcotest.string "rows packed densely"
    "row0xxxxrow1xxxxrow2xxxxrow3xxxx"
    (Bytes.to_string (Bytes.sub store 0 32))

let test_dma_sg_overhead_monotone () =
  (* equal total bytes, rising element count: duration must rise
     strictly (per-descriptor fetch + setup), and one element must cost
     exactly the contiguous price *)
  let port = Device.null "d" in
  let total = 4096 in
  let run_with elems_n =
    let engine, _, bus, dma = rig () in
    let len = total / elems_n in
    let elems =
      List.init elems_n (fun i ->
          Descriptor.
            {
              src = Dma_engine.Mem (i * len);
              dst = Dma_engine.Dev (port, i * len);
              len;
            })
    in
    let t0 = Engine.now engine in
    (match
       submit dma (Descriptor.Scatter_gather elems) ~on_complete:ignore
     with
    | Ok () -> ()
    | Error e -> Alcotest.failf "submit failed: %a" Dma_engine.pp_error e);
    Engine.run_until_idle engine;
    (Engine.now engine - t0, bus)
  in
  let d1, bus = run_with 1 in
  checki "one element = contiguous cost" (Bus.dma_burst_cycles bus ~nbytes:total) d1;
  let durations = List.map (fun n -> fst (run_with n)) [ 1; 4; 16; 64; 256 ] in
  let rec strictly_rising = function
    | a :: (b :: _ as rest) -> a < b && strictly_rising rest
    | _ -> true
  in
  checkb "per-element overhead strictly rising" true (strictly_rising durations);
  (* and the knee is the modelled cost: fetch + setup per extra element *)
  let timing = Bus.timing bus in
  let fetch = Midend.desc_fetch_cycles bus in
  let d4 = List.nth durations 1 in
  checki "4-element overhead = 3 x (fetch + setup)"
    (3 * (fetch + timing.Bus.burst_setup_cycles))
    (d4 - d1)

let test_dma_sg_zero_length_rejected () =
  let _, _, _, dma = rig () in
  let port = Device.null "d" in
  let elems =
    [
      Descriptor.{ src = Dma_engine.Mem 0; dst = Dma_engine.Dev (port, 0); len = 8 };
      Descriptor.{ src = Dma_engine.Mem 64; dst = Dma_engine.Dev (port, 8); len = 0 };
    ]
  in
  checkb "zero-length element rejected" true
    (submit dma (Descriptor.Scatter_gather elems) ~on_complete:ignore
     = Error Dma_engine.Bad_size);
  checkb "empty list rejected" true
    (submit dma (Descriptor.Scatter_gather []) ~on_complete:ignore
     = Error Dma_engine.Bad_size)

let test_dma_abort_mid_sg () =
  let engine, mem, _, dma = rig () in
  let port, store = Device.buffer "d" ~size:4096 in
  Phys_mem.write_bytes mem ~addr:0 (Bytes.make 64 'a');
  let completed = ref false in
  let elems =
    List.init 4 (fun i ->
        Descriptor.
          {
            src = Dma_engine.Mem (i * 16);
            dst = Dma_engine.Dev (port, i * 16);
            len = 16;
          })
  in
  (match
     submit dma (Descriptor.Scatter_gather elems)
       ~on_complete:(fun () -> completed := true)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "submit failed: %a" Dma_engine.pp_error e);
  (* advance past the first two elements' bursts, then abort: the
     deposit is atomic at completion, so nothing may have landed *)
  let elapsed =
    match Dma_engine.descriptor dma with
    | Some d -> Descriptor.total_bytes d (* just a sanity poke *)
    | None -> 0
  in
  checki "descriptor visible" 64 elapsed;
  Engine.advance engine 100;
  checkb "still busy mid-list" true (Dma_engine.busy dma);
  checkb "abort mid-list succeeds" true (Dma_engine.abort dma);
  Engine.run_until_idle engine;
  checkb "no completion" false !completed;
  checkb "no partial data" true
    (Bytes.for_all (fun c -> c = '\000') (Bytes.sub store 0 64));
  checki "nothing counted" 0 (Dma_engine.bytes_moved dma)

let test_dma_sg_pages_in_flight () =
  let engine, _, _, dma = rig () in
  let port = Device.null "d" in
  let elems =
    [
      Descriptor.{ src = Dma_engine.Mem 0; dst = Dma_engine.Dev (port, 0); len = 8 };
      Descriptor.
        { src = Dma_engine.Mem (5 * 4096); dst = Dma_engine.Dev (port, 8); len = 8 };
    ]
  in
  ignore (submit dma (Descriptor.Scatter_gather elems) ~on_complete:ignore);
  checkb "first element's page busy" true
    (Dma_engine.mem_page_in_flight dma ~page_size:4096 0);
  checkb "second element's page busy" true
    (Dma_engine.mem_page_in_flight dma ~page_size:4096 5);
  checkb "untouched page free" false
    (Dma_engine.mem_page_in_flight dma ~page_size:4096 3);
  Engine.run_until_idle engine

(* ---------- qcheck: descriptor vs naive memcpy oracle ---------- *)

let mem_bytes = 8 * 4096
let dev_size = 4096

let gen_descriptor =
  let open QCheck.Gen in
  let addr max_len = int_range 0 (mem_bytes - max_len) in
  let dev_addr max_len = int_range 0 (dev_size - max_len) in
  let gen_sg =
    let* n = int_range 1 8 in
    let* elems =
      list_repeat n
        (let* len = int_range 1 64 in
         let* s = addr len in
         let* d = dev_addr len in
         return (s, d, len))
    in
    return (`Sg elems)
  in
  let gen_strided =
    let* chunk = int_range 1 32 in
    let* reps = int_range 1 8 in
    let* stride = int_range chunk 128 in
    let span = ((reps - 1) * stride) + chunk in
    let* s = int_range 0 (mem_bytes - span) in
    let* d = dev_addr (reps * chunk) in
    return (`Strided (s, d, stride, chunk, reps))
  in
  let gen_contig =
    let* len = int_range 1 512 in
    let* s = addr len in
    let* d = dev_addr len in
    return (`Contig (s, d, len))
  in
  frequency [ (2, gen_contig); (2, gen_strided); (3, gen_sg) ]

let shape_to_descriptor port = function
  | `Contig (s, d, len) ->
      Descriptor.Contiguous
        { src = Dma_engine.Mem s; dst = Dma_engine.Dev (port, d); nbytes = len }
  | `Strided (s, d, stride, chunk, reps) ->
      Descriptor.Strided
        {
          src = Dma_engine.Mem s;
          dst = Dma_engine.Dev (port, d);
          stride;
          chunk;
          reps;
        }
  | `Sg elems ->
      Descriptor.Scatter_gather
        (List.map
           (fun (s, d, len) ->
             Descriptor.
               { src = Dma_engine.Mem s; dst = Dma_engine.Dev (port, d); len })
           elems)

(* the naive oracle: apply each element as a memcpy, in order *)
let oracle_apply ~mem_img ~dev_img desc =
  List.iter
    (fun (e : Descriptor.element) ->
      match (e.src, e.dst) with
      | Dma_engine.Mem s, Dma_engine.Dev (_, d) ->
          Bytes.blit mem_img s dev_img d e.len
      | _ -> assert false)
    (Descriptor.elements desc)

let prop_descriptor_matches_oracle =
  QCheck.Test.make ~count:300 ~name:"descriptor moves = memcpy oracle"
    (QCheck.make gen_descriptor)
    (fun shape ->
      let engine, mem, _, dma = rig () in
      let port, store = Device.buffer "d" ~size:dev_size in
      (* deterministic pseudo-random memory image *)
      let mem_img =
        Bytes.init mem_bytes (fun i -> Char.chr ((i * 131) land 0xff))
      in
      Phys_mem.write_bytes mem ~addr:0 mem_img;
      let desc = shape_to_descriptor port shape in
      let total = Descriptor.total_bytes desc in
      match Dma_engine.submit dma desc ~on_complete:ignore with
      | Error e ->
          QCheck.Test.fail_reportf "refused valid descriptor: %a"
            Dma_engine.pp_error e
      | Ok () ->
          Engine.run_until_idle engine;
          let dev_img = Bytes.make dev_size '\000' in
          oracle_apply ~mem_img ~dev_img desc;
          Bytes.equal dev_img store
          && Dma_engine.bytes_moved dma = total
          && total
             = List.fold_left
                 (fun acc (e : Descriptor.element) -> acc + e.len)
                 0
                 (Descriptor.elements desc))

let () =
  Alcotest.run "udma_dma"
    [
      ( "bus",
        [
          Alcotest.test_case "memory routing" `Quick test_bus_memory_routing;
          Alcotest.test_case "io routing" `Quick test_bus_io_routing;
          Alcotest.test_case "overlap rejected" `Quick test_bus_overlap_rejected;
          Alcotest.test_case "machine check" `Quick test_bus_machine_check;
          Alcotest.test_case "timing" `Quick test_bus_timing;
        ] );
      ( "device",
        [
          Alcotest.test_case "buffer port" `Quick test_device_buffer;
          Alcotest.test_case "null port" `Quick test_device_null;
        ] );
      ( "dma_engine",
        [
          Alcotest.test_case "mem to dev" `Quick test_dma_mem_to_dev;
          Alcotest.test_case "dev to mem" `Quick test_dma_dev_to_mem;
          Alcotest.test_case "busy rejected" `Quick test_dma_busy_rejected;
          Alcotest.test_case "unsupported pairs" `Quick test_dma_unsupported_pairs;
          Alcotest.test_case "bad sizes" `Quick test_dma_bad_sizes;
          Alcotest.test_case "device refusal" `Quick test_dma_device_refusal;
          Alcotest.test_case "registers + remaining" `Quick
            test_dma_registers_and_remaining;
          Alcotest.test_case "remaining is burst-aware" `Quick
            test_dma_remaining_burst_aware;
          Alcotest.test_case "page in flight" `Quick test_dma_page_in_flight;
          Alcotest.test_case "abort" `Quick test_dma_abort;
          Alcotest.test_case "counters" `Quick test_dma_counters;
          Alcotest.test_case "device latency" `Quick test_dma_device_latency_counts;
          Alcotest.test_case "flat contiguous submit" `Quick
            test_dma_flat_contiguous;
        ] );
      ( "descriptors",
        [
          Alcotest.test_case "strided tile" `Quick test_dma_strided;
          Alcotest.test_case "sg overhead monotone" `Quick
            test_dma_sg_overhead_monotone;
          Alcotest.test_case "zero-length rejected" `Quick
            test_dma_sg_zero_length_rejected;
          Alcotest.test_case "abort mid-sg" `Quick test_dma_abort_mid_sg;
          Alcotest.test_case "sg pages in flight" `Quick
            test_dma_sg_pages_in_flight;
          QCheck_alcotest.to_alcotest prop_descriptor_matches_oracle;
        ] );
    ]
